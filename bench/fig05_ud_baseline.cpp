// Figure 5: performance of UD in the baseline experiment.
//
// MD of local tasks, simple subtasks, and global tasks vs normalized load,
// with every subtask inheriting the global end-to-end deadline (UD).
//
// Shape to reproduce:
//  * all three curves increase with load;
//  * MD_subtask sits slightly *below* MD_local (subtasks get a bit more
//    slack, Equation 3);
//  * MD_global is far above both — roughly 1-(1-MD_subtask)^4 — about 3x
//    MD_local at load 0.5 (25% vs 8.9%).
#include <cmath>

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace sda;
  exp::ExperimentConfig base = exp::baseline_config();
  exp::figures::apply_bench_env(base, util::bench_env());
  // key=value overrides (same vocabulary as sda_run) win over SDA_* env.
  if (!bench::apply_kv_args(argc, argv, base)) return 64;
  const util::BenchEnv env = bench::env_from_config(base);

  bench::print_header(
      "Figure 5 — UD in the baseline experiment (MD vs load)",
      "at load 0.5: MD_local 8.9%, MD_subtask 7.1%, MD_global 25% (~3x local);"
      " 1-(1-0.071)^4 ~ 25.5% predicts the amplification",
      base, env);

  const auto loads = exp::figures::default_loads();
  auto series = exp::figures::load_sweep(base, {{"ud", "ud"}}, loads);

  bench::print_load_sweep_table(series, "load", /*include_subtask=*/true);
  bench::chart_load_sweep(series, "normalized load");

  // The paper's §6.1 amplification argument at load 0.5.
  for (const auto& p : series.front().points) {
    if (util::fne(p.x, 0.5)) continue;
    const double ms = exp::figures::md(p, metrics::kSubtaskClass);
    const double mg = exp::figures::md(p, metrics::global_class(4));
    const double predicted = 1.0 - std::pow(1.0 - ms, 4.0);
    std::printf("independence check at load 0.5: MD_subtask=%.1f%% => "
                "1-(1-ms)^4 = %.1f%% vs measured MD_global = %.1f%%\n",
                ms * 100, predicted * 100, mg * 100);
    bench::check_line("MD_local(UD) at load 0.5",
                      exp::figures::md(p, metrics::kLocalClass), 0.089);
    bench::check_line("MD_subtask(UD) at load 0.5", ms, 0.071);
    bench::check_line("MD_global(UD) at load 0.5", mg, 0.25);
  }
  return 0;
}
