// Figure 10: MD of (a) DIV-1 and (b) GF as functions of frac_local, with UD
// shown for reference (load fixed at the baseline 0.5).
//
// Shape to reproduce:
//  * under UD, both MD_local and MD_global *increase* slightly with
//    frac_local (locals are slightly more competitive than globals because
//    of the max-term in Equation 2);
//  * under DIV-1 and GF the MD curves *drop* as frac_local increases: the
//    strategies are most effective when there is a large local population
//    to cut ahead of;
//  * at frac_local = 0, GF degenerates to UD exactly (all deadlines shift
//    by the same DELTA).
#include "bench/common.hpp"

int main() {
  using namespace sda;
  const util::BenchEnv env = util::bench_env();
  exp::ExperimentConfig base = exp::baseline_config();
  exp::figures::apply_bench_env(base, env);

  bench::print_header(
      "Figure 10 — DIV-1 (a) and GF (b) vs frac_local, UD for reference",
      "MD(UD) rises mildly with frac_local; MD(DIV-1)/MD(GF) fall —"
      " most effective with a large local population; GF == UD at"
      " frac_local = 0",
      base, env);

  const std::vector<double> fracs = {0.0, 0.15, 0.3, 0.45, 0.6, 0.75, 0.9};
  const auto apply = [](exp::ExperimentConfig& c, double f) {
    c.frac_local = f;
  };

  std::vector<exp::figures::LoadSweepSeries> series;
  for (const char* psp : {"ud", "div-1", "gf"}) {
    exp::ExperimentConfig c = base;
    c.psp = psp;
    exp::figures::LoadSweepSeries s;
    s.psp = psp;
    s.ssp = "ud";
    s.points = exp::sweep(c, fracs, apply);
    series.push_back(std::move(s));
  }

  bench::print_load_sweep_table(series, "frac_local");
  bench::chart_load_sweep(series, "frac_local");

  // GF == UD when there are no local tasks (frac_local = 0): identical
  // arrival streams (common random numbers) make this an exact check up to
  // the subtask-vs-subtask EDF order, which GF preserves.
  const double ud0 =
      exp::figures::md(series[0].points[0], metrics::global_class(4));
  const double gf0 =
      exp::figures::md(series[2].points[0], metrics::global_class(4));
  std::printf("frac_local=0: MD_global(UD) = %.2f%% vs MD_global(GF) = %.2f%%"
              "  (paper: identical)\n",
              ud0 * 100, gf0 * 100);
  return 0;
}
