// The one-shot reproduction scorecard: every qualitative claim from the
// paper (orderings, crossovers, monotonicities) plus the §6.1/§7.3 numeric
// anchors, run as a single battery and printed as PASS/FAIL rows.
//
// Exit code is the number of failed checks, so this binary doubles as a CI
// gate for the whole reproduction.
//
// Run control goes through the ExperimentConfig kv API: key=value args
// (`reproduce_all sim_time=50000 replications=4`) override the SDA_* env
// defaults, exactly like sda_run.
//
// --quick: shortened runs (20k time units x 2 replications unless SDA_*
// overrides are set) for smoke tests and the scripts/run_bench.sh timing
// harness.  Quick runs are below the battery's calibrated tolerances
// (sim_time >= ~50k), so a handful of marginal FAILs is expected — use the
// default or SDA_FULL=1 settings for actual validation.
#include <cstdio>
#include <cstring>

#include "bench/common.hpp"
#include "src/exp/compare.hpp"
#include "src/util/feq.hpp"

int main(int argc, char** argv) {
  using namespace sda;
  exp::ExperimentConfig base = exp::baseline_config();
  exp::figures::apply_bench_env(base, util::bench_env());

  bool quick = false;
  int kv_argc = 1;
  char* kv_argv[64];
  kv_argv[0] = argv[0];
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strchr(argv[i], '=') != nullptr && kv_argc < 64) {
      kv_argv[kv_argc++] = argv[i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [key=value ...]\n", argv[0]);
      return 64;
    }
  }
  if (quick) {
    // Explicit SDA_SIM_TIME / sim_time= knobs still win; --quick only
    // changes the default.
    if (util::feq(util::env_double("SDA_SIM_TIME", 0.0), 0.0)) {
      base.sim_time = 20000.0;
    }
    std::printf("quick mode: timing/smoke run, below calibrated "
                "tolerances — expect marginal FAILs\n");
  }
  if (!bench::apply_kv_args(kv_argc, kv_argv, base)) return 64;

  const util::BenchEnv env = bench::env_from_config(base);
  std::printf("reproduction scorecard (%s)\n\n", env.describe().c_str());
  const auto card = sda::exp::compare::run_reproduction_battery(env);
  std::printf("%s", card.render().c_str());
  return static_cast<int>(card.failures());
}
