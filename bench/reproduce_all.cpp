// The one-shot reproduction scorecard: every qualitative claim from the
// paper (orderings, crossovers, monotonicities) plus the §6.1/§7.3 numeric
// anchors, run as a single battery and printed as PASS/FAIL rows.
//
// Exit code is the number of failed checks, so this binary doubles as a CI
// gate for the whole reproduction.
#include <cstdio>

#include "src/exp/compare.hpp"
#include "src/util/env.hpp"

int main() {
  const sda::util::BenchEnv env = sda::util::bench_env();
  std::printf("reproduction scorecard (%s)\n\n", env.describe().c_str());
  const auto card = sda::exp::compare::run_reproduction_battery(env);
  std::printf("%s", card.render().c_str());
  return static_cast<int>(card.failures());
}
