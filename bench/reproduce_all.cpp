// The one-shot reproduction scorecard: every qualitative claim from the
// paper (orderings, crossovers, monotonicities) plus the §6.1/§7.3 numeric
// anchors, run as a single battery and printed as PASS/FAIL rows.
//
// Exit code is the number of failed checks, so this binary doubles as a CI
// gate for the whole reproduction.
//
// --quick: shortened runs (20k time units x 2 replications unless SDA_*
// overrides are set) for smoke tests and the scripts/run_bench.sh timing
// harness.  Quick runs are below the battery's calibrated tolerances
// (sim_time >= ~50k), so a handful of marginal FAILs is expected — use the
// default or SDA_FULL=1 settings for actual validation.
#include <cstdio>
#include <cstring>

#include "src/exp/compare.hpp"
#include "src/util/env.hpp"
#include "src/util/feq.hpp"

int main(int argc, char** argv) {
  sda::util::BenchEnv env = sda::util::bench_env();
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: %s [--quick]\n", argv[0]);
      return 64;
    }
  }
  if (quick) {
    // Explicit SDA_* knobs still win; --quick only changes the defaults.
    if (sda::util::feq(sda::util::env_double("SDA_SIM_TIME", 0.0), 0.0)) {
      env.sim_time = 20000.0;
    }
    std::printf("quick mode: timing/smoke run, below calibrated "
                "tolerances — expect marginal FAILs\n");
  }
  std::printf("reproduction scorecard (%s)\n\n", env.describe().c_str());
  const auto card = sda::exp::compare::run_reproduction_battery(env);
  std::printf("%s", card.render().c_str());
  return static_cast<int>(card.failures());
}
