// Ablation A10 — communication as an explicit resource (§3.2).
//
// The paper folds the network into the node model ("a direct link between
// two sites is one resource, a LAN another") but its experiments never
// give messages their own queues.  Here the Figure 14 pipeline ships a
// message subtask between consecutive stages over 0/1/2 shared link nodes.
// With one shared link, every global task in the system funnels its four
// stage boundaries through the same queue — a contention point that makes
// end-to-end deadline assignment matter even more; a second link relieves
// it.  EQF treats message legs like any other stage (they get slack in
// proportion to their predicted time).
#include "bench/common.hpp"

int main() {
  using namespace sda;
  const util::BenchEnv env = util::bench_env();
  exp::ExperimentConfig base = exp::graph_config();
  exp::figures::apply_bench_env(base, env);
  base.load = 0.5;
  base.mean_msg_time = 0.25;

  bench::print_header(
      "Ablation A10 — explicit link resources on the Fig 14 graph (load 0.5)",
      "message queueing adds misses; EQF-DIV1 keeps its lead; a second link"
      " relieves the contention",
      base, env);

  util::Table table({"links", "SDA", "MD_local", "MD_global", "link util"});
  for (int links : {0, 1, 2}) {
    for (const auto& [label, psp, ssp] :
         {std::tuple{"UD-UD", "ud", "ud"},
          std::tuple{"EQF-DIV1", "div-1", "eqf"}}) {
      exp::ExperimentConfig c = base;
      c.link_count = links;
      c.psp = psp;
      c.ssp = ssp;
      metrics::Report report;
      double link_util = 0.0;
      for (int rep = 0; rep < c.replications; ++rep) {
        const std::uint64_t seed =
            c.seed +
            0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(rep + 1);
        exp::RunResult r = exp::run_once(c, seed);
        link_util += r.mean_link_utilization;
        report.add_replication(r.collector);
      }
      link_util /= c.replications;
      table.add_row(
          {std::to_string(links), label,
           util::fmt_pct(report.summary(metrics::kLocalClass).miss_rate.mean),
           util::fmt_pct(
               report.summary(metrics::global_class(0)).miss_rate.mean),
           util::fmt_pct(link_util)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
