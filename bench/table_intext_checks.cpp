// In-text numeric anchors (paper §6.1 and §7.3), all at the baseline
// setting, load 0.5.  This bench regenerates every number the paper states
// in prose and prints measured-vs-paper side by side:
//
//   §6.1  UD:    MD_local 8.9%,  MD_subtask 7.1%,  MD_global 25%
//         1-(1-0.071)^4 = 25.5% (independence approximation)
//         DIV-1: MD_local 11.7%, MD_global 13%
//         missed work: UD 0.13 -> DIV-1 0.12
//   §7.3  with PM abortion: MD_global UD 15.0%, DIV-1 7.8%
//   §4    example: 5% node miss rate, 6 subtasks -> 26.5% global miss
#include <cmath>

#include "bench/common.hpp"

int main() {
  using namespace sda;
  const util::BenchEnv env = util::bench_env();
  exp::ExperimentConfig base = exp::baseline_config();
  exp::figures::apply_bench_env(base, env);
  base.load = 0.5;

  bench::print_header("In-text checks — every number the paper states in prose",
                      "see header comment; all at baseline, load 0.5", base,
                      env);

  // --- §6.1, no abortion ---------------------------------------------------
  exp::ExperimentConfig c = base;
  c.psp = "ud";
  const metrics::Report ud = exp::run_experiment(c);
  c.psp = "div-1";
  const metrics::Report div1 = exp::run_experiment(c);

  const double ud_local = ud.summary(metrics::kLocalClass).miss_rate.mean;
  const double ud_sub = ud.summary(metrics::kSubtaskClass).miss_rate.mean;
  const double ud_glob = ud.summary(metrics::global_class(4)).miss_rate.mean;
  std::printf("no abortion (Figures 5-7):\n");
  bench::check_line("MD_local(UD)", ud_local, 0.089);
  bench::check_line("MD_subtask(UD)", ud_sub, 0.071);
  bench::check_line("MD_global(UD)", ud_glob, 0.25);
  bench::check_line("independence approx 1-(1-MD_subtask)^4",
                    1.0 - std::pow(1.0 - ud_sub, 4.0), 0.255);
  bench::check_line("MD_local(DIV-1)",
                    div1.summary(metrics::kLocalClass).miss_rate.mean, 0.117);
  bench::check_line("MD_global(DIV-1)",
                    div1.summary(metrics::global_class(4)).miss_rate.mean,
                    0.13);
  std::printf("  %-52s measured %6.3f    paper ~0.130\n",
              "missed work fraction (UD)", ud.overall_missed_work().mean);
  std::printf("  %-52s measured %6.3f    paper ~0.120\n",
              "missed work fraction (DIV-1)", div1.overall_missed_work().mean);

  // --- §7.3, process-manager abortion ---------------------------------------
  c = base;
  c.pm_abort = core::PmAbortMode::kRealDeadline;
  c.psp = "ud";
  const metrics::Report ud_ab = exp::run_experiment(c);
  c.psp = "div-1";
  const metrics::Report div1_ab = exp::run_experiment(c);
  std::printf("with process-manager abortion (Figure 11):\n");
  bench::check_line("MD_global(UD, pm-abort)",
                    ud_ab.summary(metrics::global_class(4)).miss_rate.mean,
                    0.15);
  bench::check_line("MD_global(DIV-1, pm-abort)",
                    div1_ab.summary(metrics::global_class(4)).miss_rate.mean,
                    0.078);

  // --- §4's motivating arithmetic (pure math, no simulation) ---------------
  std::printf("motivating example (§4): 1-(1-0.05)^6 = %.1f%% (paper 26.5%%)\n",
              (1.0 - std::pow(0.95, 6.0)) * 100.0);
  return 0;
}
