// Ablation A12 — shape robustness: random serial-parallel global tasks.
//
// The paper evaluates flat parallel tasks (Sections 4-7) and one fixed
// pipeline (Section 8).  Here every global task has a *different* random
// serial-parallel shape (depth <= 3, fan-out 2-4).  If UD >> DIV-1 >= GF
// and the EQF+DIV combination hold here too, the heuristics are shape-
// robust, not tuned to the paper's two workloads.
//
// This bench assembles the system manually (the Runner's workload menu does
// not include random shapes) — also demonstrating the library's composition
// API end to end.
#include <memory>

#include "bench/common.hpp"

#include "src/sched/edf.hpp"
#include "src/workload/local_source.hpp"
#include "src/workload/random_graph.hpp"
#include "src/workload/rates.hpp"

namespace {

using namespace sda;

struct Outcome {
  double md_local = 0.0;
  double md_global = 0.0;
};

Outcome run(const char* psp, const char* ssp, double load,
            const util::BenchEnv& env) {
  sim::Engine engine;
  util::Rng master(env.seed);
  constexpr int kNodes = 6;

  std::vector<std::unique_ptr<sched::Node>> nodes;
  std::vector<sched::Node*> ptrs;
  for (int i = 0; i < kNodes; ++i) {
    sched::Node::Config nc;
    nc.index = i;
    nodes.push_back(std::make_unique<sched::Node>(
        engine, std::make_unique<sched::EdfScheduler>(), nc));
    ptrs.push_back(nodes.back().get());
  }
  core::ProcessManager::Config pc;
  pc.psp = core::make_psp_strategy(psp);
  pc.ssp = core::make_ssp_strategy(ssp);
  core::ProcessManager pm(engine, ptrs, std::move(pc));

  metrics::Collector collector;
  collector.set_warmup(env.warmup_fraction * env.sim_time);
  pm.set_global_handler(
      [&](const core::GlobalTaskRecord& r) { collector.record_global(r); });
  for (auto& n : nodes) {
    n->set_completion_handler([&](const task::TaskPtr& t) {
      if (t->kind == task::TaskKind::kLocal) {
        collector.record_simple(*t);
      } else {
        pm.handle_completion(t);
      }
    });
  }

  // The random source calibrates its own mean work; feed that into the
  // load equations so the offered load is exactly `load`.
  workload::RandomGraphSource::Config gc;
  gc.lambda = 0.0;  // placeholder; set after calibration
  workload::RandomGraphSource prototype(engine, pm, master.split(), gc);
  workload::RateParams rp;
  rp.k = kNodes;
  rp.load = load;
  rp.frac_local = 0.75;
  rp.expected_global_work = prototype.calibrated_mean_work();
  const workload::Rates rates = workload::solve_rates(rp);

  std::vector<std::unique_ptr<workload::LocalSource>> locals;
  for (int i = 0; i < kNodes; ++i) {
    workload::LocalSource::Config lc;
    lc.lambda = rates.lambda_local;
    lc.id_base = (static_cast<std::uint64_t>(i) + 1) << 40;
    locals.push_back(std::make_unique<workload::LocalSource>(
        engine, *nodes[static_cast<std::size_t>(i)], collector,
        master.split(), lc));
    locals.back()->start();
  }
  gc.lambda = rates.lambda_global;
  workload::RandomGraphSource globals(engine, pm, master.split(), gc);
  globals.start();

  engine.run_until(env.sim_time);
  Outcome out;
  out.md_local = collector.counts(metrics::kLocalClass).miss_rate();
  out.md_global = collector.counts(metrics::global_class(0)).miss_rate();
  return out;
}

}  // namespace

int main() {
  using namespace sda;
  const util::BenchEnv env = util::bench_env();
  exp::ExperimentConfig header = exp::baseline_config();
  exp::figures::apply_bench_env(header, env);

  bench::print_header(
      "Ablation A12 — random serial-parallel shapes (depth <= 3, fan 2-4)",
      "shape-robustness: UD >> single strategies >> EQF-DIV1 should hold"
      " for arbitrary serial-parallel structure",
      header, env);

  util::Table table({"load", "SDA", "MD_local", "MD_global"});
  for (double load : {0.5, 0.6}) {
    for (const auto& [label, psp, ssp] :
         {std::tuple{"UD-UD", "ud", "ud"},
          std::tuple{"UD-DIV1", "div-1", "ud"},
          std::tuple{"EQF-UD", "ud", "eqf"},
          std::tuple{"EQF-DIV1", "div-1", "eqf"},
          std::tuple{"EQF-GF", "gf", "eqf"}}) {
      const Outcome o = run(psp, ssp, load, env);
      table.add_row({util::fmt(load, 1), label, util::fmt_pct(o.md_local),
                     util::fmt_pct(o.md_global)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
