// Ablation A4 — GF's DELTA is arbitrary as long as it is "big".
//
// GF subtracts a large constant from the subtask deadline so globals always
// beat locals on a pure EDF node while the EDF order *within* globals is
// preserved.  Any DELTA exceeding the deadline horizon should therefore be
// equivalent; too-small DELTAs degrade gracefully toward UD.
#include "bench/common.hpp"

int main() {
  using namespace sda;
  const util::BenchEnv env = util::bench_env();
  exp::ExperimentConfig base = exp::baseline_config();
  exp::figures::apply_bench_env(base, env);
  base.load = 0.6;

  bench::print_header(
      "Ablation A4 — GF DELTA sensitivity (load 0.6)",
      "all DELTA >> deadline horizon give identical results; small DELTA"
      " degrades toward UD",
      base, env);

  util::Table table({"DELTA", "MD_local", "MD_global"});
  // The deadline horizon here is ~ max ex + S_max ~ 10 time units; small
  // deltas below that no longer dominate every local deadline.
  for (const char* psp :
       {"ud", "gf-1", "gf-5", "gf-20", "gf-1000", "gf-1000000000"}) {
    exp::ExperimentConfig c = base;
    c.psp = psp;
    const metrics::Report report = exp::run_experiment(c);
    table.add_row(
        {psp,
         util::fmt_pct(report.summary(metrics::kLocalClass).miss_rate.mean),
         util::fmt_pct(
             report.summary(metrics::global_class(4)).miss_rate.mean)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("(gf-20 onward should be indistinguishable: with slack <= 5\n"
              "and exponential execution times, deadlines rarely stretch\n"
              "20 units past arrival.)\n");
  return 0;
}
