// Ablation A9 — bursty local arrivals (transient overload, made explicit).
//
// §5: "it is the occasional experience of transient overload that accounts
// for most of the missed deadlines".  Here the local streams switch between
// ON bursts (rate x factor) and OFF periods, mean load unchanged.  Expected:
// all miss rates rise with burstiness, and GF's advantage should persist or
// grow — during a local burst the L_earlier set (doomed locals that GF cuts
// ahead of) is exactly what explodes.
#include "bench/common.hpp"

int main() {
  using namespace sda;
  const util::BenchEnv env = util::bench_env();
  exp::ExperimentConfig base = exp::baseline_config();
  exp::figures::apply_bench_env(base, env);
  base.load = 0.5;

  bench::print_header(
      "Ablation A9 — bursty local arrivals (load 0.5, mean rate unchanged)",
      "transient overload drives misses (paper §5); deadline promotion keeps"
      " paying off under bursts",
      base, env);

  util::Table table({"burst factor", "strategy", "MD_local", "MD_global"});
  for (double factor : {1.0, 2.0, 4.0, 8.0}) {
    for (const char* psp : {"ud", "div-1", "gf"}) {
      exp::ExperimentConfig c = base;
      c.local_burst_factor = factor;
      c.psp = psp;
      const metrics::Report report = exp::run_experiment(c);
      table.add_row(
          {"x" + util::fmt(factor, 0), psp,
           util::fmt_pct(report.summary(metrics::kLocalClass).miss_rate.mean),
           util::fmt_pct(
               report.summary(metrics::global_class(4)).miss_rate.mean)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
