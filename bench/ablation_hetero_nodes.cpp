// Ablation A6 — heterogeneous node speeds.
//
// The paper models a homogeneous system "so that observations are more
// comprehensible" (§5) while noting real components differ (§3.2).  Here we
// spread node speeds (mean held at 1.0) and check whether the PSP story
// survives: slow nodes become chronic stragglers, which hits parallel
// globals (whose completion is a max over nodes) harder than locals — so
// deadline promotion should matter *more*, not less.
#include "bench/common.hpp"

int main() {
  using namespace sda;
  const util::BenchEnv env = util::bench_env();
  exp::ExperimentConfig base = exp::baseline_config();
  exp::figures::apply_bench_env(base, env);
  base.load = 0.5;

  bench::print_header(
      "Ablation A6 — heterogeneous node speeds (load 0.5, mean speed 1.0)",
      "globals degrade faster than locals as speed spread grows; DIV-1/GF"
      " remain effective",
      base, env);

  struct Case {
    const char* label;
    std::vector<double> speeds;
  };
  const Case cases[] = {
      {"homogeneous", {}},
      {"mild spread (0.8..1.2)", {0.8, 0.9, 1.0, 1.0, 1.1, 1.2}},
      {"wide spread (0.5..1.5)", {0.5, 0.75, 1.0, 1.0, 1.25, 1.5}},
  };

  util::Table table({"speeds", "strategy", "MD_local", "MD_global"});
  for (const Case& kase : cases) {
    for (const char* psp : {"ud", "div-1", "gf"}) {
      exp::ExperimentConfig c = base;
      c.node_speeds = kase.speeds;
      c.psp = psp;
      const metrics::Report report = exp::run_experiment(c);
      table.add_row(
          {kase.label, psp,
           util::fmt_pct(report.summary(metrics::kLocalClass).miss_rate.mean),
           util::fmt_pct(
               report.summary(metrics::global_class(4)).miss_rate.mean)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
