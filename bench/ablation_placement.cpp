// Ablation A8 — what if placement were free?
//
// The paper's premise is that subtasks are pinned ("no load balancing").
// This ablation relaxes that premise: parallel subtasks are placed on the
// currently least-queued nodes instead of uniformly at random.  It measures
// how much of the PSP pain is placement-induced queueing versus intrinsic
// max-of-n fan-in — and whether deadline assignment still adds value on top
// of good placement.
#include "bench/common.hpp"

int main() {
  using namespace sda;
  const util::BenchEnv env = util::bench_env();
  exp::ExperimentConfig base = exp::baseline_config();
  exp::figures::apply_bench_env(base, env);
  base.load = 0.6;

  bench::print_header(
      "Ablation A8 — uniform vs least-queued subtask placement (load 0.6)",
      "extension beyond the paper: good placement lowers MD_global on its"
      " own, but deadline assignment still helps on top",
      base, env);

  util::Table table({"placement", "strategy", "MD_local", "MD_global",
                     "MD_subtask"});
  for (const char* placement : {"uniform", "least-queued"}) {
    for (const char* psp : {"ud", "div-1", "gf"}) {
      exp::ExperimentConfig c = base;
      c.placement = placement;
      c.psp = psp;
      const metrics::Report report = exp::run_experiment(c);
      table.add_row(
          {placement, psp,
           util::fmt_pct(report.summary(metrics::kLocalClass).miss_rate.mean),
           util::fmt_pct(
               report.summary(metrics::global_class(4)).miss_rate.mean),
           util::fmt_pct(
               report.summary(metrics::kSubtaskClass).miss_rate.mean)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
