// Ablation A11 — service-time distribution (is the paper exponential-bound?).
//
// The paper's exponential execution times fix the coefficient of variation
// at 1.  Sweeping CV from 0 (deterministic) to 4 (hyperexponential) checks
// whether the PSP conclusions are a property of the heuristics or of the
// distributional choice.  Expected: absolute miss rates track CV strongly
// (variability is what makes deadlines miss), but the UD >> DIV-1 >= GF
// ordering — and DIV-1's "halve MD_global" effect — persist throughout.
#include "bench/common.hpp"

int main() {
  using namespace sda;
  const util::BenchEnv env = util::bench_env();
  exp::ExperimentConfig base = exp::baseline_config();
  exp::figures::apply_bench_env(base, env);
  base.load = 0.5;

  bench::print_header(
      "Ablation A11 — service-time distribution (load 0.5, mean fixed at 1)",
      "miss rates scale with service CV; the UD >> DIV-1 >= GF ordering is"
      " distribution-robust",
      base, env);

  struct Case {
    const char* label;
    const char* dist;
    double cv;
  };
  const Case cases[] = {
      {"deterministic (CV=0)", "deterministic", 0.0},
      {"uniform[0,2] (CV=.58)", "uniform", 0.0},
      {"exponential (CV=1, paper)", "exponential", 0.0},
      {"hyperexp (CV=2)", "hyperexp", 2.0},
      {"hyperexp (CV=4)", "hyperexp", 4.0},
  };
  util::Table table({"service dist", "MD_local(ud)", "MD_global(ud)",
                     "MD_global(div-1)", "MD_global(gf)"});
  for (const Case& kase : cases) {
    std::vector<std::string> row{kase.label};
    for (const char* psp : {"ud", "div-1", "gf"}) {
      exp::ExperimentConfig c = base;
      c.service_dist = kase.dist;
      if (kase.cv > 0.0) c.service_cv = kase.cv;
      c.psp = psp;
      const metrics::Report report = exp::run_experiment(c);
      if (std::string(psp) == "ud") {
        row.push_back(util::fmt_pct(
            report.summary(metrics::kLocalClass).miss_rate.mean));
      }
      row.push_back(util::fmt_pct(
          report.summary(metrics::global_class(4)).miss_rate.mean));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
