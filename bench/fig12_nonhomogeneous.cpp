// Figure 12: per-class MD when global tasks have n ~ U[2..6] parallel
// subtasks (six task classes: locals + five global sizes), at the baseline
// load, under UD / DIV-1 / GF.
//
// Shape to reproduce:
//  * under UD, MD grows steeply with n (n = 6 misses ~1/3 of deadlines,
//    ~4x the locals);
//  * DIV-1 levels all classes to roughly the same MD (its boost grows with
//    n automatically);
//  * GF pushes every global class below the locals.
#include "bench/common.hpp"

int main() {
  using namespace sda;
  const util::BenchEnv env = util::bench_env();
  exp::ExperimentConfig base = exp::baseline_config();
  exp::figures::apply_bench_env(base, env);
  base.n_min = 2;
  base.n_max = 6;

  bench::print_header(
      "Figure 12 — MD per task class, n ~ U[2..6] (UD vs DIV-1 vs GF)",
      "UD: MD grows with n (n=6 ~ 33%, ~4x locals); DIV-1 evens all classes"
      " out; GF drops globals below locals",
      base, env);

  util::Table table({"class", "MD(UD)", "MD(DIV-1)", "MD(GF)"});
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"local"});
  for (int n = 2; n <= 6; ++n) rows.push_back({"global n=" + std::to_string(n)});

  util::AsciiChart chart(60, 18);
  chart.set_labels("class (x=1: local, x=n: global size n)",
                   "fraction of missed deadlines");

  const char markers[] = {'U', 'D', 'G'};
  int mi = 0;
  for (const char* psp : {"ud", "div-1", "gf"}) {
    exp::ExperimentConfig c = base;
    c.psp = psp;
    const metrics::Report report = exp::run_experiment(c);
    util::Series s{std::string("MD ") + psp, markers[mi++], {}, {}};
    auto cell = [&](int cls) {
      const auto ci = report.summary(cls).miss_rate;
      return ci.n >= 2 ? util::fmt_pct_ci(ci.mean, ci.half_width)
                       : util::fmt_pct(ci.mean);
    };
    rows[0].push_back(cell(metrics::kLocalClass));
    s.xs.push_back(1.0);
    s.ys.push_back(report.summary(metrics::kLocalClass).miss_rate.mean);
    for (int n = 2; n <= 6; ++n) {
      rows[static_cast<std::size_t>(n - 1)].push_back(
          cell(metrics::global_class(n)));
      s.xs.push_back(static_cast<double>(n));
      s.ys.push_back(report.summary(metrics::global_class(n)).miss_rate.mean);
    }
    chart.add(std::move(s));
  }
  for (auto& row : rows) table.add_row(std::move(row));
  std::printf("%s\n", table.render().c_str());
  std::printf("%s\n", chart.render().c_str());
  return 0;
}
