// Shared output helpers for the figure-regeneration benches.
//
// Every bench prints:  (1) a header with the figure id, the paper's claim,
// and the run-length settings;  (2) a numeric table of the measured series
// (with 95% CIs when more than one replication ran);  (3) an ASCII chart of
// the same series so the figure's *shape* can be compared with the paper.
#pragma once

#include <cstddef>
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "src/exp/config.hpp"
#include "src/exp/figures.hpp"
#include "src/metrics/task_class.hpp"
#include "src/util/ascii_chart.hpp"
#include "src/util/env.hpp"
#include "src/util/feq.hpp"
#include "src/util/table.hpp"

namespace bench {

using sda::exp::ExperimentConfig;
using sda::exp::SweepPoint;
using sda::exp::figures::LoadSweepSeries;

/// Applies key=value command-line overrides to @p config through the
/// ExperimentConfig kv API (`fig06_div load=0.9 psp=gf`), so every figure
/// bench accepts the same knobs as sda_run.  Unknown keys and bad values
/// print set()'s error — including its did-you-mean suggestion — and
/// return false; malformed (no '=') args print usage and return false.
inline bool apply_kv_args(int argc, char** argv, ExperimentConfig& config) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos || eq == 0) {
      std::fprintf(stderr, "usage: %s [key=value ...]\n", argv[0]);
      return false;
    }
    try {
      config.set(arg.substr(0, eq), arg.substr(eq + 1));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return false;
    }
  }
  return true;
}

/// BenchEnv run-control fields copied out of a config, so benches that
/// took kv overrides report and use the overridden run length.
inline sda::util::BenchEnv env_from_config(const ExperimentConfig& config) {
  sda::util::BenchEnv env;
  env.sim_time = config.sim_time;
  env.replications = config.replications;
  env.warmup_fraction = config.warmup_fraction;
  env.seed = config.seed;
  return env;
}

inline void print_header(const std::string& figure,
                         const std::string& paper_claim,
                         const ExperimentConfig& base,
                         const sda::util::BenchEnv& env) {
  std::printf("================================================================\n");
  std::printf("%s\n", figure.c_str());
  std::printf("================================================================\n");
  std::printf("paper:    %s\n", paper_claim.c_str());
  std::printf("system:   %s\n", base.describe().c_str());
  std::printf("run:      %s\n", env.describe().c_str());
  std::printf("\n");
}

/// Formats one MD cell, with the CI half-width when available.
inline std::string md_cell(const SweepPoint& p, int cls) {
  const auto s = p.report.summary(cls).miss_rate;
  if (s.n >= 2) return sda::util::fmt_pct_ci(s.mean, s.half_width);
  return sda::util::fmt_pct(s.mean);
}

/// Prints a table for a set of load-sweep series: one row per x-value, one
/// MD_local and MD_global column pair per series (plus MD_subtask for the
/// first series when requested).
inline void print_load_sweep_table(
    const std::vector<LoadSweepSeries>& series, const std::string& x_name,
    bool include_subtask = false, int global_cls = sda::metrics::global_class(4)) {
  std::vector<std::string> header{x_name};
  for (const auto& s : series) {
    std::string tag = s.ssp == "ud" ? s.psp : s.ssp + "-" + s.psp;
    std::string local_col("MD_local(");
    local_col += tag;
    local_col += ")";
    std::string global_col("MD_global(");
    global_col += tag;
    global_col += ")";
    header.push_back(std::move(local_col));
    header.push_back(std::move(global_col));
  }
  if (include_subtask && !series.empty()) header.push_back("MD_subtask(first)");
  sda::util::Table table(header);

  if (series.empty()) return;
  const std::size_t rows = series.front().points.size();
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<std::string> row{sda::util::fmt(series.front().points[r].x, 2)};
    for (const auto& s : series) {
      row.push_back(md_cell(s.points[r], sda::metrics::kLocalClass));
      row.push_back(md_cell(s.points[r], global_cls));
    }
    if (include_subtask) {
      row.push_back(md_cell(series.front().points[r], sda::metrics::kSubtaskClass));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
}

/// Charts MD_global (solid in the paper) and MD_local (dotted) per series.
inline void chart_load_sweep(const std::vector<LoadSweepSeries>& series,
                             const std::string& x_label,
                             int global_cls = sda::metrics::global_class(4)) {
  sda::util::AsciiChart chart(72, 22);
  chart.set_labels(x_label, "fraction of missed deadlines");
  const char markers[] = {'G', 'D', 'U', 'E', 'X', 'O'};
  int mi = 0;
  for (const auto& s : series) {
    const std::string tag = s.ssp == "ud" ? s.psp : s.ssp + "-" + s.psp;
    sda::util::Series global_series;
    global_series.name = "MD_global " + tag;
    global_series.marker = markers[mi % 6];
    sda::util::Series local_series;
    local_series.name = "MD_local " + tag;
    local_series.marker =
        static_cast<char>(std::tolower(markers[mi % 6]));
    ++mi;
    for (const auto& p : s.points) {
      global_series.xs.push_back(p.x);
      global_series.ys.push_back(sda::exp::figures::md(p, global_cls));
      local_series.xs.push_back(p.x);
      local_series.ys.push_back(
          sda::exp::figures::md(p, sda::metrics::kLocalClass));
    }
    chart.add(std::move(global_series));
    chart.add(std::move(local_series));
  }
  std::printf("%s\n", chart.render().c_str());
}

/// "Measured vs paper" one-liner, for the in-text anchor numbers.
inline void check_line(const std::string& what, double measured,
                       double paper) {
  std::printf("  %-52s measured %6.1f%%   paper ~%5.1f%%\n", what.c_str(),
              measured * 100.0, paper * 100.0);
}

}  // namespace bench
