// Figure 11: UD vs DIV-1 with process-manager abortion (tasks are killed at
// their *real* deadline; local schedulers never abort).
//
// Shape to reproduce:
//  * all miss rates drop relative to the no-abortion Figure 7 (no resources
//    wasted on tardy tasks);
//  * DIV-1 still roughly halves MD_global (paper at load 0.5: UD 15.0% ->
//    DIV-1 7.8%);
//  * GF performs like DIV-1 here (the paper omits its curves; we print them
//    for completeness).
#include "bench/common.hpp"

int main() {
  using namespace sda;
  const util::BenchEnv env = util::bench_env();
  exp::ExperimentConfig base = exp::baseline_config();
  exp::figures::apply_bench_env(base, env);
  base.pm_abort = core::PmAbortMode::kRealDeadline;

  bench::print_header(
      "Figure 11 — UD vs DIV-1 with process-manager abortion (MD vs load)",
      "abortion lowers all miss rates; at load 0.5 MD_global: UD 15.0% vs"
      " DIV-1 7.8%; GF ~= DIV-1 (curves omitted in the paper)",
      base, env);

  const auto loads = exp::figures::default_loads();
  auto series = exp::figures::load_sweep(
      base, {{"ud", "ud"}, {"div-1", "ud"}, {"gf", "ud"}}, loads);

  bench::print_load_sweep_table(series, "load");
  bench::chart_load_sweep(series, "normalized load");

  for (std::size_t i = 0; i < loads.size(); ++i) {
    if (util::fne(loads[i], 0.5)) continue;
    bench::check_line(
        "MD_global(UD, pm-abort) at load 0.5",
        exp::figures::md(series[0].points[i], metrics::global_class(4)), 0.15);
    bench::check_line(
        "MD_global(DIV-1, pm-abort) at load 0.5",
        exp::figures::md(series[1].points[i], metrics::global_class(4)),
        0.078);
  }
  return 0;
}
