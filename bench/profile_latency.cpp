// Latency profile — beyond miss *rates*, how late is late?
//
// The paper reports only missed-deadline fractions; this profile adds the
// response-time and tardiness distributions per task class under each PSP
// strategy.  Two effects worth seeing:
//  * DIV-x/GF shorten subtask queueing (that is the whole mechanism), so
//    global response times drop;
//  * local mean response rises only a little — the locals GF overtakes were
//    mostly doomed anyway (Figure 8's argument), but their tardiness tail
//    grows.
#include "bench/common.hpp"

#include "src/exp/runner.hpp"

int main() {
  using namespace sda;
  const util::BenchEnv env = util::bench_env();
  exp::ExperimentConfig base = exp::baseline_config();
  exp::figures::apply_bench_env(base, env);
  base.load = 0.6;

  bench::print_header(
      "Latency profile — response time and tardiness per class (load 0.6)",
      "DIV-1/GF shorten global response times; local tardiness tail grows"
      " slightly (Figure 8's L_earlier argument)",
      base, env);

  util::Table table({"strategy", "class", "mean resp", "max resp",
                     "mean tardy", "P90 tardy", "P99 tardy", "max tardy"});
  for (const char* psp : {"ud", "div-1", "gf"}) {
    exp::ExperimentConfig c = base;
    c.psp = psp;
    c.tardiness_histograms = true;
    const exp::RunResult r = exp::run_once(c, env.seed);
    const struct {
      const char* label;
      int cls;
    } classes[] = {{"local", metrics::kLocalClass},
                   {"subtask", metrics::kSubtaskClass},
                   {"global", metrics::global_class(4)}};
    for (const auto& cls : classes) {
      const metrics::ClassTimings t = r.collector.timings(cls.cls);
      const metrics::TardinessProfile q =
          r.collector.tardiness_profile(cls.cls);
      table.add_row({psp, cls.label, util::fmt(t.response.mean(), 2),
                     util::fmt(t.response.max(), 1),
                     util::fmt(t.tardiness.mean(), 3), util::fmt(q.p90, 2),
                     util::fmt(q.p99, 2), util::fmt(t.tardiness.max(), 1)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
