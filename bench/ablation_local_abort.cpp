// Ablation A1 — local-scheduler abortion (paper §7.3, "results not shown").
//
// When nodes abort any task whose *virtual* deadline passes:
//  * GF is inapplicable (every subtask's virtual deadline is already in the
//    past on arrival; it would be aborted immediately and resubmitted with
//    its real deadline, turning GF into UD-with-overhead);
//  * DIV-x performs poorly (the paper's headline finding): aborted subtasks
//    lose their invested service and return with their slack mostly burned.
//    Note a nuance our resubmission model exposes: moderate x (DIV-1) is
//    the *worst* point — subtasks run long enough to waste real work before
//    the abort.  Very large x aborts before any service is invested, which
//    degenerates toward UD-with-overhead rather than getting still worse;
//  * marking subtasks non-abortable ("special directives") restores DIV-1's
//    no-abort behaviour.
#include "bench/common.hpp"

int main() {
  using namespace sda;
  const util::BenchEnv env = util::bench_env();
  exp::ExperimentConfig base = exp::baseline_config();
  exp::figures::apply_bench_env(base, env);
  base.local_abort = sched::LocalAbortPolicy::kAbortOnVirtualDeadline;
  base.load = 0.6;  // "moderate to tight environment"

  bench::print_header(
      "Ablation A1 — abortion by local schedulers (paper §7.3)",
      "DIV-x performs poorly under local aborts, worse for bigger x;"
      " non-abortable directives fix it",
      base, env);

  util::Table table({"strategy", "MD_local", "MD_global", "resubmissions/run",
                     "local aborts"});
  struct Case {
    const char* label;
    const char* psp;
    bool non_abortable;
  };
  const Case cases[] = {
      {"ud", "ud", false},
      {"div-1", "div-1", false},
      {"div-4", "div-4", false},
      {"div-16", "div-16", false},
      {"div-1 + non-abortable", "div-1", true},
      {"gf + non-abortable", "gf", true},
  };
  for (const Case& kase : cases) {
    exp::ExperimentConfig c = base;
    c.psp = kase.psp;
    c.subtasks_non_abortable = kase.non_abortable;
    // Aggregate diagnostics over replications by hand (we need resubmission
    // counts, which Reports do not carry).
    metrics::Report report;
    double resub = 0.0, aborts = 0.0, globals = 0.0;
    for (int rep = 0; rep < c.replications; ++rep) {
      const std::uint64_t seed =
          c.seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(rep + 1);
      exp::RunResult r = exp::run_once(c, seed);
      resub += static_cast<double>(r.resubmissions);
      aborts += static_cast<double>(r.local_scheduler_aborts);
      globals += static_cast<double>(r.globals_generated);
      report.add_replication(r.collector);
    }
    table.add_row(
        {kase.label,
         util::fmt_pct(report.summary(metrics::kLocalClass).miss_rate.mean),
         util::fmt_pct(report.summary(metrics::global_class(4)).miss_rate.mean),
         util::fmt(globals > 0 ? resub / globals : 0.0, 2),
         util::fmt(aborts, 0)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("note: plain GF is omitted without directives — its virtual\n"
              "deadlines are pre-expired by construction, so every subtask\n"
              "would be aborted on arrival (the paper calls GF inapplicable\n"
              "here).\n");
  return 0;
}
