// Figure 6: UD vs DIV-1 vs DIV-2 in the baseline experiment.
//
// Shape to reproduce:
//  * DIV-1 roughly halves MD_global relative to UD (25% -> 13% at load 0.5)
//    at a mild cost to locals (9% -> 11.7%);
//  * DIV-2 is barely distinguishable from DIV-1 except at very high load;
//  * missed *work* improves under DIV-1 (0.13 -> 0.12 at load 0.5) even
//    though the missed-task *count* gets worse.
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace sda;
  exp::ExperimentConfig base = exp::baseline_config();
  exp::figures::apply_bench_env(base, util::bench_env());
  // key=value overrides (same vocabulary as sda_run) win over SDA_* env.
  if (!bench::apply_kv_args(argc, argv, base)) return 64;
  const util::BenchEnv env = bench::env_from_config(base);

  bench::print_header(
      "Figure 6 — UD vs DIV-x in the baseline experiment (MD vs load)",
      "DIV-1 halves MD_global (25%->13% at load .5) for +~2.7pp MD_local;"
      " DIV-2 ~= DIV-1 except at very high load",
      base, env);

  const auto loads = exp::figures::default_loads();
  auto series = exp::figures::load_sweep(
      base, {{"ud", "ud"}, {"div-1", "ud"}, {"div-2", "ud"}}, loads);

  bench::print_load_sweep_table(series, "load");
  bench::chart_load_sweep(series, "normalized load");

  for (std::size_t i = 0; i < loads.size(); ++i) {
    if (util::fne(loads[i], 0.5)) continue;
    const auto& ud = series[0].points[i];
    const auto& div1 = series[1].points[i];
    bench::check_line("MD_local(DIV-1) at load 0.5",
                      exp::figures::md(div1, metrics::kLocalClass), 0.117);
    bench::check_line("MD_global(DIV-1) at load 0.5",
                      exp::figures::md(div1, metrics::global_class(4)), 0.13);
    // §6.1 missed-work comparison.
    const double mw_ud = ud.report.overall_missed_work().mean;
    const double mw_div1 = div1.report.overall_missed_work().mean;
    std::printf("\nmissed work at load 0.5: UD %.3f vs DIV-1 %.3f "
                "(paper: 0.13 vs 0.12 — DIV-1 wins on work, loses on count)\n",
                mw_ud, mw_div1);
    // Missed-task *count* comparison over locals + globals (subtask misses
    // are already counted inside their global task).
    auto missed_count = [](const bench::SweepPoint& p) {
      double missed = 0.0;
      for (int cls : p.report.classes()) {
        if (cls == metrics::kSubtaskClass) continue;
        const auto s = p.report.summary(cls);
        missed += s.miss_rate.mean * static_cast<double>(s.finished_total);
      }
      return missed;
    };
    std::printf("missed task count at load 0.5: UD ~%.0f vs DIV-1 ~%.0f "
                "(paper: DIV-1 misses *more tasks* overall)\n",
                missed_count(ud), missed_count(div1));
  }
  return 0;
}
