// Ablation A3 — EQF's sensitivity to execution-time estimation error.
//
// EQF needs pex(); [6] claims it "delivers good performance even when the
// estimate can be off by a factor of 2".  We run the Figure 15 EQF-DIV1
// configuration with pex = ex * f^U[-1,1] for increasing noise factors f,
// plus the degenerate always-the-mean estimator.
#include "bench/common.hpp"

int main() {
  using namespace sda;
  const util::BenchEnv env = util::bench_env();
  exp::ExperimentConfig base = exp::graph_config();
  exp::figures::apply_bench_env(base, env);
  base.load = 0.6;
  base.psp = "div-1";
  base.ssp = "eqf";

  bench::print_header(
      "Ablation A3 — EQF vs pex estimation error (Fig 14 graph, load 0.6)",
      "[6]: EQF tolerates estimates off by a factor of ~2; degradation"
      " should be graceful",
      base, env);

  util::Table table({"pex model", "MD_local", "MD_global"});
  struct Case {
    const char* label;
    workload::PexModel model;
  };
  const Case cases[] = {
      {"exact", workload::PexModel::exact()},
      {"noise f=1.5", workload::PexModel::log_uniform(1.5)},
      {"noise f=2", workload::PexModel::log_uniform(2.0)},
      {"noise f=4", workload::PexModel::log_uniform(4.0)},
      {"noise f=8", workload::PexModel::log_uniform(8.0)},
      {"always mean (1.0)", workload::PexModel::distribution_mean(1.0)},
  };
  for (const Case& kase : cases) {
    exp::ExperimentConfig c = base;
    c.pex = kase.model;
    const metrics::Report report = exp::run_experiment(c);
    table.add_row(
        {kase.label,
         util::fmt_pct(report.summary(metrics::kLocalClass).miss_rate.mean),
         util::fmt_pct(
             report.summary(metrics::global_class(0)).miss_rate.mean)});
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
