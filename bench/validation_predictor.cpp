// Validation V1 — analytic predictor vs simulation.
//
// The core::predict_miss planning tool approximates each node as M/M/1 and
// each leaf's completion as independent.  This bench quantifies the gap for
// UD across load and across n:
//  * shape must track (monotone in load, amplified by n);
//  * under UD the prediction should land in the right ballpark (it ignores
//    EDF's reordering, which cuts both ways);
//  * the bench prints both so EXPERIMENTS.md can state the observed bias
//    honestly.
#include <cmath>

#include "bench/common.hpp"

#include "src/core/analysis.hpp"
#include "src/core/predictor.hpp"
#include "src/task/builder.hpp"

namespace {

// Expected-case task: n parallel subtasks with the mean demand (1.0) and
// the mean deadline allowance E[max ex] + mean slack (Equation 2).
double predicted_global_miss(int n, double load) {
  using namespace sda;
  auto builder = task::parallel();
  for (int i = 0; i < n; ++i) builder.leaf(i, 1.0, 1.0);
  const task::TreePtr tree = builder.build();
  const double allowance =
      core::analysis::expected_max_exponential(n, 1.0) + (1.25 + 5.0) / 2.0;
  const auto psp = core::make_psp_strategy("ud");
  const auto ssp = core::make_ssp_strategy("ud");
  return core::predict_miss(*tree, 0.0, allowance, *psp, *ssp,
                            core::NodeModel{load, 1.0})
      .miss_probability;
}

}  // namespace

int main() {
  using namespace sda;
  const util::BenchEnv env = util::bench_env();
  exp::ExperimentConfig base = exp::baseline_config();
  exp::figures::apply_bench_env(base, env);

  bench::print_header(
      "Validation V1 — analytic predictor vs simulation (UD)",
      "M/M/1 + independence approximation should track the simulated"
      " MD_global's shape in load and n",
      base, env);

  util::Table table({"load", "n", "predicted MD_global",
                     "simulated MD_global", "ratio"});
  for (double load : {0.3, 0.5, 0.7}) {
    for (int n : {2, 4, 6}) {
      exp::ExperimentConfig c = base;
      c.load = load;
      c.n_min = c.n_max = n;
      const metrics::Report report = exp::run_experiment(c);
      const double simulated =
          report.summary(metrics::global_class(n)).miss_rate.mean;
      const double predicted = predicted_global_miss(n, load);
      table.add_row({util::fmt(load, 1), std::to_string(n),
                     util::fmt_pct(predicted), util::fmt_pct(simulated),
                     util::fmt(simulated > 0 ? predicted / simulated : 0.0,
                               2)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("(expected-case prediction uses the mean allowance; the\n"
              "simulation averages over random demands and slacks, so a\n"
              "constant-factor bias is expected — the shape is the point.)\n");
  return 0;
}
