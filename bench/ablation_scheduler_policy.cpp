// Ablation A5 — substrate scheduling policy: EDF vs FIFO vs SPT.
//
// The SDA strategies act purely through the deadlines they present to the
// local schedulers.  Under FIFO or SPT, deadlines are ignored, so UD, DIV-1
// and GF must coincide (up to identical arrival streams they are *exactly*
// the same system) — confirming the paper's improvements come from nodes
// honoring deadlines, not from the process manager's bookkeeping.
#include "bench/common.hpp"

int main() {
  using namespace sda;
  const util::BenchEnv env = util::bench_env();
  exp::ExperimentConfig base = exp::baseline_config();
  exp::figures::apply_bench_env(base, env);
  base.load = 0.6;

  bench::print_header(
      "Ablation A5 — scheduler policy substrate (load 0.6)",
      "FIFO/SPT ignore deadlines: all PSP strategies coincide there; EDF is"
      " what makes deadline assignment matter",
      base, env);

  util::Table table({"policy", "MD_global(ud)", "MD_global(div-1)",
                     "MD_global(gf)", "MD_local(ud)"});
  for (const char* policy : {"edf", "fifo", "spt"}) {
    std::vector<std::string> row{policy};
    double local_ud = 0.0;
    for (const char* psp : {"ud", "div-1", "gf"}) {
      exp::ExperimentConfig c = base;
      c.scheduler_policy = policy;
      c.psp = psp;
      const metrics::Report report = exp::run_experiment(c);
      row.push_back(util::fmt_pct(
          report.summary(metrics::global_class(4)).miss_rate.mean));
      if (std::string(psp) == "ud") {
        local_ud = report.summary(metrics::kLocalClass).miss_rate.mean;
      }
    }
    row.push_back(util::fmt_pct(local_ud));
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
