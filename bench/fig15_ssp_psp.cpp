// Figure 15 (with Table 2): combined SSP x PSP strategies on the Figure 14
// serial-parallel task graph {1, 4, 1, 4, 1} (the stock-trading scenario),
// global slack U[6.25, 25].
//
// Shape to reproduce:
//  * at low load globals miss slightly *less* than locals (their slack is
//    5x larger);
//  * UD-UD misses vastly more globals than locals as load grows;
//  * EQF-UD and UD-DIV1 each help substantially but are inadequate alone at
//    high load;
//  * EQF-DIV1 keeps MD_global close to MD_local up to load ~0.6 — the
//    benefits are additive.
#include "bench/common.hpp"

int main() {
  using namespace sda;
  const util::BenchEnv env = util::bench_env();
  exp::ExperimentConfig base = exp::graph_config();
  exp::figures::apply_bench_env(base, env);

  bench::print_header(
      "Figure 15 — SDA combinations on the Figure 14 graph (Table 2)",
      "UD-UD >> others on MD_global; EQF and DIV-1 each help; EQF-DIV1 keeps"
      " MD_global ~ MD_local up to load ~0.6",
      base, env);

  // Table 2: the four SSP/PSP combinations.
  const std::vector<std::pair<std::string, std::string>> combos = {
      {"ud", "ud"},     // UD-UD
      {"div-1", "ud"},  // UD-DIV1  (SSP=UD, PSP=DIV-1)
      {"ud", "eqf"},    // EQF-UD   (SSP=EQF, PSP=UD)
      {"div-1", "eqf"}, // EQF-DIV1
  };
  const auto loads = exp::figures::default_loads();
  auto series = exp::figures::load_sweep(base, combos, loads);
  // Rename for the paper's SSP-PSP naming order.
  series[0].psp = "UD-UD";   series[0].ssp = "ud";
  series[1].psp = "UD-DIV1"; series[1].ssp = "ud";
  series[2].psp = "EQF-UD";  series[2].ssp = "ud";
  series[3].psp = "EQF-DIV1"; series[3].ssp = "ud";

  bench::print_load_sweep_table(series, "load", false,
                                metrics::global_class(0));
  bench::chart_load_sweep(series, "normalized load", metrics::global_class(0));

  // Additivity summary at the highest common load with UD-UD not saturated.
  for (std::size_t i = 0; i < loads.size(); ++i) {
    if (util::fne(loads[i], 0.6)) continue;
    std::printf("at load 0.6, MD_global: UD-UD %.1f%%, UD-DIV1 %.1f%%, "
                "EQF-UD %.1f%%, EQF-DIV1 %.1f%% (MD_local(EQF-DIV1) %.1f%%)\n",
                exp::figures::md(series[0].points[i], metrics::global_class(0)) * 100,
                exp::figures::md(series[1].points[i], metrics::global_class(0)) * 100,
                exp::figures::md(series[2].points[i], metrics::global_class(0)) * 100,
                exp::figures::md(series[3].points[i], metrics::global_class(0)) * 100,
                exp::figures::md(series[3].points[i], metrics::kLocalClass) * 100);
  }
  return 0;
}
