// Figure 9: MD under DIV-x as a function of x, for n in {2, 4, 6}.
//
// Shape to reproduce:
//  * every MD curve flattens as x grows;
//  * curves stabilize at smaller x for larger n (the n*x product is what
//    matters);
//  * n = 2 has essentially stabilized by x = 1, so x = 1 suffices.
#include "bench/common.hpp"

int main() {
  using namespace sda;
  const util::BenchEnv env = util::bench_env();
  exp::ExperimentConfig base = exp::baseline_config();
  exp::figures::apply_bench_env(base, env);

  bench::print_header(
      "Figure 9 — MD(DIV-x) as a function of x, for n = 2, 4, 6",
      "MD curves flatten as x grows; larger n stabilizes at smaller x;"
      " x = 1 is sufficient in practice",
      base, env);

  const std::vector<double> xs = {0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0};
  util::Table table({"x", "MD_loc(n=2)", "MD_glb(n=2)", "MD_loc(n=4)",
                     "MD_glb(n=4)", "MD_loc(n=6)", "MD_glb(n=6)"});
  util::AsciiChart chart(72, 22);
  chart.set_labels("x (DIV-x parameter)", "fraction of missed deadlines");

  std::vector<std::vector<std::string>> rows(xs.size());
  for (std::size_t r = 0; r < xs.size(); ++r) rows[r].push_back(util::fmt(xs[r], 2));

  const char markers[] = {'2', '4', '6'};
  int mi = 0;
  for (int n : {2, 4, 6}) {
    exp::ExperimentConfig c = base;
    c.n_min = c.n_max = n;
    auto points = exp::sweep(c, xs, [](exp::ExperimentConfig& cfg, double x) {
      cfg.psp = "div-" + util::fmt(x, 4);
    });
    util::Series glb{"MD_global n=" + std::to_string(n), markers[mi], {}, {}};
    util::Series loc{"MD_local n=" + std::to_string(n),
                     static_cast<char>('a' + mi), {}, {}};
    ++mi;
    for (std::size_t r = 0; r < points.size(); ++r) {
      rows[r].push_back(bench::md_cell(points[r], metrics::kLocalClass));
      rows[r].push_back(bench::md_cell(points[r], metrics::global_class(n)));
      glb.xs.push_back(points[r].x);
      glb.ys.push_back(exp::figures::md(points[r], metrics::global_class(n)));
      loc.xs.push_back(points[r].x);
      loc.ys.push_back(exp::figures::md(points[r], metrics::kLocalClass));
    }
    chart.add(std::move(glb));
    chart.add(std::move(loc));
  }
  for (auto& row : rows) table.add_row(std::move(row));
  std::printf("%s\n", table.render().c_str());
  std::printf("%s\n", chart.render().c_str());
  std::printf("(solid-equivalent: digits 2/4/6 = MD_global; letters a/b/c ="
              " MD_local for n=2/4/6)\n");
  return 0;
}
