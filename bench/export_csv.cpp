// Regenerates the main figures' series and writes them as CSV files under
// ./results/ for external plotting (gnuplot, matplotlib, R).  The schema is
// long-form: series,x,class,class_name,miss_rate,miss_rate_hw,missed_work,
// finished.
#include <cstdio>
#include <filesystem>

#include "bench/common.hpp"

#include "src/exp/csv.hpp"

int main() {
  using namespace sda;
  const util::BenchEnv env = util::bench_env();
  exp::ExperimentConfig base = exp::baseline_config();
  exp::figures::apply_bench_env(base, env);

  std::error_code ec;
  std::filesystem::create_directories("results", ec);
  if (ec) {
    std::fprintf(stderr, "cannot create ./results: %s\n",
                 ec.message().c_str());
    return 1;
  }

  const auto loads = exp::figures::default_loads();
  int written = 0;
  auto dump = [&](const std::string& file,
                  const std::vector<exp::figures::LoadSweepSeries>& series,
                  const std::string& x_name) {
    std::vector<std::pair<std::string, std::vector<exp::SweepPoint>>> named;
    for (const auto& s : series) {
      const std::string tag = s.ssp == "ud" ? s.psp : s.ssp + "-" + s.psp;
      named.push_back({tag, s.points});
    }
    const std::string path = "results/" + file;
    if (exp::write_text_file(path, exp::series_to_csv(named, x_name))) {
      std::printf("wrote %s\n", path.c_str());
      ++written;
    } else {
      std::fprintf(stderr, "failed to write %s\n", path.c_str());
    }
  };

  // Figures 5-7 share one sweep set.
  dump("fig05_07_psp_load_sweep.csv",
       exp::figures::load_sweep(
           base, {{"ud", "ud"}, {"div-1", "ud"}, {"div-2", "ud"}, {"gf", "ud"}},
           loads),
       "load");

  // Figure 11: with process-manager abortion.
  {
    exp::ExperimentConfig ab = base;
    ab.pm_abort = core::PmAbortMode::kRealDeadline;
    dump("fig11_pm_abort_load_sweep.csv",
         exp::figures::load_sweep(ab, {{"ud", "ud"}, {"div-1", "ud"}, {"gf", "ud"}},
                                  loads),
         "load");
  }

  // Figure 15: the serial-parallel graph with Table 2's combinations.
  {
    exp::ExperimentConfig g = exp::graph_config();
    exp::figures::apply_bench_env(g, env);
    dump("fig15_ssp_psp_load_sweep.csv",
         exp::figures::load_sweep(
             g, {{"ud", "ud"}, {"div-1", "ud"}, {"ud", "eqf"}, {"div-1", "eqf"}},
             loads),
         "load");
  }

  // Figure 10: frac_local sweep.
  {
    const std::vector<double> fracs = {0.0, 0.15, 0.3, 0.45, 0.6, 0.75, 0.9};
    std::vector<exp::figures::LoadSweepSeries> series;
    for (const char* psp : {"ud", "div-1", "gf"}) {
      exp::ExperimentConfig c = base;
      c.psp = psp;
      exp::figures::LoadSweepSeries s;
      s.psp = psp;
      s.ssp = "ud";
      s.points = exp::sweep(
          c, fracs,
          [](exp::ExperimentConfig& cfg, double f) { cfg.frac_local = f; });
      series.push_back(std::move(s));
    }
    dump("fig10_frac_local_sweep.csv", series, "frac_local");
  }

  std::printf("%d CSV files under ./results (schema: series,x,class,...)\n",
              written);
  return written == 4 ? 0 : 1;
}
