// Ablation A7 — non-homogeneous subtask execution distributions.
//
// §7.4 varies the *number* of subtasks but leaves heterogeneous execution
// *distributions* to "space limitations".  Here each subtask's exponential
// mean is spread by a factor s^U[-1,1] (load solver compensates for the
// mean shift).  A wider spread makes the max-term in Equation 2 heavier
// relative to the typical subtask, so under UD globals should hurt more;
// DIV-x's promotion is size-blind and should still level things.
#include "bench/common.hpp"

int main() {
  using namespace sda;
  const util::BenchEnv env = util::bench_env();
  exp::ExperimentConfig base = exp::baseline_config();
  exp::figures::apply_bench_env(base, env);
  base.load = 0.5;

  bench::print_header(
      "Ablation A7 — per-subtask execution-time spread (load 0.5)",
      "heterogeneous subtask demands keep the UD >> DIV-1 >= GF ordering",
      base, env);

  util::Table table({"exec spread", "strategy", "MD_local", "MD_global"});
  for (double spread : {1.0, 2.0, 4.0}) {
    for (const char* psp : {"ud", "div-1", "gf"}) {
      exp::ExperimentConfig c = base;
      c.subtask_exec_spread = spread;
      c.psp = psp;
      const metrics::Report report = exp::run_experiment(c);
      table.add_row(
          {"s=" + util::fmt(spread, 1), psp,
           util::fmt_pct(report.summary(metrics::kLocalClass).miss_rate.mean),
           util::fmt_pct(
               report.summary(metrics::global_class(4)).miss_rate.mean)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
