// Ablation A13 — fault injection and deadline-aware recovery.
//
// The paper's system model is fail-free: the only failure mode is a missed
// deadline.  This ablation adds the fault layer (src/fault/) and asks how
// the deadline-assignment strategies degrade when subtask attempts can die
// partway, and how much the recovery policy matters:
//
//   none   retries disabled — the first fault sheds the whole global task;
//   stale  bounded retries that reuse the original virtual deadline.  The
//          deadline reflects slack that no longer exists, so an expired
//          one jumps every EDF queue it meets, and doomed runs keep
//          burning service to the end;
//   sda    bounded retries that re-run the SDA assignment over the
//          unfinished remainder with the slack left at retry time, and
//          shed runs whose remaining critical path no longer fits.
//
// Expected shape: MD_global grows with the failure rate under every
// policy, but `sda` degrades the most gracefully — honest deadlines keep
// the EDF ordering meaningful and shedding stops paying for lost causes —
// while `none` converts every fault into a dead run.  The strategy
// ordering of Figures 5-7 (GF < DIV-1 < UD) survives moderate fault rates.
#include "bench/common.hpp"

namespace {

using namespace sda;

struct Policy {
  const char* label;
  int max_retries;
  const char* deadline;  // "stale" | "sda"
  bool shed;
};

constexpr Policy kPolicies[] = {
    {"none", 0, "stale", false},
    {"stale", 4, "stale", false},
    {"sda", 4, "sda", true},
};

exp::ExperimentConfig with_policy(exp::ExperimentConfig c, const Policy& p) {
  c.max_retries_per_run = p.max_retries;
  c.retry_deadline = p.deadline;
  c.shed_negative_slack = p.shed;
  return c;
}

struct Cell {
  double md_global = 0.0;
  double retries_per_run = 0.0;
  double shed_fraction = 0.0;
};

Cell measure(const exp::ExperimentConfig& c) {
  metrics::Report report;
  std::uint64_t globals = 0, shed = 0, retries = 0;
  for (int rep = 0; rep < c.replications; ++rep) {
    const std::uint64_t seed =
        c.seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(rep + 1);
    exp::RunResult r = exp::run_once(c, seed);
    report.add_replication(r.collector);
    globals += r.globals_completed + r.globals_aborted;
    shed += r.globals_shed;
    retries += r.fault_retries;
  }
  Cell cell;
  cell.md_global =
      report.summary(metrics::global_class(c.n_max)).miss_rate.mean;
  if (globals > 0) {
    cell.retries_per_run =
        static_cast<double>(retries) / static_cast<double>(globals);
    cell.shed_fraction =
        static_cast<double>(shed) / static_cast<double>(globals);
  }
  return cell;
}

}  // namespace

int main() {
  const util::BenchEnv env = util::bench_env();
  exp::ExperimentConfig base = exp::baseline_config();
  exp::figures::apply_bench_env(base, env);
  base.load = 0.6;
  base.psp = "div-1";

  bench::print_header(
      "Ablation A13 — transient faults x recovery policy (DIV-1, load 0.6)",
      "SDA-recomputed retry deadlines degrade most gracefully; stale"
      " deadlines poison the EDF ordering; no recovery sheds every victim",
      base, env);

  const double fault_rates[] = {0.0, 0.02, 0.05, 0.10};

  util::Table policy_table({"fault_rate", "MD(none)", "MD(stale)", "MD(sda)",
                            "retries/run(sda)", "shed(sda)"});
  for (double rate : fault_rates) {
    std::vector<std::string> row{util::fmt(rate, 2)};
    Cell sda_cell;
    for (const Policy& p : kPolicies) {
      exp::ExperimentConfig c = with_policy(base, p);
      c.fault_rate = rate;
      const Cell cell = measure(c);
      row.push_back(util::fmt_pct(cell.md_global));
      if (std::string(p.label) == "sda") sda_cell = cell;
    }
    row.push_back(util::fmt(sda_cell.retries_per_run, 2));
    row.push_back(util::fmt_pct(sda_cell.shed_fraction));
    policy_table.add_row(row);
  }
  std::printf("%s\n", policy_table.render().c_str());

  // Strategy degradation under the sda recovery policy: the fail-free
  // ordering UD > DIV-1 > GF (Figures 5-7) should survive moderate rates.
  util::Table strat_table(
      {"fault_rate", "MD(UD)", "MD(DIV-1)", "MD(GF)"});
  for (double rate : fault_rates) {
    std::vector<std::string> row{util::fmt(rate, 2)};
    for (const char* psp : {"ud", "div-1", "gf"}) {
      exp::ExperimentConfig c = with_policy(base, kPolicies[2]);
      c.psp = psp;
      c.fault_rate = rate;
      row.push_back(util::fmt_pct(measure(c).md_global));
    }
    strat_table.add_row(row);
  }
  std::printf("%s\n", strat_table.render().c_str());

  // Node crashes instead of per-attempt faults: outages take a whole
  // server away, so failover is what matters most.
  util::Table crash_table({"mean uptime", "MD(none)", "MD(stale)", "MD(sda)"});
  for (double uptime : {4000.0, 2000.0, 1000.0}) {
    std::vector<std::string> row{util::fmt(uptime, 0)};
    for (const Policy& p : kPolicies) {
      exp::ExperimentConfig c = with_policy(base, p);
      c.crash_mean_uptime = uptime;
      c.crash_mean_downtime = 25.0;
      row.push_back(util::fmt_pct(measure(c).md_global));
    }
    crash_table.add_row(row);
  }
  std::printf("%s\n", crash_table.render().c_str());
  return 0;
}
