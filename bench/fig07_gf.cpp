// Figure 7: UD vs DIV-1 vs GF in the baseline experiment.
//
// Shape to reproduce:
//  * GF and DIV-1 miss about the same number of *local* tasks;
//  * GF misses significantly fewer *global* tasks than DIV-1, and the gap
//    widens with load (the L_earlier "cutting the line" argument, Fig. 8:
//    the locals GF overtakes were going to miss anyway).
#include "bench/common.hpp"

int main() {
  using namespace sda;
  const util::BenchEnv env = util::bench_env();
  exp::ExperimentConfig base = exp::baseline_config();
  exp::figures::apply_bench_env(base, env);

  bench::print_header(
      "Figure 7 — UD vs DIV-1 vs GF in the baseline experiment (MD vs load)",
      "GF ~= DIV-1 on MD_local but significantly lower MD_global,"
      " especially at high load",
      base, env);

  const auto loads = exp::figures::default_loads();
  auto series = exp::figures::load_sweep(
      base, {{"ud", "ud"}, {"div-1", "ud"}, {"gf", "ud"}}, loads);

  bench::print_load_sweep_table(series, "load");
  bench::chart_load_sweep(series, "normalized load");

  // Quantify the DIV-1 -> GF gap growth with load.
  std::printf("MD_global(DIV-1) - MD_global(GF), by load:\n");
  for (std::size_t i = 0; i < loads.size(); ++i) {
    const double gap =
        exp::figures::md(series[1].points[i], metrics::global_class(4)) -
        exp::figures::md(series[2].points[i], metrics::global_class(4));
    std::printf("  load %.2f: %+5.1fpp\n", loads[i], gap * 100.0);
  }
  std::printf("(paper: gap grows with load)\n");
  return 0;
}
