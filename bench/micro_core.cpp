// Microbenchmarks (google-benchmark) for the simulation substrate: event
// queue, engine dispatch, EDF queue operations, strategy evaluation, the
// recursive SDA walk, and a whole-system replication.  These bound the cost
// of regenerating the paper's figures and catch substrate regressions.
#include <benchmark/benchmark.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <thread>

#include "src/core/admission.hpp"
#include "src/exp/net.hpp"
#include "src/core/process_manager.hpp"
#include "src/exp/serve.hpp"
#include "src/metrics/percentile.hpp"
#include "src/core/sda.hpp"
#include "src/core/strategy.hpp"
#include "src/exp/config.hpp"
#include "src/exp/runner.hpp"
#include "src/sched/edf.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/fabric.hpp"
#include "src/sim/timer_queue.hpp"
#include "src/task/notation.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace sda;

void BM_EventQueuePushPop(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  util::Rng rng(1);
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < batch; ++i) {
      q.push(rng.uniform01(), [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(64)->Arg(1024)->Arg(16384);

void BM_EventQueueCancelHeavy(benchmark::State& state) {
  // Abort-timer pattern: every event gets a guard pushed alongside it, and
  // half the guards are cancelled before draining.  Exercises the O(log n)
  // indexed cancel path and eager callable release.
  const int batch = static_cast<int>(state.range(0));
  util::Rng rng(3);
  std::vector<sim::EventId> ids(static_cast<std::size_t>(batch));
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < batch; ++i) {
      ids[static_cast<std::size_t>(i)] = q.push(rng.uniform01(), [] {});
    }
    for (int i = 0; i < batch; i += 2) {
      benchmark::DoNotOptimize(q.cancel(ids[static_cast<std::size_t>(i)]));
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueCancelHeavy)->Arg(1024)->Arg(16384);

namespace {
/// Self-rescheduling tick event: copies itself into the next event slot,
/// so the chain needs no heap-allocating callable wrapper.
struct Tick {
  sim::Engine& engine;
  int& remaining;
  void operator()() const {
    if (--remaining > 0) engine.in(1.0, Tick{engine, remaining});
  }
};
}  // namespace

void BM_EngineSelfScheduling(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    int remaining = 10000;
    engine.in(1.0, Tick{engine, remaining});
    engine.run();
    benchmark::DoNotOptimize(engine.events_fired());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EngineSelfScheduling);

void BM_EdfPushPop(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  util::Rng rng(2);
  std::vector<task::TaskPtr> tasks;
  tasks.reserve(static_cast<std::size_t>(batch));
  for (int i = 0; i < batch; ++i) {
    tasks.push_back(task::make_local_task(static_cast<std::uint64_t>(i + 1), 0,
                                          0.0, 1.0, rng.uniform(0.0, 100.0)));
  }
  for (auto _ : state) {
    sched::EdfScheduler edf;
    for (const auto& t : tasks) edf.push(t);
    while (edf.size() > 0) benchmark::DoNotOptimize(edf.pop());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EdfPushPop)->Arg(64)->Arg(4096);

void BM_EdfRemoveMiddle(benchmark::State& state) {
  // Deadline-abort pattern: fill the ready queue, then remove tasks from the
  // middle by identity.  The indexed heap makes each remove O(log n) instead
  // of an O(n) scan.
  const int batch = static_cast<int>(state.range(0));
  util::Rng rng(4);
  std::vector<task::TaskPtr> tasks;
  tasks.reserve(static_cast<std::size_t>(batch));
  for (int i = 0; i < batch; ++i) {
    tasks.push_back(task::make_local_task(static_cast<std::uint64_t>(i + 1), 0,
                                          0.0, 1.0, rng.uniform(0.0, 100.0)));
  }
  for (auto _ : state) {
    sched::EdfScheduler edf;
    for (const auto& t : tasks) edf.push(t);
    for (int i = 0; i < batch; i += 2) {
      benchmark::DoNotOptimize(edf.remove(*tasks[static_cast<std::size_t>(i)]));
    }
    while (edf.size() > 0) benchmark::DoNotOptimize(edf.pop());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EdfRemoveMiddle)->Arg(64)->Arg(4096);

void BM_StrategyAssign(benchmark::State& state) {
  const auto div1 = core::make_psp_strategy("div-1");
  core::PspContext ctx;
  ctx.now = 3.0;
  ctx.deadline = 12.0;
  ctx.branch_count = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(div1->assign(ctx, 2, 1.0));
  }
}
BENCHMARK(BM_StrategyAssign);

void BM_SdaPlanWalk(benchmark::State& state) {
  // Figure 1's example shape with bound nodes and unit demands.
  const auto tree = task::parse_notation(
      "[T1@0:1 [T2@1:1 || [T3@2:1 T4@3:1 T5@4:1]] [T6@5:1 || T7@0:1] T8@1:1]");
  const auto psp = core::make_psp_strategy("div-1");
  const auto ssp = core::make_ssp_strategy("eqf");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::plan_assignment(*tree, 0.0, 40.0, *psp, *ssp));
  }
}
BENCHMARK(BM_SdaPlanWalk);

void BM_NotationParse(benchmark::State& state) {
  const std::string text =
      "[T1@0:1 [T2@1:1 || [T3@2:1 T4@3:1 T5@4:1]] [T6@5:1 || T7@0:1] T8@1:1]";
  for (auto _ : state) {
    benchmark::DoNotOptimize(task::parse_notation(text));
  }
}
BENCHMARK(BM_NotationParse);

void BM_TreeCloneAndCriticalPath(benchmark::State& state) {
  const auto tree = task::parse_notation(
      "[T1@0:1 [T2@1:1 || [T3@2:1 T4@3:1 T5@4:1]] [T6@5:1 || T7@0:1] T8@1:1]");
  for (auto _ : state) {
    const auto copy = task::clone(*tree);
    benchmark::DoNotOptimize(task::critical_path_ex(*copy));
  }
}
BENCHMARK(BM_TreeCloneAndCriticalPath);

void BM_ArenaCloneDrain(benchmark::State& state) {
  // Pool churn at run frequency: clone a batch of trees (pooled TreeNode
  // operator new), hold them live together, then drop them all (pooled
  // delete).  Steady state must run entirely off recycled blocks.
  const auto tree = task::parse_notation(
      "[T1@0:1 [T2@1:1 || [T3@2:1 T4@3:1 T5@4:1]] [T6@5:1 || T7@0:1] T8@1:1]");
  constexpr int kBatch = 64;
  std::vector<task::TreePtr> held;
  held.reserve(kBatch);
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) held.push_back(task::clone(*tree));
    benchmark::DoNotOptimize(held.data());
    held.clear();
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_ArenaCloneDrain);

void BM_TimerWheelPushPop(benchmark::State& state) {
  // The wheel backend under the same load as BM_EventQueuePushPop — the
  // delta against the heap at equal batch size is the backend's win (or
  // loss) in the heavy-traffic regime.
  const int batch = static_cast<int>(state.range(0));
  util::Rng rng(1);
  const auto q = sim::make_timer_queue("wheel");
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i) {
      q->push(rng.uniform01(), [] {});
    }
    while (!q->empty()) benchmark::DoNotOptimize(q->pop());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_TimerWheelPushPop)->Arg(64)->Arg(1024)->Arg(16384);

void BM_ProcessManagerSubmitDrain(benchmark::State& state) {
  // Cost of the PM machinery itself: submit a 4-way parallel global to idle
  // nodes and drain it to completion, repeatedly.
  for (auto _ : state) {
    state.PauseTiming();
    sim::Engine engine;
    std::vector<std::unique_ptr<sched::Node>> nodes;
    std::vector<sched::Node*> node_ptrs;
    for (int i = 0; i < 6; ++i) {
      sched::Node::Config nc;
      nc.index = i;
      nodes.push_back(std::make_unique<sched::Node>(
          engine, std::make_unique<sched::EdfScheduler>(), nc));
      node_ptrs.push_back(nodes.back().get());
    }
    core::ProcessManager::Config pc;
    pc.psp = core::make_psp_strategy("div-1");
    pc.ssp = core::make_ssp_strategy("eqf");
    core::ProcessManager pm(engine, node_ptrs, std::move(pc));
    for (auto& n : nodes) {
      n->set_completion_handler(
          [&pm](const task::TaskPtr& t) { pm.handle_completion(t); });
    }
    state.ResumeTiming();
    for (int i = 0; i < 100; ++i) {
      pm.submit(task::parse_notation("[A@0:1 || B@1:1 || C@2:1 || D@3:1]"),
                engine.now() + 10.0, 100, 1);
      engine.run();
    }
    benchmark::DoNotOptimize(pm.completed_runs());
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_ProcessManagerSubmitDrain);

void BM_AdmissionDecision(benchmark::State& state) {
  // The serve path's hot loop: one full admission decision (plan lookup +
  // feasibility battery + state machine) against a warm ledger, with the
  // plan cache hitting on repeated tree shapes.  Per-call latency is
  // tracked through metrics/percentile and exported as counters so the
  // scorecard can watch tail latency, not just the mean.
  core::AdmissionConfig ac;
  ac.node_count = 8;
  core::AdmissionController controller(ac);
  std::vector<task::TreePtr> shapes;
  for (int i = 0; i < 8; ++i) {
    const int a = i % 8, b = (i + 3) % 8;
    std::ostringstream notation;
    notation << "[A@" << a << ":0.4/0.4 || B@" << b << ":0.6/0.6]";
    shapes.push_back(task::parse_notation(notation.str()));
  }

  metrics::LogHistogram latency_ns(1.0, 1e9, 8);
  using Clock = std::chrono::steady_clock;
  double now = 0.0;
  std::uint64_t ticket = 1;
  for (auto _ : state) {
    const task::TreeNode& tree = *shapes[ticket % shapes.size()];
    const Clock::time_point t0 = Clock::now();
    const core::AdmissionOutcome out =
        controller.decide(tree, now, now + 4.0, ticket);
    latency_ns.add(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
            .count()));
    benchmark::DoNotOptimize(out.decision);
    // Retire immediately: steady-state ledger, not an ever-growing one.
    controller.on_finished(ticket);
    ++ticket;
    now += 0.25;
  }
  state.SetItemsProcessed(state.iterations());
  const metrics::Quantiles q = metrics::summarize(latency_ns);
  state.counters["assign_p50_ns"] = q.p50;
  state.counters["assign_p99_ns"] = q.p99;
  state.counters["cache_hits"] =
      static_cast<double>(controller.cache_stats().hits);
}
BENCHMARK(BM_AdmissionDecision);

/// The --serve script the front-door benchmarks share: @p subs
/// submissions with a completion every 4th once the pipeline is warm.
std::string serve_script(int subs) {
  std::string script;
  for (int i = 1; i <= subs; ++i) {
    std::ostringstream line;
    line << "sub id=" << i << " at=" << (0.25 * i)
         << " deadline=4 tree=[A@" << (i % 8) << ":0.4/0.4 || B@"
         << ((i + 3) % 8) << ":0.6/0.6]\n";
    script += line.str();
    if (i % 4 == 0 && i > 8) {
      script += "done id=" + std::to_string(i - 8) + "\n";
    }
  }
  return script;
}

void BM_ServeStream(benchmark::State& state) {
  // Sustained admissions/sec through the full --serve front door: parse,
  // gate, emit JSON decision, for a prebuilt script of repeated-template
  // submissions with periodic completions.
  constexpr int kSubs = 512;
  const std::string script = serve_script(kSubs);
  exp::ServeOptions opts;
  opts.admission.node_count = 8;

  std::uint64_t decisions = 0;
  for (auto _ : state) {
    std::istringstream in(script);
    std::ostringstream out;
    const exp::ServeResult r = exp::serve_stream(in, out, opts);
    decisions = r.decisions;
    benchmark::DoNotOptimize(out.str().size());
  }
  state.SetItemsProcessed(state.iterations() * kSubs);
  state.counters["decisions_per_stream"] = static_cast<double>(decisions);
}
BENCHMARK(BM_ServeStream);

void BM_ServeSocket(benchmark::State& state) {
  // End-to-end admissions/sec through the *socket* front door: TCP
  // loopback, the event loop on its own thread, one client writing the
  // BM_ServeStream script and reading every routed reply back.  The
  // delta against BM_ServeStream is the transport tax (epoll wakeups,
  // line reassembly, reply routing, loopback copies).
  constexpr int kSubs = 256;
  std::string script = serve_script(kSubs);
  // Sentinel tail: an unknown id is answered immediately on the same
  // connection, so seeing its reply means every earlier reply arrived.
  script += "done id=999999 at=1000\n";
  const std::string sentinel = "\"id\":999999";

  for (auto _ : state) {
    exp::ServeOptions opts;
    opts.admission.node_count = 8;
    exp::ServeSession session(opts);
    exp::net::ServerOptions server_opts;  // 127.0.0.1, ephemeral port
    exp::net::ServeServer server(session, server_opts);
    std::string error;
    if (!server.start(&error)) {
      state.SkipWithError(error.c_str());
      return;
    }
    std::ostringstream drain;
    std::thread loop([&] { server.run(drain); });

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.bound_port());
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    bool ok = fd >= 0 &&
              ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof addr) == 0;
    std::size_t off = 0;
    while (ok && off < script.size()) {
      const ssize_t n = ::send(fd, script.data() + off, script.size() - off, 0);
      if (n <= 0) ok = false;
      else off += static_cast<std::size_t>(n);
    }
    std::string received;
    char buf[4096];
    while (ok && received.find(sentinel) == std::string::npos) {
      const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      if (n <= 0) ok = false;
      else received.append(buf, static_cast<std::size_t>(n));
    }
    if (fd >= 0) ::close(fd);
    server.request_stop();
    loop.join();
    if (!ok) {
      state.SkipWithError("socket round-trip failed");
      return;
    }
    benchmark::DoNotOptimize(received.size());
  }
  state.SetItemsProcessed(state.iterations() * kSubs);
}
BENCHMARK(BM_ServeSocket);

void BM_JournalRecoveryReplay(benchmark::State& state) {
  // Crash-recovery cost: replay an N-record sda.journal.v1 into a
  // fresh session (the kill -9 startup path).  Setup writes the
  // journal once by running the script through a journaling session;
  // the timed loop is open_journal() in replay-only mode.
  const int subs = static_cast<int>(state.range(0));
  const std::string path =
      "/tmp/sda_bench_recovery_" + std::to_string(::getpid()) + ".wal";
  std::remove(path.c_str());
  {
    exp::ServeOptions opts;
    opts.admission.node_count = 8;
    opts.journal_path = path;
    std::istringstream in(serve_script(subs));
    std::ostringstream out;
    exp::serve_stream(in, out, opts);
  }

  std::uint64_t replayed = 0;
  for (auto _ : state) {
    exp::ServeOptions opts;
    opts.admission.node_count = 8;
    opts.journal_path = path;
    opts.journal_replay_only = true;
    exp::ServeSession session(opts);
    std::string error;
    if (!session.open_journal(&error)) {
      state.SkipWithError(error.c_str());
      std::remove(path.c_str());
      return;
    }
    replayed = session.result().replayed;
    benchmark::DoNotOptimize(session.state_fingerprint());
  }
  std::remove(path.c_str());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(replayed));
  state.counters["replayed_records"] = static_cast<double>(replayed);
}
BENCHMARK(BM_JournalRecoveryReplay)->Arg(512)->Arg(4096);

void BM_WholeReplication(benchmark::State& state) {
  exp::ExperimentConfig c = exp::baseline_config();
  c.sim_time = 5000.0;
  c.psp = "div-1";
  for (auto _ : state) {
    benchmark::DoNotOptimize(exp::run_once(c, 42));
  }
  state.SetLabel("5000 simulated time units, baseline system");
}
BENCHMARK(BM_WholeReplication);

// One large replication on the time-window fabric at 1/2/4/8 shards.  A
// scale-out scenario (DESIGN.md §4c): many nodes, almost-all-local work
// (messages only for the global fraction), and a nonzero control-plane
// latency so the conservative window amortizes barrier cost over many
// events.  The /1 run is the same model on one worker — the speedup
// claim is /8 vs /1 at equal net_latency.  (On a single-core host the
// sharded runs measure protocol overhead, not speedup; compare shard
// counts only on a machine with >= 8 cores.)
void BM_WholeReplicationSharded(benchmark::State& state) {
  exp::ExperimentConfig c = exp::baseline_config();
  c.k = 1024;
  c.n_min = c.n_max = 8;
  c.frac_local = 0.95;
  c.net_latency = 0.5;
  c.sim_time = 100.0;
  c.shards = static_cast<int>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    const exp::RunResult r = exp::run_once(c, 42);
    events = r.events_fired;
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("k=1024 frac_local=0.95 net_latency=0.5, 100 time units");
  state.counters["events"] = static_cast<double>(events);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_WholeReplicationSharded)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

// The fabric's per-message cost in isolation: one shard-pair outbox,
// ring-sized batches and spill-sized batches.
void BM_CrossShardQueuePushDrain(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  sim::CrossShardQueue q;
  std::vector<sim::Message> out;
  out.reserve(static_cast<std::size_t>(batch));
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i) {
      sim::Message m;
      m.deliver_at = static_cast<double>(i);
      m.dst_lane = i;
      m.fn = [] {};
      q.push(std::move(m));
    }
    out.clear();
    q.drain(out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_CrossShardQueuePushDrain)->Arg(64)->Arg(256)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
