// Companion study [6] — the Serial Subtask Problem on its own.
//
// Section 8 summarizes the companion paper (Kao & Garcia-Molina, ICDCS'93):
// EQF significantly beats UD for purely *serial* global tasks, and the
// improvement is "particularly marked" when (1) the task has a non-trivial
// number of stages (> 3) and (2) there is sufficient slack (MD_global under
// UD below ~50%).  This bench reproduces that inside this repo: pure serial
// pipelines with 2..8 stages under UD / ED / EQS / EQF, at two slack
// levels.
#include "bench/common.hpp"

namespace {

sda::exp::ExperimentConfig pipeline_config(int stages, double slack_scale,
                                           const sda::util::BenchEnv& env) {
  sda::exp::ExperimentConfig c = sda::exp::graph_config();
  sda::exp::figures::apply_bench_env(c, env);
  c.load = 0.6;
  c.stage_widths.assign(static_cast<std::size_t>(stages), 1);
  // Global slack scales with the pipeline length (as §8 scales Figure 14's
  // by 5); slack_scale < 1 tightens it.
  c.global_slack_min = 1.25 * stages * slack_scale;
  c.global_slack_max = 5.0 * stages * slack_scale;
  return c;
}

}  // namespace

int main() {
  using namespace sda;
  const util::BenchEnv env = util::bench_env();
  exp::ExperimentConfig header = pipeline_config(5, 1.0, env);

  bench::print_header(
      "Companion study [6] — SSP strategies on pure serial pipelines "
      "(load 0.6)",
      "EQF >> UD for serial tasks; improvement marked for > 3 stages with"
      " sufficient slack; ED/EQS sit between",
      header, env);

  for (double slack_scale : {1.0, 0.5}) {
    std::printf("--- slack %s (U[%.2f, %.1f] per 5-stage task) ---\n",
                util::feq(slack_scale, 1.0) ? "ample (scaled by stages)"
                                            : "tight (half)",
                1.25 * 5 * slack_scale, 5.0 * 5 * slack_scale);
    util::Table table({"stages", "MD_glb(UD)", "MD_glb(ED)", "MD_glb(EQS)",
                       "MD_glb(EQF)", "MD_local(EQF)"});
    for (int stages : {2, 3, 5, 8}) {
      std::vector<std::string> row{std::to_string(stages)};
      std::string local_eqf;
      for (const char* ssp : {"ud", "ed", "eqs", "eqf"}) {
        exp::ExperimentConfig c = pipeline_config(stages, slack_scale, env);
        c.ssp = ssp;
        const metrics::Report report = exp::run_experiment(c);
        row.push_back(util::fmt_pct(
            report.summary(metrics::global_class(0)).miss_rate.mean));
        if (std::string(ssp) == "eqf") {
          local_eqf = util::fmt_pct(
              report.summary(metrics::kLocalClass).miss_rate.mean);
        }
      }
      row.push_back(local_eqf);
      table.add_row(std::move(row));
    }
    std::printf("%s\n", table.render().c_str());
  }
  std::printf("([6]'s shape: the UD-vs-EQF gap should widen with stage count"
              " and be larger in the ample-slack regime.)\n");
  return 0;
}
