// Ablation A2 — non-preemptive (paper) vs preemptive-resume EDF service.
//
// The paper's nodes pick the earliest-deadline task only when the server
// frees up.  This ablation checks that the PSP story (UD >> DIV-1 > GF on
// MD_global) is not an artifact of non-preemptive service.
#include "bench/common.hpp"

int main() {
  using namespace sda;
  const util::BenchEnv env = util::bench_env();
  exp::ExperimentConfig base = exp::baseline_config();
  exp::figures::apply_bench_env(base, env);
  base.load = 0.6;

  bench::print_header(
      "Ablation A2 — preemptive-resume vs non-preemptive EDF (load 0.6)",
      "the UD >> DIV-1 > GF ordering should hold under both service"
      " disciplines",
      base, env);

  util::Table table({"service", "strategy", "MD_local", "MD_global"});
  for (bool preemptive : {false, true}) {
    for (const char* psp : {"ud", "div-1", "gf"}) {
      exp::ExperimentConfig c = base;
      c.preemptive = preemptive;
      c.psp = psp;
      const metrics::Report report = exp::run_experiment(c);
      table.add_row(
          {preemptive ? "preemptive" : "non-preemptive", psp,
           util::fmt_pct(report.summary(metrics::kLocalClass).miss_rate.mean),
           util::fmt_pct(
               report.summary(metrics::global_class(4)).miss_rate.mean)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
