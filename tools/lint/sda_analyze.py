#!/usr/bin/env python3
"""sda-analyze: compile_commands-driven semantic checks for the SDA repo.

Where sda_lint.py scans tokens line by line, this pass works on program
structure: the project include graph, container/iteration flow, and
callback reachability.  Still stdlib-only (no libclang): the repo builds
with GCC where clang tooling may be absent, so the analysis parses the
translation-unit set out of build/compile_commands.json (falling back to
a directory walk) and does its own brace-matched extraction.

Rules:

  LAYERING            An #include that jumps *up* the layer DAG
                          util -> {sim,task} -> sched -> core
                               -> {exp,metrics,fault,workload} -> tools
                      Lower layers must not know about higher ones; the
                      one standing exemption is src/core/invariants.hpp,
                      the cross-cutting observation-only oracle, which
                      may be included from anywhere.
  CYCLE               A cycle in the project include graph (pragma once
                      hides it at compile time until it deadlocks a
                      refactor; here it is an error outright).
  WALL_CLOCK          Wall-clock access (system_clock, steady_clock,
                      high_resolution_clock, gettimeofday,
                      clock_gettime, time()) inside src/sim or
                      src/sched.  Simulated time is the logical Time
                      axis; wall time in the deterministic core makes
                      results machine-dependent.
  PTR_KEY_ORDER       A pointer-keyed ordered container
                      (std::map<T*, ...>, std::set<T*>): iteration
                      order is allocation-address order, different
                      every run.  Key by a stable id instead.
  UNORDERED_SINK      Range-for over a std::unordered_* container whose
                      loop body feeds a determinism-sensitive sink
                      (fingerprint/fnv1a mixing, JSON/CSV export,
                      trace/metric recording).  Unspecified iteration
                      order flows straight into bytes that are supposed
                      to be reproducible; fold through a sorted copy.
  CALLBACK_REENTRANT  A synchronous callback-invoking call (feed,
                      for_each, visit, scan, each — APIs that run a
                      lambda while iterating internal state) whose
                      lambda can reach, through this file's call graph,
                      an erase()/clear() of the member container that
                      owns the object the callback is running through —
                      the exact shape of the PR-6 slow-client-eviction
                      use-after-free.  Destruction must be deferred
                      (mark + reap after the stack unwinds).

Suppression: `// sda-analyze: allow(RULE) reason` on the offending line
or the line directly above.  The reason is mandatory in spirit and
audited by `sda_lint.py --audit-suppressions`.

Findings print as `file:line: RULE message`; exit status is 1 when
anything fired, 0 when clean, 2 on usage errors — same contract as
sda_lint.py, so the ctest/CI plumbing is shared.
"""

import argparse
import json
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import sda_lint  # noqa: E402  (shared Line/strip_lines/Finding machinery)

Finding = sda_lint.Finding
relpath = sda_lint.relpath

HEADER_EXT = sda_lint.HEADER_EXT
SOURCE_EXT = sda_lint.SOURCE_EXT

ANALYZE_ALLOW_RE = re.compile(r"sda-analyze:\s*allow\(([A-Z_,\s]+)\)")

RULES = [
    "LAYERING", "CYCLE", "WALL_CLOCK", "PTR_KEY_ORDER", "UNORDERED_SINK",
    "CALLBACK_REENTRANT",
]

# --- layer DAG -------------------------------------------------------------

LAYER_RANK = {
    "util": 0,
    "sim": 1,
    "task": 1,
    "sched": 2,
    "core": 3,
    "exp": 4,
    "metrics": 4,
    "fault": 4,
    "workload": 4,
}
TOOLS_RANK = 5
# tests/bench/examples sit on top of everything and may include anything.
UNRANKED = 99

# The cross-cutting observation-only invariant oracle: include-anywhere
# by design (it observes, never steers — see its header comment).
LAYERING_EXEMPT_INCLUDES = ("src/core/invariants.hpp",)

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')


def layer_rank(rel):
    parts = rel.split("/")
    if parts[0] == "src" and len(parts) >= 2 and parts[1] in LAYER_RANK:
        return LAYER_RANK[parts[1]]
    if parts[0] == "tools":
        return TOOLS_RANK
    return UNRANKED


def layer_name(rel):
    parts = rel.split("/")
    if parts[0] == "src" and len(parts) >= 2 and parts[1] in LAYER_RANK:
        return parts[1]
    return parts[0]


class SourceFile:
    """One scanned file: blanked lines + analyze-allow sets + includes."""

    __slots__ = ("rel", "lines", "allows", "includes")

    def __init__(self, rel, text):
        self.rel = rel
        self.lines = sda_lint.strip_lines(text)
        self.allows = []
        for ln in self.lines:
            found = set()
            for m in ANALYZE_ALLOW_RE.finditer(ln.raw):
                for rule in m.group(1).split(","):
                    rule = rule.strip()
                    if rule:
                        found.add(rule)
            self.allows.append(found)
        self.includes = []  # (line_idx, included_rel)
        for idx, ln in enumerate(self.lines):
            m = INCLUDE_RE.match(ln.raw)
            if m:
                self.includes.append((idx, m.group(1)))

    def suppressed(self, idx, rule):
        if rule in self.allows[idx]:
            return True
        if idx > 0 and rule in self.allows[idx - 1]:
            return True
        return False


# --- rule: LAYERING --------------------------------------------------------

def rule_layering(sf, findings):
    my_rank = layer_rank(sf.rel)
    if my_rank == UNRANKED:
        return
    for idx, inc in sf.includes:
        if inc in LAYERING_EXEMPT_INCLUDES:
            continue
        inc_rank = layer_rank(inc)
        if inc_rank == UNRANKED or inc_rank <= my_rank:
            continue
        if sf.suppressed(idx, "LAYERING"):
            continue
        findings.append(Finding(
            sf.rel, idx + 1, "LAYERING",
            f"layer '{layer_name(sf.rel)}' (rank {my_rank}) includes "
            f"'{inc}' from layer '{layer_name(inc)}' (rank {inc_rank}); "
            "the layer DAG flows util -> {sim,task} -> sched -> core -> "
            "{exp,metrics,fault,workload} -> tools"))


# --- rule: CYCLE -----------------------------------------------------------

def rule_cycle(files_by_rel, findings):
    """Tarjan SCC over the file-level include graph; any SCC with more
    than one node (or a self-include) is a cycle."""
    graph = {rel: sorted({inc for _i, inc in sf.includes
                          if inc in files_by_rel})
             for rel, sf in files_by_rel.items()}
    index_of, low, on_stack = {}, {}, set()
    stack, sccs = [], []
    counter = [0]

    def strongconnect(v):
        # Iterative Tarjan (the include graph can be deep).
        work = [(v, iter(graph.get(v, ())))]
        index_of[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, it = work[-1]
            advanced = False
            for w in it:
                if w not in index_of:
                    index_of[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(graph.get(w, ()))))
                    advanced = True
                    break
                if w in on_stack:
                    low[node] = min(low[node], index_of[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index_of[node]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == node:
                        break
                sccs.append(scc)

    for rel in sorted(graph):
        if rel not in index_of:
            strongconnect(rel)

    for scc in sccs:
        self_loop = len(scc) == 1 and scc[0] in graph.get(scc[0], ())
        if len(scc) < 2 and not self_loop:
            continue
        members = sorted(scc)
        head = members[0]
        findings.append(Finding(
            head, 1, "CYCLE",
            "include cycle: " + " -> ".join(members + [head])))


# --- rule: WALL_CLOCK ------------------------------------------------------

WALL_CLOCK_DIRS = ("src/sim/", "src/sched/")
WALL_CLOCK_PATTERNS = [
    (re.compile(r"\bsystem_clock\b"), "std::chrono::system_clock"),
    (re.compile(r"\bsteady_clock\b"), "std::chrono::steady_clock"),
    (re.compile(r"\bhigh_resolution_clock\b"),
     "std::chrono::high_resolution_clock"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"\bclock_gettime\s*\("), "clock_gettime()"),
    (re.compile(r"(?:\bstd::|(?<![:\w.>]))time\s*\(\s*(NULL|nullptr|0)?\s*\)"),
     "time()"),
]


def rule_wall_clock(sf, findings):
    if not sf.rel.startswith(WALL_CLOCK_DIRS):
        return
    for idx, ln in enumerate(sf.lines):
        for pat, what in WALL_CLOCK_PATTERNS:
            if pat.search(ln.code) and not sf.suppressed(idx, "WALL_CLOCK"):
                findings.append(Finding(
                    sf.rel, idx + 1, "WALL_CLOCK",
                    f"wall-clock source {what} in the deterministic core "
                    "(src/sim, src/sched); simulated time is the logical "
                    "Time axis — wall time belongs in exp/ transports"))


# --- rule: PTR_KEY_ORDER ---------------------------------------------------

PTR_KEY_RE = re.compile(
    r"\bstd::(map|set|multimap|multiset)\s*<\s*"
    r"(?:const\s+)?[\w:]+(?:\s*<[^<>]*>)?\s*\*")


def rule_ptr_key_order(sf, findings):
    for idx, ln in enumerate(sf.lines):
        m = PTR_KEY_RE.search(ln.code)
        if m and not sf.suppressed(idx, "PTR_KEY_ORDER"):
            findings.append(Finding(
                sf.rel, idx + 1, "PTR_KEY_ORDER",
                f"pointer-keyed std::{m.group(1)}: iteration order is "
                "allocation-address order, which differs run to run; key "
                "by a stable id (ticket, index, name) instead"))


# --- rule: UNORDERED_SINK --------------------------------------------------

SINK_RE = re.compile(
    r"\bfnv1a|\bfingerprint\b|JsonWriter|\.kv\s*\(|\bexport_|"
    r"record_simple|record_global|\.add\s*\(|\bTraceRecord\b|csv")


def loop_body_text(sf, idx, max_lines=40):
    """Text of the loop body opened at line idx (brace-matched; for a
    braceless single-statement body, that statement)."""
    depth = 0
    seen_open = False
    chunks = []
    for j in range(idx, min(len(sf.lines), idx + max_lines)):
        code = sf.lines[j].code
        if j > idx:
            chunks.append(code)
        for c in code:
            if c == "{":
                depth += 1
                seen_open = True
            elif c == "}":
                depth -= 1
        if seen_open and depth <= 0:
            break
        if not seen_open and j > idx and ";" in code:
            break  # braceless body: first statement ends it
    return "\n".join(chunks)


def rule_unordered_sink(sf, findings, unordered_names, local_names):
    for idx, ln in enumerate(sf.lines):
        m = sda_lint.RANGE_FOR_RE.search(ln.code)
        if not m:
            continue
        target = m.group(1)
        base = re.split(r"\.|->", target)[-1]
        if base == target and not base.endswith("_"):
            candidates = local_names
        else:
            candidates = unordered_names
        if base not in candidates:
            continue
        body = loop_body_text(sf, idx)
        if not SINK_RE.search(body):
            continue
        if sf.suppressed(idx, "UNORDERED_SINK"):
            continue
        findings.append(Finding(
            sf.rel, idx + 1, "UNORDERED_SINK",
            f"iteration over unordered container '{target}' flows into a "
            "fingerprint/export/trace sink inside the loop body; "
            "unspecified order becomes nondeterministic output — fold "
            "through a sorted copy"))


# --- rule: CALLBACK_REENTRANT ----------------------------------------------

# Methods that run a user lambda synchronously over internal state.
# Deferred registrars (at/post/in/schedule) are deliberately absent:
# their callback runs later, from the event loop, not mid-iteration.
SYNC_INVOKE_RE = re.compile(
    r"\b(\w+)((?:\.|->)\w+)*(?:\.|->)(feed|for_each|visit|scan|each)"
    r"\s*\(")
METHOD_DEF_RE = re.compile(
    r"^[\w:&<>,*~\s]*?\b\w+::(\w+)\s*\(")
CALLED_NAME_RE = re.compile(r"\b(\w+)\s*\(")
CALL_KEYWORDS = frozenset((
    "if", "for", "while", "switch", "return", "sizeof", "catch",
    "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast",
    "assert", "defined", "alignof", "decltype", "noexcept",
))
# Member containers with a class-typed element (ownership containers).
# The declarator may end at end-of-line: GUARDED_BY annotations routinely
# push the `;` to a continuation line.
OWNER_CONTAINER_RE = re.compile(
    r"\bstd::(?:map|unordered_map)\s*<\s*[\w:]+\s*,\s*([\w:]+)\s*>\s*"
    r"(\w+_)\s*(?:[;{=]|$)|"
    r"\bstd::(?:vector|deque|list)\s*<\s*([\w:]+)\s*>\s*(\w+_)\s*(?:[;{=]|$)",
    re.MULTILINE)
ERASE_RE = re.compile(r"\b(\w+_)\s*\.\s*(?:erase|clear)\s*\(")


def extract_methods(sf):
    """Map of method name -> body text for `Class::method(...) { ... }`
    definitions in this file (brace-matched, comments/strings blanked)."""
    methods = {}
    n = len(sf.lines)
    i = 0
    while i < n:
        code = sf.lines[i].code
        m = METHOD_DEF_RE.match(code)
        if not m or ";" in code.split("(")[0]:
            i += 1
            continue
        # Find the opening brace of the definition (skip declarations).
        depth = 0
        opened = False
        body = []
        j = i
        while j < n:
            for c in sf.lines[j].code:
                if c == "{":
                    depth += 1
                    opened = True
                elif c == "}":
                    depth -= 1
                elif c == ";" and not opened:
                    depth = None  # pure declaration
                    break
            if depth is None:
                break
            if j > i:
                body.append(sf.lines[j].code)
            if opened and depth <= 0:
                break
            j += 1
        if depth is not None and opened:
            methods.setdefault(m.group(1), []).append(
                ("\n".join(body), i))
            i = j + 1
        else:
            i += 1
    return methods


def owner_containers(all_files):
    """value-type last component -> set of member-container names, over
    every scanned file (members live in headers, call sites in .cpp)."""
    owners = {}
    direct = set()
    for sf in all_files:
        for ln in sf.lines:
            for m in OWNER_CONTAINER_RE.finditer(ln.code):
                vtype = m.group(1) or m.group(3)
                name = m.group(2) or m.group(4)
                key = vtype.split("::")[-1]
                owners.setdefault(key, set()).add(name)
                direct.add(name)
    return owners, direct


def receiver_type(sf, invoke_idx, root):
    """Best-effort type of the receiver-chain root: searched in the
    enclosing method's signature and nearby local declarations."""
    decl_re = re.compile(
        r"\b([A-Z]\w*(?:::\w+)*)\s*[&*]?\s+[&*]?" + re.escape(root) + r"\b")
    for j in range(invoke_idx, max(-1, invoke_idx - 60), -1):
        m = decl_re.search(sf.lines[j].code)
        if m:
            return m.group(1).split("::")[-1]
    return None


def rule_callback_reentrant(sf, findings, all_files):
    owners, _direct = owner_containers(all_files)
    methods = extract_methods(sf)

    def called_names(text):
        names = set()
        for m in CALLED_NAME_RE.finditer(text):
            if m.group(1) not in CALL_KEYWORDS:
                names.add(m.group(1))
        return names

    for idx, ln in enumerate(sf.lines):
        m = SYNC_INVOKE_RE.search(ln.code)
        if not m:
            continue
        # Only callback-taking invocations: a lambda opening on the call
        # line or the continuation line right after it.
        tail = ln.code[m.end():]
        nxt = sf.lines[idx + 1].code if idx + 1 < len(sf.lines) else ""
        if "[" not in tail and "[" not in nxt:
            continue
        root = m.group(1)
        # Which member container owns the object the callback runs
        # through?  Match the receiver root's type against the scanned
        # ownership containers.
        rtype = receiver_type(sf, idx, root)
        danger = set()
        if rtype and rtype in owners:
            danger |= owners[rtype]
        if root.endswith("_"):
            danger.add(root)
        if not danger:
            continue
        # Lambda body plus everything reachable through this file's
        # call graph, bounded depth.
        lambda_body = loop_body_text(sf, idx, max_lines=60)
        frontier = called_names(lambda_body)
        seen = set()
        texts = [("<lambda>", lambda_body)]
        for _hop in range(5):
            nxt = set()
            for name in frontier:
                if name in seen or name not in methods:
                    continue
                seen.add(name)
                for body, _at in methods[name]:
                    texts.append((name, body))
                    nxt |= called_names(body)
            frontier = nxt - seen
            if not frontier:
                break
        hit = None
        for where, text in texts:
            for em in ERASE_RE.finditer(text):
                if em.group(1) in danger:
                    hit = (where, em.group(1))
                    break
            if hit:
                break
        if hit is None or sf.suppressed(idx, "CALLBACK_REENTRANT"):
            continue
        where, container = hit
        via = "directly in the lambda" if where == "<lambda>" \
            else f"via {where}()"
        findings.append(Finding(
            sf.rel, idx + 1, "CALLBACK_REENTRANT",
            f"callback invoked by .{m.group(3)}() can reach "
            f"{container}.erase/clear ({via}) while the callback is still "
            f"running through an element of '{container}' — the PR-6 "
            "eviction use-after-free shape; mark the element doomed and "
            "reap after the stack unwinds"))


# --- driver ----------------------------------------------------------------

def tu_set_from_compile_commands(path, root):
    """Project .cpp files named in compile_commands.json, repo-relative."""
    with open(path, "r", encoding="utf-8") as f:
        entries = json.load(f)
    tus = set()
    for entry in entries:
        file_path = entry.get("file", "")
        if not os.path.isabs(file_path):
            file_path = os.path.join(entry.get("directory", ""), file_path)
        file_path = os.path.normpath(file_path)
        if not file_path.startswith(root + os.sep):
            continue
        rel = relpath(file_path, root)
        if rel.endswith(SOURCE_EXT):
            tus.add(rel)
    return tus


def gather_rels(root, subdirs):
    rels = []
    for sub in subdirs:
        base = os.path.join(root, sub)
        if os.path.isfile(base):
            rels.append(relpath(base, root))
            continue
        for dirpath, _dirnames, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXT):
                    rels.append(relpath(os.path.join(dirpath, name), root))
    return sorted(set(rels))


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="Semantic analyzer for the SDA repo "
                    "(rules: " + ", ".join(RULES) + ")")
    ap.add_argument("paths", nargs="*", default=[],
                    help="files or directories to scan (default: src, "
                         "plus tools/*.cpp outside tools/lint)")
    ap.add_argument("--root", default=None,
                    help="repo root (default: this script's repo)")
    ap.add_argument("--compile-commands", default=None,
                    help="compile_commands.json to seed the TU set "
                         "(default: <root>/build/compile_commands.json "
                         "when present)")
    ap.add_argument("--rules", default=None,
                    help="comma-separated subset of rules to run")
    args = ap.parse_args(argv)

    root = args.root
    if root is None:
        here = os.path.dirname(os.path.abspath(__file__))
        candidate = os.path.dirname(os.path.dirname(here))
        root = candidate if os.path.isdir(os.path.join(candidate, "src")) \
            else os.getcwd()
    root = os.path.abspath(root)

    only_rules = None
    if args.rules:
        only_rules = {r.strip() for r in args.rules.split(",") if r.strip()}
        unknown = only_rules - set(RULES)
        if unknown:
            print(f"unknown rules: {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2

    if args.paths:
        rels = gather_rels(root, args.paths)
    else:
        rels = gather_rels(root, ["src"])
        rels += [r for r in gather_rels(root, ["tools"])
                 if not r.startswith("tools/lint/")]
        rels = sorted(set(rels))

    # Seed/extend with the compile_commands TU set: the analysis then
    # provably covers exactly what the build compiles (plus headers the
    # walk found).
    cc_path = args.compile_commands
    if cc_path is None:
        default_cc = os.path.join(root, "build", "compile_commands.json")
        cc_path = default_cc if os.path.isfile(default_cc) else None
    elif not os.path.isfile(cc_path):
        # Not-yet-generated database: fall back to the directory walk,
        # which already covers every project source.
        print(f"sda-analyze: note: {cc_path} not found; "
              "scanning by directory walk", file=sys.stderr)
        cc_path = None
    if cc_path is not None:
        try:
            tus = tu_set_from_compile_commands(cc_path, root)
        except (OSError, ValueError) as e:
            print(f"sda-analyze: cannot read {cc_path}: {e}",
                  file=sys.stderr)
            return 2
        scope_prefixes = tuple(args.paths) if args.paths \
            else ("src/", "tools/")
        rels = sorted(set(rels) | {
            t for t in tus
            if t.startswith(scope_prefixes)
            and not t.startswith("tools/lint/")})

    if not rels:
        print("sda-analyze: no source files found", file=sys.stderr)
        return 2

    files_by_rel = {}
    for rel in rels:
        path = os.path.join(root, rel)
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as f:
                files_by_rel[rel] = SourceFile(rel, f.read())
        except OSError as e:
            print(f"{rel}:0: ERROR cannot read: {e}", file=sys.stderr)

    all_files = list(files_by_rel.values())
    all_lines = {rel: sf.lines for rel, sf in files_by_rel.items()}
    unordered_names, per_file_names = \
        sda_lint.collect_unordered_names(all_lines)

    def enabled(rule):
        return only_rules is None or rule in only_rules

    findings = []
    for rel in sorted(files_by_rel):
        sf = files_by_rel[rel]
        if enabled("LAYERING"):
            rule_layering(sf, findings)
        if enabled("WALL_CLOCK"):
            rule_wall_clock(sf, findings)
        if enabled("PTR_KEY_ORDER"):
            rule_ptr_key_order(sf, findings)
        if enabled("UNORDERED_SINK"):
            rule_unordered_sink(sf, findings, unordered_names,
                                per_file_names[rel])
        if enabled("CALLBACK_REENTRANT"):
            rule_callback_reentrant(sf, findings, all_files)
    if enabled("CYCLE"):
        rule_cycle(files_by_rel, findings)

    for f in findings:
        print(f)
    if findings:
        print(f"sda-analyze: {len(findings)} finding(s) in "
              f"{len({f.path for f in findings})} file(s)", file=sys.stderr)
        return 1
    print(f"sda-analyze: clean ({len(files_by_rel)} files)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
