#!/usr/bin/env python3
"""Selftest for sda_analyze: every rule gets a fixture mini-tree.

Unlike the line-oriented sda_lint fixtures (one file per rule), the
semantic analyzer's rules see program structure — layer placement in the
path, the include graph, cross-file member declarations — so each case
is a miniature repo under fixtures/analyze/<case>/src/... scanned with
--root pointed at the case directory.  Every tree mixes the violation
with clean and suppressed counterparts, so the expected counts also
prove the rule does NOT overfire.  Run from anywhere:

    python3 tools/lint/test_sda_analyze.py
"""

import contextlib
import io
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, HERE)

import sda_analyze  # noqa: E402

FIXTURES = os.path.join(HERE, "fixtures", "analyze")

# (case directory, rule, expected finding count, substring every finding
#  must contain — anchors the finding to the intended site)
CASES = [
    ("layering", "LAYERING", 1, "src/sim/bad_include.cpp:5"),
    ("cycle", "CYCLE", 1, "src/util/a.hpp -> src/util/b.hpp"),
    ("wall_clock", "WALL_CLOCK", 2, "src/sim/bad_clock.cpp"),
    ("ptr_key", "PTR_KEY_ORDER", 2, "src/core/bad_ptr_key.cpp"),
    ("unordered_sink", "UNORDERED_SINK", 1, "src/metrics/bad_sink.cpp:19"),
    ("callback", "CALLBACK_REENTRANT", 1, "src/exp/bad_reentrant.cpp:40"),
]


def run_case(case, rule):
    """Runs the analyzer on one fixture tree with one rule enabled."""
    root = os.path.join(FIXTURES, case)
    out = io.StringIO()
    err = io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        code = sda_analyze.main(["src", "--root", root, "--rules", rule])
    lines = [l for l in out.getvalue().splitlines() if l.strip()]
    return code, lines


def main():
    failures = []
    for case, rule, expected, anchor in CASES:
        root = os.path.join(FIXTURES, case)
        if not os.path.isdir(root):
            failures.append(f"{case}: fixture tree missing")
            continue
        code, lines = run_case(case, rule)
        wrong_rule = [l for l in lines if f" {rule} " not in l]
        if wrong_rule:
            failures.append(
                f"{case}: off-rule findings under --rules={rule}: "
                f"{wrong_rule}")
        if len(lines) != expected:
            failures.append(
                f"{case}: expected {expected} {rule} finding(s), "
                f"got {len(lines)}:\n  " + "\n  ".join(lines or ["<none>"]))
        off_anchor = [l for l in lines if anchor not in l]
        if lines and off_anchor:
            failures.append(
                f"{case}: finding(s) not anchored at '{anchor}': "
                f"{off_anchor}")
        expect_exit = 1 if expected else 0
        if code != expect_exit:
            failures.append(
                f"{case}: expected exit {expect_exit}, got {code}")

    # Every fixture tree must be quiet under the FULL rule set except for
    # its own rule's expected findings — proves no cross-rule bleed
    # (e.g. the callback fixture must not trip UNORDERED_SINK).
    for case, rule, expected, _anchor in CASES:
        root = os.path.join(FIXTURES, case)
        if not os.path.isdir(root):
            continue
        out = io.StringIO()
        err = io.StringIO()
        with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
            sda_analyze.main(["src", "--root", root])
        lines = [l for l in out.getvalue().splitlines() if l.strip()]
        if len(lines) != expected:
            failures.append(
                f"{case}: full-rule-set scan expected {expected} "
                f"finding(s), got {len(lines)}:\n  "
                + "\n  ".join(lines or ["<none>"]))

    if failures:
        for f in failures:
            print(f"FAIL {f}")
        print(f"test_sda_analyze: {len(failures)} failure(s)")
        return 1
    print(f"test_sda_analyze: all {len(CASES)} fixture trees passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
