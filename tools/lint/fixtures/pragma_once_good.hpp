// Fixture: PRAGMA_ONCE should not fire.
#pragma once

struct Guarded {
  int x = 0;
};
