// Fixture: ASSERT_SIDE_EFFECT should fire 3 times.
#include <cassert>
#include <vector>

void mutate(std::vector<int>& xs, int& count) {
  assert(++count > 0);                  // finding 1
  assert(count-- >= 0);                 // finding 2
  assert((xs.erase(xs.begin()), true)); // finding 3
}
