// Fixture: NAKED_NEW should not fire.
#include <memory>

struct Thing {
  int x;
  Thing(const Thing&) = delete;             // deleted member, not delete-expr
  Thing& operator=(const Thing&) = delete;
};

std::unique_ptr<int> make() {
  auto p = std::make_unique<int>(7);
  // sda-lint: allow(NAKED_NEW) pool internals need placement construction
  int* q = new int(3);
  delete q;  // sda-lint: allow(NAKED_NEW)
  return p;
}
