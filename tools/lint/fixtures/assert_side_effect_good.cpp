// Fixture: ASSERT_SIDE_EFFECT should not fire.
#include <cassert>
#include <vector>

void inspect(const std::vector<int>& xs, int count) {
  assert(count >= 0);
  assert(count <= static_cast<int>(xs.size()));
  assert(xs.empty() || xs.front() != -1);  // comparisons are not assignments
  // sda-lint: allow(ASSERT_SIDE_EFFECT) debug-only counter by design
  assert(count + 1 > count);
}
