// Fixture: UNORDERED_ITER should fire 2 times.
#include <cstdio>
#include <string>
#include <unordered_map>
#include <unordered_set>

struct Report {
  std::unordered_map<std::string, double> totals_;
  std::unordered_set<int> seen_ids;

  void render() const {
    for (const auto& [name, total] : totals_) {     // finding 1
      std::printf("%s %f\n", name.c_str(), total);
    }
  }
};

void fold(const Report& r) {
  for (int id : r.seen_ids) {                        // finding 2
    std::printf("%d\n", id);
  }
}
