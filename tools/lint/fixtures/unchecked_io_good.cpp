// UNCHECKED_IO good fixture: every result consumed, or the discard is
// spelled out.
#include <cerrno>
#include <unistd.h>

bool write_all(int fd, const char* data, unsigned long len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);  // assigned
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<unsigned long>(n);
  }
  return true;
}

bool sync_file(int fd) {
  if (::fsync(fd) != 0) return false;  // compared
  return true;
}

long read_some(int fd, char* buf) {
  return ::read(fd, buf, 64);  // returned
}

void wake(int fd) {
  (void)::write(fd, "x", 1);  // deliberate discard, spelled out
  // sda-lint: allow(UNCHECKED_IO)
  ::fsync(fd);  // suppressed: best-effort flush on shutdown
}
