// Fixture: PRAGMA_ONCE should fire 1 time (no include guard of any kind).
struct Unguarded {
  int x = 0;
};
