// Fixture: FLOAT_EQ should not fire.
namespace sda::util {
bool feq(double a, double b, double eps = 1e-9);
bool fne(double a, double b, double eps = 1e-9);
}

bool checks(double x, int n) {
  bool a = sda::util::feq(x, 0.5);
  bool b = sda::util::fne(x, 1.0);
  bool c = n == 3;            // integral comparison is fine
  bool d = x <= 2.0;          // ordering against a literal is fine
  // sda-lint: allow(FLOAT_EQ) sentinel value set by us, bit-exact
  bool e = x == -1.0;
  return a || b || c || d || e;
}
