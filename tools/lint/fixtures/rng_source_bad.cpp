// Fixture: RNG_SOURCE should fire 6 times.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

int bad_entropy() {
  std::random_device rd;                                  // finding 1
  std::srand(42);                                         // finding 2
  int x = std::rand();                                    // finding 3
  x += rand();                                            // finding 4
  auto t = std::chrono::system_clock::now();              // finding 5
  (void)rd;
  (void)t;
  return x + static_cast<int>(time(nullptr));             // finding 6
}
