// Fixture: src/sim (rank 1) reaching up into src/core (rank 3).
// Expect exactly one LAYERING finding (the admission include); the
// invariants include is the standing cross-cutting exemption and the
// sched include is suppressed with a reason.
#include "src/core/admission.hpp"
#include "src/core/invariants.hpp"
// sda-analyze: allow(LAYERING) fixture: suppressed upward include
#include "src/sched/edf.hpp"

int sim_bad_include() { return 1; }
