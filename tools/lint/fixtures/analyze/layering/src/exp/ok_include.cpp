// Fixture: src/exp (rank 4) including downward is the normal direction;
// no LAYERING findings expected here.
#include "src/core/admission.hpp"
#include "src/sched/edf.hpp"
#include "src/sim/engine.hpp"
#include "src/util/env.hpp"

int exp_ok_include() { return 0; }
