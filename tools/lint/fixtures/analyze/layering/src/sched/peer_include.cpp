// Fixture: sched (rank 2) includes task/sim (rank 1) and util (rank 0)
// — all downward, all clean.
#include "src/sim/event_queue.hpp"
#include "src/task/task.hpp"
#include "src/util/rng.hpp"

int sched_peer_include() { return 0; }
