// Fixture: half of an include cycle (a.hpp -> b.hpp -> a.hpp).
// Expect exactly one CYCLE finding for the pair.
#pragma once
#include "src/util/b.hpp"

struct A {
  int x = 0;
};
