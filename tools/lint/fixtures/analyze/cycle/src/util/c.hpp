// Fixture: an acyclic include on the side — must NOT be reported.
#pragma once
#include "src/util/a.hpp"

struct C {
  int z = 0;
};
