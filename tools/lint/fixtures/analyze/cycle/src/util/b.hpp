// Fixture: the other half of the a.hpp <-> b.hpp include cycle.
#pragma once
#include "src/util/a.hpp"

struct B {
  int y = 0;
};
