// Fixture: wall-clock use in src/exp is fine — the experiment harness
// and transports legitimately time real I/O.  No findings expected.
#include <chrono>

double exp_ok_now() {
  auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}
