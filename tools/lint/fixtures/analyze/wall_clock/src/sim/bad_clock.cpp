// Fixture: wall-clock access inside the deterministic core.  Expect
// exactly two WALL_CLOCK findings (steady_clock and clock_gettime); the
// suppressed system_clock line carries a reason and must not fire.
#include <chrono>
#include <ctime>

double sim_bad_now() {
  auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

long sim_bad_posix_now() {
  struct timespec ts;
  clock_gettime(0, &ts);
  return ts.tv_sec;
}

// sda-analyze: allow(WALL_CLOCK) fixture: suppressed with a reason
long sim_suppressed_now() { return std::chrono::system_clock::now().time_since_epoch().count(); }
