// Fixture: pointer-keyed ordered containers.  Expect exactly two
// PTR_KEY_ORDER findings (the map and the set); the id-keyed map and
// the suppressed multimap must not fire.
#include <map>
#include <set>
#include <cstdint>

struct Node {
  int id = 0;
};

struct Registry {
  std::map<Node*, int> by_addr;           // BAD: address order
  std::set<const Node*> live;             // BAD: address order
  std::map<std::uint64_t, Node> by_id;    // fine: stable-id key
  // sda-analyze: allow(PTR_KEY_ORDER) fixture: suppressed with a reason
  std::multimap<Node*, int> suppressed;
};

int ptr_key_fixture() {
  Registry r;
  return static_cast<int>(r.by_id.size());
}
