// Fixture: unordered iteration feeding a fingerprint sink.  Expect
// exactly one UNORDERED_SINK finding (the fnv1a loop); the sorted-copy
// fold and the sink-free loop must not fire.
#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

inline std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  return (h ^ v) * 1099511628211ULL;
}

struct Board {
  std::unordered_map<std::uint64_t, double> cells_;

  std::uint64_t bad_fingerprint() const {
    std::uint64_t h = 1469598103934665603ULL;
    for (const auto& kv : cells_) {
      h = fnv1a(h, kv.first);  // BAD: unspecified order into the hash
    }
    return h;
  }

  std::uint64_t good_fingerprint() const {
    std::vector<std::uint64_t> keys;
    for (const auto& kv : cells_) {
      keys.push_back(kv.first);  // fine: collect only, no sink in body
    }
    std::sort(keys.begin(), keys.end());
    std::uint64_t h = 1469598103934665603ULL;
    for (std::uint64_t k : keys) {
      h = fnv1a(h, k);  // fine: keys is a sorted vector, not unordered
    }
    return h;
  }
};

int unordered_sink_fixture() {
  Board b;
  return static_cast<int>(b.bad_fingerprint() ^ b.good_fingerprint());
}
