// Fixture: the PR-6 slow-client-eviction use-after-free shape.  The
// splitter's feed() runs the lambda synchronously while iterating the
// connection's buffered bytes; the lambda reaches drop_connection(),
// which erases the very map entry that owns the splitter mid-callback.
// Expect exactly one CALLBACK_REENTRANT finding at the feed() call.
#include <cstddef>
#include <map>
#include <string>
#include <utility>

namespace fixture {

struct Splitter {
  std::string buf;
  template <typename Fn>
  void feed(const char* data, std::size_t n, Fn&& fn) {
    buf.append(data, n);
    fn(buf);  // synchronous: caller state must stay alive
  }
};

struct Connection {
  int fd = -1;
  Splitter splitter;
};

class Server {
 public:
  void handle_readable(Connection& conn, const char* data, std::size_t n);

 private:
  void on_line(Connection& conn, const std::string& line);
  void drop_connection(int fd);

  std::map<int, Connection> connections_;
};

void Server::handle_readable(Connection& conn, const char* data,
                             std::size_t n) {
  conn.splitter.feed(data, n, [&](const std::string& line) {
    on_line(conn, line);
  });
}

void Server::on_line(Connection& conn, const std::string& line) {
  if (line.empty()) {
    drop_connection(conn.fd);  // BAD: destroys conn under the callback
  }
}

void Server::drop_connection(int fd) {
  connections_.erase(fd);
}

}  // namespace fixture

int callback_bad_fixture() {
  fixture::Connection c;
  return c.fd;
}
