// Fixture: the corrected shape — the callback only MARKS the connection
// doomed; the erase happens in reap_doomed(), which the event loop calls
// after the callback stack has unwound.  No findings expected.
#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace fixture_ok {

struct Splitter {
  std::string buf;
  template <typename Fn>
  void feed(const char* data, std::size_t n, Fn&& fn) {
    buf.append(data, n);
    fn(buf);
  }
};

struct Connection {
  int fd = -1;
  bool doomed = false;
  Splitter splitter;
};

class Server {
 public:
  void handle_readable(Connection& conn, const char* data, std::size_t n);
  void reap_doomed();

 private:
  void on_line(Connection& conn, const std::string& line);

  std::map<int, Connection> connections_;
  std::vector<int> doomed_fds_;
};

void Server::handle_readable(Connection& conn, const char* data,
                             std::size_t n) {
  conn.splitter.feed(data, n, [&](const std::string& line) {
    on_line(conn, line);
  });
}

void Server::on_line(Connection& conn, const std::string& line) {
  if (line.empty()) {
    conn.doomed = true;  // deferred: mark only, reap later
    doomed_fds_.push_back(conn.fd);
  }
}

void Server::reap_doomed() {
  for (int fd : doomed_fds_) {
    connections_.erase(fd);  // safe: no callback frames on the stack
  }
  doomed_fds_.clear();
}

}  // namespace fixture_ok

int callback_ok_fixture() {
  fixture_ok::Connection c;
  return c.fd;
}
