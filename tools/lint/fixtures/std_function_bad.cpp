// Fixture: STD_FUNCTION should fire 2 times.
#include <functional>

struct Widget {
  std::function<void()> on_click;                  // finding 1
  void each(const std::function<void(int)>& f);    // finding 2
};
