// Fixture: RNG_SOURCE should not fire.
// Seeded draws, a suppressed call, and identifiers that merely contain the
// banned substrings.
namespace sda::util { class Rng { public: double uniform01(); }; }

double good_entropy(sda::util::Rng& rng) {
  double x = rng.uniform01();
  int operand_count = 3;        // "rand" inside an identifier
  double runtime_cost = 1.0;    // "time" inside an identifier
  // sda-lint: allow(RNG_SOURCE) fixture demonstrates suppression
  int legacy = rand();
  return x + operand_count + runtime_cost + legacy;
}
