// Fixture: FLOAT_EQ should fire 4 times.
bool checks(double x, float y) {
  bool a = x == 0.5;        // finding 1
  bool b = x != 1.0;        // finding 2
  bool c = 2.5e-3 == x;     // finding 3
  bool d = y == 0.25f;      // finding 4
  return a || b || c || d;
}
