// Fixture: NAKED_NEW should fire 3 times.
struct Thing { int x; };

Thing* make() {
  Thing* t = new Thing{1};     // finding 1
  int* arr = new int[8];       // finding 2
  delete[] arr;                // finding 3
  return t;
}
