// UNBOUNDED_QUEUE bad fixture: pushes into queue-named containers with
// no capacity check anywhere near them.
#include <deque>
#include <queue>
#include <vector>

struct Pending {
  int ticket;
};

struct Controller {
  std::deque<Pending> queue_;
  std::vector<int> retry_queue;
  std::queue<int>* overflow_queue = nullptr;

  void enqueue(const Pending& p) {
    queue_.push_back(p);  // finding 1: no bound in sight
  }

  void retry(int ticket) {
    int widen = ticket * 2;
    int jitter = widen + 1;
    (void)jitter;
    retry_queue.emplace_back(ticket);  // finding 2
  }

  void spill(int ticket) {
    overflow_queue->push(ticket);  // finding 3: pointer access too
  }
};
