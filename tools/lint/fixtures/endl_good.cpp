// Fixture: ENDL should not fire.
#include <iostream>
#include <vector>

void dump(const std::vector<int>& xs) {
  for (int x : xs) {
    std::cout << x << '\n';
  }
  std::cout << std::endl;  // outside any loop: one flush is fine
  for (int x : xs) {
    // sda-lint: allow(ENDL) interactive prompt must flush per line
    std::cout << x << std::endl;
  }
}
