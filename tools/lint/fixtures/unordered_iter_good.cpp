// Fixture: UNORDERED_ITER should not fire.
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

struct Report {
  std::unordered_map<std::string, double> totals_;
  std::map<std::string, double> ordered_totals_;

  void render() const {
    // Ordered container: deterministic iteration, no finding.
    for (const auto& [name, total] : ordered_totals_) {
      std::printf("%s %f\n", name.c_str(), total);
    }
    // Sorted copy: the sanctioned pattern for unordered members.
    std::vector<std::string> names;
    for (const auto& [name, total] : totals_) {  // sda-lint: allow(UNORDERED_ITER)
      names.push_back(name);
    }
    std::sort(names.begin(), names.end());
    for (const std::string& name : names) {
      std::printf("%s %f\n", name.c_str(), totals_.at(name));
    }
  }
};
