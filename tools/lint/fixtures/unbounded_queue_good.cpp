// UNBOUNDED_QUEUE good fixture: every push is either visibly bounded,
// suppressed with a justification, or not a queue at all.
#include <deque>
#include <vector>

struct Pending {
  int ticket;
};

struct Controller {
  std::deque<Pending> queue_;
  std::vector<int> retry_queue;
  std::vector<int> log_lines;  // not queue-named: out of scope
  std::size_t queue_capacity = 64;

  bool enqueue(const Pending& p) {
    if (queue_.size() >= queue_capacity) return false;  // the guard
    queue_.push_back(p);
    return true;
  }

  void retry(int ticket) {
    // sda-lint: allow(UNBOUNDED_QUEUE) drained every tick, bounded by k
    retry_queue.emplace_back(ticket);
  }

  void note(int line) {
    log_lines.push_back(line);  // plain vector, rule does not apply
  }
};
