// UNCHECKED_IO bad fixture: POSIX IO calls whose results vanish.
#include <unistd.h>

void journal_append(int fd, const char* data, unsigned long len) {
  ::write(fd, data, len);  // finding 1: short write silently dropped
  ::fsync(fd);             // finding 2: "durable" in name only
}

void drain(int fd, char* buf) {
  ::read(fd, buf, 64);     // finding 3: EOF/EINTR indistinguishable
  int x = 0;
  x = 1; ::write(fd, buf, 1);  // finding 4: statement after ';'
  (void)x;
}
