// Fixture: ENDL should fire 3 times.
#include <iostream>
#include <vector>

void dump(const std::vector<int>& xs) {
  for (int x : xs) {
    std::cout << x << std::endl;                 // finding 1
  }
  int i = 0;
  while (i < 3) {
    if (i % 2 == 0) {
      std::cerr << "even" << std::endl;          // finding 2 (nested scope)
    }
    ++i;
  }
  for (int x : xs) std::cout << x << std::endl;  // finding 3 (one-liner)
}
