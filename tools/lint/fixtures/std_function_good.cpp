// Fixture: STD_FUNCTION should not fire.
// The sanctioned callables, a comment mention, and a suppression.
namespace sda::util {
template <typename Sig> class UniqueFn;
template <typename Sig> class FunctionRef;
}

struct Widget {
  // std::function is banned here; this comment must not trip the rule.
  sda::util::UniqueFn<void()>* on_click;
  void each(sda::util::FunctionRef<void(int)> f);
  // sda-lint: allow(STD_FUNCTION) interop with external API
  void* legacy_std_function_slot;  // std::function<int()> in disguise
};
