#!/usr/bin/env python3
"""sda-lint: project-specific static checks for the SDA simulator.

Dependency-free (stdlib only) so it runs anywhere the repo builds.  The
rules encode contracts the compiler cannot see:

  RNG_SOURCE          Nondeterministic sources (rand(), std::random_device,
                      system_clock, time(NULL)) outside src/util/rng.* —
                      every simulated number must flow from the seeded
                      util::Rng or results stop being reproducible.
  STD_FUNCTION        std::function in simulator code.  Stored callbacks
                      use util::UniqueFn (SBO, move-only), synchronous
                      call parameters use util::FunctionRef, and event
                      closures use sim::InlineFn; std::function's
                      copy-allocate semantics belong to none of them.
  NAKED_NEW           new/delete expressions outside the pool/slab files.
                      Ownership lives in containers and smart pointers;
                      the event queue's slab and UniqueFn's heap fallback
                      are the sanctioned exceptions.
  FLOAT_EQ            Exact ==/!= against a floating-point literal.  Use
                      util::feq/util::fne (src/util/feq.hpp), the one
                      sanctioned home for float equality.
  ENDL                std::endl inside a loop — flushes per iteration;
                      use '\n' and flush once.
  PRAGMA_ONCE         Header missing #pragma once.
  UNORDERED_ITER      Range-for over a std::unordered_{map,set} member
                      feeding report/result folding: iteration order is
                      unspecified, so fold through a sorted copy instead.
  ASSERT_SIDE_EFFECT  assert(...) whose argument mutates state (++/--/
                      assignment/reset/erase...); NDEBUG builds skip the
                      argument entirely.
  UNBOUNDED_QUEUE     push/push_back/emplace into an identifier whose name
                      contains "queue" with no capacity check in sight
                      (same line or the few lines above).  Admission and
                      retry queues are load-bearing backpressure points:
                      an unchecked push turns overload into unbounded
                      memory growth.  Check .size() against a capacity
                      first, or carry an allow() naming the bound.
  UNCHECKED_IO        A ::read/::write/::fsync call in statement position,
                      its return value discarded.  Short writes and EINTR
                      are normal on sockets and files, and the journal's
                      durability promise is only as good as its checked
                      fsync.  Consume the result (assign, compare, or
                      wrap in a helper); a deliberate discard must be
                      spelled (void)::write(...) or carry an allow().

Suppression: append `// sda-lint: allow(RULE)` on the offending line or
the line directly above it.  Findings print as `file:line: RULE message`
and the exit status is the number of files with findings (0 = clean).
"""

import argparse
import os
import re
import sys

HEADER_EXT = (".hpp", ".h", ".hh")
SOURCE_EXT = (".cpp", ".cc", ".cxx") + HEADER_EXT

# Files allowed to use raw entropy / time sources.
RNG_ALLOWED = ("src/util/rng.hpp", "src/util/rng.cpp")
# Files allowed to contain new/delete expressions (slab/pool internals and
# the small-buffer callable's heap fallback).
NAKED_NEW_ALLOWED = (
    "src/sim/event_queue.hpp",
    "src/sim/event_queue.cpp",
    "src/util/unique_fn.hpp",
    "src/sim/inline_fn.hpp",
    "src/util/arena.hpp",
    "src/util/arena.cpp",
)
# The sanctioned home of exact float comparison.
FLOAT_EQ_ALLOWED = ("src/util/feq.hpp",)

ALLOW_RE = re.compile(r"sda-lint:\s*allow\(([A-Z_,\s]+)\)")

# Every suppression pragma in the tree — sda-lint's and sda-analyze's —
# with whatever text follows the closing paren.  `--audit-suppressions`
# requires that text to be a non-empty justification: a suppression
# without a reason is unreviewable and fails the audit.
SUPPRESSION_RE = re.compile(
    r"(sda-(?:lint|analyze)):\s*allow\(([A-Z_,\s]+)\)\s*(.*)")


class Line:
    """One physical line with comments and string/char literals blanked."""

    __slots__ = ("raw", "code", "allows")

    def __init__(self, raw, code, allows):
        self.raw = raw
        self.code = code
        self.allows = allows


def strip_lines(text):
    """Returns a list of Line: comments and literal contents replaced by
    spaces (same length, so columns survive), plus per-line allow() sets."""
    out = []
    raw_lines = text.split("\n")
    # Collect allow() pragmas per line first (they live inside comments).
    allows = []
    for raw in raw_lines:
        found = set()
        for m in ALLOW_RE.finditer(raw):
            for rule in m.group(1).split(","):
                rule = rule.strip()
                if rule:
                    found.add(rule)
        allows.append(found)

    state = "code"  # code | block_comment
    for idx, raw in enumerate(raw_lines):
        buf = []
        i, n = 0, len(raw)
        while i < n:
            c = raw[i]
            if state == "block_comment":
                if c == "*" and i + 1 < n and raw[i + 1] == "/":
                    state = "code"
                    buf.append("  ")
                    i += 2
                else:
                    buf.append(" ")
                    i += 1
                continue
            if c == "/" and i + 1 < n and raw[i + 1] == "/":
                buf.append(" " * (n - i))
                break
            if c == "/" and i + 1 < n and raw[i + 1] == "*":
                state = "block_comment"
                buf.append("  ")
                i += 2
                continue
            if c == '"' or c == "'":
                quote = c
                buf.append(quote)
                i += 1
                while i < n:
                    if raw[i] == "\\" and i + 1 < n:
                        buf.append("  ")
                        i += 2
                        continue
                    if raw[i] == quote:
                        buf.append(quote)
                        i += 1
                        break
                    buf.append(" ")
                    i += 1
                continue
            buf.append(c)
            i += 1
        out.append(Line(raw, "".join(buf), allows[idx]))
    return out


class Finding:
    __slots__ = ("path", "line", "rule", "message")

    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line  # 1-based
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


def suppressed(lines, idx, rule):
    """allow(RULE) on the same line or the line directly above."""
    if rule in lines[idx].allows:
        return True
    if idx > 0 and rule in lines[idx - 1].allows:
        return True
    return False


def relpath(path, root):
    return os.path.relpath(path, root).replace(os.sep, "/")


# --- individual rules ------------------------------------------------------

RNG_PATTERNS = [
    (re.compile(r"\b(?:std::)?random_device\b"), "std::random_device"),
    (re.compile(r"\bstd::chrono::system_clock\b"), "system_clock"),
    (re.compile(r"(?:\bstd::|(?<![:\w.]))rand\s*\("), "rand()"),
    (re.compile(r"(?:\bstd::|(?<![:\w.]))srand\s*\("), "srand()"),
    (re.compile(r"(?:\bstd::|(?<![:\w.>]))time\s*\(\s*(NULL|nullptr|0)?\s*\)"),
     "time()"),
]


def rule_rng_source(rel, lines, findings):
    if rel in RNG_ALLOWED:
        return
    for idx, ln in enumerate(lines):
        for pat, what in RNG_PATTERNS:
            if pat.search(ln.code) and not suppressed(lines, idx, "RNG_SOURCE"):
                findings.append(Finding(
                    rel, idx + 1, "RNG_SOURCE",
                    f"nondeterministic source {what}; draw from the seeded "
                    "util::Rng instead (src/util/rng.hpp)"))


STD_FUNCTION_RE = re.compile(r"\bstd::function\s*<")


def rule_std_function(rel, lines, findings):
    for idx, ln in enumerate(lines):
        if STD_FUNCTION_RE.search(ln.code) and \
                not suppressed(lines, idx, "STD_FUNCTION"):
            findings.append(Finding(
                rel, idx + 1, "STD_FUNCTION",
                "std::function in simulator code; use util::UniqueFn for "
                "stored callbacks, util::FunctionRef for call-and-return "
                "parameters, or sim::InlineFn for event closures"))


NEW_RE = re.compile(r"(?<![:\w.])new\b(?!\s*\()")
PLACEMENT_NEW_RE = re.compile(r"(?<![:\w.])new\s*\(")
DELETE_RE = re.compile(r"(?<![:\w.])delete\b(?!\s*\[?\]?\s*\()")


def rule_naked_new(rel, lines, findings):
    if rel in NAKED_NEW_ALLOWED:
        return
    for idx, ln in enumerate(lines):
        code = ln.code
        # `= delete;` (deleted special members) is not a delete-expression.
        scrubbed = re.sub(r"=\s*delete\s*(;|,)", "", code)
        hit = None
        if NEW_RE.search(code) or PLACEMENT_NEW_RE.search(code):
            hit = "new"
        elif DELETE_RE.search(scrubbed):
            hit = "delete"
        if hit and not suppressed(lines, idx, "NAKED_NEW"):
            findings.append(Finding(
                rel, idx + 1, "NAKED_NEW",
                f"naked {hit} expression; use std::make_unique/containers "
                "(pool internals carry an explicit allow)"))


FLOAT_LITERAL = r"(?:\d+\.\d*(?:[eE][+-]?\d+)?[fF]?|\.\d+(?:[eE][+-]?\d+)?[fF]?|\d+[eE][+-]?\d+[fF]?|\d+\.?\d*[fF])"
FLOAT_EQ_RE = re.compile(
    r"(?:[!=]=\s*[-+]?" + FLOAT_LITERAL + r")|(?:" + FLOAT_LITERAL +
    r"\s*[!=]=)")


def rule_float_eq(rel, lines, findings):
    if rel in FLOAT_EQ_ALLOWED:
        return
    for idx, ln in enumerate(lines):
        m = FLOAT_EQ_RE.search(ln.code)
        if not m:
            continue
        # Skip `==` that is part of `<=`/`>=` captured oddly, and skip
        # integral-looking contexts like `x == 0` (no dot/exponent) — the
        # pattern already requires a float literal, so just report.
        if not suppressed(lines, idx, "FLOAT_EQ"):
            findings.append(Finding(
                rel, idx + 1, "FLOAT_EQ",
                "exact ==/!= against a float literal; use util::feq / "
                "util::fne (src/util/feq.hpp)"))


LOOP_KEYWORD_RE = re.compile(r"\b(for|while|do)\b")
ENDL_RE = re.compile(r"\bstd::endl\b")


def rule_endl(rel, lines, findings):
    """Flags std::endl lexically inside a loop body.

    Brace-depth tracker: when a loop keyword appears, the next `{` opens a
    loop scope; std::endl at any depth inside one is flagged.  One-line
    `for (...) os << std::endl;` (no brace) is caught by flagging a line
    that has both a loop keyword and std::endl.
    """
    depth = 0
    loop_depths = []  # brace depths at which a loop body opened
    pending_loop = False
    for idx, ln in enumerate(lines):
        code = ln.code
        has_loop_kw = bool(LOOP_KEYWORD_RE.search(code))
        has_endl = bool(ENDL_RE.search(code))
        inside_loop = bool(loop_depths)
        if has_endl and (inside_loop or has_loop_kw) and \
                not suppressed(lines, idx, "ENDL"):
            findings.append(Finding(
                rel, idx + 1, "ENDL",
                "std::endl inside a loop flushes every iteration; stream "
                "'\\n' and flush once after the loop"))
        if has_loop_kw:
            pending_loop = True
        for c in code:
            if c == "{":
                depth += 1
                if pending_loop:
                    loop_depths.append(depth)
                    pending_loop = False
            elif c == "}":
                if loop_depths and loop_depths[-1] == depth:
                    loop_depths.pop()
                depth = max(0, depth - 1)
        # A statement terminator at depth with no brace consumed the
        # pending loop header (single-statement body).
        if pending_loop and ";" in code and "{" not in code:
            pending_loop = False


def rule_pragma_once(rel, lines, findings):
    if not rel.endswith(HEADER_EXT):
        return
    for ln in lines:
        if ln.code.strip().startswith("#pragma once"):
            return
    if lines and suppressed(lines, 0, "PRAGMA_ONCE"):
        return
    findings.append(Finding(
        rel, 1, "PRAGMA_ONCE", "header is missing #pragma once"))


UNORDERED_DECL_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;{}]*>\s*"
    r"(\w+)\s*[;{=]")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(\s*[^;)]*?[:&\]\s]\s*:\s*(\w[\w.\->]*)\s*\)")


def collect_unordered_names(all_lines_by_file):
    """Global set of identifiers declared as unordered containers, plus a
    per-file map for disambiguating bare local names."""
    global_names = set()
    per_file = {}
    for path, lines in all_lines_by_file.items():
        local = set()
        for ln in lines:
            for m in UNORDERED_DECL_RE.finditer(ln.code):
                local.add(m.group(1))
        per_file[path] = local
        global_names |= local
    return global_names, per_file


def rule_unordered_iter(rel, lines, findings, unordered_names, local_names):
    for idx, ln in enumerate(lines):
        m = RANGE_FOR_RE.search(ln.code)
        if not m:
            continue
        target = m.group(1)
        # `run.live`, `this->state`, `abort_timers_` → last component.
        base = re.split(r"\.|->", target)[-1]
        # A bare plain identifier (no member access, no trailing
        # underscore) is a local; trust only declarations from this file —
        # a common name like `state` would otherwise collide with members
        # declared elsewhere.  Member-style names (`foo_`) and dotted
        # paths resolve against every scanned declaration, since class
        # members routinely live in a header while the loop is in the .cpp.
        if base == target and not base.endswith("_"):
            candidates = local_names
        else:
            candidates = unordered_names
        if base in candidates and \
                not suppressed(lines, idx, "UNORDERED_ITER"):
            findings.append(Finding(
                rel, idx + 1, "UNORDERED_ITER",
                f"range-for over unordered container '{target}': iteration "
                "order is unspecified; fold through a sorted copy (or "
                "carry an allow() with the sorting justification)"))


ASSERT_RE = re.compile(r"\bassert\s*\(")
SIDE_EFFECT_RE = re.compile(
    r"(\+\+|--|(?<![=!<>+\-*/%&|^])=(?![=])|\.erase\s*\(|\.reset\s*\(|"
    r"\.push_back\s*\(|\.pop\s*\(|\.insert\s*\(|\.clear\s*\()")


def rule_assert_side_effect(rel, lines, findings):
    for idx, ln in enumerate(lines):
        code = ln.code
        m = ASSERT_RE.search(code)
        if not m:
            continue
        # Extract the argument up to the matching ')' (single line only —
        # multi-line asserts are rare and caught by eye in review).
        start = m.end()
        depth = 1
        j = start
        while j < len(code) and depth > 0:
            if code[j] == "(":
                depth += 1
            elif code[j] == ")":
                depth -= 1
            j += 1
        arg = code[start:j - 1] if depth == 0 else code[start:]
        if SIDE_EFFECT_RE.search(arg) and \
                not suppressed(lines, idx, "ASSERT_SIDE_EFFECT"):
            findings.append(Finding(
                rel, idx + 1, "ASSERT_SIDE_EFFECT",
                "assert() argument has a side effect; NDEBUG builds drop "
                "the whole expression"))


QUEUE_PUSH_RE = re.compile(
    r"\b((?:\w+(?:\.|->))*\w*queue\w*)\s*(?:\.|->)\s*"
    r"(?:push_back|push_front|push|emplace_back|emplace_front|emplace)"
    r"\s*\(", re.IGNORECASE)
# Evidence that the push is guarded: a size/capacity comparison close by.
QUEUE_GUARD_RE = re.compile(
    r"\.size\s*\(\)|\.length\s*\(\)|capacity|high_water|_cap\b|cap_\b|"
    r"\bmax_\w+|\bfull\b|\bbounded\b", re.IGNORECASE)
QUEUE_GUARD_WINDOW = 6  # lines above the push searched for a guard


def rule_unbounded_queue(rel, lines, findings):
    for idx, ln in enumerate(lines):
        m = QUEUE_PUSH_RE.search(ln.code)
        if not m:
            continue
        lo = max(0, idx - QUEUE_GUARD_WINDOW)
        guarded = any(QUEUE_GUARD_RE.search(lines[j].code)
                      for j in range(lo, idx + 1))
        if guarded or suppressed(lines, idx, "UNBOUNDED_QUEUE"):
            continue
        findings.append(Finding(
            rel, idx + 1, "UNBOUNDED_QUEUE",
            f"push into '{m.group(1)}' without a visible capacity check; "
            "bound the queue (compare .size() against a capacity before "
            "pushing) or carry an allow() naming the bound"))


UNCHECKED_IO_RE = re.compile(r"(?:^|;)\s*::(read|write|fsync)\s*\(")


def rule_unchecked_io(rel, lines, findings):
    """Flags ::read/::write/::fsync whose result is thrown away.

    Statement position (start of line or right after ';') means nothing
    consumes the return value.  Checked forms — `const ssize_t n =
    ::write(...)`, `if (::fsync(fd) != 0)`, `return ::read(...)`,
    `(void)::write(...)` — all put tokens before the call and never
    match.
    """
    for idx, ln in enumerate(lines):
        m = UNCHECKED_IO_RE.search(ln.code)
        if not m:
            continue
        if suppressed(lines, idx, "UNCHECKED_IO"):
            continue
        findings.append(Finding(
            rel, idx + 1, "UNCHECKED_IO",
            f"::{m.group(1)}() return value discarded; short writes/EINTR "
            "are normal — check the result, or spell a deliberate discard "
            "as (void)::" + m.group(1) + "(...)"))


# --- driver ---------------------------------------------------------------

RULES_HELP = [
    "RNG_SOURCE", "STD_FUNCTION", "NAKED_NEW", "FLOAT_EQ", "ENDL",
    "PRAGMA_ONCE", "UNORDERED_ITER", "ASSERT_SIDE_EFFECT",
    "UNBOUNDED_QUEUE", "UNCHECKED_IO",
]


def scan_file(root, path, lines, unordered_names, local_names, only_rules):
    rel = relpath(path, root)
    findings = []
    dispatch = {
        "RNG_SOURCE": lambda: rule_rng_source(rel, lines, findings),
        "STD_FUNCTION": lambda: rule_std_function(rel, lines, findings),
        "NAKED_NEW": lambda: rule_naked_new(rel, lines, findings),
        "FLOAT_EQ": lambda: rule_float_eq(rel, lines, findings),
        "ENDL": lambda: rule_endl(rel, lines, findings),
        "PRAGMA_ONCE": lambda: rule_pragma_once(rel, lines, findings),
        "UNORDERED_ITER": lambda: rule_unordered_iter(
            rel, lines, findings, unordered_names, local_names),
        "ASSERT_SIDE_EFFECT": lambda: rule_assert_side_effect(
            rel, lines, findings),
        "UNBOUNDED_QUEUE": lambda: rule_unbounded_queue(rel, lines, findings),
        "UNCHECKED_IO": lambda: rule_unchecked_io(rel, lines, findings),
    }
    for rule in RULES_HELP:
        if only_rules and rule not in only_rules:
            continue
        dispatch[rule]()
    return findings


def gather(root, subdirs):
    files = []
    for sub in subdirs:
        base = os.path.join(root, sub)
        if os.path.isfile(base):
            files.append(base)
            continue
        for dirpath, _dirnames, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXT):
                    files.append(os.path.join(dirpath, name))
    return sorted(files)


def audit_suppressions(root, files):
    """Inventory every sda-lint/sda-analyze allow() pragma.  Returns the
    inventory lines plus a Finding for each suppression with no reason."""
    entries, findings = [], []
    for path in files:
        rel = relpath(path, root)
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as f:
                raw_lines = f.read().split("\n")
        except OSError as e:
            print(f"{rel}:0: ERROR cannot read: {e}", file=sys.stderr)
            continue
        for idx, raw in enumerate(raw_lines):
            for m in SUPPRESSION_RE.finditer(raw):
                prefix, rules, reason = m.group(1), m.group(2), \
                    m.group(3).strip()
                for rule in rules.split(","):
                    rule = rule.strip()
                    if not rule:
                        continue
                    entries.append(
                        f"{rel}:{idx + 1}: {prefix} {rule}: "
                        f"{reason or '<no reason>'}")
                    if not reason:
                        findings.append(Finding(
                            rel, idx + 1, rule,
                            f"{prefix} suppression has no reason — add a "
                            "justification after the closing paren"))
    return entries, findings


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="Project linter for the SDA simulator "
                    "(rules: " + ", ".join(RULES_HELP) + ")")
    ap.add_argument("paths", nargs="*", default=[],
                    help="files or directories to scan "
                         "(default: src bench examples)")
    ap.add_argument("--root", default=None,
                    help="repo root for path display (default: cwd or the "
                         "directory containing this script's repo)")
    ap.add_argument("--rules", default=None,
                    help="comma-separated subset of rules to run")
    ap.add_argument("--audit-suppressions", action="store_true",
                    help="list every sda-lint/sda-analyze allow() pragma "
                         "with its reason; fail if any has no reason")
    args = ap.parse_args(argv)

    root = args.root
    if root is None:
        here = os.path.dirname(os.path.abspath(__file__))
        candidate = os.path.dirname(os.path.dirname(here))
        root = candidate if os.path.isdir(os.path.join(candidate, "src")) \
            else os.getcwd()
    root = os.path.abspath(root)

    subdirs = args.paths or ["src", "bench", "examples"]
    only_rules = None
    if args.rules:
        only_rules = {r.strip() for r in args.rules.split(",") if r.strip()}
        unknown = only_rules - set(RULES_HELP)
        if unknown:
            print(f"unknown rules: {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2

    files = gather(root, subdirs)
    if args.audit_suppressions and not args.paths:
        # The audit also covers tools/ (the analyzer's allow() pragmas
        # live anywhere in the tree); lint fixtures are excluded — they
        # exercise the linter and suppress violations by design.
        files = sorted(set(files) | {
            f for f in gather(root, ["tools"])
            if "tools/lint/" not in relpath(f, root)})
    if not files:
        print("sda-lint: no source files found", file=sys.stderr)
        return 2

    if args.audit_suppressions:
        entries, findings = audit_suppressions(root, files)
        for line in entries:
            print(line)
        for f in findings:
            print(f, file=sys.stderr)
        if findings:
            print(f"sda-lint: {len(findings)} reasonless suppression(s)",
                  file=sys.stderr)
            return 1
        print(f"sda-lint: {len(entries)} suppression(s), all with reasons",
              file=sys.stderr)
        return 0

    # UNORDERED_ITER needs declarations from every scanned file first.
    all_lines = {}
    for path in files:
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as f:
                all_lines[path] = strip_lines(f.read())
        except OSError as e:
            print(f"{relpath(path, root)}:0: ERROR cannot read: {e}",
                  file=sys.stderr)
    unordered_names, per_file_names = collect_unordered_names(all_lines)

    findings = []
    for path in files:
        if path not in all_lines:
            continue
        findings.extend(scan_file(root, path, all_lines[path],
                                  unordered_names, per_file_names[path],
                                  only_rules))

    for f in findings:
        print(f)
    if findings:
        print(f"sda-lint: {len(findings)} finding(s) in "
              f"{len({f.path for f in findings})} file(s)", file=sys.stderr)
        return 1
    print(f"sda-lint: clean ({len(files)} files)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
