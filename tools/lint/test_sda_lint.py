#!/usr/bin/env python3
"""Selftest for sda_lint: every rule gets a bad/good fixture pair.

Each bad fixture must produce exactly the expected number of findings for
its rule; each good fixture must produce zero (including via suppression
comments, which the good fixtures exercise).  Run from anywhere:

    python3 tools/lint/test_sda_lint.py
"""

import contextlib
import io
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, HERE)

import sda_lint  # noqa: E402

FIXTURES = os.path.join(HERE, "fixtures")

# (fixture file, rule, expected finding count)
CASES = [
    ("rng_source_bad.cpp", "RNG_SOURCE", 6),
    ("rng_source_good.cpp", "RNG_SOURCE", 0),
    ("std_function_bad.cpp", "STD_FUNCTION", 2),
    ("std_function_good.cpp", "STD_FUNCTION", 0),
    ("naked_new_bad.cpp", "NAKED_NEW", 3),
    ("naked_new_good.cpp", "NAKED_NEW", 0),
    ("float_eq_bad.cpp", "FLOAT_EQ", 4),
    ("float_eq_good.cpp", "FLOAT_EQ", 0),
    ("endl_bad.cpp", "ENDL", 3),
    ("endl_good.cpp", "ENDL", 0),
    ("pragma_once_bad.hpp", "PRAGMA_ONCE", 1),
    ("pragma_once_good.hpp", "PRAGMA_ONCE", 0),
    ("unordered_iter_bad.cpp", "UNORDERED_ITER", 2),
    ("unordered_iter_good.cpp", "UNORDERED_ITER", 0),
    ("assert_side_effect_bad.cpp", "ASSERT_SIDE_EFFECT", 3),
    ("assert_side_effect_good.cpp", "ASSERT_SIDE_EFFECT", 0),
    ("unbounded_queue_bad.cpp", "UNBOUNDED_QUEUE", 3),
    ("unbounded_queue_good.cpp", "UNBOUNDED_QUEUE", 0),
    ("unchecked_io_bad.cpp", "UNCHECKED_IO", 4),
    ("unchecked_io_good.cpp", "UNCHECKED_IO", 0),
]


def run_case(fixture, rule):
    """Runs the linter on one fixture with one rule; returns finding lines."""
    path = os.path.join(FIXTURES, fixture)
    out = io.StringIO()
    err = io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        code = sda_lint.main([path, "--root", HERE, "--rules", rule])
    lines = [l for l in out.getvalue().splitlines() if l.strip()]
    return code, lines


def main():
    failures = []
    for fixture, rule, expected in CASES:
        path = os.path.join(FIXTURES, fixture)
        if not os.path.isfile(path):
            failures.append(f"{fixture}: fixture file missing")
            continue
        code, lines = run_case(fixture, rule)
        wrong_rule = [l for l in lines if f" {rule} " not in l]
        if wrong_rule:
            failures.append(
                f"{fixture}: off-rule findings under --rules={rule}: "
                f"{wrong_rule}")
        if len(lines) != expected:
            failures.append(
                f"{fixture}: expected {expected} {rule} finding(s), "
                f"got {len(lines)}:\n  " + "\n  ".join(lines or ["<none>"]))
        expect_exit = 1 if expected else 0
        if code != expect_exit:
            failures.append(
                f"{fixture}: expected exit {expect_exit}, got {code}")

    # The suppression syntax itself: a bad fixture should go quiet when its
    # findings carry allow() comments — proven by every *_good fixture that
    # contains a deliberately-bad-but-allowed line (rng, naked_new, float_eq,
    # endl, unordered_iter, assert).  Here, additionally prove an allow() for
    # the WRONG rule does not suppress.
    code, lines = run_case("std_function_bad.cpp", "STD_FUNCTION")
    if len(lines) != 2:
        failures.append("cross-rule allow() check: expected 2 findings, got "
                        f"{len(lines)}")

    if failures:
        for f in failures:
            print(f"FAIL {f}")
        print(f"test_sda_lint: {len(failures)} failure(s)")
        return 1
    print(f"test_sda_lint: all {len(CASES)} fixture cases passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
