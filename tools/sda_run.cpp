// sda_run — the unified experiment front door.
//
//   sda_run psp=gf ssp=eqf load=0.9 reps=4 --json out.jsonl --trace run.trace.json
//
// Takes the Table-1 baseline config, applies key=value overrides through
// the ExperimentConfig kv API (every public field is a key; --list-keys
// prints them), validates, runs the replications, and prints a per-class
// summary table.  Optional exporters:
//
//   --json <path|->   JSON lines: one "sda.run.v1" record per replication
//                     followed by one "sda.report.v1" aggregate record
//                     (schema documented in EXPERIMENTS.md).
//   --trace <path>    Chrome trace_event JSON of replication 0 — open it
//                     in https://ui.perfetto.dev (one track per node).
//
// A third mode turns the batch tool into a long-running admission
// service (EXPERIMENTS.md "Serve mode"):
//
//   sda_run --serve [--input <path>] [--listen <addr>] [--timing]
//           [--journal <path>] [key=value ...]
//
// reads newline-delimited `sub`/`done` lines from stdin (or a file/FIFO
// via --input, or TCP/unix clients via --listen), gates them through
// the feasibility-based admission controller configured by the
// admission_* keys, and emits one `sda.admit.v1` JSON-lines decision
// per submission.  With --journal the accepted lines are written ahead
// to an sda.journal.v1 file and replayed on restart (crash recovery);
// --recover-check replays a journal read-only and reports the
// reconstructed state fingerprint (sda.recover.v1).  A --listen server
// drains gracefully on SIGTERM/SIGINT: stops accepting, finishes
// buffered requests, checkpoints the journal, and prints the summary.
//
// Replications run sequentially through exp::run_once with the exact seed
// schedule of exp::run_experiment (replication_seed), so the determinism
// fingerprints printed here are byte-identical to the library path — with
// or without exporters attached, since exporting is strictly post-hoc.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "src/core/strategy.hpp"
#include "src/exp/config.hpp"
#include "src/exp/json_export.hpp"
#include "src/exp/net.hpp"
#include "src/exp/runner.hpp"
#include "src/exp/serve.hpp"
#include "src/metrics/json_writer.hpp"
#include "src/sim/timer_queue.hpp"
#include "src/metrics/percentile.hpp"
#include "src/metrics/report.hpp"
#include "src/metrics/task_class.hpp"
#include "src/metrics/trace_export.hpp"
#include "src/util/env.hpp"
#include "src/util/table.hpp"

namespace {

using namespace sda;

int usage(const char* argv0, int code) {
  std::fprintf(
      stderr,
      "usage: %s [key=value ...] [options]\n"
      "\n"
      "Runs one experiment (Table-1 baseline unless overridden) and prints\n"
      "per-class miss rates with 95%% CIs.\n"
      "\n"
      "  key=value          override a config field, e.g. psp=gf load=0.9\n"
      "                     (reps is shorthand for replications)\n"
      "  --json <path|->    write JSON-lines results (sda.run.v1 per\n"
      "                     replication + sda.report.v1 aggregate)\n"
      "  --trace <path>     write a Chrome/Perfetto trace of replication 0\n"
      "  --serve            admission-service mode: read sub/done lines\n"
      "                     from stdin, write sda.admit.v1 decisions\n"
      "  --input <path>     serve mode: read from a file or FIFO instead\n"
      "  --listen <addr>    serve mode: accept clients on host:port (port 0\n"
      "                     = ephemeral, reported in an sda.listen.v1 line)\n"
      "                     or unix:/path; SIGTERM drains gracefully\n"
      "  --journal <path>   serve mode: write-ahead sda.journal.v1 log of\n"
      "                     accepted lines; replayed on restart (recovery)\n"
      "  --journal-flush-every <n>  records per fsync batch (default 32)\n"
      "  --recover-check <path>     replay a journal read-only and print\n"
      "                     the reconstructed state (sda.recover.v1)\n"
      "  --decision-deadline-us <n> serve mode: decisions slower than this\n"
      "                     trip the overload machine into shedding\n"
      "  --retry-hints      serve mode: attach retry_after to shed and\n"
      "                     backpressure decisions\n"
      "  --timing           serve mode: measure per-decision latency and\n"
      "                     report P50/P90/P99 + admissions/sec (the\n"
      "                     summary bytes become nondeterministic)\n"
      "  --list-keys        print every config key with its current value\n"
      "  --list-strategies  print registered PSP and SSP strategies\n"
      "  --validate-only    check the config and exit (0 = valid)\n"
      "  -h, --help         this text\n",
      argv0);
  return code;
}

void print_summary(const exp::ExperimentConfig& config,
                   const metrics::Report& report,
                   const std::vector<std::uint64_t>& fingerprints,
                   const std::vector<exp::RunResult>& results,
                   const metrics::Collector* merged) {
  std::printf("%s\n", config.describe().c_str());
  std::printf("replications: %zu  sim_time: %g  seed: %llu\n\n",
              report.replications(), config.sim_time,
              static_cast<unsigned long long>(config.seed));

  util::Table table({"class", "finished", "MD", "missed work"});
  for (const int cls : report.classes()) {
    const metrics::ClassSummary s = report.summary(cls);
    table.add_row({metrics::default_class_name(cls),
                   std::to_string(s.finished_total),
                   util::fmt_pct_ci(s.miss_rate.mean, s.miss_rate.half_width),
                   util::fmt_pct_ci(s.missed_work_rate.mean,
                                    s.missed_work_rate.half_width)});
  }
  std::printf("%s\n", table.render().c_str());

  const auto mw = report.overall_missed_work();
  std::printf("overall missed work: %s\n",
              util::fmt_pct_ci(mw.mean, mw.half_width).c_str());

  if (!results.empty()) {
    double busy = 0.0, total = 0.0;
    std::size_t high_water = 0;
    for (const auto& pc : results.front().node_counters) {
      busy += pc.busy_time;
      total += pc.busy_time + pc.idle_time;
      if (pc.queue_high_water > high_water) high_water = pc.queue_high_water;
    }
    std::printf("rep 0: utilization %.3f, queue high-water %zu, "
                "%llu events\n",
                total > 0.0 ? busy / total : 0.0, high_water,
                static_cast<unsigned long long>(results.front().events_fired));
    if (results.front().admission_enabled) {
      const core::AdmissionStats& a = results.front().admission;
      const core::PlanCache::Stats& pc = results.front().plan_cache;
      std::printf(
          "rep 0 admission: %llu admitted (+%llu degraded), %llu rejected, "
          "%llu shed, final state %s\n"
          "rep 0 plan cache: %llu hits / %llu misses / %llu evictions\n",
          static_cast<unsigned long long>(a.admitted),
          static_cast<unsigned long long>(a.admitted_degraded),
          static_cast<unsigned long long>(a.rejected),
          static_cast<unsigned long long>(a.shed),
          core::to_string(results.front().admission_final_state),
          static_cast<unsigned long long>(pc.hits),
          static_cast<unsigned long long>(pc.misses),
          static_cast<unsigned long long>(pc.evictions));
    }
  }

  if (merged != nullptr) {
    std::printf("\ntardiness quantiles (all replications merged):\n");
    util::Table dist({"class", "count", "p50", "p90", "p99", "p99.9"});
    for (const int cls : merged->distribution_classes()) {
      const metrics::DistributionSet* d = merged->class_distributions(cls);
      if (d == nullptr) continue;
      const metrics::Quantiles q = metrics::summarize(d->tardiness);
      dist.add_row({metrics::default_class_name(cls), std::to_string(q.count),
                    util::fmt(q.p50, 3), util::fmt(q.p90, 3),
                    util::fmt(q.p99, 3), util::fmt(q.p999, 3)});
    }
    std::printf("%s\n", dist.render().c_str());
  }

  std::printf("\nfingerprints:");
  for (const std::uint64_t fp : fingerprints) {
    std::printf(" %016llx", static_cast<unsigned long long>(fp));
  }
  std::printf("\n");
}

// The running --listen server, for the signal handlers.  request_stop
// is async-signal-safe (one write to the self-pipe).
exp::net::ServeServer* g_server = nullptr;

extern "C" void handle_drain_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
}

/// --recover-check: replay @p path read-only and print what the journal
/// reconstructs.  Exit code 0 when the journal was readable.
int recover_check(const std::string& path, exp::ServeOptions opts) {
  const exp::JournalReadResult raw = exp::read_journal(path);
  opts.journal_path = path;
  opts.journal_replay_only = true;
  exp::ServeSession session(opts);
  std::string diag;
  if (!session.open_journal(&diag)) {
    std::fprintf(stderr, "%s\n", diag.c_str());
    return 66;
  }
  char fp_hex[17];
  std::snprintf(fp_hex, sizeof fp_hex, "%016llx",
                static_cast<unsigned long long>(session.state_fingerprint()));
  metrics::JsonWriter w(std::cout);
  w.begin_object()
      .kv("schema", "sda.recover.v1")
      .kv("journal", path)
      .kv("ok", raw.ok)
      .kv("replayed", session.result().replayed)
      .kv("truncated", session.replay_truncated());
  if (!session.replay_diagnostic().empty()) {
    w.kv("diagnostic", session.replay_diagnostic());
  } else if (!raw.ok) {
    w.kv("diagnostic", raw.diagnostic);
  }
  w.kv("fingerprint", fp_hex)
      .kv("state", core::to_string(session.controller().state()))
      .kv("pressure", session.controller().pressure())
      .kv("queue_depth",
          static_cast<std::uint64_t>(session.controller().queue_depth()))
      .kv("ledger",
          static_cast<std::uint64_t>(session.controller().ledger_size()))
      .end_object();
  std::cout << "\n";
  return raw.ok ? 0 : 66;
}

/// --listen: run the socket front door until a drain signal arrives.
int serve_listen(const std::string& listen_arg, const exp::ServeOptions& opts) {
  exp::net::ServerOptions server_opts;
  std::string error;
  if (!exp::net::parse_listen_spec(listen_arg, &server_opts.listen, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 64;
  }
  server_opts.max_line_bytes = opts.limits.max_line_bytes;
  exp::ServeSession session(opts);
  if (!session.open_journal(&error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 66;
  }
  exp::net::ServeServer server(session, server_opts);
  if (!server.start(&error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 66;
  }
  g_server = &server;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = handle_drain_signal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
  // Dead clients surface as EPIPE on write, not a fatal signal.
  signal(SIGPIPE, SIG_IGN);

  std::cout << server.banner() << "\n";
  std::cout.flush();
  const int rc = server.run(std::cout);
  g_server = nullptr;
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  util::warn_unknown_sda_env();
  exp::ExperimentConfig config = exp::baseline_config();

  std::string json_path;
  std::string trace_path;
  std::string input_path;
  std::string listen_arg;
  std::string journal_path;
  std::string recover_path;
  std::size_t journal_flush_every = 32;
  std::uint64_t decision_deadline_us = 0;
  bool retry_hints = false;
  bool list_keys = false;
  bool list_strategies = false;
  bool validate_only = false;
  bool serve = false;
  bool timing = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto flag_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs an argument\n", flag);
        std::exit(64);
      }
      return argv[++i];
    };
    if (arg == "-h" || arg == "--help") {
      return usage(argv[0], 0);
    } else if (arg == "--json") {
      json_path = flag_value("--json");
    } else if (arg == "--trace") {
      trace_path = flag_value("--trace");
    } else if (arg == "--serve") {
      serve = true;
    } else if (arg == "--input") {
      input_path = flag_value("--input");
    } else if (arg == "--listen") {
      listen_arg = flag_value("--listen");
      serve = true;  // --listen implies serve mode
    } else if (arg == "--journal") {
      journal_path = flag_value("--journal");
    } else if (arg == "--journal-flush-every") {
      journal_flush_every =
          static_cast<std::size_t>(std::strtoull(
              flag_value("--journal-flush-every"), nullptr, 10));
      if (journal_flush_every == 0) journal_flush_every = 1;
    } else if (arg == "--recover-check") {
      recover_path = flag_value("--recover-check");
    } else if (arg == "--decision-deadline-us") {
      decision_deadline_us = std::strtoull(
          flag_value("--decision-deadline-us"), nullptr, 10);
    } else if (arg == "--retry-hints") {
      retry_hints = true;
    } else if (arg == "--timing") {
      timing = true;
    } else if (arg == "--list-keys") {
      list_keys = true;
    } else if (arg == "--list-strategies") {
      list_strategies = true;
    } else if (arg == "--validate-only") {
      validate_only = true;
    } else {
      const std::size_t eq = arg.find('=');
      if (eq == std::string::npos || eq == 0) return usage(argv[0], 64);
      std::string key = arg.substr(0, eq);
      if (key == "reps") key = "replications";  // the CLI's one shorthand
      try {
        config.set(key, arg.substr(eq + 1));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 64;
      }
    }
  }

  if (list_keys) {
    for (const auto& [key, value] : config.to_kv()) {
      if (key == "timer_queue") {
        // Enumerate the registered backends so the legal values are
        // discoverable without reading code (user backends included).
        std::string names;
        for (const auto& n : sim::list_timer_queue_names()) {
          names += names.empty() ? "" : "|";
          names += n;
        }
        std::printf("%-24s %s (one of: %s)\n", key.c_str(), value.c_str(),
                    names.c_str());
        continue;
      }
      std::printf("%-24s %s\n", key.c_str(), value.c_str());
    }
    return 0;
  }
  if (list_strategies) {
    std::printf("PSP:");
    for (const auto& n : core::list_psp_strategies()) std::printf(" %s", n.c_str());
    std::printf("\nSSP:");
    for (const auto& n : core::list_ssp_strategies()) std::printf(" %s", n.c_str());
    std::printf("\n");
    return 0;
  }

  const std::vector<std::string> problems = config.validate();
  if (!problems.empty()) {
    std::fprintf(stderr, "invalid config:\n");
    for (const std::string& p : problems) {
      std::fprintf(stderr, "  - %s\n", p.c_str());
    }
    return 64;
  }
  if (validate_only) {
    std::printf("config valid\n");
    return 0;
  }

  if (serve || !recover_path.empty()) {
    exp::ServeOptions opts;
    try {
      opts.admission = config.admission_config();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 64;
    }
    opts.measure_latency = timing;
    opts.journal_path = journal_path;
    opts.journal_flush_every = journal_flush_every;
    opts.decision_deadline_ns = decision_deadline_us * 1000;
    opts.retry_hints = retry_hints;
    if (!recover_path.empty()) return recover_check(recover_path, opts);
    if (!listen_arg.empty()) return serve_listen(listen_arg, opts);
    std::ifstream input_file;
    std::istream* in = &std::cin;
    if (!input_path.empty()) {
      input_file.open(input_path);
      if (!input_file) {
        std::fprintf(stderr, "cannot open %s\n", input_path.c_str());
        return 66;
      }
      in = &input_file;
    }
    const exp::ServeResult r = exp::serve_stream(*in, std::cout, opts);
    return r.errors == 0 ? 0 : 65;
  }

  std::ofstream json_file;
  std::ostream* json_os = nullptr;
  if (!json_path.empty()) {
    if (json_path == "-") {
      json_os = &std::cout;
    } else {
      json_file.open(json_path);
      if (!json_file) {
        std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
        return 66;
      }
      json_os = &json_file;
    }
  }

  // Sequential replications with run_experiment's exact seed schedule:
  // fingerprints match the library path byte for byte.
  std::vector<exp::RunResult> results;
  std::vector<std::uint64_t> fingerprints;
  metrics::Report report;
  std::unique_ptr<metrics::Collector> merged;
  metrics::Tracer rep0_trace;  // unbounded: --trace needs the records
  try {
    for (int rep = 0; rep < config.replications; ++rep) {
      const std::uint64_t seed = exp::replication_seed(config.seed, rep);
      // Capacity 1 keeps memory flat when the records are not needed; the
      // fingerprint covers evicted events either way.
      metrics::Tracer small(1);
      metrics::Tracer* tracer =
          (rep == 0 && !trace_path.empty()) ? &rep0_trace : &small;
      results.push_back(exp::run_once(config, seed, tracer));
      fingerprints.push_back(tracer->fingerprint());
      report.add_replication(results.back().collector);
      if (json_os != nullptr) {
        exp::write_run_json_line(config, rep, seed, fingerprints.back(),
                                 results.back(), *json_os);
      }
      if (config.distributions) {
        if (merged == nullptr) {
          merged = std::make_unique<metrics::Collector>();
          merged->enable_distributions();
        }
        merged->merge_distributions(results.back().collector);
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "run failed: %s\n", e.what());
    return 70;
  }

  if (json_os != nullptr) {
    exp::write_report_json_line(config, report, fingerprints, merged.get(),
                                *json_os);
  }
  if (!trace_path.empty()) {
    try {
      metrics::write_chrome_trace_file(rep0_trace, config.k + config.link_count,
                                       trace_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 66;
    }
  }

  print_summary(config, report, fingerprints, results, merged.get());
  return 0;
}
