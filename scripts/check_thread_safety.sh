#!/usr/bin/env bash
# Thread-safety analysis gate: runs Clang's -Wthread-safety over the
# annotated tree and proves the seeded negative-compile fixtures fail.
#
#   1. tree pass      — every library/tool TU must be warning-clean under
#                       -Wthread-safety -Werror=thread-safety
#   2. positive control — tests/negative_compile/ts_clean.cpp must compile
#   3. seeded violations — every other tests/negative_compile/ts_*.cpp
#                       must FAIL with a thread-safety diagnostic
#
# The analysis needs Clang.  The wrapper macros expand to no-ops under
# GCC, so on a clang-less host there is nothing to check: the script
# exits 77 (the ctest SKIP_RETURN_CODE), keeping the gate honest —
# skipped, not silently green.  Point SDA_CLANGXX at a specific
# clang++ to override discovery.
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

find_clang() {
  if [ -n "${SDA_CLANGXX:-}" ]; then
    command -v "$SDA_CLANGXX" && return 0
    echo "SDA_CLANGXX='$SDA_CLANGXX' not found" >&2
    return 1
  fi
  local cand
  for cand in clang++ clang++-20 clang++-19 clang++-18 clang++-17 \
              clang++-16 clang++-15 clang++-14; do
    command -v "$cand" && return 0
  done
  return 1
}

CLANGXX="$(find_clang)" || {
  echo "check_thread_safety: no clang++ found — skipping (annotations are"
  echo "no-ops off Clang; install clang or set SDA_CLANGXX to enable)."
  exit 77
}
echo "== thread-safety analysis with $CLANGXX =="

TSFLAGS=(-std=c++20 -fsyntax-only -I"$ROOT" -Wthread-safety
         -Werror=thread-safety)
fail=0

echo "-- tree pass (src/ + tools/sda_run.cpp)"
while IFS= read -r tu; do
  if ! "$CLANGXX" "${TSFLAGS[@]}" "$tu" 2>/tmp/sda_ts_err.$$; then
    echo "FAIL (should be clean): $tu"
    cat /tmp/sda_ts_err.$$
    fail=1
  fi
done < <(find src tools -name '*.cpp' -not -path 'tools/lint/*' | sort)

echo "-- negative-compile fixtures"
for fixture in tests/negative_compile/ts_*.cpp; do
  base="$(basename "$fixture")"
  if [ "$base" = "ts_clean.cpp" ]; then
    if "$CLANGXX" "${TSFLAGS[@]}" "$fixture" 2>/tmp/sda_ts_err.$$; then
      echo "ok   (clean control compiles): $base"
    else
      echo "FAIL (positive control rejected): $base"
      cat /tmp/sda_ts_err.$$
      fail=1
    fi
    continue
  fi
  if "$CLANGXX" "${TSFLAGS[@]}" "$fixture" 2>/tmp/sda_ts_err.$$; then
    echo "FAIL (seeded violation compiled): $base"
    fail=1
  elif grep -q 'thread-safety' /tmp/sda_ts_err.$$; then
    echo "ok   (rejected by the analysis): $base"
  else
    echo "FAIL (rejected, but not by -Wthread-safety): $base"
    cat /tmp/sda_ts_err.$$
    fail=1
  fi
done
rm -f /tmp/sda_ts_err.$$

if [ "$fail" -ne 0 ]; then
  echo "check_thread_safety: FAILED"
  exit 1
fi
echo "check_thread_safety: OK"
