#!/usr/bin/env bash
# Builds the asan-ubsan preset and runs the whole test suite under
# AddressSanitizer + UndefinedBehaviorSanitizer.  CI-friendly: exits
# non-zero on any configure/build/test failure, and sanitizer findings are
# fatal (-fno-sanitize-recover=all).
#
# Usage: scripts/check_sanitizers.sh [extra ctest args...]
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$(nproc)"

# halt_on_error keeps the first finding from being drowned out; the
# detect_leaks toggle stays on where LeakSanitizer is available.
export ASAN_OPTIONS="halt_on_error=1:strict_string_checks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

ctest --preset asan-ubsan "$@"
echo "sanitizer suite passed"
