#!/usr/bin/env bash
# Builds the asan-ubsan preset and runs the whole test suite under
# AddressSanitizer + UndefinedBehaviorSanitizer, then builds the tsan
# preset and runs the concurrency-sensitive tests (thread pool, parallel
# run_experiment/sweep determinism) under ThreadSanitizer.  CI-friendly:
# exits non-zero on any configure/build/test failure, and sanitizer
# findings are fatal (-fno-sanitize-recover=all / TSan default).
#
# Usage: scripts/check_sanitizers.sh [extra ctest args...]
set -euo pipefail

cd "$(dirname "$0")/.."

# Static layer first: cheapest gate, no build required.
scripts/check_static.sh build-asan

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$(nproc)"

# halt_on_error keeps the first finding from being drowned out; the
# detect_leaks toggle stays on where LeakSanitizer is available.
export ASAN_OPTIONS="halt_on_error=1:strict_string_checks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

ctest --preset asan-ubsan "$@"

# Same binaries, run-time invariant oracle armed: SDA assignment
# containment/monotonicity plus event-queue/ready-heap self-checks, all
# under ASan/UBSan at once.
SDA_VALIDATE=1 ctest --preset asan-ubsan "$@"

# --- ThreadSanitizer pass: pool + determinism tests -----------------------
# ASan and TSan cannot share a build, so the tsan preset gets its own
# binary dir.  The test preset filters to the tests that exercise
# cross-thread execution; running the whole suite under TSan would only
# re-run single-threaded code at 10x slowdown.
cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)"

export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
ctest --preset tsan "$@"

echo "sanitizer suite passed"
