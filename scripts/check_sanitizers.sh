#!/usr/bin/env bash
# Builds the asan-ubsan preset and runs the whole test suite under
# AddressSanitizer + UndefinedBehaviorSanitizer, then builds the tsan
# preset and runs the concurrency-sensitive tests (thread pool, parallel
# run_experiment/sweep determinism) under ThreadSanitizer.  CI-friendly:
# exits non-zero on any configure/build/test failure, and sanitizer
# findings are fatal (-fno-sanitize-recover=all / TSan default).
#
# Usage: scripts/check_sanitizers.sh [extra ctest args...]
set -euo pipefail

cd "$(dirname "$0")/.."

# Static layer first: cheapest gate, no build required.
scripts/check_static.sh build-asan

# Compile-time race analysis before the run-time one: when clang++ is
# present, -Wthread-safety vets the lock annotations the TSan pass below
# then checks dynamically; rc 77 = no clang on this host, skip.
rc=0; scripts/check_thread_safety.sh || rc=$?
if [[ "$rc" -ne 0 && "$rc" -ne 77 ]]; then
  exit "$rc"
fi

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$(nproc)"

# halt_on_error keeps the first finding from being drowned out; the
# detect_leaks toggle stays on where LeakSanitizer is available.
export ASAN_OPTIONS="halt_on_error=1:strict_string_checks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

ctest --preset asan-ubsan "$@"

# Same binaries, run-time invariant oracle armed: SDA assignment
# containment/monotonicity plus event-queue/ready-heap self-checks, all
# under ASan/UBSan at once.
SDA_VALIDATE=1 ctest --preset asan-ubsan "$@"

# --- admission-control overload soak under ASan ---------------------------
# The overload paths churn ledgers, the plan cache's LRU list, the retry
# queue, and retry-timer cancellation — exactly the object lifetimes ASan
# is for.  Two legs: a sustained 3x bursty overload through the simulator
# gate, and a serve-mode stream that thrashes queue/pump/flush.
echo "== admission overload soak (asan) =="
ASAN_BUILD=build-asan
"$ASAN_BUILD/tools/sda_run" admission=1 load=3.0 frac_local=0 \
  preemptive=1 global_burst_factor=4 global_burst_cycle=40 \
  admission_plan_cache_capacity=8 sim_time=20000 reps=2 > /dev/null

SOAK_INPUT=$(mktemp /tmp/sda_soak.XXXXXX)
trap 'rm -f "$SOAK_INPUT"' EXIT
python3 - "$SOAK_INPUT" <<'PY'
import sys
with open(sys.argv[1], "w") as f:
    for i in range(1, 2001):
        at = 0.05 * i  # far above capacity: constant queue churn
        f.write(f"sub id={i} at={at:.2f} deadline=3 "
                f"tree=[A@{i % 4}:0.8/0.8 || B@{(i + 1) % 4}:0.9/0.9]\n")
        if i % 5 == 0:
            f.write(f"done id={i - 4}\n")
PY
# Most runs in this stream get shed, so the `done` lines frequently
# target already-retired ids: each is answered with sda.error.v1 and
# the run exits 65 (answered errors) by contract — that, not 0, is the
# passing exit code here.  Anything else (ASan abort, validate trip,
# crash) still fails the gate.
rc=0
SDA_VALIDATE=1 "$ASAN_BUILD/tools/sda_run" --serve --input "$SOAK_INPUT" \
  admission_tests=util,ct,sp k=4 > /dev/null || rc=$?
if [[ "$rc" != 65 && "$rc" != 0 ]]; then
  echo "FAIL: serve soak exit $rc (expected 0 or 65)" >&2
  exit 1
fi
echo "admission overload soak passed"

# --- ThreadSanitizer pass: pool + determinism tests -----------------------
# ASan and TSan cannot share a build, so the tsan preset gets its own
# binary dir.  The test preset filters to the tests that exercise
# cross-thread execution (test_thread_pool, test_runner, test_net, and
# test_pdes — the sharded time-window fabric, whose barrier/outbox
# protocol is exactly what TSan exists to vet); running the whole suite
# under TSan would only re-run single-threaded code at 10x slowdown.
cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)"

export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
ctest --preset tsan "$@"

echo "sanitizer suite passed"
