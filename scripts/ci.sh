#!/usr/bin/env bash
# The one-command CI gate: configure + build, unit tests, static analysis,
# and an sda_run end-to-end smoke whose JSON-lines output is schema-checked.
#
# Usage: scripts/ci.sh [build-dir]          (default: build)
#
# Stages (all must pass; the script stops at the first failure):
#   1. cmake configure + build (warnings on, full target set)
#   2. ctest — unit tests, sda-lint, and the SDA_VALIDATE oracle re-runs
#   3. scripts/check_static.sh — sda-lint + sda-analyze semantic pass,
#      their fixture selftests, the suppression audit, and clang-tidy
#      (when installed)
#   4. scripts/check_thread_safety.sh — Clang -Wthread-safety over the
#      annotated tree plus the negative-compile fixtures; skips cleanly
#      on hosts without clang++ (the annotations are no-ops there)
#   5. sda_run smoke — Table-1 baseline at a short horizon with --json and
#      --trace, then: every JSON line parses, schemas are sda.run.v1 /
#      sda.report.v1, the trace declares one track per node, and the
#      fingerprints in the report match a second exporter-free run.
#   6. sharded PDES smoke — the same baseline run at shards=1 and
#      shards=4 must report identical replication fingerprints (the
#      conservative time-window fabric's bit-identity contract).
#   7. sda_run --serve smoke — a scripted submission stream through the
#      admission front door: every line parses as JSON, N submissions get
#      exactly N sda.admit.v1 decisions plus one summary, `done` lines for
#      already-retired ids get structured sda.error.v1 replies, and a
#      rerun is byte-identical (decision determinism).
#   8. socket front door — spawn `--serve --listen 127.0.0.1:0 --journal`,
#      submit over TCP, SIGTERM drain, then verify the drain summary's
#      journal fingerprint against an offline `--recover-check` replay;
#      finally a TSan build/run of the multi-client server test.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

echo "=== [1/8] configure + build ==="
cmake -B "$BUILD" -S . > /dev/null
cmake --build "$BUILD" -j "$(nproc)"

echo ""
echo "=== [2/8] ctest ==="
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"

echo ""
echo "=== [3/8] static analysis ==="
scripts/check_static.sh "$BUILD"

echo ""
echo "=== [4/8] thread-safety analysis ==="
rc=0; scripts/check_thread_safety.sh || rc=$?
if [ "$rc" -ne 0 ] && [ "$rc" -ne 77 ]; then
  exit "$rc"
fi

echo ""
echo "=== [5/8] sda_run smoke + schema check ==="
SMOKE_DIR=$(mktemp -d /tmp/sda_ci.XXXXXX)
trap 'rm -f "$SMOKE_DIR"/*; rmdir "$SMOKE_DIR"' EXIT

"$BUILD/tools/sda_run" sim_time=5000 reps=2 \
  --json "$SMOKE_DIR/out.jsonl" --trace "$SMOKE_DIR/run.trace.json" \
  > "$SMOKE_DIR/with_exporters.txt"
"$BUILD/tools/sda_run" sim_time=5000 reps=2 \
  > "$SMOKE_DIR/without_exporters.txt"

SMOKE_DIR="$SMOKE_DIR" python3 - <<'PY'
import json, os, re, sys

d = os.environ["SMOKE_DIR"]

# --- JSON lines: parse + schema --------------------------------------------
lines = [json.loads(l) for l in open(os.path.join(d, "out.jsonl"))]
schemas = [l["schema"] for l in lines]
assert schemas == ["sda.run.v1", "sda.run.v1", "sda.report.v1"], schemas
for run in lines[:2]:
    for key in ("rep", "seed", "fingerprint", "diag", "classes", "nodes"):
        assert key in run, f"sda.run.v1 missing '{key}'"
    assert run["fingerprint"].startswith("0x")
    assert len(run["nodes"]) == 6, "one perf-counter block per node"
report = lines[2]
for key in ("config", "classes", "overall_missed_work", "fingerprints"):
    assert key in report, f"sda.report.v1 missing '{key}'"
assert report["config"]["psp"] == "ud"
assert len(report["fingerprints"]) == 2

# --- Chrome trace: one track per node --------------------------------------
trace = json.load(open(os.path.join(d, "run.trace.json")))
tracks = [e["args"]["name"] for e in trace["traceEvents"]
          if e.get("ph") == "M" and e.get("name") == "thread_name"]
assert tracks == [f"node {i}" for i in range(6)] + ["global runs"], tracks

# --- determinism: exporters must not move the fingerprints -----------------
def fingerprints(path):
    text = open(os.path.join(d, path)).read()
    return re.search(r"fingerprints:(.*)", text).group(1).split()

with_exp, without_exp = (fingerprints("with_exporters.txt"),
                         fingerprints("without_exporters.txt"))
assert with_exp == without_exp, (with_exp, without_exp)
assert [hex(int(f, 16)) for f in with_exp] == \
       [r["fingerprint"] for r in lines[:2]], "JSON fingerprints diverge"

print("smoke ok: schemas valid, 6+1 trace tracks, fingerprints identical "
      "with and without exporters")
PY

echo ""
echo "=== [6/8] sharded PDES smoke: shards=4 fingerprint == shards=1 ==="
# The conservative time-window fabric (DESIGN.md 4c) must reproduce the
# serial engine bit for bit: same seeds, same trace fingerprints, at any
# shard count.  shards=1 is the untouched serial path; shards=4 runs the
# same replications across four worker threads.
"$BUILD/tools/sda_run" sim_time=5000 reps=2 shards=1 \
  > "$SMOKE_DIR/serial.txt"
"$BUILD/tools/sda_run" sim_time=5000 reps=2 shards=4 \
  > "$SMOKE_DIR/sharded.txt"
SERIAL_FP=$(grep -o "fingerprints:.*" "$SMOKE_DIR/serial.txt")
SHARDED_FP=$(grep -o "fingerprints:.*" "$SMOKE_DIR/sharded.txt")
if [[ -z "$SERIAL_FP" || "$SERIAL_FP" != "$SHARDED_FP" ]]; then
  echo "FAIL: sharded fingerprints diverge from serial" >&2
  echo "  shards=1: $SERIAL_FP" >&2
  echo "  shards=4: $SHARDED_FP" >&2
  exit 1
fi
echo "sharded smoke ok: shards=4 reproduces shards=1 ($SERIAL_FP)"

echo ""
echo "=== [7/8] sda_run --serve smoke + schema check ==="
N_SUBS=40
{
  echo "# ci serve smoke: repeated shapes, a burst, and completions"
  for i in $(seq 1 "$N_SUBS"); do
    at=$(python3 -c "print(0.5 * $i)")
    echo "sub id=$i at=$at deadline=6 tree=[A@$((i % 6)):1/1 || B@$(((i + 2) % 6)):2/2]"
    if (( i % 3 == 0 && i > 6 )); then
      echo "done id=$((i - 6))"
    fi
  done
} > "$SMOKE_DIR/serve_input.txt"

# The stream deliberately contains `done` lines for already-retired ids,
# so sda_run's EX_DATAERR-style contract (answered errors => exit 65)
# applies: anything other than 65 here is a real failure.
rc=0; "$BUILD/tools/sda_run" --serve --input "$SMOKE_DIR/serve_input.txt" \
  > "$SMOKE_DIR/serve_out.jsonl" || rc=$?
[ "$rc" -eq 65 ] || { echo "FAIL: serve exit $rc, expected 65 (answered errors)"; exit 1; }
rc=0; "$BUILD/tools/sda_run" --serve --input "$SMOKE_DIR/serve_input.txt" \
  > "$SMOKE_DIR/serve_out2.jsonl" || rc=$?
[ "$rc" -eq 65 ] || { echo "FAIL: serve rerun exit $rc, expected 65"; exit 1; }

SMOKE_DIR="$SMOKE_DIR" N_SUBS="$N_SUBS" python3 - <<'PY'
import json, os

d = os.environ["SMOKE_DIR"]
n_subs = int(os.environ["N_SUBS"])

lines = [json.loads(l) for l in open(os.path.join(d, "serve_out.jsonl"))]
decisions = [l for l in lines if l["schema"] == "sda.admit.v1"]
summaries = [l for l in lines if l["schema"] == "sda.serve.summary.v1"]
errors = [l for l in lines if l["schema"] == "sda.error.v1"]
assert len(lines) == len(decisions) + len(summaries) + len(errors), \
    "unknown schema in output"
assert len(summaries) == 1, f"expected 1 summary, got {len(summaries)}"
summary = summaries[0]

# One decision per submission, none lost, none invented.
assert summary["submissions"] == n_subs, summary
assert summary["decisions"] == n_subs, summary
assert len(decisions) == n_subs, len(decisions)
# The stream retires ids on a fixed lag, so some `done` lines target
# runs the controller already shed: each must be *answered* with a
# structured unknown-id error, and the summary must count them.
assert summary["errors"] == len(errors), summary
for err in errors:
    assert err["code"] == "unknown-id", err
    assert "id" in err and "reason" in err, err
assert sorted(dec["id"] for dec in decisions) == list(range(1, n_subs + 1))
for dec in decisions:
    for key in ("id", "at", "decision", "state", "reason", "pressure"):
        assert key in dec, f"sda.admit.v1 missing '{key}': {dec}"
    assert dec["decision"] in ("admit", "admit_degraded", "reject", "shed",
                               "backpressure"), dec
    if dec["decision"].startswith("admit"):
        assert dec.get("leaves"), "admitted decision without a plan"
resolved = (summary["admitted"] + summary["admitted_degraded"] +
            summary["rejected"] + summary["shed"] + summary["backpressure"])
assert resolved == n_subs, summary

# Byte-identical rerun: the decision stream is deterministic.
a = open(os.path.join(d, "serve_out.jsonl")).read()
b = open(os.path.join(d, "serve_out2.jsonl")).read()
assert a == b, "serve output differs between identical runs"

print(f"serve smoke ok: {n_subs} submissions -> {n_subs} decisions "
      f"({summary['admitted']} admitted, {summary['rejected']} rejected, "
      f"{summary['shed']} shed, {len(errors)} answered errors), "
      f"reruns byte-identical")
PY

echo ""
echo "=== [8/8] socket front door: TCP smoke, SIGTERM drain, replay check ==="
"$BUILD/tools/sda_run" --serve --listen 127.0.0.1:0 \
  --journal "$SMOKE_DIR/ci.wal" --journal-flush-every 1 \
  > "$SMOKE_DIR/socket_out.jsonl" &
SERVER_WAIT_PID=$!

# The banner (first stdout line) carries the ephemeral port and pid.
for _ in $(seq 1 100); do
  [ -s "$SMOKE_DIR/socket_out.jsonl" ] && break
  sleep 0.1
done
[ -s "$SMOKE_DIR/socket_out.jsonl" ] || {
  echo "FAIL: no sda.listen.v1 banner from the socket server"; exit 1;
}

SMOKE_DIR="$SMOKE_DIR" python3 - <<'PY'
import json, os, socket

d = os.environ["SMOKE_DIR"]
banner = json.loads(open(os.path.join(d, "socket_out.jsonl")).readline())
assert banner["schema"] == "sda.listen.v1", banner
assert banner["transport"] == "tcp", banner

# Submit over TCP: decisions come back on the submitting connection,
# and a done for an unknown id is answered, not dropped.  Late
# submissions park in the admission queue (no instant reply), so the
# dones below both retire capacity — pumping the parked ones out — and
# exercise the unknown-id error path; then we collect until every
# submission is decided.
conn = socket.create_connection((banner["host"], banner["port"]), timeout=10)
reader = conn.makefile("r")
for i in range(1, 9):
    conn.sendall(
        f"sub id={i} at={0.5 * i} deadline=6 "
        f"tree=[A@{i % 6}:1/1 || B@{(i + 2) % 6}:2/2]\n".encode())
conn.sendall(b"done id=1 at=5\n")
conn.sendall(b"done id=2 at=5.5\n")
conn.sendall(b"done id=4242 at=6\n")
decisions, errors = [], []
while len(decisions) < 8 or len(errors) < 1:
    msg = json.loads(reader.readline())
    if msg["schema"] == "sda.admit.v1":
        decisions.append(msg)
    else:
        assert msg["schema"] == "sda.error.v1", msg
        errors.append(msg)
assert sorted(d["id"] for d in decisions) == list(range(1, 9)), decisions
assert errors[0]["code"] == "unknown-id" and errors[0]["id"] == 4242, errors
conn.close()

# Hand the pid to the shell for the SIGTERM drain.
open(os.path.join(d, "server.pid"), "w").write(str(banner["pid"]))
print(f"socket smoke ok: 8 decisions + 1 answered error over "
      f"127.0.0.1:{banner['port']} ({banner['backend']})")
PY

kill -TERM "$(cat "$SMOKE_DIR/server.pid")"
wait "$SERVER_WAIT_PID"

"$BUILD/tools/sda_run" --recover-check "$SMOKE_DIR/ci.wal" \
  > "$SMOKE_DIR/recover.jsonl"

SMOKE_DIR="$SMOKE_DIR" python3 - <<'PY'
import json, os

d = os.environ["SMOKE_DIR"]
lines = [json.loads(l) for l in open(os.path.join(d, "socket_out.jsonl"))]
summary = [l for l in lines if l["schema"] == "sda.serve.summary.v1"]
assert len(summary) == 1, "SIGTERM drain must emit exactly one summary"
summary = summary[0]
assert summary["submissions"] == 8, summary
assert summary["net"]["accepted"] == 1, summary
assert summary["errors"] == 1, summary

recover = json.loads(open(os.path.join(d, "recover.jsonl")).readline())
assert recover["schema"] == "sda.recover.v1", recover
assert recover["ok"] and not recover["truncated"], recover
# The crash-safety contract in one line: offline replay of the journal
# reproduces the exact state fingerprint the drain summary published.
assert recover["fingerprint"] == summary["journal"]["fingerprint"], (
    recover["fingerprint"], summary["journal"]["fingerprint"])
print(f"drain + replay ok: journal fingerprint {recover['fingerprint']} "
      f"matches across {recover['replayed']} replayed records")
PY

echo ""
echo "--- TSan pass over the multi-client server ---"
cmake --preset tsan > /dev/null
cmake --build build-tsan --target test_net -j "$(nproc)"
ctest --test-dir build-tsan -R test_net --output-on-failure

echo ""
echo "CI gate passed."
