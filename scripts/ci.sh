#!/usr/bin/env bash
# The one-command CI gate: configure + build, unit tests, static analysis,
# and an sda_run end-to-end smoke whose JSON-lines output is schema-checked.
#
# Usage: scripts/ci.sh [build-dir]          (default: build)
#
# Stages (all must pass; the script stops at the first failure):
#   1. cmake configure + build (warnings on, full target set)
#   2. ctest — unit tests, sda-lint, and the SDA_VALIDATE oracle re-runs
#   3. scripts/check_static.sh — sda-lint selftest + clang-tidy (if found)
#   4. sda_run smoke — Table-1 baseline at a short horizon with --json and
#      --trace, then: every JSON line parses, schemas are sda.run.v1 /
#      sda.report.v1, the trace declares one track per node, and the
#      fingerprints in the report match a second exporter-free run.
#   5. sda_run --serve smoke — a scripted submission stream through the
#      admission front door: every line parses as JSON, N submissions get
#      exactly N sda.admit.v1 decisions plus one summary, zero protocol
#      errors, and a rerun is byte-identical (decision determinism).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

echo "=== [1/4] configure + build ==="
cmake -B "$BUILD" -S . > /dev/null
cmake --build "$BUILD" -j "$(nproc)"

echo ""
echo "=== [2/4] ctest ==="
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"

echo ""
echo "=== [3/4] static analysis ==="
scripts/check_static.sh "$BUILD"

echo ""
echo "=== [4/5] sda_run smoke + schema check ==="
SMOKE_DIR=$(mktemp -d /tmp/sda_ci.XXXXXX)
trap 'rm -f "$SMOKE_DIR"/*; rmdir "$SMOKE_DIR"' EXIT

"$BUILD/tools/sda_run" sim_time=5000 reps=2 \
  --json "$SMOKE_DIR/out.jsonl" --trace "$SMOKE_DIR/run.trace.json" \
  > "$SMOKE_DIR/with_exporters.txt"
"$BUILD/tools/sda_run" sim_time=5000 reps=2 \
  > "$SMOKE_DIR/without_exporters.txt"

SMOKE_DIR="$SMOKE_DIR" python3 - <<'PY'
import json, os, re, sys

d = os.environ["SMOKE_DIR"]

# --- JSON lines: parse + schema --------------------------------------------
lines = [json.loads(l) for l in open(os.path.join(d, "out.jsonl"))]
schemas = [l["schema"] for l in lines]
assert schemas == ["sda.run.v1", "sda.run.v1", "sda.report.v1"], schemas
for run in lines[:2]:
    for key in ("rep", "seed", "fingerprint", "diag", "classes", "nodes"):
        assert key in run, f"sda.run.v1 missing '{key}'"
    assert run["fingerprint"].startswith("0x")
    assert len(run["nodes"]) == 6, "one perf-counter block per node"
report = lines[2]
for key in ("config", "classes", "overall_missed_work", "fingerprints"):
    assert key in report, f"sda.report.v1 missing '{key}'"
assert report["config"]["psp"] == "ud"
assert len(report["fingerprints"]) == 2

# --- Chrome trace: one track per node --------------------------------------
trace = json.load(open(os.path.join(d, "run.trace.json")))
tracks = [e["args"]["name"] for e in trace["traceEvents"]
          if e.get("ph") == "M" and e.get("name") == "thread_name"]
assert tracks == [f"node {i}" for i in range(6)] + ["global runs"], tracks

# --- determinism: exporters must not move the fingerprints -----------------
def fingerprints(path):
    text = open(os.path.join(d, path)).read()
    return re.search(r"fingerprints:(.*)", text).group(1).split()

with_exp, without_exp = (fingerprints("with_exporters.txt"),
                         fingerprints("without_exporters.txt"))
assert with_exp == without_exp, (with_exp, without_exp)
assert [hex(int(f, 16)) for f in with_exp] == \
       [r["fingerprint"] for r in lines[:2]], "JSON fingerprints diverge"

print("smoke ok: schemas valid, 6+1 trace tracks, fingerprints identical "
      "with and without exporters")
PY

echo ""
echo "=== [5/5] sda_run --serve smoke + schema check ==="
N_SUBS=40
{
  echo "# ci serve smoke: repeated shapes, a burst, and completions"
  for i in $(seq 1 "$N_SUBS"); do
    at=$(python3 -c "print(0.5 * $i)")
    echo "sub id=$i at=$at deadline=6 tree=[A@$((i % 6)):1/1 || B@$(((i + 2) % 6)):2/2]"
    if (( i % 3 == 0 && i > 6 )); then
      echo "done id=$((i - 6))"
    fi
  done
} > "$SMOKE_DIR/serve_input.txt"

"$BUILD/tools/sda_run" --serve --input "$SMOKE_DIR/serve_input.txt" \
  > "$SMOKE_DIR/serve_out.jsonl"
"$BUILD/tools/sda_run" --serve --input "$SMOKE_DIR/serve_input.txt" \
  > "$SMOKE_DIR/serve_out2.jsonl"

SMOKE_DIR="$SMOKE_DIR" N_SUBS="$N_SUBS" python3 - <<'PY'
import json, os

d = os.environ["SMOKE_DIR"]
n_subs = int(os.environ["N_SUBS"])

lines = [json.loads(l) for l in open(os.path.join(d, "serve_out.jsonl"))]
decisions = [l for l in lines if l["schema"] == "sda.admit.v1"]
summaries = [l for l in lines if l["schema"] == "sda.serve.summary.v1"]
assert len(lines) == len(decisions) + len(summaries), "unknown schema in output"
assert len(summaries) == 1, f"expected 1 summary, got {len(summaries)}"
summary = summaries[0]

# One decision per submission, none lost, none invented, no errors.
assert summary["submissions"] == n_subs, summary
assert summary["decisions"] == n_subs, summary
assert len(decisions) == n_subs, len(decisions)
assert summary["errors"] == 0, summary
assert sorted(dec["id"] for dec in decisions) == list(range(1, n_subs + 1))
for dec in decisions:
    for key in ("id", "at", "decision", "state", "reason", "pressure"):
        assert key in dec, f"sda.admit.v1 missing '{key}': {dec}"
    assert dec["decision"] in ("admit", "admit_degraded", "reject", "shed",
                               "backpressure"), dec
    if dec["decision"].startswith("admit"):
        assert dec.get("leaves"), "admitted decision without a plan"
resolved = (summary["admitted"] + summary["admitted_degraded"] +
            summary["rejected"] + summary["shed"] + summary["backpressure"])
assert resolved == n_subs, summary

# Byte-identical rerun: the decision stream is deterministic.
a = open(os.path.join(d, "serve_out.jsonl")).read()
b = open(os.path.join(d, "serve_out2.jsonl")).read()
assert a == b, "serve output differs between identical runs"

print(f"serve smoke ok: {n_subs} submissions -> {n_subs} decisions "
      f"({summary['admitted']} admitted, {summary['rejected']} rejected, "
      f"{summary['shed']} shed), reruns byte-identical")
PY

echo ""
echo "CI gate passed."
