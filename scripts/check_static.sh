#!/usr/bin/env bash
# Static-analysis gate: sda-lint always, clang-tidy when available.
#
# Usage: scripts/check_static.sh [build-dir]
#
#   build-dir   directory holding compile_commands.json for clang-tidy
#               (default: build).  The lint layer needs no build at all.
#
# Exit status is non-zero when either layer reports findings, so CI and
# scripts/check_sanitizers.sh can gate on it.
set -u
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
status=0

echo "=== sda-lint (tools/lint/sda_lint.py) ==="
if ! python3 tools/lint/sda_lint.py; then
  status=1
fi

echo ""
echo "=== sda-lint selftest ==="
if ! python3 tools/lint/test_sda_lint.py; then
  status=1
fi

echo ""
echo "=== clang-tidy ==="
if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "clang-tidy not installed; skipping (sda-lint already ran)"
elif [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
  echo "no ${BUILD_DIR}/compile_commands.json; configure with" \
       "CMAKE_EXPORT_COMPILE_COMMANDS=ON first — skipping clang-tidy"
else
  # Library sources only: tests/benches inherit the same headers, and
  # keeping the run to src/ keeps it fast enough for pre-commit use.
  mapfile -t tidy_files < <(find src -name '*.cpp' | sort)
  if ! clang-tidy -p "${BUILD_DIR}" --quiet "${tidy_files[@]}"; then
    status=1
  fi
fi

if [ "$status" -eq 0 ]; then
  echo ""
  echo "check_static: clean"
else
  echo ""
  echo "check_static: FINDINGS (see above)"
fi
exit "$status"
