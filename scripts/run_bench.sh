#!/usr/bin/env bash
# Performance snapshot: runs the micro_core google-benchmark suite plus a
# timed `reproduce_all --quick` scorecard and merges both into
# BENCH_core.json at the repo root.  Commit the refreshed JSON alongside
# any change that claims a speedup (and keep the pre-change file as
# BENCH_core.before.json) so reviewers can diff items/sec directly.
#
# Usage: scripts/run_bench.sh [--check] [output.json]   (default: BENCH_core.json)
#
#   --check   overhead guard: before overwriting the output file, compare
#             the fresh BM_EventQueuePushPop / BM_ProcessManagerSubmitDrain
#             / BM_WholeReplication numbers against the committed baseline
#             and fail when items/sec regressed by more than
#             SDA_BENCH_TOLERANCE (default 2%).
#             Also a correctness gate: fails when the quick scorecard has
#             more failed checks than the committed baseline records, so
#             a reproduction regression cannot hide behind a green build.
#             Used by CI to catch telemetry that leaks into the hot paths
#             (counters must stay passive O(1) increments).
#             Also enforces an absolute submit-drain throughput floor
#             (ROADMAP item 4): BM_ProcessManagerSubmitDrain must sustain
#             at least SDA_SUBMIT_DRAIN_MIN items/s (default 600000 —
#             far above the pre-arena ~430K so the raw-speed pass cannot
#             silently regress, with headroom for slower CI hosts).
#
# Env: SDA_THREADS caps pool parallelism for the quick scorecard;
#      SDA_SIM_TIME/SDA_REPS override the quick run length as usual;
#      SDA_BENCH_TOLERANCE sets the --check regression threshold (percent);
#      SDA_SUBMIT_DRAIN_MIN sets the submit-drain items/s floor.
set -euo pipefail

cd "$(dirname "$0")/.."
CHECK=0
if [[ "${1:-}" == "--check" ]]; then
  CHECK=1
  shift
fi
OUT="${1:-BENCH_core.json}"
BUILD=build

if ! cmake --preset default > /tmp/sda_bench_configure.log 2>&1; then
  cat /tmp/sda_bench_configure.log >&2
  echo "" >&2
  echo "ERROR: cmake configure failed." >&2
  if grep -qi "benchmark" /tmp/sda_bench_configure.log; then
    echo "ERROR: google-benchmark was not found. micro_core requires it" >&2
    echo "       (find_package(benchmark REQUIRED) in CMakeLists.txt)." >&2
    echo "       Install libbenchmark-dev or point CMAKE_PREFIX_PATH at a" >&2
    echo "       benchmark install; this script will not silently skip the" >&2
    echo "       microbenchmarks." >&2
  fi
  exit 1
fi

cmake --build "$BUILD" -j "$(nproc)" --target micro_core reproduce_all

if [[ ! -x "$BUILD/bench/micro_core" ]]; then
  echo "ERROR: $BUILD/bench/micro_core was not built — google-benchmark" >&2
  echo "       is missing or the bench/ subdirectory failed to configure." >&2
  exit 1
fi

MICRO_JSON=$(mktemp /tmp/sda_micro.XXXXXX.json)
trap 'rm -f "$MICRO_JSON"' EXIT

echo "== micro_core =="
"$BUILD/bench/micro_core" \
  --benchmark_format=console \
  --benchmark_out_format=json \
  --benchmark_out="$MICRO_JSON"

echo "== reproduce_all --quick (timed) =="
START_NS=$(date +%s%N)
set +e
"$BUILD/bench/reproduce_all" --quick > /tmp/sda_quick.log 2>&1
QUICK_FAILURES=$?
set -e
END_NS=$(date +%s%N)
QUICK_MS=$(( (END_NS - START_NS) / 1000000 ))
tail -5 /tmp/sda_quick.log
echo "quick scorecard: ${QUICK_MS} ms wall, ${QUICK_FAILURES} failed checks"

if [[ "$CHECK" == 1 && -f "$OUT" ]]; then
  echo "== overhead guard (fresh vs $OUT) =="
  MICRO_JSON="$MICRO_JSON" BASELINE="$OUT" \
  TOLERANCE="${SDA_BENCH_TOLERANCE:-2}" \
  SUBMIT_DRAIN_MIN="${SDA_SUBMIT_DRAIN_MIN:-600000}" python3 - <<'PY'
import json, os, sys

with open(os.environ["MICRO_JSON"]) as f:
    fresh = {b["name"]: b for b in json.load(f).get("benchmarks", [])
             if b.get("run_type") != "aggregate"}
with open(os.environ["BASELINE"]) as f:
    base = json.load(f).get("micro_core", {})
tolerance = float(os.environ["TOLERANCE"]) / 100.0

# The hot paths telemetry must not slow down: the event queue's push/pop
# cycle, the process manager's submit/dispatch/drain cycle (the control
# lane is the sharded fabric's Amdahl bottleneck), and a whole end-to-end
# replication.
guarded = [n for n in base
           if n.startswith("BM_EventQueuePushPop")
           or n == "BM_ProcessManagerSubmitDrain"
           or n == "BM_WholeReplication"]
failed = False
for name in sorted(guarded):
    old = base[name].get("items_per_second")
    new = fresh.get(name, {}).get("items_per_second")
    if not old:  # WholeReplication reports time, not items/sec
        old = base[name].get("real_time_ns")
        new = fresh.get(name, {}).get("real_time")
        if not (old and new):
            continue
        ratio = new / old  # time: bigger is worse
        slower = ratio - 1.0
    else:
        if not new:
            print(f"  {name}: missing from fresh run", file=sys.stderr)
            failed = True
            continue
        slower = old / new - 1.0  # items/sec: smaller is worse
    verdict = "FAIL" if slower > tolerance else "ok"
    print(f"  {name}: {slower * 100:+.2f}% vs baseline [{verdict}]")
    if slower > tolerance:
        failed = True
if failed:
    print(f"overhead guard: regression beyond {tolerance * 100:.1f}% "
          "— rerun on a quiet machine or investigate", file=sys.stderr)
    sys.exit(1)
print("overhead guard: within tolerance")

# Absolute throughput floor on the PM control lane (ROADMAP item 4): the
# arena/SoA/backend raw-speed pass must not be silently reverted.
floor = float(os.environ["SUBMIT_DRAIN_MIN"])
sd = fresh.get("BM_ProcessManagerSubmitDrain", {}).get("items_per_second")
if sd is None:
    print("submit-drain gate: BM_ProcessManagerSubmitDrain missing",
          file=sys.stderr)
    sys.exit(1)
if sd < floor:
    print(f"submit-drain gate: {sd:,.0f} items/s is below the "
          f"{floor:,.0f} floor (SDA_SUBMIT_DRAIN_MIN)", file=sys.stderr)
    sys.exit(1)
print(f"submit-drain gate: {sd:,.0f} items/s (floor {floor:,.0f})")
PY

  echo "== scorecard regression gate (fresh vs $OUT) =="
  BASE_FAILED=$(OUT="$OUT" python3 -c 'import json, os
print(json.load(open(os.environ["OUT"])).get("reproduce_all_quick", {}).get("failed_checks", 0))')
  if (( QUICK_FAILURES > BASE_FAILED )); then
    echo "ERROR: quick scorecard regressed: ${QUICK_FAILURES} failed" >&2
    echo "       check(s) vs ${BASE_FAILED} in the committed baseline." >&2
    echo "       See /tmp/sda_quick.log for the failing claims." >&2
    exit 1
  fi
  echo "scorecard gate: ${QUICK_FAILURES} failed check(s) (baseline ${BASE_FAILED})"
fi

MICRO_JSON="$MICRO_JSON" QUICK_MS="$QUICK_MS" \
QUICK_FAILURES="$QUICK_FAILURES" OUT="$OUT" python3 - <<'PY'
import json, os, datetime

with open(os.environ["MICRO_JSON"]) as f:
    micro = json.load(f)

benchmarks = {}
for b in micro.get("benchmarks", []):
    if b.get("run_type") == "aggregate":
        continue
    entry = {"real_time_ns": b.get("real_time"),
             "cpu_time_ns": b.get("cpu_time")}
    if "items_per_second" in b:
        entry["items_per_second"] = b["items_per_second"]
    # Custom counters (state.counters[...]) surface as extra numeric
    # members — e.g. micro_core's assign_p99_ns; keep them all.
    standard = {
        "name", "family_index", "per_family_instance_index", "run_name",
        "run_type", "repetitions", "repetition_index", "threads",
        "iterations", "real_time", "cpu_time", "time_unit",
        "items_per_second", "bytes_per_second", "label", "aggregate_name",
    }
    for key, value in b.items():
        if key not in standard and isinstance(value, (int, float)):
            entry[key] = value
    benchmarks[b["name"]] = entry

ctx = micro.get("context", {})
out = {
    "generated": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
    "host": {
        "num_cpus": ctx.get("num_cpus"),
        "mhz_per_cpu": ctx.get("mhz_per_cpu"),
        "sda_threads_env": os.environ.get("SDA_THREADS"),
    },
    "micro_core": benchmarks,
    "reproduce_all_quick": {
        "wall_ms": int(os.environ["QUICK_MS"]),
        "failed_checks": int(os.environ["QUICK_FAILURES"]),
    },
}
with open(os.environ["OUT"], "w") as f:
    json.dump(out, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {os.environ['OUT']}")
PY
