// Tests for service-time distributions, including M/G/1 Pollaczek-Khinchine
// validation of the queueing substrate under non-exponential service.
#include "src/workload/exec_dist.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/sched/node.hpp"
#include "src/sched/scheduler.hpp"
#include "src/sim/engine.hpp"
#include "src/util/stats.hpp"
#include "src/workload/local_source.hpp"

namespace {

using namespace sda;
using workload::ExecDistribution;
using workload::make_exec_distribution;

void check_moments(const ExecDistribution& d, std::uint64_t seed) {
  util::Rng rng(seed);
  util::RunningStat s;
  for (int i = 0; i < 200000; ++i) {
    const double x = d.sample(rng);
    ASSERT_GE(x, 0.0);
    s.add(x);
  }
  EXPECT_NEAR(s.mean(), d.mean(), 0.02 * std::max(1.0, d.mean())) << d.describe();
  const double measured_cv = s.mean() > 0 ? s.stddev() / s.mean() : 0.0;
  EXPECT_NEAR(measured_cv, d.cv(), 0.05 * std::max(1.0, d.cv())) << d.describe();
}

TEST(ExecDist, DeterministicMoments) {
  const auto d = ExecDistribution::deterministic(2.5);
  EXPECT_DOUBLE_EQ(d.mean(), 2.5);
  EXPECT_DOUBLE_EQ(d.cv(), 0.0);
  util::Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(d.sample(rng), 2.5);
}

TEST(ExecDist, UniformMoments) {
  const auto d = ExecDistribution::uniform(0.0, 2.0);
  EXPECT_DOUBLE_EQ(d.mean(), 1.0);
  EXPECT_NEAR(d.cv(), 1.0 / std::sqrt(3.0), 1e-12);
  check_moments(d, 2);
}

TEST(ExecDist, ExponentialMoments) {
  const auto d = ExecDistribution::exponential(1.5);
  EXPECT_DOUBLE_EQ(d.mean(), 1.5);
  EXPECT_DOUBLE_EQ(d.cv(), 1.0);
  check_moments(d, 3);
}

TEST(ExecDist, HyperexponentialMoments) {
  for (double cv : {1.5, 2.0, 4.0}) {
    const auto d = ExecDistribution::hyperexponential(1.0, cv);
    EXPECT_DOUBLE_EQ(d.mean(), 1.0);
    EXPECT_DOUBLE_EQ(d.cv(), cv);
    check_moments(d, 40 + static_cast<std::uint64_t>(cv * 10));
  }
}

TEST(ExecDist, Validation) {
  EXPECT_THROW(ExecDistribution::deterministic(-1.0), std::invalid_argument);
  EXPECT_THROW(ExecDistribution::uniform(2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(ExecDistribution::uniform(-0.1, 1.0), std::invalid_argument);
  EXPECT_THROW(ExecDistribution::exponential(0.0), std::invalid_argument);
  EXPECT_THROW(ExecDistribution::hyperexponential(1.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(ExecDistribution::hyperexponential(0.0, 2.0),
               std::invalid_argument);
}

TEST(ExecDist, Factory) {
  EXPECT_DOUBLE_EQ(make_exec_distribution("exponential", 2.0).cv(), 1.0);
  EXPECT_DOUBLE_EQ(make_exec_distribution("deterministic", 2.0).cv(), 0.0);
  EXPECT_DOUBLE_EQ(make_exec_distribution("uniform", 2.0).mean(), 2.0);
  EXPECT_DOUBLE_EQ(make_exec_distribution("hyperexp", 2.0, 3.0).cv(), 3.0);
  EXPECT_THROW(make_exec_distribution("pareto", 1.0), std::invalid_argument);
}

TEST(ExecDist, Describe) {
  EXPECT_NE(ExecDistribution::exponential(1.0).describe().find("exponential"),
            std::string::npos);
  EXPECT_NE(ExecDistribution::hyperexponential(1.0, 2.0).describe().find("H2"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// M/G/1 validation (FIFO): Pollaczek-Khinchine mean waiting time
//   Wq = rho (1 + CV^2) / (2 (mu - lambda)) ... for mean service 1/mu.
// ---------------------------------------------------------------------------

double measure_wq(const ExecDistribution& service, double lambda,
                  double horizon, std::uint64_t seed) {
  sim::Engine engine;
  sched::Node node(engine, sched::make_scheduler("fifo"), {});
  metrics::Collector collector;
  util::RunningStat wait;
  node.set_completion_handler([&](const task::TaskPtr& t) {
    wait.add(t->started_at - t->attrs.arrival);
  });
  workload::LocalSource::Config lc;
  lc.lambda = lambda;
  lc.exec = service;
  workload::LocalSource source(engine, node, collector, util::Rng(seed), lc);
  source.start();
  engine.run_until(horizon);
  return wait.mean();
}

TEST(ExecDist, PollaczekKhinchineMd1) {
  // M/D/1 at rho = 0.5: Wq = 0.5 * 1 / (2 * 0.5) = 0.5 — exactly half the
  // M/M/1 value.
  const double wq =
      measure_wq(ExecDistribution::deterministic(1.0), 0.5, 300000.0, 7);
  EXPECT_NEAR(wq, 0.5, 0.05);
}

TEST(ExecDist, PollaczekKhinchineMg1Hyperexp) {
  // M/H2/1 with CV = 2 at rho = 0.5: Wq = 0.5 * (1 + 4) / (2 * 0.5) = 2.5.
  const double wq = measure_wq(ExecDistribution::hyperexponential(1.0, 2.0),
                               0.5, 400000.0, 8);
  EXPECT_NEAR(wq, 2.5, 0.25);
}

TEST(ExecDist, PollaczekKhinchineUniform) {
  // M/U(0,2)/1 at rho = 0.5: CV^2 = 1/3, Wq = 0.5 * (4/3) / 1 = 2/3.
  const double wq =
      measure_wq(ExecDistribution::uniform(0.0, 2.0), 0.5, 300000.0, 9);
  EXPECT_NEAR(wq, 2.0 / 3.0, 0.07);
}

}  // namespace
