// Unit tests for the FIFO and SPT ablation schedulers and the factory.
#include <gtest/gtest.h>

#include <stdexcept>

#include "src/sched/fifo.hpp"
#include "src/sched/scheduler.hpp"
#include "src/sched/spt.hpp"
#include "src/task/task.hpp"

namespace {

using namespace sda;
using task::make_local_task;
using task::TaskPtr;

TEST(Fifo, ArrivalOrder) {
  sched::FifoScheduler q;
  q.push(make_local_task(1, 0, 0.0, 1.0, 100.0));
  q.push(make_local_task(2, 0, 0.0, 1.0, 1.0));  // earlier deadline, later pop
  q.push(make_local_task(3, 0, 0.0, 1.0, 50.0));
  EXPECT_EQ(q.pop()->id, 1u);
  EXPECT_EQ(q.pop()->id, 2u);
  EXPECT_EQ(q.pop()->id, 3u);
  EXPECT_EQ(q.pop(), nullptr);
}

TEST(Fifo, PeekAndRemove) {
  sched::FifoScheduler q;
  TaskPtr a = make_local_task(1, 0, 0.0, 1.0, 1.0);
  TaskPtr b = make_local_task(2, 0, 0.0, 1.0, 2.0);
  q.push(a);
  q.push(b);
  EXPECT_EQ(q.peek()->id, 1u);
  EXPECT_EQ(q.remove(*a).get(), a.get());
  EXPECT_EQ(q.peek()->id, 2u);
  EXPECT_EQ(q.remove(*a), nullptr);
  EXPECT_EQ(q.size(), 1u);
}

TEST(Spt, ShortestPredictedFirst) {
  sched::SptScheduler q;
  TaskPtr slow = make_local_task(1, 0, 0.0, 5.0, 100.0);
  TaskPtr fast = make_local_task(2, 0, 0.0, 0.5, 100.0);
  TaskPtr mid = make_local_task(3, 0, 0.0, 2.0, 100.0);
  q.push(slow);
  q.push(fast);
  q.push(mid);
  EXPECT_EQ(q.pop()->id, 2u);
  EXPECT_EQ(q.pop()->id, 3u);
  EXPECT_EQ(q.pop()->id, 1u);
}

TEST(Spt, TiesFifoAndRemove) {
  sched::SptScheduler q;
  TaskPtr a = make_local_task(1, 0, 0.0, 1.0, 10.0);
  TaskPtr b = make_local_task(2, 0, 0.0, 1.0, 20.0);
  q.push(a);
  q.push(b);
  EXPECT_EQ(q.peek()->id, 1u);
  EXPECT_EQ(q.remove(*a).get(), a.get());
  EXPECT_EQ(q.pop()->id, 2u);
}

TEST(Factory, KnownPolicies) {
  EXPECT_EQ(sched::make_scheduler("edf")->name(), "EDF");
  EXPECT_EQ(sched::make_scheduler("EDF")->name(), "EDF");
  EXPECT_EQ(sched::make_scheduler("fifo")->name(), "FIFO");
  EXPECT_EQ(sched::make_scheduler("spt")->name(), "SPT");
}

TEST(Factory, UnknownPolicyThrows) {
  EXPECT_THROW(sched::make_scheduler("lifo"), std::invalid_argument);
  EXPECT_THROW(sched::make_scheduler(""), std::invalid_argument);
}

}  // namespace
