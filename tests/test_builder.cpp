// Unit tests for the fluent task-tree builder.
#include "src/task/builder.hpp"

#include <gtest/gtest.h>

#include "src/task/notation.hpp"

namespace {

using namespace sda::task;

TEST(Builder, FlatSerial) {
  TreePtr t = serial().leaf(0, 1.0).leaf(1, 2.0).leaf(2, 3.0).build();
  ASSERT_TRUE(t->is_serial());
  EXPECT_EQ(leaf_count(*t), 3);
  EXPECT_DOUBLE_EQ(critical_path_ex(*t), 6.0);
}

TEST(Builder, FlatParallel) {
  TreePtr t = parallel().leaf(0, 1.0).leaf(1, 5.0).build();
  ASSERT_TRUE(t->is_parallel());
  EXPECT_DOUBLE_EQ(critical_path_ex(*t), 5.0);
}

TEST(Builder, NestedMatchesNotation) {
  // Reconstruct the paper's Figure 14 pipeline and compare with the
  // notation parser's version structurally.
  TreePtr built = serial()
                      .leaf(0, 1.0)
                      .parallel([](CompositeBuilder& p) {
                        for (int i = 1; i <= 4; ++i) p.leaf(i, 1.0);
                      })
                      .leaf(5, 1.0)
                      .parallel([](CompositeBuilder& p) {
                        for (int i = 0; i <= 3; ++i) p.leaf(i, 1.0);
                      })
                      .leaf(4, 1.0)
                      .build();
  EXPECT_EQ(leaf_count(*built), 11);
  EXPECT_EQ(built->children.size(), 5u);
  EXPECT_TRUE(built->children[1]->is_parallel());
  EXPECT_TRUE(validate(*built).empty());
}

TEST(Builder, SingleChildCollapses) {
  TreePtr t = serial().leaf(0, 2.0).build();
  EXPECT_TRUE(t->is_leaf());
}

TEST(Builder, SubtreeSplicing) {
  TreePtr inner = parse_notation("[A@0:1 || B@1:1]");
  TreePtr t = serial().leaf(2, 1.0).subtree(std::move(inner)).build();
  EXPECT_EQ(leaf_count(*t), 3);
  EXPECT_TRUE(t->children[1]->is_parallel());
  EXPECT_THROW(serial().subtree(nullptr), std::invalid_argument);
}

TEST(Builder, EmptyCompositeThrows) {
  EXPECT_THROW(serial().build(), std::invalid_argument);
  EXPECT_THROW(
      serial().leaf(0, 1.0).parallel([](CompositeBuilder&) {}).build(),
      std::invalid_argument);
}

TEST(Builder, ValidatesLeaves) {
  EXPECT_THROW(serial().leaf(-1, 1.0).leaf(0, 1.0).build(),
               std::invalid_argument);  // unbound node
  EXPECT_THROW(serial().leaf(0, -1.0).leaf(1, 1.0).build(),
               std::invalid_argument);  // negative demand
}

TEST(Builder, PexDefaultsAndNames) {
  TreePtr t = parallel().leaf(0, 2.0, -1.0, "alpha").leaf(1, 3.0, 2.5).build();
  EXPECT_DOUBLE_EQ(t->children[0]->pred_exec, 2.0);
  EXPECT_EQ(t->children[0]->name, "alpha");
  EXPECT_DOUBLE_EQ(t->children[1]->pred_exec, 2.5);
}

}  // namespace
