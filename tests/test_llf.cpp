// Unit tests for the least-laxity-first scheduler.
#include "src/sched/llf.hpp"

#include <gtest/gtest.h>

#include "src/sched/scheduler.hpp"
#include "src/task/task.hpp"

namespace {

using namespace sda;
using sched::LlfScheduler;
using task::TaskPtr;

TaskPtr with(std::uint64_t id, double dl, double pex) {
  TaskPtr t = task::make_local_task(id, 0, 0.0, pex, dl);
  t->attrs.pred_exec = pex;
  return t;
}

TEST(Llf, OrdersByDeadlineMinusDemand) {
  LlfScheduler llf;
  llf.push(with(1, 10.0, 1.0));  // laxity key 9
  llf.push(with(2, 10.0, 8.0));  // laxity key 2 — long task is urgent
  llf.push(with(3, 4.0, 1.0));   // laxity key 3
  EXPECT_EQ(llf.pop()->id, 2u);
  EXPECT_EQ(llf.pop()->id, 3u);
  EXPECT_EQ(llf.pop()->id, 1u);
  EXPECT_EQ(llf.pop(), nullptr);
}

TEST(Llf, DisagreesWithEdfWhenDemandDominates) {
  // EDF would serve id=1 first (earlier deadline); LLF serves id=2 (less
  // laxity) — the defining difference between the policies.
  LlfScheduler llf;
  llf.push(with(1, 5.0, 0.1));  // key 4.9
  llf.push(with(2, 6.0, 5.0));  // key 1.0
  EXPECT_EQ(llf.peek()->id, 2u);
}

TEST(Llf, TiesAreFifo) {
  LlfScheduler llf;
  for (std::uint64_t id = 1; id <= 4; ++id) llf.push(with(id, 10.0, 2.0));
  for (std::uint64_t id = 1; id <= 4; ++id) EXPECT_EQ(llf.pop()->id, id);
}

TEST(Llf, RemoveSpecific) {
  LlfScheduler llf;
  TaskPtr a = with(1, 10.0, 1.0);
  TaskPtr b = with(2, 10.0, 1.0);
  llf.push(a);
  llf.push(b);
  EXPECT_EQ(llf.remove(*a).get(), a.get());
  EXPECT_EQ(llf.remove(*a), nullptr);
  EXPECT_EQ(llf.size(), 1u);
  EXPECT_EQ(llf.pop()->id, 2u);
}

TEST(Llf, LaxityKeyHelper) {
  const TaskPtr t = with(9, 12.0, 3.0);
  EXPECT_DOUBLE_EQ(LlfScheduler::laxity_key(*t), 9.0);
}

TEST(Llf, FactorySupport) {
  EXPECT_EQ(sched::make_scheduler("llf")->name(), "LLF");
  EXPECT_EQ(sched::make_scheduler("LLF")->name(), "LLF");
}

}  // namespace
