// Unit tests for the ASCII chart renderer.
#include "src/util/ascii_chart.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using sda::util::AsciiChart;
using sda::util::Series;

TEST(AsciiChart, EmptyChart) {
  AsciiChart c;
  EXPECT_EQ(c.render(), "(no data)\n");
}

TEST(AsciiChart, MarkersAppear) {
  AsciiChart c(40, 10);
  c.add(Series{"rising", '*', {0, 1, 2}, {0.0, 0.5, 1.0}});
  const std::string out = c.render();
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("legend"), std::string::npos);
  EXPECT_NE(out.find("rising"), std::string::npos);
}

TEST(AsciiChart, LabelsAppear) {
  AsciiChart c(40, 10);
  c.set_labels("load", "missed fraction");
  c.add(Series{"s", 'o', {0, 1}, {0, 1}});
  const std::string out = c.render();
  EXPECT_NE(out.find("load"), std::string::npos);
  EXPECT_NE(out.find("missed fraction"), std::string::npos);
}

TEST(AsciiChart, NonFinitePointsSkipped) {
  AsciiChart c(40, 10);
  c.add(Series{"s", 'o', {0, 1, 2}, {0, std::nan(""), 1}});
  EXPECT_NO_THROW(c.render());
}

TEST(AsciiChart, FixedYRangeRespected) {
  AsciiChart c(40, 10);
  c.set_y_range(0.0, 1.0);
  c.add(Series{"s", 'o', {0, 1}, {0.2, 0.4}});
  const std::string out = c.render();
  EXPECT_NE(out.find("1"), std::string::npos);   // y_hi label
  EXPECT_NE(out.find("0"), std::string::npos);   // y_lo label
}

TEST(AsciiChart, ConstantSeriesDoesNotDivideByZero) {
  AsciiChart c(40, 10);
  c.add(Series{"flat", 'f', {0, 1, 2}, {0.5, 0.5, 0.5}});
  EXPECT_NO_THROW(c.render());
}

TEST(AsciiChart, SinglePointSeries) {
  AsciiChart c(40, 10);
  c.add(Series{"dot", 'd', {3}, {0.7}});
  const std::string out = c.render();
  EXPECT_NE(out.find('d'), std::string::npos);
}

TEST(AsciiChart, MultipleSeriesInLegend) {
  AsciiChart c(40, 10);
  c.add(Series{"one", '1', {0, 1}, {0, 1}});
  c.add(Series{"two", '2', {0, 1}, {1, 0}});
  const std::string out = c.render();
  EXPECT_NE(out.find("1 = one"), std::string::npos);
  EXPECT_NE(out.find("2 = two"), std::string::npos);
}

}  // namespace
