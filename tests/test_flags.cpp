// Unit tests for the command-line flag parser.
#include "src/util/flags.hpp"

#include <gtest/gtest.h>

namespace {

using sda::util::Flags;

Flags parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsForm) {
  const Flags f = parse({"--load=0.6", "--psp=div-1"});
  EXPECT_DOUBLE_EQ(f.get_double("load", 0.0), 0.6);
  EXPECT_EQ(f.get_string("psp"), "div-1");
}

TEST(Flags, SpaceForm) {
  const Flags f = parse({"--load", "0.6", "--psp", "gf"});
  EXPECT_DOUBLE_EQ(f.get_double("load", 0.0), 0.6);
  EXPECT_EQ(f.get_string("psp"), "gf");
}

TEST(Flags, SwitchForm) {
  const Flags f = parse({"--pm-abort", "--load", "0.5"});
  EXPECT_TRUE(f.has("pm-abort"));
  EXPECT_TRUE(f.get_bool("pm-abort"));
  EXPECT_FALSE(f.get_bool("local-abort"));
  EXPECT_FALSE(f.has("local-abort"));
}

TEST(Flags, SwitchFollowedByFlagTakesNoValue) {
  const Flags f = parse({"--preemptive", "--load=0.7"});
  EXPECT_TRUE(f.get_bool("preemptive"));
  EXPECT_DOUBLE_EQ(f.get_double("load", 0.0), 0.7);
}

TEST(Flags, BoolValues) {
  EXPECT_FALSE(parse({"--x=false"}).get_bool("x", true));
  EXPECT_FALSE(parse({"--x=0"}).get_bool("x", true));
  EXPECT_TRUE(parse({"--x=yes"}).get_bool("x"));
  EXPECT_TRUE(parse({"--x=on"}).get_bool("x"));
  EXPECT_TRUE(parse({"--x=garbage"}).get_bool("x", true));  // fallback
}

TEST(Flags, IntParsing) {
  const Flags f = parse({"--k=8", "--seed", "42", "--bad=x2"});
  EXPECT_EQ(f.get_int("k", 0), 8);
  EXPECT_EQ(f.get_int("seed", 0), 42);
  EXPECT_EQ(f.get_int("bad", 7), 7);
  EXPECT_EQ(f.get_int("absent", -1), -1);
}

TEST(Flags, DoubleFallbacks) {
  const Flags f = parse({"--x=abc"});
  EXPECT_DOUBLE_EQ(f.get_double("x", 1.5), 1.5);
  EXPECT_DOUBLE_EQ(f.get_double("absent", 2.5), 2.5);
}

TEST(Flags, Positionals) {
  const Flags f = parse({"input.txt", "--load=0.5", "more"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.txt");
  EXPECT_EQ(f.positional()[1], "more");
}

TEST(Flags, DoubleDashEndsFlags) {
  const Flags f = parse({"--load=0.5", "--", "--not-a-flag"});
  EXPECT_DOUBLE_EQ(f.get_double("load", 0.0), 0.5);
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "--not-a-flag");
}

TEST(Flags, UnusedTracking) {
  const Flags f = parse({"--used=1", "--typo=2"});
  (void)f.get_int("used", 0);
  const auto unused = f.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Flags, LastWriteWins) {
  const Flags f = parse({"--load=0.3", "--load=0.9"});
  EXPECT_DOUBLE_EQ(f.get_double("load", 0.0), 0.9);
}

}  // namespace
