// Crash-safety proof for the write-ahead decision journal: a child
// process serves a deterministic stream (journal fsync'd per record),
// the parent SIGKILLs it at randomized line offsets, and replaying the
// survivor journal must land on the exact fingerprint a clean run has
// after the same accepted-line prefix.  Three properties per crash:
//
//   durability — every line the child finished (and thus could have
//     acknowledged) is in the journal;
//   prefix integrity — the journal is exactly a prefix of the accepted
//     lines, torn tail dropped, nothing reordered or invented;
//   bit-identical recovery — replay reproduces state_fingerprint().
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "src/exp/journal.hpp"
#include "src/exp/serve.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace sda;

exp::ServeOptions session_options() {
  exp::ServeOptions o;
  o.admission.node_count = 2;
  o.admission.queue_capacity = 3;
  return o;
}

/// The stream under test: valid subs (some of which park and resolve),
/// dones (whole-run and per-leaf), plus a few deliberate errors that
/// must never reach the journal.
std::vector<std::string> build_stream() {
  std::vector<std::string> lines;
  double at = 0.0;
  for (int wave = 0; wave < 8; ++wave) {
    const int base = wave * 10;
    for (int i = 1; i <= 4; ++i) {
      at += 0.25;
      const std::string tree = (i % 2 == 0)
                                   ? "tree=[a@0:1/1 || b@1:2/2]"
                                   : "tree=a@0:2/2";
      lines.push_back("sub id=" + std::to_string(base + i) +
                      " at=" + std::to_string(at) + " deadline=" +
                      std::to_string(3.0 + i) + " " + tree);
    }
    at += 0.5;
    lines.push_back("done id=" + std::to_string(base + 1) +
                    " at=" + std::to_string(at));
    lines.push_back("done id=" + std::to_string(base + 2) +
                    " at=" + std::to_string(at) + " leaf=0");
    // Deliberate errors: answered, never journaled.
    lines.push_back("done id=99999 at=" + std::to_string(at));
    lines.push_back("sub id=1 at=bogus");
  }
  return lines;
}

void feed(exp::ServeSession& session, const std::string& line) {
  std::vector<exp::ServeSession::Reply> replies;
  session.handle_line(line, replies);
}

TEST(CrashRecovery, SigkillAtRandomOffsetsReplaysBitIdentically) {
  const std::vector<std::string> stream = build_stream();
  ASSERT_GE(stream.size(), 40u);

  // Pilot run: learn which lines a clean serve accepts (journals).
  const std::string ref_path =
      "sda_test_crash_ref_" + std::to_string(::getpid()) + ".wal";
  std::remove(ref_path.c_str());
  {
    exp::ServeOptions o = session_options();
    o.journal_path = ref_path;
    o.journal_flush_every = 1;
    exp::ServeSession pilot(o);
    std::string diag;
    ASSERT_TRUE(pilot.open_journal(&diag)) << diag;
    for (const std::string& line : stream) feed(pilot, line);
    EXPECT_GT(pilot.result().errors, 0u);  // the deliberate garbage
  }  // writer closes (flushes) on destruction; no checkpoint
  const exp::JournalReadResult ref = exp::read_journal(ref_path);
  ASSERT_TRUE(ref.ok) << ref.diagnostic;
  ASSERT_FALSE(ref.truncated);
  std::vector<std::string> accepted;
  for (const exp::JournalRecord& r : ref.records) accepted.push_back(r.payload);
  ASSERT_GT(accepted.size(), 20u);
  ASSERT_LT(accepted.size(), stream.size());  // errors were filtered

  // Reference fingerprints: state after each accepted-line prefix.
  std::vector<std::uint64_t> fingerprints;
  {
    exp::ServeSession reference(session_options());
    fingerprints.push_back(reference.state_fingerprint());
    for (const std::string& line : accepted) {
      feed(reference, line);
      fingerprints.push_back(reference.state_fingerprint());
    }
  }
  // Accepted-count after the first k *stream* lines — the durability
  // floor for a kill that lands once k lines are acknowledged.
  std::vector<std::size_t> accepted_after(stream.size() + 1, 0);
  {
    std::set<std::string> journaled(accepted.begin(), accepted.end());
    std::size_t count = 0;
    for (std::size_t k = 0; k < stream.size(); ++k) {
      if (journaled.count(stream[k]) != 0) ++count;
      accepted_after[k + 1] = count;
    }
    ASSERT_EQ(count, accepted.size());
  }

  // >=10 randomized kill offsets (seeded: reruns chase the same kills),
  // plus the two edges.
  util::Rng rng(0xC4A54);
  std::vector<std::size_t> offsets = {1, stream.size() - 2};
  while (offsets.size() < 12) {
    offsets.push_back(static_cast<std::size_t>(rng.uniform_int(
        2, static_cast<std::int64_t>(stream.size()) - 3)));
  }

  const std::string crash_path =
      "sda_test_crash_child_" + std::to_string(::getpid()) + ".wal";
  for (const std::size_t offset : offsets) {
    SCOPED_TRACE("kill offset " + std::to_string(offset));
    std::remove(crash_path.c_str());

    int progress[2];
    ASSERT_EQ(::pipe(progress), 0);
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: serve the stream line by line, fsync-per-record, one
      // progress byte per handled line.  Never reaches finish() unless
      // the parent is too slow to shoot — both are valid crash shapes.
      if (::close(progress[0]) != 0) { /* child side */ }
      exp::ServeOptions o = session_options();
      o.journal_path = crash_path;
      o.journal_flush_every = 1;
      exp::ServeSession child(o);
      std::string diag;
      if (!child.open_journal(&diag)) _exit(2);
      for (const std::string& line : stream) {
        feed(child, line);
        const char byte = '.';
        if (::write(progress[1], &byte, 1) != 1) _exit(3);
      }
      _exit(0);
    }
    if (::close(progress[1]) != 0) { /* parent side */ }
    std::size_t handled = 0;
    char byte = 0;
    while (handled < offset && ::read(progress[0], &byte, 1) == 1) ++handled;
    ASSERT_EQ(handled, offset);
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    if (::close(progress[0]) != 0) { /* drained */ }

    // Recover: replay-only session over whatever the journal holds.
    exp::ServeOptions recover = session_options();
    recover.journal_path = crash_path;
    recover.journal_replay_only = true;
    exp::ServeSession recovered(recover);
    std::string diag;
    ASSERT_TRUE(recovered.open_journal(&diag)) << diag;
    const std::uint64_t replayed = recovered.result().replayed;

    // Prefix integrity: the journal is a prefix of the accepted lines.
    const exp::JournalReadResult survivor = exp::read_journal(crash_path);
    ASSERT_TRUE(survivor.ok) << survivor.diagnostic;
    ASSERT_EQ(survivor.records.size(), replayed);
    ASSERT_LE(replayed, accepted.size());
    for (std::size_t i = 0; i < survivor.records.size(); ++i) {
      ASSERT_EQ(survivor.records[i].payload, accepted[i]) << "record " << i;
    }
    // Durability: everything acknowledged before the kill is present.
    EXPECT_GE(replayed, accepted_after[offset]);
    // Replay of valid lines is silent (no errors) …
    EXPECT_EQ(recovered.result().errors, 0u);
    // … and bit-identical: the recovered state fingerprint equals the
    // clean run's fingerprint after the same prefix.
    EXPECT_EQ(recovered.state_fingerprint(), fingerprints[replayed]);
  }
  std::remove(crash_path.c_str());
  std::remove(ref_path.c_str());
}

TEST(CrashRecovery, RecoveredSessionContinuesServingAndJournaling) {
  // After a crash and replay, the same journal keeps growing and a
  // second recovery sees the union — the restart loop compounds.
  const std::string path =
      "sda_test_crash_resume_" + std::to_string(::getpid()) + ".wal";
  std::remove(path.c_str());
  exp::ServeOptions o = session_options();
  o.journal_path = path;
  o.journal_flush_every = 1;
  {
    exp::ServeSession first(o);
    std::string diag;
    ASSERT_TRUE(first.open_journal(&diag)) << diag;
    feed(first, "sub id=1 at=0 deadline=5 tree=a@0:1/1");
  }
  std::uint64_t fp_mid = 0;
  {
    exp::ServeSession second(o);
    std::string diag;
    ASSERT_TRUE(second.open_journal(&diag)) << diag;
    EXPECT_EQ(second.result().replayed, 1u);
    feed(second, "sub id=2 at=1 deadline=5 tree=b@1:1/1");
    feed(second, "done id=1 at=2");
    fp_mid = second.state_fingerprint();
  }
  {
    exp::ServeOptions replay = o;
    replay.journal_replay_only = true;
    exp::ServeSession third(replay);
    std::string diag;
    ASSERT_TRUE(third.open_journal(&diag)) << diag;
    EXPECT_EQ(third.result().replayed, 3u);
    EXPECT_EQ(third.state_fingerprint(), fp_mid);
  }
  std::remove(path.c_str());
}

}  // namespace
