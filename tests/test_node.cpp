// Unit tests for the Node server: service timing, EDF dispatch order,
// external/local abortion, non-abortable directives, and preemption.
#include "src/sched/node.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "src/sched/edf.hpp"
#include "src/sim/engine.hpp"

namespace {

using namespace sda;
using sched::LocalAbortPolicy;
using sched::Node;
using task::make_local_task;
using task::TaskPtr;
using task::TaskState;

Node::Config cfg(int index = 0,
                 LocalAbortPolicy policy = LocalAbortPolicy::kNone,
                 bool preemptive = false) {
  Node::Config c;
  c.index = index;
  c.abort_policy = policy;
  c.preemptive = preemptive;
  return c;
}

std::unique_ptr<sched::Scheduler> edf() {
  return std::make_unique<sched::EdfScheduler>();
}

TEST(Node, RequiresScheduler) {
  sim::Engine e;
  EXPECT_THROW(Node(e, nullptr, cfg()), std::invalid_argument);
}

TEST(Node, RejectsWrongNodeAndNull) {
  sim::Engine e;
  Node n(e, edf(), cfg(3));
  EXPECT_THROW(n.submit(nullptr), std::invalid_argument);
  EXPECT_THROW(n.submit(make_local_task(1, 0, 0.0, 1.0, 5.0)),
               std::logic_error);
}

TEST(Node, SingleTaskServiceTiming) {
  sim::Engine e;
  Node n(e, edf(), cfg());
  std::vector<TaskPtr> done;
  n.set_completion_handler([&](const TaskPtr& t) { done.push_back(t); });

  TaskPtr t = make_local_task(1, 0, 0.0, 2.5, 10.0);
  n.submit(t);
  EXPECT_EQ(t->state, TaskState::kRunning);  // idle server starts at once
  e.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0]->state, TaskState::kCompleted);
  EXPECT_DOUBLE_EQ(done[0]->started_at, 0.0);
  EXPECT_DOUBLE_EQ(done[0]->finished_at, 2.5);
  EXPECT_TRUE(done[0]->met_real_deadline());
  EXPECT_DOUBLE_EQ(n.busy_time(), 2.5);
  EXPECT_EQ(n.completed(), 1u);
}

TEST(Node, QueuedTasksServedInEdfOrder) {
  sim::Engine e;
  Node n(e, edf(), cfg());
  std::vector<std::uint64_t> order;
  n.set_completion_handler(
      [&](const TaskPtr& t) { order.push_back(t->id); });

  // First task occupies the server; the other two queue and are served in
  // deadline order (3 before 2) despite submission order.
  n.submit(make_local_task(1, 0, 0.0, 1.0, 100.0));
  n.submit(make_local_task(2, 0, 0.0, 1.0, 50.0));
  n.submit(make_local_task(3, 0, 0.0, 1.0, 10.0));
  e.run();
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 3, 2}));
}

TEST(Node, NonPreemptiveByDefault) {
  sim::Engine e;
  Node n(e, edf(), cfg());
  std::vector<std::uint64_t> order;
  n.set_completion_handler(
      [&](const TaskPtr& t) { order.push_back(t->id); });

  n.submit(make_local_task(1, 0, 0.0, 5.0, 100.0));
  e.at(1.0, [&] { n.submit(make_local_task(2, 0, 1.0, 1.0, 2.0)); });
  e.run();
  // Task 2 had the earlier deadline but task 1 was not preempted.
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(n.preemptions(), 0u);
}

TEST(Node, PreemptiveResume) {
  sim::Engine e;
  Node n(e, edf(), cfg(0, LocalAbortPolicy::kNone, /*preemptive=*/true));
  std::vector<std::pair<std::uint64_t, double>> done;
  n.set_completion_handler(
      [&](const TaskPtr& t) { done.push_back({t->id, t->finished_at}); });

  n.submit(make_local_task(1, 0, 0.0, 5.0, 100.0));
  e.at(1.0, [&] { n.submit(make_local_task(2, 0, 1.0, 1.0, 2.5)); });
  e.run();
  ASSERT_EQ(done.size(), 2u);
  // Task 2 preempts at t=1, runs 1 unit, finishes at 2; task 1 resumes with
  // 4 remaining and finishes at 6 (preempt-resume, no lost work).
  EXPECT_EQ(done[0].first, 2u);
  EXPECT_DOUBLE_EQ(done[0].second, 2.0);
  EXPECT_EQ(done[1].first, 1u);
  EXPECT_DOUBLE_EQ(done[1].second, 6.0);
  EXPECT_EQ(n.preemptions(), 1u);
  EXPECT_DOUBLE_EQ(n.busy_time(), 6.0);
}

TEST(Node, PreemptionOnlyForEarlierDeadline) {
  sim::Engine e;
  Node n(e, edf(), cfg(0, LocalAbortPolicy::kNone, true));
  n.submit(make_local_task(1, 0, 0.0, 5.0, 10.0));
  e.at(1.0, [&] { n.submit(make_local_task(2, 0, 1.0, 1.0, 50.0)); });
  e.run();
  EXPECT_EQ(n.preemptions(), 0u);
}

TEST(Node, ExternalAbortQueuedTask) {
  sim::Engine e;
  Node n(e, edf(), cfg());
  TaskPtr running = make_local_task(1, 0, 0.0, 5.0, 100.0);
  TaskPtr queued = make_local_task(2, 0, 0.0, 1.0, 100.0);
  n.submit(running);
  n.submit(queued);
  EXPECT_TRUE(n.abort(*queued));
  EXPECT_EQ(queued->state, TaskState::kAborted);
  EXPECT_EQ(n.aborted_externally(), 1u);
  e.run();
  EXPECT_EQ(running->state, TaskState::kCompleted);
  EXPECT_EQ(n.completed(), 1u);
}

TEST(Node, ExternalAbortRunningTaskFreesServer) {
  sim::Engine e;
  Node n(e, edf(), cfg());
  std::vector<std::uint64_t> done;
  n.set_completion_handler([&](const TaskPtr& t) { done.push_back(t->id); });

  TaskPtr victim = make_local_task(1, 0, 0.0, 10.0, 100.0);
  TaskPtr next = make_local_task(2, 0, 0.0, 1.0, 100.0);
  n.submit(victim);
  n.submit(next);
  e.at(3.0, [&] { EXPECT_TRUE(n.abort(*victim)); });
  e.run();
  EXPECT_EQ(victim->state, TaskState::kAborted);
  EXPECT_DOUBLE_EQ(victim->finished_at, 3.0);
  // The invested 3 units are wasted but counted busy; task 2 runs 3->4.
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], 2u);
  EXPECT_DOUBLE_EQ(n.busy_time(), 4.0);
}

TEST(Node, AbortUnknownTaskFails) {
  sim::Engine e;
  Node n(e, edf(), cfg());
  TaskPtr stranger = make_local_task(9, 0, 0.0, 1.0, 5.0);
  EXPECT_FALSE(n.abort(*stranger));
  TaskPtr done_task = make_local_task(1, 0, 0.0, 1.0, 5.0);
  n.submit(done_task);
  e.run();
  EXPECT_FALSE(n.abort(*done_task));  // already completed
}

TEST(Node, LocalAbortExpiredOnArrival) {
  sim::Engine e;
  Node n(e, edf(), cfg(0, LocalAbortPolicy::kAbortOnVirtualDeadline));
  std::vector<TaskPtr> aborted;
  n.set_abort_handler([&](const TaskPtr& t) { aborted.push_back(t); });

  e.at(5.0, [&] {
    TaskPtr t = make_local_task(1, 0, 5.0, 1.0, 9.0);
    t->attrs.virtual_deadline = 4.0;  // already passed
    n.submit(t);
  });
  e.run();
  ASSERT_EQ(aborted.size(), 1u);
  EXPECT_EQ(aborted[0]->state, TaskState::kAborted);
  EXPECT_EQ(n.aborted_locally(), 1u);
  EXPECT_DOUBLE_EQ(n.busy_time(), 0.0);  // no service was invested
}

TEST(Node, LocalAbortMidService) {
  sim::Engine e;
  Node n(e, edf(), cfg(0, LocalAbortPolicy::kAbortOnVirtualDeadline));
  std::vector<TaskPtr> aborted;
  n.set_abort_handler([&](const TaskPtr& t) { aborted.push_back(t); });

  TaskPtr t = make_local_task(1, 0, 0.0, 10.0, 4.0);  // needs 10, dl at 4
  n.submit(t);
  e.run();
  ASSERT_EQ(aborted.size(), 1u);
  EXPECT_DOUBLE_EQ(aborted[0]->finished_at, 4.0);
  EXPECT_DOUBLE_EQ(n.busy_time(), 4.0);       // wasted investment
  EXPECT_DOUBLE_EQ(aborted[0]->remaining, 6.0);  // remaining demand tracked
}

TEST(Node, LocalAbortQueuedTaskAtItsDeadline) {
  sim::Engine e;
  Node n(e, edf(), cfg(0, LocalAbortPolicy::kAbortOnVirtualDeadline));
  std::vector<std::uint64_t> aborted;
  std::vector<std::uint64_t> completed;
  n.set_abort_handler([&](const TaskPtr& t) { aborted.push_back(t->id); });
  n.set_completion_handler(
      [&](const TaskPtr& t) { completed.push_back(t->id); });

  n.submit(make_local_task(1, 0, 0.0, 5.0, 100.0));  // hogs the server
  n.submit(make_local_task(2, 0, 0.0, 1.0, 3.0));    // dies in queue at t=3
  e.run();
  EXPECT_EQ(aborted, (std::vector<std::uint64_t>{2}));
  EXPECT_EQ(completed, (std::vector<std::uint64_t>{1}));
}

TEST(Node, NonAbortableTaskSurvivesPolicy) {
  sim::Engine e;
  Node n(e, edf(), cfg(0, LocalAbortPolicy::kAbortOnVirtualDeadline));
  std::vector<std::uint64_t> completed;
  n.set_completion_handler(
      [&](const TaskPtr& t) { completed.push_back(t->id); });

  TaskPtr t = make_local_task(1, 0, 0.0, 10.0, 4.0);
  t->non_abortable = true;  // §7.3 "special directives"
  n.submit(t);
  e.run();
  EXPECT_EQ(completed, (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(n.aborted_locally(), 0u);
  EXPECT_DOUBLE_EQ(t->finished_at, 10.0);  // finished late, not aborted
}

TEST(Node, CompletionCancelsAbortTimer) {
  sim::Engine e;
  Node n(e, edf(), cfg(0, LocalAbortPolicy::kAbortOnVirtualDeadline));
  int aborts = 0;
  n.set_abort_handler([&](const TaskPtr&) { ++aborts; });
  n.submit(make_local_task(1, 0, 0.0, 1.0, 5.0));  // finishes well before dl
  e.run();
  EXPECT_EQ(aborts, 0);
  EXPECT_EQ(n.completed(), 1u);
  EXPECT_EQ(e.events_pending(), 0u);  // timer was cancelled, queue drained
}

TEST(Node, PreemptionPlusLocalAbortInteraction) {
  // Preemptive node with the virtual-deadline abort policy: a task that is
  // preempted and then expires in the queue must be aborted exactly once,
  // with its partial service recorded as wasted work.
  sim::Engine e;
  Node n(e, edf(), cfg(0, LocalAbortPolicy::kAbortOnVirtualDeadline, true));
  std::vector<std::uint64_t> aborted, completed;
  n.set_abort_handler([&](const TaskPtr& t) { aborted.push_back(t->id); });
  n.set_completion_handler(
      [&](const TaskPtr& t) { completed.push_back(t->id); });

  // Task 1: needs 6, deadline 5 -> will be preempted at t=1, then die at 5.
  n.submit(make_local_task(1, 0, 0.0, 6.0, 5.0));
  // Task 2 at t=1: earlier deadline, preempts; runs 1..3.
  e.at(1.0, [&] { n.submit(make_local_task(2, 0, 1.0, 2.0, 4.0)); });
  e.run();
  // Timeline: task1 [0,1), task2 [1,3), task1 resumes [3,5) with 5 demand
  // left, aborted at its deadline 5 with remaining 3.
  EXPECT_EQ(completed, (std::vector<std::uint64_t>{2}));
  EXPECT_EQ(aborted, (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(n.preemptions(), 1u);
  EXPECT_DOUBLE_EQ(n.busy_time(), 5.0);  // busy the whole time
}

TEST(Node, SpeedAndLocalAbortAccounting) {
  // Fast node (speed 2) with local aborts: remaining demand is tracked in
  // demand units, not wall-clock.
  sim::Engine e;
  Node::Config c = cfg(0, LocalAbortPolicy::kAbortOnVirtualDeadline);
  c.speed = 2.0;
  Node n(e, edf(), c);
  TaskPtr victim;
  n.set_abort_handler([&](const TaskPtr& t) { victim = t; });
  n.submit(make_local_task(1, 0, 0.0, 10.0, 3.0));  // 5 wall units needed
  e.run();
  ASSERT_NE(victim, nullptr);
  EXPECT_DOUBLE_EQ(victim->finished_at, 3.0);    // aborted at the deadline
  EXPECT_DOUBLE_EQ(victim->remaining, 4.0);      // 10 - 3*2 demand done
  EXPECT_DOUBLE_EQ(n.busy_time(), 3.0);
}

TEST(Node, ObserverAndHandlersBothFire) {
  sim::Engine e;
  Node n(e, edf(), cfg());
  int observed = 0, handled = 0;
  n.set_observer([&](Node::Event, const task::SimpleTask&) { ++observed; });
  n.set_completion_handler([&](const TaskPtr&) { ++handled; });
  n.submit(make_local_task(1, 0, 0.0, 1.0, 5.0));
  e.run();
  EXPECT_EQ(observed, 3);  // submit, start, complete
  EXPECT_EQ(handled, 1);
}

TEST(Node, UtilizationAndLittleLaw) {
  sim::Engine e;
  Node n(e, edf(), cfg());
  // Two unit tasks back to back starting at 0: busy 2 of 4 time units.
  n.submit(make_local_task(1, 0, 0.0, 1.0, 10.0));
  n.submit(make_local_task(2, 0, 0.0, 1.0, 10.0));
  e.run_until(4.0);
  EXPECT_DOUBLE_EQ(n.busy_time(), 2.0);
  EXPECT_DOUBLE_EQ(n.utilization(), 0.5);
  // Population: 2 tasks in [0,1), 1 in [1,2), 0 after: mean = 3/4.
  EXPECT_DOUBLE_EQ(n.mean_tasks_in_system(), 0.75);
}

TEST(Node, QueueLengthReflectsWaiters) {
  sim::Engine e;
  Node n(e, edf(), cfg());
  n.submit(make_local_task(1, 0, 0.0, 5.0, 10.0));
  n.submit(make_local_task(2, 0, 0.0, 1.0, 10.0));
  n.submit(make_local_task(3, 0, 0.0, 1.0, 10.0));
  EXPECT_EQ(n.queue_length(), 2u);
  ASSERT_NE(n.in_service(), nullptr);
  EXPECT_EQ(n.in_service()->id, 1u);
}

}  // namespace
