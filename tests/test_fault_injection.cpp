// Node-level fault semantics (crash, recover, fault hooks) and the
// FaultInjector wiring that drives them from a FaultPlan.
#include "src/fault/injector.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/sched/edf.hpp"
#include "src/sched/node.hpp"
#include "src/sim/engine.hpp"

namespace {

using namespace sda;
using fault::FaultConfig;
using fault::FaultInjector;
using fault::FaultPlan;
using sched::Node;
using task::make_local_task;
using task::TaskPtr;
using task::TaskState;

Node::Config cfg(int index = 0) {
  Node::Config c;
  c.index = index;
  return c;
}

std::unique_ptr<sched::Scheduler> edf() {
  return std::make_unique<sched::EdfScheduler>();
}

TEST(NodeFaults, HookCanFailAnAttemptPartway) {
  sim::Engine e;
  Node n(e, edf(), cfg());
  std::vector<TaskPtr> failed;
  n.set_failure_handler([&](const TaskPtr& t) { failed.push_back(t); });
  n.set_fault_hook([](const task::SimpleTask&, double) {
    Node::ServiceFault f;
    f.fail_after = 1.5;  // die 1.5 units into the leg
    return f;
  });
  n.submit(make_local_task(1, 0, 0.0, 4.0, 10.0));
  e.run();
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0]->state, TaskState::kFailed);
  EXPECT_DOUBLE_EQ(failed[0]->finished_at, 1.5);
  EXPECT_EQ(n.failed(), 1u);
  EXPECT_EQ(n.completed(), 0u);
  // The 1.5 units burned on the doomed attempt still count as busy time.
  EXPECT_DOUBLE_EQ(n.busy_time(), 1.5);
}

TEST(NodeFaults, HookExtraDelayStretchesService) {
  sim::Engine e;
  Node n(e, edf(), cfg());
  std::vector<TaskPtr> done;
  n.set_completion_handler([&](const TaskPtr& t) { done.push_back(t); });
  n.set_fault_hook([](const task::SimpleTask&, double) {
    Node::ServiceFault f;
    f.extra_delay = 0.75;  // e.g. link jitter
    return f;
  });
  n.submit(make_local_task(1, 0, 0.0, 2.0, 10.0));
  e.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0]->state, TaskState::kCompleted);
  EXPECT_DOUBLE_EQ(done[0]->finished_at, 2.75);
}

TEST(NodeFaults, FailAfterBeyondDurationCompletesNormally) {
  sim::Engine e;
  Node n(e, edf(), cfg());
  std::vector<TaskPtr> done;
  n.set_completion_handler([&](const TaskPtr& t) { done.push_back(t); });
  n.set_fault_hook([](const task::SimpleTask&, double duration) {
    Node::ServiceFault f;
    f.fail_after = duration + 1.0;  // "failure" after the attempt ends
    return f;
  });
  n.submit(make_local_task(1, 0, 0.0, 2.0, 10.0));
  e.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_DOUBLE_EQ(done[0]->finished_at, 2.0);
  EXPECT_EQ(n.failed(), 0u);
}

TEST(NodeFaults, CrashFailsInServiceTaskAndDiscardsQueue) {
  sim::Engine e;
  Node n(e, edf(), cfg());
  std::vector<TaskPtr> failed;
  n.set_failure_handler([&](const TaskPtr& t) { failed.push_back(t); });
  n.submit(make_local_task(1, 0, 0.0, 5.0, 10.0));  // in service
  n.submit(make_local_task(2, 0, 0.0, 1.0, 10.0));  // queued
  e.at(2.0, [&] { n.crash(/*discard_queue=*/true); });
  e.run();
  ASSERT_EQ(failed.size(), 2u);
  EXPECT_EQ(failed[0]->id, 1u);  // the running task fails first
  EXPECT_EQ(failed[1]->id, 2u);
  for (const TaskPtr& t : failed) {
    EXPECT_EQ(t->state, TaskState::kFailed);
    EXPECT_DOUBLE_EQ(t->finished_at, 2.0);
  }
  EXPECT_FALSE(n.is_up());
  EXPECT_EQ(n.crashes(), 1u);
  EXPECT_EQ(n.queue_length(), 0u);
  EXPECT_DOUBLE_EQ(n.busy_time(), 2.0);  // partial work on task 1, wasted
}

TEST(NodeFaults, CrashWithoutDiscardFreezesQueueUntilRecovery) {
  sim::Engine e;
  Node n(e, edf(), cfg());
  std::vector<TaskPtr> failed, done;
  n.set_failure_handler([&](const TaskPtr& t) { failed.push_back(t); });
  n.set_completion_handler([&](const TaskPtr& t) { done.push_back(t); });
  n.submit(make_local_task(1, 0, 0.0, 5.0, 20.0));
  n.submit(make_local_task(2, 0, 0.0, 1.0, 20.0));
  e.at(2.0, [&] { n.crash(/*discard_queue=*/false); });
  e.at(6.0, [&] { n.recover(); });
  e.run();
  // Only the in-service task failed; the queued one waited out the outage
  // and ran 6..7.
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0]->id, 1u);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0]->id, 2u);
  EXPECT_DOUBLE_EQ(done[0]->started_at, 6.0);
  EXPECT_DOUBLE_EQ(done[0]->finished_at, 7.0);
  EXPECT_TRUE(n.is_up());
}

TEST(NodeFaults, SubmitWhileDownQueuesUntilRecovery) {
  sim::Engine e;
  Node n(e, edf(), cfg());
  std::vector<TaskPtr> done;
  n.set_completion_handler([&](const TaskPtr& t) { done.push_back(t); });
  n.crash(true);
  n.submit(make_local_task(1, 0, 0.0, 1.0, 20.0));
  EXPECT_EQ(n.in_service(), nullptr);  // down: accepted but not served
  EXPECT_EQ(n.queue_length(), 1u);
  e.at(3.0, [&] { n.recover(); });
  e.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_DOUBLE_EQ(done[0]->started_at, 3.0);
}

TEST(NodeFaults, CrashAndRecoverAreIdempotent) {
  sim::Engine e;
  Node n(e, edf(), cfg());
  n.crash(true);
  n.crash(true);  // no-op
  EXPECT_EQ(n.crashes(), 1u);
  n.recover();
  n.recover();  // no-op
  EXPECT_TRUE(n.is_up());
}

TEST(Injector, ExecutesPlannedCrashSchedule) {
  sim::Engine e;
  Node n0(e, edf(), cfg(0)), n1(e, edf(), cfg(1));
  std::vector<sched::Node*> nodes{&n0, &n1};

  FaultConfig fc;
  fc.crash_mean_uptime = 100.0;
  fc.crash_mean_downtime = 10.0;
  // Hand-build a deterministic plan through generate() by probing the drawn
  // schedule instead of fixing instants: verify that at each planned
  // interval the node really is down, and up again after.
  const FaultPlan plan = FaultPlan::generate(fc, 2, 500.0, util::Rng(3));
  ASSERT_FALSE(plan.crashes().empty());

  FaultInjector inj(e, nodes, 2, plan, util::Rng(4));
  inj.arm();
  for (const fault::CrashInterval& iv : plan.crashes()) {
    Node* victim = nodes[static_cast<std::size_t>(iv.node)];
    const double mid = 0.5 * (iv.down_at + iv.up_at);
    e.at(mid, [victim] { EXPECT_FALSE(victim->is_up()); });
    e.at(iv.up_at + 1e-9, [victim] { EXPECT_TRUE(victim->is_up()); });
  }
  e.run();
  EXPECT_EQ(inj.crashes(), plan.crashes().size());
}

TEST(Injector, TransientFailuresHitOnlySubtasksOnComputeNodes) {
  sim::Engine e;
  Node n0(e, edf(), cfg(0)), link(e, edf(), cfg(1));
  std::vector<sched::Node*> nodes{&n0, &link};

  FaultConfig fc;
  fc.subtask_failure_rate = 1.0;  // every subtask attempt fails
  FaultInjector inj(e, nodes, /*compute_node_count=*/1,
                    FaultPlan::generate(fc, 1, 100.0, util::Rng(1)),
                    util::Rng(2));
  inj.arm();

  std::vector<TaskPtr> failed, done;
  for (Node* n : nodes) {
    n->set_failure_handler([&](const TaskPtr& t) { failed.push_back(t); });
    n->set_completion_handler([&](const TaskPtr& t) { done.push_back(t); });
  }
  // A local task on the compute node is untouched even at rate 1.
  n0.submit(make_local_task(1, 0, 0.0, 1.0, 50.0));
  // A subtask on the compute node must fail.
  n0.submit(task::make_subtask(2, 7, 0, 0.0, 1.0, 1.0, 50.0));
  // A subtask on the link node is outside the transient-failure pool.
  link.submit(task::make_subtask(3, 7, 1, 0.0, 1.0, 1.0, 50.0));
  e.run();
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0]->id, 2u);
  EXPECT_EQ(done.size(), 2u);
  EXPECT_EQ(inj.transient_failures(), 1u);
}

TEST(Injector, MessageLossFailsLinkTransmissions) {
  sim::Engine e;
  Node n0(e, edf(), cfg(0)), link(e, edf(), cfg(1));
  std::vector<sched::Node*> nodes{&n0, &link};

  FaultConfig fc;
  fc.msg_loss_rate = 1.0;  // every transmission is lost
  FaultInjector inj(e, nodes, /*compute_node_count=*/1,
                    FaultPlan::generate(fc, 1, 100.0, util::Rng(1)),
                    util::Rng(2));
  inj.arm();

  std::vector<TaskPtr> failed;
  link.set_failure_handler([&](const TaskPtr& t) { failed.push_back(t); });
  link.submit(task::make_subtask(1, 7, 1, 0.0, 0.5, 0.5, 50.0));
  e.run();
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0]->state, TaskState::kFailed);
  EXPECT_EQ(inj.messages_lost(), 1u);
}

TEST(Injector, RejectsDoubleArmAndBadArguments) {
  sim::Engine e;
  Node n0(e, edf(), cfg(0));
  std::vector<sched::Node*> nodes{&n0};
  const FaultPlan plan =
      FaultPlan::generate(FaultConfig{}, 1, 100.0, util::Rng(1));
  FaultInjector inj(e, nodes, 1, plan, util::Rng(2));
  inj.arm();
  EXPECT_THROW(inj.arm(), std::logic_error);
  EXPECT_THROW(FaultInjector(e, nodes, 2, plan, util::Rng(2)),
               std::invalid_argument);
  EXPECT_THROW(FaultInjector(e, {nullptr}, 0, plan, util::Rng(2)),
               std::invalid_argument);
}

}  // namespace
