// Unit tests for cross-replication aggregation.
#include "src/metrics/report.hpp"

#include <gtest/gtest.h>

namespace {

using namespace sda;
using metrics::Collector;
using metrics::Report;

Collector collector_with(int cls, int finished, int missed) {
  Collector c;
  for (int i = 0; i < finished; ++i) {
    c.record(cls, 0.0, i < missed, false, 1.0);
  }
  return c;
}

TEST(Report, SingleReplicationHasNoHalfWidth) {
  Report r;
  r.add_replication(collector_with(metrics::kLocalClass, 10, 2));
  const auto s = r.summary(metrics::kLocalClass);
  EXPECT_EQ(r.replications(), 1u);
  EXPECT_DOUBLE_EQ(s.miss_rate.mean, 0.2);
  EXPECT_DOUBLE_EQ(s.miss_rate.half_width, 0.0);
  EXPECT_EQ(s.finished_total, 10u);
}

TEST(Report, MeanOverReplications) {
  Report r;
  r.add_replication(collector_with(0, 10, 2));  // 0.2
  r.add_replication(collector_with(0, 10, 4));  // 0.4
  const auto s = r.summary(0);
  EXPECT_DOUBLE_EQ(s.miss_rate.mean, 0.3);
  EXPECT_GT(s.miss_rate.half_width, 0.0);
  EXPECT_EQ(s.finished_total, 20u);
}

TEST(Report, IdenticalReplicationsHaveZeroWidth) {
  Report r;
  r.add_replication(collector_with(0, 10, 3));
  r.add_replication(collector_with(0, 10, 3));
  EXPECT_NEAR(r.summary(0).miss_rate.half_width, 0.0, 1e-12);
}

TEST(Report, UnknownClassIsEmptySummary) {
  Report r;
  r.add_replication(collector_with(0, 10, 3));
  const auto s = r.summary(99);
  EXPECT_EQ(s.finished_total, 0u);
  EXPECT_DOUBLE_EQ(s.miss_rate.mean, 0.0);
}

TEST(Report, ClassesUnionAcrossReplications) {
  Report r;
  r.add_replication(collector_with(0, 5, 1));
  r.add_replication(collector_with(7, 5, 1));
  const auto classes = r.classes();
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_EQ(classes[0], 0);
  EXPECT_EQ(classes[1], 7);
}

TEST(Report, OverallMissedWorkAggregates) {
  Report r;
  Collector a, b;
  a.record(0, 0.0, true, false, 2.0);
  a.record(0, 0.0, false, false, 2.0);  // 0.5 missed-work
  b.record(0, 0.0, false, false, 2.0);  // 0.0
  r.add_replication(a);
  r.add_replication(b);
  EXPECT_DOUBLE_EQ(r.overall_missed_work().mean, 0.25);
}

}  // namespace
