// Seeded protocol fuzzer for the serve front door: >=10k hostile lines
// through ServeSession — zero crashes, every line answered or ignored,
// and the whole run byte-deterministic (run twice, compare).  CI runs
// this under ASan/UBSan (scripts/check_sanitizers.sh) and again with
// SDA_VALIDATE=1 so the invariant oracle audits the admission state the
// garbage leaves behind.
#include "src/exp/serve.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/rng.hpp"

namespace {

using namespace sda;

/// Deterministic line generator: a mix of byte garbage, structurally
/// plausible-but-wrong records, boundary-sized payloads, and valid
/// traffic (so the fuzz stream also exercises the stateful paths —
/// duplicate ids, done/pump, clock checks — not just the parser).
class LineGen {
 public:
  explicit LineGen(std::uint64_t seed) : rng_(seed) {}

  /// Well-formed traffic only (still adversarial about ordering).
  std::string next_valid() {
    return rng_.uniform_int(0, 3) == 0 ? valid_done() : valid_sub();
  }

  std::string next() {
    switch (rng_.uniform_int(0, 9)) {
      case 0: return random_bytes(rng_.uniform_int(0, 200));
      case 1: return mutated_valid();
      case 2: return keyword_soup();
      case 3: return boundary_sized();
      case 4: return valid_sub();
      case 5: return valid_done();
      case 6: return "# comment " + random_bytes(rng_.uniform_int(0, 40));
      case 7: return numbers_from_hell();
      case 8: return duplicate_or_overflow_keys();
      default: return "";
    }
  }

 private:
  std::string random_bytes(int n) {
    std::string out;
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      out.push_back(static_cast<char>(rng_.uniform_int(0, 255)));
    }
    // Newlines would split into several protocol lines and break the
    // one-line-per-call accounting; the splitter path is covered by
    // test_protocol / test_net.
    for (char& c : out) {
      if (c == '\n') c = ' ';
    }
    return out;
  }

  std::string valid_sub() {
    clock_ += rng_.uniform(0.0, 2.0);
    return "sub id=" + std::to_string(next_id_++) +
           " at=" + std::to_string(clock_) +
           " deadline=" + std::to_string(rng_.uniform(0.5, 10.0)) +
           (rng_.uniform_int(0, 1) != 0 ? " tree=a@0:1/1"
                                        : " tree=[a@0:1/1 || b@1:2/2]");
  }

  std::string valid_done() {
    // Sometimes a live id, usually not: both branches must be answered.
    const std::uint64_t id =
        static_cast<std::uint64_t>(rng_.uniform_int(1, 40));
    std::string line = "done id=" + std::to_string(id);
    if (rng_.uniform_int(0, 1) != 0) {
      line += " at=" + std::to_string(clock_);
    }
    if (rng_.uniform_int(0, 3) == 0) {
      line += " leaf=" + std::to_string(rng_.uniform_int(0, 3));
    }
    return line;
  }

  std::string mutated_valid() {
    std::string line = valid_sub();
    // Flip a handful of bytes.
    const int flips = rng_.uniform_int(1, 4);
    for (int i = 0; i < flips && !line.empty(); ++i) {
      const std::size_t pos = static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<int>(line.size()) - 1));
      line[pos] = static_cast<char>(rng_.uniform_int(1, 255));
    }
    for (char& c : line) {
      if (c == '\n') c = ' ';
    }
    return line;
  }

  std::string keyword_soup() {
    static const char* words[] = {"sub",  "done",  "id=",   "at=",
                                  "tree=", "leaf=", "deadline=", "=",
                                  "==",   "@",     "||",    "->"};
    std::string out;
    const int n = rng_.uniform_int(1, 8);
    for (int i = 0; i < n; ++i) {
      out += words[rng_.uniform_int(0, 11)];
      out += rng_.uniform_int(0, 2) == 0 ? "" : " ";
    }
    return out;
  }

  std::string boundary_sized() {
    // Straddle every limit: value (64), tree (8K), line (64K).
    switch (rng_.uniform_int(0, 2)) {
      case 0:
        return "sub id=" + std::string(
                               static_cast<std::size_t>(
                                   rng_.uniform_int(60, 70)),
                               '1');
      case 1:
        return "sub id=1 at=0 deadline=5 tree=" +
               std::string(static_cast<std::size_t>(
                               rng_.uniform_int(8 * 1024 - 8, 8 * 1024 + 8)),
                           'a');
      default:
        return std::string(static_cast<std::size_t>(rng_.uniform_int(
                               64 * 1024 - 8, 64 * 1024 + 8)),
                           'z');
    }
  }

  std::string numbers_from_hell() {
    static const char* values[] = {"nan",  "inf",  "-inf", "1e309",
                                   "-0",   "0x10", "1.",   ".5",
                                   "1e-400", "99999999999999999999999999",
                                   "18446744073709551616", "-1"};
    return std::string("sub id=1 at=") + values[rng_.uniform_int(0, 11)] +
           " deadline=" + values[rng_.uniform_int(0, 11)] + " tree=a@0:1/1";
  }

  std::string duplicate_or_overflow_keys() {
    if (rng_.uniform_int(0, 1) == 0) {
      return "sub id=1 id=2 at=0 at=1 deadline=5 deadline=6 tree=a tree=b";
    }
    std::string out = "sub";
    for (int i = 0; i < 20; ++i) out += " id=1";
    return out;
  }

  util::Rng rng_;
  std::uint64_t next_id_ = 1;
  double clock_ = 0.0;
};

struct FuzzRun {
  std::string output;
  std::uint64_t handled = 0;
  exp::ServeResult result;
};

FuzzRun run_fuzz(std::uint64_t seed, int iterations, bool valid_only = false) {
  exp::ServeOptions options;
  options.admission.node_count = 2;
  options.admission.queue_capacity = 4;
  exp::ServeSession session(options);
  LineGen gen(seed);
  FuzzRun run;
  std::vector<exp::ServeSession::Reply> replies;
  for (int i = 0; i < iterations; ++i) {
    const std::string line = valid_only ? gen.next_valid() : gen.next();
    replies.clear();
    session.handle_line(line, replies);
    for (const exp::ServeSession::Reply& r : replies) run.output += r.line;
    ++run.handled;
  }
  replies.clear();
  session.finish(replies);
  for (const exp::ServeSession::Reply& r : replies) run.output += r.line;
  run.result = session.result();
  return run;
}

TEST(ServeFuzz, TenThousandHostileLinesNeverCrashAndStayDeterministic) {
  // The headline contract: >=10k seeded malformed messages, zero
  // crashes, and byte-identical output across two runs of each seed.
  constexpr int kIterations = 4000;
  constexpr std::uint64_t kSeeds[] = {1, 0xDEAD, 0xC0FFEE};
  std::uint64_t total = 0;
  for (const std::uint64_t seed : kSeeds) {
    const FuzzRun first = run_fuzz(seed, kIterations);
    const FuzzRun second = run_fuzz(seed, kIterations);
    EXPECT_EQ(first.output, second.output) << "seed " << seed;
    EXPECT_EQ(first.result.errors, second.result.errors) << "seed " << seed;
    total += first.handled;
    // The stream survived to the summary.
    EXPECT_NE(first.output.find("\"schema\":\"sda.serve.summary.v1\""),
              std::string::npos);
    // Garbage-heavy input must actually produce structured errors (the
    // generator would be broken if everything parsed).
    EXPECT_GT(first.result.errors, 0u) << "seed " << seed;
    EXPECT_GT(first.result.submissions, 0u) << "seed " << seed;
  }
  EXPECT_GE(total, 10'000u);
}

TEST(ServeFuzz, EverySubmissionIsEventuallyDecided) {
  // Conservation law: on a stream of well-formed lines, every sub gets
  // exactly one decision by the EOF flush.  (Garbage streams break the
  // equality only through subs whose *tree* fails semantic validation —
  // counted as submissions, answered with an error record.)
  const FuzzRun run = run_fuzz(0xF00D, 3000, /*valid_only=*/true);
  EXPECT_GT(run.result.submissions, 1000u);
  EXPECT_EQ(run.result.decisions, run.result.submissions);

  // And under garbage, decisions never exceed submissions.
  const FuzzRun dirty = run_fuzz(0xF00D, 3000);
  EXPECT_LE(dirty.result.decisions, dirty.result.submissions);
}

}  // namespace
