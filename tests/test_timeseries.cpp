// Unit tests for the windowed miss-rate time series.
#include "src/metrics/timeseries.hpp"

#include <gtest/gtest.h>

namespace {

using sda::metrics::MissTimeSeries;

TEST(TimeSeries, Validation) {
  EXPECT_THROW(MissTimeSeries(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(MissTimeSeries(10.0, 0.0), std::invalid_argument);
  EXPECT_THROW(MissTimeSeries(10.0, 20.0), std::invalid_argument);
}

TEST(TimeSeries, WindowCountAndEdges) {
  MissTimeSeries s(100.0, 10.0);
  EXPECT_EQ(s.windows(), 10u);
  EXPECT_DOUBLE_EQ(s.window_start(0), 0.0);
  EXPECT_DOUBLE_EQ(s.window_start(9), 90.0);
  MissTimeSeries uneven(95.0, 10.0);  // ceil -> 10 windows
  EXPECT_EQ(uneven.windows(), 10u);
}

TEST(TimeSeries, RecordsIntoRightWindow) {
  MissTimeSeries s(30.0, 10.0);
  s.record(0.0, false);
  s.record(9.99, true);
  s.record(10.0, true);
  s.record(29.0, false);
  EXPECT_EQ(s.finished(0), 2u);
  EXPECT_EQ(s.missed(0), 1u);
  EXPECT_EQ(s.finished(1), 1u);
  EXPECT_EQ(s.missed(1), 1u);
  EXPECT_EQ(s.finished(2), 1u);
  EXPECT_DOUBLE_EQ(s.miss_rate(0), 0.5);
  EXPECT_DOUBLE_EQ(s.miss_rate(1), 1.0);
  EXPECT_DOUBLE_EQ(s.miss_rate(2), 0.0);
}

TEST(TimeSeries, OutOfRangeIgnored) {
  MissTimeSeries s(10.0, 5.0);
  s.record(-1.0, true);
  s.record(10.0, true);
  s.record(1e9, true);
  EXPECT_EQ(s.finished(0) + s.finished(1), 0u);
}

TEST(TimeSeries, PeakRespectsMinSamples) {
  MissTimeSeries s(30.0, 10.0);
  // Window 0: one missed task (rate 1.0, but only 1 sample).
  s.record(1.0, true);
  // Window 1: 10 tasks, 4 missed.
  for (int i = 0; i < 10; ++i) s.record(11.0, i < 4);
  EXPECT_DOUBLE_EQ(s.peak_miss_rate(10), 0.4);
  EXPECT_DOUBLE_EQ(s.peak_miss_rate(1), 1.0);
  EXPECT_DOUBLE_EQ(s.peak_miss_rate(100), 0.0);
}

TEST(TimeSeries, RatesVector) {
  MissTimeSeries s(20.0, 10.0);
  s.record(5.0, true);
  const auto rates = s.rates();
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_DOUBLE_EQ(rates[0], 1.0);
  EXPECT_DOUBLE_EQ(rates[1], 0.0);
}

}  // namespace
