// ExperimentConfig key=value API: golden round trip over every public
// field, typo suggestions, value parsing, and config validation.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "src/exp/config.hpp"
#include "src/exp/runner.hpp"

namespace {

using namespace sda;
using exp::ExperimentConfig;

/// Applies to_kv() output to a fresh baseline and expects an identical
/// to_kv() back — the round-trip contract set() and get() must keep.
void expect_round_trip(const ExperimentConfig& original) {
  ExperimentConfig rebuilt = exp::baseline_config();
  for (const auto& [key, value] : original.to_kv()) rebuilt.set(key, value);
  const auto a = original.to_kv();
  const auto b = rebuilt.to_kv();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first);
    EXPECT_EQ(a[i].second, b[i].second) << "key " << a[i].first;
  }
}

TEST(ConfigKv, RoundTripBaseline) { expect_round_trip(exp::baseline_config()); }

TEST(ConfigKv, RoundTripGraphConfig) { expect_round_trip(exp::graph_config()); }

// The golden: every public field moved off its default, including every
// enum/list/custom codec, survives to_kv -> set exactly.
TEST(ConfigKv, RoundTripEveryFieldNonDefault) {
  ExperimentConfig c = exp::baseline_config();
  c.k = 9;
  c.scheduler_policy = "llf";
  c.local_abort = sched::LocalAbortPolicy::kAbortOnVirtualDeadline;
  c.preemptive = true;
  c.node_speeds = {1.25, 0.5, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.3333333333333333};
  c.psp = "div-2.5";
  c.ssp = "eqf";
  c.pm_abort = core::PmAbortMode::kRealDeadline;
  c.subtasks_non_abortable = true;
  c.load = 0.7123456789;
  c.frac_local = 0.6;
  c.mu_local = 1.5;
  c.mu_subtask = 0.75;
  c.local_burst_factor = 3.0;
  c.local_burst_cycle = 42.0;
  c.service_dist = "hyperexp";
  c.service_cv = 2.5;
  c.slack_min = 1.0;
  c.slack_max = 9.5;
  c.global_kind = exp::GlobalKind::kGraph;
  c.n_min = 2;
  c.n_max = 8;
  c.stage_widths = {2, 3, 1};
  c.link_count = 2;
  c.mean_msg_time = 0.125;
  c.global_slack_min = 3.0;
  c.global_slack_max = 30.0;
  c.pex = workload::PexModel::log_uniform(1.7);
  c.subtask_exec_spread = 2.0;
  c.placement = "least-queued";
  c.tardiness_histograms = true;
  c.distributions = true;
  c.fault_rate = 0.01;
  c.crash_mean_uptime = 5000.0;
  c.crash_mean_downtime = 50.0;
  c.crash_discards_queue = false;
  c.msg_loss_rate = 0.001;
  c.msg_extra_delay_mean = 0.1;
  c.max_retries_per_run = 3;
  c.retry_backoff_base = 0.5;
  c.retry_backoff_factor = 3.0;
  c.retry_failover = false;
  c.retry_deadline = "stale";
  c.shed_negative_slack = false;
  c.admission = true;
  c.admission_tests = "util,ct,sp";
  c.admission_util_bound = 0.95;
  c.admission_enter_degraded = 0.65;
  c.admission_exit_degraded = 0.5;
  c.admission_enter_shedding = 0.85;
  c.admission_exit_shedding = 0.75;
  c.admission_pressure_alpha = 0.45;
  c.admission_degrade_stretch = 2.0;
  c.admission_shed_headroom = 0.2;
  c.admission_plan_cache = false;
  c.admission_plan_cache_capacity = 128;
  c.global_burst_factor = 4.0;
  c.global_burst_cycle = 99.0;
  c.shards = 3;
  c.net_latency = 0.25;
  c.timer_queue = "wheel";
  c.sim_time = 12345.6789;
  c.warmup_fraction = 0.1;
  c.replications = 7;
  c.seed = 0xdeadbeefcafeULL;
  expect_round_trip(c);

  // And none of those values still matches the baseline rendering: the
  // round trip above exercised a real change for every key.
  const ExperimentConfig base = exp::baseline_config();
  for (const auto& [key, value] : c.to_kv()) {
    EXPECT_NE(value, base.get(key)) << "field '" << key
                                    << "' was not moved off its default";
  }
}

TEST(ConfigKv, GetReturnsWhatSetStored) {
  ExperimentConfig c = exp::baseline_config();
  c.set("psp", "gf-0.25");
  EXPECT_EQ(c.get("psp"), "gf-0.25");
  c.set("node_speeds", "2,1,0.5");
  EXPECT_EQ(c.get("node_speeds"), "2,1,0.5");
  c.set("pex", "noise-1.5");
  EXPECT_EQ(c.get("pex"), "noise-1.5");
  c.set("pex", "exact");
  EXPECT_EQ(c.get("pex"), "exact");
  c.set("stage_widths", "1,2,3,4");
  ASSERT_EQ(c.stage_widths.size(), 4u);
  EXPECT_EQ(c.stage_widths[3], 4);
}

TEST(ConfigKv, DoubleRenderingRoundTripsExactly) {
  ExperimentConfig c = exp::baseline_config();
  c.load = 0.1 + 0.2;  // 0.30000000000000004 — shortest form must keep it
  ExperimentConfig d = exp::baseline_config();
  d.set("load", c.get("load"));
  EXPECT_EQ(d.load, c.load);  // sda-lint: allow(FLOAT_EQ)
}

TEST(ConfigKv, UnknownKeySuggests) {
  ExperimentConfig c = exp::baseline_config();
  try {
    c.set("sched_policy", "edf");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown config key"), std::string::npos) << msg;
    EXPECT_NE(msg.find("scheduler_policy"), std::string::npos) << msg;
    EXPECT_NE(msg.find("did you mean"), std::string::npos) << msg;
  }
  EXPECT_THROW(c.get("loda"), std::invalid_argument);
}

TEST(ConfigKv, BadValuesThrow) {
  ExperimentConfig c = exp::baseline_config();
  EXPECT_THROW(c.set("load", "fast"), std::invalid_argument);
  EXPECT_THROW(c.set("k", "6.5"), std::invalid_argument);
  EXPECT_THROW(c.set("preemptive", "maybe"), std::invalid_argument);
  EXPECT_THROW(c.set("global_kind", "serial"), std::invalid_argument);
  EXPECT_THROW(c.set("pex", "noisy-1"), std::invalid_argument);
  EXPECT_THROW(c.set("local_abort", "sometimes"), std::invalid_argument);
  EXPECT_THROW(c.set("node_speeds", "1,,2"), std::invalid_argument);
}

TEST(ConfigKv, BoolSpellings) {
  ExperimentConfig c = exp::baseline_config();
  for (const char* t : {"1", "true", "yes", "on"}) {
    c.set("preemptive", t);
    EXPECT_TRUE(c.preemptive) << t;
  }
  for (const char* f : {"0", "false", "no", "off"}) {
    c.set("preemptive", f);
    EXPECT_FALSE(c.preemptive) << f;
  }
}

TEST(ConfigKv, KnownKeysMatchToKv) {
  const auto keys = ExperimentConfig::known_keys();
  const auto kv = exp::baseline_config().to_kv();
  ASSERT_EQ(keys.size(), kv.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(keys[i], kv[i].first);
  }
}

// --- validation ------------------------------------------------------------

TEST(ConfigValidate, BaselineIsValid) {
  EXPECT_TRUE(exp::baseline_config().validate().empty());
  EXPECT_NO_THROW(exp::baseline_config().validate_or_throw());
  EXPECT_TRUE(exp::graph_config().validate().empty());
}

TEST(ConfigValidate, ProblemsAreCollectedNotFirstOnly) {
  ExperimentConfig c = exp::baseline_config();
  c.k = 0;
  c.load = -0.5;
  c.slack_min = 10.0;  // > slack_max
  const auto problems = c.validate();
  EXPECT_GE(problems.size(), 3u);
}

TEST(ConfigValidate, RunOnceRejectsInvalidConfigs) {
  ExperimentConfig c = exp::baseline_config();
  c.node_speeds = {1.0, 2.0};  // wrong length for k=6
  EXPECT_THROW(exp::run_once(c, 1), std::invalid_argument);
  EXPECT_THROW(c.validate_or_throw(), std::invalid_argument);
}

TEST(ConfigValidate, ShardBoundsAreChecked) {
  ExperimentConfig c = exp::baseline_config();
  c.shards = 0;
  EXPECT_FALSE(c.validate().empty());
  c.shards = c.k + 1;  // more shards than lanes to put them on
  EXPECT_FALSE(c.validate().empty());
  c.shards = c.k;
  EXPECT_TRUE(c.validate().empty());
  c.net_latency = -0.5;
  EXPECT_FALSE(c.validate().empty());
  c.net_latency = 0.0;
  c.placement = "least-queued";  // reads live node state across shards
  EXPECT_FALSE(c.validate().empty());
  c.shards = 1;
  EXPECT_TRUE(c.validate().empty());
}

TEST(ConfigValidate, GraphShardsMayUseLinkLanes) {
  ExperimentConfig c = exp::graph_config();
  c.link_count = 2;
  c.shards = c.k + 2;  // compute lanes + link lanes
  EXPECT_TRUE(c.validate().empty());
  c.shards = c.k + 3;
  EXPECT_FALSE(c.validate().empty());
}

TEST(ConfigValidate, SetThenValidateCatchesCrossFieldInconsistency) {
  ExperimentConfig c = exp::baseline_config();
  c.set("global_kind", "graph");
  c.set("stage_widths", "");
  EXPECT_FALSE(c.validate().empty());
}

}  // namespace
