// Unit and property tests for the PSP strategies (UD, DIV-x, GF).
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "src/core/psp_div.hpp"
#include "src/core/psp_gf.hpp"
#include "src/core/psp_ud.hpp"
#include "src/core/strategy.hpp"

namespace {

using namespace sda::core;

PspContext ctx(double now, double deadline, int n) {
  PspContext c;
  c.now = now;
  c.deadline = deadline;
  c.branch_count = n;
  return c;
}

TEST(PspUd, InheritsGlobalDeadline) {
  PspUltimateDeadline ud;
  EXPECT_DOUBLE_EQ(ud.assign(ctx(0.0, 9.0, 3), 0, 1.0), 9.0);
  EXPECT_DOUBLE_EQ(ud.assign(ctx(4.0, 9.0, 5), 2, 0.1), 9.0);
  EXPECT_EQ(ud.name(), "UD");
}

TEST(PspDiv, PaperFigure4Examples) {
  // T = [T1 || T2 || T3], arrival 0, deadline 9:
  // DIV-1 -> (9-0)/(3*1) + 0 = 3;  DIV-2 -> 9/6 = 1.5.
  PspDiv div1(1.0), div2(2.0);
  EXPECT_DOUBLE_EQ(div1.assign(ctx(0.0, 9.0, 3), 0, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(div2.assign(ctx(0.0, 9.0, 3), 0, 1.0), 1.5);
}

TEST(PspDiv, RelativeToArrival) {
  // Equation 1 is anchored at ar(T), not at absolute zero.
  PspDiv div1(1.0);
  EXPECT_DOUBLE_EQ(div1.assign(ctx(10.0, 19.0, 3), 0, 1.0), 13.0);
}

TEST(PspDiv, BranchIndexIrrelevant) {
  PspDiv div1(1.0);
  const auto c = ctx(2.0, 10.0, 4);
  for (int b = 0; b < 4; ++b) {
    EXPECT_DOUBLE_EQ(div1.assign(c, b, static_cast<double>(b)),
                     div1.assign(c, 0, 0.0));
  }
}

TEST(PspDiv, NameFormatting) {
  EXPECT_EQ(PspDiv(1.0).name(), "DIV-1");
  EXPECT_EQ(PspDiv(2.0).name(), "DIV-2");
  EXPECT_EQ(PspDiv(2.5).name(), "DIV-2.5");
}

TEST(PspDiv, RejectsNonPositiveX) {
  EXPECT_THROW(PspDiv(0.0), std::invalid_argument);
  EXPECT_THROW(PspDiv(-1.0), std::invalid_argument);
}

TEST(PspGf, SubtractsDelta) {
  PspGlobalsFirst gf(1000.0);
  EXPECT_DOUBLE_EQ(gf.assign(ctx(0.0, 9.0, 3), 0, 1.0), 9.0 - 1000.0);
  EXPECT_EQ(gf.name(), "GF");
  EXPECT_DOUBLE_EQ(gf.delta(), 1000.0);
}

TEST(PspGf, PreservesEdfOrderWithinGlobals) {
  // Two globals, deadlines 9 and 12: shifted deadlines keep their order.
  PspGlobalsFirst gf;
  const double a = gf.assign(ctx(0.0, 9.0, 2), 0, 1.0);
  const double b = gf.assign(ctx(0.0, 12.0, 2), 0, 1.0);
  EXPECT_LT(a, b);
  EXPECT_DOUBLE_EQ(b - a, 3.0);
}

TEST(PspGf, AlwaysBeatsAnyPlausibleLocalDeadline) {
  PspGlobalsFirst gf;  // default DELTA = 1e9
  const double assigned = gf.assign(ctx(1e6, 1e6 + 10.0, 4), 0, 1.0);
  EXPECT_LT(assigned, 0.0);  // far before any arrival time in the horizon
}

TEST(PspGf, RejectsNonPositiveDelta) {
  EXPECT_THROW(PspGlobalsFirst(0.0), std::invalid_argument);
  EXPECT_THROW(PspGlobalsFirst(-5.0), std::invalid_argument);
}

TEST(PspFactory, ParsesKnownNames) {
  EXPECT_EQ(make_psp_strategy("ud")->name(), "UD");
  EXPECT_EQ(make_psp_strategy("UD")->name(), "UD");
  EXPECT_EQ(make_psp_strategy("div-1")->name(), "DIV-1");
  EXPECT_EQ(make_psp_strategy("DIV-2")->name(), "DIV-2");
  EXPECT_EQ(make_psp_strategy("div-0.5")->name(), "DIV-0.5");
  EXPECT_EQ(make_psp_strategy("gf")->name(), "GF");
  EXPECT_EQ(make_psp_strategy("gf-100")->name(), "GF");
}

TEST(PspFactory, RejectsUnknownNames) {
  EXPECT_THROW(make_psp_strategy("div"), std::invalid_argument);
  EXPECT_THROW(make_psp_strategy("div-"), std::invalid_argument);
  EXPECT_THROW(make_psp_strategy("div-x"), std::invalid_argument);
  EXPECT_THROW(make_psp_strategy("div-0"), std::invalid_argument);
  EXPECT_THROW(make_psp_strategy("first"), std::invalid_argument);
  EXPECT_THROW(make_psp_strategy(""), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Property sweep: DIV-x monotonicity in x and n (paper §7.1: the n*x product
// drives the priority boost).
// ---------------------------------------------------------------------------

class DivMonotonicity : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(DivMonotonicity, EarlierDeadlineForBiggerXAndN) {
  const auto [n, x] = GetParam();
  PspDiv div(x);
  const auto c = ctx(1.0, 21.0, n);
  const double assigned = div.assign(c, 0, 1.0);

  // Later than arrival for any positive allowance; within the deadline
  // whenever the divisor n*x is at least 1 (n*x < 1 legitimately *extends*
  // the deadline — the formula divides the allowance by n*x).
  EXPECT_GT(assigned, c.now);
  if (n * x >= 1.0) {
    EXPECT_LE(assigned, c.deadline);
  }

  // Monotone: bigger x gives an earlier (or equal) deadline.
  PspDiv bigger(x * 2.0);
  EXPECT_LT(bigger.assign(c, 0, 1.0), assigned);

  // Monotone in n: more branches give an earlier deadline.
  auto c_more = ctx(1.0, 21.0, n + 1);
  EXPECT_LT(div.assign(c_more, 0, 1.0), assigned);

  // The n*x product is what matters: DIV-x with n branches equals
  // DIV-(x*n) with 1 branch.
  PspDiv equivalent(x * n);
  EXPECT_NEAR(equivalent.assign(ctx(1.0, 21.0, 1), 0, 1.0), assigned, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DivMonotonicity,
    ::testing::Combine(::testing::Values(1, 2, 4, 6, 16),
                       ::testing::Values(0.25, 0.5, 1.0, 2.0, 10.0)));

// GF is a rigid translation: differences between any two assignments equal
// the differences of the composite deadlines.
class GfTranslation : public ::testing::TestWithParam<double> {};

TEST_P(GfTranslation, RigidShift) {
  const double delta = GetParam();
  PspGlobalsFirst gf(delta);
  for (double d1 : {3.0, 9.0, 27.0}) {
    for (double d2 : {4.0, 8.0, 100.0}) {
      const double a = gf.assign(ctx(0.0, d1, 3), 0, 1.0);
      const double b = gf.assign(ctx(0.0, d2, 3), 0, 1.0);
      EXPECT_NEAR(b - a, d2 - d1, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Deltas, GfTranslation,
                         ::testing::Values(1.0, 100.0, 1e9));

}  // namespace
