// Hot-path allocators (src/util/arena.*): the chunked bump Arena and the
// per-thread size-class pool behind task::TreeNode's pooled operator new
// and the pooled SimpleTask factories.  The interesting properties are the
// ones ASan/LSan can falsify: reset-and-reuse returns the same storage
// without leaking, cross-thread frees land safely, and interleaved tree
// clone/destroy churn recycles blocks instead of growing without bound.
#include "src/util/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "src/task/task.hpp"
#include "src/task/tree.hpp"

namespace {

using sda::util::Arena;

TEST(Arena, AlignmentAndDistinctness) {
  Arena a;
  void* p1 = a.allocate(1, 1);
  void* p8 = a.allocate(8, 8);
  void* p64 = a.allocate(64, 64);
  EXPECT_NE(p1, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p8) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p64) % 64, 0u);
  EXPECT_NE(p1, p8);
  EXPECT_NE(p8, p64);
  EXPECT_GE(a.bytes_allocated(), 1u + 8u + 64u);
}

TEST(Arena, ZeroByteRequestYieldsUsablePointer) {
  Arena a;
  void* p = a.allocate(0);
  EXPECT_NE(p, nullptr);
}

TEST(Arena, GrowsAcrossChunks) {
  // First chunk is 64 bytes; allocating far more forces chunk growth, and
  // every block must stay writable (ASan checks the bounds for us).
  Arena a(64);
  std::vector<unsigned char*> blocks;
  for (int i = 0; i < 200; ++i) {
    auto* p = static_cast<unsigned char*>(a.allocate(48, 16));
    std::memset(p, i & 0xff, 48);
    blocks.push_back(p);
  }
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(blocks[static_cast<std::size_t>(i)][0], i & 0xff);
  }
  EXPECT_GE(a.bytes_reserved(), 200u * 48u);
}

TEST(Arena, ResetReusesStorageWithoutGrowth) {
  Arena a(64);
  for (int i = 0; i < 100; ++i) (void)a.allocate(96, 16);
  const std::size_t reserved = a.bytes_reserved();
  ASSERT_GT(reserved, 0u);
  // Steady state: identical allocation pattern after reset() must be
  // served entirely from the chunks already owned.
  for (int round = 0; round < 10; ++round) {
    a.reset();
    EXPECT_EQ(a.bytes_allocated(), 0u);
    for (int i = 0; i < 100; ++i) (void)a.allocate(96, 16);
    EXPECT_EQ(a.bytes_reserved(), reserved) << "round " << round;
  }
}

TEST(Arena, AllocArrayIsTyped) {
  Arena a;
  double* d = a.alloc_array<double>(32);
  for (int i = 0; i < 32; ++i) d[i] = i * 0.5;
  EXPECT_DOUBLE_EQ(d[31], 15.5);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % alignof(double), 0u);
}

// --- size-class pool --------------------------------------------------------

TEST(Pool, RecyclesBlocks) {
  // Same-size alloc/free cycles must recycle the freed block (the free
  // list is LIFO), so the reserved footprint stays flat.
  void* first = sda::util::pool_alloc(128);
  sda::util::pool_free(first, 128);
  const std::size_t reserved = sda::util::pool_bytes_reserved();
  for (int i = 0; i < 10000; ++i) {
    void* p = sda::util::pool_alloc(128);
    EXPECT_EQ(p, first);
    sda::util::pool_free(p, 128);
  }
  EXPECT_EQ(sda::util::pool_bytes_reserved(), reserved);
}

TEST(Pool, LargeBlocksBypassPool) {
  // Above kPoolMaxBytes the pool falls through to the global allocator;
  // a correct free of such a block must not corrupt the free lists.
  void* p = sda::util::pool_alloc(sda::util::kPoolMaxBytes + 1);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xab, sda::util::kPoolMaxBytes + 1);
  sda::util::pool_free(p, sda::util::kPoolMaxBytes + 1);
}

TEST(Pool, CrossThreadFreeIsSafe) {
  // Blocks allocated here, freed on other threads (and vice versa): the
  // chunks are immortal, so every pointer stays valid; TSan/ASan verify
  // the handoff.  This is exactly the sharded runner's task lifecycle —
  // a SimpleTask allocated on the submit lane dies on the node lane.
  constexpr int kPerThread = 500;
  std::vector<void*> mine;
  mine.reserve(kPerThread);
  for (int i = 0; i < kPerThread; ++i) mine.push_back(sda::util::pool_alloc(64));
  std::thread t([blocks = std::move(mine)] {
    for (void* p : blocks) sda::util::pool_free(p, 64);
  });
  t.join();

  std::vector<void*> theirs;
  std::thread t2([&theirs] {
    for (int i = 0; i < kPerThread; ++i) {
      theirs.push_back(sda::util::pool_alloc(48));
    }
  });
  t2.join();
  for (void* p : theirs) sda::util::pool_free(p, 48);
}

TEST(Pool, AllocateSharedTask) {
  // The pooled SimpleTask factory path: control block + object in one
  // pooled allocation, recycled on release.
  auto t1 = sda::task::make_local_task(1, 0, 0.0, 1.0, 3.0);
  ASSERT_TRUE(t1);
  EXPECT_EQ(t1->id, 1u);
  t1.reset();
  auto t2 = sda::task::make_subtask(2, 7, 0, 0.0, 1.0, 1.0, 9.0);
  ASSERT_TRUE(t2);
  EXPECT_EQ(t2->owner_run, 7u);
}

// --- pooled TreeNode churn --------------------------------------------------

sda::task::TreePtr sample_tree() {
  using namespace sda::task;
  std::vector<TreePtr> stages;
  stages.push_back(make_leaf(0, 1.0, 1.5));
  std::vector<TreePtr> branches;
  branches.push_back(make_leaf(1, 2.0, 2.5));
  branches.push_back(make_leaf(2, 3.0, 3.5));
  stages.push_back(make_parallel(std::move(branches)));
  stages.push_back(make_leaf(0, 0.5, 0.75));
  return make_serial(std::move(stages));
}

TEST(Pool, InterleavedTreeClones) {
  // Clone/destroy interleaving at different lifetimes — the process
  // manager's steady state.  Under ASan this catches any pooled
  // operator new/delete mismatch; the liveness checks catch recycled
  // blocks being handed out while still referenced.
  const sda::task::TreePtr proto = sample_tree();
  std::vector<sda::task::TreePtr> held;
  for (int i = 0; i < 300; ++i) {
    held.push_back(sda::task::clone(*proto));
    if (i % 3 == 0 && !held.empty()) held.erase(held.begin());
    if (i % 7 == 0) held.push_back(sda::task::clone(*proto));
  }
  for (const auto& t : held) {
    ASSERT_TRUE(t);
    EXPECT_TRUE(t->is_serial());
    EXPECT_EQ(t->children.size(), 3u);
    EXPECT_DOUBLE_EQ(t->children[0]->exec_time, 1.0);
  }
  held.clear();
  // After the churn the pool serves a fresh clone from recycled storage
  // without growing (single-threaded here, so the footprint is stable).
  const std::size_t reserved = sda::util::pool_bytes_reserved();
  for (int i = 0; i < 100; ++i) {
    auto t = sda::task::clone(*proto);
  }
  EXPECT_EQ(sda::util::pool_bytes_reserved(), reserved);
}

}  // namespace
