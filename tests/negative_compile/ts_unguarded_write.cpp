// Seeded violation: writing a GUARDED_BY field without holding its
// mutex.  This file MUST FAIL to compile under
// -Wthread-safety -Werror=thread-safety — it is the lock-free-field-write
// shape the annotations exist to catch (scripts/check_thread_safety.sh
// asserts the failure).
#include "src/util/mutex.hpp"

namespace {

class Counter {
 public:
  // BAD: mutates value_ with mu_ not held.
  void add_racy(int delta) { value_ += delta; }

 private:
  sda::util::Mutex mu_;
  int value_ SDA_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.add_racy(1);
  return 0;
}
