// Seeded violation: returning a mutable reference to a GUARDED_BY field
// from a function that does not hold (or require) the guarding mutex —
// the caller can then mutate the field lock-free forever.  This file
// MUST FAIL to compile under -Wthread-safety -Werror=thread-safety
// (scripts/check_thread_safety.sh asserts the failure).
#include "src/util/mutex.hpp"

namespace {

class Table {
 public:
  // BAD: hands out a reference to guarded state with no lock held.
  int& slot_escape() { return slot_; }

 private:
  sda::util::Mutex mu_;
  int slot_ SDA_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Table t;
  t.slot_escape() = 7;
  return 0;
}
