// Seeded violation: lock-order / exclusion mismatch.  Two shapes in one
// fixture, both of which -Wthread-safety rejects:
//
//   1. re-acquiring a non-reentrant Mutex already held on this path
//      (self-deadlock — the degenerate lock-order cycle), and
//   2. calling a function annotated SDA_EXCLUDES(mu) while holding mu —
//      the annotation-level contract the repo uses instead of
//      ACQUIRED_BEFORE/AFTER (which needs -Wthread-safety-beta).
//
// This file MUST FAIL to compile under -Wthread-safety
// -Werror=thread-safety (scripts/check_thread_safety.sh asserts it).
#include "src/util/mutex.hpp"

namespace {

class Account {
 public:
  void audit() SDA_EXCLUDES(mu_) {
    sda::util::LockGuard lk(mu_);
    ++audits_;
  }

  // BAD (shape 2): calls audit(), which excludes mu_, with mu_ held.
  void close() {
    sda::util::LockGuard lk(mu_);
    audit();
  }

  // BAD (shape 1): acquires mu_ twice on the same path.
  void double_lock() {
    mu_.lock();
    mu_.lock();
    mu_.unlock();
    mu_.unlock();
  }

 private:
  sda::util::Mutex mu_;
  long audits_ SDA_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account a;
  a.close();
  a.double_lock();
  return 0;
}
