// Positive control for the thread-safety negative-compile harness:
// exercises every wrapper (Mutex, LockGuard, CondVar, ThreadRole,
// RoleGuard) the *right* way.  This file MUST compile cleanly under
// -Wthread-safety -Werror=thread-safety; if it does not, the harness is
// rejecting correct code and the seeded-violation results are
// meaningless.
#include "src/util/mutex.hpp"

namespace {

class Counter {
 public:
  void add(int delta) {
    sda::util::LockGuard lk(mu_);
    value_ += delta;
    if (value_ > 0) cv_.notify_one();
  }

  int wait_positive() {
    mu_.lock();
    while (value_ <= 0) cv_.wait(mu_);
    const int snapshot = value_;
    mu_.unlock();
    return snapshot;
  }

  int locked_read() SDA_REQUIRES(mu_) { return value_; }

  int read_via_helper() {
    sda::util::LockGuard lk(mu_);
    return locked_read();
  }

 private:
  sda::util::Mutex mu_;
  sda::util::CondVar cv_;
  int value_ SDA_GUARDED_BY(mu_) = 0;
};

class SingleOwner {
 public:
  void touch() {
    sda::util::RoleGuard own(owner_);
    bump();
  }

 private:
  void bump() SDA_REQUIRES(owner_) { ++ticks_; }

  sda::util::ThreadRole owner_;
  long ticks_ SDA_GUARDED_BY(owner_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.add(1);
  SingleOwner s;
  s.touch();
  return c.wait_positive() + c.read_via_helper();
}
