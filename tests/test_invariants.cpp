// Tests of the SDA_VALIDATE invariant oracle (src/core/invariants.*).
//
// Two halves:
//   * the oracle must stay silent — and perturb nothing — on correct
//     executions across every built-in PSP x SSP pair;
//   * deliberately corrupted SDA output and heap state must trip it
//     (death tests matching the structured violation banner).
#include "src/core/invariants.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "src/core/process_manager.hpp"
#include "src/core/strategy.hpp"
#include "src/sched/edf.hpp"
#include "src/sched/indexed_heap.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/event_queue.hpp"
#include "src/task/notation.hpp"
#include "src/task/task.hpp"

namespace {

using namespace sda;
using core::ProcessManager;
using task::TaskPtr;

namespace oracle = core::invariants;

/// Scoped oracle switch: every test restores the disabled default so the
/// process-wide flag never leaks across tests.
class OracleGuard {
 public:
  explicit OracleGuard(bool on) { oracle::set_enabled(on); }
  ~OracleGuard() { oracle::set_enabled(false); }
};

// --- harness ---------------------------------------------------------------

struct Sim {
  std::unique_ptr<sim::Engine> engine;
  std::vector<std::unique_ptr<sched::Node>> nodes;
  std::vector<sched::Node*> node_ptrs;
  std::unique_ptr<ProcessManager> pm;
  std::vector<double> terminal_deadlines;  // subtask vdl in terminal order

  Sim(std::shared_ptr<const core::PspStrategy> psp,
      std::shared_ptr<const core::SspStrategy> ssp, int node_count = 6) {
    engine = std::make_unique<sim::Engine>();
    for (int i = 0; i < node_count; ++i) {
      sched::Node::Config nc;
      nc.index = i;
      nodes.push_back(std::make_unique<sched::Node>(
          *engine, std::make_unique<sched::EdfScheduler>(), nc));
      node_ptrs.push_back(nodes.back().get());
    }
    ProcessManager::Config pc;
    pc.psp = std::move(psp);
    pc.ssp = std::move(ssp);
    pm = std::make_unique<ProcessManager>(*engine, node_ptrs, std::move(pc));
    for (auto& n : nodes) {
      n->set_completion_handler(
          [this](const TaskPtr& t) { pm->handle_completion(t); });
    }
    pm->set_subtask_handler([this](const task::SimpleTask& t) {
      terminal_deadlines.push_back(t.attrs.virtual_deadline);
    });
  }

  Sim(const std::string& psp, const std::string& ssp)
      : Sim(std::shared_ptr<const core::PspStrategy>(
                core::make_psp_strategy(psp)),
            std::shared_ptr<const core::SspStrategy>(
                core::make_ssp_strategy(ssp))) {}
};

/// A task mixing serial chains, parallel fan-out, and nesting.
const char* kTree = "[A@0:1/1 [B@1:2/2 || [C@2:1/1 D@3:2/2] || E@4:1/1] F@5:2/2]";

std::vector<double> run_combo(const std::string& psp, const std::string& ssp,
                              double deadline) {
  Sim s(psp, ssp);
  s.pm->submit(task::parse_notation(kTree), deadline, 100, 1);
  s.engine->run();
  return s.terminal_deadlines;
}

// --- happy path: silent and side-effect-free -------------------------------

TEST(InvariantOracle, SilentAcrossAllStrategyCombos) {
  OracleGuard guard(true);
  for (const char* psp : {"ud", "div-1", "div-2", "gf"}) {
    for (const char* ssp : {"ud", "ed", "eqs", "eqf"}) {
      // Ample and tight (but feasible) windows; no death expected.
      const auto ample = run_combo(psp, ssp, 40.0);
      const auto tight = run_combo(psp, ssp, 8.5);
      EXPECT_EQ(ample.size(), 6u) << psp << "/" << ssp;
      EXPECT_EQ(tight.size(), 6u) << psp << "/" << ssp;
    }
  }
}

TEST(InvariantOracle, ChecksArePure) {
  // Identical terminal deadlines with the oracle on and off: the checks
  // observe the simulation without perturbing it.
  std::vector<double> with_oracle, without_oracle;
  {
    OracleGuard guard(true);
    with_oracle = run_combo("div-1", "eqf", 20.0);
  }
  {
    OracleGuard guard(false);
    without_oracle = run_combo("div-1", "eqf", 20.0);
  }
  ASSERT_EQ(with_oracle.size(), without_oracle.size());
  for (std::size_t i = 0; i < with_oracle.size(); ++i) {
    EXPECT_DOUBLE_EQ(with_oracle[i], without_oracle[i]) << i;
  }
}

TEST(InvariantOracle, InfeasibleWindowsDoNotFalseAlarm) {
  OracleGuard guard(true);
  // Negative slack from the start: GF and EQS/EQF will produce deadlines
  // outside the window, which the gated checks must tolerate.
  for (const char* ssp : {"ud", "ed", "eqs", "eqf"}) {
    const auto out = run_combo("gf", ssp, 0.5);
    EXPECT_EQ(out.size(), 6u) << ssp;
  }
  // DIV with n*x < 1 spreads branch deadlines beyond the parent's: a
  // documented pathology the containment check explicitly stands down for
  // (custom strategies doing the same still abort — see EvilPsp below).
  const auto div_small = run_combo("div-0.2", "ud", 20.0);
  EXPECT_EQ(div_small.size(), 6u);
}

// --- corrupted SDA output trips the oracle ---------------------------------

struct EvilPsp final : core::PspStrategy {
  core::Time assign(const core::PspContext& ctx, int, core::Time) const
      override {
    return ctx.deadline + 5.0;  // outside the (feasible) parent window
  }
  std::string name() const override { return "evil-psp"; }
};

struct EvilSsp final : core::SspStrategy {
  core::Time assign(const core::SspContext& ctx) const override {
    return ctx.deadline - 1.0;  // final stage short of the composite's dl
  }
  std::string name() const override { return "evil-ssp"; }
};

TEST(InvariantOracleDeath, PspBranchBeyondParentWindowAborts) {
  OracleGuard guard(true);
  Sim s(std::make_shared<EvilPsp>(),
        std::shared_ptr<const core::SspStrategy>(core::make_ssp_strategy("ud")));
  EXPECT_DEATH(
      s.pm->submit(task::parse_notation("[A@0:1/1 || B@1:1/1]"), 20.0, 100, 1),
      "psp-branch-exceeds-parent-window");
}

TEST(InvariantOracleDeath, SspFinalStageNotPartitionAborts) {
  OracleGuard guard(true);
  Sim s(std::shared_ptr<const core::PspStrategy>(core::make_psp_strategy("ud")),
        std::make_shared<EvilSsp>());
  EXPECT_DEATH(
      s.pm->submit(task::parse_notation("[A@0:1/1 B@1:1/1]"), 20.0, 100, 1),
      "ssp-final-stage-not-partition");
}

TEST(InvariantOracleDeath, EvilStrategyRunsFineWithOracleOff) {
  OracleGuard guard(false);
  Sim s(std::make_shared<EvilPsp>(),
        std::shared_ptr<const core::SspStrategy>(core::make_ssp_strategy("ud")));
  s.pm->submit(task::parse_notation("[A@0:1/1 || B@1:1/1]"), 20.0, 100, 1);
  s.engine->run();
  EXPECT_EQ(s.terminal_deadlines.size(), 2u);
}

// --- corrupted heap state trips the oracle ---------------------------------

struct ByDeadline {
  bool operator()(const TaskPtr& a, const TaskPtr& b) const noexcept {
    if (a->attrs.virtual_deadline != b->attrs.virtual_deadline) {
      return a->attrs.virtual_deadline < b->attrs.virtual_deadline;
    }
    return a->enqueue_seq < b->enqueue_seq;
  }
};

TaskPtr with_deadline(std::uint64_t id, double dl) {
  return task::make_local_task(id, 0, 0.0, 1.0, dl);
}

TEST(InvariantOracleDeath, HeapQueuePosCorruptionAborts) {
  OracleGuard guard(true);
  sched::detail::IndexedTaskHeap<ByDeadline> heap;
  TaskPtr a = with_deadline(1, 3.0);
  TaskPtr b = with_deadline(2, 5.0);
  heap.push(a);
  heap.push(b);
  // Sever the back-link the O(log n) remove path depends on.
  b->queue_pos = 7;
  EXPECT_DEATH(heap.validate(), "task-heap-queue-pos-identity");
}

TEST(InvariantOracleDeath, HeapOrderCorruptionAborts) {
  OracleGuard guard(true);
  sched::detail::IndexedTaskHeap<ByDeadline> heap;
  TaskPtr a = with_deadline(1, 3.0);
  TaskPtr b = with_deadline(2, 5.0);
  heap.push(a);
  heap.push(b);
  // Rewrite the root's key after insertion — exactly the corruption a
  // buggy in-place deadline update would cause.
  a->attrs.virtual_deadline = 9.0;
  EXPECT_DEATH(heap.validate(), "task-heap-order");
}

// --- event queue / engine time sanity --------------------------------------

TEST(InvariantOracleDeath, NanEventTimeAborts) {
  OracleGuard guard(true);
  sim::EventQueue q;
  EXPECT_DEATH(q.push(std::numeric_limits<double>::quiet_NaN(), [] {}),
               "event-queue-nan-time");
}

TEST(InvariantOracleDeath, NonFiniteEngineTimeAborts) {
  OracleGuard guard(true);
  sim::Engine engine;
  EXPECT_DEATH(engine.at(std::numeric_limits<double>::infinity(), [] {}),
               "engine-non-finite-event-time");
  EXPECT_DEATH(engine.in(std::numeric_limits<double>::quiet_NaN(), [] {}),
               "engine-non-finite-delay");
}

TEST(InvariantOracle, EventQueueChurnStaysClean) {
  OracleGuard guard(true);
  sim::EventQueue q;
  std::vector<sim::EventId> ids;
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 40; ++i) {
      ids.push_back(q.push(static_cast<double>((i * 7919) % 101), [] {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 3) {
      q.cancel(ids[i]);
    }
    ids.clear();
    while (!q.empty()) q.pop();
  }
  SUCCEED();
}

TEST(InvariantOracle, DirectValidateCallsAreCheapAndClean) {
  // validate() is also a public API (cadence aside): clean structures pass.
  OracleGuard guard(true);
  sched::detail::IndexedTaskHeap<ByDeadline> heap;
  for (int i = 0; i < 100; ++i) {
    heap.push(with_deadline(static_cast<std::uint64_t>(i + 1),
                            static_cast<double>((i * 31) % 17)));
  }
  heap.validate();
  while (heap.size() > 0) heap.pop();
  heap.validate();
  SUCCEED();
}

}  // namespace
