// Unit tests for per-class miss accounting.
#include "src/metrics/collector.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

using namespace sda;
using metrics::Collector;

task::SimpleTask terminal_local(double arrival, double finished, double dl,
                                bool aborted = false, double ex = 1.0) {
  task::SimpleTask t;
  t.kind = task::TaskKind::kLocal;
  t.metrics_class = metrics::kLocalClass;
  t.attrs.arrival = arrival;
  t.attrs.exec_time = ex;
  t.attrs.real_deadline = dl;
  t.finished_at = finished;
  t.state = aborted ? task::TaskState::kAborted : task::TaskState::kCompleted;
  return t;
}

TEST(ClassNames, Defaults) {
  EXPECT_EQ(metrics::default_class_name(metrics::kLocalClass), "local");
  EXPECT_EQ(metrics::default_class_name(metrics::kSubtaskClass), "subtask");
  EXPECT_EQ(metrics::default_class_name(metrics::global_class(4)),
            "global(n=4)");
  EXPECT_EQ(metrics::default_class_name(42), "class-42");
  EXPECT_TRUE(metrics::is_global_class(metrics::global_class(0)));
  EXPECT_FALSE(metrics::is_global_class(metrics::kSubtaskClass));
}

TEST(Collector, MissRateBasics) {
  Collector c;
  c.record_simple(terminal_local(0.0, 5.0, 10.0));   // met
  c.record_simple(terminal_local(0.0, 12.0, 10.0));  // missed (late)
  c.record_simple(terminal_local(0.0, 10.0, 10.0));  // met (exactly on time)
  const auto counts = c.counts(metrics::kLocalClass);
  EXPECT_EQ(counts.finished, 3u);
  EXPECT_EQ(counts.missed, 1u);
  EXPECT_EQ(counts.aborted, 0u);
  EXPECT_NEAR(counts.miss_rate(), 1.0 / 3.0, 1e-12);
}

TEST(Collector, AbortedCountsAsMissed) {
  Collector c;
  c.record_simple(terminal_local(0.0, 3.0, 10.0, /*aborted=*/true));
  const auto counts = c.counts(metrics::kLocalClass);
  EXPECT_EQ(counts.missed, 1u);
  EXPECT_EQ(counts.aborted, 1u);
}

TEST(Collector, NonTerminalRejected) {
  Collector c;
  task::SimpleTask t = terminal_local(0.0, 1.0, 2.0);
  t.state = task::TaskState::kRunning;
  EXPECT_THROW(c.record_simple(t), std::logic_error);
}

TEST(Collector, WarmupFiltersByArrival) {
  Collector c;
  c.set_warmup(100.0);
  c.record_simple(terminal_local(50.0, 120.0, 110.0));   // arrived in warmup
  c.record_simple(terminal_local(150.0, 160.0, 155.0));  // counted, missed
  const auto counts = c.counts(metrics::kLocalClass);
  EXPECT_EQ(counts.finished, 1u);
  EXPECT_EQ(counts.missed, 1u);
}

TEST(Collector, WorkWeightedAccounting) {
  Collector c;
  c.record_simple(terminal_local(0.0, 5.0, 10.0, false, 3.0));   // met, work 3
  c.record_simple(terminal_local(0.0, 12.0, 10.0, false, 1.0));  // miss, work 1
  const auto counts = c.counts(metrics::kLocalClass);
  EXPECT_DOUBLE_EQ(counts.work_total, 4.0);
  EXPECT_DOUBLE_EQ(counts.work_missed, 1.0);
  EXPECT_DOUBLE_EQ(counts.missed_work_rate(), 0.25);
  EXPECT_DOUBLE_EQ(c.overall_missed_work_rate(), 0.25);
}

TEST(Collector, GlobalRecords) {
  Collector c;
  core::GlobalTaskRecord rec;
  rec.metrics_class = metrics::global_class(4);
  rec.arrival = 10.0;
  rec.missed = true;
  rec.aborted = true;
  rec.total_work = 4.5;
  c.record_global(rec);
  const auto counts = c.counts(metrics::global_class(4));
  EXPECT_EQ(counts.finished, 1u);
  EXPECT_EQ(counts.missed, 1u);
  EXPECT_EQ(counts.aborted, 1u);
  EXPECT_DOUBLE_EQ(counts.work_missed, 4.5);
}

TEST(Collector, ClassesSortedAndTotals) {
  Collector c;
  c.record(metrics::global_class(4), 0.0, true, false, 4.0);
  c.record(metrics::kLocalClass, 0.0, false, false, 1.0);
  c.record(metrics::kSubtaskClass, 0.0, false, false, 1.0);
  const auto classes = c.classes();
  ASSERT_EQ(classes.size(), 3u);
  EXPECT_EQ(classes[0], metrics::kLocalClass);
  EXPECT_EQ(classes[1], metrics::kSubtaskClass);
  EXPECT_EQ(classes[2], metrics::global_class(4));
  EXPECT_EQ(c.total_finished(), 3u);
  EXPECT_EQ(c.total_missed(), 1u);
}

TEST(Collector, TimingsTrackResponseAndTardiness) {
  Collector c;
  c.record_simple(terminal_local(0.0, 5.0, 10.0));   // response 5, tardy 0
  c.record_simple(terminal_local(0.0, 12.0, 10.0));  // response 12, tardy 2
  const auto t = c.timings(metrics::kLocalClass);
  EXPECT_EQ(t.response.count(), 2u);
  EXPECT_DOUBLE_EQ(t.response.mean(), 8.5);
  EXPECT_DOUBLE_EQ(t.response.max(), 12.0);
  EXPECT_EQ(t.tardiness.count(), 2u);
  EXPECT_DOUBLE_EQ(t.tardiness.mean(), 1.0);
}

TEST(Collector, AbortedTasksHaveNoResponseSample) {
  Collector c;
  c.record_simple(terminal_local(0.0, 3.0, 2.0, /*aborted=*/true));
  const auto t = c.timings(metrics::kLocalClass);
  EXPECT_EQ(t.response.count(), 0u);
  EXPECT_EQ(t.tardiness.count(), 1u);
  EXPECT_DOUBLE_EQ(t.tardiness.mean(), 1.0);  // aborted 1 unit past deadline
}

TEST(Collector, TimingsRespectWarmup) {
  Collector c;
  c.set_warmup(100.0);
  c.record_simple(terminal_local(10.0, 20.0, 30.0));
  EXPECT_EQ(c.timings(metrics::kLocalClass).response.count(), 0u);
}

TEST(Collector, TimingsUnknownClassEmpty) {
  Collector c;
  EXPECT_EQ(c.timings(5).response.count(), 0u);
}

TEST(Collector, GlobalRecordTimings) {
  Collector c;
  core::GlobalTaskRecord rec;
  rec.metrics_class = metrics::global_class(4);
  rec.arrival = 10.0;
  rec.real_deadline = 20.0;
  rec.finished_at = 23.0;
  rec.missed = true;
  c.record_global(rec);
  const auto t = c.timings(metrics::global_class(4));
  EXPECT_DOUBLE_EQ(t.response.mean(), 13.0);
  EXPECT_DOUBLE_EQ(t.tardiness.mean(), 3.0);
}

TEST(Collector, TardinessHistogramQuantiles) {
  Collector c;
  c.enable_tardiness_histograms(10.0, 100);
  // 90 on-time tasks (tardiness 0), 10 late by 5.0.
  for (int i = 0; i < 90; ++i) c.record_simple(terminal_local(0.0, 5.0, 10.0));
  for (int i = 0; i < 10; ++i) c.record_simple(terminal_local(0.0, 15.0, 10.0));
  const auto q = c.tardiness_profile(metrics::kLocalClass);
  ASSERT_TRUE(q.enabled);
  EXPECT_NEAR(q.p50, 0.0, 0.2);
  EXPECT_NEAR(q.p99, 5.0, 0.2);
  EXPECT_GE(q.p90, q.p50);
  EXPECT_GE(q.p99, q.p90);
}

TEST(Collector, TardinessProfileDisabledByDefault) {
  Collector c;
  c.record_simple(terminal_local(0.0, 15.0, 10.0));
  EXPECT_FALSE(c.tardiness_profile(metrics::kLocalClass).enabled);
}

TEST(Collector, UnknownClassIsEmpty) {
  Collector c;
  const auto counts = c.counts(12345);
  EXPECT_EQ(counts.finished, 0u);
  EXPECT_DOUBLE_EQ(counts.miss_rate(), 0.0);
  EXPECT_DOUBLE_EQ(counts.missed_work_rate(), 0.0);
}

}  // namespace
