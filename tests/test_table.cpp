// Unit tests for the plain-text table renderer and numeric formatters.
#include "src/util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace {

using sda::util::fmt;
using sda::util::fmt_pct;
using sda::util::fmt_pct_ci;
using sda::util::Table;

TEST(Fmt, FixedDigits) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.0, 0), "3");
  EXPECT_EQ(fmt(-0.5, 1), "-0.5");
}

TEST(Fmt, Percent) {
  EXPECT_EQ(fmt_pct(0.251), "25.1%");
  EXPECT_EQ(fmt_pct(0.0), "0.0%");
  EXPECT_EQ(fmt_pct(1.0, 0), "100%");
}

TEST(Fmt, PercentWithCi) {
  const std::string s = fmt_pct_ci(0.25, 0.004);
  EXPECT_NE(s.find("25.0"), std::string::npos);
  EXPECT_NE(s.find("0.4%"), std::string::npos);
  EXPECT_NE(s.find("\xc2\xb1"), std::string::npos);  // the +/- sign
}

TEST(TableTest, HeaderAndRule) {
  Table t({"a", "bb"});
  const std::string out = t.render();
  std::istringstream is(out);
  std::string line1, line2;
  std::getline(is, line1);
  std::getline(is, line2);
  EXPECT_EQ(line1, "a  bb");
  EXPECT_EQ(line2, std::string(5, '-'));
}

TEST(TableTest, ColumnsAlign) {
  Table t({"name", "value"});
  t.add_row({"x", "1.5"});
  t.add_row({"longer-name", "10.25"});
  const std::string out = t.render();
  std::istringstream is(out);
  std::string header, rule, r1, r2;
  std::getline(is, header);
  std::getline(is, rule);
  std::getline(is, r1);
  std::getline(is, r2);
  EXPECT_EQ(r1.size(), r2.size());  // padded to equal width
  // Numeric cells right-align: "1.5" ends at the same column as "10.25".
  EXPECT_EQ(r1.rfind("1.5"), r1.size() - 3);
  EXPECT_EQ(r2.rfind("10.25"), r2.size() - 5);
}

TEST(TableTest, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NO_THROW(t.render());
  EXPECT_EQ(t.rows(), 1u);
}

TEST(TableTest, TextCellsLeftAlign) {
  Table t({"strategy", "md"});
  t.add_row({"ud", "9.0%"});
  t.add_row({"div-1", "13.0%"});
  const std::string out = t.render();
  // "ud" starts at column 0 (left aligned), not pushed right.
  EXPECT_NE(out.find("\nud "), std::string::npos);
}

}  // namespace
