// The serve-mode wire parser: totality (every byte sequence yields an
// ignorable line, a clean parse, or a structured error), the hardening
// limits, and the incremental LineSplitter's bounded buffering.
#include "src/exp/protocol.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace {

using namespace sda;
using exp::LineSplitter;
using exp::ParsedLine;
using exp::ProtocolErrorCode;
using exp::ProtocolLimits;
using exp::parse_serve_line;

ParsedLine parse(const std::string& text) {
  return parse_serve_line(text, ProtocolLimits{});
}

TEST(ParseServeLine, CleanSubParsesEveryField) {
  const ParsedLine l =
      parse("sub id=42 at=1.5 deadline=3 tree=[a@0:2/2 || b@1:1/1]");
  EXPECT_EQ(l.code, ProtocolErrorCode::kNone);
  EXPECT_EQ(l.verb, "sub");
  EXPECT_TRUE(l.has_id);
  EXPECT_EQ(l.id, 42u);
  EXPECT_TRUE(l.has_at);
  EXPECT_DOUBLE_EQ(l.at, 1.5);
  EXPECT_TRUE(l.has_deadline);
  EXPECT_DOUBLE_EQ(l.deadline, 3.0);
  EXPECT_TRUE(l.has_tree);
  // tree= swallows to end of line, spaces and all.
  EXPECT_EQ(l.tree, "[a@0:2/2 || b@1:1/1]");
}

TEST(ParseServeLine, DoneWithOptionalFields) {
  const ParsedLine l = parse("done id=7 at=9 leaf=2");
  EXPECT_EQ(l.code, ProtocolErrorCode::kNone);
  EXPECT_EQ(l.verb, "done");
  EXPECT_EQ(l.id, 7u);
  EXPECT_TRUE(l.has_leaf);
  EXPECT_EQ(l.leaf, 2u);
}

TEST(ParseServeLine, CommentsBlanksAndCrlfAreHandled) {
  EXPECT_TRUE(parse("").ignorable);
  EXPECT_TRUE(parse("# a comment").ignorable);
  EXPECT_TRUE(parse("\r").ignorable);  // CRLF blank line
  const ParsedLine l = parse("done id=1\r");
  EXPECT_EQ(l.code, ProtocolErrorCode::kNone);
  EXPECT_EQ(l.id, 1u);
}

TEST(ParseServeLine, EmbeddedNulIsAParseError) {
  const std::string text = std::string("sub id=1\0at=0", 13);
  const ParsedLine l = parse(text);
  EXPECT_EQ(l.code, ProtocolErrorCode::kParse);
  EXPECT_NE(l.error.find("NUL"), std::string::npos);
}

TEST(ParseServeLine, OversizedLineHitsTheLimit) {
  ProtocolLimits limits;
  limits.max_line_bytes = 32;
  const ParsedLine l =
      parse_serve_line("sub id=1 at=0 deadline=5 tree=" + std::string(64, 'a'),
                       limits);
  EXPECT_EQ(l.code, ProtocolErrorCode::kLimit);
}

TEST(ParseServeLine, OversizedTreeAndValueHitTheirLimits) {
  ProtocolLimits limits;
  limits.max_tree_bytes = 16;
  EXPECT_EQ(parse_serve_line("sub id=1 tree=" + std::string(17, 'a'), limits)
                .code,
            ProtocolErrorCode::kLimit);
  EXPECT_EQ(parse("sub id=" + std::string(65, '1')).code,
            ProtocolErrorCode::kLimit);
}

TEST(ParseServeLine, TooManyFieldsHitsTheLimit) {
  ProtocolLimits limits;
  limits.max_fields = 3;
  EXPECT_EQ(
      parse_serve_line("sub id=1 at=0 deadline=1 leaf=0", limits).code,
      ProtocolErrorCode::kLimit);
}

TEST(ParseServeLine, NumbersAreStrict) {
  // Trailing junk, empty values, and non-finite floats all fail — the
  // old stoull/stod path accepted the first two silently.
  EXPECT_EQ(parse("sub id=12abc").code, ProtocolErrorCode::kParse);
  EXPECT_EQ(parse("sub id=").code, ProtocolErrorCode::kParse);
  EXPECT_EQ(parse("sub id=-1").code, ProtocolErrorCode::kParse);
  EXPECT_EQ(parse("sub id=1 at=nan").code, ProtocolErrorCode::kParse);
  EXPECT_EQ(parse("sub id=1 at=inf").code, ProtocolErrorCode::kParse);
  EXPECT_EQ(parse("sub id=1 at=0 deadline=nan").code,
            ProtocolErrorCode::kParse);
}

TEST(ParseServeLine, MalformedTokensAndDuplicateKeys) {
  EXPECT_EQ(parse("sub id").code, ProtocolErrorCode::kParse);
  EXPECT_EQ(parse("sub =5").code, ProtocolErrorCode::kParse);
  EXPECT_EQ(parse("sub id=1 id=2").code, ProtocolErrorCode::kParse);
  EXPECT_EQ(parse("sub id=1 bogus=3").code, ProtocolErrorCode::kParse);
  EXPECT_EQ(parse("sub at=1 at=2").code, ProtocolErrorCode::kParse);
  // tree= swallows the rest of the line, so a "second" tree key is just
  // payload — not a duplicate.
  const ParsedLine l = parse("sub id=1 tree=a tree=b");
  EXPECT_EQ(l.code, ProtocolErrorCode::kNone);
  EXPECT_EQ(l.tree, "a tree=b");
}

TEST(ParseServeLine, ErrorLinesStillReportTheIdWhenItParsedFirst) {
  // The session uses this to address the error reply to the right run.
  const ParsedLine l = parse("sub id=9 at=bad");
  EXPECT_EQ(l.code, ProtocolErrorCode::kParse);
  EXPECT_TRUE(l.has_id);
  EXPECT_EQ(l.id, 9u);
}

TEST(ParseServeLine, NeverThrowsOnArbitraryBytes) {
  // A quick totality sweep over hostile shapes; the fuzz test
  // (test_serve_fuzz.cpp) does this at scale through the session.
  const std::vector<std::string> hostile = {
      "=", "==", "sub =", "sub ==x", "\t\t\t", "sub\ttree==",
      std::string(3, '\0'), "done leaf=4294967296", "sub id=18446744073709551616",
      "sub tree=", "# \xff\xfe\xfd", "\xff\xfe sub id=1",
  };
  for (const std::string& text : hostile) {
    const ParsedLine l = parse(text);
    // Either ignorable or a structured error/clean parse — no throw.
    EXPECT_TRUE(l.ignorable || !l.error.empty() ||
                l.code == ProtocolErrorCode::kNone)
        << "input: " << text;
  }
}

// --- LineSplitter ---------------------------------------------------------

struct Collected {
  std::string line;
  bool oversized = false;
};

std::vector<Collected> feed_chunks(LineSplitter& splitter,
                                   const std::vector<std::string>& chunks,
                                   bool finish = true) {
  std::vector<Collected> out;
  const auto on_line = [&](std::string_view line, bool oversized) {
    out.push_back({std::string(line), oversized});
  };
  for (const std::string& chunk : chunks) splitter.feed(chunk, on_line);
  if (finish) splitter.finish(on_line);
  return out;
}

TEST(LineSplitter, ReassemblesLinesAcrossArbitraryChunks) {
  LineSplitter s(64);
  const auto lines =
      feed_chunks(s, {"sub id=", "1 at=0\ndone", " id=1\n", "sub id=2"});
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].line, "sub id=1 at=0");
  EXPECT_EQ(lines[1].line, "done id=1");
  // The truncated final line is handed over by finish() — the same
  // semantics std::getline gives the istream harness.
  EXPECT_EQ(lines[2].line, "sub id=2");
  EXPECT_FALSE(lines[2].oversized);
}

TEST(LineSplitter, OversizedLineIsTruncatedOnceThenDiscarded) {
  LineSplitter s(8);
  const auto lines =
      feed_chunks(s, {std::string(30, 'x'), std::string(30, 'y'), "\nok\n"});
  // One truncated report for the whole oversized run, then 'ok'.
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_TRUE(lines[0].oversized);
  EXPECT_EQ(lines[0].line, std::string(8, 'x'));  // never buffers past cap
  EXPECT_FALSE(lines[1].oversized);
  EXPECT_EQ(lines[1].line, "ok");
}

TEST(LineSplitter, HasPartialTracksUnfinishedLines) {
  LineSplitter s(64);
  const auto on_line = [](std::string_view, bool) {};
  EXPECT_FALSE(s.has_partial());
  s.feed("half a li", on_line);
  EXPECT_TRUE(s.has_partial());
  s.feed("ne\n", on_line);
  EXPECT_FALSE(s.has_partial());
  // Discard mode (inside an oversized line) also counts as partial.
  s.feed(std::string(100, 'z'), on_line);
  EXPECT_TRUE(s.has_partial());
  s.feed("\n", on_line);
  EXPECT_FALSE(s.has_partial());
}

TEST(LineSplitter, EmptyLinesAreDelivered) {
  LineSplitter s(64);
  const auto lines = feed_chunks(s, {"\n\na\n"});
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].line, "");
  EXPECT_EQ(lines[1].line, "");
  EXPECT_EQ(lines[2].line, "a");
}

}  // namespace
