// util::ThreadPool (work-stealing replication executor) and the determinism
// contract of the parallel run_experiment/sweep paths: any pool size must
// produce bit-identical results to a strictly sequential run.
#include "src/util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/exp/config.hpp"
#include "src/exp/runner.hpp"
#include "src/exp/sweep.hpp"

namespace sda {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.threads(), 4u);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ZeroItemsIsANoOp) {
  util::ThreadPool pool(3);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "body must not run"; });
}

TEST(ThreadPool, SingleThreadRunsInlineInOrder) {
  // threads <= 1 means strictly sequential on the calling thread — the
  // SDA_THREADS=1 escape hatch must not even context-switch.
  util::ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  pool.parallel_for(64, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  ASSERT_EQ(order.size(), 64u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, ZeroThreadRequestClampsToOne) {
  util::ThreadPool pool(0);
  EXPECT_EQ(pool.threads(), 1u);
  int runs = 0;
  pool.parallel_for(5, [&](std::size_t) { ++runs; });
  EXPECT_EQ(runs, 5);
}

TEST(ThreadPool, PropagatesFirstException) {
  util::ThreadPool pool(4);
  std::atomic<int> ran{0};
  try {
    pool.parallel_for(100, [&](std::size_t i) {
      ran.fetch_add(1);
      if (i == 37) throw std::runtime_error("item 37 failed");
    });
    FAIL() << "expected parallel_for to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "item 37 failed");
  }
  // All items still ran (no early abandonment leaving results half-built).
  EXPECT_EQ(ran.load(), 100);
  // The pool is reusable after a failed batch.
  std::atomic<int> again{0};
  pool.parallel_for(10, [&](std::size_t) { again.fetch_add(1); });
  EXPECT_EQ(again.load(), 10);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  util::ThreadPool pool(3);
  std::atomic<int> inner_total{0};
  pool.parallel_for(6, [&](std::size_t) {
    // A body that itself calls parallel_for must not deadlock on the
    // caller-serialization mutex; it degrades to an inline loop.
    pool.parallel_for(4, [&](std::size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 24);
}

TEST(ThreadPool, ConcurrentIndicesAreDisjoint) {
  // No index is ever handed to two participants: track in-flight indices.
  util::ThreadPool pool(4);
  std::mutex m;
  std::set<std::size_t> in_flight;
  bool overlap = false;
  pool.parallel_for(500, [&](std::size_t i) {
    {
      std::lock_guard<std::mutex> lk(m);
      overlap = overlap || !in_flight.insert(i).second;
    }
    std::lock_guard<std::mutex> lk(m);
    in_flight.erase(i);
  });
  EXPECT_FALSE(overlap);
}

TEST(ThreadPool, ConfiguredThreadsReadsSdaThreads) {
  ::setenv("SDA_THREADS", "7", 1);
  EXPECT_EQ(util::ThreadPool::configured_threads(), 7u);
  ::setenv("SDA_THREADS", "1", 1);
  EXPECT_EQ(util::ThreadPool::configured_threads(), 1u);
  ::setenv("SDA_THREADS", "100000", 1);  // clamped to a sane ceiling
  EXPECT_EQ(util::ThreadPool::configured_threads(), 512u);
  ::unsetenv("SDA_THREADS");
  EXPECT_GE(util::ThreadPool::configured_threads(), 1u);
}

// --- determinism of the parallel experiment paths -------------------------

exp::ExperimentConfig quick_config() {
  exp::ExperimentConfig c = exp::baseline_config();
  c.sim_time = 400.0;  // short but long enough for real contention
  c.replications = 5;
  c.psp = "div-1";
  return c;
}

TEST(ThreadPoolDeterminism, FingerprintsIdenticalAcrossPoolSizes) {
  const exp::ExperimentConfig c = quick_config();

  util::ThreadPool seq(1);
  std::vector<std::uint64_t> fp_seq;
  const metrics::Report r_seq = exp::run_experiment(c, seq, &fp_seq);
  ASSERT_EQ(fp_seq.size(), 5u);

  for (unsigned threads : {2u, 4u, 7u}) {
    util::ThreadPool pool(threads);
    std::vector<std::uint64_t> fp;
    const metrics::Report r = exp::run_experiment(c, pool, &fp);
    EXPECT_EQ(fp, fp_seq) << "tracer fingerprints diverged at " << threads
                          << " threads";
    // The folded report must match too (same replications, same order).
    ASSERT_EQ(r.classes(), r_seq.classes());
    for (int cls : r_seq.classes()) {
      EXPECT_EQ(r.summary(cls).miss_rate.mean, r_seq.summary(cls).miss_rate.mean);
      EXPECT_EQ(r.summary(cls).finished_total, r_seq.summary(cls).finished_total);
    }
    EXPECT_EQ(r.overall_missed_work().mean, r_seq.overall_missed_work().mean);
  }
}

TEST(ThreadPoolDeterminism, ReplicationSeedsMatchSequentialSchedule) {
  // The pool path derives seeds through replication_seed; re-running any
  // single replication with that seed must reproduce its fingerprint.
  const exp::ExperimentConfig c = quick_config();
  util::ThreadPool pool(4);
  std::vector<std::uint64_t> fp;
  (void)exp::run_experiment(c, pool, &fp);
  ASSERT_EQ(fp.size(), 5u);
  for (int rep = 0; rep < 5; ++rep) {
    metrics::Tracer tracer(1);
    (void)exp::run_once(c, exp::replication_seed(c.seed, rep), &tracer);
    EXPECT_EQ(tracer.fingerprint(), fp[static_cast<std::size_t>(rep)])
        << "replication " << rep;
  }
}

TEST(ThreadPoolDeterminism, SweepMatchesSequentialPointByPoint) {
  exp::ExperimentConfig base = quick_config();
  base.replications = 2;
  const std::vector<double> xs = exp::linspace(0.2, 0.6, 3);
  const exp::ApplyFn apply = [](exp::ExperimentConfig& c, double x) {
    c.load = x;
  };

  util::ThreadPool seq(1);
  util::ThreadPool par(5);
  const auto a = exp::sweep(base, xs, apply, seq);
  const auto b = exp::sweep(base, xs, apply, par);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].x, b[i].x);
    ASSERT_EQ(a[i].report.classes(), b[i].report.classes());
    for (int cls : a[i].report.classes()) {
      EXPECT_EQ(a[i].report.summary(cls).miss_rate.mean,
                b[i].report.summary(cls).miss_rate.mean);
      EXPECT_EQ(a[i].report.summary(cls).missed_work_rate.mean,
                b[i].report.summary(cls).missed_work_rate.mean);
      EXPECT_EQ(a[i].report.summary(cls).finished_total,
                b[i].report.summary(cls).finished_total);
    }
  }
}

}  // namespace
}  // namespace sda
