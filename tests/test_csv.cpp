// Unit tests for CSV export.
#include "src/exp/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/metrics/task_class.hpp"

namespace {

using namespace sda;
using namespace sda::exp;

SweepPoint make_point(double x, int cls, int finished, int missed) {
  metrics::Collector c;
  for (int i = 0; i < finished; ++i) c.record(cls, 0.0, i < missed, false, 1.0);
  SweepPoint p;
  p.x = x;
  p.report.add_replication(c);
  return p;
}

TEST(Csv, HeaderAndRows) {
  std::vector<SweepPoint> points;
  points.push_back(make_point(0.3, metrics::kLocalClass, 10, 1));
  points.push_back(make_point(0.6, metrics::kLocalClass, 10, 4));
  const std::string csv = sweep_to_csv(points, "load");
  std::istringstream is(csv);
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line,
            "load,class,class_name,miss_rate,miss_rate_hw,missed_work,"
            "finished");
  std::getline(is, line);
  EXPECT_NE(line.find("0.3,0,local,0.1"), std::string::npos);
  std::getline(is, line);
  EXPECT_NE(line.find("0.6,0,local,0.4"), std::string::npos);
  EXPECT_FALSE(std::getline(is, line) && !line.empty());
}

TEST(Csv, MultipleClassesPerPoint) {
  metrics::Collector c;
  c.record(metrics::kLocalClass, 0.0, false, false, 1.0);
  c.record(metrics::global_class(4), 0.0, true, false, 4.0);
  SweepPoint p;
  p.x = 0.5;
  p.report.add_replication(c);
  const std::string csv = sweep_to_csv({p});
  EXPECT_NE(csv.find("local"), std::string::npos);
  EXPECT_NE(csv.find("global(n=4)"), std::string::npos);
}

TEST(Csv, SeriesForm) {
  std::vector<std::pair<std::string, std::vector<SweepPoint>>> series;
  series.push_back({"ud", {make_point(0.5, 0, 10, 5)}});
  series.push_back({"gf", {make_point(0.5, 0, 10, 1)}});
  const std::string csv = series_to_csv(series, "load");
  EXPECT_NE(csv.find("series,load,"), std::string::npos);
  EXPECT_NE(csv.find("ud,0.5,"), std::string::npos);
  EXPECT_NE(csv.find("gf,0.5,"), std::string::npos);
}

TEST(Csv, WriteTextFileRoundTrip) {
  const std::string path = testing::TempDir() + "sda_csv_test.csv";
  ASSERT_TRUE(write_text_file(path, "a,b\n1,2\n"));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "a,b\n1,2\n");
  std::remove(path.c_str());
}

TEST(Csv, WriteToBadPathFails) {
  EXPECT_FALSE(write_text_file("/nonexistent-dir-xyz/file.csv", "x"));
}

}  // namespace
