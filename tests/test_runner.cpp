// Whole-system integration tests: the assembled simulator must reproduce
// the paper's qualitative results and satisfy internal-consistency
// invariants.  Run lengths are kept moderate so the suite stays fast; the
// assertions use generous tolerances accordingly.
#include "src/exp/runner.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/metrics/task_class.hpp"

namespace {

using namespace sda;
using exp::baseline_config;
using exp::ExperimentConfig;
using exp::run_once;

ExperimentConfig quick(double sim_time = 30000.0) {
  ExperimentConfig c = baseline_config();
  c.sim_time = sim_time;
  c.replications = 1;
  return c;
}

TEST(Runner, UtilizationTracksLoad) {
  for (double load : {0.3, 0.5, 0.8}) {
    ExperimentConfig c = quick();
    c.load = load;
    const auto r = run_once(c, 1);
    EXPECT_NEAR(r.mean_utilization, load, 0.03) << "load " << load;
  }
}

TEST(Runner, DeterministicForSameSeed) {
  const ExperimentConfig c = quick(5000.0);
  const auto a = run_once(c, 123);
  const auto b = run_once(c, 123);
  EXPECT_EQ(a.events_fired, b.events_fired);
  EXPECT_EQ(a.locals_generated, b.locals_generated);
  EXPECT_EQ(a.globals_generated, b.globals_generated);
  EXPECT_DOUBLE_EQ(
      a.collector.counts(metrics::kLocalClass).miss_rate(),
      b.collector.counts(metrics::kLocalClass).miss_rate());
  EXPECT_DOUBLE_EQ(
      a.collector.counts(metrics::global_class(4)).miss_rate(),
      b.collector.counts(metrics::global_class(4)).miss_rate());
}

TEST(Runner, DifferentSeedsDiffer) {
  const ExperimentConfig c = quick(5000.0);
  const auto a = run_once(c, 1);
  const auto b = run_once(c, 2);
  EXPECT_NE(a.events_fired, b.events_fired);
}

TEST(Runner, GenerationRatesMatchTheory) {
  // At baseline: lambda_local = .375/node (x6 nodes), lambda_global = .1875.
  const auto r = run_once(quick(40000.0), 3);
  EXPECT_NEAR(static_cast<double>(r.locals_generated), 0.375 * 6 * 40000.0,
              0.375 * 6 * 40000.0 * 0.03);
  EXPECT_NEAR(static_cast<double>(r.globals_generated), 0.1875 * 40000.0,
              0.1875 * 40000.0 * 0.05);
}

TEST(Runner, ConservationOfGlobals) {
  const auto r = run_once(quick(20000.0), 4);
  // Every generated global either completed, was aborted, or is in flight
  // at the horizon.  Without abortion, aborted == 0.
  EXPECT_EQ(r.globals_aborted, 0u);
  EXPECT_LE(r.globals_completed, r.globals_generated);
  EXPECT_GE(r.globals_completed + 100, r.globals_generated);  // few in flight
}

TEST(Runner, UdGlobalMissAmplification) {
  // Paper §6.1: MD_global ~ 1-(1-MD_subtask)^4 and ~3x MD_local at load .5.
  const auto r = run_once(quick(60000.0), 5);
  const double md_local = r.collector.counts(metrics::kLocalClass).miss_rate();
  const double md_sub = r.collector.counts(metrics::kSubtaskClass).miss_rate();
  const double md_glob =
      r.collector.counts(metrics::global_class(4)).miss_rate();

  EXPECT_NEAR(md_local, 0.089, 0.02);
  EXPECT_NEAR(md_sub, 0.071, 0.02);
  EXPECT_NEAR(md_glob, 0.25, 0.04);
  // Subtasks slightly easier than locals (Equation 3).
  EXPECT_LT(md_sub, md_local);
  // Independence approximation within a few points.
  EXPECT_NEAR(md_glob, 1.0 - std::pow(1.0 - md_sub, 4.0), 0.05);
}

TEST(Runner, Div1HalvesGlobalMissRate) {
  ExperimentConfig c = quick(60000.0);
  const auto ud = run_once(c, 6);
  c.psp = "div-1";
  const auto div1 = run_once(c, 6);

  const double ud_glob =
      ud.collector.counts(metrics::global_class(4)).miss_rate();
  const double div_glob =
      div1.collector.counts(metrics::global_class(4)).miss_rate();
  const double ud_local = ud.collector.counts(metrics::kLocalClass).miss_rate();
  const double div_local =
      div1.collector.counts(metrics::kLocalClass).miss_rate();

  EXPECT_LT(div_glob, ud_glob * 0.65);   // roughly halved
  EXPECT_GT(div_local, ud_local);        // locals pay a little
  EXPECT_LT(div_local, ud_local + 0.05); // ... but only a little
  // Missed *work* improves under DIV-1 (paper §6.1).
  EXPECT_LT(div1.collector.overall_missed_work_rate(),
            ud.collector.overall_missed_work_rate() + 0.002);
}

TEST(Runner, GfBeatsDiv1OnGlobals) {
  ExperimentConfig c = quick(60000.0);
  c.load = 0.7;  // the gap is widest at high load
  c.psp = "div-1";
  const auto div1 = run_once(c, 7);
  c.psp = "gf";
  const auto gf = run_once(c, 7);
  EXPECT_LT(gf.collector.counts(metrics::global_class(4)).miss_rate(),
            div1.collector.counts(metrics::global_class(4)).miss_rate());
  // Similar local miss rates (within a couple of points).
  EXPECT_NEAR(gf.collector.counts(metrics::kLocalClass).miss_rate(),
              div1.collector.counts(metrics::kLocalClass).miss_rate(), 0.025);
}

TEST(Runner, GfEqualsUdWithoutLocals) {
  // frac_local = 0: GF shifts all deadlines by the same constant, which
  // cannot change the EDF order among subtasks — identical outcomes with
  // common random numbers.
  ExperimentConfig c = quick(20000.0);
  c.frac_local = 0.0;
  const auto ud = run_once(c, 8);
  c.psp = "gf";
  const auto gf = run_once(c, 8);
  EXPECT_DOUBLE_EQ(ud.collector.counts(metrics::global_class(4)).miss_rate(),
                   gf.collector.counts(metrics::global_class(4)).miss_rate());
  EXPECT_EQ(ud.events_fired, gf.events_fired);
}

TEST(Runner, PmAbortionReducesMissRates) {
  ExperimentConfig c = quick(60000.0);
  c.load = 0.6;
  const auto plain = run_once(c, 9);
  c.pm_abort = core::PmAbortMode::kRealDeadline;
  const auto abort = run_once(c, 9);
  EXPECT_LT(abort.collector.counts(metrics::global_class(4)).miss_rate(),
            plain.collector.counts(metrics::global_class(4)).miss_rate());
  EXPECT_LT(abort.collector.counts(metrics::kLocalClass).miss_rate(),
            plain.collector.counts(metrics::kLocalClass).miss_rate());
  EXPECT_GT(abort.globals_aborted, 0u);
}

TEST(Runner, NonHomogeneousMissRateGrowsWithN) {
  ExperimentConfig c = quick(80000.0);
  c.n_min = 2;
  c.n_max = 6;
  const auto r = run_once(c, 10);
  const double md2 = r.collector.counts(metrics::global_class(2)).miss_rate();
  const double md6 = r.collector.counts(metrics::global_class(6)).miss_rate();
  EXPECT_GT(md6, md2 * 1.5);  // Fig 12: bigger tasks miss far more under UD
}

TEST(Runner, GraphWorkloadRunsAndEqfDiv1Helps) {
  ExperimentConfig c = exp::graph_config();
  c.sim_time = 40000.0;
  c.replications = 1;
  c.load = 0.6;
  const auto udud = run_once(c, 11);
  c.psp = "div-1";
  c.ssp = "eqf";
  const auto eqfdiv = run_once(c, 11);
  const double md_udud =
      udud.collector.counts(metrics::global_class(0)).miss_rate();
  const double md_eqfdiv =
      eqfdiv.collector.counts(metrics::global_class(0)).miss_rate();
  EXPECT_LT(md_eqfdiv, md_udud * 0.7);  // combined strategies help a lot
}

TEST(Runner, LocalAbortRegimeResubmits) {
  ExperimentConfig c = quick(20000.0);
  c.local_abort = sched::LocalAbortPolicy::kAbortOnVirtualDeadline;
  c.psp = "div-1";
  const auto r = run_once(c, 12);
  EXPECT_GT(r.resubmissions, 0u);
  EXPECT_GT(r.local_scheduler_aborts, 0u);
}

TEST(Runner, NonAbortableDirectiveSuppressesSubtaskAborts) {
  ExperimentConfig c = quick(20000.0);
  c.local_abort = sched::LocalAbortPolicy::kAbortOnVirtualDeadline;
  c.psp = "div-1";
  c.subtasks_non_abortable = true;
  const auto r = run_once(c, 13);
  EXPECT_EQ(r.resubmissions, 0u);  // only locals can be locally aborted now
}

TEST(Runner, PreemptiveModePreempts) {
  ExperimentConfig c = quick(10000.0);
  c.preemptive = true;
  const auto r = run_once(c, 14);
  EXPECT_GT(r.preemptions, 0u);
}

TEST(Runner, RunExperimentAggregatesReplications) {
  ExperimentConfig c = quick(10000.0);
  c.replications = 3;
  const auto report = exp::run_experiment(c);
  EXPECT_EQ(report.replications(), 3u);
  const auto s = report.summary(metrics::kLocalClass);
  EXPECT_GT(s.finished_total, 0u);
  EXPECT_GT(s.miss_rate.half_width, 0.0);
  EXPECT_LT(s.miss_rate.half_width, 0.05);
}

TEST(Runner, FifoSubstrateMakesStrategiesEquivalent) {
  ExperimentConfig c = quick(20000.0);
  c.scheduler_policy = "fifo";
  const auto ud = run_once(c, 15);
  c.psp = "gf";
  const auto gf = run_once(c, 15);
  // Deadlines are ignored by FIFO: byte-identical dynamics.
  EXPECT_EQ(ud.events_fired, gf.events_fired);
  EXPECT_DOUBLE_EQ(ud.collector.counts(metrics::global_class(4)).miss_rate(),
                   gf.collector.counts(metrics::global_class(4)).miss_rate());
}

}  // namespace
