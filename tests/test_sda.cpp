// Unit tests for the recursive SDA walk (Figure 13) and per-step helpers.
#include "src/core/sda.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/task/notation.hpp"

namespace {

using namespace sda;
using core::assign_branch_deadline;
using core::assign_stage_deadline;
using core::plan_assignment;
using core::stage_pex;

TEST(StagePex, CriticalPathsPerStage) {
  // [A:1 [B:2 || C:4] D:1] — stage pex are {1, 4, 1}.
  const auto tree = task::parse_notation("[A@0:1 [B@1:2 || C@2:4] D@0:1]");
  const auto all = stage_pex(*tree, 0);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_DOUBLE_EQ(all[0], 1.0);
  EXPECT_DOUBLE_EQ(all[1], 4.0);
  EXPECT_DOUBLE_EQ(all[2], 1.0);
  const auto tail = stage_pex(*tree, 1);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_DOUBLE_EQ(tail[0], 4.0);
}

TEST(StagePex, Validation) {
  const auto leaf = task::parse_notation("A@0:1");
  EXPECT_THROW(stage_pex(*leaf, 0), std::invalid_argument);
  const auto serial = task::parse_notation("[A@0:1 B@0:1]");
  EXPECT_THROW(stage_pex(*serial, 2), std::out_of_range);
  EXPECT_THROW(stage_pex(*serial, -1), std::out_of_range);
}

TEST(AssignBranch, Validation) {
  const auto psp = core::make_psp_strategy("ud");
  const auto serial = task::parse_notation("[A@0:1 B@0:1]");
  EXPECT_THROW(assign_branch_deadline(*psp, *serial, 0, 0.0, 9.0),
               std::invalid_argument);
  const auto par = task::parse_notation("[A@0:1 || B@0:1]");
  EXPECT_THROW(assign_branch_deadline(*psp, *par, 2, 0.0, 9.0),
               std::out_of_range);
}

TEST(Plan, UdUdAssignsEndToEndDeadlineToParallelLeaves) {
  const auto tree = task::parse_notation("[A@0:1 || B@1:2 || C@2:3]");
  const auto psp = core::make_psp_strategy("ud");
  const auto ssp = core::make_ssp_strategy("ud");
  const auto plan = plan_assignment(*tree, 0.0, 9.0, *psp, *ssp);
  ASSERT_EQ(plan.size(), 3u);
  for (const auto& a : plan) {
    EXPECT_DOUBLE_EQ(a.planned_dispatch, 0.0);
    EXPECT_DOUBLE_EQ(a.virtual_deadline, 9.0);
  }
}

TEST(Plan, Div1OnFlatParallel) {
  // Figure 4: deadline 9, three branches -> every leaf deadline 3.
  const auto tree = task::parse_notation("[A@0:4 || B@1:4 || C@2:4]");
  const auto psp = core::make_psp_strategy("div-1");
  const auto ssp = core::make_ssp_strategy("ud");
  const auto plan = plan_assignment(*tree, 0.0, 9.0, *psp, *ssp);
  for (const auto& a : plan) EXPECT_DOUBLE_EQ(a.virtual_deadline, 3.0);
}

TEST(Plan, SerialStagesDispatchSequentially) {
  const auto tree = task::parse_notation("[A@0:2 B@1:3 C@2:5]");
  const auto psp = core::make_psp_strategy("ud");
  const auto ssp = core::make_ssp_strategy("eqf");
  const auto plan = plan_assignment(*tree, 0.0, 20.0, *psp, *ssp);
  ASSERT_EQ(plan.size(), 3u);
  // EQF with pex {2,3,5}, slack 10: stage deadlines 4, then from 4 the
  // remaining slack is 20-4-8=8, share 3/8 -> 4+3+3=10, then 20.
  EXPECT_DOUBLE_EQ(plan[0].planned_dispatch, 0.0);
  EXPECT_DOUBLE_EQ(plan[0].virtual_deadline, 4.0);
  EXPECT_DOUBLE_EQ(plan[1].planned_dispatch, 4.0);
  EXPECT_DOUBLE_EQ(plan[1].virtual_deadline, 10.0);
  EXPECT_DOUBLE_EQ(plan[2].planned_dispatch, 10.0);
  EXPECT_DOUBLE_EQ(plan[2].virtual_deadline, 20.0);
}

TEST(Plan, MixedSerialParallelComposition) {
  // The paper's SDA algorithm composes both strategies: serial stage
  // deadlines from SSP, then branch deadlines from PSP inside each stage.
  const auto tree =
      task::parse_notation("[A@0:1 [B@1:1 || C@2:1 || D@3:1 || E@4:1] F@5:1]");
  const auto psp = core::make_psp_strategy("div-1");
  const auto ssp = core::make_ssp_strategy("eqf");
  const auto plan = plan_assignment(*tree, 0.0, 18.0, *psp, *ssp);
  ASSERT_EQ(plan.size(), 6u);

  // Stage pex = {1, 1, 1}; slack 15, flexibility 5: stage deadlines at
  // 6, 12, 18 under the optimistic plan.
  EXPECT_DOUBLE_EQ(plan[0].virtual_deadline, 6.0);
  // Parallel stage: composite deadline 12, dispatched at 6, four branches;
  // DIV-1 gives 6 + (12-6)/4 = 7.5 to each.
  for (int i = 1; i <= 4; ++i) {
    EXPECT_DOUBLE_EQ(plan[static_cast<std::size_t>(i)].planned_dispatch, 6.0);
    EXPECT_DOUBLE_EQ(plan[static_cast<std::size_t>(i)].virtual_deadline, 7.5);
  }
  EXPECT_DOUBLE_EQ(plan[5].virtual_deadline, 18.0);
}

TEST(Plan, LeafOrderMatchesDfs) {
  const auto tree = task::parse_notation("[A@0:1 [B@1:1 || C@2:1] D@3:1]");
  const auto psp = core::make_psp_strategy("ud");
  const auto ssp = core::make_ssp_strategy("ud");
  const auto plan = plan_assignment(*tree, 0.0, 10.0, *psp, *ssp);
  const auto ls = task::leaves(*tree);
  ASSERT_EQ(plan.size(), ls.size());
  for (std::size_t i = 0; i < ls.size(); ++i) EXPECT_EQ(plan[i].leaf, ls[i]);
}

TEST(Plan, SingleLeafGetsDeadlineDirectly) {
  const auto tree = task::parse_notation("A@0:1");
  const auto psp = core::make_psp_strategy("div-1");
  const auto ssp = core::make_ssp_strategy("eqf");
  const auto plan = plan_assignment(*tree, 5.0, 11.0, *psp, *ssp);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_DOUBLE_EQ(plan[0].virtual_deadline, 11.0);
  EXPECT_DOUBLE_EQ(plan[0].planned_dispatch, 5.0);
}

}  // namespace
