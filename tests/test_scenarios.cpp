// Unit tests for the named scenario library.
#include "src/workload/scenarios.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <stdexcept>

namespace {

using namespace sda::workload;

TEST(Scenarios, AllWellFormed) {
  ASSERT_GE(scenarios().size(), 5u);
  std::set<std::string> names;
  for (const Scenario& s : scenarios()) {
    EXPECT_FALSE(s.name.empty());
    EXPECT_FALSE(s.description.empty());
    EXPECT_GE(s.stage_widths.size(), 2u);
    for (int w : s.stage_widths) {
      EXPECT_GE(w, 1);
      EXPECT_LE(w, 6);  // fits the baseline k = 6 system
    }
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate " << s.name;
  }
}

TEST(Scenarios, StockTradingIsFigure14) {
  const Scenario& s = find_scenario("stock-trading");
  EXPECT_EQ(s.stage_widths, (std::vector<int>{1, 4, 1, 4, 1}));
  EXPECT_EQ(std::accumulate(s.stage_widths.begin(), s.stage_widths.end(), 0),
            11);
}

TEST(Scenarios, LookupByName) {
  EXPECT_EQ(find_scenario("web-request").stage_widths.size(), 3u);
  EXPECT_EQ(find_scenario("sensor-fusion").stage_widths.front(), 6);
}

TEST(Scenarios, UnknownNameListsKnown) {
  try {
    find_scenario("bitcoin-miner");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bitcoin-miner"), std::string::npos);
    EXPECT_NE(what.find("stock-trading"), std::string::npos);
  }
}

}  // namespace
