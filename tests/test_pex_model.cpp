// Unit tests for the execution-time prediction models.
#include "src/workload/pex_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using sda::util::Rng;
using sda::workload::PexKind;
using sda::workload::PexModel;

TEST(PexModel, ExactIsIdentity) {
  Rng rng(1);
  const PexModel m = PexModel::exact();
  EXPECT_EQ(m.kind(), PexKind::kExact);
  for (double ex : {0.0, 0.5, 3.0, 100.0}) {
    EXPECT_DOUBLE_EQ(m.predict(ex, rng), ex);
  }
}

TEST(PexModel, LogUniformBounded) {
  Rng rng(2);
  const PexModel m = PexModel::log_uniform(2.0);
  for (int i = 0; i < 10000; ++i) {
    const double p = m.predict(4.0, rng);
    ASSERT_GE(p, 2.0 - 1e-12);   // 4 / 2
    ASSERT_LE(p, 8.0 + 1e-12);   // 4 * 2
  }
}

TEST(PexModel, LogUniformUnbiasedInLogSpace) {
  Rng rng(3);
  const PexModel m = PexModel::log_uniform(4.0);
  double log_sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) log_sum += std::log(m.predict(1.0, rng));
  EXPECT_NEAR(log_sum / n, 0.0, 0.02);
}

TEST(PexModel, LogUniformFactorOneIsExact) {
  Rng rng(4);
  const PexModel m = PexModel::log_uniform(1.0);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(m.predict(2.5, rng), 2.5);
}

TEST(PexModel, DistributionMeanIgnoresDraw) {
  Rng rng(5);
  const PexModel m = PexModel::distribution_mean(1.0);
  EXPECT_DOUBLE_EQ(m.predict(0.01, rng), 1.0);
  EXPECT_DOUBLE_EQ(m.predict(50.0, rng), 1.0);
  EXPECT_EQ(m.kind(), PexKind::kDistributionMean);
  EXPECT_DOUBLE_EQ(m.parameter(), 1.0);
}

}  // namespace
