// Unit tests for the earliest-deadline-first ready queue.
#include "src/sched/edf.hpp"

#include <gtest/gtest.h>

#include "src/task/task.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace sda;
using sched::EdfScheduler;
using task::make_local_task;
using task::TaskPtr;

TaskPtr with_deadline(std::uint64_t id, double dl) {
  return make_local_task(id, 0, 0.0, 1.0, dl);
}

TEST(Edf, EmptyBehaviour) {
  EdfScheduler edf;
  EXPECT_EQ(edf.size(), 0u);
  EXPECT_TRUE(edf.empty());
  EXPECT_EQ(edf.pop(), nullptr);
  EXPECT_EQ(edf.peek(), nullptr);
}

TEST(Edf, PopsEarliestDeadlineFirst) {
  EdfScheduler edf;
  edf.push(with_deadline(1, 9.0));
  edf.push(with_deadline(2, 3.0));
  edf.push(with_deadline(3, 6.0));
  EXPECT_EQ(edf.pop()->id, 2u);
  EXPECT_EQ(edf.pop()->id, 3u);
  EXPECT_EQ(edf.pop()->id, 1u);
}

TEST(Edf, OrdersByVirtualNotRealDeadline) {
  EdfScheduler edf;
  TaskPtr a = with_deadline(1, 10.0);
  a->attrs.virtual_deadline = 2.0;  // promoted (DIV-x style)
  TaskPtr b = with_deadline(2, 5.0);
  edf.push(a);
  edf.push(b);
  EXPECT_EQ(edf.pop()->id, 1u);
}

TEST(Edf, TiesAreFifo) {
  EdfScheduler edf;
  for (std::uint64_t id = 1; id <= 5; ++id) edf.push(with_deadline(id, 4.0));
  for (std::uint64_t id = 1; id <= 5; ++id) EXPECT_EQ(edf.pop()->id, id);
}

TEST(Edf, PeekMatchesPop) {
  EdfScheduler edf;
  edf.push(with_deadline(1, 9.0));
  edf.push(with_deadline(2, 3.0));
  EXPECT_EQ(edf.peek()->id, 2u);
  EXPECT_EQ(edf.pop()->id, 2u);
  EXPECT_EQ(edf.peek()->id, 1u);
}

TEST(Edf, RemoveSpecificTask) {
  EdfScheduler edf;
  TaskPtr a = with_deadline(1, 3.0);
  TaskPtr b = with_deadline(2, 3.0);  // same deadline as a
  TaskPtr c = with_deadline(3, 7.0);
  edf.push(a);
  edf.push(b);
  edf.push(c);
  const TaskPtr removed = edf.remove(*b);
  ASSERT_NE(removed, nullptr);
  EXPECT_EQ(removed.get(), b.get());
  EXPECT_EQ(edf.size(), 2u);
  EXPECT_EQ(edf.pop()->id, 1u);
  EXPECT_EQ(edf.pop()->id, 3u);
}

TEST(Edf, RemoveAbsentTaskReturnsNull) {
  EdfScheduler edf;
  TaskPtr queued = with_deadline(1, 3.0);
  TaskPtr other = with_deadline(2, 3.0);
  edf.push(queued);
  EXPECT_EQ(edf.remove(*other), nullptr);
  EXPECT_EQ(edf.size(), 1u);
  // Removing twice fails the second time.
  EXPECT_NE(edf.remove(*queued), nullptr);
  EXPECT_EQ(edf.remove(*queued), nullptr);
}

TEST(Edf, NegativeDeadlinesSortFirst) {
  // GF sets virtual deadlines hugely negative; they must win.
  EdfScheduler edf;
  TaskPtr gf = with_deadline(1, 5.0);
  gf->attrs.virtual_deadline = 5.0 - 1e9;
  edf.push(with_deadline(2, 0.1));
  edf.push(gf);
  EXPECT_EQ(edf.pop()->id, 1u);
}

TEST(Edf, Name) { EXPECT_EQ(EdfScheduler().name(), "EDF"); }

TEST(Edf, LargeMixedWorkloadStaysSorted) {
  EdfScheduler edf;
  std::uint64_t state = 5;
  for (std::uint64_t id = 1; id <= 2000; ++id) {
    const double dl =
        static_cast<double>(sda::util::splitmix64_next(state) % 1000);
    edf.push(with_deadline(id, dl));
  }
  double last = -1.0;
  while (edf.size() > 0) {
    const TaskPtr t = edf.pop();
    EXPECT_GE(t->attrs.virtual_deadline, last);
    last = t->attrs.virtual_deadline;
  }
}

}  // namespace
