// Tests for the heterogeneity extensions: node speed factors, per-subtask
// execution-time spread, and state-aware placement — each exercised through
// both the Node API and the assembled runner.
#include <gtest/gtest.h>

#include <memory>

#include "src/exp/runner.hpp"
#include "src/metrics/task_class.hpp"
#include "src/sched/edf.hpp"
#include "src/sim/engine.hpp"

namespace {

using namespace sda;

TEST(NodeSpeed, ServiceTimeScales) {
  sim::Engine engine;
  sched::Node::Config nc;
  nc.speed = 2.0;  // twice as fast
  sched::Node node(engine, std::make_unique<sched::EdfScheduler>(), nc);
  auto t = task::make_local_task(1, 0, 0.0, 3.0, 10.0);
  node.submit(t);
  engine.run();
  EXPECT_DOUBLE_EQ(t->finished_at, 1.5);  // demand 3 at speed 2
  EXPECT_DOUBLE_EQ(node.busy_time(), 1.5);
}

TEST(NodeSpeed, SlowNode) {
  sim::Engine engine;
  sched::Node::Config nc;
  nc.speed = 0.5;
  sched::Node node(engine, std::make_unique<sched::EdfScheduler>(), nc);
  auto t = task::make_local_task(1, 0, 0.0, 3.0, 10.0);
  node.submit(t);
  engine.run();
  EXPECT_DOUBLE_EQ(t->finished_at, 6.0);
}

TEST(NodeSpeed, PreemptionAccountsInDemandUnits) {
  sim::Engine engine;
  sched::Node::Config nc;
  nc.speed = 2.0;
  nc.preemptive = true;
  sched::Node node(engine, std::make_unique<sched::EdfScheduler>(), nc);
  auto big = task::make_local_task(1, 0, 0.0, 8.0, 100.0);  // 4 wall units
  node.submit(big);
  engine.at(1.0, [&] {
    node.submit(task::make_local_task(2, 0, 1.0, 2.0, 2.5));  // 1 wall unit
  });
  engine.run();
  // big: runs [0,1) consuming 2 demand, preempted with 6 left, resumes at 2
  // for 3 wall units -> finishes at 5.
  EXPECT_DOUBLE_EQ(big->finished_at, 5.0);
}

TEST(NodeSpeed, RejectsNonPositive) {
  sim::Engine engine;
  sched::Node::Config nc;
  nc.speed = 0.0;
  EXPECT_THROW(
      sched::Node(engine, std::make_unique<sched::EdfScheduler>(), nc),
      std::invalid_argument);
}

TEST(RunnerHeterogeneity, NodeSpeedsValidated) {
  exp::ExperimentConfig c = exp::baseline_config();
  c.sim_time = 500.0;
  c.node_speeds = {1.0, 1.0};  // wrong length (k = 6)
  EXPECT_THROW(exp::run_once(c, 1), std::invalid_argument);
}

TEST(RunnerHeterogeneity, MeanOneSpeedsKeepUtilizationNearLoad) {
  exp::ExperimentConfig c = exp::baseline_config();
  c.sim_time = 20000.0;
  c.node_speeds = {0.5, 0.75, 1.0, 1.0, 1.25, 1.5};  // mean 1.0
  const auto r = exp::run_once(c, 3);
  // The slow node runs hotter, fast nodes cooler; the *mean* utilization
  // deviates from load because per-node rho_i = load/speed_i averages
  // above load (Jensen).  Sanity: stable and in a plausible band.
  EXPECT_GT(r.mean_utilization, 0.45);
  EXPECT_LT(r.mean_utilization, 0.75);
  EXPECT_GT(r.collector.total_finished(), 1000u);
}

TEST(RunnerHeterogeneity, SlowNodesRaiseMissRates) {
  exp::ExperimentConfig base = exp::baseline_config();
  base.sim_time = 40000.0;
  const auto homog = exp::run_once(base, 4);
  exp::ExperimentConfig hetero = base;
  hetero.node_speeds = {0.5, 0.75, 1.0, 1.0, 1.25, 1.5};
  const auto r = exp::run_once(hetero, 4);
  EXPECT_GT(r.collector.counts(metrics::global_class(4)).miss_rate(),
            homog.collector.counts(metrics::global_class(4)).miss_rate());
}

TEST(RunnerHeterogeneity, ExecSpreadRunsAndLoadsCorrectly) {
  exp::ExperimentConfig c = exp::baseline_config();
  c.sim_time = 30000.0;
  c.subtask_exec_spread = 4.0;
  const auto r = exp::run_once(c, 5);
  // The load solver compensates for E[s^U] > 1, so utilization ~ load.
  EXPECT_NEAR(r.mean_utilization, 0.5, 0.04);
  EXPECT_GT(r.collector.counts(metrics::global_class(4)).finished, 100u);
}

TEST(RunnerHeterogeneity, LeastQueuedPlacementHelpsGlobals) {
  exp::ExperimentConfig c = exp::baseline_config();
  c.sim_time = 40000.0;
  c.load = 0.6;
  const auto uniform = exp::run_once(c, 6);
  c.placement = "least-queued";
  const auto balanced = exp::run_once(c, 6);
  // Placing subtasks on idle nodes lowers their queueing time; globals
  // should miss (weakly) less often.
  EXPECT_LE(balanced.collector.counts(metrics::global_class(4)).miss_rate(),
            uniform.collector.counts(metrics::global_class(4)).miss_rate() +
                0.01);
}

TEST(RunnerHeterogeneity, UnknownPlacementThrows) {
  exp::ExperimentConfig c = exp::baseline_config();
  c.sim_time = 100.0;
  c.placement = "hash-ring";
  EXPECT_THROW(exp::run_once(c, 1), std::invalid_argument);
}

}  // namespace
