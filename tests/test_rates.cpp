// Unit tests for the load-equation solver (paper Section 5).
#include "src/workload/rates.hpp"

#include <gtest/gtest.h>

namespace {

using namespace sda::workload;

TEST(Rates, BaselineTable1) {
  // k=6, load .5, frac_local .75, n=4 (expected work 4):
  // lambda_local = .5*.75 = .375 per node;
  // lambda_global = .5*.25*6/4 = .1875.
  RateParams p;
  const Rates r = solve_rates(p);
  EXPECT_DOUBLE_EQ(r.lambda_local, 0.375);
  EXPECT_DOUBLE_EQ(r.lambda_global, 0.1875);
}

TEST(Rates, RoundTripThroughInverses) {
  for (double load : {0.1, 0.5, 0.9}) {
    for (double frac : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      RateParams p;
      p.k = 6;
      p.load = load;
      p.frac_local = frac;
      p.expected_global_work = 11.0;  // the Fig 14 graph
      const Rates r = solve_rates(p);
      EXPECT_NEAR(normalized_load(p, r), load, 1e-12);
      if (load > 0.0) {
        EXPECT_NEAR(fraction_local(p, r), frac, 1e-12);
      }
    }
  }
}

TEST(Rates, NoLocals) {
  RateParams p;
  p.frac_local = 0.0;
  const Rates r = solve_rates(p);
  EXPECT_DOUBLE_EQ(r.lambda_local, 0.0);
  EXPECT_GT(r.lambda_global, 0.0);
}

TEST(Rates, NoGlobals) {
  RateParams p;
  p.frac_local = 1.0;
  const Rates r = solve_rates(p);
  EXPECT_DOUBLE_EQ(r.lambda_global, 0.0);
  EXPECT_DOUBLE_EQ(r.lambda_local, 0.5);
}

TEST(Rates, ZeroLoad) {
  RateParams p;
  p.load = 0.0;
  const Rates r = solve_rates(p);
  EXPECT_DOUBLE_EQ(r.lambda_local, 0.0);
  EXPECT_DOUBLE_EQ(r.lambda_global, 0.0);
  EXPECT_DOUBLE_EQ(normalized_load(p, r), 0.0);
  EXPECT_DOUBLE_EQ(fraction_local(p, r), 0.0);  // degenerate: no work at all
}

TEST(Rates, MuLocalScalesLocalRate) {
  RateParams p;
  p.mu_local = 2.0;  // locals take 0.5 time units on average
  const Rates r = solve_rates(p);
  EXPECT_DOUBLE_EQ(r.lambda_local, 0.75);  // twice as many to carry the load
}

TEST(Rates, ExpectedWorkScalesGlobalRate) {
  RateParams a, b;
  a.expected_global_work = 4.0;
  b.expected_global_work = 8.0;
  EXPECT_DOUBLE_EQ(solve_rates(a).lambda_global,
                   2.0 * solve_rates(b).lambda_global);
}

TEST(Rates, Validation) {
  RateParams p;
  p.k = 0;
  EXPECT_THROW(solve_rates(p), std::invalid_argument);
  p = RateParams{};
  p.load = -0.1;
  EXPECT_THROW(solve_rates(p), std::invalid_argument);
  p = RateParams{};
  p.frac_local = 1.5;
  EXPECT_THROW(solve_rates(p), std::invalid_argument);
  p = RateParams{};
  p.mu_local = 0.0;
  EXPECT_THROW(solve_rates(p), std::invalid_argument);
  p = RateParams{};
  p.expected_global_work = 0.0;
  EXPECT_THROW(solve_rates(p), std::invalid_argument);
}

}  // namespace
