// Cross-cutting property tests: parameterized sweeps over strategy/abort/
// policy grids asserting invariants that must hold for EVERY configuration,
// plus randomized EQF/plan invariants over generated trees.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "src/core/sda.hpp"
#include "src/exp/runner.hpp"
#include "src/metrics/task_class.hpp"
#include "src/task/tree.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace sda;

// ---------------------------------------------------------------------------
// Grid property: for every (psp, pm-abort, local-abort, policy) combination
// the assembled system satisfies basic sanity invariants.
// ---------------------------------------------------------------------------

using GridParam =
    std::tuple<std::string /*psp*/, int /*abort mode*/, std::string /*policy*/>;

class SystemInvariants : public ::testing::TestWithParam<GridParam> {};

TEST_P(SystemInvariants, HoldOnShortRun) {
  const auto& [psp, abort_mode, policy] = GetParam();
  exp::ExperimentConfig c = exp::baseline_config();
  c.sim_time = 8000.0;
  c.replications = 1;
  c.load = 0.6;
  c.psp = psp;
  c.scheduler_policy = policy;
  switch (abort_mode) {
    case 0: break;
    case 1: c.pm_abort = core::PmAbortMode::kRealDeadline; break;
    case 2: c.local_abort = sched::LocalAbortPolicy::kAbortOnVirtualDeadline;
            break;
  }
  if (abort_mode == 2 && psp == "gf") {
    // GF is inapplicable under local aborts unless subtasks are protected
    // (§7.3); exercise the protected variant.
    c.subtasks_non_abortable = true;
  }

  const exp::RunResult r = exp::run_once(c, 77);

  // Rates: miss fractions are probabilities.
  for (int cls : r.collector.classes()) {
    const auto counts = r.collector.counts(cls);
    EXPECT_LE(counts.missed, counts.finished);
    EXPECT_LE(counts.aborted, counts.missed);
    EXPECT_GE(counts.work_total, counts.work_missed);
  }
  // Utilization can never exceed 1 and roughly tracks the offered load
  // (abortion regimes shed some work, so only an upper bound plus slack).
  EXPECT_LE(r.mean_utilization, 1.0);
  EXPECT_GT(r.mean_utilization, 0.3);
  // Globals are conserved.
  EXPECT_LE(r.globals_completed + r.globals_aborted, r.globals_generated);
  EXPECT_GE(r.globals_completed + r.globals_aborted + 200,
            r.globals_generated);
  // Someone finished something.
  EXPECT_GT(r.collector.total_finished(), 1000u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SystemInvariants,
    ::testing::Combine(::testing::Values("ud", "div-1", "div-4", "gf"),
                       ::testing::Values(0, 1, 2),
                       ::testing::Values("edf", "fifo", "llf", "spt")),
    [](const ::testing::TestParamInfo<GridParam>& param_info) {
      const int abort_mode = std::get<1>(param_info.param);
      std::string name = std::get<0>(param_info.param) + "_" +
                         (abort_mode == 0   ? "noabort"
                          : abort_mode == 1 ? "pmabort"
                                            : "localabort") +
                         "_" + std::get<2>(param_info.param);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Grid property over the serial-parallel graph workload: every SSP x PSP
// pair (plus links and burstiness) keeps the system consistent.
// ---------------------------------------------------------------------------

using GraphParam = std::tuple<std::string /*psp*/, std::string /*ssp*/,
                              int /*links*/, double /*burst*/>;

class GraphInvariants : public ::testing::TestWithParam<GraphParam> {};

TEST_P(GraphInvariants, HoldOnShortRun) {
  const auto& [psp, ssp, links, burst] = GetParam();
  exp::ExperimentConfig c = exp::graph_config();
  c.sim_time = 8000.0;
  c.replications = 1;
  c.load = 0.55;
  c.psp = psp;
  c.ssp = ssp;
  c.link_count = links;
  c.local_burst_factor = burst;

  const exp::RunResult r = exp::run_once(c, 101);
  EXPECT_LE(r.mean_utilization, 1.0);
  EXPECT_GT(r.mean_utilization, 0.3);
  if (links > 0) {
    EXPECT_GT(r.mean_link_utilization, 0.0);
    EXPECT_LT(r.mean_link_utilization, 0.8);
  } else {
    EXPECT_DOUBLE_EQ(r.mean_link_utilization, 0.0);
  }
  EXPECT_LE(r.globals_completed, r.globals_generated);
  EXPECT_GE(r.globals_completed + 100, r.globals_generated);
  const auto counts = r.collector.counts(metrics::global_class(0));
  EXPECT_GT(counts.finished, 50u);
  EXPECT_LE(counts.missed, counts.finished);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GraphInvariants,
    ::testing::Combine(::testing::Values("ud", "div-1", "gf"),
                       ::testing::Values("ud", "ed", "eqs", "eqf"),
                       ::testing::Values(0, 2),
                       ::testing::Values(1.0, 4.0)),
    [](const ::testing::TestParamInfo<GraphParam>& param_info) {
      std::string name = std::get<0>(param_info.param) + "_" +
                         std::get<1>(param_info.param) + "_links" +
                         std::to_string(std::get<2>(param_info.param)) + "_burst" +
                         std::to_string(
                             static_cast<int>(std::get<3>(param_info.param)));
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Randomized structural property: for random serial-parallel trees and any
// strategy pair, the offline plan covers every leaf exactly once, in DFS
// order, and planned dispatch times are non-decreasing along serial chains.
// ---------------------------------------------------------------------------

task::TreePtr random_tree(util::Rng& rng, int depth_budget) {
  const double roll = rng.uniform01();
  if (depth_budget == 0 || roll < 0.4) {
    return task::make_leaf(static_cast<int>(rng.uniform_int(0, 5)),
                           rng.exponential(1.0), rng.exponential(1.0));
  }
  const int kids = static_cast<int>(rng.uniform_int(2, 4));
  std::vector<task::TreePtr> children;
  for (int i = 0; i < kids; ++i) {
    children.push_back(random_tree(rng, depth_budget - 1));
  }
  if (roll < 0.7) return task::make_serial(std::move(children));
  return task::make_parallel(std::move(children));
}

class PlanProperties
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {};

TEST_P(PlanProperties, CoverageAndMonotoneDispatch) {
  const auto& [psp_name, ssp_name] = GetParam();
  const auto psp = core::make_psp_strategy(psp_name);
  const auto ssp = core::make_ssp_strategy(ssp_name);
  util::Rng rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    const task::TreePtr tree = random_tree(rng, 3);
    const double deadline = task::critical_path_pex(*tree) +
                            rng.uniform(0.0, 20.0);
    const auto plan =
        core::plan_assignment(*tree, 0.0, deadline, *psp, *ssp);
    const auto ls = task::leaves(*tree);
    ASSERT_EQ(plan.size(), ls.size());
    for (std::size_t i = 0; i < ls.size(); ++i) {
      EXPECT_EQ(plan[i].leaf, ls[i]);
      EXPECT_GE(plan[i].planned_dispatch, 0.0);
      if (psp_name != "gf") {
        // Everything except GF stays within [dispatch-anchored, deadline].
        EXPECT_LE(plan[i].virtual_deadline, deadline + 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    StrategyPairs, PlanProperties,
    ::testing::Combine(::testing::Values("ud", "div-1", "gf"),
                       ::testing::Values("ud", "ed", "eqs", "eqf")),
    [](const auto& param_info) {
      std::string name =
          std::get<0>(param_info.param) + "_" + std::get<1>(param_info.param);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// EQF flexibility invariant on random serial chains (optimistic plan): the
// slack/pex ratio is the same for every stage.
// ---------------------------------------------------------------------------

TEST(EqfProperty, UniformFlexibilityOnRandomChains) {
  const auto psp = core::make_psp_strategy("ud");
  const auto ssp = core::make_ssp_strategy("eqf");
  util::Rng rng(7);
  for (int trial = 0; trial < 300; ++trial) {
    const int stages = static_cast<int>(rng.uniform_int(2, 8));
    std::vector<task::TreePtr> chain;
    double total_pex = 0.0;
    for (int i = 0; i < stages; ++i) {
      const double pex = rng.uniform(0.1, 5.0);
      total_pex += pex;
      chain.push_back(task::make_leaf(0, pex, pex));
    }
    const task::TreePtr tree = task::make_serial(std::move(chain));
    const double slack = rng.uniform(0.1, 30.0);
    const double deadline = total_pex + slack;
    const auto plan = core::plan_assignment(*tree, 0.0, deadline, *psp, *ssp);

    const double expected_flex = slack / total_pex;
    for (const auto& a : plan) {
      const double flex =
          (a.virtual_deadline - a.planned_dispatch - a.leaf->pred_exec) /
          a.leaf->pred_exec;
      EXPECT_NEAR(flex, expected_flex, 1e-6);
    }
    // The last stage's deadline equals the end-to-end deadline.
    EXPECT_NEAR(plan.back().virtual_deadline, deadline, 1e-6);
  }
}

// The DIV-x virtual deadline converges to the arrival time as x -> inf but
// never reaches it (the paper's DIV-100 discussion).
TEST(DivProperty, ApproachesArrivalFromAbove) {
  core::PspContext ctx;
  ctx.now = 5.0;
  ctx.deadline = 15.0;
  ctx.branch_count = 4;
  double prev = 1e300;
  for (double x : {1.0, 10.0, 100.0, 1000.0, 1e6}) {
    const auto div = core::make_psp_strategy("div-" + std::to_string(x));
    const double v = div->assign(ctx, 0, 1.0);
    EXPECT_GT(v, ctx.now);
    EXPECT_LT(v, prev);
    prev = v;
  }
  EXPECT_NEAR(prev, ctx.now, 1e-5);
}

}  // namespace
