// Unit tests for the serial-parallel text notation.
#include "src/task/notation.hpp"

#include <gtest/gtest.h>

namespace {

using namespace sda::task;

TEST(Notation, BareLeaf) {
  const TreePtr t = parse_notation("T1");
  EXPECT_TRUE(t->is_leaf());
  EXPECT_EQ(t->name, "T1");
  EXPECT_EQ(t->exec_node, -1);
}

TEST(Notation, SerialChain) {
  const TreePtr t = parse_notation("[A B C]");
  ASSERT_TRUE(t->is_serial());
  ASSERT_EQ(t->children.size(), 3u);
  EXPECT_EQ(t->children[0]->name, "A");
  EXPECT_EQ(t->children[2]->name, "C");
}

TEST(Notation, ParallelGroup) {
  const TreePtr t = parse_notation("[A || B || C]");
  ASSERT_TRUE(t->is_parallel());
  ASSERT_EQ(t->children.size(), 3u);
}

TEST(Notation, Figure1Example) {
  const TreePtr t =
      parse_notation("[T1 [T2 || [T3 T4 T5]] [T6 || T7] T8]");
  ASSERT_TRUE(t->is_serial());
  ASSERT_EQ(t->children.size(), 4u);
  EXPECT_TRUE(t->children[1]->is_parallel());
  EXPECT_TRUE(t->children[1]->children[1]->is_serial());
  EXPECT_EQ(leaf_count(*t), 8);
}

TEST(Notation, LeafAttributes) {
  const TreePtr t = parse_notation("T3@2:1.5/1.2");
  EXPECT_EQ(t->exec_node, 2);
  EXPECT_DOUBLE_EQ(t->exec_time, 1.5);
  EXPECT_DOUBLE_EQ(t->pred_exec, 1.2);
}

TEST(Notation, LeafAttributesPexDefaultsToEx) {
  const TreePtr t = parse_notation("T@0:2.5");
  EXPECT_DOUBLE_EQ(t->exec_time, 2.5);
  EXPECT_DOUBLE_EQ(t->pred_exec, 2.5);
}

TEST(Notation, SingletonBracketsCollapse) {
  const TreePtr t = parse_notation("[A]");
  EXPECT_TRUE(t->is_leaf());
  EXPECT_EQ(t->name, "A");
}

TEST(Notation, WhitespaceIsFlexible) {
  const TreePtr t = parse_notation("  [ A||B ]  ");
  ASSERT_TRUE(t->is_parallel());
  EXPECT_EQ(t->children.size(), 2u);
}

TEST(Notation, MixedSeparatorsRejected) {
  EXPECT_THROW(parse_notation("[A || B C]"), NotationError);
  EXPECT_THROW(parse_notation("[A B || C]"), NotationError);
}

TEST(Notation, MalformedInputsRejected) {
  EXPECT_THROW(parse_notation(""), NotationError);
  EXPECT_THROW(parse_notation("[A B"), NotationError);
  EXPECT_THROW(parse_notation("A B"), NotationError);     // trailing input
  EXPECT_THROW(parse_notation("[]"), NotationError);
  EXPECT_THROW(parse_notation("[A |] B]"), NotationError);
  EXPECT_THROW(parse_notation("T@x"), NotationError);     // malformed node
  EXPECT_THROW(parse_notation("T@0:"), NotationError);    // malformed ex
}

TEST(Notation, ErrorCarriesPosition) {
  try {
    parse_notation("[A B");
    FAIL() << "expected NotationError";
  } catch (const NotationError& e) {
    EXPECT_EQ(e.position(), 0u);  // points at the unclosed '['
  }
}

TEST(Notation, PrintPlain) {
  const TreePtr t = parse_notation("[T1 [T2 || T3] T4]");
  EXPECT_EQ(to_notation(*t), "[T1 [T2 || T3] T4]");
}

TEST(Notation, RoundTripWithAttributes) {
  const std::string text = "[A@0:1/1 [B@1:2/2 || C@2:0.5/0.5]]";
  const TreePtr t = parse_notation(text);
  const std::string printed = to_notation(*t, /*with_attrs=*/true);
  const TreePtr again = parse_notation(printed);
  EXPECT_EQ(leaf_count(*again), 3);
  EXPECT_EQ(to_notation(*again, true), printed);
  // Semantic equality of the round trip.
  const auto l1 = leaves(*t);
  const auto l2 = leaves(*again);
  ASSERT_EQ(l1.size(), l2.size());
  for (std::size_t i = 0; i < l1.size(); ++i) {
    EXPECT_EQ(l1[i]->exec_node, l2[i]->exec_node);
    EXPECT_DOUBLE_EQ(l1[i]->exec_time, l2[i]->exec_time);
    EXPECT_DOUBLE_EQ(l1[i]->pred_exec, l2[i]->pred_exec);
  }
}

TEST(Notation, UnnamedLeavesPrintPlaceholder) {
  const TreePtr t = make_leaf(0, 1.0);
  EXPECT_EQ(to_notation(*t), "T");
}

TEST(Notation, DeepNesting) {
  const TreePtr t = parse_notation("[[[[A || B]]] C]");
  EXPECT_EQ(leaf_count(*t), 3);
  EXPECT_TRUE(t->is_serial());
}

}  // namespace
