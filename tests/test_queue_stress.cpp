// Randomized stress tests: the pooled, generation-tagged EventQueue and the
// indexed scheduler heaps are checked operation-by-operation against naive
// reference models (linear scans over flat vectors).  Any divergence in pop
// order, FIFO tie-breaking, pending()/size() accounting, or cancel/remove
// return values fails loudly with the seed printed via SCOPED_TRACE.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/sched/edf.hpp"
#include "src/sched/fifo.hpp"
#include "src/sim/event_queue.hpp"
#include "src/task/task.hpp"
#include "src/util/rng.hpp"

namespace sda {
namespace {

// --- EventQueue vs. a linear-scan reference ------------------------------

/// Reference model: every push appends a record; pop scans for the minimum
/// (time, seq); cancel flips a liveness bit.  Obviously correct, O(n) per op.
struct RefModel {
  struct Rec {
    sim::Time time;
    std::uint64_t seq;
    int payload;
    sim::EventId id;
    bool alive = true;
  };
  std::vector<Rec> recs;
  std::uint64_t next_seq = 0;

  void push(sim::Time t, int payload, sim::EventId id) {
    recs.push_back(Rec{t, next_seq++, payload, id, true});
  }
  std::size_t size() const {
    std::size_t n = 0;
    for (const Rec& r : recs) n += r.alive ? 1 : 0;
    return n;
  }
  Rec* min_alive() {
    Rec* best = nullptr;
    for (Rec& r : recs) {
      if (!r.alive) continue;
      if (best == nullptr || r.time < best->time ||
          (r.time == best->time && r.seq < best->seq)) {
        best = &r;
      }
    }
    return best;
  }
  bool cancel(sim::EventId id) {
    for (Rec& r : recs) {
      if (r.alive && r.id == id) {
        r.alive = false;
        return true;
      }
    }
    return false;
  }
  bool pending(sim::EventId id) const {
    for (const Rec& r : recs) {
      if (r.alive && r.id == id) return true;
    }
    return false;
  }
};

TEST(EventQueueStress, MatchesReferenceUnderRandomInterleaving) {
  util::Rng rng(20250806);
  for (int round = 0; round < 20; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    sim::EventQueue q;
    RefModel ref;
    std::vector<sim::EventId> issued;  // includes dead handles on purpose
    int next_payload = 0;
    int fired = -1;  // payload captured by the most recent pop

    for (int step = 0; step < 4000; ++step) {
      const double dice = rng.uniform01();
      if (dice < 0.45 || q.empty()) {
        // Duplicate times are the interesting case: draw from a tiny set so
        // FIFO tie-breaking is exercised constantly.
        const sim::Time t = static_cast<sim::Time>(rng.uniform_int(0, 7));
        const int payload = next_payload++;
        const sim::EventId id = q.push(t, [payload, &fired] { fired = payload; });
        ref.push(t, payload, id);
        issued.push_back(id);
      } else if (dice < 0.70 && !issued.empty()) {
        // Cancel a random handle — often already fired/cancelled (stale).
        const std::size_t k = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(issued.size()) - 1));
        EXPECT_EQ(q.cancel(issued[k]), ref.cancel(issued[k]));
      } else {
        RefModel::Rec* expect = ref.min_alive();
        ASSERT_NE(expect, nullptr);
        EXPECT_EQ(q.peek_time(), expect->time);
        auto [t, fn] = q.pop();
        EXPECT_EQ(t, expect->time);
        fired = -1;
        fn();
        EXPECT_EQ(fired, expect->payload) << "pop order diverged";
        expect->alive = false;
      }
      ASSERT_EQ(q.size(), ref.size());
      EXPECT_EQ(q.empty(), ref.size() == 0);
      if (!issued.empty() && step % 17 == 0) {
        const std::size_t k = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(issued.size()) - 1));
        EXPECT_EQ(q.pending(issued[k]), ref.pending(issued[k]));
      }
    }

    // Drain: remaining pops must replay the reference's sorted tail exactly.
    while (!q.empty()) {
      RefModel::Rec* expect = ref.min_alive();
      ASSERT_NE(expect, nullptr);
      auto [t, fn] = q.pop();
      EXPECT_EQ(t, expect->time);
      fired = -1;
      fn();
      EXPECT_EQ(fired, expect->payload);
      expect->alive = false;
    }
    EXPECT_EQ(ref.size(), 0u);
  }
}

TEST(EventQueueStress, StaleHandlesStayInertAcrossSlotReuse) {
  // Slot recycling bumps the generation, so a handle from a previous tenant
  // must never cancel (or report pending for) the slot's new occupant.
  sim::EventQueue q;
  util::Rng rng(7);
  std::vector<sim::EventId> dead;
  for (int round = 0; round < 200; ++round) {
    const sim::EventId id = q.push(rng.uniform01(), [] {});
    if (round % 2 == 0) {
      ASSERT_TRUE(q.cancel(id));
    } else {
      (void)q.pop();
    }
    dead.push_back(id);
    // The slot just freed is recycled by this push; old handles must miss.
    const sim::EventId live = q.push(rng.uniform01(), [] {});
    for (const sim::EventId stale : dead) {
      EXPECT_FALSE(q.pending(stale));
      EXPECT_FALSE(q.cancel(stale));
    }
    EXPECT_TRUE(q.pending(live));
    ASSERT_TRUE(q.cancel(live));
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueStress, CancelReleasesCaptureEagerly) {
  // The pre-rewrite queue kept cancelled callables until their heap entry
  // surfaced in pop(); captures (tasks, timers) were pinned for the
  // duration.  Now cancel() must drop them on the spot.
  sim::EventQueue q;
  auto tracked = std::make_shared<int>(0);
  const sim::EventId id = q.push(50.0, [keep = tracked] { (void)keep; });
  q.push(1.0, [] {});  // earlier event keeps the cancelled one buried
  EXPECT_EQ(tracked.use_count(), 2);
  ASSERT_TRUE(q.cancel(id));
  EXPECT_EQ(tracked.use_count(), 1) << "cancel must destroy the callable "
                                       "immediately, not at pop time";
  EXPECT_EQ(q.size(), 1u);
}

// --- Indexed scheduler heaps vs. a stable-sort reference ------------------

task::TaskPtr stress_task(std::uint64_t id, double deadline) {
  return task::make_local_task(id, 0, 0.0, 1.0, deadline);
}

TEST(IndexedHeapStress, EdfMatchesStableSortedReference) {
  util::Rng rng(99);
  for (int round = 0; round < 10; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    sched::EdfScheduler edf;
    // Reference: vector kept in push order; pop = stable-min by (deadline,
    // enqueue order); remove = erase by identity.
    std::vector<task::TaskPtr> ref;
    std::vector<task::TaskPtr> all;
    std::uint64_t next_id = 1;

    auto ref_pop = [&ref]() -> task::TaskPtr {
      if (ref.empty()) return nullptr;
      auto best = ref.begin();
      for (auto it = ref.begin(); it != ref.end(); ++it) {
        if ((*it)->attrs.virtual_deadline < (*best)->attrs.virtual_deadline) {
          best = it;  // strictly earlier deadline wins; ties keep first
        }
      }
      task::TaskPtr out = *best;
      ref.erase(best);
      return out;
    };

    for (int step = 0; step < 2000; ++step) {
      const double dice = rng.uniform01();
      if (dice < 0.5 || ref.empty()) {
        // Coarse deadlines force ties, exercising enqueue_seq ordering.
        auto t = stress_task(next_id++, rng.uniform_int(0, 9));
        ref.push_back(t);
        all.push_back(t);
        edf.push(t);
      } else if (dice < 0.7) {
        // Remove a random task — queued or not (abort may race completion).
        const std::size_t k = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(all.size()) - 1));
        const auto it = std::find(ref.begin(), ref.end(), all[k]);
        const task::TaskPtr got = edf.remove(*all[k]);
        if (it != ref.end()) {
          EXPECT_EQ(got.get(), all[k].get());
          ref.erase(it);
        } else {
          EXPECT_EQ(got, nullptr);
        }
      } else {
        const task::TaskPtr expect = ref_pop();
        ASSERT_NE(expect, nullptr);
        const task::SimpleTask* top = edf.peek();
        ASSERT_NE(top, nullptr);
        EXPECT_EQ(top, expect.get());
        EXPECT_EQ(edf.pop().get(), expect.get()) << "EDF order diverged";
      }
      ASSERT_EQ(edf.size(), ref.size());
    }
    while (edf.size() > 0) {
      EXPECT_EQ(edf.pop().get(), ref_pop().get());
    }
    EXPECT_EQ(ref_pop(), nullptr);
    EXPECT_EQ(edf.pop(), nullptr);
  }
}

TEST(IndexedHeapStress, RemoveRejectsTaskQueuedElsewhere) {
  // queue_pos is intrusive, so a scheduler must verify identity before
  // trusting it: a task sitting in *another* scheduler's heap carries a
  // plausible-looking position.
  sched::EdfScheduler a;
  sched::EdfScheduler b;
  auto t = stress_task(1, 5.0);
  a.push(t);
  EXPECT_EQ(b.remove(*t), nullptr);
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(a.remove(*t).get(), t.get());
  EXPECT_EQ(a.size(), 0u);
  // And once removed, the task is re-pushable anywhere.
  b.push(t);
  EXPECT_EQ(b.pop().get(), t.get());
}

TEST(IndexedHeapStress, FifoPreservesArrivalOrderWithRemovals) {
  sched::FifoScheduler fifo;
  util::Rng rng(11);
  std::vector<task::TaskPtr> order;
  for (std::uint64_t i = 1; i <= 300; ++i) {
    auto t = stress_task(i, rng.uniform01());
    order.push_back(t);
    fifo.push(t);
  }
  // Remove every third task, then expect the untouched arrival order back.
  std::vector<task::TaskPtr> expect;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (i % 3 == 0) {
      EXPECT_EQ(fifo.remove(*order[i]).get(), order[i].get());
    } else {
      expect.push_back(order[i]);
    }
  }
  for (const auto& t : expect) {
    ASSERT_EQ(fifo.pop().get(), t.get());
  }
  EXPECT_EQ(fifo.pop(), nullptr);
}

}  // namespace
}  // namespace sda
