// Unit tests for subtask placement policies.
#include "src/workload/placement.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "src/sched/edf.hpp"
#include "src/sim/engine.hpp"

namespace {

using namespace sda;
using workload::LeastQueuedPlacement;
using workload::make_placement;
using workload::UniformPlacement;

TEST(UniformPlacementTest, DistinctAndInRange) {
  UniformPlacement p;
  util::Rng rng(1);
  int out[3];
  for (int trial = 0; trial < 500; ++trial) {
    p.choose(6, 3, rng, out);
    std::set<int> s(out, out + 3);
    EXPECT_EQ(s.size(), 3u);
    for (int v : out) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 6);
    }
  }
  EXPECT_EQ(p.name(), "uniform");
}

TEST(UniformPlacementTest, RejectsCountOverK) {
  UniformPlacement p;
  util::Rng rng(1);
  int out[8];
  EXPECT_THROW(p.choose(4, 5, rng, out), std::invalid_argument);
}

class LeastQueuedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 4; ++i) {
      sched::Node::Config nc;
      nc.index = i;
      nodes.push_back(std::make_unique<sched::Node>(
          engine, std::make_unique<sched::EdfScheduler>(), nc));
      views.push_back(nodes.back().get());
    }
  }

  void occupy(int node, int tasks) {
    for (int j = 0; j < tasks; ++j) {
      nodes[static_cast<std::size_t>(node)]->submit(task::make_local_task(
          next_id++, node, engine.now(), 100.0, 1000.0));
    }
  }

  sim::Engine engine;
  std::vector<std::unique_ptr<sched::Node>> nodes;
  std::vector<const sched::Node*> views;
  std::uint64_t next_id = 1;
};

TEST_F(LeastQueuedTest, PicksIdleNodes) {
  occupy(0, 3);
  occupy(1, 2);
  // Nodes 2 and 3 are idle; a choice of 2 must pick exactly those.
  LeastQueuedPlacement p(views);
  util::Rng rng(5);
  int out[2];
  p.choose(4, 2, rng, out);
  const std::set<int> chosen(out, out + 2);
  EXPECT_TRUE(chosen.count(2) == 1 && chosen.count(3) == 1);
}

TEST_F(LeastQueuedTest, OrdersByOccupancy) {
  occupy(0, 3);
  occupy(1, 1);
  occupy(2, 2);
  LeastQueuedPlacement p(views);
  util::Rng rng(5);
  int out[3];
  p.choose(4, 3, rng, out);
  // node 3 idle (0), node 1 (1), node 2 (2): node 0 (3) must be excluded.
  const std::set<int> chosen(out, out + 3);
  EXPECT_EQ(chosen.count(0), 0u);
}

TEST_F(LeastQueuedTest, TiesSpreadAcrossNodes) {
  // All idle: over many draws each node should be picked sometimes.
  LeastQueuedPlacement p(views);
  util::Rng rng(6);
  std::set<int> seen;
  int out[1];
  for (int i = 0; i < 200; ++i) {
    p.choose(4, 1, rng, out);
    seen.insert(out[0]);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST_F(LeastQueuedTest, RejectsNullNode) {
  views.push_back(nullptr);
  EXPECT_THROW(LeastQueuedPlacement bad(views), std::invalid_argument);
}

TEST_F(LeastQueuedTest, Factory) {
  EXPECT_EQ(make_placement("uniform", {})->name(), "uniform");
  EXPECT_EQ(make_placement("least-queued", views)->name(), "least-queued");
  EXPECT_THROW(make_placement("round-robin", {}), std::invalid_argument);
}

}  // namespace
