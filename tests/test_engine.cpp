// Unit tests for the discrete-event engine.
#include "src/sim/engine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace {

using sda::sim::Engine;
using sda::sim::EventId;

TEST(Engine, ClockStartsAtZero) {
  Engine e;
  EXPECT_DOUBLE_EQ(e.now(), 0.0);
  EXPECT_EQ(e.events_fired(), 0u);
  EXPECT_EQ(e.events_pending(), 0u);
}

TEST(Engine, AtAdvancesClockToEventTime) {
  Engine e;
  double seen = -1.0;
  e.at(5.0, [&] { seen = e.now(); });
  e.run();
  EXPECT_DOUBLE_EQ(seen, 5.0);
  EXPECT_DOUBLE_EQ(e.now(), 5.0);
}

TEST(Engine, InIsRelative) {
  Engine e;
  std::vector<double> times;
  e.at(2.0, [&] {
    e.in(3.0, [&] { times.push_back(e.now()); });
  });
  e.run();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_DOUBLE_EQ(times[0], 5.0);
}

TEST(Engine, SchedulingInPastThrows) {
  Engine e;
  e.at(10.0, [] {});
  e.run();
  EXPECT_THROW(e.at(5.0, [] {}), std::logic_error);
  EXPECT_THROW(e.in(-1.0, [] {}), std::logic_error);
}

TEST(Engine, RunUntilStopsAtHorizon) {
  Engine e;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    e.at(static_cast<double>(i), [&] { ++fired; });
  }
  const auto n = e.run_until(5.0);
  EXPECT_EQ(n, 5u);
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(e.now(), 5.0);
  EXPECT_EQ(e.events_pending(), 5u);
}

TEST(Engine, RunUntilIncludesEventsExactlyAtHorizon) {
  Engine e;
  bool fired = false;
  e.at(5.0, [&] { fired = true; });
  e.run_until(5.0);
  EXPECT_TRUE(fired);
}

TEST(Engine, RunUntilAdvancesClockToHorizonWhenIdle) {
  Engine e;
  e.run_until(100.0);
  EXPECT_DOUBLE_EQ(e.now(), 100.0);
}

TEST(Engine, StopBreaksRun) {
  Engine e;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    e.at(static_cast<double>(i), [&] {
      ++fired;
      if (fired == 3) e.stop();
    });
  }
  e.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(e.events_pending(), 7u);
  // A subsequent run() resumes.
  e.run();
  EXPECT_EQ(fired, 10);
}

TEST(Engine, StepFiresExactlyOne) {
  Engine e;
  int fired = 0;
  e.at(1.0, [&] { ++fired; });
  e.at(2.0, [&] { ++fired; });
  EXPECT_TRUE(e.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(e.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(e.step());
}

TEST(Engine, CancelPending) {
  Engine e;
  bool fired = false;
  const EventId id = e.at(1.0, [&] { fired = true; });
  EXPECT_TRUE(e.pending(id));
  EXPECT_TRUE(e.cancel(id));
  EXPECT_FALSE(e.pending(id));
  e.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, EventsFiredAccumulates) {
  Engine e;
  for (int i = 0; i < 5; ++i) e.at(static_cast<double>(i), [] {});
  e.run();
  for (int i = 0; i < 3; ++i) e.at(e.now() + 1.0, [] {});
  e.run();
  EXPECT_EQ(e.events_fired(), 8u);
}

TEST(Engine, SelfSchedulingChainTerminates) {
  Engine e;
  int remaining = 100;
  std::function<void()> tick = [&] {
    if (--remaining > 0) e.in(0.5, tick);
  };
  e.in(0.5, tick);
  e.run();
  EXPECT_EQ(remaining, 0);
  EXPECT_DOUBLE_EQ(e.now(), 50.0);
}

TEST(Engine, CancelFromWithinEarlierSimultaneousEvent) {
  // Two events at the same timestamp; the first cancels the second.
  Engine e;
  bool second_fired = false;
  EventId second;
  e.at(1.0, [&] { EXPECT_TRUE(e.cancel(second)); });
  second = e.at(1.0, [&] { second_fired = true; });
  e.run();
  EXPECT_FALSE(second_fired);
}

TEST(Engine, RescheduleFromWithinCallback) {
  Engine e;
  std::vector<double> fired_at;
  e.at(1.0, [&] {
    fired_at.push_back(e.now());
    e.at(1.0, [&] { fired_at.push_back(e.now()); });  // same timestamp again
  });
  e.run();
  ASSERT_EQ(fired_at.size(), 2u);
  EXPECT_DOUBLE_EQ(fired_at[0], 1.0);
  EXPECT_DOUBLE_EQ(fired_at[1], 1.0);
}

TEST(Engine, RunUntilRepeatedHorizons) {
  Engine e;
  int fired = 0;
  for (int i = 1; i <= 4; ++i) e.at(static_cast<double>(i), [&] { ++fired; });
  e.run_until(2.0);
  EXPECT_EQ(fired, 2);
  e.run_until(2.0);  // no-op: nothing left at or before 2
  EXPECT_EQ(fired, 2);
  e.run_until(10.0);
  EXPECT_EQ(fired, 4);
  EXPECT_DOUBLE_EQ(e.now(), 10.0);
}

TEST(Engine, SimultaneousEventsFireInScheduleOrder) {
  Engine e;
  std::vector<int> order;
  e.at(1.0, [&] { order.push_back(1); });
  e.at(1.0, [&] { order.push_back(2); });
  e.at(1.0, [&] { order.push_back(3); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

}  // namespace
