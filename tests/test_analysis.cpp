// Unit tests for the closed-form analysis helpers.
#include "src/core/analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace {

using namespace sda::core::analysis;

TEST(Amplification, PaperSection4Example) {
  // "if an average node misses 5% ... a global task of 6 parallel subtasks
  //  misses 1 - (1 - 0.05)^6 = 26.5%."
  EXPECT_NEAR(global_miss_probability(0.05, 6), 0.265, 0.001);
}

TEST(Amplification, PaperSection61Example) {
  // "7.1% subtask miss ... 1-(1-7.1%)^4 ~ 25.5%".
  EXPECT_NEAR(global_miss_probability(0.071, 4), 0.255, 0.001);
}

TEST(Amplification, EdgeCases) {
  EXPECT_DOUBLE_EQ(global_miss_probability(0.0, 10), 0.0);
  EXPECT_DOUBLE_EQ(global_miss_probability(1.0, 3), 1.0);
  EXPECT_DOUBLE_EQ(global_miss_probability(0.3, 0), 0.0);  // empty task
  EXPECT_DOUBLE_EQ(global_miss_probability(0.3, 1), 0.3);  // no amplification
  EXPECT_THROW(global_miss_probability(-0.1, 2), std::invalid_argument);
  EXPECT_THROW(global_miss_probability(1.1, 2), std::invalid_argument);
  EXPECT_THROW(global_miss_probability(0.5, -1), std::invalid_argument);
}

TEST(Amplification, InverseRoundTrip) {
  for (int n : {1, 2, 4, 6, 16}) {
    for (double p : {0.01, 0.1, 0.5, 0.9}) {
      const double g = global_miss_probability(p, n);
      // (1-p)^n underflows toward 1 for large n*p, so the inverse loses
      // precision there; 1e-3 relative is plenty for a sanity anchor.
      EXPECT_NEAR(required_subtask_miss(g, n), p, 1e-3);
    }
  }
  EXPECT_THROW(required_subtask_miss(0.5, 0), std::invalid_argument);
}

TEST(Amplification, MonotoneInN) {
  double prev = 0.0;
  for (int n = 1; n <= 10; ++n) {
    const double g = global_miss_probability(0.07, n);
    EXPECT_GT(g, prev);
    prev = g;
  }
}

TEST(Harmonic, KnownValues) {
  EXPECT_DOUBLE_EQ(harmonic(0), 0.0);
  EXPECT_DOUBLE_EQ(harmonic(1), 1.0);
  EXPECT_DOUBLE_EQ(harmonic(2), 1.5);
  EXPECT_NEAR(harmonic(4), 25.0 / 12.0, 1e-12);
  EXPECT_THROW(harmonic(-1), std::invalid_argument);
}

TEST(MaxExponential, HarmonicScaling) {
  // E[max of 4 exp(1)] = H_4 ~ 2.083: globals get only ~2x a local's
  // allowance despite having 4x the work — the structural reason globals
  // are "less competitive" per unit of work.
  EXPECT_NEAR(expected_max_exponential(4, 1.0), 2.0833, 1e-3);
  EXPECT_DOUBLE_EQ(expected_max_exponential(1, 2.0), 2.0);
  EXPECT_THROW(expected_max_exponential(3, 0.0), std::invalid_argument);
}

TEST(Mm1Formulas, KnownPoint) {
  const Mm1 r = mm1(0.5, 1.0);
  EXPECT_DOUBLE_EQ(r.rho, 0.5);
  EXPECT_DOUBLE_EQ(r.mean_in_system, 1.0);
  EXPECT_DOUBLE_EQ(r.mean_in_queue, 0.5);
  EXPECT_DOUBLE_EQ(r.mean_sojourn, 2.0);
  EXPECT_DOUBLE_EQ(r.mean_wait, 1.0);
}

TEST(Mm1Formulas, LittlesLawIdentity) {
  for (double lambda : {0.1, 0.5, 0.9}) {
    const Mm1 r = mm1(lambda, 1.0);
    EXPECT_NEAR(r.mean_in_system, lambda * r.mean_sojourn, 1e-12);
    EXPECT_NEAR(r.mean_in_queue, lambda * r.mean_wait, 1e-12);
  }
}

TEST(Mm1Formulas, Validation) {
  EXPECT_THROW(mm1(1.0, 1.0), std::invalid_argument);  // unstable
  EXPECT_THROW(mm1(-0.1, 1.0), std::invalid_argument);
  EXPECT_THROW(mm1(0.5, 0.0), std::invalid_argument);
}

TEST(Mm1Tail, Basics) {
  EXPECT_DOUBLE_EQ(mm1_sojourn_tail(0.5, 1.0, 0.0), 1.0);
  EXPECT_NEAR(mm1_sojourn_tail(0.5, 1.0, 2.0), std::exp(-1.0), 1e-12);
  EXPECT_DOUBLE_EQ(mm1_sojourn_tail(0.5, 1.0, -1.0), 1.0);
  EXPECT_THROW(mm1_sojourn_tail(1.5, 1.0, 1.0), std::invalid_argument);
}

}  // namespace
