// LogHistogram geometry, quantiles, exact merges, and the per-node perf
// counters + distribution telemetry they feed.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "src/exp/config.hpp"
#include "src/exp/runner.hpp"
#include "src/metrics/percentile.hpp"

namespace {

using namespace sda;
using metrics::LogHistogram;
using metrics::Quantiles;

TEST(LogHistogram, ZeroAndOverflowBuckets) {
  LogHistogram h(1e-3, 1e3, 8);
  h.add(0.0);
  h.add(1e-4);   // below min_value -> zero bucket
  h.add(-5.0);   // negative clamps into the zero bucket too
  h.add(1e9);    // above max_value -> overflow
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.zero_count(), 3u);
  // The overflow bucket's quantile reports the max_value edge, not 1e9.
  EXPECT_GE(h.quantile(0.999), 1e3 * 0.5);
}

TEST(LogHistogram, QuantilesWithinRelativeError) {
  // 8 buckets/octave => bucket width factor 2^(1/8) ~ 9%: quantiles land
  // within one bucket of the exact value.
  LogHistogram h;
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i));
  const double p50 = h.quantile(0.50);
  const double p99 = h.quantile(0.99);
  EXPECT_NEAR(p50, 500.0, 500.0 * 0.10);
  EXPECT_NEAR(p99, 990.0, 990.0 * 0.10);
  EXPECT_LE(h.quantile(0.0), h.quantile(1.0));
}

TEST(LogHistogram, ApproximateMean) {
  LogHistogram h;
  for (int i = 0; i < 100; ++i) h.add(10.0);
  EXPECT_NEAR(h.approximate_mean(), 10.0, 10.0 * 0.10);
}

TEST(LogHistogram, MergeMatchesSinglePass) {
  LogHistogram a, b, all;
  for (int i = 1; i < 500; ++i) {
    const double x = 0.01 * i * i;
    ((i % 2) ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.total(), all.total());
  // Bucket-wise merge is exact: identical quantiles, not just close ones.
  for (const double q : {0.1, 0.5, 0.9, 0.99, 0.999}) {
    EXPECT_DOUBLE_EQ(a.quantile(q), all.quantile(q)) << "q=" << q;
  }
}

TEST(LogHistogram, MergeRejectsGeometryMismatch) {
  LogHistogram a(1e-3, 1e6, 8);
  LogHistogram b(1e-3, 1e6, 4);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(LogHistogram, SummarizeEmpty) {
  const Quantiles q = metrics::summarize(LogHistogram{});
  EXPECT_EQ(q.count, 0u);
  EXPECT_EQ(q.p999, 0.0);
}

// --- per-node perf counters ------------------------------------------------

exp::ExperimentConfig small_config() {
  exp::ExperimentConfig c = exp::baseline_config();
  c.sim_time = 3000.0;
  c.replications = 1;
  return c;
}

TEST(PerfCounters, PopulatedAndInternallyConsistent) {
  const exp::ExperimentConfig c = small_config();
  const exp::RunResult r = exp::run_once(c, 42);
  ASSERT_EQ(r.node_counters.size(), static_cast<std::size_t>(c.k));
  for (const auto& pc : r.node_counters) {
    EXPECT_GE(pc.node, 0);
    EXPECT_GT(pc.submissions, 0u);
    EXPECT_LE(pc.completed, pc.submissions);
    EXPECT_GE(pc.utilization, 0.0);
    EXPECT_LE(pc.utilization, 1.0);
    EXPECT_NEAR(pc.busy_time + pc.idle_time, c.sim_time, 1e-6);
    EXPECT_GE(pc.queue_high_water, 1u);
    // Depth samples run on the every-64th-submission cadence.
    EXPECT_EQ(pc.queue_depth_samples, pc.submissions / 64);
    if (pc.queue_depth_samples > 0) {
      EXPECT_GE(pc.queue_depth_mean, 1.0);  // depth includes the new arrival
      EXPECT_LE(pc.queue_depth_mean,
                static_cast<double>(pc.queue_high_water));
    }
  }
}

TEST(PerfCounters, AbortTimerChurnTracked) {
  exp::ExperimentConfig c = small_config();
  c.local_abort = sched::LocalAbortPolicy::kAbortOnVirtualDeadline;
  c.load = 0.9;  // force tardiness so timers actually fire
  const exp::RunResult r = exp::run_once(c, 7);
  std::uint64_t armed = 0, aborted = 0;
  for (const auto& pc : r.node_counters) {
    armed += pc.abort_timers_armed;
    aborted += pc.aborted_locally;
  }
  EXPECT_GT(armed, 0u);
  EXPECT_GT(aborted, 0u);
}

// --- collector distribution telemetry --------------------------------------

TEST(Distributions, PerClassAndPerNode) {
  exp::ExperimentConfig c = small_config();
  c.distributions = true;
  const exp::RunResult r = exp::run_once(c, 42);
  const metrics::Collector& col = r.collector;
  ASSERT_TRUE(col.distributions_enabled());
  EXPECT_FALSE(col.distribution_classes().empty());
  // Every compute node executed work, so every node has a distribution.
  EXPECT_EQ(col.distribution_nodes().size(), static_cast<std::size_t>(c.k));
  for (const int cls : col.distribution_classes()) {
    const metrics::DistributionSet* d = col.class_distributions(cls);
    ASSERT_NE(d, nullptr);
    EXPECT_GT(d->tardiness.total(), 0u);
  }
  const metrics::DistributionSet* n0 = col.node_distributions(0);
  ASSERT_NE(n0, nullptr);
  const metrics::Quantiles q = metrics::summarize(n0->response);
  EXPECT_GT(q.count, 0u);
  EXPECT_GT(q.p999, 0.0);
  EXPECT_LE(q.p50, q.p999);
}

TEST(Distributions, MergeAcrossReplications) {
  exp::ExperimentConfig c = small_config();
  c.distributions = true;
  const exp::RunResult r1 = exp::run_once(c, exp::replication_seed(c.seed, 0));
  const exp::RunResult r2 = exp::run_once(c, exp::replication_seed(c.seed, 1));
  metrics::Collector merged;
  merged.enable_distributions();
  merged.merge_distributions(r1.collector);
  merged.merge_distributions(r2.collector);
  const auto* m = merged.class_distributions(metrics::kLocalClass);
  const auto* a = r1.collector.class_distributions(metrics::kLocalClass);
  const auto* b = r2.collector.class_distributions(metrics::kLocalClass);
  ASSERT_NE(m, nullptr);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(m->tardiness.total(), a->tardiness.total() + b->tardiness.total());
}

TEST(Distributions, MergeRequiresEnabled) {
  metrics::Collector off;
  metrics::Collector on;
  on.enable_distributions();
  EXPECT_THROW(on.merge_distributions(off), std::logic_error);
  EXPECT_THROW(off.merge_distributions(on), std::logic_error);
}

TEST(Distributions, OffByDefaultAndZeroFootprint) {
  const exp::ExperimentConfig c = small_config();
  const exp::RunResult r = exp::run_once(c, 42);
  EXPECT_FALSE(r.collector.distributions_enabled());
  EXPECT_EQ(r.collector.class_distributions(metrics::kLocalClass), nullptr);
}

}  // namespace
