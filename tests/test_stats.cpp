// Unit tests for RunningStat, t-based confidence intervals, and BatchMeans.
#include "src/util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/rng.hpp"

namespace {

using sda::util::BatchMeans;
using sda::util::confidence_interval;
using sda::util::ConfidenceInterval;
using sda::util::RunningStat;
using sda::util::t_critical;

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, KnownMoments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, SingleObservationVarianceZero) {
  RunningStat s;
  s.add(3.14);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.14);
}

TEST(RunningStat, MergeMatchesSequential) {
  RunningStat all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(static_cast<double>(i)) * 10.0;
    all.add(x);
    (i < 37 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a, empty;
  a.add(1.0);
  a.add(3.0);
  RunningStat b = a;
  b.merge(empty);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(TCritical, KnownValues) {
  EXPECT_NEAR(t_critical(0.95, 1), 12.706, 1e-3);
  EXPECT_NEAR(t_critical(0.95, 10), 2.228, 1e-3);
  EXPECT_NEAR(t_critical(0.95, 100), 1.960, 1e-3);
  EXPECT_NEAR(t_critical(0.99, 5), 4.032, 1e-3);
  EXPECT_GT(t_critical(0.95, 0), 1e9);
}

TEST(ConfidenceIntervalTest, EmptyAndSingle) {
  const ConfidenceInterval empty = confidence_interval({});
  EXPECT_EQ(empty.n, 0u);
  EXPECT_DOUBLE_EQ(empty.half_width, 0.0);

  const ConfidenceInterval one = confidence_interval({5.0});
  EXPECT_EQ(one.n, 1u);
  EXPECT_DOUBLE_EQ(one.mean, 5.0);
  EXPECT_DOUBLE_EQ(one.half_width, 0.0);
}

TEST(ConfidenceIntervalTest, TwoSamplesKnownHalfWidth) {
  // mean 10, s = sqrt(2), hw = 12.706 * sqrt(2)/sqrt(2) = 12.706.
  const ConfidenceInterval ci = confidence_interval({9.0, 11.0});
  EXPECT_DOUBLE_EQ(ci.mean, 10.0);
  EXPECT_NEAR(ci.half_width, 12.706, 1e-3);
  EXPECT_NEAR(ci.lo(), 10.0 - 12.706, 1e-3);
  EXPECT_NEAR(ci.hi(), 10.0 + 12.706, 1e-3);
}

TEST(ConfidenceIntervalTest, ShrinksWithMoreSamples) {
  std::vector<double> few, many;
  for (int i = 0; i < 4; ++i) few.push_back(i % 2 ? 1.0 : -1.0);
  for (int i = 0; i < 64; ++i) many.push_back(i % 2 ? 1.0 : -1.0);
  EXPECT_GT(confidence_interval(few).half_width,
            confidence_interval(many).half_width);
}

TEST(BatchMeansTest, RecoversIidMean) {
  BatchMeans bm(20);
  std::uint64_t state = 12345;
  for (int i = 0; i < 100000; ++i) {
    const double u = static_cast<double>(sda::util::splitmix64_next(state) >> 11) *
                     0x1.0p-53;
    bm.add(u);
  }
  EXPECT_NEAR(bm.grand_mean(), 0.5, 0.01);
  const ConfidenceInterval ci = bm.interval();
  EXPECT_NEAR(ci.mean, 0.5, 0.02);
  EXPECT_GT(ci.half_width, 0.0);
  EXPECT_LT(ci.half_width, 0.05);
}

TEST(BatchMeansTest, BatchCountStaysBounded) {
  BatchMeans bm(10);
  for (int i = 0; i < 100000; ++i) bm.add(1.0);
  // All values identical: interval collapses to the mean.
  const ConfidenceInterval ci = bm.interval();
  EXPECT_DOUBLE_EQ(ci.mean, 1.0);
  EXPECT_NEAR(ci.half_width, 0.0, 1e-12);
}

}  // namespace
