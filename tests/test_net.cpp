// The socket transport: listen-spec parsing, the Poller shim (epoll and
// the poll fallback), and loopback end-to-end behavior of ServeServer —
// reply routing across clients, oversized-line answers, truncated final
// lines, idle eviction, orphaned replies, and the drain summary.
#include "src/exp/net.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace sda;
using exp::ServeOptions;
using exp::ServeSession;
using exp::net::ListenSpec;
using exp::net::Poller;
using exp::net::ServeServer;
using exp::net::ServerOptions;
using exp::net::parse_listen_spec;

ServeOptions serve_options() {
  ServeOptions o;
  o.admission.node_count = 2;
  o.admission.queue_capacity = 4;
  return o;
}

/// Server under test: session + server + event-loop thread.
class Loop {
 public:
  Loop(const ServeOptions& so, const ServerOptions& no)
      : session_(so), server_(session_, no) {}
  ~Loop() {
    if (thread_.joinable()) stop();
  }

  bool start() {
    std::string error;
    if (!session_.open_journal(&error)) return false;
    if (!server_.start(&error)) {
      ADD_FAILURE() << "server start failed: " << error;
      return false;
    }
    thread_ = std::thread([this] { server_.run(out_); });
    return true;
  }

  void stop() {
    server_.request_stop();
    thread_.join();
  }

  ServeServer& server() { return server_; }
  ServeSession& session() { return session_; }
  std::string summary() const { return out_.str(); }

 private:
  ServeSession session_;
  ServeServer server_;
  std::thread thread_;
  std::ostringstream out_;
};

/// Blocking loopback client with a receive timeout and line framing.
class Client {
 public:
  explicit Client(std::uint16_t port, int rcvbuf = 0) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    if (rcvbuf > 0) {
      // Must be set before connect() to bound the advertised window.
      if (::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf,
                       sizeof rcvbuf) != 0) {
        /* larger window; the slow-client test gets less deterministic */
      }
    }
    timeval tv{};
    tv.tv_sec = 10;
    if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) != 0) {
      /* reads may block longer; the assertions still hold */
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr) != 1) return;
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0;
  }
  explicit Client(const std::string& unix_path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, unix_path.c_str(), sizeof(addr.sun_path) - 1);
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0;
  }
  ~Client() {
    if (fd_ >= 0) {
      if (::close(fd_) != 0) { /* test teardown */ }
    }
  }
  bool connected() const { return connected_; }

  bool send_raw(const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::write(fd_, bytes.data() + off, bytes.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  }
  bool send_line(const std::string& line) { return send_raw(line + "\n"); }

  /// One framed reply line, or "" on timeout/EOF.
  std::string read_line() {
    for (;;) {
      const std::size_t pos = buffer_.find('\n');
      if (pos != std::string::npos) {
        const std::string line = buffer_.substr(0, pos);
        buffer_.erase(0, pos + 1);
        return line;
      }
      char buf[4096];
      const ssize_t n = ::read(fd_, buf, sizeof buf);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return "";
      }
      buffer_.append(buf, static_cast<std::size_t>(n));
    }
  }

  /// True once the peer has closed (EOF), draining any leftover bytes.
  bool read_eof() {
    for (;;) {
      char buf[4096];
      const ssize_t n = ::read(fd_, buf, sizeof buf);
      if (n == 0) return true;
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;  // timeout or error, not EOF
      }
    }
  }

  void shutdown_write() {
    if (::shutdown(fd_, SHUT_WR) != 0) { /* peer may have closed first */ }
  }

  /// Blocks until the peer hangs up (FIN or RST) WITHOUT reading any
  /// pending replies — backpressure tests need the pipe to stay full.
  bool wait_peer_close(int timeout_ms = 10'000) {
    pollfd p{};
    p.fd = fd_;
    p.events = POLLRDHUP;
    for (;;) {
      const int n = ::poll(&p, 1, timeout_ms);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;  // timeout or poll error
      return (p.revents & (POLLRDHUP | POLLERR | POLLHUP)) != 0;
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

ServerOptions ephemeral_tcp() {
  ServerOptions o;
  o.listen.kind = ListenSpec::Kind::kTcp;
  o.listen.host = "127.0.0.1";
  o.listen.port = 0;
  o.tick_ms = 10;
  return o;
}

// --- parse_listen_spec ----------------------------------------------------

TEST(ListenSpecParse, TcpAndUnixForms) {
  ListenSpec spec;
  std::string error;
  ASSERT_TRUE(parse_listen_spec("127.0.0.1:8080", &spec, &error)) << error;
  EXPECT_EQ(spec.kind, ListenSpec::Kind::kTcp);
  EXPECT_EQ(spec.host, "127.0.0.1");
  EXPECT_EQ(spec.port, 8080);

  ASSERT_TRUE(parse_listen_spec("0.0.0.0:0", &spec, &error)) << error;
  EXPECT_EQ(spec.port, 0);  // ephemeral

  ASSERT_TRUE(parse_listen_spec("unix:/tmp/sda.sock", &spec, &error)) << error;
  EXPECT_EQ(spec.kind, ListenSpec::Kind::kUnix);
  EXPECT_EQ(spec.path, "/tmp/sda.sock");
}

TEST(ListenSpecParse, MalformedSpecsAreRejectedWithAMessage) {
  ListenSpec spec;
  for (const char* bad :
       {"", "nohostport", ":1234", "host:", "host:abc", "host:99999",
        "host:12 ", "unix:"}) {
    std::string error;
    EXPECT_FALSE(parse_listen_spec(bad, &spec, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
  std::string error;
  EXPECT_FALSE(parse_listen_spec("unix:/" + std::string(200, 'p'), &spec,
                                 &error));
}

// --- Poller ---------------------------------------------------------------

TEST(PollerShim, ReportsReadinessOnAPipe) {
  Poller poller;
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_TRUE(poller.add(fds[0], /*want_write=*/false));
  std::vector<Poller::Event> events;
  ASSERT_TRUE(poller.wait(0, events));
  EXPECT_TRUE(events.empty());  // nothing to read yet
  ASSERT_EQ(::write(fds[1], "x", 1), 1);
  ASSERT_TRUE(poller.wait(1000, events));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].fd, fds[0]);
  EXPECT_TRUE(events[0].readable);
  poller.remove(fds[0]);
  if (::close(fds[0]) != 0 || ::close(fds[1]) != 0) { /* teardown */ }
}

TEST(PollerShim, PollFallbackIsForcedByEnv) {
  ASSERT_EQ(::setenv("SDA_NET_POLL", "1", 1), 0);
  {
    Poller poller;
    EXPECT_FALSE(poller.using_epoll());
    // The fallback still works end to end.
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    ASSERT_TRUE(poller.add(fds[0], false));
    ASSERT_EQ(::write(fds[1], "x", 1), 1);
    std::vector<Poller::Event> events;
    ASSERT_TRUE(poller.wait(1000, events));
    ASSERT_EQ(events.size(), 1u);
    EXPECT_TRUE(events[0].readable);
    poller.remove(fds[0]);
    if (::close(fds[0]) != 0 || ::close(fds[1]) != 0) { /* teardown */ }
  }
  ASSERT_EQ(::unsetenv("SDA_NET_POLL"), 0);
#ifdef __linux__
  Poller epoll_poller;
  EXPECT_TRUE(epoll_poller.using_epoll());
#endif
}

// --- ServeServer end to end -----------------------------------------------

TEST(ServeServerLoop, SubmitDecideDrainOverTcp) {
  Loop loop(serve_options(), ephemeral_tcp());
  ASSERT_TRUE(loop.start());
  ASSERT_NE(loop.server().bound_port(), 0);
  const std::string banner = loop.server().banner();
  EXPECT_NE(banner.find("\"schema\":\"sda.listen.v1\""), std::string::npos);
  EXPECT_NE(banner.find("\"transport\":\"tcp\""), std::string::npos);

  Client client(loop.server().bound_port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_line("sub id=1 at=0 deadline=5 tree=a@0:1/1"));
  const std::string decision = client.read_line();
  EXPECT_NE(decision.find("\"schema\":\"sda.admit.v1\""), std::string::npos);
  EXPECT_NE(decision.find("\"id\":1"), std::string::npos);

  // A done for an unknown id is answered on the same connection.
  ASSERT_TRUE(client.send_line("done id=77 at=1"));
  const std::string error = client.read_line();
  EXPECT_NE(error.find("\"schema\":\"sda.error.v1\""), std::string::npos);
  EXPECT_NE(error.find("\"code\":\"unknown-id\""), std::string::npos);

  loop.stop();
  const std::string summary = loop.summary();
  EXPECT_NE(summary.find("\"schema\":\"sda.serve.summary.v1\""),
            std::string::npos);
  EXPECT_NE(summary.find("\"net\":{\"accepted\":1"), std::string::npos);
  EXPECT_EQ(loop.server().stats().accepted, 1u);
  EXPECT_EQ(loop.server().stats().lines, 2u);
}

TEST(ServeServerLoop, DecisionsRouteToTheSubmittingClient) {
  // Client B's submission parks behind client A's run; A's `done` frees
  // the capacity, and the resolved decision must land on B's socket.
  Loop loop(serve_options(), ephemeral_tcp());
  ASSERT_TRUE(loop.start());
  Client a(loop.server().bound_port());
  Client b(loop.server().bound_port());
  ASSERT_TRUE(a.connected());
  ASSERT_TRUE(b.connected());

  ASSERT_TRUE(a.send_line("sub id=1 at=0 deadline=5 tree=a@0:4/4"));
  EXPECT_NE(a.read_line().find("\"id\":1"), std::string::npos);
  ASSERT_TRUE(b.send_line("sub id=2 at=1 deadline=9 tree=a@0:4/4"));
  // id=2 parks, so there is no reply to wait on — but A's done must not
  // race ahead of B's sub (the shared stream clock is monotonic, and the
  // event loop serializes in arrival order per wakeup, not send order
  // across sockets).  Probe B for an immediate reply to pin the order.
  ASSERT_TRUE(b.send_line("done id=55 at=1"));
  EXPECT_NE(b.read_line().find("\"id\":55"), std::string::npos);
  ASSERT_TRUE(a.send_line("done id=1 at=2"));
  const std::string resolved = b.read_line();
  EXPECT_NE(resolved.find("\"id\":2"), std::string::npos);
  EXPECT_NE(resolved.find("\"decision\":\"admit\""), std::string::npos);
  loop.stop();
  EXPECT_EQ(loop.server().stats().orphaned_replies, 0u);
}

TEST(ServeServerLoop, DepartedClientsDecisionIsOrphanedNotMisrouted) {
  Loop loop(serve_options(), ephemeral_tcp());
  ASSERT_TRUE(loop.start());
  Client a(loop.server().bound_port());
  ASSERT_TRUE(a.connected());
  ASSERT_TRUE(a.send_line("sub id=1 at=0 deadline=5 tree=a@0:4/4"));
  EXPECT_NE(a.read_line().find("\"id\":1"), std::string::npos);
  {
    Client b(loop.server().bound_port());
    ASSERT_TRUE(b.connected());
    ASSERT_TRUE(b.send_line("sub id=2 at=1 deadline=9 tree=a@0:4/4"));
    // Confirm the sub was processed (a parked sub gets no reply, so
    // probe with a line that answers immediately) before departing.
    ASSERT_TRUE(b.send_line("done id=55 at=1"));
    EXPECT_NE(b.read_line().find("\"id\":55"), std::string::npos);
    // b departs with id=2 still parked.
  }
  // Give the event loop time to observe b's hangup and close the
  // connection before the decision resolves.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  ASSERT_TRUE(a.send_line("done id=1 at=2"));
  // a must NOT receive id=2's decision; the next thing a sees is its
  // own error reply to a probe line.
  ASSERT_TRUE(a.send_line("done id=99 at=3"));
  const std::string next = a.read_line();
  EXPECT_NE(next.find("\"id\":99"), std::string::npos)
      << "misrouted reply: " << next;
  loop.stop();
  EXPECT_EQ(loop.server().stats().orphaned_replies, 1u);
}

TEST(ServeServerLoop, OversizedLineIsAnsweredAndTheConnectionSurvives) {
  ServerOptions no = ephemeral_tcp();
  no.max_line_bytes = 64;
  Loop loop(serve_options(), no);
  ASSERT_TRUE(loop.start());
  Client client(loop.server().bound_port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_raw(std::string(500, 'x') + "\n"));
  const std::string error = client.read_line();
  EXPECT_NE(error.find("\"code\":\"limit\""), std::string::npos);
  EXPECT_NE(error.find("transport limit"), std::string::npos);
  // Same connection keeps working.
  ASSERT_TRUE(client.send_line("sub id=1 at=0 deadline=5 tree=a@0:1/1"));
  EXPECT_NE(client.read_line().find("\"id\":1"), std::string::npos);
  loop.stop();
}

TEST(ServeServerLoop, TruncatedFinalLineCountsLikeGetline) {
  Loop loop(serve_options(), ephemeral_tcp());
  ASSERT_TRUE(loop.start());
  Client client(loop.server().bound_port());
  ASSERT_TRUE(client.connected());
  // No trailing newline, then half-close: the splitter's finish() hands
  // the line over, the decision comes back, then the server closes.
  ASSERT_TRUE(client.send_raw("sub id=1 at=0 deadline=5 tree=a@0:1/1"));
  client.shutdown_write();
  const std::string decision = client.read_line();
  EXPECT_NE(decision.find("\"id\":1"), std::string::npos);
  EXPECT_TRUE(client.read_eof());
  loop.stop();
}

TEST(ServeServerLoop, InterleavedClientsShareOneDeterministicSession) {
  Loop loop(serve_options(), ephemeral_tcp());
  ASSERT_TRUE(loop.start());
  Client a(loop.server().bound_port());
  Client b(loop.server().bound_port());
  ASSERT_TRUE(a.connected());
  ASSERT_TRUE(b.connected());
  // Strict alternation (each step waits for its reply) pins the global
  // submission order, so the shared-session counters are exact.
  ASSERT_TRUE(a.send_line("sub id=1 at=0 deadline=5 tree=a@0:1/1"));
  EXPECT_NE(a.read_line().find("\"id\":1"), std::string::npos);
  ASSERT_TRUE(b.send_line("sub id=2 at=1 deadline=5 tree=b@1:1/1"));
  EXPECT_NE(b.read_line().find("\"id\":2"), std::string::npos);
  ASSERT_TRUE(a.send_line("sub id=2 at=2 deadline=5 tree=a@0:1/1"));
  EXPECT_NE(a.read_line().find("duplicate id"), std::string::npos);
  loop.stop();
  EXPECT_EQ(loop.session().result().submissions, 2u);
  EXPECT_EQ(loop.session().result().errors, 1u);
}

TEST(ServeServerLoop, IdleClientsAreEvicted) {
  ServerOptions no = ephemeral_tcp();
  no.idle_timeout_ms = 100;
  Loop loop(serve_options(), no);
  ASSERT_TRUE(loop.start());
  Client client(loop.server().bound_port());
  ASSERT_TRUE(client.connected());
  // Say nothing; the server hangs up on us.
  EXPECT_TRUE(client.read_eof());
  loop.stop();
  EXPECT_EQ(loop.server().stats().evicted_idle, 1u);
}

TEST(ServeServerLoop, StalledPartialLineIsEvicted) {
  ServerOptions no = ephemeral_tcp();
  no.request_timeout_ms = 100;
  Loop loop(serve_options(), no);
  ASSERT_TRUE(loop.start());
  Client client(loop.server().bound_port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_raw("sub id=1 at="));  // never finishes the line
  EXPECT_TRUE(client.read_eof());
  loop.stop();
  EXPECT_EQ(loop.server().stats().evicted_request, 1u);
}

TEST(ServeServerLoop, UnixSocketTransportWorks) {
  const std::string path = "sda_test_net.sock";
  ServerOptions no;
  no.listen.kind = ListenSpec::Kind::kUnix;
  no.listen.path = path;
  no.tick_ms = 10;
  Loop loop(serve_options(), no);
  ASSERT_TRUE(loop.start());
  EXPECT_NE(loop.server().banner().find("\"transport\":\"unix\""),
            std::string::npos);
  Client client(path);
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_line("sub id=1 at=0 deadline=5 tree=a@0:1/1"));
  EXPECT_NE(client.read_line().find("\"id\":1"), std::string::npos);
  loop.stop();
}

TEST(ServeServerLoop, PollBackendServesEndToEnd) {
  // The whole loop again under the poll fallback: same behavior, no
  // epoll dependency (this is what non-Linux builds run).
  ASSERT_EQ(::setenv("SDA_NET_POLL", "1", 1), 0);
  {
    Loop loop(serve_options(), ephemeral_tcp());
    ASSERT_TRUE(loop.start());
    EXPECT_NE(loop.server().banner().find("\"backend\":\"poll\""),
              std::string::npos);
    Client client(loop.server().bound_port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.send_line("sub id=1 at=0 deadline=5 tree=a@0:1/1"));
    EXPECT_NE(client.read_line().find("\"id\":1"), std::string::npos);
    loop.stop();
    EXPECT_NE(loop.summary().find("\"schema\":\"sda.serve.summary.v1\""),
              std::string::npos);
  }
  ASSERT_EQ(::unsetenv("SDA_NET_POLL"), 0);
}

TEST(ServeServerLoop, SlowClientIsEvictedMidPipelineWithoutCorruption) {
  // A client that pipelines thousands of lines without ever reading its
  // replies overflows the bounded write buffer *inside* a single
  // splitter feed.  Eviction must be deferred until the feed loop
  // unwinds — destroying the connection there frees the LineSplitter
  // whose feed() is still executing (ASan guards the regression) —
  // and the server must keep serving everyone else.
  ::signal(SIGPIPE, SIG_IGN);  // our own writes may race the eviction
  ServerOptions no = ephemeral_tcp();
  no.max_write_buffer = 4 * 1024;
  no.sndbuf_bytes = 4 * 1024;  // small kernel buffer: backpressure fast
  Loop loop(serve_options(), no);
  ASSERT_TRUE(loop.start());
  Client slow(loop.server().bound_port(), /*rcvbuf=*/4 * 1024);
  ASSERT_TRUE(slow.connected());
  std::string burst;
  for (int i = 0; i < 4000; ++i) burst += "done id=55 at=1\n";
  slow.send_raw(burst);  // may fail part-way once the server hangs up
  // Never read the replies — the pent-up outbox IS the trigger.  The
  // eviction surfaces as a hangup (RST, since the server discards our
  // still-queued input when it closes).
  EXPECT_TRUE(slow.wait_peer_close());
  // The server survived the mid-feed eviction and still serves.
  Client fine(loop.server().bound_port());
  ASSERT_TRUE(fine.connected());
  ASSERT_TRUE(fine.send_line("sub id=1 at=1 deadline=5 tree=a@0:1/1"));
  EXPECT_NE(fine.read_line().find("\"id\":1"), std::string::npos);
  loop.stop();
  EXPECT_EQ(loop.server().stats().evicted_slow, 1u);
}

TEST(ServeServerLoop, ReplayRecoveredDecisionIsOrphanedNotMisrouted) {
  // Submissions recovered by journal replay have no connection route in
  // the new process.  When another client's `done` pumps such a parked
  // sub to a decision, that decision must surface as orphaned — not be
  // delivered to the client that happened to trigger the pump.
  const std::string wal =
      "sda_test_net_replay_" + std::to_string(::getpid()) + ".wal";
  std::remove(wal.c_str());
  ServeOptions so = serve_options();
  so.journal_path = wal;
  {
    // First life: id=1 admitted, id=2 parked; die without a drain.
    ServeSession session(so);
    std::string error;
    ASSERT_TRUE(session.open_journal(&error)) << error;
    std::vector<ServeSession::Reply> replies;
    session.handle_line("sub id=1 at=0 deadline=5 tree=a@0:4/4", replies);
    session.handle_line("sub id=2 at=1 deadline=9 tree=a@0:4/4", replies);
  }
  Loop loop(so, ephemeral_tcp());
  ASSERT_TRUE(loop.start());
  EXPECT_EQ(loop.session().result().replayed, 2u);
  Client c(loop.server().bound_port());
  ASSERT_TRUE(c.connected());
  ASSERT_TRUE(c.send_line("done id=1 at=2"));  // resolves parked id=2
  // c must NOT receive id=2's decision; the next thing it sees is the
  // error reply to its own probe.
  ASSERT_TRUE(c.send_line("done id=99 at=3"));
  const std::string next = c.read_line();
  EXPECT_NE(next.find("\"id\":99"), std::string::npos)
      << "misrouted replayed decision: " << next;
  loop.stop();
  EXPECT_EQ(loop.server().stats().orphaned_replies, 1u);
  std::remove(wal.c_str());
}

TEST(ServeServerLoop, RoutePeekHonorsTheSessionsProtocolLimits) {
  // A session configured with generous limits must still route
  // decisions for lines that *default* limits would reject: the
  // transport's route peek has to parse with the session's limits.
  // 100 KiB of leading zeros keeps the id's value tiny while pushing
  // the line past the default 64 KiB bound.
  ServeOptions so = serve_options();
  so.limits.max_line_bytes = 256 * 1024;
  so.limits.max_value_bytes = 200 * 1024;
  ServerOptions no = ephemeral_tcp();
  no.max_line_bytes = 256 * 1024;
  Loop loop(so, no);
  ASSERT_TRUE(loop.start());
  Client client(loop.server().bound_port());
  ASSERT_TRUE(client.connected());
  const std::string padded_id = std::string(100 * 1024, '0') + "7";
  ASSERT_TRUE(client.send_line("sub id=" + padded_id +
                               " at=0 deadline=5 tree=a@0:1/1"));
  const std::string decision = client.read_line();
  EXPECT_NE(decision.find("\"schema\":\"sda.admit.v1\""), std::string::npos)
      << decision;
  EXPECT_NE(decision.find("\"id\":7"), std::string::npos) << decision;
  loop.stop();
  EXPECT_EQ(loop.server().stats().orphaned_replies, 0u);
}

TEST(ServeServerLoop, ConnectionCapRejectsTheOverflowClient) {
  ServerOptions no = ephemeral_tcp();
  no.max_connections = 1;
  Loop loop(serve_options(), no);
  ASSERT_TRUE(loop.start());
  Client first(loop.server().bound_port());
  ASSERT_TRUE(first.connected());
  // Prove the first connection is established server-side before the
  // second arrives (ordering, not sleeping).
  ASSERT_TRUE(first.send_line("sub id=1 at=0 deadline=5 tree=a@0:1/1"));
  EXPECT_NE(first.read_line().find("\"id\":1"), std::string::npos);
  Client second(loop.server().bound_port());
  // connect() itself succeeds (listen backlog), but the server closes
  // the fd on accept: the client observes EOF.
  EXPECT_TRUE(second.read_eof());
  loop.stop();
  EXPECT_EQ(loop.server().stats().rejected_connections, 1u);
  EXPECT_EQ(loop.server().stats().accepted, 1u);
}

}  // namespace
