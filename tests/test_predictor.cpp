// Unit tests for the analytic miss-probability predictor.
#include "src/core/predictor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/analysis.hpp"
#include "src/task/notation.hpp"

namespace {

using namespace sda;
using core::leaf_on_time_probability;
using core::NodeModel;
using core::predict_miss;

TEST(LeafOnTime, Mm1Tail) {
  const NodeModel m{0.5, 1.0};
  EXPECT_DOUBLE_EQ(leaf_on_time_probability(0.0, m), 0.0);
  EXPECT_DOUBLE_EQ(leaf_on_time_probability(-1.0, m), 0.0);
  // P[T <= 2] with sojourn rate 0.5 -> 1 - e^-1.
  EXPECT_NEAR(leaf_on_time_probability(2.0, m), 1.0 - std::exp(-1.0), 1e-12);
  // Monotone in window and decreasing in rho.
  EXPECT_GT(leaf_on_time_probability(4.0, m), leaf_on_time_probability(2.0, m));
  EXPECT_GT(leaf_on_time_probability(2.0, NodeModel{0.3, 1.0}),
            leaf_on_time_probability(2.0, m));
}

TEST(LeafOnTime, Validation) {
  EXPECT_THROW(leaf_on_time_probability(1.0, NodeModel{1.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(leaf_on_time_probability(1.0, NodeModel{-0.1, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(leaf_on_time_probability(1.0, NodeModel{0.5, 0.0}),
               std::invalid_argument);
}

TEST(Predict, SingleLeafMatchesTail) {
  const auto tree = task::parse_notation("A@0:1/1");
  const auto psp = core::make_psp_strategy("ud");
  const auto ssp = core::make_ssp_strategy("ud");
  const NodeModel m{0.5, 1.0};
  const auto pred = predict_miss(*tree, 0.0, 3.0, *psp, *ssp, m);
  ASSERT_EQ(pred.leaves.size(), 1u);
  EXPECT_DOUBLE_EQ(pred.leaves[0].window, 3.0);
  EXPECT_NEAR(pred.on_time_probability,
              leaf_on_time_probability(3.0, m), 1e-12);
}

TEST(Predict, ParallelAmplificationMatchesSection4) {
  // n identical parallel leaves under UD: miss = 1 - (1 - p)^n where p is
  // one leaf's miss probability — exactly the paper's formula.
  const auto tree =
      task::parse_notation("[A@0:1/1 || B@1:1/1 || C@2:1/1 || D@3:1/1]");
  const auto psp = core::make_psp_strategy("ud");
  const auto ssp = core::make_ssp_strategy("ud");
  const NodeModel m{0.5, 1.0};
  const auto pred = predict_miss(*tree, 0.0, 5.0, *psp, *ssp, m);
  const double leaf_miss = 1.0 - leaf_on_time_probability(5.0, m);
  EXPECT_NEAR(pred.miss_probability,
              core::analysis::global_miss_probability(leaf_miss, 4), 1e-12);
}

TEST(Predict, UdWindowsClampedToRealDeadline) {
  // DIV-0.5 on one branch *extends* the virtual deadline past the real
  // one; the predictor must clamp the window at the end-to-end deadline.
  const auto tree = task::parse_notation("A@0:1/1");
  const auto psp = core::make_psp_strategy("div-0.5");
  const auto ssp = core::make_ssp_strategy("ud");
  const auto pred =
      predict_miss(*tree, 0.0, 4.0, *psp, *ssp, NodeModel{0.5, 1.0});
  EXPECT_LE(pred.leaves[0].window, 4.0);
}

TEST(Predict, MorePromotionSmallerWindows) {
  // DIV-x shrinks windows, so the *predicted* single-task miss grows with
  // x.  (In the real system this is offset by higher EDF priority, which
  // the M/M/1 model cannot see — documented limitation.)
  const auto tree = task::parse_notation("[A@0:1/1 || B@1:1/1]");
  const auto ssp = core::make_ssp_strategy("ud");
  const NodeModel m{0.5, 1.0};
  double prev = -1.0;
  for (const char* psp_name : {"ud", "div-1", "div-2"}) {
    const auto psp = core::make_psp_strategy(psp_name);
    const auto pred = predict_miss(*tree, 0.0, 8.0, *psp, *ssp, m);
    EXPECT_GT(pred.miss_probability, prev);
    prev = pred.miss_probability;
  }
}

TEST(Predict, SerialStagesMultiply) {
  const auto tree = task::parse_notation("[A@0:2/2 B@1:2/2]");
  const auto psp = core::make_psp_strategy("ud");
  const auto ssp = core::make_ssp_strategy("eqs");
  const NodeModel m{0.4, 1.0};
  const auto pred = predict_miss(*tree, 0.0, 10.0, *psp, *ssp, m);
  ASSERT_EQ(pred.leaves.size(), 2u);
  EXPECT_NEAR(pred.on_time_probability,
              pred.leaves[0].on_time * pred.leaves[1].on_time, 1e-12);
  // EQS splits slack evenly: both windows are 2 + 3 = 5.
  EXPECT_DOUBLE_EQ(pred.leaves[0].window, 5.0);
  EXPECT_DOUBLE_EQ(pred.leaves[1].window, 5.0);
}

TEST(Predict, InfeasibleDeadlineIsCertainMiss) {
  const auto tree = task::parse_notation("[A@0:5/5 B@1:5/5]");
  const auto psp = core::make_psp_strategy("ud");
  const auto ssp = core::make_ssp_strategy("eqf");
  const auto pred =
      predict_miss(*tree, 0.0, 1.0, *psp, *ssp, NodeModel{0.5, 1.0});
  // EQF with negative slack can push a stage window to <= 0.
  EXPECT_GT(pred.miss_probability, 0.9);
}

}  // namespace
