// Systematic edge conditions across the stack: degenerate demands, zero
// slack, single-node systems, empty workload mixes, expired deadlines at
// submission, extreme strategy parameters.
#include <gtest/gtest.h>

#include <memory>

#include "src/core/process_manager.hpp"
#include "src/exp/runner.hpp"
#include "src/metrics/task_class.hpp"
#include "src/sched/edf.hpp"
#include "src/task/notation.hpp"

namespace {

using namespace sda;

TEST(EdgeCases, ZeroExecutionTimeTaskCompletesInstantly) {
  sim::Engine engine;
  sched::Node node(engine, std::make_unique<sched::EdfScheduler>(), {});
  auto t = task::make_local_task(1, 0, 0.0, 0.0, 1.0);
  node.submit(t);
  engine.run();
  EXPECT_EQ(t->state, task::TaskState::kCompleted);
  EXPECT_DOUBLE_EQ(t->finished_at, 0.0);
  EXPECT_TRUE(t->met_real_deadline());
}

TEST(EdgeCases, ZeroSlackTaskMeetsExactly) {
  sim::Engine engine;
  sched::Node node(engine, std::make_unique<sched::EdfScheduler>(), {});
  auto t = task::make_local_task(1, 0, 0.0, 2.0, 2.0);  // dl == ex
  node.submit(t);
  engine.run();
  EXPECT_TRUE(t->met_real_deadline());
}

TEST(EdgeCases, DeadlineAlreadyExpiredAtSubmission) {
  sim::Engine engine;
  sched::Node node(engine, std::make_unique<sched::EdfScheduler>(), {});
  bool completed = false;
  node.set_completion_handler([&](const task::TaskPtr& t) {
    completed = true;
    EXPECT_FALSE(t->met_real_deadline());
  });
  engine.at(5.0, [&] {
    node.submit(task::make_local_task(1, 0, 5.0, 1.0, 3.0));  // dl in past
  });
  engine.run();
  EXPECT_TRUE(completed);  // no abortion configured: it runs, late
}

TEST(EdgeCases, GlobalTaskWithZeroDemandSubtasks) {
  sim::Engine engine;
  std::vector<std::unique_ptr<sched::Node>> nodes;
  std::vector<sched::Node*> ptrs;
  for (int i = 0; i < 2; ++i) {
    sched::Node::Config nc;
    nc.index = i;
    nodes.push_back(std::make_unique<sched::Node>(
        engine, std::make_unique<sched::EdfScheduler>(), nc));
    ptrs.push_back(nodes.back().get());
  }
  core::ProcessManager::Config pc;
  pc.psp = core::make_psp_strategy("div-1");
  pc.ssp = core::make_ssp_strategy("eqf");
  core::ProcessManager pm(engine, ptrs, std::move(pc));
  for (auto& n : nodes) {
    n->set_completion_handler(
        [&pm](const task::TaskPtr& t) { pm.handle_completion(t); });
  }
  bool done = false;
  pm.set_global_handler([&](const core::GlobalTaskRecord& r) {
    done = true;
    EXPECT_FALSE(r.missed);
    EXPECT_DOUBLE_EQ(r.total_work, 0.0);
  });
  pm.submit(task::parse_notation("[A@0:0/0 || B@1:0/0]"), 1.0, 100, 1);
  engine.run();
  EXPECT_TRUE(done);
}

TEST(EdgeCases, SingleNodeSystem) {
  exp::ExperimentConfig c = exp::baseline_config();
  c.k = 1;
  c.n_min = c.n_max = 1;  // "global" tasks of one subtask
  c.sim_time = 10000.0;
  c.replications = 1;
  const auto r = exp::run_once(c, 5);
  EXPECT_NEAR(r.mean_utilization, 0.5, 0.05);
  // With n = 1 there is no PSP amplification: global MD ~ subtask MD.
  const double mg = r.collector.counts(metrics::global_class(1)).miss_rate();
  const double ms = r.collector.counts(metrics::kSubtaskClass).miss_rate();
  EXPECT_DOUBLE_EQ(mg, ms);
}

TEST(EdgeCases, PureLocalWorkload) {
  exp::ExperimentConfig c = exp::baseline_config();
  c.frac_local = 1.0;
  c.sim_time = 5000.0;
  c.replications = 1;
  const auto r = exp::run_once(c, 6);
  EXPECT_EQ(r.globals_generated, 0u);
  EXPECT_GT(r.collector.counts(metrics::kLocalClass).finished, 1000u);
}

TEST(EdgeCases, PureGlobalWorkload) {
  exp::ExperimentConfig c = exp::baseline_config();
  c.frac_local = 0.0;
  c.sim_time = 5000.0;
  c.replications = 1;
  const auto r = exp::run_once(c, 7);
  EXPECT_EQ(r.locals_generated, 0u);
  EXPECT_GT(r.globals_generated, 100u);
}

TEST(EdgeCases, ZeroLoadSystemStaysIdle) {
  exp::ExperimentConfig c = exp::baseline_config();
  c.load = 0.0;
  c.sim_time = 1000.0;
  c.replications = 1;
  const auto r = exp::run_once(c, 8);
  EXPECT_EQ(r.events_fired, 0u);
  EXPECT_DOUBLE_EQ(r.mean_utilization, 0.0);
}

TEST(EdgeCases, ExtremeDivXStillWorks) {
  exp::ExperimentConfig c = exp::baseline_config();
  c.psp = "div-1000000";
  c.sim_time = 5000.0;
  c.replications = 1;
  const auto r = exp::run_once(c, 9);
  // DIV-huge behaves like GF-minus-epsilon among globals: system stays sane.
  EXPECT_GT(r.collector.counts(metrics::global_class(4)).finished, 100u);
  EXPECT_LE(r.collector.counts(metrics::global_class(4)).miss_rate(), 1.0);
}

TEST(EdgeCases, FractionalDivX) {
  // x < 1 *extends* virtual deadlines beyond UD (deprioritizing globals):
  // legal, and MD_global should be at least UD's.
  exp::ExperimentConfig c = exp::baseline_config();
  c.sim_time = 20000.0;
  c.replications = 1;
  const auto ud = exp::run_once(c, 10);
  c.psp = "div-0.125";
  const auto div_eighth = exp::run_once(c, 10);
  EXPECT_GE(div_eighth.collector.counts(metrics::global_class(4)).miss_rate(),
            ud.collector.counts(metrics::global_class(4)).miss_rate() - 0.02);
}

TEST(EdgeCases, NestedSingleBranchCompositesCollapse) {
  // [[[A]]] is just A through the notation layer; the PM handles it.
  const auto tree = task::parse_notation("[[[A@0:1]]]");
  EXPECT_TRUE(tree->is_leaf());
}

TEST(EdgeCases, WarmupLongerThanAnyTaskStillSane) {
  exp::ExperimentConfig c = exp::baseline_config();
  c.sim_time = 2000.0;
  c.warmup_fraction = 0.99;  // almost everything discarded
  c.replications = 1;
  const auto r = exp::run_once(c, 11);
  // Very few samples, but no crash and rates stay probabilities.
  const auto counts = r.collector.counts(metrics::kLocalClass);
  EXPECT_LE(counts.missed, counts.finished);
}

TEST(EdgeCases, PerNodeUtilizationsExposed) {
  exp::ExperimentConfig c = exp::baseline_config();
  c.sim_time = 5000.0;
  c.replications = 1;
  const auto r = exp::run_once(c, 12);
  ASSERT_EQ(r.node_utilizations.size(), 6u);
  for (double u : r.node_utilizations) {
    EXPECT_GT(u, 0.2);
    EXPECT_LT(u, 0.9);
  }
}

}  // namespace
