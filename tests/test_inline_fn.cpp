// InlineFn: the small-buffer-optimized move-only callable behind EventFn.
#include "src/sim/inline_fn.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <memory>
#include <utility>

namespace sda::sim {
namespace {

TEST(InlineFn, DefaultConstructedIsEmpty) {
  InlineFn fn;
  EXPECT_FALSE(static_cast<bool>(fn));
  InlineFn null_fn(nullptr);
  EXPECT_FALSE(static_cast<bool>(null_fn));
}

TEST(InlineFn, InvokesSmallCapture) {
  int hits = 0;
  InlineFn fn([&hits] { ++hits; });
  ASSERT_TRUE(static_cast<bool>(fn));
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFn, SmallCaptureIsStoredInline) {
  int x = 0;
  auto lambda = [&x] { ++x; };
  EXPECT_TRUE(InlineFn::stores_inline<decltype(lambda)>());
}

TEST(InlineFn, LargeCaptureFallsBackToHeapAndStillWorks) {
  std::array<double, 32> big{};  // 256 bytes — well past kBufferSize.
  big[31] = 7.5;
  double sink = 0;
  auto lambda = [big, &sink] { sink = big[31]; };
  EXPECT_FALSE(InlineFn::stores_inline<decltype(lambda)>());
  InlineFn fn(std::move(lambda));
  fn();
  EXPECT_DOUBLE_EQ(sink, 7.5);
}

TEST(InlineFn, MoveOnlyCaptureIsAccepted) {
  // std::function would reject this capture (it requires copyability).
  auto owned = std::make_unique<int>(41);
  int result = 0;
  InlineFn fn([p = std::move(owned), &result] { result = *p + 1; });
  fn();
  EXPECT_EQ(result, 42);
}

TEST(InlineFn, MoveTransfersOwnership) {
  int hits = 0;
  InlineFn a([&hits] { ++hits; });
  InlineFn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);

  InlineFn c;
  c = std::move(b);
  ASSERT_TRUE(static_cast<bool>(c));
  c();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFn, MoveAssignDestroysPreviousPayload) {
  auto tracked = std::make_shared<int>(0);
  InlineFn fn([keep = tracked] { (void)keep; });
  EXPECT_EQ(tracked.use_count(), 2);
  fn = InlineFn([] {});
  EXPECT_EQ(tracked.use_count(), 1);  // old capture destroyed on assignment
}

TEST(InlineFn, ResetReleasesCaptures) {
  auto tracked = std::make_shared<int>(0);
  InlineFn fn([keep = tracked] { (void)keep; });
  EXPECT_EQ(tracked.use_count(), 2);
  fn.reset();
  EXPECT_FALSE(static_cast<bool>(fn));
  EXPECT_EQ(tracked.use_count(), 1);
  fn.reset();  // idempotent
  EXPECT_EQ(tracked.use_count(), 1);
}

TEST(InlineFn, DestructorReleasesHeapCapture) {
  auto tracked = std::make_shared<int>(0);
  {
    std::array<char, 128> pad{};
    InlineFn fn([keep = tracked, pad] { (void)keep, (void)pad; });
    EXPECT_FALSE((InlineFn::stores_inline<
                  std::decay_t<decltype([keep = tracked, pad] {
                    (void)keep, (void)pad;
                  })>>()));
    EXPECT_EQ(tracked.use_count(), 2);
  }
  EXPECT_EQ(tracked.use_count(), 1);
}

TEST(InlineFn, MovedLargeCaptureInvokesAtNewHome) {
  std::array<double, 32> big{};
  big[0] = 3.25;
  double sink = 0;
  InlineFn a([big, &sink] { sink = big[0]; });
  InlineFn b(std::move(a));
  b();
  EXPECT_DOUBLE_EQ(sink, 3.25);
}

}  // namespace
}  // namespace sda::sim
