// Unit tests for task attributes (paper §3.1's dl = ar + ex + sl relation).
#include "src/task/attributes.hpp"

#include <gtest/gtest.h>

namespace {

using sda::task::Attributes;

TEST(Attributes, SlackRelation) {
  Attributes a;
  a.arrival = 2.0;
  a.exec_time = 3.0;
  a.real_deadline = 10.0;
  EXPECT_DOUBLE_EQ(a.slack(), 5.0);
  // dl = ar + ex + sl holds by construction.
  EXPECT_DOUBLE_EQ(a.arrival + a.exec_time + a.slack(), a.real_deadline);
}

TEST(Attributes, NegativeSlackMeansInfeasible) {
  Attributes a;
  a.arrival = 0.0;
  a.exec_time = 5.0;
  a.real_deadline = 3.0;
  EXPECT_LT(a.slack(), 0.0);
}

TEST(Attributes, VirtualSlackUsesVirtualDeadline) {
  Attributes a;
  a.arrival = 0.0;
  a.exec_time = 2.0;
  a.real_deadline = 10.0;
  a.virtual_deadline = 4.0;  // a DIV-x style promotion
  EXPECT_DOUBLE_EQ(a.slack(), 8.0);
  EXPECT_DOUBLE_EQ(a.virtual_slack(), 2.0);
}

TEST(Attributes, ConsistencyChecks) {
  Attributes ok;
  ok.exec_time = 1.0;
  ok.pred_exec = 2.0;
  EXPECT_TRUE(ok.consistent());

  Attributes bad;
  bad.exec_time = -1.0;
  EXPECT_FALSE(bad.consistent());
  bad.exec_time = 1.0;
  bad.pred_exec = -0.5;
  EXPECT_FALSE(bad.consistent());
}

}  // namespace
