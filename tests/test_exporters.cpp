// Telemetry exporters: the Chrome trace_event document and the versioned
// JSON-lines records must parse as strict JSON, carry their schema markers,
// and — the core contract — leave determinism fingerprints untouched.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "src/exp/config.hpp"
#include "src/exp/json_export.hpp"
#include "src/exp/runner.hpp"
#include "src/metrics/json_writer.hpp"
#include "src/metrics/trace_export.hpp"
#include "src/util/thread_pool.hpp"

namespace {

using namespace sda;

// --- a minimal validating JSON checker -------------------------------------
// Recursive-descent skip-parser over RFC 8259: returns normally iff the
// whole text is one valid JSON value (no DOM is built — the tests only
// assert well-formedness plus a few substring probes).
class JsonChecker {
 public:
  static bool valid(const std::string& text) {
    JsonChecker c(text);
    if (!c.value()) return false;
    c.ws();
    return c.pos_ == text.size();
  }

 private:
  explicit JsonChecker(const std::string& t) : text_(t) {}

  void ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool eat(char c) {
    ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool literal(const char* word) {
    const std::size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }
  bool string() {
    if (!eat('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size() || !std::isxdigit(
                    static_cast<unsigned char>(text_[pos_++]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      }
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    // Defer exactness to strtod: rejects "1.2.3", "-", "1e".
    const std::string tok = text_.substr(start, pos_ - start);
    char* end = nullptr;
    std::strtod(tok.c_str(), &end);
    return end == tok.c_str() + tok.size();
  }
  bool value() {
    ws();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    if (!eat('{')) return false;
    if (eat('}')) return true;
    do {
      ws();
      if (!string()) return false;
      if (!eat(':')) return false;
      if (!value()) return false;
    } while (eat(','));
    return eat('}');
  }
  bool array() {
    if (!eat('[')) return false;
    if (eat(']')) return true;
    do {
      if (!value()) return false;
    } while (eat(','));
    return eat(']');
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

TEST(JsonChecker, SelfTest) {
  EXPECT_TRUE(JsonChecker::valid(R"({"a":[1,2.5,-3e2,"x\n",true,null],"b":{}})"));
  EXPECT_FALSE(JsonChecker::valid(R"({"a":1,})"));
  EXPECT_FALSE(JsonChecker::valid(R"({"a" 1})"));
  EXPECT_FALSE(JsonChecker::valid(R"([1 2])"));
  EXPECT_FALSE(JsonChecker::valid(R"("unterminated)"));
  EXPECT_FALSE(JsonChecker::valid("{}extra"));
  EXPECT_FALSE(JsonChecker::valid("1.2.3"));
}

TEST(JsonWriter, EscapesAndNesting) {
  std::ostringstream os;
  metrics::JsonWriter w(os);
  w.begin_object();
  w.kv("s", "a\"b\\c\nd\x01");
  w.key("arr").begin_array().value(1).value(false).value(2.5).end_array();
  w.key("nested").begin_object().end_object();
  w.end_object();
  EXPECT_TRUE(JsonChecker::valid(os.str())) << os.str();
  EXPECT_NE(os.str().find("\\u0001"), std::string::npos);
}

TEST(JsonWriter, NonFiniteBecomesNull) {
  std::ostringstream os;
  metrics::JsonWriter w(os);
  w.begin_array().value(1.0 / 0.0).value(0.0 / 0.0).end_array();
  EXPECT_EQ(os.str(), "[null,null]");
}

// --- fixtures ---------------------------------------------------------------

exp::ExperimentConfig small_config() {
  exp::ExperimentConfig c = exp::baseline_config();
  c.sim_time = 2000.0;
  c.replications = 2;
  return c;
}

int count_occurrences(const std::string& text, const std::string& needle) {
  int n = 0;
  for (std::size_t at = text.find(needle); at != std::string::npos;
       at = text.find(needle, at + needle.size())) {
    ++n;
  }
  return n;
}

// --- Chrome trace -----------------------------------------------------------

TEST(ChromeTrace, ParsesWithOneTrackPerNode) {
  const exp::ExperimentConfig c = small_config();
  metrics::Tracer tracer;  // unbounded
  (void)exp::run_once(c, 42, &tracer);
  ASSERT_GT(tracer.total(), 0u);

  std::ostringstream os;
  metrics::write_chrome_trace(tracer, c.k, os);
  const std::string doc = os.str();

  EXPECT_TRUE(JsonChecker::valid(doc));
  // One thread_name metadata record per node plus the global-run track.
  EXPECT_EQ(count_occurrences(doc, "\"thread_name\""), c.k + 1);
  for (int n = 0; n < c.k; ++n) {
    EXPECT_NE(doc.find("\"node " + std::to_string(n) + "\""),
              std::string::npos);
  }
  EXPECT_NE(doc.find("\"global runs\""), std::string::npos);
  // Service slices and flow arrows are present.
  EXPECT_GT(count_occurrences(doc, "\"ph\":\"X\""), 0);
  EXPECT_GT(count_occurrences(doc, "\"ph\":\"s\""), 0);
  EXPECT_GT(count_occurrences(doc, "\"ph\":\"f\""), 0);
}

TEST(ChromeTrace, EmptyTracerStillValid) {
  metrics::Tracer tracer;
  std::ostringstream os;
  metrics::write_chrome_trace(tracer, 3, os);
  EXPECT_TRUE(JsonChecker::valid(os.str()));
  EXPECT_EQ(count_occurrences(os.str(), "\"thread_name\""), 4);
}

// --- JSON-lines records ------------------------------------------------------

TEST(JsonLines, RunRecordSchema) {
  exp::ExperimentConfig c = small_config();
  c.distributions = true;
  const std::uint64_t seed = exp::replication_seed(c.seed, 0);
  metrics::Tracer tracer(1);
  const exp::RunResult r = exp::run_once(c, seed, &tracer);

  std::ostringstream os;
  exp::write_run_json_line(c, 0, seed, tracer.fingerprint(), r, os);
  const std::string line = os.str();
  ASSERT_EQ(line.back(), '\n');
  EXPECT_TRUE(JsonChecker::valid(line.substr(0, line.size() - 1))) << line;
  EXPECT_NE(line.find("\"schema\":\"sda.run.v1\""), std::string::npos);
  EXPECT_NE(line.find("\"fingerprint\":\"0x"), std::string::npos);
  EXPECT_NE(line.find("\"classes\":["), std::string::npos);
  EXPECT_NE(line.find("\"nodes\":["), std::string::npos);
  EXPECT_NE(line.find("\"distributions\":{"), std::string::npos);
  EXPECT_NE(line.find("\"p999\":"), std::string::npos);
  EXPECT_EQ(count_occurrences(line, "\"busy_time\":"), c.k);
}

TEST(JsonLines, ReportRecordSchemaAndConfigRoundTrip) {
  const exp::ExperimentConfig c = small_config();
  std::vector<std::uint64_t> fps;
  const metrics::Report report =
      exp::run_experiment(c, util::ThreadPool::shared(), &fps);

  std::ostringstream os;
  exp::write_report_json_line(c, report, fps, nullptr, os);
  const std::string line = os.str();
  EXPECT_TRUE(JsonChecker::valid(line.substr(0, line.size() - 1))) << line;
  EXPECT_NE(line.find("\"schema\":\"sda.report.v1\""), std::string::npos);
  EXPECT_EQ(count_occurrences(line, "\"fingerprint"), 1);  // "fingerprints"
  EXPECT_EQ(count_occurrences(line, "\"0x"), 2);  // one per replication

  // The embedded config block carries every known key, in order — a reader
  // can reconstruct the exact ExperimentConfig from the line.
  for (const auto& [key, value] : c.to_kv()) {
    const std::string pair =
        "\"" + key + "\":\"" + metrics::json_escape(value) + "\"";
    EXPECT_NE(line.find(pair), std::string::npos) << pair;
  }
}

// --- the zero-impact contract ------------------------------------------------

TEST(Exporters, FingerprintIdenticalWithAndWithoutExporters) {
  const exp::ExperimentConfig plain = small_config();

  // Library path: capacity-1 tracers, no exporters.
  std::vector<std::uint64_t> library_fps;
  (void)exp::run_experiment(plain, util::ThreadPool::shared(), &library_fps);
  ASSERT_EQ(library_fps.size(), 2u);

  // Exporter path: unbounded tracer, distributions on, every exporter
  // exercised.  Same seeds => the fingerprints must match exactly.
  exp::ExperimentConfig instrumented = small_config();
  instrumented.distributions = true;
  for (int rep = 0; rep < instrumented.replications; ++rep) {
    const std::uint64_t seed = exp::replication_seed(instrumented.seed, rep);
    metrics::Tracer tracer;  // unbounded: keeps all records for the export
    const exp::RunResult r = exp::run_once(instrumented, seed, &tracer);
    std::ostringstream trace_os, json_os;
    metrics::write_chrome_trace(tracer, instrumented.k, trace_os);
    exp::write_run_json_line(instrumented, rep, seed, tracer.fingerprint(), r,
                             json_os);
    EXPECT_EQ(tracer.fingerprint(), library_fps[static_cast<std::size_t>(rep)])
        << "rep " << rep;
  }
}

TEST(Exporters, ExportIsAPureFunctionOfTheRun) {
  const exp::ExperimentConfig c = small_config();
  metrics::Tracer tracer;
  const exp::RunResult r = exp::run_once(c, 7, &tracer);
  std::ostringstream a, b;
  metrics::write_chrome_trace(tracer, c.k, a);
  metrics::write_chrome_trace(tracer, c.k, b);
  EXPECT_EQ(a.str(), b.str());
  std::ostringstream ja, jb;
  exp::write_run_json_line(c, 0, 7, tracer.fingerprint(), r, ja);
  exp::write_run_json_line(c, 0, 7, tracer.fingerprint(), r, jb);
  EXPECT_EQ(ja.str(), jb.str());
}

}  // namespace
