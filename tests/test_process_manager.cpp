// Integration tests for the process manager: deadline assignment, dispatch,
// precedence enforcement, completion propagation, abortion, resubmission.
#include "src/core/process_manager.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/sched/edf.hpp"
#include "src/task/notation.hpp"

namespace {

using namespace sda;
using core::GlobalTaskRecord;
using core::PmAbortMode;
using core::ProcessManager;
using task::TaskPtr;
using task::TaskState;

/// Test fixture assembling an engine, k idle EDF nodes, and a PM.
class PmTest : public ::testing::Test {
 protected:
  void build(const std::string& psp, const std::string& ssp,
             PmAbortMode abort_mode = PmAbortMode::kNone,
             sched::LocalAbortPolicy local_policy =
                 sched::LocalAbortPolicy::kNone,
             int k = 6, int max_resubmissions = 64) {
    engine = std::make_unique<sim::Engine>();
    nodes.clear();
    node_ptrs.clear();
    for (int i = 0; i < k; ++i) {
      sched::Node::Config nc;
      nc.index = i;
      nc.abort_policy = local_policy;
      nodes.push_back(std::make_unique<sched::Node>(
          *engine, std::make_unique<sched::EdfScheduler>(), nc));
      node_ptrs.push_back(nodes.back().get());
    }
    ProcessManager::Config pc;
    pc.psp = core::make_psp_strategy(psp);
    pc.ssp = core::make_ssp_strategy(ssp);
    pc.abort_mode = abort_mode;
    pc.max_resubmissions_per_run = max_resubmissions;
    pm = std::make_unique<ProcessManager>(*engine, node_ptrs, std::move(pc));
    pm->set_global_handler(
        [this](const GlobalTaskRecord& r) { finished.push_back(r); });
    pm->set_subtask_handler(
        [this](const task::SimpleTask& t) { terminal_subtasks.push_back(t); });
    for (auto& n : nodes) {
      n->set_completion_handler(
          [this](const TaskPtr& t) { pm->handle_completion(t); });
      n->set_abort_handler(
          [this](const TaskPtr& t) { pm->handle_local_abort(t); });
    }
  }

  std::unique_ptr<sim::Engine> engine;
  std::vector<std::unique_ptr<sched::Node>> nodes;
  std::vector<sched::Node*> node_ptrs;
  std::unique_ptr<ProcessManager> pm;
  std::vector<GlobalTaskRecord> finished;
  std::vector<task::SimpleTask> terminal_subtasks;
};

TEST_F(PmTest, RejectsBadSubmissions) {
  build("ud", "ud");
  EXPECT_THROW(pm->submit(nullptr, 10.0, 100, 1), std::invalid_argument);
  EXPECT_THROW(
      pm->submit(task::parse_notation("A@9:1"), 10.0, 100, 1),
      std::out_of_range);  // node 9 with k=6
  EXPECT_THROW(pm->submit(task::parse_notation("A:1"), 10.0, 100, 1),
               std::invalid_argument);  // unbound leaf fails validation
}

TEST_F(PmTest, RequiresStrategies) {
  build("ud", "ud");
  ProcessManager::Config pc;
  EXPECT_THROW(ProcessManager(*engine, node_ptrs, pc), std::invalid_argument);
}

TEST_F(PmTest, ParallelTaskCompletesWhenLastSubtaskFinishes) {
  build("ud", "ud");
  // Three parallel subtasks with ex 1, 2, 3 on idle nodes: done at t=3.
  pm->submit(task::parse_notation("[A@0:1 || B@1:2 || C@2:3]"), 10.0, 100, 1);
  EXPECT_EQ(pm->live_runs(), 1u);
  engine->run();
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_DOUBLE_EQ(finished[0].finished_at, 3.0);
  EXPECT_FALSE(finished[0].missed);
  EXPECT_FALSE(finished[0].aborted);
  EXPECT_EQ(finished[0].subtask_count, 3);
  EXPECT_DOUBLE_EQ(finished[0].total_work, 6.0);
  EXPECT_EQ(pm->live_runs(), 0u);
  EXPECT_EQ(pm->completed_runs(), 1u);
  EXPECT_EQ(terminal_subtasks.size(), 3u);
}

TEST_F(PmTest, SerialStagesRespectPrecedence) {
  build("ud", "ud");
  pm->submit(task::parse_notation("[A@0:2 B@0:3 C@0:4]"), 20.0, 100, 1);
  // All stages run on node 0; serial dispatch means no queueing: each
  // stage starts exactly when its predecessor completes.
  engine->run();
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_DOUBLE_EQ(finished[0].finished_at, 9.0);
  ASSERT_EQ(terminal_subtasks.size(), 3u);
  EXPECT_DOUBLE_EQ(terminal_subtasks[0].attrs.arrival, 0.0);
  EXPECT_DOUBLE_EQ(terminal_subtasks[1].attrs.arrival, 2.0);
  EXPECT_DOUBLE_EQ(terminal_subtasks[2].attrs.arrival, 5.0);
}

TEST_F(PmTest, MissDeterminedAgainstRealDeadline) {
  build("ud", "ud");
  pm->submit(task::parse_notation("[A@0:2 || B@1:5]"), 4.0, 100, 1);
  engine->run();
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_TRUE(finished[0].missed);    // finished at 5 > deadline 4
  EXPECT_FALSE(finished[0].aborted);  // no abortion configured
}

TEST_F(PmTest, SubtaskVirtualDeadlinesFollowStrategy) {
  build("div-1", "ud");
  std::vector<double> vdls;
  // Peek at queued tasks through a dedicated node handler: instead, submit
  // long tasks on distinct idle nodes and inspect the in-service tasks.
  pm->submit(task::parse_notation("[A@0:5 || B@1:5 || C@2:5]"), 9.0, 100, 1);
  for (int i = 0; i < 3; ++i) {
    ASSERT_NE(node_ptrs[static_cast<std::size_t>(i)]->in_service(), nullptr);
    vdls.push_back(node_ptrs[static_cast<std::size_t>(i)]
                       ->in_service()->attrs.virtual_deadline);
  }
  for (double v : vdls) EXPECT_DOUBLE_EQ(v, 3.0);  // Figure 4's DIV-1 value
  engine->run();
}

TEST_F(PmTest, SerialStageDeadlinesRecomputedOnline) {
  build("ud", "eqf");
  // Stage pex {2, 2}, deadline 10.  Stage A gets EQF deadline 0+2+3 = 5 but
  // *actually* finishes at 2; stage B's context starts at now=2 with slack
  // 10-2-2 = 6, so dl(B) = 2 + 2 + 6 = 10.
  pm->submit(task::parse_notation("[A@0:2 B@1:2]"), 10.0, 100, 1);
  ASSERT_NE(node_ptrs[0]->in_service(), nullptr);
  EXPECT_DOUBLE_EQ(node_ptrs[0]->in_service()->attrs.virtual_deadline, 5.0);
  engine->run_until(2.5);
  ASSERT_NE(node_ptrs[1]->in_service(), nullptr);
  EXPECT_DOUBLE_EQ(node_ptrs[1]->in_service()->attrs.virtual_deadline, 10.0);
  engine->run();
  EXPECT_EQ(finished.size(), 1u);
}

TEST_F(PmTest, NestedSerialParallelCompletion) {
  build("ud", "ud");
  // Figure 1's shape; all unit demands on distinct nodes where parallel.
  pm->submit(task::parse_notation(
                 "[T1@0:1 [T2@1:1 || [T3@2:1 T4@3:1 T5@4:1]] [T6@5:1 || "
                 "T7@0:1] T8@1:1]"),
             20.0, 100, 1);
  engine->run();
  ASSERT_EQ(finished.size(), 1u);
  // Critical path: 1 + max(1, 3) + max(1, 1) + 1 = 6.
  EXPECT_DOUBLE_EQ(finished[0].finished_at, 6.0);
  EXPECT_EQ(finished[0].subtask_count, 8);
}

TEST_F(PmTest, PmAbortKillsLiveSubtasksAtRealDeadline) {
  build("ud", "ud", PmAbortMode::kRealDeadline);
  pm->submit(task::parse_notation("[A@0:2 || B@1:10]"), 5.0, 100, 1);
  engine->run();
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_TRUE(finished[0].aborted);
  EXPECT_TRUE(finished[0].missed);
  EXPECT_DOUBLE_EQ(finished[0].finished_at, 5.0);
  EXPECT_EQ(pm->aborted_runs(), 1u);
  // A completed on time; B was aborted at the deadline.
  ASSERT_EQ(terminal_subtasks.size(), 2u);
  EXPECT_EQ(terminal_subtasks[0].state, TaskState::kCompleted);
  EXPECT_EQ(terminal_subtasks[1].state, TaskState::kAborted);
  // Node 1 is free again right after the abort.
  EXPECT_EQ(node_ptrs[1]->in_service(), nullptr);
}

TEST_F(PmTest, PmAbortPreventsLaterStageDispatch) {
  build("ud", "ud", PmAbortMode::kRealDeadline);
  pm->submit(task::parse_notation("[A@0:10 B@1:1]"), 4.0, 100, 1);
  engine->run();
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_TRUE(finished[0].aborted);
  // Only stage A ever became a subtask; B was never dispatched.
  EXPECT_EQ(terminal_subtasks.size(), 1u);
  EXPECT_EQ(node_ptrs[1]->completed(), 0u);
}

TEST_F(PmTest, TimelyCompletionCancelsAbortTimer) {
  build("ud", "ud", PmAbortMode::kRealDeadline);
  pm->submit(task::parse_notation("[A@0:1 || B@1:1]"), 5.0, 100, 1);
  engine->run();
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_FALSE(finished[0].aborted);
  EXPECT_EQ(engine->events_pending(), 0u);  // timer cleaned up
}

TEST_F(PmTest, LocalAbortTriggersResubmissionWithRealDeadline) {
  build("div-1", "ud", PmAbortMode::kNone,
        sched::LocalAbortPolicy::kAbortOnVirtualDeadline);
  // DIV-1 over 2 branches of a task with deadline 8: virtual deadlines at
  // (8-0)/2 = 4.  Subtask A needs 6 > 4, so the node aborts it at t=4; the
  // PM resubmits with the real deadline (8) and it completes at 4+6=10.
  pm->submit(task::parse_notation("[A@0:6 || B@1:1]"), 8.0, 100, 1);
  engine->run();
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_TRUE(finished[0].missed);  // finished at 10 > 8
  EXPECT_DOUBLE_EQ(finished[0].finished_at, 10.0);
  EXPECT_EQ(finished[0].resubmissions, 1);
  EXPECT_EQ(pm->resubmissions(), 1u);
}

TEST_F(PmTest, ResubmittedSubtaskIsNonAbortableSoRunsTerminate) {
  build("div-1", "ud", PmAbortMode::kNone,
        sched::LocalAbortPolicy::kAbortOnVirtualDeadline);
  // Virtual deadline 2 (= 4/2), real deadline 4, demand 6: aborted at 2
  // with all work lost, resubmitted non-abortable, reruns 2..8.  Exactly
  // one abort per subtask, and the run always terminates (late).
  pm->submit(task::parse_notation("[A@0:6 || B@1:1]"), 4.0, 100, 1);
  engine->run();
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_TRUE(finished[0].missed);
  EXPECT_EQ(finished[0].resubmissions, 1);
  EXPECT_DOUBLE_EQ(finished[0].finished_at, 8.0);
  EXPECT_EQ(pm->live_runs(), 0u);
}

TEST_F(PmTest, NonAbortableDirectiveProtectsSubtasks) {
  build("gf", "ud", PmAbortMode::kNone,
        sched::LocalAbortPolicy::kAbortOnVirtualDeadline);
  // Recreate the PM with the directive enabled.
  ProcessManager::Config pc;
  pc.psp = core::make_psp_strategy("gf");
  pc.ssp = core::make_ssp_strategy("ud");
  pc.mark_subtasks_non_abortable = true;
  pm = std::make_unique<ProcessManager>(*engine, node_ptrs, std::move(pc));
  pm->set_global_handler(
      [this](const GlobalTaskRecord& r) { finished.push_back(r); });
  for (auto& n : nodes) {
    n->set_completion_handler(
        [this](const TaskPtr& t) { pm->handle_completion(t); });
    n->set_abort_handler(
        [this](const TaskPtr& t) { pm->handle_local_abort(t); });
  }
  // GF virtual deadlines are pre-expired, but the directive makes subtasks
  // immune to the local abort policy.
  pm->submit(task::parse_notation("[A@0:1 || B@1:1]"), 5.0, 100, 1);
  engine->run();
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_FALSE(finished[0].missed);
  EXPECT_EQ(pm->resubmissions(), 0u);
}

TEST_F(PmTest, StatisticsCounters) {
  build("ud", "ud");
  pm->submit(task::parse_notation("[A@0:1 || B@1:1]"), 5.0, 100, 1);
  pm->submit(task::parse_notation("[C@2:1 D@3:1]"), 9.0, 100, 1);
  EXPECT_EQ(pm->submitted(), 2u);
  EXPECT_EQ(pm->live_runs(), 2u);
  engine->run();
  EXPECT_EQ(pm->completed_runs(), 2u);
  EXPECT_EQ(pm->live_runs(), 0u);
}

TEST_F(PmTest, MetricsClassesPropagate) {
  build("ud", "ud");
  pm->submit(task::parse_notation("[A@0:1 || B@1:1]"), 5.0, 104, 7);
  engine->run();
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_EQ(finished[0].metrics_class, 104);
  for (const auto& t : terminal_subtasks) EXPECT_EQ(t.metrics_class, 7);
}

TEST_F(PmTest, AbortingOneRunLeavesOthersUntouched) {
  build("ud", "ud", PmAbortMode::kRealDeadline);
  // Two runs share node 0; the first is doomed (deadline 2, demand 5), the
  // second is fine.  Aborting the first frees node 0 early for the second.
  pm->submit(task::parse_notation("[A@0:5 || B@1:1]"), 2.0, 100, 1);
  pm->submit(task::parse_notation("[C@0:1 || D@2:1]"), 20.0, 100, 1);
  engine->run();
  ASSERT_EQ(finished.size(), 2u);
  EXPECT_TRUE(finished[0].aborted);   // the doomed run, killed at t=2
  EXPECT_FALSE(finished[1].missed);   // the healthy one completes
  // C queued behind A (same virtual deadline class on node 0? A's vdl is
  // 2, C's is 20 -> A served first), A aborted at 2, C runs 2..3.
  EXPECT_DOUBLE_EQ(finished[1].finished_at, 3.0);
  EXPECT_EQ(pm->aborted_runs(), 1u);
  EXPECT_EQ(pm->completed_runs(), 1u);
}

TEST_F(PmTest, ManyConcurrentRunsAllTerminate) {
  build("div-1", "eqf");
  for (int i = 0; i < 50; ++i) {
    pm->submit(task::parse_notation("[A@0:0.2 [B@1:0.2 || C@2:0.2] D@3:0.2]"),
               engine->now() + 10.0, 100, 1);
  }
  engine->run();
  EXPECT_EQ(finished.size(), 50u);
  EXPECT_EQ(pm->live_runs(), 0u);
  EXPECT_EQ(terminal_subtasks.size(), 200u);
}

TEST_F(PmTest, ZeroResubmissionBudgetAbortsRunOnFirstLocalAbort) {
  build("div-1", "ud", PmAbortMode::kNone,
        sched::LocalAbortPolicy::kAbortOnVirtualDeadline, 6,
        /*max_resubmissions=*/0);
  // Virtual deadline 4 (= 8/2) < demand 6: the local scheduler aborts A at
  // t=4, and with a zero budget the PM must abort the run instead of
  // resubmitting.
  pm->submit(task::parse_notation("[A@0:6 || B@1:1]"), 8.0, 100, 1);
  engine->run();
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_TRUE(finished[0].aborted);
  EXPECT_EQ(finished[0].resubmissions, 0);
  EXPECT_DOUBLE_EQ(finished[0].finished_at, 4.0);
  EXPECT_EQ(pm->resubmissions(), 0u);
  EXPECT_EQ(pm->aborted_runs(), 1u);
  EXPECT_EQ(pm->live_runs(), 0u);
}

TEST_F(PmTest, ResubmissionBudgetOfOneAllowsExactlyOne) {
  build("div-1", "ud", PmAbortMode::kNone,
        sched::LocalAbortPolicy::kAbortOnVirtualDeadline, 6,
        /*max_resubmissions=*/1);
  // Both branches get virtual deadline 4 and demand 6, so both abort at
  // t=4.  The first abort consumes the whole budget (the resubmitted copy
  // is non-abortable); the second must terminate the run.
  pm->submit(task::parse_notation("[A@0:6 || B@1:6]"), 8.0, 100, 1);
  engine->run();
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_TRUE(finished[0].aborted);
  EXPECT_EQ(finished[0].resubmissions, 1);
  EXPECT_EQ(pm->resubmissions(), 1u);
  EXPECT_EQ(pm->live_runs(), 0u);
  // Terminating the run also killed the one resubmitted attempt, so every
  // node is idle and no stale events remain.
  engine->run();
  EXPECT_EQ(engine->events_pending(), 0u);
  EXPECT_EQ(node_ptrs[0]->in_service(), nullptr);
  EXPECT_EQ(node_ptrs[1]->in_service(), nullptr);
}

TEST_F(PmTest, CapTerminationCancelsAbortTimer) {
  // Regression: the run killed by the resubmission cap carries a pending
  // real-deadline abort timer; finish_run must cancel it so no event for
  // the dead run ever fires.
  build("div-1", "ud", PmAbortMode::kRealDeadline,
        sched::LocalAbortPolicy::kAbortOnVirtualDeadline, 6,
        /*max_resubmissions=*/0);
  pm->submit(task::parse_notation("[A@0:6 || B@1:1]"), 8.0, 100, 1);
  engine->run_until(5.0);  // past the local abort at t=4
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_TRUE(finished[0].aborted);
  EXPECT_DOUBLE_EQ(finished[0].finished_at, 4.0);
  // The timer at t=8 was cancelled with the run: nothing left to fire, and
  // running to the end produces no second terminal record.
  EXPECT_EQ(engine->events_pending(), 0u);
  engine->run();
  EXPECT_EQ(finished.size(), 1u);
  EXPECT_EQ(pm->aborted_runs(), 1u);
}

TEST_F(PmTest, SubtasksQueueBehindEachOtherOnSharedNode) {
  build("ud", "ud");
  // Both parallel branches target node 0: they serialize at the server.
  pm->submit(task::parse_notation("[A@0:2 || B@0:3]"), 10.0, 100, 1);
  engine->run();
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_DOUBLE_EQ(finished[0].finished_at, 5.0);
}

}  // namespace
