// Tests for the bench output helpers (bench/common.hpp) — they feed every
// figure binary, so formatting regressions matter.
#include "bench/common.hpp"

#include <gtest/gtest.h>

namespace {

using namespace sda;

exp::SweepPoint point(double x, int cls, int finished, int missed, int reps) {
  exp::SweepPoint p;
  p.x = x;
  for (int rep = 0; rep < reps; ++rep) {
    metrics::Collector c;
    for (int i = 0; i < finished; ++i) {
      c.record(cls, 0.0, i < missed, false, 1.0);
    }
    p.report.add_replication(c);
  }
  return p;
}

TEST(BenchCommon, MdCellSingleReplication) {
  const auto p = point(0.5, metrics::kLocalClass, 10, 2, 1);
  EXPECT_EQ(bench::md_cell(p, metrics::kLocalClass), "20.0%");
}

TEST(BenchCommon, MdCellWithCi) {
  const auto p = point(0.5, metrics::kLocalClass, 10, 2, 2);
  const std::string cell = bench::md_cell(p, metrics::kLocalClass);
  EXPECT_NE(cell.find("20.0"), std::string::npos);
  EXPECT_NE(cell.find("\xc2\xb1"), std::string::npos);
}

TEST(BenchCommon, LoadSweepTablePrints) {
  exp::figures::LoadSweepSeries s{"ud", "ud", {}};
  s.points.push_back(point(0.3, metrics::kLocalClass, 10, 1, 1));
  s.points.push_back(point(0.6, metrics::kLocalClass, 10, 4, 1));
  testing::internal::CaptureStdout();
  bench::print_load_sweep_table({s}, "load");
  const std::string out = testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("MD_local(ud)"), std::string::npos);
  EXPECT_NE(out.find("0.30"), std::string::npos);
  EXPECT_NE(out.find("40.0%"), std::string::npos);
}

TEST(BenchCommon, SspTagInHeader) {
  exp::figures::LoadSweepSeries s{"div-1", "eqf", {}};
  s.points.push_back(point(0.5, metrics::kLocalClass, 10, 1, 1));
  testing::internal::CaptureStdout();
  bench::print_load_sweep_table({s}, "load");
  const std::string out = testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("eqf-div-1"), std::string::npos);
}

TEST(BenchCommon, ChartHandlesEmptySeries) {
  testing::internal::CaptureStdout();
  bench::chart_load_sweep({}, "load");
  const std::string out = testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("no data"), std::string::npos);
}

TEST(BenchCommon, CheckLineFormatsPercentages) {
  testing::internal::CaptureStdout();
  bench::check_line("MD_global", 0.251, 0.25);
  const std::string out = testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("25.1%"), std::string::npos);
  EXPECT_NE(out.find("25.0%"), std::string::npos);
}

}  // namespace
