// Fuzz-style robustness tests for the notation parser:
//  * random well-formed trees round-trip through print -> parse exactly;
//  * random byte garbage either parses (if it happens to be valid) or
//    throws NotationError — never crashes, never throws anything else.
#include <gtest/gtest.h>

#include <string>

#include "src/task/notation.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace sda;
using task::TreePtr;

task::TreePtr random_tree(util::Rng& rng, int depth) {
  if (depth == 0 || rng.uniform01() < 0.45) {
    // Quantize demands so text round-trips are exact.
    const double ex = static_cast<double>(rng.uniform_int(0, 80)) / 16.0;
    const double pex = static_cast<double>(rng.uniform_int(0, 80)) / 16.0;
    std::string name("t");
    name += std::to_string(rng.uniform_int(0, 999));
    return task::make_leaf(static_cast<int>(rng.uniform_int(0, 9)), ex, pex,
                           std::move(name));
  }
  const int kids = static_cast<int>(rng.uniform_int(2, 4));
  std::vector<TreePtr> children;
  for (int i = 0; i < kids; ++i) children.push_back(random_tree(rng, depth - 1));
  return rng.bernoulli(0.5) ? task::make_serial(std::move(children))
                            : task::make_parallel(std::move(children));
}

bool structurally_equal(const task::TreeNode& a, const task::TreeNode& b) {
  if (a.kind != b.kind || a.name != b.name) return false;
  if (a.is_leaf()) {
    return a.exec_node == b.exec_node && a.exec_time == b.exec_time &&
           a.pred_exec == b.pred_exec;
  }
  if (a.children.size() != b.children.size()) return false;
  for (std::size_t i = 0; i < a.children.size(); ++i) {
    if (!structurally_equal(*a.children[i], *b.children[i])) return false;
  }
  return true;
}

TEST(NotationFuzz, RandomTreesRoundTripExactly) {
  util::Rng rng(31337);
  for (int trial = 0; trial < 500; ++trial) {
    const TreePtr original = random_tree(rng, 3);
    const std::string text = task::to_notation(*original, /*with_attrs=*/true);
    TreePtr reparsed;
    ASSERT_NO_THROW(reparsed = task::parse_notation(text)) << text;
    EXPECT_TRUE(structurally_equal(*original, *reparsed)) << text;
  }
}

TEST(NotationFuzz, PlainPrintAlsoReparses) {
  util::Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const TreePtr original = random_tree(rng, 3);
    const std::string text = task::to_notation(*original, /*with_attrs=*/false);
    TreePtr reparsed;
    ASSERT_NO_THROW(reparsed = task::parse_notation(text)) << text;
    EXPECT_EQ(task::leaf_count(*reparsed), task::leaf_count(*original));
    EXPECT_EQ(task::depth(*reparsed), task::depth(*original));
  }
}

TEST(NotationFuzz, GarbageNeverCrashes) {
  util::Rng rng(4242);
  const std::string alphabet = "[]|@:/. abcT0129-_e+";
  for (int trial = 0; trial < 3000; ++trial) {
    const int len = static_cast<int>(rng.uniform_int(0, 40));
    std::string input;
    for (int i = 0; i < len; ++i) {
      input += alphabet[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(alphabet.size()) - 1))];
    }
    try {
      const TreePtr t = task::parse_notation(input);
      // If it parsed, printing must reparse too (parser/printer agreement).
      ASSERT_NO_THROW(task::parse_notation(task::to_notation(*t, true)))
          << input;
    } catch (const task::NotationError&) {
      // expected for malformed inputs
    }
  }
}

TEST(NotationFuzz, DeepNestingDoesNotOverflow) {
  // 2000 levels of brackets exercise the recursive parser's stack usage.
  std::string text(2000, '[');
  text.push_back('A');
  text.append(2000, ']');
  const TreePtr t = task::parse_notation(text);
  EXPECT_TRUE(t->is_leaf());  // singleton composites collapse
}

}  // namespace
