// Unit tests for runtime task instances and their factories.
#include "src/task/task.hpp"

#include <gtest/gtest.h>

namespace {

using namespace sda::task;

TEST(Task, LocalFactorySetsEverything) {
  const TaskPtr t = make_local_task(7, 3, 10.0, 2.0, 15.0);
  EXPECT_EQ(t->id, 7u);
  EXPECT_EQ(t->kind, TaskKind::kLocal);
  EXPECT_EQ(t->exec_node, 3);
  EXPECT_DOUBLE_EQ(t->attrs.arrival, 10.0);
  EXPECT_DOUBLE_EQ(t->attrs.exec_time, 2.0);
  EXPECT_DOUBLE_EQ(t->attrs.pred_exec, 2.0);  // locals know their own demand
  EXPECT_DOUBLE_EQ(t->attrs.real_deadline, 15.0);
  // A local's virtual deadline is its real deadline.
  EXPECT_DOUBLE_EQ(t->attrs.virtual_deadline, 15.0);
  EXPECT_EQ(t->state, TaskState::kCreated);
  EXPECT_EQ(t->owner_run, 0u);
  EXPECT_DOUBLE_EQ(t->remaining, 2.0);
}

TEST(Task, SubtaskFactoryDefaultsVirtualToReal) {
  const TaskPtr t = make_subtask(9, 4, 1, 0.0, 1.5, 1.2, 8.0);
  EXPECT_EQ(t->kind, TaskKind::kSubtask);
  EXPECT_EQ(t->owner_run, 4u);
  EXPECT_DOUBLE_EQ(t->attrs.pred_exec, 1.2);
  EXPECT_DOUBLE_EQ(t->attrs.virtual_deadline, 8.0);  // UD until assigned
}

TEST(Task, MetDeadlinePredicate) {
  const TaskPtr t = make_local_task(1, 0, 0.0, 1.0, 5.0);
  EXPECT_FALSE(t->met_real_deadline());  // not finished yet
  t->state = TaskState::kCompleted;
  t->finished_at = 5.0;
  EXPECT_TRUE(t->met_real_deadline());  // exactly at the deadline counts
  t->finished_at = 5.0001;
  EXPECT_FALSE(t->met_real_deadline());
  t->state = TaskState::kAborted;
  t->finished_at = 1.0;
  EXPECT_FALSE(t->met_real_deadline());  // aborted never counts as met
}

TEST(Task, StateNames) {
  EXPECT_STREQ(to_string(TaskState::kCreated), "created");
  EXPECT_STREQ(to_string(TaskState::kQueued), "queued");
  EXPECT_STREQ(to_string(TaskState::kRunning), "running");
  EXPECT_STREQ(to_string(TaskState::kCompleted), "completed");
  EXPECT_STREQ(to_string(TaskState::kAborted), "aborted");
  EXPECT_STREQ(to_string(TaskKind::kLocal), "local");
  EXPECT_STREQ(to_string(TaskKind::kSubtask), "subtask");
}

}  // namespace
