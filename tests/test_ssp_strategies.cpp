// Unit and property tests for the SSP strategies (UD, ED, EQS, EQF).
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "src/core/ssp_ed.hpp"
#include "src/core/ssp_eqf.hpp"
#include "src/core/ssp_eqs.hpp"
#include "src/core/ssp_ud.hpp"
#include "src/core/strategy.hpp"

namespace {

using namespace sda::core;

SspContext ctx(double now, double deadline, int stage, int stage_count,
               std::vector<double> remaining_pex) {
  SspContext c;
  c.now = now;
  c.deadline = deadline;
  c.stage = stage;
  c.stage_count = stage_count;
  c.remaining_pex = std::move(remaining_pex);
  return c;
}

TEST(SspContextTest, Totals) {
  const auto c = ctx(2.0, 20.0, 0, 3, {1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(c.remaining_pex_total(), 6.0);
  EXPECT_DOUBLE_EQ(c.remaining_slack(), 12.0);  // 20 - 2 - 6
}

TEST(SspUd, InheritsDeadline) {
  SspUltimateDeadline ud;
  EXPECT_DOUBLE_EQ(ud.assign(ctx(3.0, 17.0, 1, 4, {1.0, 1.0, 1.0})), 17.0);
  EXPECT_EQ(ud.name(), "UD");
}

TEST(SspEd, ReservesDownstreamPex) {
  SspEffectiveDeadline ed;
  // dl 20, downstream pex 2 + 3 = 5 -> stage deadline 15.
  EXPECT_DOUBLE_EQ(ed.assign(ctx(0.0, 20.0, 0, 3, {1.0, 2.0, 3.0})), 15.0);
  // Last stage: nothing downstream -> full deadline.
  EXPECT_DOUBLE_EQ(ed.assign(ctx(10.0, 20.0, 2, 3, {3.0})), 20.0);
  EXPECT_EQ(ed.name(), "ED");
}

TEST(SspEqs, SplitsSlackEvenly) {
  SspEqualSlack eqs;
  // now 0, dl 20, pex {2, 2, 2}: slack 14, three stages -> share 14/3.
  const double assigned = eqs.assign(ctx(0.0, 20.0, 0, 3, {2.0, 2.0, 2.0}));
  EXPECT_NEAR(assigned, 0.0 + 2.0 + 14.0 / 3.0, 1e-12);
  EXPECT_EQ(eqs.name(), "EQS");
}

TEST(SspEqs, ShareIndependentOfOwnLength) {
  // EQS gives the same absolute slack share to a long and a short stage.
  SspEqualSlack eqs;
  const double a_long =
      eqs.assign(ctx(0.0, 20.0, 0, 2, {8.0, 2.0}));  // slack 10, share 5
  const double a_short = eqs.assign(ctx(0.0, 20.0, 0, 2, {2.0, 8.0}));
  EXPECT_DOUBLE_EQ(a_long - 8.0, a_short - 2.0);  // both get +5 slack
}

TEST(SspEqf, PaperFormula) {
  SspEqualFlexibility eqf;
  // ar 0, dl 20, pex {2, 3, 5}: total 10, slack 10; stage 0 share 2/10.
  // dl(T_0) = 0 + 2 + 10 * 0.2 = 4.
  EXPECT_DOUBLE_EQ(eqf.assign(ctx(0.0, 20.0, 0, 3, {2.0, 3.0, 5.0})), 4.0);
  EXPECT_EQ(eqf.name(), "EQF");
}

TEST(SspEqf, EqualFlexibilityInvariant) {
  // With the optimistic assumption that each stage finishes at its assigned
  // deadline, every stage's slack-to-pex ratio ("flexibility") is equal.
  SspEqualFlexibility eqf;
  const std::vector<double> pex = {2.0, 3.0, 5.0};
  const double deadline = 30.0;
  double now = 0.0;
  std::vector<double> ratios;
  for (int i = 0; i < 3; ++i) {
    std::vector<double> rem(pex.begin() + i, pex.end());
    const double dl_i = eqf.assign(ctx(now, deadline, i, 3, rem));
    ratios.push_back((dl_i - now - pex[static_cast<std::size_t>(i)]) /
                     pex[static_cast<std::size_t>(i)]);
    now = dl_i;
  }
  EXPECT_NEAR(ratios[0], ratios[1], 1e-9);
  EXPECT_NEAR(ratios[1], ratios[2], 1e-9);
  // And the last stage's deadline is exactly the end-to-end deadline.
  EXPECT_NEAR(now, deadline, 1e-9);
}

TEST(SspEqf, LastStageGetsWholeRemainingDeadline) {
  SspEqualFlexibility eqf;
  EXPECT_DOUBLE_EQ(eqf.assign(ctx(12.0, 20.0, 2, 3, {4.0})), 20.0);
}

TEST(SspEqf, NegativeSlackStillProportional) {
  // When the task is already behind (slack < 0), EQF assigns deadlines
  // before now + pex, keeping urgency proportional.
  SspEqualFlexibility eqf;
  const double assigned = eqf.assign(ctx(0.0, 5.0, 0, 2, {4.0, 4.0}));
  // slack = 5 - 8 = -3; share = 4/8 -> 0 + 4 + (-1.5) = 2.5.
  EXPECT_DOUBLE_EQ(assigned, 2.5);
}

TEST(SspEqf, ZeroPexFallsBackToEvenSplit) {
  SspEqualFlexibility eqf;
  const double assigned = eqf.assign(ctx(0.0, 9.0, 0, 3, {0.0, 0.0, 0.0}));
  EXPECT_DOUBLE_EQ(assigned, 3.0);  // even 1/3 share of 9 slack
}

TEST(SspEqs, EqfEqualWhenStagesUniform) {
  // With identical pex, proportional and even splits coincide.
  SspEqualFlexibility eqf;
  SspEqualSlack eqs;
  const auto c = ctx(1.0, 25.0, 0, 4, {2.0, 2.0, 2.0, 2.0});
  EXPECT_NEAR(eqf.assign(c), eqs.assign(c), 1e-12);
}

TEST(SspFactory, ParsesKnownNames) {
  EXPECT_EQ(make_ssp_strategy("ud")->name(), "UD");
  EXPECT_EQ(make_ssp_strategy("ed")->name(), "ED");
  EXPECT_EQ(make_ssp_strategy("eqs")->name(), "EQS");
  EXPECT_EQ(make_ssp_strategy("eqf")->name(), "EQF");
  EXPECT_EQ(make_ssp_strategy("EQF")->name(), "EQF");
}

TEST(SspFactory, RejectsUnknownNames) {
  EXPECT_THROW(make_ssp_strategy("eq"), std::invalid_argument);
  EXPECT_THROW(make_ssp_strategy(""), std::invalid_argument);
  EXPECT_THROW(make_ssp_strategy("div-1"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Property sweep: ordering among strategies for the *first* stage of a task
// with positive slack: UD gives the latest deadline, ED next (keeps all
// slack), and EQS/EQF earlier (they reserve slack for later stages).
// ---------------------------------------------------------------------------

struct SspCase {
  double deadline;
  std::vector<double> pex;
};

class SspOrdering : public ::testing::TestWithParam<SspCase> {};

TEST_P(SspOrdering, FirstStageOrdering) {
  const SspCase& kase = GetParam();
  const auto c = ctx(0.0, kase.deadline, 0,
                     static_cast<int>(kase.pex.size()), kase.pex);
  const double slack = c.remaining_slack();
  if (slack <= 0 || kase.pex.size() < 2) GTEST_SKIP();

  SspUltimateDeadline ud;
  SspEffectiveDeadline ed;
  SspEqualSlack eqs;
  SspEqualFlexibility eqf;

  const double v_ud = ud.assign(c);
  const double v_ed = ed.assign(c);
  const double v_eqs = eqs.assign(c);
  const double v_eqf = eqf.assign(c);

  EXPECT_GT(v_ud, v_ed);
  EXPECT_GT(v_ed, v_eqs);
  EXPECT_GT(v_ed, v_eqf);
  // All strategies leave at least pex_0 of room.
  for (double v : {v_ed, v_eqs, v_eqf}) {
    EXPECT_GE(v, c.now + kase.pex[0] - 1e-9);
  }
  // None exceeds the end-to-end deadline.
  for (double v : {v_ud, v_ed, v_eqs, v_eqf}) {
    EXPECT_LE(v, kase.deadline + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SspOrdering,
    ::testing::Values(SspCase{20.0, {2.0, 3.0, 5.0}},
                      SspCase{15.0, {1.0, 1.0, 1.0, 1.0, 1.0}},
                      SspCase{50.0, {10.0, 1.0}},
                      SspCase{8.0, {0.5, 0.5, 6.0}},
                      SspCase{100.0, {4.0, 4.0, 4.0, 4.0}}));

}  // namespace
