// Unit tests for the serial-parallel task tree (GT1-GT3).
#include "src/task/tree.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

using namespace sda::task;

// Builds the paper's Figure 1 example [T1 [T2 || [T3 T4 T5]] [T6 || T7] T8]
// with unit demands on nodes 0..5 (wrapping).
TreePtr figure1_tree() {
  std::vector<TreePtr> s345;
  s345.push_back(make_leaf(2, 1.0, -1, "T3"));
  s345.push_back(make_leaf(3, 1.0, -1, "T4"));
  s345.push_back(make_leaf(4, 1.0, -1, "T5"));

  std::vector<TreePtr> p2;
  p2.push_back(make_leaf(1, 1.0, -1, "T2"));
  p2.push_back(make_serial(std::move(s345)));

  std::vector<TreePtr> p67;
  p67.push_back(make_leaf(5, 1.0, -1, "T6"));
  p67.push_back(make_leaf(0, 1.0, -1, "T7"));

  std::vector<TreePtr> top;
  top.push_back(make_leaf(0, 1.0, -1, "T1"));
  top.push_back(make_parallel(std::move(p2)));
  top.push_back(make_parallel(std::move(p67)));
  top.push_back(make_leaf(1, 1.0, -1, "T8"));
  return make_serial(std::move(top));
}

TEST(Tree, LeafBasics) {
  const TreePtr t = make_leaf(2, 1.5, 1.2, "X");
  EXPECT_TRUE(t->is_leaf());
  EXPECT_EQ(t->exec_node, 2);
  EXPECT_DOUBLE_EQ(t->exec_time, 1.5);
  EXPECT_DOUBLE_EQ(t->pred_exec, 1.2);
  EXPECT_EQ(leaf_count(*t), 1);
  EXPECT_EQ(depth(*t), 1);
}

TEST(Tree, PexDefaultsToEx) {
  const TreePtr t = make_leaf(0, 2.5);
  EXPECT_DOUBLE_EQ(t->pred_exec, 2.5);
}

TEST(Tree, CompositeRequiresChildren) {
  EXPECT_THROW(make_serial({}), std::invalid_argument);
  EXPECT_THROW(make_parallel({}), std::invalid_argument);
}

TEST(Tree, Figure1Shape) {
  const TreePtr t = figure1_tree();
  EXPECT_TRUE(t->is_serial());
  EXPECT_EQ(t->children.size(), 4u);
  EXPECT_EQ(leaf_count(*t), 8);
  EXPECT_EQ(depth(*t), 4);  // serial -> parallel -> serial -> leaf
  EXPECT_TRUE(validate(*t).empty());
}

TEST(Tree, CriticalPathSerial) {
  std::vector<TreePtr> c;
  c.push_back(make_leaf(0, 1.0));
  c.push_back(make_leaf(1, 2.0));
  c.push_back(make_leaf(2, 3.0));
  const TreePtr t = make_serial(std::move(c));
  EXPECT_DOUBLE_EQ(critical_path_ex(*t), 6.0);
  EXPECT_DOUBLE_EQ(total_ex(*t), 6.0);
}

TEST(Tree, CriticalPathParallel) {
  std::vector<TreePtr> c;
  c.push_back(make_leaf(0, 1.0));
  c.push_back(make_leaf(1, 5.0));
  c.push_back(make_leaf(2, 3.0));
  const TreePtr t = make_parallel(std::move(c));
  EXPECT_DOUBLE_EQ(critical_path_ex(*t), 5.0);  // Equation 2's max term
  EXPECT_DOUBLE_EQ(total_ex(*t), 9.0);
}

TEST(Tree, CriticalPathNested) {
  // [A(1) [B(2) || [C(1) D(4)]] E(1)]: critical path 1 + max(2, 5) + 1 = 7.
  std::vector<TreePtr> inner_serial;
  inner_serial.push_back(make_leaf(0, 1.0));
  inner_serial.push_back(make_leaf(1, 4.0));
  std::vector<TreePtr> par;
  par.push_back(make_leaf(2, 2.0));
  par.push_back(make_serial(std::move(inner_serial)));
  std::vector<TreePtr> top;
  top.push_back(make_leaf(3, 1.0));
  top.push_back(make_parallel(std::move(par)));
  top.push_back(make_leaf(4, 1.0));
  const TreePtr t = make_serial(std::move(top));
  EXPECT_DOUBLE_EQ(critical_path_ex(*t), 7.0);
  EXPECT_DOUBLE_EQ(total_ex(*t), 9.0);
}

TEST(Tree, CriticalPathPexIndependentOfEx) {
  std::vector<TreePtr> c;
  c.push_back(make_leaf(0, 1.0, 10.0));
  c.push_back(make_leaf(1, 5.0, 2.0));
  const TreePtr t = make_parallel(std::move(c));
  EXPECT_DOUBLE_EQ(critical_path_ex(*t), 5.0);
  EXPECT_DOUBLE_EQ(critical_path_pex(*t), 10.0);
  EXPECT_DOUBLE_EQ(total_pex(*t), 12.0);
}

TEST(Tree, LeavesAreDfsOrdered) {
  const TreePtr t = figure1_tree();
  const auto ls = leaves(*t);
  ASSERT_EQ(ls.size(), 8u);
  EXPECT_EQ(ls[0]->name, "T1");
  EXPECT_EQ(ls[1]->name, "T2");
  EXPECT_EQ(ls[2]->name, "T3");
  EXPECT_EQ(ls[7]->name, "T8");
}

TEST(Tree, CloneIsDeepAndEqual) {
  const TreePtr t = figure1_tree();
  const TreePtr c = clone(*t);
  EXPECT_NE(t.get(), c.get());
  EXPECT_EQ(leaf_count(*c), leaf_count(*t));
  EXPECT_DOUBLE_EQ(critical_path_ex(*c), critical_path_ex(*t));
  // Mutating the clone leaves the original untouched.
  c->children[0]->exec_time = 99.0;
  EXPECT_DOUBLE_EQ(t->children[0]->exec_time, 1.0);
}

TEST(Tree, ValidateCatchesBadLeaves) {
  TreePtr unbound = make_leaf(-1, 1.0);
  EXPECT_FALSE(validate(*unbound).empty());

  TreePtr neg = make_leaf(0, 1.0);
  neg->exec_time = -2.0;
  EXPECT_FALSE(validate(*neg).empty());

  TreePtr bad_name = make_leaf(0, 1.0, -1, "ok");
  bad_name->name = "a[b";
  EXPECT_FALSE(validate(*bad_name).empty());
}

TEST(Tree, ValidateCatchesLeafWithChildren) {
  TreePtr t = make_leaf(0, 1.0);
  t->children.push_back(make_leaf(1, 1.0));
  EXPECT_FALSE(validate(*t).empty());
}

TEST(Tree, ValidateCatchesEmptyComposite) {
  TreeNode t;
  t.kind = TreeNode::Kind::Serial;
  EXPECT_FALSE(validate(t).empty());
}

}  // namespace
