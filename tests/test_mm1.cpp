// Queueing-theory validation of the node + source substrate.
//
// A single node fed by one Poisson local source with exponential service is
// an M/M/1 queue.  Closed forms:
//   utilization           rho = lambda/mu
//   mean sojourn time     W   = 1/(mu - lambda)
//   mean number in system L   = rho/(1 - rho)        (Little: L = lambda W)
// These hold for ANY work-conserving non-preemptive discipline's L and W
// averages only under FIFO; for EDF the mean sojourn differs but
// utilization and total-served counts must match (work conservation).
#include <gtest/gtest.h>

#include <memory>

#include "src/metrics/collector.hpp"
#include "src/sched/node.hpp"
#include "src/sched/scheduler.hpp"
#include "src/sim/engine.hpp"
#include "src/util/stats.hpp"
#include "src/workload/local_source.hpp"

namespace {

using namespace sda;

struct Mm1Result {
  double utilization = 0.0;
  double mean_sojourn = 0.0;
  double mean_in_system = 0.0;
  std::uint64_t completed = 0;
  std::uint64_t generated = 0;
};

Mm1Result run_mm1(const std::string& policy, double lambda, double mu,
                  double horizon, std::uint64_t seed) {
  sim::Engine engine;
  sched::Node::Config nc;
  nc.index = 0;
  sched::Node node(engine, sched::make_scheduler(policy), nc);
  metrics::Collector collector;

  util::RunningStat sojourn;
  node.set_completion_handler([&](const task::TaskPtr& t) {
    sojourn.add(t->finished_at - t->attrs.arrival);
  });

  workload::LocalSource::Config lc;
  lc.lambda = lambda;
  lc.mean_exec = 1.0 / mu;
  lc.slack_min = 0.0;
  lc.slack_max = 100.0;  // deadlines irrelevant here
  workload::LocalSource source(engine, node, collector, util::Rng(seed), lc);
  source.start();
  engine.run_until(horizon);

  Mm1Result r;
  r.utilization = node.utilization();
  r.mean_sojourn = sojourn.mean();
  r.mean_in_system = node.mean_tasks_in_system();
  r.completed = node.completed();
  r.generated = source.generated();
  return r;
}

TEST(Mm1, UtilizationMatchesRho) {
  const auto r = run_mm1("fifo", 0.5, 1.0, 200000.0, 1);
  EXPECT_NEAR(r.utilization, 0.5, 0.01);
}

TEST(Mm1, FifoSojournMatchesClosedForm) {
  // W = 1/(mu - lambda) = 2 at rho = 0.5.
  const auto r = run_mm1("fifo", 0.5, 1.0, 200000.0, 2);
  EXPECT_NEAR(r.mean_sojourn, 2.0, 0.1);
}

TEST(Mm1, FifoHigherLoad) {
  // rho = 0.8: W = 5, L = 4.
  const auto r = run_mm1("fifo", 0.8, 1.0, 400000.0, 3);
  EXPECT_NEAR(r.utilization, 0.8, 0.01);
  EXPECT_NEAR(r.mean_sojourn, 5.0, 0.4);
  EXPECT_NEAR(r.mean_in_system, 4.0, 0.35);
}

TEST(Mm1, LittlesLawHolds) {
  const auto r = run_mm1("fifo", 0.6, 1.0, 300000.0, 4);
  // L = lambda * W, measured quantities on both sides.
  EXPECT_NEAR(r.mean_in_system, 0.6 * r.mean_sojourn, 0.08);
}

TEST(Mm1, ArrivalCountMatchesRate) {
  const auto r = run_mm1("fifo", 0.5, 1.0, 200000.0, 5);
  EXPECT_NEAR(static_cast<double>(r.generated), 100000.0, 1500.0);
  // Almost all generated tasks complete by the horizon at rho = 0.5.
  EXPECT_GT(r.completed, r.generated - 30);
}

TEST(Mm1, WorkConservationAcrossPolicies) {
  // EDF and FIFO serve the same arrival stream (same seed): identical
  // utilization and (nearly) identical completion counts.
  const auto fifo = run_mm1("fifo", 0.7, 1.0, 100000.0, 6);
  const auto edf = run_mm1("edf", 0.7, 1.0, 100000.0, 6);
  EXPECT_NEAR(fifo.utilization, edf.utilization, 1e-9);
  EXPECT_NEAR(static_cast<double>(fifo.completed),
              static_cast<double>(edf.completed), 5.0);
}

TEST(Mm1, SptBeatsFifoOnMeanSojourn) {
  // Classic result: SPT minimizes mean sojourn among non-preemptive rules.
  const auto fifo = run_mm1("fifo", 0.8, 1.0, 200000.0, 7);
  const auto spt = run_mm1("spt", 0.8, 1.0, 200000.0, 7);
  EXPECT_LT(spt.mean_sojourn, fifo.mean_sojourn);
}

}  // namespace
