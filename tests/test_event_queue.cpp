// Unit tests for the cancellable event queue.
#include "src/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include "src/util/rng.hpp"

#include <stdexcept>
#include <vector>

namespace {

using sda::sim::EventId;
using sda::sim::EventQueue;

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.push(3.0, [&] { fired.push_back(3); });
  q.push(1.0, [&] { fired.push_back(1); });
  q.push(2.0, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFifo) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.push(5.0, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, PeekDoesNotRemove) {
  EventQueue q;
  q.push(7.0, [] {});
  EXPECT_DOUBLE_EQ(q.peek_time(), 7.0);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.push(1.0, [&] { fired = true; });
  q.push(2.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_DOUBLE_EQ(q.peek_time(), 2.0);
  while (!q.empty()) q.pop().second();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const EventId id = q.push(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterFireFails) {
  EventQueue q;
  const EventId id = q.push(1.0, [] {});
  q.pop().second();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelDefaultIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventId{}));
}

TEST(EventQueue, PendingTracksLifecycle) {
  EventQueue q;
  const EventId id = q.push(1.0, [] {});
  EXPECT_TRUE(q.pending(id));
  q.pop();
  EXPECT_FALSE(q.pending(id));
  const EventId id2 = q.push(1.0, [] {});
  q.cancel(id2);
  EXPECT_FALSE(q.pending(id2));
}

TEST(EventQueue, PopOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.pop(), std::logic_error);
  EXPECT_THROW(q.peek_time(), std::logic_error);
}

TEST(EventQueue, AllCancelledBehavesEmpty) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 5; ++i) ids.push_back(q.push(i, [] {}));
  for (EventId id : ids) q.cancel(id);
  EXPECT_TRUE(q.empty());
  EXPECT_THROW(q.pop(), std::logic_error);
}

TEST(EventQueue, InterleavedCancelKeepsOrder) {
  EventQueue q;
  std::vector<int> fired;
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(q.push(static_cast<double>(i), [&fired, i] { fired.push_back(i); }));
  }
  for (int i = 0; i < 10; i += 2) q.cancel(ids[static_cast<std::size_t>(i)]);
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, (std::vector<int>{1, 3, 5, 7, 9}));
}

TEST(EventQueue, ManyEventsStressOrder) {
  EventQueue q;
  // Deterministic pseudo-random times; verify nondecreasing pop order.
  std::uint64_t s = 99;
  for (int i = 0; i < 10000; ++i) {
    const double t = static_cast<double>(sda::util::splitmix64_next(s) >> 40);
    q.push(t, [] {});
  }
  double last = -1.0;
  while (!q.empty()) {
    const double t = q.peek_time();
    q.pop();
    EXPECT_GE(t, last);
    last = t;
  }
}

}  // namespace
