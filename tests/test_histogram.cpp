// Unit tests for the fixed-width histogram.
#include "src/util/histogram.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

using sda::util::Histogram;

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BucketEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(4), 10.0);
}

TEST(Histogram, CountsFallInRightBuckets) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);   // bucket 0 (inclusive lower edge)
  h.add(1.99);  // bucket 0
  h.add(2.0);   // bucket 1
  h.add(9.99);  // bucket 4
  h.add(-0.1);  // underflow
  h.add(10.0);  // overflow (hi is exclusive)
  h.add(100.0); // overflow
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 7u);
}

TEST(Histogram, QuantileOnUniformFill) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1.5);
  EXPECT_NEAR(h.quantile(1.0), 100.0, 1.5);
}

TEST(Histogram, QuantileEmptyReturnsLo) {
  Histogram h(5.0, 10.0, 2);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
}

TEST(Histogram, QuantileClampsArgument) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25);
  EXPECT_NO_THROW(h.quantile(-1.0));
  EXPECT_NO_THROW(h.quantile(2.0));
}

TEST(Histogram, RenderMentionsCountsAndOverflow) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(5.0);
  const std::string out = h.render();
  EXPECT_NE(out.find("2"), std::string::npos);
  EXPECT_NE(out.find("overflow 1"), std::string::npos);
  EXPECT_EQ(out.find("underflow"), std::string::npos);
}

}  // namespace
