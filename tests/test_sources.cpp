// Tests for the workload sources: arrival rates, attribute distributions,
// Equation 2/3 deadline generation, distinct placement, graph shapes.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "src/core/process_manager.hpp"
#include "src/metrics/collector.hpp"
#include "src/sched/edf.hpp"
#include "src/util/stats.hpp"
#include "src/workload/global_source.hpp"
#include "src/workload/local_source.hpp"
#include "src/workload/taskgraph_source.hpp"

namespace {

using namespace sda;

TEST(LocalSource, RateAndAttributes) {
  sim::Engine engine;
  sched::Node node(engine, std::make_unique<sched::EdfScheduler>(), {});
  metrics::Collector collector;

  std::vector<task::TaskPtr> seen;
  util::RunningStat exec, slack;
  node.set_completion_handler([&](const task::TaskPtr& t) {
    exec.add(t->attrs.exec_time);
    slack.add(t->attrs.slack());
    // Deadline relation dl = ar + ex + sl with slack in [1.25, 5].
    EXPECT_GE(t->attrs.slack(), 1.25);
    EXPECT_LE(t->attrs.slack(), 5.0);
    EXPECT_DOUBLE_EQ(t->attrs.virtual_deadline, t->attrs.real_deadline);
    EXPECT_EQ(t->kind, task::TaskKind::kLocal);
  });

  workload::LocalSource::Config lc;
  lc.lambda = 0.3;
  workload::LocalSource src(engine, node, collector, util::Rng(7), lc);
  src.start();
  engine.run_until(50000.0);

  EXPECT_NEAR(static_cast<double>(src.generated()), 15000.0, 400.0);
  EXPECT_NEAR(exec.mean(), 1.0, 0.03);            // exp(mean 1)
  EXPECT_NEAR(slack.mean(), (1.25 + 5.0) / 2, 0.03);  // uniform mean
}

TEST(LocalSource, ZeroRateGeneratesNothing) {
  sim::Engine engine;
  sched::Node node(engine, std::make_unique<sched::EdfScheduler>(), {});
  metrics::Collector collector;
  workload::LocalSource::Config lc;
  lc.lambda = 0.0;
  workload::LocalSource src(engine, node, collector, util::Rng(1), lc);
  src.start();
  engine.run_until(1000.0);
  EXPECT_EQ(src.generated(), 0u);
  EXPECT_EQ(engine.events_fired(), 0u);
}

TEST(LocalSource, Validation) {
  sim::Engine engine;
  sched::Node node(engine, std::make_unique<sched::EdfScheduler>(), {});
  metrics::Collector collector;
  workload::LocalSource::Config bad;
  bad.lambda = -1.0;
  EXPECT_THROW(
      workload::LocalSource(engine, node, collector, util::Rng(1), bad),
      std::invalid_argument);
  bad = {};
  bad.slack_min = 10.0;
  bad.slack_max = 1.0;
  EXPECT_THROW(
      workload::LocalSource(engine, node, collector, util::Rng(1), bad),
      std::invalid_argument);
  bad = {};
  bad.mean_exec = 0.0;
  EXPECT_THROW(
      workload::LocalSource(engine, node, collector, util::Rng(1), bad),
      std::invalid_argument);
}

TEST(LocalSource, PmAbortTimersKillTardyLocals) {
  sim::Engine engine;
  sched::Node node(engine, std::make_unique<sched::EdfScheduler>(), {});
  metrics::Collector collector;
  workload::LocalSource::Config lc;
  lc.lambda = 0.9;  // heavy single-node overload -> many tardy tasks
  lc.abort_at_real_deadline = true;
  workload::LocalSource src(engine, node, collector, util::Rng(3), lc);
  src.start();
  engine.run_until(20000.0);
  // With abortion at the real deadline, no task can *complete* late.
  EXPECT_GT(node.aborted_externally(), 0u);
  const auto counts = collector.counts(metrics::kLocalClass);
  EXPECT_EQ(counts.missed, counts.aborted);  // every miss is an abort
}

// Fixture giving a full engine + nodes + PM so global sources can dispatch.
class GlobalSourceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 6; ++i) {
      sched::Node::Config nc;
      nc.index = i;
      nodes.push_back(std::make_unique<sched::Node>(
          engine, std::make_unique<sched::EdfScheduler>(), nc));
      node_ptrs.push_back(nodes.back().get());
    }
    core::ProcessManager::Config pc;
    pc.psp = core::make_psp_strategy("ud");
    pc.ssp = core::make_ssp_strategy("ud");
    pm = std::make_unique<core::ProcessManager>(engine, node_ptrs,
                                                std::move(pc));
    for (auto& n : nodes) {
      n->set_completion_handler(
          [this](const task::TaskPtr& t) { pm->handle_completion(t); });
    }
  }

  sim::Engine engine;
  std::vector<std::unique_ptr<sched::Node>> nodes;
  std::vector<sched::Node*> node_ptrs;
  std::unique_ptr<core::ProcessManager> pm;
};

TEST_F(GlobalSourceTest, Equation2DeadlineAndDistinctPlacement) {
  std::vector<core::GlobalTaskRecord> recs;
  pm->set_global_handler(
      [&](const core::GlobalTaskRecord& r) { recs.push_back(r); });

  // Track per-subtask placement through the subtask handler.
  std::map<std::uint64_t, std::set<int>> placement;
  pm->set_subtask_handler([&](const task::SimpleTask& t) {
    // Equation 3: every subtask has at least the task's minimum slack.
    EXPECT_GE(t.attrs.slack(), 1.25 - 1e-9);
    placement[t.owner_run].insert(t.exec_node);
  });

  workload::ParallelGlobalSource::Config gc;
  gc.lambda = 0.05;
  workload::ParallelGlobalSource src(engine, *pm, util::Rng(11), gc);
  src.start();
  engine.run_until(5000.0);

  EXPECT_GT(recs.size(), 100u);
  for (const auto& [run, sites] : placement) {
    EXPECT_EQ(sites.size(), 4u);  // n distinct nodes
  }
  for (const auto& r : recs) {
    EXPECT_EQ(r.subtask_count, 4);
    EXPECT_EQ(r.metrics_class, metrics::global_class(4));
    // dl - ar = max ex + slack >= slack_min.
    EXPECT_GE(r.real_deadline - r.arrival, 1.25 - 1e-9);
  }
}

TEST_F(GlobalSourceTest, NonHomogeneousSizes) {
  std::map<int, int> size_counts;
  pm->set_global_handler([&](const core::GlobalTaskRecord& r) {
    ++size_counts[r.subtask_count];
    EXPECT_EQ(r.metrics_class, metrics::global_class(r.subtask_count));
  });
  workload::ParallelGlobalSource::Config gc;
  gc.lambda = 0.05;
  gc.n_min = 2;
  gc.n_max = 6;
  workload::ParallelGlobalSource src(engine, *pm, util::Rng(13), gc);
  src.start();
  engine.run_until(20000.0);
  // All five sizes appear, roughly uniformly.
  for (int n = 2; n <= 6; ++n) {
    ASSERT_GT(size_counts[n], 0) << "n=" << n;
  }
  const double total = 0.05 * 20000.0;
  for (int n = 2; n <= 6; ++n) {
    EXPECT_NEAR(size_counts[n], total / 5.0, total / 5.0 * 0.25);
  }
}

TEST_F(GlobalSourceTest, ExpectedWorkHelper) {
  workload::ParallelGlobalSource::Config gc;
  gc.n_min = 2;
  gc.n_max = 6;
  EXPECT_DOUBLE_EQ(workload::ParallelGlobalSource::expected_work(gc), 4.0);
  gc.n_min = gc.n_max = 4;
  gc.mean_subtask_exec = 0.5;
  EXPECT_DOUBLE_EQ(workload::ParallelGlobalSource::expected_work(gc), 2.0);
}

TEST_F(GlobalSourceTest, Validation) {
  workload::ParallelGlobalSource::Config gc;
  gc.n_min = 0;
  EXPECT_THROW(workload::ParallelGlobalSource(engine, *pm, util::Rng(1), gc),
               std::invalid_argument);
  gc = {};
  gc.n_max = 7;  // > k = 6 distinct nodes impossible
  EXPECT_THROW(workload::ParallelGlobalSource(engine, *pm, util::Rng(1), gc),
               std::invalid_argument);
  gc = {};
  gc.lambda = -0.1;
  EXPECT_THROW(workload::ParallelGlobalSource(engine, *pm, util::Rng(1), gc),
               std::invalid_argument);
}

TEST_F(GlobalSourceTest, GraphSourceDrawsFigure14Shape) {
  workload::GraphGlobalSource::Config gc;
  gc.lambda = 0.01;
  workload::GraphGlobalSource src(engine, *pm, util::Rng(17), gc);
  for (int i = 0; i < 50; ++i) {
    const task::TreePtr t = src.draw_tree();
    ASSERT_TRUE(t->is_serial());
    ASSERT_EQ(t->children.size(), 5u);
    EXPECT_TRUE(t->children[0]->is_leaf());
    EXPECT_TRUE(t->children[1]->is_parallel());
    EXPECT_EQ(t->children[1]->children.size(), 4u);
    EXPECT_TRUE(t->children[2]->is_leaf());
    EXPECT_TRUE(t->children[3]->is_parallel());
    EXPECT_TRUE(t->children[4]->is_leaf());
    EXPECT_EQ(task::leaf_count(*t), 11);
    EXPECT_TRUE(task::validate(*t).empty());
    // Distinct placement within each parallel stage.
    for (const auto& stage : t->children) {
      if (!stage->is_parallel()) continue;
      std::set<int> sites;
      for (const auto& leaf : stage->children) sites.insert(leaf->exec_node);
      EXPECT_EQ(sites.size(), stage->children.size());
    }
  }
  EXPECT_DOUBLE_EQ(workload::GraphGlobalSource::expected_work(gc), 11.0);
}

TEST_F(GlobalSourceTest, GraphSourceRunsEndToEnd) {
  std::vector<core::GlobalTaskRecord> recs;
  pm->set_global_handler(
      [&](const core::GlobalTaskRecord& r) { recs.push_back(r); });
  workload::GraphGlobalSource::Config gc;
  gc.lambda = 0.02;
  workload::GraphGlobalSource src(engine, *pm, util::Rng(19), gc);
  src.start();
  engine.run_until(10000.0);
  EXPECT_GT(recs.size(), 100u);
  for (const auto& r : recs) {
    EXPECT_EQ(r.subtask_count, 11);
    // Slack range [6.25, 25]: dl - ar >= critical path + 6.25 > 6.25.
    EXPECT_GE(r.real_deadline - r.arrival, 6.25);
  }
}

TEST_F(GlobalSourceTest, GraphSourceWithLinksInsertsMessages) {
  workload::GraphGlobalSource::Config gc;
  gc.lambda = 0.01;
  gc.link_nodes = {6, 7};  // beyond the k = 6 compute range
  gc.mean_msg_time = 0.5;
  // The fixture only built 6 nodes, but draw_tree never dispatches; use it
  // to inspect the generated shape.
  workload::GraphGlobalSource src(engine, *pm, util::Rng(23), gc);
  for (int i = 0; i < 30; ++i) {
    const task::TreePtr t = src.draw_tree();
    // {1,4,1,4,1} + 4 message legs between the 5 stages = 9 serial children.
    ASSERT_TRUE(t->is_serial());
    EXPECT_EQ(t->children.size(), 9u);
    EXPECT_EQ(task::leaf_count(*t), 15);
    for (std::size_t s = 1; s < t->children.size(); s += 2) {
      const task::TreeNode& msg = *t->children[s];
      EXPECT_TRUE(msg.is_leaf());
      EXPECT_EQ(msg.name, "msg");
      EXPECT_TRUE(msg.exec_node == 6 || msg.exec_node == 7);
    }
  }
  EXPECT_DOUBLE_EQ(workload::GraphGlobalSource::expected_message_work(gc),
                   4 * 0.5);
  workload::GraphGlobalSource::Config no_links;
  EXPECT_DOUBLE_EQ(
      workload::GraphGlobalSource::expected_message_work(no_links), 0.0);
}

TEST_F(GlobalSourceTest, GraphSourceRejectsLinkInComputeRange) {
  workload::GraphGlobalSource::Config gc;
  gc.link_nodes = {3};  // inside [0, 6)
  EXPECT_THROW(workload::GraphGlobalSource(engine, *pm, util::Rng(1), gc),
               std::invalid_argument);
  gc.link_nodes = {6};
  gc.mean_msg_time = 0.0;
  EXPECT_THROW(workload::GraphGlobalSource(engine, *pm, util::Rng(1), gc),
               std::invalid_argument);
}

TEST_F(GlobalSourceTest, GraphSourceValidation) {
  workload::GraphGlobalSource::Config gc;
  gc.stage_widths = {};
  EXPECT_THROW(workload::GraphGlobalSource(engine, *pm, util::Rng(1), gc),
               std::invalid_argument);
  gc = {};
  gc.stage_widths = {1, 0};
  EXPECT_THROW(workload::GraphGlobalSource(engine, *pm, util::Rng(1), gc),
               std::invalid_argument);
  gc = {};
  gc.stage_widths = {1, 9};  // wider than k
  EXPECT_THROW(workload::GraphGlobalSource(engine, *pm, util::Rng(1), gc),
               std::invalid_argument);
}

}  // namespace
