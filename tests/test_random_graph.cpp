// Tests for the random serial-parallel workload generator.
#include "src/workload/random_graph.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "src/sched/edf.hpp"
#include "src/task/notation.hpp"

namespace {

using namespace sda;

class RandomGraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 6; ++i) {
      sched::Node::Config nc;
      nc.index = i;
      nodes.push_back(std::make_unique<sched::Node>(
          engine, std::make_unique<sched::EdfScheduler>(), nc));
      ptrs.push_back(nodes.back().get());
    }
    core::ProcessManager::Config pc;
    pc.psp = core::make_psp_strategy("div-1");
    pc.ssp = core::make_ssp_strategy("eqf");
    pm = std::make_unique<core::ProcessManager>(engine, ptrs, std::move(pc));
    for (auto& n : nodes) {
      n->set_completion_handler(
          [this](const task::TaskPtr& t) { pm->handle_completion(t); });
    }
  }

  sim::Engine engine;
  std::vector<std::unique_ptr<sched::Node>> nodes;
  std::vector<sched::Node*> ptrs;
  std::unique_ptr<core::ProcessManager> pm;
};

TEST_F(RandomGraphTest, DrawnTreesAreValidAndVaried) {
  workload::RandomGraphSource::Config gc;
  gc.lambda = 0.01;
  workload::RandomGraphSource src(engine, *pm, util::Rng(3), gc);
  std::set<int> leaf_counts;
  std::set<int> depths;
  for (int i = 0; i < 200; ++i) {
    const task::TreePtr t = src.draw_tree();
    EXPECT_FALSE(t->is_leaf());  // globals are composites
    EXPECT_TRUE(task::validate(*t).empty()) << task::to_notation(*t);
    EXPECT_LE(task::depth(*t), gc.max_depth + 1);
    leaf_counts.insert(task::leaf_count(*t));
    depths.insert(task::depth(*t));
    // Parallel composites place leaf children at distinct nodes.
    std::function<void(const task::TreeNode&)> check =
        [&](const task::TreeNode& n) {
          if (n.is_parallel()) {
            std::set<int> sites;
            int leaf_children = 0;
            for (const auto& c : n.children) {
              if (c->is_leaf()) {
                ++leaf_children;
                sites.insert(c->exec_node);
              }
            }
            EXPECT_EQ(static_cast<int>(sites.size()), leaf_children);
          }
          for (const auto& c : n.children) check(*c);
        };
    check(*t);
  }
  EXPECT_GT(leaf_counts.size(), 3u);  // genuinely heterogeneous shapes
  EXPECT_GT(depths.size(), 1u);
}

TEST_F(RandomGraphTest, CalibrationEstimatesMeanWork) {
  workload::RandomGraphSource::Config gc;
  gc.lambda = 0.01;
  workload::RandomGraphSource src(engine, *pm, util::Rng(4), gc);
  const double calibrated = src.calibrated_mean_work();
  EXPECT_GT(calibrated, 1.0);
  // Cross-check against a fresh sample.
  double total = 0.0;
  for (int i = 0; i < 500; ++i) total += task::total_ex(*src.draw_tree());
  EXPECT_NEAR(calibrated, total / 500.0, calibrated * 0.25);
}

TEST_F(RandomGraphTest, EndToEndRunCompletes) {
  std::uint64_t done = 0;
  pm->set_global_handler([&](const core::GlobalTaskRecord& r) {
    ++done;
    EXPECT_GT(r.subtask_count, 1);
  });
  workload::RandomGraphSource::Config gc;
  gc.lambda = 0.02;
  workload::RandomGraphSource src(engine, *pm, util::Rng(5), gc);
  src.start();
  engine.run_until(5000.0);
  EXPECT_GT(done, 50u);
  EXPECT_NEAR(static_cast<double>(src.generated()), 100.0, 30.0);
  EXPECT_LE(pm->live_runs(), src.generated() - done);
}

TEST_F(RandomGraphTest, Validation) {
  workload::RandomGraphSource::Config gc;
  gc.k = 1;
  EXPECT_THROW(workload::RandomGraphSource(engine, *pm, util::Rng(1), gc),
               std::invalid_argument);
  gc = {};
  gc.max_depth = 0;
  EXPECT_THROW(workload::RandomGraphSource(engine, *pm, util::Rng(1), gc),
               std::invalid_argument);
  gc = {};
  gc.min_children = 5;
  gc.max_children = 3;
  EXPECT_THROW(workload::RandomGraphSource(engine, *pm, util::Rng(1), gc),
               std::invalid_argument);
  gc = {};
  gc.leaf_probability = 1.0;
  EXPECT_THROW(workload::RandomGraphSource(engine, *pm, util::Rng(1), gc),
               std::invalid_argument);
}

TEST_F(RandomGraphTest, DeterministicForSameSeed) {
  workload::RandomGraphSource::Config gc;
  gc.lambda = 0.01;
  workload::RandomGraphSource a(engine, *pm, util::Rng(9), gc);
  workload::RandomGraphSource b(engine, *pm, util::Rng(9), gc);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(task::to_notation(*a.draw_tree(), true),
              task::to_notation(*b.draw_tree(), true));
  }
}

}  // namespace
