// The sda_run --serve stream loop: protocol handling, one decision per
// submission, deterministic bytes, and plan-cache transparency.
#include "src/exp/serve.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace {

using namespace sda;

exp::ServeOptions options() {
  exp::ServeOptions o;
  o.admission.node_count = 2;
  o.admission.queue_capacity = 1;
  return o;
}

std::pair<exp::ServeResult, std::string> run(const std::string& input,
                                             const exp::ServeOptions& opts) {
  std::istringstream in(input);
  std::ostringstream out;
  const exp::ServeResult r = exp::serve_stream(in, out, opts);
  return {r, out.str()};
}

std::vector<std::string> lines(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

/// Drops the "cache_hit" member — the one field of a decision record
/// that is *supposed* to differ between cache-on and cache-off runs.
std::string strip_cache_hit(std::string line) {
  for (const char* token :
       {",\"cache_hit\":true", ",\"cache_hit\":false"}) {
    const std::size_t pos = line.find(token);
    if (pos != std::string::npos) {
      line.erase(pos, std::string(token).size());
    }
  }
  return line;
}

std::size_t count_substr(const std::string& text, const std::string& what) {
  std::size_t n = 0;
  for (std::size_t pos = text.find(what); pos != std::string::npos;
       pos = text.find(what, pos + what.size())) {
    ++n;
  }
  return n;
}

TEST(Serve, OneDecisionPerSubmissionPlusSummary) {
  const std::string input =
      "# comment and blank lines are ignored\n"
      "\n"
      "sub id=1 at=0 deadline=5 tree=a@0:2/2\n"
      "sub id=2 at=1 deadline=5 tree=b@1:2/2\n"
      "done id=1 at=3\n"
      "sub id=3 at=4 deadline=5 tree=a@0:2/2\n";
  const auto [r, out] = run(input, options());
  EXPECT_EQ(r.submissions, 3u);
  EXPECT_EQ(r.decisions, 3u);
  EXPECT_EQ(r.errors, 0u);
  EXPECT_EQ(count_substr(out, "\"schema\":\"sda.admit.v1\""), 3u);
  EXPECT_EQ(count_substr(out, "\"schema\":\"sda.serve.summary.v1\""), 1u);
  EXPECT_EQ(count_substr(out, "\"decision\":\"admit\""), 3u);
  // Decisions carry the per-leaf plan.
  EXPECT_EQ(count_substr(out, "\"leaves\":["), 3u);
}

TEST(Serve, RerunsAreByteIdentical) {
  const std::string input =
      "sub id=1 at=0 deadline=4 tree=[a@0:1/1 || b@1:2/2]\n"
      "sub id=2 at=0.5 deadline=4 tree=a@0:3/3\n"
      "done id=1 at=2\n"
      "sub id=3 at=2.5 deadline=4 tree=a@0:3/3\n";
  const auto [r1, out1] = run(input, options());
  const auto [r2, out2] = run(input, options());
  EXPECT_EQ(out1, out2);
  EXPECT_EQ(r1.decisions, r2.decisions);
}

TEST(Serve, PlanCacheDoesNotChangeDecisionBytes) {
  // Repeated tree shapes so the cache actually hits, then compare every
  // decision line (the summary line differs only in its hit counters).
  std::string input;
  for (int i = 1; i <= 8; ++i) {
    input += "sub id=" + std::to_string(i) + " at=" + std::to_string(i) +
             " deadline=3 tree=[a@0:0.5/0.5 || b@1:0.75/0.75]\n";
  }
  exp::ServeOptions cached = options();
  exp::ServeOptions fresh = options();
  fresh.admission.plan_cache = false;
  const auto [r1, out1] = run(input, cached);
  const auto [r2, out2] = run(input, fresh);

  std::vector<std::string> l1 = lines(out1);
  std::vector<std::string> l2 = lines(out2);
  ASSERT_EQ(l1.size(), l2.size());
  ASSERT_GE(l1.size(), 2u);
  for (std::size_t i = 0; i + 1 < l1.size(); ++i) {
    EXPECT_EQ(strip_cache_hit(l1[i]), strip_cache_hit(l2[i]))
        << "decision line " << i;
  }
  EXPECT_GT(r1.cache.hits, 0u);
  EXPECT_EQ(r2.cache.hits + r2.cache.misses, 0u);
  // The cached run's decisions do advertise their hits.
  EXPECT_GT(count_substr(out1, "\"cache_hit\":true"), 0u);
  EXPECT_EQ(count_substr(out2, "\"cache_hit\":true"), 0u);
}

TEST(Serve, DoneRetiresAndPumpsTheQueue) {
  // id=2 cannot fit next to id=1; it parks until done id=1 frees the
  // node, then resolves with an admit carrying id=2.
  const std::string input =
      "sub id=1 at=0 deadline=5 tree=a@0:4/4\n"
      "sub id=2 at=1 deadline=9 tree=a@0:4/4\n"
      "done id=1 at=2\n";
  const auto [r, out] = run(input, options());
  EXPECT_EQ(r.submissions, 2u);
  EXPECT_EQ(r.decisions, 2u);
  EXPECT_EQ(r.stats.queued, 1u);
  EXPECT_EQ(r.stats.admitted, 2u);
  const std::vector<std::string> l = lines(out);
  ASSERT_EQ(l.size(), 3u);  // two decisions + summary
  EXPECT_NE(l[0].find("\"id\":1"), std::string::npos);
  EXPECT_NE(l[1].find("\"id\":2"), std::string::npos);
  EXPECT_NE(l[1].find("\"decision\":\"admit\""), std::string::npos);
}

TEST(Serve, QueueOverflowYieldsBackpressureAndEofFlushes) {
  // Queue capacity 1: the third infeasible sub gets an immediate
  // backpressure decision; the parked one is resolved (shed) at EOF.
  const std::string input =
      "sub id=1 at=0 deadline=5 tree=a@0:4/4\n"
      "sub id=2 at=0 deadline=5 tree=a@0:4/4\n"
      "sub id=3 at=0 deadline=5 tree=a@0:4/4\n";
  const auto [r, out] = run(input, options());
  EXPECT_EQ(r.submissions, 3u);
  EXPECT_EQ(r.decisions, 3u);
  EXPECT_EQ(r.stats.backpressure, 1u);
  EXPECT_EQ(count_substr(out, "\"decision\":\"backpressure\""), 1u);
  EXPECT_EQ(count_substr(out, "\"reason\":\"flushed\""), 1u);
}

TEST(Serve, ProtocolErrorsGetErrorRecordsAndKeepTheStreamAlive) {
  const std::string input =
      "frobnicate id=1\n"
      "sub id=2 at=0\n"
      "sub id=3 at=0 deadline=-1 tree=a@0:1/1\n"
      "sub id=4 at=0 deadline=5 tree=((((\n"
      "sub id=5 at=0 deadline=5 tree=a@0:1/1\n"
      "sub id=6 at=-1 deadline=5 tree=a@0:1/1\n";
  const auto [r, out] = run(input, options());
  EXPECT_EQ(r.errors, 5u);
  EXPECT_EQ(count_substr(out, "\"decision\":\"error\""), 5u);
  // The one well-formed submission still got a real decision.
  EXPECT_EQ(count_substr(out, "\"decision\":\"admit\""), 1u);
  EXPECT_NE(out.find("\"id\":5"), std::string::npos);
}

TEST(Serve, MonotonicStreamClockIsEnforced) {
  const std::string input =
      "sub id=1 at=5 deadline=5 tree=a@0:1/1\n"
      "sub id=2 at=3 deadline=5 tree=a@0:1/1\n";
  const auto [r, out] = run(input, options());
  EXPECT_EQ(r.errors, 1u);
  EXPECT_NE(out.find("time went backwards"), std::string::npos);
}

TEST(Serve, TimingSummaryReportsLatencyQuantiles) {
  exp::ServeOptions o = options();
  o.measure_latency = true;
  const auto [r, out] = run("sub id=1 at=0 deadline=5 tree=a@0:1/1\n", o);
  EXPECT_EQ(r.decisions, 1u);
  EXPECT_NE(out.find("\"assign_latency_ns\""), std::string::npos);
  EXPECT_NE(out.find("\"admissions_per_sec\""), std::string::npos);
}

}  // namespace
