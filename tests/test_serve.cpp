// The sda_run --serve stream loop: protocol handling, one decision per
// submission, deterministic bytes, and plan-cache transparency.
#include "src/exp/serve.hpp"

#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace {

using namespace sda;

exp::ServeOptions options() {
  exp::ServeOptions o;
  o.admission.node_count = 2;
  o.admission.queue_capacity = 1;
  return o;
}

std::pair<exp::ServeResult, std::string> run(const std::string& input,
                                             const exp::ServeOptions& opts) {
  std::istringstream in(input);
  std::ostringstream out;
  const exp::ServeResult r = exp::serve_stream(in, out, opts);
  return {r, out.str()};
}

std::vector<std::string> lines(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

/// Drops the "cache_hit" member — the one field of a decision record
/// that is *supposed* to differ between cache-on and cache-off runs.
std::string strip_cache_hit(std::string line) {
  for (const char* token :
       {",\"cache_hit\":true", ",\"cache_hit\":false"}) {
    const std::size_t pos = line.find(token);
    if (pos != std::string::npos) {
      line.erase(pos, std::string(token).size());
    }
  }
  return line;
}

std::size_t count_substr(const std::string& text, const std::string& what) {
  std::size_t n = 0;
  for (std::size_t pos = text.find(what); pos != std::string::npos;
       pos = text.find(what, pos + what.size())) {
    ++n;
  }
  return n;
}

TEST(Serve, OneDecisionPerSubmissionPlusSummary) {
  const std::string input =
      "# comment and blank lines are ignored\n"
      "\n"
      "sub id=1 at=0 deadline=5 tree=a@0:2/2\n"
      "sub id=2 at=1 deadline=5 tree=b@1:2/2\n"
      "done id=1 at=3\n"
      "sub id=3 at=4 deadline=5 tree=a@0:2/2\n";
  const auto [r, out] = run(input, options());
  EXPECT_EQ(r.submissions, 3u);
  EXPECT_EQ(r.decisions, 3u);
  EXPECT_EQ(r.errors, 0u);
  EXPECT_EQ(count_substr(out, "\"schema\":\"sda.admit.v1\""), 3u);
  EXPECT_EQ(count_substr(out, "\"schema\":\"sda.serve.summary.v1\""), 1u);
  EXPECT_EQ(count_substr(out, "\"decision\":\"admit\""), 3u);
  // Decisions carry the per-leaf plan.
  EXPECT_EQ(count_substr(out, "\"leaves\":["), 3u);
}

TEST(Serve, RerunsAreByteIdentical) {
  const std::string input =
      "sub id=1 at=0 deadline=4 tree=[a@0:1/1 || b@1:2/2]\n"
      "sub id=2 at=0.5 deadline=4 tree=a@0:3/3\n"
      "done id=1 at=2\n"
      "sub id=3 at=2.5 deadline=4 tree=a@0:3/3\n";
  const auto [r1, out1] = run(input, options());
  const auto [r2, out2] = run(input, options());
  EXPECT_EQ(out1, out2);
  EXPECT_EQ(r1.decisions, r2.decisions);
}

TEST(Serve, PlanCacheDoesNotChangeDecisionBytes) {
  // Repeated tree shapes so the cache actually hits, then compare every
  // decision line (the summary line differs only in its hit counters).
  std::string input;
  for (int i = 1; i <= 8; ++i) {
    input += "sub id=" + std::to_string(i) + " at=" + std::to_string(i) +
             " deadline=3 tree=[a@0:0.5/0.5 || b@1:0.75/0.75]\n";
  }
  exp::ServeOptions cached = options();
  exp::ServeOptions fresh = options();
  fresh.admission.plan_cache = false;
  const auto [r1, out1] = run(input, cached);
  const auto [r2, out2] = run(input, fresh);

  std::vector<std::string> l1 = lines(out1);
  std::vector<std::string> l2 = lines(out2);
  ASSERT_EQ(l1.size(), l2.size());
  ASSERT_GE(l1.size(), 2u);
  for (std::size_t i = 0; i + 1 < l1.size(); ++i) {
    EXPECT_EQ(strip_cache_hit(l1[i]), strip_cache_hit(l2[i]))
        << "decision line " << i;
  }
  EXPECT_GT(r1.cache.hits, 0u);
  EXPECT_EQ(r2.cache.hits + r2.cache.misses, 0u);
  // The cached run's decisions do advertise their hits.
  EXPECT_GT(count_substr(out1, "\"cache_hit\":true"), 0u);
  EXPECT_EQ(count_substr(out2, "\"cache_hit\":true"), 0u);
}

TEST(Serve, DoneRetiresAndPumpsTheQueue) {
  // id=2 cannot fit next to id=1; it parks until done id=1 frees the
  // node, then resolves with an admit carrying id=2.
  const std::string input =
      "sub id=1 at=0 deadline=5 tree=a@0:4/4\n"
      "sub id=2 at=1 deadline=9 tree=a@0:4/4\n"
      "done id=1 at=2\n";
  const auto [r, out] = run(input, options());
  EXPECT_EQ(r.submissions, 2u);
  EXPECT_EQ(r.decisions, 2u);
  EXPECT_EQ(r.stats.queued, 1u);
  EXPECT_EQ(r.stats.admitted, 2u);
  const std::vector<std::string> l = lines(out);
  ASSERT_EQ(l.size(), 3u);  // two decisions + summary
  EXPECT_NE(l[0].find("\"id\":1"), std::string::npos);
  EXPECT_NE(l[1].find("\"id\":2"), std::string::npos);
  EXPECT_NE(l[1].find("\"decision\":\"admit\""), std::string::npos);
}

TEST(Serve, QueueOverflowYieldsBackpressureAndEofFlushes) {
  // Queue capacity 1: the third infeasible sub gets an immediate
  // backpressure decision; the parked one is resolved (shed) at EOF.
  const std::string input =
      "sub id=1 at=0 deadline=5 tree=a@0:4/4\n"
      "sub id=2 at=0 deadline=5 tree=a@0:4/4\n"
      "sub id=3 at=0 deadline=5 tree=a@0:4/4\n";
  const auto [r, out] = run(input, options());
  EXPECT_EQ(r.submissions, 3u);
  EXPECT_EQ(r.decisions, 3u);
  EXPECT_EQ(r.stats.backpressure, 1u);
  EXPECT_EQ(count_substr(out, "\"decision\":\"backpressure\""), 1u);
  EXPECT_EQ(count_substr(out, "\"reason\":\"flushed\""), 1u);
}

TEST(Serve, ProtocolErrorsGetErrorRecordsAndKeepTheStreamAlive) {
  const std::string input =
      "frobnicate id=1\n"
      "sub id=2 at=0\n"
      "sub id=3 at=0 deadline=-1 tree=a@0:1/1\n"
      "sub id=4 at=0 deadline=5 tree=((((\n"
      "sub id=5 at=0 deadline=5 tree=a@0:1/1\n"
      "sub id=6 at=-1 deadline=5 tree=a@0:1/1\n";
  const auto [r, out] = run(input, options());
  EXPECT_EQ(r.errors, 5u);
  EXPECT_EQ(count_substr(out, "\"schema\":\"sda.error.v1\""), 5u);
  // Each carries a machine-readable code alongside the reason.
  EXPECT_EQ(count_substr(out, "\"code\":\"verb\""), 1u);
  EXPECT_EQ(count_substr(out, "\"code\":\"field\""), 2u);
  EXPECT_EQ(count_substr(out, "\"code\":\"tree\""), 1u);
  EXPECT_EQ(count_substr(out, "\"code\":\"clock\""), 1u);
  // The one well-formed submission still got a real decision.
  EXPECT_EQ(count_substr(out, "\"decision\":\"admit\""), 1u);
  EXPECT_NE(out.find("\"id\":5"), std::string::npos);
}

TEST(Serve, MonotonicStreamClockIsEnforced) {
  const std::string input =
      "sub id=1 at=5 deadline=5 tree=a@0:1/1\n"
      "sub id=2 at=3 deadline=5 tree=a@0:1/1\n";
  const auto [r, out] = run(input, options());
  EXPECT_EQ(r.errors, 1u);
  EXPECT_NE(out.find("time went backwards"), std::string::npos);
}

TEST(Serve, TimingSummaryReportsLatencyQuantiles) {
  exp::ServeOptions o = options();
  o.measure_latency = true;
  const auto [r, out] = run("sub id=1 at=0 deadline=5 tree=a@0:1/1\n", o);
  EXPECT_EQ(r.decisions, 1u);
  EXPECT_NE(out.find("\"assign_latency_ns\""), std::string::npos);
  EXPECT_NE(out.find("\"admissions_per_sec\""), std::string::npos);
}

TEST(Serve, DoneForUnknownOrRetiredIdIsAnAnsweredError) {
  // Never submitted, and submitted-then-retired: both get a structured
  // unknown-id error instead of a silent no-op, and the summary counts
  // them.
  const std::string input =
      "done id=99 at=0\n"
      "sub id=1 at=1 deadline=5 tree=a@0:1/1\n"
      "done id=1 at=2\n"
      "done id=1 at=3\n";
  const auto [r, out] = run(input, options());
  EXPECT_EQ(r.errors, 2u);
  EXPECT_EQ(count_substr(out, "\"code\":\"unknown-id\""), 2u);
  EXPECT_NE(out.find("\"id\":99"), std::string::npos);
  EXPECT_NE(out.find("already-retired"), std::string::npos);
  EXPECT_NE(out.find("\"errors\":2"), std::string::npos);
}

TEST(Serve, DuplicateInFlightIdIsRejected) {
  const std::string input =
      "sub id=1 at=0 deadline=5 tree=a@0:1/1\n"
      "sub id=1 at=1 deadline=5 tree=a@0:1/1\n"
      "done id=1 at=2\n"
      "sub id=1 at=3 deadline=5 tree=a@0:1/1\n";  // retired: reusable
  const auto [r, out] = run(input, options());
  EXPECT_EQ(r.errors, 1u);
  EXPECT_EQ(count_substr(out, "\"code\":\"duplicate-id\""), 1u);
  EXPECT_EQ(r.submissions, 2u);
  EXPECT_EQ(r.decisions, 2u);
}

TEST(Serve, ErroneousLinesDoNotAdvanceTheClock) {
  // A malformed line carrying a huge at= must leave the stream clock
  // alone — otherwise garbage could wedge every later submission behind
  // a clock it never legitimately reached (and the journal, which skips
  // error lines, could not reproduce the state).
  const std::string input =
      "sub id=1 at=1000000 deadline=bogus tree=a@0:1/1\n"
      "sub id=2 at=1 deadline=5 tree=a@0:1/1\n";
  const auto [r, out] = run(input, options());
  EXPECT_EQ(r.errors, 1u);
  EXPECT_EQ(r.decisions, 1u);
  EXPECT_EQ(count_substr(out, "\"code\":\"clock\""), 0u);
  EXPECT_NE(out.find("\"id\":2"), std::string::npos);
}

TEST(Serve, OversizedAndNulLinesAreAnsweredNotFatal) {
  exp::ServeOptions o = options();
  o.limits.max_line_bytes = 128;
  std::string input = "sub id=1 at=0 deadline=5 tree=";
  input.append(256, 'a');
  input += "\n";
  input += std::string("sub id=2\0at=0\n", 14);
  input += "sub id=3 at=0 deadline=5 tree=a@0:1/1\n";
  const auto [r, out] = run(input, o);
  EXPECT_EQ(r.errors, 2u);
  EXPECT_EQ(count_substr(out, "\"code\":\"limit\""), 1u);
  EXPECT_EQ(count_substr(out, "\"reason\":\"embedded NUL byte\""), 1u);
  // The stream survives and the clean submission decides.
  EXPECT_EQ(r.decisions, 1u);
  EXPECT_NE(out.find("\"id\":3"), std::string::npos);
}

TEST(Serve, PartialDoneRetiresOneLeafReservation) {
  // Two-leaf run; retiring one leaf must free enough ledger room for a
  // same-node submission that a whole-run reservation would block.
  exp::ServeOptions o = options();
  o.admission.node_count = 2;
  const std::string input =
      "sub id=1 at=0 deadline=8 tree=[a@0:4/4 || b@1:4/4]\n"
      "done id=1 at=1 leaf=0\n"
      "sub id=2 at=2 deadline=8 tree=a@0:4/4\n";
  const auto [r, out] = run(input, o);
  EXPECT_EQ(r.errors, 0u);
  EXPECT_EQ(r.decisions, 2u);
  // The run stays live after the partial done: a whole-run done works.
  const auto [r2, out2] = run(input + "done id=1 at=3\n", o);
  EXPECT_EQ(r2.errors, 0u);
}

TEST(Serve, RetryHintsAnnotateShedAndBackpressure) {
  exp::ServeOptions o = options();
  o.retry_hints = true;
  // Queue capacity 1 and an overloaded node: the third submission gets
  // backpressure, which must now carry a retry_after hint.
  const std::string input =
      "sub id=1 at=0 deadline=5 tree=a@0:4/4\n"
      "sub id=2 at=0 deadline=5 tree=a@0:4/4\n"
      "sub id=3 at=0 deadline=5 tree=a@0:4/4\n";
  const auto [r, out] = run(input, o);
  EXPECT_EQ(count_substr(out, "\"decision\":\"backpressure\""), 1u);
  EXPECT_GE(count_substr(out, "\"retry_after\":"), 1u);
  // Admits never carry the hint.
  for (const std::string& line : lines(out)) {
    if (line.find("\"decision\":\"admit\"") != std::string::npos) {
      EXPECT_EQ(line.find("retry_after"), std::string::npos);
    }
  }
  // Hints are deterministic: same stream, same bytes.
  const auto [r2, out2] = run(input, o);
  EXPECT_EQ(out, out2);
}

TEST(Serve, JournalReplayReproducesTheFingerprint) {
  const std::string path =
      "sda_test_serve_journal_" + std::to_string(::getpid()) + ".wal";
  std::remove(path.c_str());
  const std::string input =
      "sub id=1 at=0 deadline=5 tree=a@0:2/2\n"
      "sub id=2 at=1 deadline=5 tree=b@1:2/2\n"
      "bogus line\n"
      "done id=1 at=2\n"
      "sub id=3 at=3 deadline=5 tree=a@0:2/2\n";
  exp::ServeOptions o = options();
  o.journal_path = path;

  // First process: run the stream, snapshot the fingerprint pre-drain.
  exp::ServeSession first(o);
  std::string diag;
  ASSERT_TRUE(first.open_journal(&diag)) << diag;
  std::vector<exp::ServeSession::Reply> replies;
  std::istringstream in(input);
  std::string text;
  while (std::getline(in, text)) first.handle_line(text, replies);
  const std::uint64_t fp = first.state_fingerprint();
  first.finish(replies);

  // Second process: replay-only recovery must land on the same
  // fingerprint without seeing the original stream.
  exp::ServeOptions replay = o;
  replay.journal_replay_only = true;
  exp::ServeSession second(replay);
  ASSERT_TRUE(second.open_journal(&diag)) << diag;
  EXPECT_EQ(second.state_fingerprint(), fp);
  EXPECT_FALSE(second.replay_truncated());
  // Only state-changing lines were journaled: 3 subs + 1 done, not the
  // bogus line (and the checkpoint is skipped on replay).
  EXPECT_EQ(second.result().replayed, 4u);
  EXPECT_EQ(second.result().errors, 0u);
  std::remove(path.c_str());
}

TEST(Serve, JournalSummaryBlockReportsRecordsAndFingerprint) {
  const std::string path =
      "sda_test_serve_journal2_" + std::to_string(::getpid()) + ".wal";
  std::remove(path.c_str());
  exp::ServeOptions o = options();
  o.journal_path = path;
  std::istringstream in("sub id=1 at=0 deadline=5 tree=a@0:1/1\n");
  std::ostringstream out;
  exp::serve_stream(in, out, o);
  EXPECT_NE(out.str().find("\"journal\":{\"records\":"), std::string::npos);
  EXPECT_NE(out.str().find("\"fingerprint\":\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
