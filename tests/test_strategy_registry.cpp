// The self-registering strategy registry: built-ins, prefix families,
// duplicate rejection, error reporting, and end-to-end reachability of a
// user-registered strategy through the config layer.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>

#include "src/core/strategy.hpp"
#include "src/exp/config.hpp"
#include "src/exp/runner.hpp"

namespace {

using namespace sda;

TEST(StrategyRegistry, BuiltInsListedInRegistrationOrder) {
  const auto psp = core::list_psp_strategies();
  ASSERT_GE(psp.size(), 4u);
  EXPECT_EQ(psp[0], "ud");
  EXPECT_EQ(psp[1], "div-<x>");
  EXPECT_EQ(psp[2], "gf");
  EXPECT_EQ(psp[3], "gf-<delta>");

  const auto ssp = core::list_ssp_strategies();
  ASSERT_GE(ssp.size(), 4u);
  EXPECT_EQ(ssp[0], "ud");
  EXPECT_EQ(ssp[1], "ed");
  EXPECT_EQ(ssp[2], "eqs");
  EXPECT_EQ(ssp[3], "eqf");
}

TEST(StrategyRegistry, BuiltInLookupsStillWork) {
  EXPECT_EQ(core::make_psp_strategy("ud")->name(), "UD");
  EXPECT_EQ(core::make_psp_strategy("DIV-1.5")->name(), "DIV-1.5");
  EXPECT_NE(core::make_psp_strategy("gf"), nullptr);
  EXPECT_NE(core::make_psp_strategy("gf-0.125"), nullptr);
  EXPECT_EQ(core::make_ssp_strategy("EQF")->name(), "EQF");
}

TEST(StrategyRegistry, UnknownAndMalformedNamesThrow) {
  EXPECT_THROW(core::make_psp_strategy(""), std::invalid_argument);
  EXPECT_THROW(core::make_psp_strategy("first"), std::invalid_argument);
  EXPECT_THROW(core::make_psp_strategy("div"), std::invalid_argument);
  EXPECT_THROW(core::make_psp_strategy("div-"), std::invalid_argument);
  EXPECT_THROW(core::make_psp_strategy("div-x"), std::invalid_argument);
  EXPECT_THROW(core::make_ssp_strategy("edd"), std::invalid_argument);
}

TEST(StrategyRegistry, UnknownNameErrorListsAndSuggests) {
  try {
    core::make_ssp_strategy("eqff");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown SSP strategy"), std::string::npos) << msg;
    EXPECT_NE(msg.find("eqs"), std::string::npos) << msg;  // the listing
    EXPECT_NE(msg.find("did you mean 'eqf'"), std::string::npos) << msg;
  }
}

TEST(StrategyRegistry, DuplicateRegistrationRejected) {
  EXPECT_THROW(
      core::register_psp("ud",
                         [](const std::string&) -> std::unique_ptr<core::PspStrategy> {
                           return nullptr;
                         }),
      std::invalid_argument);
  EXPECT_THROW(
      core::register_ssp("EQF",  // duplicate detection is case-insensitive
                         [](const std::string&) -> std::unique_ptr<core::SspStrategy> {
                           return nullptr;
                         }),
      std::invalid_argument);
  EXPECT_THROW(
      core::register_psp("",
                         [](const std::string&) -> std::unique_ptr<core::PspStrategy> {
                           return nullptr;
                         }),
      std::invalid_argument);
}

/// A trivial custom strategy used for the registration tests below.
class HalfAllowance final : public core::PspStrategy {
 public:
  core::Time assign(const core::PspContext& ctx, int, core::Time) const override {
    return ctx.now + (ctx.deadline - ctx.now) / 2.0;
  }
  std::string name() const override { return "HalfAllowance"; }
};

TEST(StrategyRegistry, CustomStrategyReachableEverywhere) {
  core::register_psp("half",
                     [](const std::string&) -> std::unique_ptr<core::PspStrategy> {
                       return std::make_unique<HalfAllowance>();
                     });

  // Factory lookup, case-insensitive.
  EXPECT_EQ(core::make_psp_strategy("half")->name(), "HalfAllowance");
  EXPECT_EQ(core::make_psp_strategy("HALF")->name(), "HalfAllowance");

  // Listed after the built-ins.
  const auto names = core::list_psp_strategies();
  EXPECT_NE(std::find(names.begin(), names.end(), "half"), names.end());

  // And a config using it passes validation and runs — the registry is the
  // single name-resolution point for the whole experiment layer.
  exp::ExperimentConfig c = exp::baseline_config();
  c.set("psp", "half");
  c.sim_time = 500.0;
  c.replications = 1;
  EXPECT_TRUE(c.validate().empty());
  const exp::RunResult r = exp::run_once(c, 3);
  EXPECT_GT(r.globals_generated, 0u);
}

TEST(StrategyRegistry, CustomPrefixFamilyParsesParameter) {
  core::register_psp(
      "half-",
      [](const std::string& full) -> std::unique_ptr<core::PspStrategy> {
        // Reject non-numeric parameters by returning nullptr: the registry
        // reports the name as unknown.
        for (const char ch : full.substr(5)) {
          if ((ch < '0' || ch > '9') && ch != '.') return nullptr;
        }
        return std::make_unique<HalfAllowance>();
      },
      core::NameMatch::kPrefix, "half-<x>");
  EXPECT_NE(core::make_psp_strategy("half-2"), nullptr);
  EXPECT_THROW(core::make_psp_strategy("half-oops"), std::invalid_argument);
}

}  // namespace
