// Unit tests for environment-variable configuration.
#include "src/util/env.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

namespace {

using sda::util::bench_env;
using sda::util::env_double;
using sda::util::env_flag;
using sda::util::env_int;
using sda::util::unknown_sda_env;

class EnvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const char* name : {"SDA_TEST_X", "SDA_SIM_TIME", "SDA_REPS",
                             "SDA_WARMUP", "SDA_SEED", "SDA_FULL",
                             "SDA_SIMTIME", "SDA_BOGUS_KNOB"}) {
      unsetenv(name);
    }
  }
};

bool contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

TEST_F(EnvTest, DoubleFallback) {
  EXPECT_DOUBLE_EQ(env_double("SDA_TEST_X", 1.5), 1.5);
  setenv("SDA_TEST_X", "2.25", 1);
  EXPECT_DOUBLE_EQ(env_double("SDA_TEST_X", 1.5), 2.25);
  setenv("SDA_TEST_X", "not-a-number", 1);
  EXPECT_DOUBLE_EQ(env_double("SDA_TEST_X", 1.5), 1.5);
  setenv("SDA_TEST_X", "", 1);
  EXPECT_DOUBLE_EQ(env_double("SDA_TEST_X", 1.5), 1.5);
}

TEST_F(EnvTest, IntFallback) {
  EXPECT_EQ(env_int("SDA_TEST_X", 7), 7);
  setenv("SDA_TEST_X", "42", 1);
  EXPECT_EQ(env_int("SDA_TEST_X", 7), 42);
  setenv("SDA_TEST_X", "-3", 1);
  EXPECT_EQ(env_int("SDA_TEST_X", 7), -3);
}

TEST_F(EnvTest, Flags) {
  EXPECT_FALSE(env_flag("SDA_TEST_X"));
  for (const char* truthy : {"1", "true", "yes", "on"}) {
    setenv("SDA_TEST_X", truthy, 1);
    EXPECT_TRUE(env_flag("SDA_TEST_X")) << truthy;
  }
  setenv("SDA_TEST_X", "0", 1);
  EXPECT_FALSE(env_flag("SDA_TEST_X"));
}

TEST_F(EnvTest, BenchEnvDefaults) {
  const auto e = bench_env();
  EXPECT_DOUBLE_EQ(e.sim_time, 200000.0);
  EXPECT_EQ(e.replications, 2);
  EXPECT_DOUBLE_EQ(e.warmup_fraction, 0.05);
}

TEST_F(EnvTest, BenchEnvOverrides) {
  setenv("SDA_SIM_TIME", "5000", 1);
  setenv("SDA_REPS", "3", 1);
  setenv("SDA_SEED", "99", 1);
  const auto e = bench_env();
  EXPECT_DOUBLE_EQ(e.sim_time, 5000.0);
  EXPECT_EQ(e.replications, 3);
  EXPECT_EQ(e.seed, 99u);
}

TEST_F(EnvTest, FullFlagSetsPaperRunLength) {
  setenv("SDA_FULL", "1", 1);
  const auto e = bench_env();
  EXPECT_DOUBLE_EQ(e.sim_time, 1e6);
  EXPECT_EQ(e.replications, 2);
}

TEST_F(EnvTest, ExplicitSimTimeBeatsFull) {
  setenv("SDA_FULL", "1", 1);
  setenv("SDA_SIM_TIME", "123", 1);
  EXPECT_DOUBLE_EQ(bench_env().sim_time, 123.0);
}

TEST_F(EnvTest, DescribeMentionsSettings) {
  const auto e = bench_env();
  const std::string d = e.describe();
  EXPECT_NE(d.find("sim_time"), std::string::npos);
  EXPECT_NE(d.find("seed"), std::string::npos);
}

// A likely typo (SDA_SIMTIME for SDA_SIM_TIME) must be flagged, while every
// recognized knob and the SDA_TEST_ scratch prefix must not be.  Other tests
// or the surrounding shell may have their own SDA_* variables set, so the
// assertions are containment checks, not exact-set checks.
TEST_F(EnvTest, UnknownSdaEnvFlagsTyposOnly) {
  setenv("SDA_SIMTIME", "5000", 1);
  setenv("SDA_BOGUS_KNOB", "x", 1);
  setenv("SDA_SIM_TIME", "5000", 1);
  setenv("SDA_TEST_X", "scratch", 1);
  const auto unknown = unknown_sda_env();
  EXPECT_TRUE(contains(unknown, "SDA_SIMTIME"));
  EXPECT_TRUE(contains(unknown, "SDA_BOGUS_KNOB"));
  EXPECT_FALSE(contains(unknown, "SDA_SIM_TIME"));
  EXPECT_FALSE(contains(unknown, "SDA_TEST_X"));
}

TEST_F(EnvTest, UnknownSdaEnvIgnoresRecognizedKnobs) {
  for (const char* name : {"SDA_SIM_TIME", "SDA_REPS", "SDA_WARMUP",
                           "SDA_SEED", "SDA_FULL"}) {
    setenv(name, "1", 1);
  }
  for (const std::string& name : unknown_sda_env()) {
    EXPECT_NE(name.rfind("SDA_", 0), std::string::npos);
    EXPECT_NE(name, "SDA_SIM_TIME");
    EXPECT_NE(name, "SDA_REPS");
    EXPECT_NE(name, "SDA_WARMUP");
    EXPECT_NE(name, "SDA_SEED");
    EXPECT_NE(name, "SDA_FULL");
  }
}

}  // namespace
