// Unit tests for the xoshiro256++ generator and its distributions.
#include "src/util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace {

using sda::util::Rng;

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(7), b(7);
  Rng sa = a.split(), sb = b.split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sa(), sb());
}

TEST(Rng, SuccessiveSplitsAreIndependentStreams) {
  Rng a(7);
  Rng s1 = a.split(), s2 = a.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (s1() == s2());
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitDoesNotPerturbDownstreamDraws) {
  Rng a(9), b(9);
  (void)a.split();
  // The parent's own raw output sequence continues unchanged after split().
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, Uniform01InRange) {
  Rng r(3);
  for (int i = 0; i < 100000; ++i) {
    const double u = r.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng r(4);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Rng, UniformRange) {
  Rng r(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform(2.5, 7.5);
    ASSERT_GE(u, 2.5);
    ASSERT_LT(u, 7.5);
  }
}

TEST(Rng, UniformDegenerateRange) {
  Rng r(5);
  EXPECT_DOUBLE_EQ(r.uniform(3.0, 3.0), 3.0);
}

TEST(Rng, UniformIntBounds) {
  Rng r(6);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit in 10k draws
}

TEST(Rng, UniformIntSingleton) {
  Rng r(6);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntApproximatelyUniform) {
  Rng r(8);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<std::size_t>(r.uniform_int(0, 9))];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 10 * 0.1);
}

TEST(Rng, ExponentialMeanAndPositivity) {
  Rng r(9);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.exponential(2.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 2.0, 0.03);
}

TEST(Rng, ExponentialMemorylessQuantiles) {
  // P[X > t] = exp(-t/mean): check the median ~ mean*ln 2.
  Rng r(10);
  std::vector<double> xs;
  const int n = 100001;
  xs.reserve(n);
  for (int i = 0; i < n; ++i) xs.push_back(r.exponential(1.0));
  std::nth_element(xs.begin(), xs.begin() + n / 2, xs.end());
  EXPECT_NEAR(xs[n / 2], std::log(2.0), 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng r(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, SampleDistinctProducesDistinctInRange) {
  Rng r(12);
  int out[4];
  for (int trial = 0; trial < 1000; ++trial) {
    r.sample_distinct(6, 4, out);
    std::set<int> s(out, out + 4);
    EXPECT_EQ(s.size(), 4u);
    for (int v : out) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 6);
    }
  }
}

TEST(Rng, SampleDistinctFullPopulation) {
  Rng r(13);
  int out[6];
  r.sample_distinct(6, 6, out);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(out[i], i);  // selection keeps order
}

TEST(Rng, SampleDistinctUniformCoverage) {
  // Every element of [0, 6) should be selected ~ count/n of the time.
  Rng r(14);
  std::vector<int> hits(6, 0);
  int out[2];
  const int trials = 60000;
  for (int t = 0; t < trials; ++t) {
    r.sample_distinct(6, 2, out);
    ++hits[static_cast<std::size_t>(out[0])];
    ++hits[static_cast<std::size_t>(out[1])];
  }
  for (int h : hits) EXPECT_NEAR(h, trials / 3, trials / 3 * 0.05);
}

TEST(SplitMix, KnownGoldenValues) {
  // Reference values from the SplitMix64 reference implementation with
  // seed state 0 (first outputs after increment).
  std::uint64_t s = 0;
  const std::uint64_t v1 = sda::util::splitmix64_next(s);
  const std::uint64_t v2 = sda::util::splitmix64_next(s);
  EXPECT_NE(v1, v2);
  EXPECT_EQ(s, 2 * 0x9e3779b97f4a7c15ULL);
}

}  // namespace
