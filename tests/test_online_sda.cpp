// Tests of the *on-line* SDA behaviour: how the process manager's stage
// dispatch interacts with actual (not planned) completion times, and how it
// differs from the offline plan — the defining feature of the paper's
// on-line premise.
#include <gtest/gtest.h>

#include <memory>

#include "src/core/process_manager.hpp"
#include "src/core/sda.hpp"
#include "src/exp/runner.hpp"
#include "src/metrics/task_class.hpp"
#include "src/sched/edf.hpp"
#include "src/task/notation.hpp"

namespace {

using namespace sda;
using core::GlobalTaskRecord;
using core::ProcessManager;
using task::TaskPtr;

class OnlineSda : public ::testing::Test {
 protected:
  void build(const std::string& psp, const std::string& ssp, int k = 6) {
    engine = std::make_unique<sim::Engine>();
    nodes.clear();
    node_ptrs.clear();
    for (int i = 0; i < k; ++i) {
      sched::Node::Config nc;
      nc.index = i;
      nodes.push_back(std::make_unique<sched::Node>(
          *engine, std::make_unique<sched::EdfScheduler>(), nc));
      node_ptrs.push_back(nodes.back().get());
    }
    ProcessManager::Config pc;
    pc.psp = core::make_psp_strategy(psp);
    pc.ssp = core::make_ssp_strategy(ssp);
    pm = std::make_unique<ProcessManager>(*engine, node_ptrs, std::move(pc));
    for (auto& n : nodes) {
      n->set_completion_handler(
          [this](const TaskPtr& t) { pm->handle_completion(t); });
    }
    pm->set_subtask_handler([this](const task::SimpleTask& t) {
      dispatched.push_back(t);
    });
  }

  std::unique_ptr<sim::Engine> engine;
  std::vector<std::unique_ptr<sched::Node>> nodes;
  std::vector<sched::Node*> node_ptrs;
  std::unique_ptr<ProcessManager> pm;
  std::vector<task::SimpleTask> dispatched;  // terminal order
};

TEST_F(OnlineSda, EqfRedistributesSlackWhenAStageFinishesEarly) {
  build("ud", "eqf");
  // Stages with pex {4, 2, 2} but stage 1's *actual* ex is only 1 (the
  // pex is a bad estimate).  Offline plan would give stage 2 its deadline
  // assuming stage 1 used its whole budget; on-line EQF re-measures.
  pm->submit(task::parse_notation("[A@0:1/4 B@1:2/2 C@2:2/2]"), 16.0, 100, 1);
  engine->run();
  ASSERT_EQ(dispatched.size(), 3u);
  // Offline: dl(A) = 0 + 4 + 8*(4/8) = 8.  A actually finishes at 1.
  EXPECT_DOUBLE_EQ(dispatched[0].attrs.virtual_deadline, 8.0);
  EXPECT_DOUBLE_EQ(dispatched[0].finished_at, 1.0);
  // On-line stage B: now = 1, slack = 16-1-4 = 11, share 2/4 ->
  // dl(B) = 1 + 2 + 5.5 = 8.5 (the plan would have said 12).
  EXPECT_DOUBLE_EQ(dispatched[1].attrs.arrival, 1.0);
  EXPECT_DOUBLE_EQ(dispatched[1].attrs.virtual_deadline, 8.5);
  // Stage C: dispatched at 3, slack = 16-3-2 = 11 -> dl = 3+2+11 = 16.
  EXPECT_DOUBLE_EQ(dispatched[2].attrs.virtual_deadline, 16.0);
}

TEST_F(OnlineSda, EqfTightensWhenAStageRunsLate) {
  build("ud", "eqf");
  // Stage A's pex is 1 but it actually takes 7 of the 10-unit deadline.
  pm->submit(task::parse_notation("[A@0:7/1 B@1:1/1]"), 10.0, 100, 1);
  engine->run();
  ASSERT_EQ(dispatched.size(), 2u);
  // B dispatched at 7 with slack 10-7-1 = 2: dl(B) = 7 + 1 + 2 = 10; B's
  // virtual deadline collapses to the end-to-end deadline, unlike the
  // optimistic offline plan (which reserved slack it no longer has).
  EXPECT_DOUBLE_EQ(dispatched[1].attrs.virtual_deadline, 10.0);
}

TEST_F(OnlineSda, OnlineMatchesPlanWhenExEqualsPexAndNoQueueing) {
  build("ud", "eqf");
  const char* text = "[A@0:2/2 B@1:3/3 C@2:5/5]";
  pm->submit(task::parse_notation(text), 20.0, 100, 1);
  engine->run();

  // With perfect estimates and idle nodes, a stage finishes exactly when
  // the next is dispatched... not at its *deadline* though: it finishes at
  // cumulative ex.  The online assignment uses actual times, so recompute
  // the expected values directly.
  ASSERT_EQ(dispatched.size(), 3u);
  // Stage A: now 0, slack 10, share 2/10 -> dl 0+2+2 = 4.
  EXPECT_DOUBLE_EQ(dispatched[0].attrs.virtual_deadline, 4.0);
  // Stage B: now 2, slack 20-2-8 = 10, share 3/8 -> dl 2+3+3.75 = 8.75.
  EXPECT_DOUBLE_EQ(dispatched[1].attrs.virtual_deadline, 8.75);
  // Stage C: now 5, slack 20-5-5 = 10 -> dl 5+5+10 = 20.
  EXPECT_DOUBLE_EQ(dispatched[2].attrs.virtual_deadline, 20.0);
}

TEST_F(OnlineSda, ParallelStageInsideSerialUsesStageDeadlineForDiv) {
  build("div-1", "eqf");
  // [A (B||C) D], all pex 1, deadline 12.  Stage deadlines via EQF; the
  // parallel stage's DIV-1 then divides *its* stage window by 2.
  pm->submit(task::parse_notation("[A@0:1 [B@1:1 || C@2:1] D@3:1]"), 12.0,
             100, 1);
  engine->run();
  ASSERT_EQ(dispatched.size(), 4u);
  // Stage A: slack = 12-3 = 9, share 1/3 -> dl = 1+3 = 4.
  EXPECT_DOUBLE_EQ(dispatched[0].attrs.virtual_deadline, 4.0);
  // Parallel stage at now=1: slack = 12-1-2 = 9, share 1/2 -> stage dl =
  // 1+1+4.5 = 6.5; DIV-1 over 2 branches: 1 + (6.5-1)/2 = 3.75.
  EXPECT_DOUBLE_EQ(dispatched[1].attrs.virtual_deadline, 3.75);
  EXPECT_DOUBLE_EQ(dispatched[2].attrs.virtual_deadline, 3.75);
  // B and C run in parallel on idle nodes: both finish at 2, D starts at 2.
  EXPECT_DOUBLE_EQ(dispatched[3].attrs.arrival, 2.0);
  // Stage D: slack = 12-2-1 = 9 -> dl = 2+1+9 = 12.
  EXPECT_DOUBLE_EQ(dispatched[3].attrs.virtual_deadline, 12.0);
}

TEST_F(OnlineSda, QueueingDelaysPropagateIntoLaterStageDeadlines) {
  build("ud", "eqf");
  // Two globals share node 0 for their first stage; the second global's
  // stage A queues behind the first's (EDF, both UD at stage level).
  pm->submit(task::parse_notation("[A@0:3 B@1:1]"), 20.0, 100, 1);
  pm->submit(task::parse_notation("[C@0:3 D@2:1]"), 22.0, 100, 1);
  engine->run();
  ASSERT_EQ(dispatched.size(), 4u);
  // First global: A runs 0..3, B dispatched at 3.
  // Second global: C queues until 3, runs 3..6; D dispatched at 6 with
  // arrival time 6 — the queueing delay is visible to the SSP strategy.
  const auto& d = dispatched;
  EXPECT_DOUBLE_EQ(d[1].attrs.arrival, 3.0);   // B
  EXPECT_DOUBLE_EQ(d[2].finished_at, 6.0);     // C
  EXPECT_DOUBLE_EQ(d[3].attrs.arrival, 6.0);   // D
  // D's EQF deadline: now 6, slack 22-6-1 = 15 -> 6+1+15 = 22.
  EXPECT_DOUBLE_EQ(d[3].attrs.virtual_deadline, 22.0);
}

TEST_F(OnlineSda, GfInsideEqfStageShiftsOnlyParallelBranches) {
  build("gf", "eqf");
  pm->submit(task::parse_notation("[A@0:1 [B@1:1 || C@2:1]]"), 10.0, 100, 1);
  engine->run();
  ASSERT_EQ(dispatched.size(), 3u);
  // Serial stage A keeps its EQF deadline (GF is a PSP-only strategy):
  // slack = 10-2 = 8, share 1/2 -> dl(A) = 1+4 = 5.
  EXPECT_DOUBLE_EQ(dispatched[0].attrs.virtual_deadline, 5.0);
  // Parallel branches get stage_dl - DELTA (hugely negative).
  EXPECT_LT(dispatched[1].attrs.virtual_deadline, -1e8);
  EXPECT_LT(dispatched[2].attrs.virtual_deadline, -1e8);
  // Real deadlines are untouched.
  EXPECT_DOUBLE_EQ(dispatched[1].attrs.real_deadline, 10.0);
}

}  // namespace
