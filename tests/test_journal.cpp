// The write-ahead decision journal: roundtrip fidelity, torn-tail
// recovery (longest valid prefix), header enforcement, and flush
// batching.
#include "src/exp/journal.hpp"

#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

using namespace sda;
using exp::JournalReadResult;
using exp::JournalRecord;
using exp::JournalWriter;
using exp::read_journal;

/// Unique-per-test-per-process journal path under the build tree,
/// cleaned up on destruction.  The pid suffix matters: ctest runs the
/// plain and SDA_VALIDATE twins of each journal test concurrently in
/// the same directory, so a fixed name would let them clobber each
/// other's files mid-test.
class TempJournal {
 public:
  explicit TempJournal(const std::string& tag)
      : path_("sda_test_journal_" + tag + "_" +
               std::to_string(::getpid()) + ".wal") {
    std::remove(path_.c_str());
  }
  ~TempJournal() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void spill(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

TEST(Journal, RoundtripsEventsAndCheckpoints) {
  TempJournal tmp("roundtrip");
  JournalWriter::Config config;
  config.flush_every = 2;
  JournalWriter w;
  std::string error;
  ASSERT_TRUE(w.open(tmp.path(), config, &error)) << error;
  EXPECT_TRUE(w.append_event("sub id=1 at=0 deadline=5 tree=a@0:1/1"));
  EXPECT_TRUE(w.append_event("done id=1 at=2"));
  EXPECT_TRUE(w.append_checkpoint("{\"summary\":true}"));
  w.close();
  EXPECT_EQ(w.records_appended(), 3u);
  EXPECT_EQ(w.io_errors(), 0u);

  const JournalReadResult r = read_journal(tmp.path());
  ASSERT_TRUE(r.ok) << r.diagnostic;
  EXPECT_FALSE(r.truncated);
  ASSERT_EQ(r.records.size(), 3u);
  EXPECT_EQ(r.records[0].type, 'E');
  EXPECT_EQ(r.records[0].payload, "sub id=1 at=0 deadline=5 tree=a@0:1/1");
  EXPECT_EQ(r.records[1].payload, "done id=1 at=2");
  EXPECT_EQ(r.records[2].type, 'C');
  EXPECT_EQ(r.records[2].payload, "{\"summary\":true}");
}

TEST(Journal, MissingFileIsNotOk) {
  const JournalReadResult r = read_journal("sda_test_journal_nonexistent.wal");
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.records.empty());
}

TEST(Journal, ForeignFileIsRejectedByWriterAndReader) {
  TempJournal tmp("foreign");
  spill(tmp.path(), "not a journal\n");
  EXPECT_FALSE(read_journal(tmp.path()).ok);
  JournalWriter w;
  std::string error;
  EXPECT_FALSE(w.open(tmp.path(), JournalWriter::Config{}, &error));
  EXPECT_FALSE(error.empty());
}

TEST(Journal, TornTailReplaysTheLongestValidPrefix) {
  TempJournal tmp("torn");
  {
    JournalWriter w;
    std::string error;
    ASSERT_TRUE(w.open(tmp.path(), JournalWriter::Config{}, &error)) << error;
    ASSERT_TRUE(w.append_event("sub id=1 at=0 deadline=5 tree=a@0:1/1"));
    ASSERT_TRUE(w.append_event("sub id=2 at=1 deadline=5 tree=b@1:1/1"));
    w.close();
  }
  const std::string intact = slurp(tmp.path());
  // Losing only the trailing '\n' leaves the payload intact and the
  // checksum passing: that record IS valid and is recovered.
  spill(tmp.path(), intact.substr(0, intact.size() - 1));
  {
    const JournalReadResult r = read_journal(tmp.path());
    ASSERT_TRUE(r.ok);
    EXPECT_FALSE(r.truncated);
    EXPECT_EQ(r.records.size(), 2u);
  }
  // Chop real bytes off the tail: every prefix must recover cleanly to
  // a record boundary before the cut — never a crash, never a corrupt
  // record surfacing as valid.
  for (std::size_t cut = 2; cut < 24; ++cut) {
    spill(tmp.path(), intact.substr(0, intact.size() - cut));
    const JournalReadResult r = read_journal(tmp.path());
    ASSERT_TRUE(r.ok) << "cut=" << cut;
    EXPECT_TRUE(r.truncated) << "cut=" << cut;
    ASSERT_EQ(r.records.size(), 1u) << "cut=" << cut;
    EXPECT_EQ(r.records[0].payload, "sub id=1 at=0 deadline=5 tree=a@0:1/1");
    EXPECT_FALSE(r.diagnostic.empty());
  }
}

TEST(Journal, CorruptChecksumStopsTheScan) {
  TempJournal tmp("corrupt");
  {
    JournalWriter w;
    std::string error;
    ASSERT_TRUE(w.open(tmp.path(), JournalWriter::Config{}, &error)) << error;
    ASSERT_TRUE(w.append_event("sub id=1 at=0 deadline=5 tree=a@0:1/1"));
    ASSERT_TRUE(w.append_event("done id=1 at=2"));
    w.close();
  }
  std::string bytes = slurp(tmp.path());
  // Flip one payload byte of the *second* record ("done id=1" -> "dona").
  const std::size_t pos = bytes.rfind("done id=1");
  ASSERT_NE(pos, std::string::npos);
  bytes[pos + 3] = 'a';
  spill(tmp.path(), bytes);
  const JournalReadResult r = read_journal(tmp.path());
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.truncated);
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_NE(r.diagnostic.find("checksum"), std::string::npos)
      << r.diagnostic;
}

TEST(Journal, FlushBatchingDefersBytesUntilTheBatchFills) {
  TempJournal tmp("batch");
  JournalWriter::Config config;
  config.flush_every = 4;
  config.flush_interval = std::chrono::milliseconds(1'000'000);  // never
  JournalWriter w;
  std::string error;
  ASSERT_TRUE(w.open(tmp.path(), config, &error)) << error;
  const std::string header = slurp(tmp.path());
  ASSERT_TRUE(w.append_event("done id=1"));
  ASSERT_TRUE(w.append_event("done id=2"));
  // Two of four buffered: nothing past the header on disk yet.
  EXPECT_EQ(slurp(tmp.path()), header);
  ASSERT_TRUE(w.append_event("done id=3"));
  ASSERT_TRUE(w.append_event("done id=4"));
  // Fourth record fills the batch: all four hit the disk.
  EXPECT_GT(slurp(tmp.path()).size(), header.size());
  EXPECT_EQ(read_journal(tmp.path()).records.size(), 4u);
  w.close();
}

TEST(Journal, ExplicitFlushAndCloseDrainTheBuffer) {
  TempJournal tmp("drain");
  JournalWriter::Config config;
  config.flush_every = 100;
  JournalWriter w;
  std::string error;
  ASSERT_TRUE(w.open(tmp.path(), config, &error)) << error;
  ASSERT_TRUE(w.append_event("done id=1"));
  ASSERT_TRUE(w.flush());
  EXPECT_EQ(read_journal(tmp.path()).records.size(), 1u);
  ASSERT_TRUE(w.append_event("done id=2"));
  w.close();  // close flushes the straggler
  EXPECT_EQ(read_journal(tmp.path()).records.size(), 2u);
}

TEST(Journal, ReopenAfterTornTailTruncatesBeforeAppending) {
  // Crash-restart-crash: the first crash tears the tail mid-record and
  // the restarted writer appends.  Without truncating back to the last
  // record boundary, the new record glues onto the half line, the next
  // recovery fails its checksum there, and every record of the second
  // life is silently dropped.
  TempJournal tmp("reopen_torn");
  {
    JournalWriter w;
    std::string error;
    ASSERT_TRUE(w.open(tmp.path(), JournalWriter::Config{}, &error)) << error;
    ASSERT_TRUE(w.append_event("sub id=1 at=0 deadline=5 tree=a@0:1/1"));
    ASSERT_TRUE(w.append_event("sub id=2 at=1 deadline=5 tree=b@1:1/1"));
    w.close();
  }
  const std::string intact = slurp(tmp.path());
  spill(tmp.path(), intact.substr(0, intact.size() - 5));  // tear record 2
  {
    JournalWriter w;
    std::string error;
    ASSERT_TRUE(w.open(tmp.path(), JournalWriter::Config{}, &error)) << error;
    ASSERT_TRUE(w.append_event("done id=1 at=2"));
    w.close();
  }
  const JournalReadResult r = read_journal(tmp.path());
  ASSERT_TRUE(r.ok) << r.diagnostic;
  EXPECT_FALSE(r.truncated) << r.diagnostic;
  ASSERT_EQ(r.records.size(), 2u);
  EXPECT_EQ(r.records[0].payload, "sub id=1 at=0 deadline=5 tree=a@0:1/1");
  EXPECT_EQ(r.records[1].payload, "done id=1 at=2");
}

TEST(Journal, ReopenAfterLostFinalNewlineKeepsRecordAndSuccessors) {
  // Losing only the trailing '\n' leaves a record valid (payload and
  // checksum intact); a reopening writer must restore the newline so
  // its own first record starts a fresh line instead of gluing on.
  TempJournal tmp("reopen_nonl");
  {
    JournalWriter w;
    std::string error;
    ASSERT_TRUE(w.open(tmp.path(), JournalWriter::Config{}, &error)) << error;
    ASSERT_TRUE(w.append_event("sub id=1 at=0 deadline=5 tree=a@0:1/1"));
    w.close();
  }
  const std::string intact = slurp(tmp.path());
  ASSERT_EQ(intact.back(), '\n');
  spill(tmp.path(), intact.substr(0, intact.size() - 1));
  {
    JournalWriter w;
    std::string error;
    ASSERT_TRUE(w.open(tmp.path(), JournalWriter::Config{}, &error)) << error;
    ASSERT_TRUE(w.append_event("done id=1 at=1"));
    w.close();
  }
  const JournalReadResult r = read_journal(tmp.path());
  ASSERT_TRUE(r.ok) << r.diagnostic;
  EXPECT_FALSE(r.truncated) << r.diagnostic;
  ASSERT_EQ(r.records.size(), 2u);
  EXPECT_EQ(r.records[0].payload, "sub id=1 at=0 deadline=5 tree=a@0:1/1");
  EXPECT_EQ(r.records[1].payload, "done id=1 at=1");
}

TEST(Journal, ReopenAppendsAfterExistingRecords) {
  TempJournal tmp("reopen");
  {
    JournalWriter w;
    std::string error;
    ASSERT_TRUE(w.open(tmp.path(), JournalWriter::Config{}, &error)) << error;
    ASSERT_TRUE(w.append_event("sub id=1 at=0 deadline=5 tree=a@0:1/1"));
    w.close();
  }
  {
    JournalWriter w;
    std::string error;
    ASSERT_TRUE(w.open(tmp.path(), JournalWriter::Config{}, &error)) << error;
    ASSERT_TRUE(w.append_event("done id=1 at=1"));
    w.close();
  }
  const JournalReadResult r = read_journal(tmp.path());
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(r.records.size(), 2u);
  EXPECT_EQ(r.records[1].payload, "done id=1 at=1");
}

}  // namespace
