// Unit tests for whole-config validation.
#include "src/exp/validate.hpp"

#include <gtest/gtest.h>

namespace {

using namespace sda::exp;

TEST(Validate, BaselineIsValid) {
  EXPECT_TRUE(validate(baseline_config()).empty());
  EXPECT_NO_THROW(validate_or_throw(baseline_config()));
  EXPECT_TRUE(validate(graph_config()).empty());
}

TEST(Validate, CatchesSystemProblems) {
  ExperimentConfig c = baseline_config();
  c.k = 0;
  EXPECT_FALSE(validate(c).empty());

  c = baseline_config();
  c.node_speeds = {1.0, 1.0};
  EXPECT_FALSE(validate(c).empty());

  c = baseline_config();
  c.node_speeds = {1, 1, 1, 1, 1, -1};
  EXPECT_FALSE(validate(c).empty());

  c = baseline_config();
  c.scheduler_policy = "random";
  EXPECT_FALSE(validate(c).empty());
}

TEST(Validate, CatchesStrategyProblems) {
  ExperimentConfig c = baseline_config();
  c.psp = "div-0";
  EXPECT_FALSE(validate(c).empty());
  c = baseline_config();
  c.ssp = "eqz";
  EXPECT_FALSE(validate(c).empty());
}

TEST(Validate, CatchesWorkloadProblems) {
  ExperimentConfig c = baseline_config();
  c.load = 1.0;  // unstable
  EXPECT_FALSE(validate(c).empty());

  c = baseline_config();
  c.frac_local = 1.2;
  EXPECT_FALSE(validate(c).empty());

  c = baseline_config();
  c.n_max = 7;  // > k
  EXPECT_FALSE(validate(c).empty());

  c = baseline_config();
  c.slack_min = 9.0;  // > slack_max
  EXPECT_FALSE(validate(c).empty());

  c = baseline_config();
  c.local_burst_factor = 0.5;
  EXPECT_FALSE(validate(c).empty());

  c = graph_config();
  c.stage_widths = {1, 9};
  EXPECT_FALSE(validate(c).empty());

  c = graph_config();
  c.link_count = 2;
  c.mean_msg_time = 0.0;
  EXPECT_FALSE(validate(c).empty());
}

TEST(Validate, CatchesRunControlProblems) {
  ExperimentConfig c = baseline_config();
  c.sim_time = 0.0;
  EXPECT_FALSE(validate(c).empty());
  c = baseline_config();
  c.replications = 0;
  EXPECT_FALSE(validate(c).empty());
  c = baseline_config();
  c.warmup_fraction = 1.0;
  EXPECT_FALSE(validate(c).empty());
}

TEST(Validate, ReportsAllProblemsAtOnce) {
  ExperimentConfig c = baseline_config();
  c.k = -1;
  c.load = 2.0;
  c.psp = "nope";
  c.replications = 0;
  EXPECT_GE(validate(c).size(), 4u);
}

TEST(Validate, ThrowListsEveryProblem) {
  ExperimentConfig c = baseline_config();
  c.load = 2.0;
  c.psp = "nope";
  try {
    validate_or_throw(c);
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("load"), std::string::npos);
    EXPECT_NE(what.find("nope"), std::string::npos);
  }
}

TEST(Validate, LinkCountIgnoredForParallelKind) {
  ExperimentConfig c = baseline_config();  // kParallel
  c.link_count = -5;                       // only meaningful for kGraph
  EXPECT_TRUE(validate(c).empty());
}

}  // namespace
