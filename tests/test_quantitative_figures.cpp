// Quantitative regression locks: the numbers recorded in EXPERIMENTS.md,
// re-measured at reduced run length with tolerances wide enough for the
// statistical noise but tight enough to catch real regressions in the
// simulator or the strategies.
#include <gtest/gtest.h>

#include "src/exp/figures.hpp"
#include "src/exp/runner.hpp"
#include "src/metrics/task_class.hpp"

namespace {

using namespace sda;

exp::ExperimentConfig quick_baseline() {
  exp::ExperimentConfig c = exp::baseline_config();
  c.sim_time = 50000.0;
  c.replications = 1;
  return c;
}

double md(const metrics::Report& r, int cls) {
  return r.summary(cls).miss_rate.mean;
}

TEST(QuantFig5, BaselinePointsAtLoads) {
  // EXPERIMENTS.md table: load -> (local, global) under UD.
  const struct {
    double load, local, global;
  } expected[] = {
      {0.3, 0.034, 0.086},
      {0.5, 0.088, 0.251},
      {0.7, 0.230, 0.595},
  };
  for (const auto& e : expected) {
    exp::ExperimentConfig c = quick_baseline();
    c.load = e.load;
    const auto r = exp::run_experiment(c);
    EXPECT_NEAR(md(r, metrics::kLocalClass), e.local, 0.02)
        << "load " << e.load;
    EXPECT_NEAR(md(r, metrics::global_class(4)), e.global, 0.04)
        << "load " << e.load;
  }
}

TEST(QuantFig7, GfAtHighLoad) {
  exp::ExperimentConfig c = quick_baseline();
  c.load = 0.8;
  c.psp = "gf";
  const auto r = exp::run_experiment(c);
  // EXPERIMENTS.md: 15.8% at load 0.8 (vs 81.3% under UD).
  EXPECT_NEAR(md(r, metrics::global_class(4)), 0.158, 0.05);
}

TEST(QuantFig11, AbortionPoints) {
  exp::ExperimentConfig c = quick_baseline();
  c.pm_abort = core::PmAbortMode::kRealDeadline;
  const auto ud = exp::run_experiment(c);
  EXPECT_NEAR(md(ud, metrics::global_class(4)), 0.149, 0.03);
  c.psp = "div-1";
  const auto div1 = exp::run_experiment(c);
  EXPECT_NEAR(md(div1, metrics::global_class(4)), 0.082, 0.025);
}

TEST(QuantFig12, PerClassPointsUnderUd) {
  exp::ExperimentConfig c = quick_baseline();
  c.sim_time = 80000.0;
  c.n_min = 2;
  c.n_max = 6;
  const auto r = exp::run_experiment(c);
  EXPECT_NEAR(md(r, metrics::global_class(2)), 0.148, 0.04);
  EXPECT_NEAR(md(r, metrics::global_class(6)), 0.321, 0.06);
}

TEST(QuantFig15, GraphPointsAtLoad06) {
  exp::ExperimentConfig c = exp::graph_config();
  c.sim_time = 50000.0;
  c.replications = 1;
  c.load = 0.6;
  const auto udud = exp::run_experiment(c);
  EXPECT_NEAR(md(udud, metrics::global_class(0)), 0.474, 0.07);
  c.psp = "div-1";
  c.ssp = "eqf";
  const auto eqfdiv = exp::run_experiment(c);
  EXPECT_NEAR(md(eqfdiv, metrics::global_class(0)), 0.193, 0.06);
}

TEST(QuantMissedWork, Section61Numbers) {
  exp::ExperimentConfig c = quick_baseline();
  const auto ud = exp::run_experiment(c);
  c.psp = "div-1";
  const auto div1 = exp::run_experiment(c);
  EXPECT_NEAR(ud.overall_missed_work().mean, 0.141, 0.025);
  EXPECT_NEAR(div1.overall_missed_work().mean, 0.117, 0.025);
}

}  // namespace
