// Tests for the scorecard mechanics plus a shortened reproduction battery
// as a regression gate (the full-length battery is bench/reproduce_all).
#include "src/exp/compare.hpp"

#include <gtest/gtest.h>

namespace {

using namespace sda::exp::compare;

TEST(Scorecard, AddAndCount) {
  Scorecard c;
  c.add("a", "claim a", true);
  c.add("b", "claim b", false, "detail");
  EXPECT_EQ(c.checks().size(), 2u);
  EXPECT_EQ(c.failures(), 1u);
  EXPECT_FALSE(c.all_passed());
}

TEST(Scorecard, CheckNear) {
  Scorecard c;
  c.check_near("x", "close", 0.25, 0.26, 0.02);
  c.check_near("y", "far", 0.25, 0.40, 0.02);
  EXPECT_TRUE(c.checks()[0].pass);
  EXPECT_FALSE(c.checks()[1].pass);
  EXPECT_NE(c.checks()[0].detail.find("0.25"), std::string::npos);
}

TEST(Scorecard, CheckLess) {
  Scorecard c;
  c.check_less("x", "strictly", 1.0, 2.0);
  c.check_less("y", "violated", 2.0, 1.0);
  c.check_less("z", "within margin", 2.0, 1.95, 0.1);
  EXPECT_TRUE(c.checks()[0].pass);
  EXPECT_FALSE(c.checks()[1].pass);
  EXPECT_TRUE(c.checks()[2].pass);
}

TEST(Scorecard, RenderShowsVerdicts) {
  Scorecard c;
  c.add("good", "works", true);
  c.add("bad", "broken", false);
  const std::string out = c.render();
  EXPECT_NE(out.find("PASS"), std::string::npos);
  EXPECT_NE(out.find("FAIL"), std::string::npos);
  EXPECT_NE(out.find("1/2 checks passed"), std::string::npos);
}

// A shortened battery as a regression gate.  30k time units x 1 rep keeps
// the test under ~30s while leaving enough statistical resolution for the
// battery's tolerances (they assume >= ~50k, so allow a small number of
// marginal numeric misses — but never more than 3 of ~25 checks).
TEST(ReproductionBattery, ShortRunMostlyPasses) {
  sda::util::BenchEnv env;
  env.sim_time = 30000.0;
  env.replications = 1;
  env.warmup_fraction = 0.05;
  env.seed = 20250707;
  const Scorecard card = run_reproduction_battery(env);
  EXPECT_GE(card.checks().size(), 20u);
  EXPECT_LE(card.failures(), 3u) << card.render();
}

}  // namespace
