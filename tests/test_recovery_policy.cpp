// The process manager's fault-recovery path: bounded retries, backoff,
// failover, deadline-aware SDA re-assignment, negative-slack shedding, and
// whole-run determinism under injected faults.
#include "src/core/process_manager.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/strategy.hpp"
#include "src/exp/runner.hpp"
#include "src/metrics/trace.hpp"
#include "src/sched/edf.hpp"
#include "src/task/notation.hpp"

namespace {

using namespace sda;
using core::GlobalTaskRecord;
using core::ProcessManager;
using core::RecoveryPolicy;
using core::RetryDeadline;
using task::TaskPtr;
using task::TaskState;

/// Engine + k EDF nodes + PM with failure plumbing, like PmTest but with
/// a configurable RecoveryPolicy and per-test fault hooks.
class RecoveryTest : public ::testing::Test {
 protected:
  void build(const RecoveryPolicy& rp, const std::string& psp = "ud",
             const std::string& ssp = "ud",
             core::PmAbortMode abort_mode = core::PmAbortMode::kNone,
             int k = 4) {
    engine = std::make_unique<sim::Engine>();
    nodes.clear();
    node_ptrs.clear();
    for (int i = 0; i < k; ++i) {
      sched::Node::Config nc;
      nc.index = i;
      nodes.push_back(std::make_unique<sched::Node>(
          *engine, std::make_unique<sched::EdfScheduler>(), nc));
      node_ptrs.push_back(nodes.back().get());
    }
    ProcessManager::Config pc;
    pc.psp = core::make_psp_strategy(psp);
    pc.ssp = core::make_ssp_strategy(ssp);
    pc.abort_mode = abort_mode;
    pc.recovery = rp;
    pc.compute_node_count = k;
    pm = std::make_unique<ProcessManager>(*engine, node_ptrs, std::move(pc));
    pm->set_global_handler(
        [this](const GlobalTaskRecord& r) { finished.push_back(r); });
    pm->set_subtask_handler(
        [this](const task::SimpleTask& t) { terminal_subtasks.push_back(t); });
    for (auto& n : nodes) {
      n->set_completion_handler(
          [this](const TaskPtr& t) { pm->handle_completion(t); });
      n->set_abort_handler(
          [this](const TaskPtr& t) { pm->handle_local_abort(t); });
      n->set_failure_handler(
          [this](const TaskPtr& t) { pm->handle_failure(t); });
    }
  }

  /// Installs a hook on node @p index failing the first @p times attempts
  /// at @p at time units into the leg.
  void fail_first_attempts(int index, int times, double at) {
    auto count = std::make_shared<int>(0);
    node_ptrs[static_cast<std::size_t>(index)]->set_fault_hook(
        [count, times, at](const task::SimpleTask&, double) {
          sched::Node::ServiceFault f;
          if ((*count)++ < times) f.fail_after = at;
          return f;
        });
  }

  std::unique_ptr<sim::Engine> engine;
  std::vector<std::unique_ptr<sched::Node>> nodes;
  std::vector<sched::Node*> node_ptrs;
  std::unique_ptr<ProcessManager> pm;
  std::vector<GlobalTaskRecord> finished;
  std::vector<task::SimpleTask> terminal_subtasks;
};

TEST_F(RecoveryTest, RetriedSubtaskCompletesTheRun) {
  build(RecoveryPolicy{});
  fail_first_attempts(0, 1, 1.0);
  // A fails at t=1 with its work lost, is resubmitted immediately, and
  // reruns the full demand 1..3.
  pm->submit(task::parse_notation("A@0:2"), 10.0, 100, 1);
  engine->run();
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_FALSE(finished[0].aborted);
  EXPECT_FALSE(finished[0].shed);
  EXPECT_EQ(finished[0].retries, 1);
  EXPECT_DOUBLE_EQ(finished[0].finished_at, 3.0);
  EXPECT_EQ(pm->fault_retries(), 1u);
  EXPECT_EQ(pm->shed_runs(), 0u);
  EXPECT_EQ(pm->live_runs(), 0u);
}

TEST_F(RecoveryTest, RetryCapShedsTheRun) {
  RecoveryPolicy rp;
  rp.max_retries_per_run = 2;
  rp.shed_negative_slack = false;  // isolate the cap path
  build(rp);
  fail_first_attempts(0, 100, 0.5);  // every attempt fails
  pm->submit(task::parse_notation("A@0:2"), 50.0, 100, 1);
  engine->run();
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_TRUE(finished[0].aborted);
  EXPECT_TRUE(finished[0].shed);
  EXPECT_EQ(finished[0].retries, 2);
  // Failures at 0.5, 1.0, 1.5; the third exceeds the cap and sheds.
  EXPECT_DOUBLE_EQ(finished[0].finished_at, 1.5);
  EXPECT_EQ(pm->shed_runs(), 1u);
  EXPECT_EQ(pm->aborted_runs(), 1u);
}

TEST_F(RecoveryTest, ZeroRetriesMeansFirstFaultSheds) {
  RecoveryPolicy rp;
  rp.max_retries_per_run = 0;
  build(rp);
  fail_first_attempts(0, 1, 1.0);
  pm->submit(task::parse_notation("A@0:2"), 50.0, 100, 1);
  engine->run();
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_TRUE(finished[0].shed);
  EXPECT_EQ(finished[0].retries, 0);
  EXPECT_EQ(pm->fault_retries(), 0u);
}

TEST_F(RecoveryTest, NegativeSlackShedsInsteadOfRetrying) {
  build(RecoveryPolicy{});  // shed_negative_slack defaults on
  fail_first_attempts(0, 1, 1.5);
  // pex 2, deadline 3: at the failure (t=1.5) even a queue-free rerun ends
  // at 3.5 > 3, so the run is shed without consuming a retry.
  pm->submit(task::parse_notation("A@0:2"), 3.0, 100, 1);
  engine->run();
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_TRUE(finished[0].shed);
  EXPECT_EQ(finished[0].retries, 0);
  EXPECT_DOUBLE_EQ(finished[0].finished_at, 1.5);
  EXPECT_EQ(pm->fault_retries(), 0u);
  EXPECT_EQ(pm->shed_runs(), 1u);
}

TEST_F(RecoveryTest, NegativeSlackShedCountsLaterSerialStages) {
  build(RecoveryPolicy{});
  fail_first_attempts(0, 1, 0.5);
  // Stage A (pex 1) fails at t=0.5; remaining path = 1 (A) + 2 (B) = 3, so
  // 0.5 + 3 > 3.2 fails only because of stage B's demand.
  pm->submit(task::parse_notation("[A@0:1 B@1:2]"), 3.2, 100, 1);
  engine->run();
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_TRUE(finished[0].shed);
  // Stage B never became a subtask.
  EXPECT_EQ(nodes[1]->completed(), 0u);
}

TEST_F(RecoveryTest, StaleDeadlineKeepsOriginalAssignment) {
  RecoveryPolicy rp;
  rp.deadline_mode = RetryDeadline::kStale;
  build(rp, "div-1", "ud");
  fail_first_attempts(0, 1, 2.0);
  // DIV-1 over two branches of deadline 8: initial virtual deadlines 4.
  pm->submit(task::parse_notation("[A@0:4 || B@1:4]"), 8.0, 100, 1);
  engine->run_until(2.5);  // A failed at t=2 and was resubmitted
  ASSERT_NE(node_ptrs[0]->in_service(), nullptr);
  EXPECT_DOUBLE_EQ(node_ptrs[0]->in_service()->attrs.virtual_deadline, 4.0);
  engine->run();
}

TEST_F(RecoveryTest, SdaRecomputeReassignsFromRemainingSlack) {
  RecoveryPolicy rp;
  rp.deadline_mode = RetryDeadline::kSdaRecompute;
  build(rp, "div-1", "ud");
  fail_first_attempts(0, 1, 2.0);
  pm->submit(task::parse_notation("[A@0:4 || B@1:4]"), 8.0, 100, 1);
  engine->run_until(2.5);
  ASSERT_NE(node_ptrs[0]->in_service(), nullptr);
  const double vdl = node_ptrs[0]->in_service()->attrs.virtual_deadline;
  // The honest reassignment must differ from the stale value and must
  // match the strategy evaluated at the retry instant.
  EXPECT_NE(vdl, 4.0);
  const auto psp = core::make_psp_strategy("div-1");
  ASSERT_EQ(finished.size(), 0u);
  const task::TreePtr probe = task::parse_notation("[A@0:4 || B@1:4]");
  EXPECT_DOUBLE_EQ(
      vdl, core::assign_branch_deadline(*psp, *probe, 0, 2.0, 8.0));
  engine->run();
}

TEST_F(RecoveryTest, FailoverMovesRetryToAnUpNode) {
  build(RecoveryPolicy{});
  pm->submit(task::parse_notation("A@0:5"), 50.0, 100, 1);
  engine->at(1.0, [this] { node_ptrs[0]->crash(/*discard_queue=*/true); });
  engine->run();
  // The crash at t=1 killed the attempt on node 0; the retry failed over
  // to node 1 and reran the full demand 1..6.
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_FALSE(finished[0].aborted);
  EXPECT_DOUBLE_EQ(finished[0].finished_at, 6.0);
  EXPECT_EQ(nodes[1]->completed(), 1u);
  EXPECT_EQ(pm->failovers(), 1u);
  EXPECT_EQ(pm->fault_retries(), 1u);
}

TEST_F(RecoveryTest, NoFailoverQueuesIntoTheOutage) {
  RecoveryPolicy rp;
  rp.failover = false;
  build(rp);
  pm->submit(task::parse_notation("A@0:2"), 50.0, 100, 1);
  engine->at(1.0, [this] { node_ptrs[0]->crash(/*discard_queue=*/true); });
  engine->at(4.0, [this] { node_ptrs[0]->recover(); });
  engine->run();
  // The retry waited out the outage on its original node: 4..6.
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_DOUBLE_EQ(finished[0].finished_at, 6.0);
  EXPECT_EQ(nodes[0]->completed(), 1u);
  EXPECT_EQ(pm->failovers(), 0u);
}

TEST_F(RecoveryTest, BackoffDelaysTheRetryExponentially) {
  RecoveryPolicy rp;
  rp.backoff_base = 2.0;
  rp.backoff_factor = 2.0;
  rp.shed_negative_slack = false;
  build(rp);
  fail_first_attempts(0, 2, 1.0);
  // Failures at t=1 and t=4: retry 1 waits 2 (resumes at 3, fails at 4),
  // retry 2 waits 4 (resumes at 8) and completes 8..10.
  pm->submit(task::parse_notation("A@0:2"), 50.0, 100, 1);
  engine->run();
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_FALSE(finished[0].aborted);
  EXPECT_EQ(finished[0].retries, 2);
  EXPECT_DOUBLE_EQ(finished[0].finished_at, 10.0);
}

TEST_F(RecoveryTest, RunEndedDuringBackoffIsNotRevived) {
  RecoveryPolicy rp;
  rp.backoff_base = 5.0;
  rp.shed_negative_slack = false;
  build(rp, "ud", "ud", core::PmAbortMode::kRealDeadline);
  fail_first_attempts(0, 1, 1.0);
  // Failure at t=1 schedules a retry for t=6, but the real-deadline timer
  // kills the run at t=3.  The pending retry must find the run gone and do
  // nothing — no second terminal record, no resurrection.
  pm->submit(task::parse_notation("A@0:2"), 3.0, 100, 1);
  engine->run();
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_TRUE(finished[0].aborted);
  EXPECT_FALSE(finished[0].shed);
  EXPECT_DOUBLE_EQ(finished[0].finished_at, 3.0);
  EXPECT_EQ(pm->live_runs(), 0u);
  EXPECT_EQ(engine->events_pending(), 0u);
  EXPECT_EQ(nodes[0]->in_service(), nullptr);
}

TEST_F(RecoveryTest, CrashShedLeavesNoPendingTimers) {
  // Timer-hygiene regression under the fault path: a run shed while its
  // real-deadline abort timer is armed must cancel the timer with it.
  RecoveryPolicy rp;
  rp.max_retries_per_run = 0;
  build(rp, "ud", "ud", core::PmAbortMode::kRealDeadline);
  fail_first_attempts(0, 1, 1.0);
  pm->submit(task::parse_notation("A@0:2"), 30.0, 100, 1);
  engine->run_until(2.0);  // shed happened at t=1
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_TRUE(finished[0].shed);
  EXPECT_EQ(engine->events_pending(), 0u);  // the t=30 timer is gone
  engine->run();
  EXPECT_EQ(finished.size(), 1u);
}

// --- whole-run determinism under faults (run_once level) -------------------

exp::ExperimentConfig faulty_config() {
  exp::ExperimentConfig c;
  c.k = 6;
  c.load = 0.6;
  c.sim_time = 3000.0;
  c.replications = 1;
  c.fault_rate = 0.05;
  c.crash_mean_uptime = 400.0;
  c.crash_mean_downtime = 25.0;
  return c;
}

TEST(RecoveryDeterminism, SameSeedSameFaultsSameFingerprint) {
  const exp::ExperimentConfig c = faulty_config();
  metrics::Tracer a, b;
  const exp::RunResult ra = exp::run_once(c, 123, &a);
  const exp::RunResult rb = exp::run_once(c, 123, &b);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(ra.node_crashes, rb.node_crashes);
  EXPECT_EQ(ra.transient_failures, rb.transient_failures);
  EXPECT_EQ(ra.fault_retries, rb.fault_retries);
  EXPECT_EQ(ra.globals_shed, rb.globals_shed);
  EXPECT_EQ(ra.events_fired, rb.events_fired);
  // The faults actually bit: this config must produce fault activity.
  EXPECT_GT(ra.transient_failures + ra.node_crashes, 0u);
}

TEST(RecoveryDeterminism, DifferentSeedsDiverge) {
  const exp::ExperimentConfig c = faulty_config();
  metrics::Tracer a, b;
  exp::run_once(c, 123, &a);
  exp::run_once(c, 124, &b);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

// The fault stream is split from the master only when faults are enabled,
// so recovery-policy knobs alone (with every fault rate at zero) must not
// perturb the workload streams: the run is bit-identical to the default
// fail-free configuration.
TEST(RecoveryDeterminism, RecoveryKnobsAloneDoNotPerturbFailFreeRuns) {
  exp::ExperimentConfig plain;
  plain.k = 6;
  plain.load = 0.6;
  plain.sim_time = 3000.0;
  plain.replications = 1;

  exp::ExperimentConfig tuned = plain;
  tuned.max_retries_per_run = 9;
  tuned.retry_backoff_base = 1.0;
  tuned.retry_failover = false;
  tuned.retry_deadline = "stale";
  tuned.shed_negative_slack = false;
  ASSERT_FALSE(tuned.faults_enabled());

  metrics::Tracer a, b;
  const exp::RunResult ra = exp::run_once(plain, 77, &a);
  const exp::RunResult rb = exp::run_once(tuned, 77, &b);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(ra.events_fired, rb.events_fired);
  EXPECT_EQ(rb.node_crashes, 0u);
  EXPECT_EQ(rb.transient_failures, 0u);
  EXPECT_EQ(rb.fault_retries, 0u);
}

// A run shed by negative-slack shedding while one of its legs is parked
// on a backoff timer must cancel that timer: nothing of the run may fire
// after termination (the timer would otherwise dereference recycled run
// state — and at minimum drag the engine clock to the stale fire time).
TEST_F(RecoveryTest, ShedRunCancelsPendingRetryTimer) {
  RecoveryPolicy rp;
  rp.backoff_base = 10.0;  // a's retry would fire at t = 11
  rp.shed_negative_slack = true;
  build(rp);
  fail_first_attempts(0, 1, 1.0);  // a fails at t=1 -> backoff until t=11
  fail_first_attempts(1, 1, 2.0);  // b fails at t=2 -> slack gone -> shed
  // Deadline 6.5: at t=1 a still fits (1 + 5 <= 6.5) so its retry is
  // parked; at t=2 the remaining critical path overruns (2 + 5 > 6.5).
  pm->submit(task::parse_notation("[a@0:5/5 || b@1:5/5]"), 6.5, 100, 1);
  engine->run();
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_TRUE(finished[0].shed);
  // The engine went quiet at the shed time, not at the timer's: the
  // backoff timer died with the run.
  EXPECT_EQ(engine->events_pending(), 0u);
  EXPECT_DOUBLE_EQ(engine->now(), 2.0);
  EXPECT_EQ(pm->live_runs(), 0u);
}

}  // namespace
