// End-to-end overload robustness: the admission gate in front of the
// simulator under a seeded 2x overload burst.  Asserts the headline
// guarantees — admitted tasks keep their deadlines, the overload state
// machine cycles and recovers, and the plan cache never changes behavior.
#include <gtest/gtest.h>

#include <memory>

#include "src/core/admission.hpp"
#include "src/exp/config.hpp"
#include "src/exp/runner.hpp"
#include "src/metrics/collector.hpp"
#include "src/metrics/trace.hpp"

namespace {

using namespace sda;

/// 2x sustained overload, bursty (IPP factor 3), preemptive EDF with
/// exact execution predictions and no local traffic — the regime where
/// the per-node feasibility tests are exact, so admission implies zero
/// deadline misses among admitted tasks.
exp::ExperimentConfig overload_config() {
  exp::ExperimentConfig c;
  c.admission = true;
  c.load = 2.0;
  c.frac_local = 0.0;
  c.preemptive = true;
  c.global_burst_factor = 3.0;
  c.global_burst_cycle = 50.0;
  c.sim_time = 2000.0;
  c.replications = 1;
  return c;
}

std::uint64_t total_missed(const metrics::Collector& collector) {
  std::uint64_t missed = 0;
  for (const int cls : collector.classes()) {
    missed += collector.counts(cls).missed;
  }
  return missed;
}

TEST(Overload, AdmittedTasksKeepTheirDeadlinesUnderTwoXBurst) {
  const exp::ExperimentConfig c = overload_config();
  metrics::Tracer tracer(1);
  const exp::RunResult r = exp::run_once(c, exp::replication_seed(c.seed, 0),
                                         &tracer);

  // The gate actually bit: a 2x burst cannot be admitted wholesale.
  EXPECT_GT(r.admission.submitted, 0u);
  EXPECT_GT(r.admission.rejected + r.admission.shed, 0u);
  EXPECT_EQ(r.globals_not_admitted,
            r.admission.rejected + r.admission.shed);
  EXPECT_GT(r.globals_completed, 0u);

  // The feasibility guarantee: every admitted run met its (possibly
  // stretched) deadline, and nothing crashed or wedged getting there.
  EXPECT_EQ(total_missed(r.collector), 0u);
  EXPECT_EQ(r.globals_aborted, 0u);

  // Sustained overload drove the state machine out of normal.
  EXPECT_GE(r.admission.to_degraded, 1u);
}

TEST(Overload, StateMachineShedsAndRecovers) {
  // Long quiet OFF phases (IPP ON fraction = 1/4) between hard bursts:
  // pressure must cross into shedding during bursts and decay back to
  // normal in the gaps — the full cycle, both transition directions.
  exp::ExperimentConfig c = overload_config();
  c.global_burst_factor = 4.0;
  c.global_burst_cycle = 120.0;
  c.sim_time = 3000.0;
  metrics::Tracer tracer(1);
  const exp::RunResult r = exp::run_once(c, exp::replication_seed(c.seed, 0),
                                         &tracer);
  EXPECT_GE(r.admission.to_shedding, 1u);
  EXPECT_GE(r.admission.to_normal, 1u);
  EXPECT_GT(r.admission.shed + r.admission.rejected, 0u);
  EXPECT_EQ(total_missed(r.collector), 0u);
}

TEST(Overload, PlanCacheIsBehaviorTransparent) {
  // Identical seeds, cache on vs off: the whole-run determinism
  // fingerprint (every task lifecycle event) must match bit for bit.
  exp::ExperimentConfig on = overload_config();
  exp::ExperimentConfig off = overload_config();
  on.admission_plan_cache = true;
  off.admission_plan_cache = false;

  metrics::Tracer ta(1), tb(1);
  const exp::RunResult ra =
      exp::run_once(on, exp::replication_seed(on.seed, 0), &ta);
  const exp::RunResult rb =
      exp::run_once(off, exp::replication_seed(off.seed, 0), &tb);

  EXPECT_EQ(ta.fingerprint(), tb.fingerprint());
  EXPECT_EQ(ra.admission.admitted, rb.admission.admitted);
  EXPECT_EQ(ra.admission.rejected, rb.admission.rejected);
  EXPECT_EQ(ra.admission.shed, rb.admission.shed);
  EXPECT_EQ(rb.plan_cache.hits + rb.plan_cache.misses, 0u);
}

TEST(Overload, GatedRunsAreDeterministicAcrossReruns) {
  // The controller holds unordered containers; none of their iteration
  // order may leak into decisions.  Two fresh runs, same seed, same
  // fingerprint.
  const exp::ExperimentConfig c = overload_config();
  metrics::Tracer ta(1), tb(1);
  (void)exp::run_once(c, exp::replication_seed(c.seed, 0), &ta);
  (void)exp::run_once(c, exp::replication_seed(c.seed, 0), &tb);
  EXPECT_EQ(ta.fingerprint(), tb.fingerprint());
}

}  // namespace
