// Conservative time-window PDES (src/sim/fabric.*, exp/runner_sharded):
// the tentpole contract is that one replication's determinism fingerprint
// is bit-identical at every shard count — shards=1 (the original serial
// engine) and shards in {2, 4, 8} (the message fabric) must produce the
// same trace, for every PSP x SSP pair, with and without faults, at zero
// and nonzero lookahead.  Also unit-covers the fabric's building blocks
// (PathKey ordering, CrossShardQueue, NodeStatusBoard).
//
// This test runs under ThreadSanitizer in scripts/check_sanitizers.sh
// (the tsan ctest preset includes it), so keep the horizons short: TSan
// multiplies runtime ~10x.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/exp/config.hpp"
#include "src/exp/runner.hpp"
#include "src/metrics/trace.hpp"
#include "src/sim/fabric.hpp"
#include "src/util/thread_pool.hpp"

namespace {

using namespace sda;
using exp::ExperimentConfig;

struct RunSummary {
  std::uint64_t fingerprint = 0;
  std::uint64_t locals_generated = 0;
  std::uint64_t globals_generated = 0;
  std::uint64_t globals_completed = 0;
  std::uint64_t globals_aborted = 0;
  std::uint64_t node_crashes = 0;
  std::uint64_t transient_failures = 0;
  std::uint64_t fault_retries = 0;
};

/// One replication at the given shard count; everything compared across
/// shard counts must live in here.  (events_fired is deliberately absent:
/// the fabric schedules one extra event per cross-lane message, so the
/// raw event count is not shard-invariant — the *trace* is.)
RunSummary run_at(ExperimentConfig c, int shards, std::uint64_t seed) {
  c.shards = shards;
  metrics::Tracer tracer(1);  // rolling fingerprint only
  const exp::RunResult r = exp::run_once(c, seed, &tracer);
  RunSummary s;
  s.fingerprint = tracer.fingerprint();
  s.locals_generated = r.locals_generated;
  s.globals_generated = r.globals_generated;
  s.globals_completed = r.globals_completed;
  s.globals_aborted = r.globals_aborted;
  s.node_crashes = r.node_crashes;
  s.transient_failures = r.transient_failures;
  s.fault_retries = r.fault_retries;
  return s;
}

void expect_shard_invariant(const ExperimentConfig& c, std::uint64_t seed,
                            const std::vector<int>& shard_counts,
                            const std::string& label) {
  const RunSummary ref = run_at(c, shard_counts.front(), seed);
  EXPECT_GT(ref.locals_generated + ref.globals_generated, 0u) << label;
  for (std::size_t i = 1; i < shard_counts.size(); ++i) {
    const int s = shard_counts[i];
    const RunSummary got = run_at(c, s, seed);
    EXPECT_EQ(got.fingerprint, ref.fingerprint)
        << label << ": shards=" << s << " vs shards=" << shard_counts.front();
    EXPECT_EQ(got.locals_generated, ref.locals_generated) << label << " s=" << s;
    EXPECT_EQ(got.globals_generated, ref.globals_generated) << label << " s=" << s;
    EXPECT_EQ(got.globals_completed, ref.globals_completed) << label << " s=" << s;
    EXPECT_EQ(got.globals_aborted, ref.globals_aborted) << label << " s=" << s;
    EXPECT_EQ(got.node_crashes, ref.node_crashes) << label << " s=" << s;
    EXPECT_EQ(got.transient_failures, ref.transient_failures) << label << " s=" << s;
    EXPECT_EQ(got.fault_retries, ref.fault_retries) << label << " s=" << s;
  }
}

/// k=8 so every shard count in {1, 2, 4, 8} divides the lanes evenly (and
/// 8 is a legal shard count at all: shards <= node count).
ExperimentConfig pdes_base() {
  ExperimentConfig c = exp::baseline_config();
  c.k = 8;
  c.sim_time = 300.0;
  c.replications = 1;
  c.warmup_fraction = 0.05;
  return c;
}

// --- the tentpole matrix: every strategy pair, every shard count ----------

TEST(PdesDeterminism, AllStrategyPairsAllShardCounts) {
  const char* psps[] = {"ud", "div-2", "div-4", "gf"};
  const char* ssps[] = {"ud", "ed", "eqs", "eqf"};
  for (const char* psp : psps) {
    for (const char* ssp : ssps) {
      ExperimentConfig c = pdes_base();
      c.psp = psp;
      c.ssp = ssp;
      expect_shard_invariant(c, 12345, {1, 2, 4, 8},
                             std::string(psp) + "/" + ssp);
    }
  }
}

// --- abortion regimes ------------------------------------------------------

TEST(PdesDeterminism, PmAbortAndLocalAbortRegimes) {
  ExperimentConfig c = pdes_base();
  c.psp = "gf";
  c.ssp = "ed";
  c.pm_abort = core::PmAbortMode::kRealDeadline;
  c.local_abort = sched::LocalAbortPolicy::kAbortOnVirtualDeadline;
  c.load = 0.8;  // enough pressure that aborts actually happen
  expect_shard_invariant(c, 777, {1, 2, 4, 8}, "abort-regimes");
}

// --- seeded faults ---------------------------------------------------------

TEST(PdesDeterminism, SeededFaultsAndRecovery) {
  ExperimentConfig c = pdes_base();
  c.fault_rate = 0.05;
  c.crash_mean_uptime = 120.0;
  c.crash_mean_downtime = 15.0;
  c.retry_backoff_base = 0.5;
  c.retry_backoff_factor = 2.0;
  c.pm_abort = core::PmAbortMode::kRealDeadline;
  expect_shard_invariant(c, 4242, {1, 2, 4, 8}, "faults");
}

TEST(PdesDeterminism, GraphWorkloadWithLinksAndMessageFaults) {
  ExperimentConfig c = exp::graph_config();
  c.k = 6;
  c.link_count = 2;  // 8 lanes total
  c.msg_loss_rate = 0.03;
  c.msg_extra_delay_mean = 0.05;
  c.sim_time = 300.0;
  c.replications = 1;
  expect_shard_invariant(c, 99, {1, 2, 4, 8}, "graph+links");
}

// --- lookahead -------------------------------------------------------------

// net_latency > 0 changes the *model* (control-plane messages arrive
// late), so the reference here is shards=1 in message mode — the window
// protocol with one worker — and the claim is shard-invariance at equal
// latency, not equality with latency 0.
TEST(PdesDeterminism, PositiveLookaheadIsShardInvariant) {
  ExperimentConfig c = pdes_base();
  c.net_latency = 0.5;
  c.pm_abort = core::PmAbortMode::kRealDeadline;
  expect_shard_invariant(c, 2024, {1, 2, 4, 8}, "latency=0.5");
}

// Zero lookahead must degrade to per-timestamp rounds, not deadlock; this
// completing at all (under load, with message traffic) is the regression
// test for the L=0 window rule.
TEST(PdesDeterminism, ZeroLookaheadCompletesWithoutDeadlock) {
  ExperimentConfig c = pdes_base();
  c.load = 0.7;
  const RunSummary s = run_at(c, 8, 31337);
  EXPECT_GT(s.globals_completed, 0u);
}

// --- run_experiment dispatch ----------------------------------------------

TEST(PdesDeterminism, RunExperimentMatchesSerialReport) {
  ExperimentConfig c = pdes_base();
  c.replications = 2;
  util::ThreadPool pool(2);

  std::vector<std::uint64_t> serial_fps;
  c.shards = 1;
  const metrics::Report serial = exp::run_experiment(c, pool, &serial_fps);

  std::vector<std::uint64_t> sharded_fps;
  c.shards = 4;
  const metrics::Report sharded = exp::run_experiment(c, pool, &sharded_fps);

  ASSERT_EQ(serial_fps.size(), 2u);
  EXPECT_EQ(serial_fps, sharded_fps);
  // Same records in, same aggregates out.
  EXPECT_EQ(serial.overall_missed_work().mean,
            sharded.overall_missed_work().mean);  // sda-lint: allow(FLOAT_EQ)
}

// --- fabric building blocks ------------------------------------------------

TEST(PathKey, LexicographicOrderIsDepthFirst) {
  sim::PathKey root;
  root.push(7);
  const sim::PathKey c0 = root.child(0);
  const sim::PathKey c1 = root.child(1);
  const sim::PathKey c0c0 = c0.child(0);
  // A parent's nested emissions sort between it and its next sibling —
  // exactly the serial engine's synchronous-call (depth-first) order.
  EXPECT_LT(root, c0);
  EXPECT_LT(c0, c0c0);
  EXPECT_LT(c0c0, c1);
  EXPECT_FALSE(c1 < c0);
  EXPECT_FALSE(root < root);
}

TEST(PathKey, PushBeyondMaxDepthThrows) {
  sim::PathKey k;
  for (int i = 0; i < sim::PathKey::kMaxDepth; ++i) k.push(1);
  EXPECT_THROW(k.push(1), std::logic_error);
}

TEST(CrossShardQueue, PreservesPushOrderAcrossRingAndSpill) {
  sim::CrossShardQueue q(4);  // tiny ring: force the spill path
  for (int i = 0; i < 10; ++i) {
    sim::Message m;
    m.deliver_at = static_cast<double>(i);
    q.push(std::move(m));
  }
  EXPECT_EQ(q.size(), 10u);
  std::vector<sim::Message> out;
  q.drain(out);
  ASSERT_EQ(out.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)].deliver_at,
              static_cast<double>(i));  // sda-lint: allow(FLOAT_EQ)
  }
  EXPECT_TRUE(q.empty());
  // Reusable after a drain.
  sim::Message m;
  m.deliver_at = 42.0;
  q.push(std::move(m));
  out.clear();
  q.drain(out);
  ASSERT_EQ(out.size(), 1u);
}

TEST(NodeStatusBoard, HalfOpenOutageIntervals) {
  sim::NodeStatusBoard board;
  board.reset(3);
  board.add_outage(1, 10.0, 20.0);
  board.add_outage(1, 30.0, 35.0);
  EXPECT_TRUE(board.is_up(1, 9.99));
  EXPECT_FALSE(board.is_up(1, 10.0));   // down_at inclusive
  EXPECT_FALSE(board.is_up(1, 19.99));
  EXPECT_TRUE(board.is_up(1, 20.0));    // up_at exclusive
  EXPECT_FALSE(board.is_up(1, 32.0));
  EXPECT_TRUE(board.is_up(0, 15.0));    // other nodes unaffected
  EXPECT_TRUE(board.is_up(99, 15.0));   // out of range -> up
}

TEST(Fabric, ShardMapAndStats) {
  sim::Fabric::Options fo;
  fo.lanes = 8;
  fo.shards = 3;
  sim::Fabric fabric(fo);
  EXPECT_EQ(fabric.control_lane(), 8);
  EXPECT_EQ(fabric.shard_of(8), 0);  // control lane -> shard 0
  EXPECT_EQ(fabric.shard_of(0), 0);
  EXPECT_EQ(fabric.shard_of(1), 1);
  EXPECT_EQ(fabric.shard_of(5), 2);
  EXPECT_EQ(&fabric.engine_for_lane(8), &fabric.control_engine());
  EXPECT_EQ(fabric.events_fired(), 0u);
  EXPECT_EQ(fabric.events_pending(), 0u);
}

}  // namespace
