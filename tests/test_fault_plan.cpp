// Unit tests for the materialized fault model: crash-plan generation,
// determinism, and the stream-per-node independence discipline.
#include "src/fault/fault_plan.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

using sda::fault::CrashInterval;
using sda::fault::FaultConfig;
using sda::fault::FaultPlan;
using sda::util::Rng;

TEST(FaultConfigTest, DefaultIsDisabled) {
  FaultConfig c;
  EXPECT_FALSE(c.enabled());
  c.subtask_failure_rate = 0.01;
  EXPECT_TRUE(c.enabled());
  c = FaultConfig{};
  c.crash_mean_uptime = 100.0;
  EXPECT_TRUE(c.enabled());
  c = FaultConfig{};
  c.msg_loss_rate = 0.05;
  EXPECT_TRUE(c.enabled());
  c = FaultConfig{};
  c.msg_extra_delay_mean = 0.5;
  EXPECT_TRUE(c.enabled());
}

TEST(FaultPlanTest, DefaultConfigYieldsEmptyPlan) {
  const FaultPlan plan = FaultPlan::generate(FaultConfig{}, 6, 1000.0, Rng(1));
  EXPECT_TRUE(plan.empty());
  EXPECT_TRUE(plan.crashes().empty());
}

TEST(FaultPlanTest, NoCrashesWhenUptimeZero) {
  FaultConfig c;
  c.subtask_failure_rate = 0.1;  // other fault classes on, crashes off
  const FaultPlan plan = FaultPlan::generate(c, 6, 1000.0, Rng(1));
  EXPECT_TRUE(plan.crashes().empty());
  EXPECT_FALSE(plan.empty());  // runtime rates still active
}

TEST(FaultPlanTest, RejectsInvalidArguments) {
  FaultConfig c;
  c.crash_mean_uptime = 100.0;  // downtime left at 0
  EXPECT_THROW(FaultPlan::generate(c, 6, 1000.0, Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::generate(FaultConfig{}, -1, 1000.0, Rng(1)),
               std::invalid_argument);
}

TEST(FaultPlanTest, IntervalsAreOrderedAndWithinHorizon) {
  FaultConfig c;
  c.crash_mean_uptime = 50.0;
  c.crash_mean_downtime = 5.0;
  const double horizon = 2000.0;
  const FaultPlan plan = FaultPlan::generate(c, 4, horizon, Rng(42));
  ASSERT_FALSE(plan.crashes().empty());
  double last_up = -1.0;
  int last_node = -1;
  for (const CrashInterval& iv : plan.crashes()) {
    EXPECT_GE(iv.node, 0);
    EXPECT_LT(iv.node, 4);
    EXPECT_GT(iv.down_at, 0.0);
    EXPECT_LT(iv.down_at, horizon);  // outages begin within the run
    EXPECT_GT(iv.up_at, iv.down_at);
    if (iv.node == last_node) {
      // Per node, intervals are disjoint and in time order.
      EXPECT_GT(iv.down_at, last_up);
    }
    last_node = iv.node;
    last_up = iv.up_at;
  }
}

TEST(FaultPlanTest, SameSeedSamePlan) {
  FaultConfig c;
  c.crash_mean_uptime = 80.0;
  c.crash_mean_downtime = 8.0;
  const FaultPlan a = FaultPlan::generate(c, 6, 5000.0, Rng(7));
  const FaultPlan b = FaultPlan::generate(c, 6, 5000.0, Rng(7));
  ASSERT_EQ(a.crashes().size(), b.crashes().size());
  for (std::size_t i = 0; i < a.crashes().size(); ++i) {
    EXPECT_EQ(a.crashes()[i].node, b.crashes()[i].node);
    EXPECT_DOUBLE_EQ(a.crashes()[i].down_at, b.crashes()[i].down_at);
    EXPECT_DOUBLE_EQ(a.crashes()[i].up_at, b.crashes()[i].up_at);
  }
}

TEST(FaultPlanTest, DifferentSeedsDifferentPlans) {
  FaultConfig c;
  c.crash_mean_uptime = 80.0;
  c.crash_mean_downtime = 8.0;
  const FaultPlan a = FaultPlan::generate(c, 6, 5000.0, Rng(7));
  const FaultPlan b = FaultPlan::generate(c, 6, 5000.0, Rng(8));
  bool differ = a.crashes().size() != b.crashes().size();
  for (std::size_t i = 0; !differ && i < a.crashes().size(); ++i) {
    differ = a.crashes()[i].down_at != b.crashes()[i].down_at;
  }
  EXPECT_TRUE(differ);
}

// The stream-per-node discipline (same one the workload sources use): node
// i's outage schedule must not change when more nodes are added, because
// each node draws from its own split() substream.
TEST(FaultPlanTest, PerNodeScheduleIndependentOfNodeCount) {
  FaultConfig c;
  c.crash_mean_uptime = 60.0;
  c.crash_mean_downtime = 6.0;
  const FaultPlan small = FaultPlan::generate(c, 2, 3000.0, Rng(99));
  const FaultPlan large = FaultPlan::generate(c, 8, 3000.0, Rng(99));
  auto outages_of = [](const FaultPlan& p, int node) {
    std::vector<CrashInterval> out;
    for (const CrashInterval& iv : p.crashes()) {
      if (iv.node == node) out.push_back(iv);
    }
    return out;
  };
  for (int node = 0; node < 2; ++node) {
    const auto a = outages_of(small, node);
    const auto b = outages_of(large, node);
    ASSERT_EQ(a.size(), b.size()) << "node " << node;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_DOUBLE_EQ(a[i].down_at, b[i].down_at);
      EXPECT_DOUBLE_EQ(a[i].up_at, b[i].up_at);
    }
  }
}

}  // namespace
