// End-to-end integration: every named scenario runs through the full stack
// (runner + PM + EDF nodes) and produces sane, strategy-sensitive results.
#include <gtest/gtest.h>

#include "src/exp/runner.hpp"
#include "src/metrics/task_class.hpp"
#include "src/workload/scenarios.hpp"

namespace {

using namespace sda;

class ScenarioIntegration
    : public ::testing::TestWithParam<workload::Scenario> {};

TEST_P(ScenarioIntegration, RunsCleanlyUnderBothSdaExtremes) {
  const workload::Scenario& scenario = GetParam();
  exp::ExperimentConfig c = exp::graph_config();
  c.stage_widths = scenario.stage_widths;
  c.sim_time = 15000.0;
  c.replications = 1;
  c.load = 0.55;

  const exp::RunResult naive = exp::run_once(c, 13);
  c.psp = "div-1";
  c.ssp = "eqf";
  const exp::RunResult tuned = exp::run_once(c, 13);

  for (const exp::RunResult* r : {&naive, &tuned}) {
    EXPECT_NEAR(r->mean_utilization, 0.55, 0.06) << scenario.name;
    const auto counts = r->collector.counts(metrics::global_class(0));
    EXPECT_GT(counts.finished, 50u) << scenario.name;
    EXPECT_LE(counts.missed, counts.finished);
  }
  // EQF-DIV1 never does meaningfully worse than UD-UD on globals, and for
  // multi-stage scenarios it should do clearly better.
  const double md_naive =
      naive.collector.counts(metrics::global_class(0)).miss_rate();
  const double md_tuned =
      tuned.collector.counts(metrics::global_class(0)).miss_rate();
  EXPECT_LE(md_tuned, md_naive + 0.02) << scenario.name;
  if (scenario.stage_widths.size() >= 3) {
    EXPECT_LT(md_tuned, md_naive) << scenario.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, ScenarioIntegration,
    ::testing::ValuesIn(workload::scenarios()),
    [](const ::testing::TestParamInfo<workload::Scenario>& param_info) {
      std::string name = param_info.param.name;
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

}  // namespace
