// Tests for the trace subsystem and the whole-run determinism fingerprint.
#include "src/metrics/trace.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "src/exp/runner.hpp"
#include "src/sched/edf.hpp"
#include "src/sim/engine.hpp"

namespace {

using namespace sda;
using metrics::TraceEvent;
using metrics::Tracer;
using metrics::TraceRecord;

TEST(Tracer, RecordsInOrder) {
  Tracer t;
  t.add(TraceRecord{1.0, TraceEvent::kSubmitted, 7, 0, 2, 5.0});
  t.add(TraceRecord{2.0, TraceEvent::kStarted, 7, 0, 2, 5.0});
  t.add(TraceRecord{3.0, TraceEvent::kCompleted, 7, 0, 2, 5.0});
  ASSERT_EQ(t.records().size(), 3u);
  EXPECT_EQ(t.total(), 3u);
  EXPECT_EQ(t.records()[1].event, TraceEvent::kStarted);
}

TEST(Tracer, RingBufferEvictsOldButKeepsFingerprint) {
  Tracer bounded(2);
  Tracer unbounded;
  for (int i = 0; i < 10; ++i) {
    const TraceRecord rec{static_cast<double>(i), TraceEvent::kSubmitted,
                          static_cast<std::uint64_t>(i + 1), 0, 0, 1.0};
    bounded.add(rec);
    unbounded.add(rec);
  }
  EXPECT_EQ(bounded.records().size(), 2u);
  EXPECT_EQ(bounded.total(), 10u);
  EXPECT_DOUBLE_EQ(bounded.records().front().time, 8.0);
  // Eviction never changes the fingerprint.
  EXPECT_EQ(bounded.fingerprint(), unbounded.fingerprint());
}

TEST(Tracer, FingerprintSensitiveToContent) {
  Tracer a, b;
  a.add(TraceRecord{1.0, TraceEvent::kStarted, 7, 0, 2, 5.0});
  b.add(TraceRecord{1.0, TraceEvent::kStarted, 8, 0, 2, 5.0});  // task differs
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(Tracer, ClearResets) {
  Tracer t;
  const auto empty_fp = t.fingerprint();
  t.add(TraceRecord{});
  t.clear();
  EXPECT_EQ(t.records().size(), 0u);
  EXPECT_EQ(t.total(), 0u);
  EXPECT_EQ(t.fingerprint(), empty_fp);
}

TEST(Tracer, RenderMentionsEventsAndIds) {
  Tracer t;
  t.add(TraceRecord{1.5, TraceEvent::kAborted, 42, 9, 3, 5.0});
  const std::string out = t.render();
  EXPECT_NE(out.find("abort"), std::string::npos);
  EXPECT_NE(out.find("task=42"), std::string::npos);
  EXPECT_NE(out.find("run=9"), std::string::npos);
  EXPECT_NE(out.find("node=3"), std::string::npos);
}

TEST(Tracer, EventNames) {
  EXPECT_STREQ(to_string(TraceEvent::kSubmitted), "submit");
  EXPECT_STREQ(to_string(TraceEvent::kGlobalAborted), "global-abort");
}

TEST(NodeObserver, LifecycleSequence) {
  sim::Engine engine;
  sched::Node node(engine, std::make_unique<sched::EdfScheduler>(), {});
  std::vector<sched::Node::Event> events;
  node.set_observer([&](sched::Node::Event e, const task::SimpleTask&) {
    events.push_back(e);
  });
  node.submit(task::make_local_task(1, 0, 0.0, 1.0, 5.0));
  engine.run();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0], sched::Node::Event::kSubmitted);
  EXPECT_EQ(events[1], sched::Node::Event::kStarted);
  EXPECT_EQ(events[2], sched::Node::Event::kCompleted);
}

TEST(NodeObserver, AbortEventOnExternalAbort) {
  sim::Engine engine;
  sched::Node node(engine, std::make_unique<sched::EdfScheduler>(), {});
  std::vector<sched::Node::Event> events;
  node.set_observer([&](sched::Node::Event e, const task::SimpleTask&) {
    events.push_back(e);
  });
  auto t = task::make_local_task(1, 0, 0.0, 10.0, 5.0);
  node.submit(t);
  engine.at(1.0, [&] { node.abort(*t); });
  engine.run();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events.back(), sched::Node::Event::kAborted);
}

TEST(RunDeterminism, SameSeedSameFingerprint) {
  exp::ExperimentConfig c = exp::baseline_config();
  c.sim_time = 3000.0;
  c.psp = "div-1";
  Tracer a(64), b(64);
  exp::run_once(c, 42, &a);
  exp::run_once(c, 42, &b);
  EXPECT_GT(a.total(), 10000u);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.total(), b.total());
}

TEST(RunDeterminism, DifferentSeedDifferentFingerprint) {
  exp::ExperimentConfig c = exp::baseline_config();
  c.sim_time = 1000.0;
  Tracer a(64), b(64);
  exp::run_once(c, 1, &a);
  exp::run_once(c, 2, &b);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(RunDeterminism, StrategyChangesTrace) {
  exp::ExperimentConfig c = exp::baseline_config();
  c.sim_time = 1000.0;
  Tracer a(64), b(64);
  exp::run_once(c, 1, &a);
  c.psp = "gf";
  exp::run_once(c, 1, &b);
  EXPECT_NE(a.fingerprint(), b.fingerprint());  // deadlines differ
}

}  // namespace
