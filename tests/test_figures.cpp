// Smoke tests for the figure helpers (tiny runs; shape checks only live in
// the bench binaries, which use longer horizons).
#include "src/exp/figures.hpp"

#include <gtest/gtest.h>

#include "src/metrics/task_class.hpp"

namespace {

using namespace sda;
using namespace sda::exp;

TEST(Linspace, Basics) {
  const auto v = linspace(0.0, 1.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v.front(), 0.0);
  EXPECT_DOUBLE_EQ(v[2], 0.5);
  EXPECT_DOUBLE_EQ(v.back(), 1.0);
  EXPECT_EQ(linspace(3.0, 9.0, 1), std::vector<double>{3.0});
  EXPECT_THROW(linspace(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Figures, DefaultLoadsCoverIntermediateToHigh) {
  const auto loads = figures::default_loads();
  ASSERT_GE(loads.size(), 5u);
  EXPECT_DOUBLE_EQ(loads.front(), 0.3);
  EXPECT_GE(loads.back(), 0.8);
  for (std::size_t i = 1; i < loads.size(); ++i) {
    EXPECT_GT(loads[i], loads[i - 1]);
  }
  // Contains 0.5, the anchor for all in-text checks.
  EXPECT_NE(std::find(loads.begin(), loads.end(), 0.5), loads.end());
}

TEST(Figures, ApplyBenchEnv) {
  util::BenchEnv env;
  env.sim_time = 777.0;
  env.replications = 5;
  env.warmup_fraction = 0.1;
  env.seed = 31;
  ExperimentConfig c = baseline_config();
  figures::apply_bench_env(c, env);
  EXPECT_DOUBLE_EQ(c.sim_time, 777.0);
  EXPECT_EQ(c.replications, 5);
  EXPECT_DOUBLE_EQ(c.warmup_fraction, 0.1);
  EXPECT_EQ(c.seed, 31u);
}

TEST(Figures, SweepAppliesVariable) {
  ExperimentConfig base = baseline_config();
  base.sim_time = 2000.0;
  base.replications = 1;
  const auto points =
      sweep(base, {0.3, 0.6},
            [](ExperimentConfig& c, double load) { c.load = load; });
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0].x, 0.3);
  EXPECT_DOUBLE_EQ(points[1].x, 0.6);
  // Higher load, higher local miss rate even on a tiny run.
  EXPECT_LT(figures::md(points[0], metrics::kLocalClass),
            figures::md(points[1], metrics::kLocalClass) + 0.05);
}

TEST(Figures, LoadSweepProducesOneSeriesPerStrategy) {
  ExperimentConfig base = baseline_config();
  base.sim_time = 2000.0;
  base.replications = 1;
  const auto series =
      figures::load_sweep(base, {{"ud", "ud"}, {"div-1", "ud"}}, {0.5});
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].psp, "ud");
  EXPECT_EQ(series[1].psp, "div-1");
  ASSERT_EQ(series[0].points.size(), 1u);
  EXPECT_GT(series[0].points[0].report.summary(metrics::kLocalClass)
                .finished_total,
            0u);
}

TEST(Figures, PooledGlobalMd) {
  ExperimentConfig base = baseline_config();
  base.sim_time = 4000.0;
  base.replications = 1;
  base.n_min = 2;
  base.n_max = 6;
  const auto points = sweep(base, {0.5},
                            [](ExperimentConfig& c, double l) { c.load = l; });
  const double pooled = figures::md_global_pooled(points[0]);
  EXPECT_GT(pooled, 0.0);
  EXPECT_LT(pooled, 1.0);
  // Pooled MD lies between the extreme per-n MDs.
  const double md2 = figures::md(points[0], metrics::global_class(2));
  const double md6 = figures::md(points[0], metrics::global_class(6));
  EXPECT_GE(pooled, std::min(md2, md6) - 1e-9);
  EXPECT_LE(pooled, std::max(md2, md6) + 1e-9);
}

TEST(Figures, MdHelpersOnUnknownClass) {
  ExperimentConfig base = baseline_config();
  base.sim_time = 1000.0;
  base.replications = 1;
  const auto points = sweep(base, {0.5},
                            [](ExperimentConfig& c, double l) { c.load = l; });
  EXPECT_DOUBLE_EQ(figures::md(points[0], 9999), 0.0);
  EXPECT_DOUBLE_EQ(figures::md_hw(points[0], 9999), 0.0);
}

}  // namespace
