// Feasibility tests, the overload state machine, the bounded retry
// queue, and the SDA plan cache (core/admission, core/plan_cache).
#include "src/core/admission.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "src/task/notation.hpp"
#include "src/task/tree.hpp"

namespace {

using namespace sda;
using core::AdmissionConfig;
using core::AdmissionController;
using core::AdmissionDecision;
using core::AdmissionOutcome;
using core::LedgerJob;
using core::OverloadState;

LedgerJob job(double release, double deadline, double demand) {
  LedgerJob j;
  j.ticket = 0;
  j.release = release;
  j.deadline = deadline;
  j.demand = demand;
  return j;
}

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

// --- the per-node feasibility battery ------------------------------------

TEST(FeasibilityTests, UtilizationBoundCountsDensity) {
  std::vector<LedgerJob> jobs = {job(0, 10, 5), job(0, 10, 4)};  // 0.9
  EXPECT_TRUE(core::utilization_test(jobs, 0.0, 1.0));
  jobs.push_back(job(0, 10, 2));  // 1.1
  EXPECT_FALSE(core::utilization_test(jobs, 0.0, 1.0));
  EXPECT_TRUE(core::utilization_test({}, 0.0, 1.0));
}

TEST(FeasibilityTests, UtilizationClampsReleaseToNow) {
  // Window [0, 10] looks wide, but at now = 8 only 2 units remain for
  // 4 units of demand.
  std::vector<LedgerJob> jobs = {job(0, 10, 4)};
  EXPECT_TRUE(core::utilization_test(jobs, 0.0, 1.0));
  EXPECT_FALSE(core::utilization_test(jobs, 8.0, 1.0));
}

TEST(FeasibilityTests, CompletionTimeIsExactWhereDensityIsConservative) {
  // Density 0.9 + 0.5 = 1.4 fails the bound, yet EDF trivially meets
  // both deadlines: the short job runs 0..1, the long one 1..10.
  std::vector<LedgerJob> jobs = {job(0, 10, 9), job(0, 2, 1)};
  EXPECT_FALSE(core::utilization_test(jobs, 0.0, 1.0));
  EXPECT_TRUE(core::completion_time_test(jobs, 0.0));
  EXPECT_TRUE(core::scheduling_point_test(jobs, 0.0));
}

TEST(FeasibilityTests, CompletionTimeCatchesOverload) {
  std::vector<LedgerJob> jobs = {job(0, 10, 9), job(0, 2, 2.5)};
  EXPECT_FALSE(core::completion_time_test(jobs, 0.0));
  EXPECT_FALSE(core::scheduling_point_test(jobs, 0.0));
}

TEST(FeasibilityTests, CompletionTimeHandlesFutureReleasesAndPreemption) {
  // A runs 0..3, B preempts (earlier deadline) 3..5, A resumes 5..8.
  std::vector<LedgerJob> ok = {job(0, 10, 6), job(3, 5, 2)};
  EXPECT_TRUE(core::completion_time_test(ok, 0.0));
  EXPECT_TRUE(core::scheduling_point_test(ok, 0.0));

  // Two staged jobs fill [2, 4]; a third cannot also fit there.
  std::vector<LedgerJob> staged = {job(0, 4, 2), job(2, 4, 2)};
  EXPECT_TRUE(core::completion_time_test(staged, 0.0));
  staged.push_back(job(2, 4, 2));
  EXPECT_FALSE(core::completion_time_test(staged, 0.0));
  EXPECT_FALSE(core::scheduling_point_test(staged, 0.0));
}

TEST(FeasibilityTests, ExactTestsAgreeOnABattery) {
  // The completion-time walk and the processor-demand criterion are both
  // exact for independent preemptive-EDF jobs: same verdict everywhere.
  const std::vector<std::vector<LedgerJob>> batteries = {
      {job(0, 4, 2), job(1, 6, 2), job(2, 9, 3)},
      {job(0, 4, 2), job(1, 6, 3), job(2, 9, 3)},
      {job(0, 1, 1), job(0, 2, 1), job(0, 3, 1), job(0, 4, 1)},
      {job(0, 1, 1), job(0, 2, 1), job(0, 3, 1), job(0, 3.5, 1)},
      {job(5, 9, 4), job(0, 5, 5)},
      {job(5, 8.5, 4), job(0, 5, 5)},
  };
  for (std::size_t i = 0; i < batteries.size(); ++i) {
    EXPECT_EQ(core::completion_time_test(batteries[i], 0.0),
              core::scheduling_point_test(batteries[i], 0.0))
        << "battery " << i;
  }
}

// --- the admission controller --------------------------------------------

AdmissionConfig make_config(int nodes = 2) {
  AdmissionConfig a;
  a.node_count = nodes;
  a.queue_capacity = 1;
  return a;
}

task::TreePtr tree_of(const std::string& notation) {
  return task::parse_notation(notation);
}

TEST(AdmissionController, AdmitsUntilCapacityThenRejects) {
  AdmissionController c(make_config());
  const auto t1 = tree_of("a@0:4/4");
  const AdmissionOutcome first = c.decide(*t1, 0.0, 5.0, 1);
  EXPECT_EQ(first.decision, AdmissionDecision::kAdmit);
  ASSERT_EQ(first.plan.size(), 1u);
  EXPECT_EQ(bits(first.plan[0].virtual_deadline), bits(5.0));

  // A second identical task cannot also fit 4 units before t=5.
  const AdmissionOutcome second = c.decide(*t1, 0.0, 5.0, 2);
  EXPECT_EQ(second.decision, AdmissionDecision::kReject);
  EXPECT_EQ(c.stats().admitted, 1u);
  EXPECT_EQ(c.stats().rejected, 1u);
  EXPECT_EQ(c.ledger_size(), 1u);

  // An independent node is unaffected.
  const auto t2 = tree_of("b@1:4/4");
  EXPECT_EQ(c.decide(*t2, 0.0, 5.0, 3).decision, AdmissionDecision::kAdmit);
}

TEST(AdmissionController, ShedsNegativeSlackOutright) {
  AdmissionController c(make_config());
  const auto t = tree_of("a@0:4/4");
  const AdmissionOutcome out = c.decide(*t, 0.0, 3.0, 1);
  EXPECT_EQ(out.decision, AdmissionDecision::kShed);
  EXPECT_STREQ(out.reason, "negative-slack");
  EXPECT_EQ(c.ledger_size(), 0u);
}

TEST(AdmissionController, RetirementFreesCapacity) {
  AdmissionController c(make_config());
  const auto t = tree_of("a@0:4/4");
  EXPECT_EQ(c.decide(*t, 0.0, 5.0, 1).decision, AdmissionDecision::kAdmit);
  EXPECT_EQ(c.decide(*t, 0.0, 5.0, 2).decision, AdmissionDecision::kReject);
  c.on_finished(1);  // the run completed early
  EXPECT_EQ(c.decide(*t, 0.0, 5.0, 3).decision, AdmissionDecision::kAdmit);
}

TEST(AdmissionController, DeadlineExpiryFreesCapacity) {
  AdmissionController c(make_config());
  const auto t = tree_of("a@0:4/4");
  EXPECT_EQ(c.decide(*t, 0.0, 5.0, 1).decision, AdmissionDecision::kAdmit);
  EXPECT_EQ(c.decide(*t, 0.0, 5.0, 2).decision, AdmissionDecision::kReject);
  // Past t=5 the first reservation is dead; a fresh window admits.
  EXPECT_EQ(c.decide(*t, 6.0, 11.0, 3).decision, AdmissionDecision::kAdmit);
}

TEST(AdmissionController, SerialPlansPartitionTheWindow) {
  // EQS splits the slack across stages, so both ledger jobs carry
  // non-degenerate windows and the serial tree admits.
  AdmissionConfig cfg = make_config();
  cfg.ssp = "eqs";
  AdmissionController c(cfg);
  const auto t = tree_of("[a@0:2/2 b@1:3/3]");
  const AdmissionOutcome out = c.decide(*t, 0.0, 10.0, 1);
  EXPECT_EQ(out.decision, AdmissionDecision::kAdmit);
  ASSERT_EQ(out.plan.size(), 2u);
  EXPECT_GT(out.plan[1].planned_dispatch, 0.0);
  EXPECT_LT(out.plan[0].virtual_deadline, 10.0);
  EXPECT_EQ(bits(out.plan[1].virtual_deadline), bits(10.0));
  EXPECT_EQ(c.ledger_size(), 2u);
}

/// Drives pressure with alpha = 1 (no smoothing) so the state at every
/// decision is a pure function of the ledger left by the previous ones.
AdmissionConfig hysteresis_config() {
  AdmissionConfig a = make_config(2);
  a.pressure_alpha = 1.0;
  a.enter_degraded = 0.70;
  a.exit_degraded = 0.55;
  a.enter_shedding = 0.90;
  a.exit_shedding = 0.70;
  return a;
}

TEST(AdmissionController, HysteresisWalksNormalDegradedSheddingAndBack) {
  AdmissionController c(hysteresis_config());
  const auto t = tree_of("w@0:2/2");  // density 0.2 in a 10-wide window
  // Five admissions load node 0 to density 1.0 (10 units due by t=10).
  for (std::uint64_t i = 1; i <= 5; ++i) {
    EXPECT_EQ(c.decide(*t, 0.0, 10.0, i).decision, AdmissionDecision::kAdmit)
        << "admission " << i;
  }
  // Decision 5 saw the 0.8-density ledger: already degraded.
  EXPECT_EQ(c.state(), OverloadState::kDegraded);
  EXPECT_EQ(c.stats().to_degraded, 1u);

  // The next decision sees density 1.0: shedding, and the candidate is
  // shed (no headroom left).
  const AdmissionOutcome shed = c.decide(*t, 0.0, 10.0, 6);
  EXPECT_EQ(c.state(), OverloadState::kShedding);
  EXPECT_EQ(shed.decision, AdmissionDecision::kShed);
  EXPECT_EQ(c.stats().to_shedding, 1u);

  // After the reservations expire the pressure collapses and the machine
  // recovers all the way to normal.
  EXPECT_EQ(c.decide(*t, 11.0, 21.0, 7).decision, AdmissionDecision::kAdmit);
  EXPECT_EQ(c.state(), OverloadState::kNormal);
  EXPECT_EQ(c.stats().to_normal, 1u);
}

TEST(AdmissionController, DegradedStateStretchesInfeasibleDeadlines) {
  AdmissionConfig cfg = hysteresis_config();
  cfg.degrade_stretch = 1.5;
  AdmissionController c(cfg);
  // Load node 1 to density 0.8 so the machine degrades without touching
  // node 0, where the candidate runs.
  const auto w = tree_of("w@1:2/2");
  for (std::uint64_t i = 1; i <= 4; ++i) {
    ASSERT_EQ(c.decide(*w, 0.0, 10.0, i).decision, AdmissionDecision::kAdmit);
  }
  const auto existing = tree_of("x@0:2/2");
  ASSERT_EQ(c.decide(*existing, 0.0, 10.0, 5).decision,
            AdmissionDecision::kAdmit);
  EXPECT_EQ(c.state(), OverloadState::kDegraded);

  // 6 units in a 7-wide window next to the existing 0.2 density fails
  // the utilization bound at the submitted deadline, but fits once the
  // window is stretched to 10.5.
  const auto cand = tree_of("a@0:6/6");
  const AdmissionOutcome out = c.decide(*cand, 0.0, 7.0, 6);
  EXPECT_EQ(out.decision, AdmissionDecision::kAdmitDegraded);
  EXPECT_STREQ(out.reason, "stretched-deadline");
  EXPECT_EQ(bits(out.deadline), bits(10.5));
  EXPECT_EQ(c.stats().admitted_degraded, 1u);
}

TEST(AdmissionController, BoundedQueueBackpressureAndPump) {
  AdmissionController c(make_config());  // queue_capacity = 1
  EXPECT_EQ(c.submit(tree_of("a@0:4/4"), 0.0, 5.0, 1).queued, false);

  // Second submission is infeasible now -> parked, no decision yet.
  const auto parked = c.submit(tree_of("a@0:4/4"), 0.0, 5.0, 2);
  EXPECT_TRUE(parked.queued);
  EXPECT_EQ(c.queue_depth(), 1u);
  EXPECT_EQ(c.stats().queued, 1u);

  // Queue full -> immediate backpressure decision.
  const auto rejected = c.submit(tree_of("a@0:4/4"), 0.0, 5.0, 3);
  EXPECT_FALSE(rejected.queued);
  EXPECT_EQ(rejected.outcome.decision, AdmissionDecision::kBackpressure);
  EXPECT_EQ(c.stats().backpressure, 1u);
  EXPECT_EQ(c.stats().queue_high_water, 1u);

  // Retiring the first run frees capacity; pump resolves the parked one.
  c.on_finished(1);
  const auto resolved = c.pump(0.5);
  ASSERT_EQ(resolved.size(), 1u);
  EXPECT_EQ(resolved[0].first, 2u);
  EXPECT_EQ(resolved[0].second.decision, AdmissionDecision::kAdmit);
  EXPECT_EQ(c.queue_depth(), 0u);
}

TEST(AdmissionController, PumpShedsExpiredAndFlushResolvesEverything) {
  AdmissionController c(make_config());
  ASSERT_FALSE(c.submit(tree_of("a@0:4/4"), 0.0, 5.0, 1).queued);
  ASSERT_TRUE(c.submit(tree_of("a@0:4/4"), 0.0, 5.0, 2).queued);

  // By t=2 the parked task's 4 units no longer fit before t=5.
  const auto resolved = c.pump(2.0);
  ASSERT_EQ(resolved.size(), 1u);
  EXPECT_EQ(resolved[0].second.decision, AdmissionDecision::kShed);
  EXPECT_STREQ(resolved[0].second.reason, "queued-slack-expired");

  ASSERT_TRUE(c.submit(tree_of("a@0:4/4"), 2.0, 7.0, 3).queued);
  const auto flushed = c.flush(2.0);
  ASSERT_EQ(flushed.size(), 1u);
  EXPECT_EQ(flushed[0].first, 3u);
  EXPECT_EQ(flushed[0].second.decision, AdmissionDecision::kShed);
  EXPECT_STREQ(flushed[0].second.reason, "flushed");
  EXPECT_EQ(c.queue_depth(), 0u);
}

// --- the plan cache -------------------------------------------------------

TEST(PlanCache, KeySeparatesShapesNodesAndDemands) {
  const auto a = tree_of("[a@0:2/2 || b@1:3/3]");
  const auto b = tree_of("[a@0:2/2 b@1:3/3]");    // serial, same leaves
  const auto c = tree_of("[a@2:2/2 || b@1:3/3]"); // different node
  const auto d = tree_of("[a@0:2/2.5 || b@1:3/3]");  // different pex
  EXPECT_NE(core::plan_cache_key(*a, 5.0), core::plan_cache_key(*b, 5.0));
  EXPECT_NE(core::plan_cache_key(*a, 5.0), core::plan_cache_key(*c, 5.0));
  EXPECT_NE(core::plan_cache_key(*a, 5.0), core::plan_cache_key(*d, 5.0));
  EXPECT_NE(core::plan_cache_key(*a, 5.0), core::plan_cache_key(*a, 5.5));
  EXPECT_EQ(core::plan_cache_key(*a, 5.0),
            core::plan_cache_key(*task::clone(*a), 5.0));
}

TEST(PlanCache, CachedPlansAreBitIdenticalToFresh) {
  // Same submission sequence through a caching and a non-caching
  // controller: every outcome must match bit for bit (the fingerprint
  // guarantee the serve path relies on).
  AdmissionConfig with = make_config();
  with.ssp = "eqs";  // partitioning SSP: the serial stages admit
  AdmissionConfig without = with;
  without.plan_cache = false;
  AdmissionController cached(with);
  AdmissionController fresh(without);

  const auto t = tree_of("[a@0:1.25/1.25 || [b@1:0.7/0.7 c@1:0.9/0.9]]");
  // Integer arrivals keep now + 6.5 - now bit-exact, so every lookup
  // reuses the one cached (shape, relative-deadline) entry.
  const double times[] = {0.0, 3.0, 9.0, 12.0};
  std::uint64_t ticket = 1;
  for (const double now : times) {
    const AdmissionOutcome lhs = cached.decide(*t, now, now + 6.5, ticket);
    const AdmissionOutcome rhs = fresh.decide(*t, now, now + 6.5, ticket);
    ++ticket;
    EXPECT_EQ(lhs.decision, rhs.decision);
    ASSERT_EQ(lhs.plan.size(), rhs.plan.size());
    for (std::size_t i = 0; i < lhs.plan.size(); ++i) {
      EXPECT_EQ(bits(lhs.plan[i].planned_dispatch),
                bits(rhs.plan[i].planned_dispatch));
      EXPECT_EQ(bits(lhs.plan[i].virtual_deadline),
                bits(rhs.plan[i].virtual_deadline));
    }
  }
  // Identical (shape, relative deadline) pairs hit after the first miss.
  EXPECT_EQ(cached.cache_stats().misses, 1u);
  EXPECT_EQ(cached.cache_stats().hits, 3u);
  EXPECT_EQ(fresh.cache_stats().hits, 0u);
  EXPECT_EQ(fresh.cache_stats().misses, 0u);
}

TEST(PlanCache, LruEvictionIsCountedAndBounded) {
  AdmissionConfig cfg = make_config();
  cfg.plan_cache_capacity = 2;
  AdmissionController c(cfg);
  const auto t = tree_of("a@0:0.5/0.5");
  std::uint64_t ticket = 1;
  // Three distinct relative deadlines cycle through a 2-entry cache.
  for (int round = 0; round < 2; ++round) {
    for (const double rel : {4.0, 5.0, 6.0}) {
      (void)c.decide(*t, 0.0, rel, ticket++);
    }
  }
  const core::PlanCache::Stats stats = c.cache_stats();
  EXPECT_EQ(stats.hits, 0u);  // LRU thrashes on a cyclic scan
  EXPECT_EQ(stats.misses, 6u);
  EXPECT_GE(stats.evictions, 4u);
}

}  // namespace
