// Tests for the Poisson / interrupted-Poisson arrival sampler.
#include "src/workload/arrivals.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/util/stats.hpp"

namespace {

using sda::util::Rng;
using sda::workload::InterarrivalSampler;

TEST(Arrivals, Validation) {
  EXPECT_THROW(InterarrivalSampler(-1.0), std::invalid_argument);
  EXPECT_THROW(InterarrivalSampler(1.0, 0.5), std::invalid_argument);
  EXPECT_THROW(InterarrivalSampler(1.0, 2.0, 0.0), std::invalid_argument);
  Rng rng(1);
  InterarrivalSampler zero_rate(0.0);
  EXPECT_THROW(zero_rate.next(rng), std::logic_error);
}

TEST(Arrivals, PoissonPathMatchesPlainExponential) {
  // burst_factor == 1 must consume exactly one exponential per arrival so
  // existing seeds reproduce the paper benches bit-for-bit.
  Rng a(7), b(7);
  InterarrivalSampler s(0.4);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_DOUBLE_EQ(s.next(a), b.exponential(1.0 / 0.4));
  }
}

TEST(Arrivals, MeanRatePreservedAcrossBurstFactors) {
  for (double factor : {1.0, 2.0, 4.0, 8.0}) {
    Rng rng(11);
    InterarrivalSampler s(0.5, factor, 40.0);
    double t = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) t += s.next(rng);
    const double measured_rate = n / t;
    EXPECT_NEAR(measured_rate, 0.5, 0.02) << "factor " << factor;
  }
}

TEST(Arrivals, BurstinessRaisesCountVariance) {
  // Index of dispersion of counts in windows of 20 time units: ~1 for
  // Poisson, substantially larger for the IPP.
  auto dispersion = [](double factor) {
    Rng rng(13);
    InterarrivalSampler s(0.5, factor, 40.0);
    const double window = 20.0;
    sda::util::RunningStat counts;
    double t = 0.0;
    int in_window = 0;
    double window_end = window;
    for (int i = 0; i < 300000; ++i) {
      t += s.next(rng);
      while (t >= window_end) {
        counts.add(in_window);
        in_window = 0;
        window_end += window;
      }
      ++in_window;
    }
    return counts.variance() / counts.mean();
  };
  const double poisson = dispersion(1.0);
  const double bursty = dispersion(8.0);
  EXPECT_NEAR(poisson, 1.0, 0.15);
  EXPECT_GT(bursty, 2.5 * poisson);
}

TEST(Arrivals, GapsAreNonNegative) {
  Rng rng(17);
  InterarrivalSampler s(1.0, 6.0, 10.0);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(s.next(rng), 0.0);
}

}  // namespace
