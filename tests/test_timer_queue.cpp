// Pluggable timer-queue backends (src/sim/timer_queue.*, timer_wheel.*):
// the contract is that "heap" (the pooled 4-ary min-heap) and "wheel"
// (the hierarchical timing wheel) are observationally identical — same
// pop order, same EventId handles, same run fingerprints — under any
// push/cancel/reschedule/pop sequence.  The differential tests below
// drive both backends with one op stream and compare everything the
// Engine could observe; the fingerprint tests close the loop end-to-end
// through ExperimentConfig's `timer_queue=` key, serial and sharded.
//
// This test runs under ThreadSanitizer in scripts/check_sanitizers.sh
// (the tsan ctest preset includes it), so keep the horizons short.
#include "src/sim/timer_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/exp/config.hpp"
#include "src/exp/runner.hpp"
#include "src/metrics/trace.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace sda;
using sim::EventId;
using sim::Time;
using sim::TimerQueue;

std::unique_ptr<TimerQueue> make(const std::string& name) {
  return sim::make_timer_queue(name);
}

// --- wheel basics ----------------------------------------------------------

TEST(TimerWheel, EmptyInitially) {
  auto q = make("wheel");
  EXPECT_TRUE(q->empty());
  EXPECT_EQ(q->size(), 0u);
  EXPECT_STREQ(q->backend_name(), "wheel");
}

TEST(TimerWheel, PopsInTimeOrder) {
  auto q = make("wheel");
  std::vector<int> fired;
  q->push(3.0, [&] { fired.push_back(3); });
  q->push(1.0, [&] { fired.push_back(1); });
  q->push(2.0, [&] { fired.push_back(2); });
  while (!q->empty()) q->pop().second();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(TimerWheel, EqualTimesFifo) {
  auto q = make("wheel");
  std::vector<int> fired;
  for (int i = 0; i < 32; ++i) {
    q->push(5.0, [&fired, i] { fired.push_back(i); });
  }
  while (!q->empty()) q->pop().second();
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
  }
}

TEST(TimerWheel, CancelPreventsFiring) {
  auto q = make("wheel");
  bool fired = false;
  const EventId id = q->push(1.0, [&] { fired = true; });
  q->push(2.0, [] {});
  EXPECT_TRUE(q->pending(id));
  EXPECT_TRUE(q->cancel(id));
  EXPECT_FALSE(q->pending(id));
  EXPECT_FALSE(q->cancel(id));  // already cancelled
  EXPECT_EQ(q->size(), 1u);
  EXPECT_DOUBLE_EQ(q->peek_time(), 2.0);
  while (!q->empty()) q->pop().second();
  EXPECT_FALSE(fired);
}

TEST(TimerWheel, PeekDoesNotRemove) {
  auto q = make("wheel");
  q->push(7.0, [] {});
  EXPECT_DOUBLE_EQ(q->peek_time(), 7.0);
  EXPECT_EQ(q->size(), 1u);
}

TEST(TimerWheel, DrainAndReuseReseeds) {
  // Draining the wheel must let the next population re-seed its origin and
  // bucket width; a second, much later batch still pops in order.
  auto q = make("wheel");
  for (int round = 0; round < 3; ++round) {
    const double base = 1e3 * round * round;  // widely different scales
    for (int i = 9; i >= 0; --i) q->push(base + i * 0.125, [] {});
    double last = -1.0;
    while (!q->empty()) {
      auto [t, fn] = q->pop();
      EXPECT_GE(t, last);
      last = t;
      fn();
    }
  }
}

TEST(TimerWheel, FarFutureOverflowCascades) {
  // Events far beyond the top wheel level land in the overflow list and
  // must still come out in global time order.
  auto q = make("wheel");
  std::vector<double> popped;
  q->push(1.0, [] {});
  q->push(1e9, [] {});
  q->push(5e4, [] {});
  q->push(2.0, [] {});
  while (!q->empty()) popped.push_back(q->pop().first);
  EXPECT_EQ(popped, (std::vector<double>{1.0, 2.0, 5e4, 1e9}));
}

// --- differential: heap vs wheel -------------------------------------------

/// Drives both backends with one operation stream and asserts every
/// observable matches: push handles, pending(), cancel results, pop times,
/// pop order (via tokens), sizes.
class Differential {
 public:
  Differential() : heap_(make("heap")), wheel_(make("wheel")) {}

  EventId push(Time t) {
    const int token = next_token_++;
    const EventId h = heap_->push(t, [this, token] { heap_fired_.push_back(token); });
    const EventId w =
        wheel_->push(t, [this, token] { wheel_fired_.push_back(token); });
    EXPECT_EQ(h.value, w.value) << "push handles diverged at token " << token;
    live_.push_back(h);
    return h;
  }

  void cancel_random(util::Rng& rng) {
    if (live_.empty()) return;
    const std::size_t i = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(live_.size()) - 1));
    const EventId id = live_[i];
    EXPECT_EQ(heap_->pending(id), wheel_->pending(id));
    EXPECT_EQ(heap_->cancel(id), wheel_->cancel(id));
    live_.erase(live_.begin() + static_cast<std::ptrdiff_t>(i));
  }

  /// Reschedule = cancel + push at a new time (the Engine's idiom).
  void reschedule_random(util::Rng& rng, Time new_time) {
    cancel_random(rng);
    push(new_time);
  }

  void pop_one() {
    ASSERT_EQ(heap_->empty(), wheel_->empty());
    if (heap_->empty()) return;
    EXPECT_DOUBLE_EQ(heap_->peek_time(), wheel_->peek_time());
    auto [ht, hfn] = heap_->pop();
    auto [wt, wfn] = wheel_->pop();
    EXPECT_EQ(ht, wt);
    hfn();
    wfn();
    ASSERT_FALSE(heap_fired_.empty());
    ASSERT_FALSE(wheel_fired_.empty());
    EXPECT_EQ(heap_fired_.back(), wheel_fired_.back());
  }

  void drain() {
    while (!heap_->empty() || !wheel_->empty()) pop_one();
    EXPECT_EQ(heap_fired_, wheel_fired_);
  }

  void check_sizes() const {
    EXPECT_EQ(heap_->size(), wheel_->size());
    EXPECT_EQ(heap_->empty(), wheel_->empty());
  }

 private:
  std::unique_ptr<TimerQueue> heap_;
  std::unique_ptr<TimerQueue> wheel_;
  std::vector<EventId> live_;
  std::vector<int> heap_fired_;
  std::vector<int> wheel_fired_;
  int next_token_ = 0;
};

/// Clustered deadlines: bursts of near-equal times (the admission front
/// door's retry storms) stress the FIFO-on-tie path and bucket sweeps.
TEST(TimerQueueDifferential, ClusteredDeadlines) {
  util::Rng rng(0xc1a5ULL);
  Differential d;
  double now = 0.0;
  for (int round = 0; round < 60; ++round) {
    const double center = now + rng.exponential(5.0);
    const int burst = static_cast<int>(rng.uniform_int(1, 12));
    for (int i = 0; i < burst; ++i) {
      // Half the burst lands on the exact same double.
      const double jitter = rng.bernoulli(0.5) ? 0.0 : rng.uniform(0.0, 1e-3);
      d.push(center + jitter);
    }
    if (rng.bernoulli(0.3)) d.cancel_random(rng);
    if (rng.bernoulli(0.2)) d.reschedule_random(rng, center + rng.uniform01());
    const int pops = static_cast<int>(rng.uniform_int(0, burst));
    for (int i = 0; i < pops; ++i) d.pop_one();
    d.check_sizes();
    now = center;
  }
  d.drain();
}

/// Heavy-tailed deadlines: most events near now, occasional events orders
/// of magnitude out — exercises overflow, cascade, and width adaptation.
TEST(TimerQueueDifferential, HeavyTailedDeadlines) {
  util::Rng rng(0x7a11ULL);
  Differential d;
  double now = 0.0;
  for (int round = 0; round < 50; ++round) {
    const int n = static_cast<int>(rng.uniform_int(1, 8));
    for (int i = 0; i < n; ++i) {
      // Pareto-ish: u^-2 spans ~[1, 1e6).
      const double u = rng.uniform(1e-3, 1.0);
      d.push(now + 0.01 / (u * u));
    }
    if (rng.bernoulli(0.4)) d.cancel_random(rng);
    if (rng.bernoulli(0.25)) {
      const double u = rng.uniform(1e-3, 1.0);
      d.reschedule_random(rng, now + 0.01 / (u * u));
    }
    const int pops = static_cast<int>(rng.uniform_int(0, 3));
    for (int i = 0; i < pops; ++i) d.pop_one();
    d.check_sizes();
    now += rng.exponential(1.0);
  }
  d.drain();
}

/// Full random soak with all operations mixed, including complete drains
/// mid-sequence (forcing the wheel to re-seed at a new origin).
TEST(TimerQueueDifferential, RandomSoakWithDrains) {
  util::Rng rng(0x5eedULL);
  Differential d;
  double now = 0.0;
  for (int op = 0; op < 2500; ++op) {
    const double r = rng.uniform01();
    if (r < 0.45) {
      d.push(now + rng.exponential(3.0));
    } else if (r < 0.6) {
      d.cancel_random(rng);
    } else if (r < 0.7) {
      d.reschedule_random(rng, now + rng.exponential(3.0));
    } else if (r < 0.98) {
      d.pop_one();
    } else {
      d.drain();  // occasional full drain + re-seed
      now += rng.exponential(100.0);
    }
    d.check_sizes();
  }
  d.drain();
}

// --- registry ---------------------------------------------------------------

TEST(TimerQueueRegistry, ListsBuiltins) {
  const std::vector<std::string> names = sim::list_timer_queue_names();
  ASSERT_GE(names.size(), 2u);
  EXPECT_NE(std::find(names.begin(), names.end(), "heap"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "wheel"), names.end());
}

TEST(TimerQueueRegistry, CaseInsensitive) {
  EXPECT_STREQ(make("HEAP")->backend_name(), "heap");
  EXPECT_STREQ(make("Wheel")->backend_name(), "wheel");
}

TEST(TimerQueueRegistry, UnknownNameListsBackendsAndSuggests) {
  try {
    make("whel");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("heap"), std::string::npos) << what;
    EXPECT_NE(what.find("wheel"), std::string::npos) << what;
  }
}

// --- end-to-end fingerprint identity ----------------------------------------

std::uint64_t fingerprint_of(exp::ExperimentConfig c, const std::string& tq,
                             int shards, std::uint64_t seed) {
  c.timer_queue = tq;
  c.shards = shards;
  metrics::Tracer tracer(1);  // rolling fingerprint only
  (void)exp::run_once(c, seed, &tracer);
  return tracer.fingerprint();
}

/// The backend is a pure implementation detail: a run's trace fingerprint
/// must be bit-identical under heap and wheel, serially and sharded.
TEST(TimerQueueFingerprint, HeapAndWheelIdentical) {
  exp::ExperimentConfig c = exp::baseline_config();
  c.sim_time = 60.0;  // short horizon: this also runs under TSan
  c.k = 8;
  c.replications = 1;
  for (const std::uint64_t seed : {1ULL, 42ULL}) {
    const std::uint64_t heap_serial = fingerprint_of(c, "heap", 1, seed);
    const std::uint64_t wheel_serial = fingerprint_of(c, "wheel", 1, seed);
    EXPECT_EQ(heap_serial, wheel_serial) << "serial, seed=" << seed;
    const std::uint64_t heap_sharded = fingerprint_of(c, "heap", 4, seed);
    const std::uint64_t wheel_sharded = fingerprint_of(c, "wheel", 4, seed);
    EXPECT_EQ(heap_sharded, wheel_sharded) << "shards=4, seed=" << seed;
    EXPECT_EQ(heap_serial, heap_sharded) << "heap serial vs sharded, seed=" << seed;
  }
}

}  // namespace
