// Transient overload, made visible (paper §5: "it is the occasional
// experience of transient overload that accounts for most of the missed
// deadlines").
//
// We assemble the baseline system by hand, drive its local streams with a
// bursty (interrupted-Poisson) arrival process at the same *mean* load, and
// chart the global-task miss rate over time.  The long quiet stretches and
// violent spikes show why the paper evaluates strategies at moderate mean
// loads: it is the storms that kill deadlines, and DIV-1 blunts them.
#include <cstdio>
#include <memory>
#include <vector>

#include "src/core/process_manager.hpp"
#include "src/metrics/timeseries.hpp"
#include "src/sched/edf.hpp"
#include "src/util/ascii_chart.hpp"
#include "src/workload/global_source.hpp"
#include "src/workload/local_source.hpp"
#include "src/workload/rates.hpp"

namespace {

using namespace sda;

constexpr double kHorizon = 20000.0;
constexpr double kWindow = 500.0;

metrics::MissTimeSeries run_storm(const char* psp_name, double burst_factor,
                                  std::uint64_t seed) {
  sim::Engine engine;
  util::Rng master(seed);
  metrics::MissTimeSeries series(kHorizon, kWindow);

  std::vector<std::unique_ptr<sched::Node>> nodes;
  std::vector<sched::Node*> node_ptrs;
  for (int i = 0; i < 6; ++i) {
    sched::Node::Config nc;
    nc.index = i;
    nodes.push_back(std::make_unique<sched::Node>(
        engine, std::make_unique<sched::EdfScheduler>(), nc));
    node_ptrs.push_back(nodes.back().get());
  }

  core::ProcessManager::Config pc;
  pc.psp = core::make_psp_strategy(psp_name);
  pc.ssp = core::make_ssp_strategy("ud");
  core::ProcessManager pm(engine, node_ptrs, std::move(pc));
  pm.set_global_handler([&](const core::GlobalTaskRecord& r) {
    series.record(r.arrival, r.missed);
  });

  metrics::Collector scratch;  // local sources need one for abort timers
  for (auto& n : nodes) {
    n->set_completion_handler([&](const task::TaskPtr& t) {
      if (t->kind == task::TaskKind::kSubtask) pm.handle_completion(t);
    });
  }

  workload::RateParams rp;  // baseline Table 1 rates at load 0.5
  const workload::Rates rates = workload::solve_rates(rp);
  std::vector<std::unique_ptr<workload::LocalSource>> locals;
  for (int i = 0; i < 6; ++i) {
    workload::LocalSource::Config lc;
    lc.lambda = rates.lambda_local;
    lc.id_base = (static_cast<std::uint64_t>(i) + 1) << 40;
    lc.burst_factor = burst_factor;
    lc.burst_cycle = 400.0;  // storms last a few hundred time units
    locals.push_back(std::make_unique<workload::LocalSource>(
        engine, *nodes[static_cast<std::size_t>(i)], scratch, master.split(),
        lc));
    locals.back()->start();
  }
  workload::ParallelGlobalSource::Config gc;
  gc.lambda = rates.lambda_global;
  workload::ParallelGlobalSource globals(engine, pm, master.split(), gc);
  globals.start();

  engine.run_until(kHorizon);
  return series;
}

}  // namespace

int main() {
  std::printf("overload storms: bursty locals (mean load 0.5, burst x3)\n\n");

  const auto calm = run_storm("ud", 1.0, 7);
  const auto storm_ud = run_storm("ud", 3.0, 7);
  const auto storm_div = run_storm("div-1", 3.0, 7);

  sda::util::AsciiChart chart(72, 18);
  chart.set_labels("time", "MD_global per 500-unit window");
  auto add = [&](const char* name, char marker,
                 const sda::metrics::MissTimeSeries& s) {
    sda::util::Series series{name, marker, {}, {}};
    for (std::size_t i = 0; i < s.windows(); ++i) {
      series.xs.push_back(s.window_start(i));
      series.ys.push_back(s.miss_rate(i));
    }
    chart.add(std::move(series));
  };
  add("poisson UD", 'p', calm);
  add("bursty UD", 'U', storm_ud);
  add("bursty DIV-1", 'D', storm_div);
  std::printf("%s\n", chart.render().c_str());

  auto stormy_windows = [](const sda::metrics::MissTimeSeries& s) {
    int n = 0;
    for (std::size_t i = 0; i < s.windows(); ++i) {
      if (s.finished(i) >= 5 && s.miss_rate(i) > 0.5) ++n;
    }
    return n;
  };
  std::printf("peak window MD_global:  poisson/UD %.0f%%   bursty/UD %.0f%%"
              "   bursty/DIV-1 %.0f%%\n",
              100 * calm.peak_miss_rate(), 100 * storm_ud.peak_miss_rate(),
              100 * storm_div.peak_miss_rate());
  std::printf("windows with >50%% global misses:  poisson/UD %d   "
              "bursty/UD %d   bursty/DIV-1 %d  (of %zu)\n",
              stormy_windows(calm), stormy_windows(storm_ud),
              stormy_windows(storm_div), calm.windows());
  std::printf("(same mean load everywhere — only the arrival variability"
              " differs; §5's point exactly.)\n");
  return 0;
}
