// General-purpose experiment driver: configure any system/workload/strategy
// combination from the command line, run it, and print per-class results
// (optionally exporting a load sweep as CSV).
//
// Examples:
//   run_experiment --psp div-1 --load 0.6
//   run_experiment --scenario stock-trading --ssp eqf --psp div-1
//   run_experiment --psp gf --sweep-load 0.3:0.9:7 --csv out.csv
//   run_experiment --k 8 --n 6 --frac-local 0.5 --pm-abort
//   run_experiment --help
#include <cstdio>
#include <exception>

#include "src/exp/csv.hpp"
#include "src/exp/runner.hpp"
#include "src/exp/sweep.hpp"
#include "src/exp/validate.hpp"
#include "src/metrics/task_class.hpp"
#include "src/util/flags.hpp"
#include "src/util/table.hpp"
#include "src/workload/scenarios.hpp"

namespace {

using namespace sda;

void print_usage() {
  std::printf(
      "usage: run_experiment [flags]\n"
      "  system:    --k N  --policy edf|fifo|spt|llf  --preemptive\n"
      "  strategy:  --psp ud|div-<x>|gf  --ssp ud|ed|eqs|eqf\n"
      "  abortion:  --pm-abort  --local-abort  --non-abortable\n"
      "  workload:  --load X  --frac-local X  --n N  --n-min A --n-max B\n"
      "             --scenario NAME  --placement uniform|least-queued\n"
      "             --exec-spread S  --pex-noise F  --burst B\n"
      "             --links L  --msg-time T   (scenario workloads only)\n"
      "             --service-dist exponential|deterministic|uniform|hyperexp\n"
      "             --service-cv CV            (hyperexp only)\n"
      "  run:       --sim-time T  --reps R  --seed S  --warmup F\n"
      "  sweep:     --sweep-load LO:HI:STEPS   --csv FILE\n"
      "  misc:      --scenarios (list)  --help\n");
}

std::vector<double> parse_sweep(const std::string& spec) {
  // "lo:hi:steps"
  const auto c1 = spec.find(':');
  const auto c2 = spec.find(':', c1 + 1);
  if (c1 == std::string::npos || c2 == std::string::npos) {
    throw std::invalid_argument("--sweep-load wants LO:HI:STEPS");
  }
  const double lo = std::stod(spec.substr(0, c1));
  const double hi = std::stod(spec.substr(c1 + 1, c2 - c1 - 1));
  const int steps = std::stoi(spec.substr(c2 + 1));
  return exp::linspace(lo, hi, steps);
}

void print_report(const metrics::Report& report) {
  util::Table table({"class", "MD", "missed work", "finished"});
  for (int cls : report.classes()) {
    const metrics::ClassSummary s = report.summary(cls);
    table.add_row({metrics::default_class_name(cls),
                   s.miss_rate.n >= 2
                       ? util::fmt_pct_ci(s.miss_rate.mean,
                                          s.miss_rate.half_width)
                       : util::fmt_pct(s.miss_rate.mean),
                   util::fmt_pct(s.missed_work_rate.mean),
                   std::to_string(s.finished_total)});
  }
  std::printf("%s", table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Flags flags(argc, argv);
    if (flags.has("help")) {
      print_usage();
      return 0;
    }
    if (flags.has("scenarios")) {
      for (const auto& s : workload::scenarios()) {
        std::printf("%-14s %s\n", s.name.c_str(), s.description.c_str());
      }
      return 0;
    }

    exp::ExperimentConfig c = exp::baseline_config();
    c.k = static_cast<int>(flags.get_int("k", c.k));
    c.scheduler_policy = flags.get_string("policy", c.scheduler_policy);
    c.preemptive = flags.get_bool("preemptive", c.preemptive);
    c.psp = flags.get_string("psp", c.psp);
    c.ssp = flags.get_string("ssp", c.ssp);
    if (flags.get_bool("pm-abort")) {
      c.pm_abort = core::PmAbortMode::kRealDeadline;
    }
    if (flags.get_bool("local-abort")) {
      c.local_abort = sched::LocalAbortPolicy::kAbortOnVirtualDeadline;
    }
    c.subtasks_non_abortable = flags.get_bool("non-abortable");
    c.load = flags.get_double("load", c.load);
    c.frac_local = flags.get_double("frac-local", c.frac_local);
    if (flags.has("n")) {
      c.n_min = c.n_max = static_cast<int>(flags.get_int("n", c.n_min));
    }
    c.n_min = static_cast<int>(flags.get_int("n-min", c.n_min));
    c.n_max = static_cast<int>(flags.get_int("n-max", c.n_max));
    if (flags.has("scenario")) {
      const workload::Scenario& s =
          workload::find_scenario(flags.get_string("scenario"));
      c.global_kind = exp::GlobalKind::kGraph;
      c.stage_widths = s.stage_widths;
    }
    c.placement = flags.get_string("placement", c.placement);
    c.subtask_exec_spread =
        flags.get_double("exec-spread", c.subtask_exec_spread);
    c.local_burst_factor = flags.get_double("burst", c.local_burst_factor);
    c.link_count = static_cast<int>(flags.get_int("links", c.link_count));
    c.mean_msg_time = flags.get_double("msg-time", c.mean_msg_time);
    c.service_dist = flags.get_string("service-dist", c.service_dist);
    c.service_cv = flags.get_double("service-cv", c.service_cv);
    if (flags.has("pex-noise")) {
      c.pex = workload::PexModel::log_uniform(
          flags.get_double("pex-noise", 2.0));
    }
    c.sim_time = flags.get_double("sim-time", c.sim_time);
    c.replications = static_cast<int>(flags.get_int("reps", c.replications));
    c.seed = static_cast<std::uint64_t>(
        flags.get_int("seed", static_cast<std::int64_t>(c.seed)));
    c.warmup_fraction = flags.get_double("warmup", c.warmup_fraction);

    const std::string sweep_spec = flags.get_string("sweep-load");
    const std::string csv_path = flags.get_string("csv");

    for (const std::string& flag : flags.unused()) {
      std::fprintf(stderr, "warning: unknown flag --%s (see --help)\n",
                   flag.c_str());
    }

    // Fail fast with every problem listed, not just the first.
    const auto problems = exp::validate(c);
    if (!problems.empty()) {
      for (const auto& p : problems) {
        std::fprintf(stderr, "config error: %s\n", p.c_str());
      }
      return 2;
    }

    std::printf("system: %s\n\n", c.describe().c_str());
    if (sweep_spec.empty()) {
      print_report(exp::run_experiment(c));
      return 0;
    }

    const auto loads = parse_sweep(sweep_spec);
    const auto points = exp::sweep(
        c, loads, [](exp::ExperimentConfig& cfg, double l) { cfg.load = l; });
    for (const auto& p : points) {
      std::printf("== load %.3f ==\n", p.x);
      print_report(p.report);
      std::printf("\n");
    }
    if (!csv_path.empty()) {
      const std::string csv = exp::sweep_to_csv(points, "load");
      if (exp::write_text_file(csv_path, csv)) {
        std::printf("wrote %s\n", csv_path.c_str());
      } else {
        std::fprintf(stderr, "error: cannot write %s\n", csv_path.c_str());
        return 1;
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
