// The paper's motivating application (Sections 1 and 8): stock-market
// analysis and program trading as a five-stage serial-parallel task,
//
//   [init  [gather x4]  analysis  [act x4]  conclude]     (Figure 14)
//
// run against the Table 1 system with every SSP x PSP combination of
// Table 2.  This is the Figure 15 experiment as an application narrative:
// it prints, for each SDA strategy, how often a trading opportunity
// "completes within its 2-minute window".
#include <cstdio>

#include "src/exp/config.hpp"
#include "src/exp/runner.hpp"
#include "src/metrics/task_class.hpp"

int main() {
  using namespace sda;

  exp::ExperimentConfig config = exp::graph_config();
  config.load = 0.6;           // a busy trading day
  config.sim_time = 50000.0;
  config.replications = 2;

  std::printf("stock-trading pipeline: %s\n", config.describe().c_str());
  std::printf("stages: (1) init, (2) gather info from 4 sources, "
              "(3) analysis, (4) 4 buy/sell actions, (5) conclude\n\n");

  struct Combo {
    const char* label;
    const char* ssp;
    const char* psp;
  };
  const Combo combos[] = {
      {"UD-UD    (naive end-to-end deadline everywhere)", "ud", "ud"},
      {"UD-DIV1  (parallel stages promoted)", "ud", "div-1"},
      {"EQF-UD   (serial stages budgeted)", "eqf", "ud"},
      {"EQF-DIV1 (both, the paper's recommendation)", "eqf", "div-1"},
  };

  std::printf("%-52s  %-18s  %-12s\n", "SDA strategy (SSP-PSP)",
              "trades on time", "locals on time");
  for (const Combo& combo : combos) {
    config.ssp = combo.ssp;
    config.psp = combo.psp;
    const metrics::Report report = exp::run_experiment(config);
    const double trade_md =
        report.summary(metrics::global_class(0)).miss_rate.mean;
    const double local_md =
        report.summary(metrics::kLocalClass).miss_rate.mean;
    std::printf("%-52s  %13.1f%%     %9.1f%%\n", combo.label,
                100.0 * (1.0 - trade_md), 100.0 * (1.0 - local_md));
  }

  std::printf(
      "\npaper (Fig 15): the two strategies complement each other —"
      " together they keep\nglobal misses close to local misses up to"
      " load ~0.6.\n");
  return 0;
}
