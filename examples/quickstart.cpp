// Quickstart: reproduce the paper's headline observation in ~30 lines of
// API use.
//
// We simulate the Table 1 baseline system (6 EDF nodes, 75% local work,
// 4-way parallel global tasks) at load 0.5 twice — once with the naive
// Ultimate Deadline assignment and once with DIV-1 — and print the
// missed-deadline rates.  Expected shape (paper §6.1): under UD the global
// miss rate is ~3x the local one (~25% vs ~9%); DIV-1 roughly halves the
// global miss rate at a small cost to locals.
#include <cstdio>

#include "src/exp/config.hpp"
#include "src/exp/runner.hpp"
#include "src/metrics/task_class.hpp"

int main() {
  using namespace sda;

  exp::ExperimentConfig config = exp::baseline_config();  // Table 1
  config.load = 0.5;
  config.sim_time = 100000.0;

  std::printf("system: %s\n\n", config.describe().c_str());
  std::printf("%-8s  %-10s  %-10s  %-10s\n", "PSP", "MD_local", "MD_subtask",
              "MD_global");

  for (const char* psp : {"ud", "div-1", "gf"}) {
    config.psp = psp;
    const metrics::Report report = exp::run_experiment(config);
    const auto local = report.summary(metrics::kLocalClass).miss_rate;
    const auto subtask = report.summary(metrics::kSubtaskClass).miss_rate;
    const auto global = report.summary(metrics::global_class(4)).miss_rate;
    std::printf("%-8s  %9.1f%%  %9.1f%%  %9.1f%%\n", psp, 100 * local.mean,
                100 * subtask.mean, 100 * global.mean);
  }

  std::printf(
      "\npaper (Figs 5-7, load 0.5): UD ~ 8.9%% / 7.1%% / 25%%;"
      " DIV-1 ~ 11.7%% / - / 13%%; GF lowers MD_global further.\n");
  return 0;
}
