// Command-line tool over the task-notation and offline-SDA APIs: parse a
// serial-parallel task expression, print its structure and critical path,
// and show the virtual deadlines each strategy pair would hand out.
//
// Usage:
//   notation_tool '<notation>' <deadline> [psp] [ssp]
//   notation_tool                       # runs a built-in demo (Figure 1)
//
// Example:
//   notation_tool '[T1@0:1 [T2@1:2 || T3@2:4] T4@0:1]' 16 div-1 eqf
#include <cstdio>
#include <cstdlib>
#include <exception>

#include "src/core/sda.hpp"
#include "src/task/notation.hpp"

namespace {

using namespace sda;

void describe(const std::string& text, double deadline,
              const std::string& psp_name, const std::string& ssp_name) {
  const task::TreePtr tree = task::parse_notation(text);
  if (const std::string why = task::validate(*tree); !why.empty()) {
    std::printf("warning: %s (deadline planning still shown)\n", why.c_str());
  }

  std::printf("task:           %s\n", task::to_notation(*tree).c_str());
  std::printf("subtasks:       %d   depth: %d\n", task::leaf_count(*tree),
              task::depth(*tree));
  std::printf("total work:     %.3f (predicted %.3f)\n", task::total_ex(*tree),
              task::total_pex(*tree));
  std::printf("critical path:  %.3f (predicted %.3f)\n",
              task::critical_path_ex(*tree), task::critical_path_pex(*tree));
  std::printf("deadline:       %.3f  =>  end-to-end slack %.3f\n", deadline,
              deadline - task::critical_path_ex(*tree));

  const auto psp = core::make_psp_strategy(psp_name);
  const auto ssp = core::make_ssp_strategy(ssp_name);
  const auto plan = core::plan_assignment(*tree, 0.0, deadline, *psp, *ssp);

  std::printf("\nplanned assignment under PSP=%s, SSP=%s (optimistic plan):\n",
              psp->name().c_str(), ssp->name().c_str());
  std::printf("  %-10s %-6s %10s %10s %12s\n", "subtask", "node", "dispatch",
              "deadline", "virt. slack");
  for (const auto& a : plan) {
    std::printf("  %-10s %-6d %10.3f %10.3f %12.3f\n",
                a.leaf->name.empty() ? "T" : a.leaf->name.c_str(),
                a.leaf->exec_node, a.planned_dispatch, a.virtual_deadline,
                a.virtual_deadline - a.planned_dispatch - a.leaf->pred_exec);
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc == 1) {
      std::printf("demo: the paper's Figure 1 task, unit demands\n\n");
      describe(
          "[T1@0:1 [T2@1:1 || [T3@2:1 T4@3:1 T5@4:1]] [T6@5:1 || T7@0:1] "
          "T8@1:1]",
          18.0, "div-1", "eqf");
      std::printf("\n(run with: notation_tool '<notation>' <deadline> "
                  "[psp] [ssp])\n");
      return 0;
    }
    if (argc < 3) {
      std::fprintf(stderr,
                   "usage: %s '<notation>' <deadline> [psp=div-1] [ssp=eqf]\n",
                   argv[0]);
      return 2;
    }
    const double deadline = std::strtod(argv[2], nullptr);
    describe(argv[1], deadline, argc > 3 ? argv[3] : "div-1",
             argc > 4 ? argv[4] : "eqf");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
