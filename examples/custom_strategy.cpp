// Extending the library with a user-defined PSP strategy, and assembling a
// system from the lower-level building blocks (Engine / Node / Process-
// Manager) instead of the exp::Runner convenience layer.
//
// The custom strategy, "SlackShare", splits the composite's *slack* (rather
// than its whole allowance) across branches proportionally to each branch's
// predicted demand:
//
//   dl(T_i) = ar(T) + pex(T_i) + [dl(T) - ar(T) - max_j pex(T_j)] / n
//
// i.e. a PSP analogue of EQF's "budget execution + share the slack" idea —
// something the paper's Section 9 hints at but never evaluates.
//
// The strategy plugs into the library through core::register_psp: once
// registered, "slackshare" is a first-class name — make_psp_strategy
// builds it, ExperimentConfig::set("psp", "slackshare") accepts it, and
// `sda_run psp=slackshare` works — without touching library code.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "src/core/process_manager.hpp"
#include "src/metrics/collector.hpp"
#include "src/sched/edf.hpp"
#include "src/workload/global_source.hpp"
#include "src/workload/local_source.hpp"
#include "src/workload/rates.hpp"

namespace {

using namespace sda;

/// PSP strategy: per-branch execution budget plus an even slack share.
class SlackShare final : public core::PspStrategy {
 public:
  core::Time assign(const core::PspContext& ctx, int /*branch*/,
                    core::Time branch_pex) const override {
    // Approximate the composite's own demand by the largest branch we have
    // seen so far is not available here; use branch_pex for the branch's
    // budget and share the remaining allowance evenly.
    const core::Time slack =
        ctx.deadline - ctx.now - branch_pex;  // branch-local view
    return ctx.now + branch_pex +
           std::max(0.0, slack) / static_cast<double>(ctx.branch_count);
  }
  std::string name() const override { return "SlackShare"; }
};

double run(std::shared_ptr<const core::PspStrategy> psp, std::uint64_t seed,
           double* local_md) {
  sim::Engine engine;
  util::Rng master(seed);
  constexpr int kNodes = 6;
  constexpr double kLoad = 0.6, kFracLocal = 0.75;

  std::vector<std::unique_ptr<sched::Node>> nodes;
  std::vector<sched::Node*> node_ptrs;
  for (int i = 0; i < kNodes; ++i) {
    sched::Node::Config nc;
    nc.index = i;
    nodes.push_back(std::make_unique<sched::Node>(
        engine, std::make_unique<sched::EdfScheduler>(), nc));
    node_ptrs.push_back(nodes.back().get());
  }

  core::ProcessManager::Config pc;
  pc.psp = std::move(psp);
  pc.ssp = core::make_ssp_strategy("ud");
  core::ProcessManager pm(engine, node_ptrs, std::move(pc));

  metrics::Collector collector;
  collector.set_warmup(2000.0);
  pm.set_global_handler(
      [&](const core::GlobalTaskRecord& r) { collector.record_global(r); });
  for (auto& n : nodes) {
    n->set_completion_handler([&](const task::TaskPtr& t) {
      if (t->kind == task::TaskKind::kLocal) {
        collector.record_simple(*t);
      } else {
        pm.handle_completion(t);
      }
    });
  }

  workload::RateParams rp;
  rp.k = kNodes;
  rp.load = kLoad;
  rp.frac_local = kFracLocal;
  const auto rates = workload::solve_rates(rp);

  std::vector<std::unique_ptr<workload::LocalSource>> locals;
  for (int i = 0; i < kNodes; ++i) {
    workload::LocalSource::Config lc;
    lc.lambda = rates.lambda_local;
    lc.id_base = (static_cast<std::uint64_t>(i) + 1) << 40;
    locals.push_back(std::make_unique<workload::LocalSource>(
        engine, *nodes[static_cast<std::size_t>(i)], collector,
        master.split(), lc));
    locals.back()->start();
  }
  workload::ParallelGlobalSource::Config gc;
  gc.lambda = rates.lambda_global;
  workload::ParallelGlobalSource globals(engine, pm, master.split(), gc);
  globals.start();

  engine.run_until(40000.0);
  *local_md = collector.counts(metrics::kLocalClass).miss_rate();
  return collector.counts(metrics::global_class(4)).miss_rate();
}

}  // namespace

int main() {
  // Register once, up front (registration is not thread-safe against
  // concurrent lookups).  From here on "slackshare" behaves exactly like a
  // built-in name.
  core::register_psp("slackshare",
                     [](const std::string&) -> std::unique_ptr<core::PspStrategy> {
                       return std::make_unique<SlackShare>();
                     });

  std::printf("custom PSP strategy demo (6 EDF nodes, load 0.6, n=4)\n\n");
  std::printf("registered PSP strategies:");
  for (const std::string& name : core::list_psp_strategies()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n\n%-12s  %-10s  %-10s\n", "strategy", "MD_global", "MD_local");
  for (const char* name : {"ud", "div-1", "gf", "slackshare"}) {
    double local_md = 0.0;
    const double md = run(core::make_psp_strategy(name), 1, &local_md);
    std::printf("%-12s  %9.1f%%  %9.1f%%\n", name, md * 100, local_md * 100);
  }
  std::printf("\nSlackShare uses per-branch pex to budget execution time —"
              "\nsomething UD/DIV-x/GF never look at.\n");
  return 0;
}
