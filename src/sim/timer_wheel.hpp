// The "wheel" timer-queue backend: a hierarchical timing wheel / calendar
// queue over the shared slot slab.
//
// Absolute times are quantized to integer ticks (floor(t / width)).  Two
// wheel levels of kWheelSize buckets each — level 0 holds one tick per
// bucket, level 1 holds kWheelSize ticks per bucket — cover a span of
// kWheelSize^2 ticks from the epoch base; everything beyond parks in an
// unsorted overflow list.  A small exactly-ordered "ready heap" (same
// 4-ary layout and (time, sequence) comparator as the heap backend) fronts
// the wheels: a bucket's entries move into it when the bucket's tick range
// is reached, and pushes landing below the sweep boundary go straight in.
// Per-level occupancy bitmaps make advancing over empty buckets O(1).
//
//   push    — O(1): bind a slot, append to a bucket (or the ready heap)
//   cancel  — O(1): free the slot; the bucket entry becomes an orphan,
//             dropped when its bucket is swept (or skimmed off the ready
//             heap), exactly the heap backend's lazy-cancel discipline
//   pop     — amortized O(1) + O(log r) on the small ready heap
//
// When both wheel levels drain, the overflow list re-seeds the epoch: a
// new base tick at the earliest overflow time and a new bucket width
// adapted to the observed spacing (10th..90th percentile span / count), so
// clustered and heavy-tailed deadline mixes both keep buckets shallow.
//
// Determinism: the ready heap orders by the exact (time, insertion
// sequence) key and a bucket is always swept before any entry it could
// contain may pop, so pop order — and, through detail::SlotPool, every
// EventId — is bit-identical to the heap backend's.
#pragma once

#include <cstdint>
#include <vector>

#include "src/sim/timer_queue.hpp"

namespace sda::sim {

class TimerWheel final : public TimerQueue, private detail::SlotPool {
 public:
  EventId push(Time t, EventFn fn) override;
  bool cancel(EventId id) override;
  bool pending(EventId id) const noexcept override {
    return find_live(id) != nullptr;
  }
  bool empty() const noexcept override { return live_ == 0; }
  std::size_t size() const noexcept override { return live_; }
  Time peek_time() const override;
  Popped pop_slot() override;
  void validate() const override;
  const char* backend_name() const noexcept override { return "wheel"; }

  using TimerQueue::pop;
  using TimerQueue::slot_of;

 private:
  static constexpr std::uint32_t kWheelSize = 256;  // buckets per level
  static constexpr std::uint32_t kWords = kWheelSize / 64;

  /// Tick of @p t under the current width, saturated so non-finite or
  /// astronomically distant times still classify (into overflow) without
  /// integer overflow.
  std::int64_t tick_of(Time t) const noexcept;

  std::int64_t win0_start() const noexcept {
    return base_tick_ + static_cast<std::int64_t>(j0_) * kWheelSize;
  }

  /// Routes one live entry to the ready heap, a wheel bucket, or overflow.
  void place(const HeapEntry& e);

  /// Establishes a fresh epoch anchored at @p t (first push, or first push
  /// after a full drain).
  void seed(Time t);

  /// Rebuilds the epoch from the overflow list: new base at the earliest
  /// live overflow time, width adapted to the observed spacing, every
  /// overflow entry re-placed.  Requires both wheel levels empty.
  void reseed_from_overflow();

  /// Moves the live entries of level-0 bucket @p i into the ready heap.
  void sweep_level0(std::uint32_t i);
  /// Expands level-1 bucket @p j into level 0.
  void cascade_level1(std::uint32_t j);

  /// Advances wheels until the ready heap's top is provably the global
  /// minimum (or the queue is empty).  The workhorse behind peek/pop.
  void ensure_front();

  /// Drops orphaned (cancelled) entries off the ready heap's root.
  void skim_ready() noexcept;

  /// First set bucket >= @p from, or kWheelSize when none.
  static std::uint32_t scan(const std::uint64_t* bits,
                            std::uint32_t from) noexcept;

  bool entry_live(const HeapEntry& e) const noexcept {
    return slot_at(entry_slot(e.key)).key == e.key;
  }

  // Ready-heap primitives (4-ary, identical ordering to the heap backend).
  void ready_push(const HeapEntry& e);
  void ready_sift_up(std::size_t pos) noexcept;
  void ready_sift_down(std::size_t pos) noexcept;
  void ready_pop_root() noexcept;

  /// Clears every bucket and the epoch after the last live event pops, so
  /// the next push re-seeds instead of draining through a stale window.
  void clear_drained() noexcept;

  void oracle_after_mutation();

  bool seeded_ = false;
  double width_ = 0.0625;       ///< bucket granularity in time units
  std::int64_t base_tick_ = 0;  ///< first tick of the level-1 span
  std::uint32_t j0_ = 0;        ///< level-1 bucket expanded into level 0
  std::uint32_t swept0_ = 0;    ///< level-0 buckets already swept

  std::vector<HeapEntry> level0_[kWheelSize];
  std::vector<HeapEntry> level1_[kWheelSize];
  std::uint64_t bits0_[kWords] = {};
  std::uint64_t bits1_[kWords] = {};
  std::vector<HeapEntry> overflow_;
  std::vector<HeapEntry> ready_;
};

}  // namespace sda::sim
