// Cancellable pending-event set for the discrete-event engine.
//
// Storage is a slab of pooled slots addressed by generation-tagged
// EventId handles, plus a 4-ary min-heap of (time, sequence) keys.  The
// layout buys three things over the earlier binary-heap + unordered_set
// design:
//
//  * pending()/cancel() resolve a handle in O(1) — decode slot index,
//    compare the slot's key — with no hashing on the hot push/pop path;
//  * cancel() destroys the callable *eagerly*, so a cancelled timer's
//    captures (tasks, shared_ptrs) are released on the spot instead of
//    lingering until the entry would have surfaced; only an inert
//    16-byte heap entry remains, skimmed away when it reaches the root;
//  * steady-state operation is allocation-free: freed slots are recycled
//    through a free list and callables with small captures live inline in
//    their slot (see inline_fn.hpp).
//
// Cache discipline: a heap entry is 16 bytes (time + packed sequence/slot
// word), a slot is exactly one 64-byte cache line, and slots live in
// fixed chunks with stable addresses — growing the slab never relocates a
// stored callable, and heap sifts touch only the contiguous entry array
// (no per-move back-pointer maintenance).
//
// Ordering is (time, insertion sequence), so simultaneous events fire in
// FIFO order — essential for reproducible runs.  Generation tags make
// stale handles (fired, cancelled, or recycled slots) harmlessly inert.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "src/sim/inline_fn.hpp"

namespace sda::sim {

/// Simulation timestamps. The paper's unit is the mean local-task execution
/// time (mu_local = 1).
using Time = double;

/// Callback executed when an event fires.
using EventFn = InlineFn;

/// Opaque handle identifying a scheduled event; used for cancellation.
/// Packs (generation << 32 | slot + 1); a handle outlives its event
/// harmlessly because the slot's generation moves on when it is freed.
struct EventId {
  std::uint64_t value = 0;

  friend bool operator==(EventId a, EventId b) noexcept {
    return a.value == b.value;
  }
  /// A default-constructed id never names a live event.
  explicit operator bool() const noexcept { return value != 0; }
};

/// Priority queue of timed callbacks with O(log n) push/pop, O(1) cancel
/// (amortized — each cancelled entry is skimmed from the heap exactly
/// once), and O(1) pending().
class EventQueue {
 public:
  /// Schedules @p fn at absolute time @p t; returns a handle for cancel().
  EventId push(Time t, EventFn fn);

  /// Cancels a pending event, destroying its callable immediately.
  /// Returns false when the handle is unknown, already fired, or already
  /// cancelled; true when the event was live.
  bool cancel(EventId id);

  /// True when a handle names a scheduled, not-yet-fired event.
  bool pending(EventId id) const noexcept { return find_live(id) != nullptr; }

  /// True when no live events remain.
  bool empty() const noexcept { return live_ == 0; }

  /// Number of live (scheduled, not-yet-fired, not-cancelled) events.
  std::size_t size() const noexcept { return live_; }

  /// Time of the earliest live event. Requires !empty().
  Time peek_time() const;

  /// Removes and returns the earliest live event as (time, callback).
  /// Requires !empty().
  std::pair<Time, EventFn> pop();

  /// pop() result carrying the pool slot the event occupied.  The slot is
  /// recycled by the time this returns, so it is useful only as a key into
  /// caller-side side tables populated at push time (see sim::Fabric).
  struct Popped {
    Time time;
    EventFn fn;
    std::uint32_t slot;
  };

  /// Like pop(), but also reports the slot index of the popped event.
  Popped pop_slot();

  /// Slot index a live handle from push() occupies — the side-table key
  /// matching Popped::slot.  Meaningful only while the event is pending.
  static constexpr std::uint32_t slot_of(EventId id) noexcept {
    return static_cast<std::uint32_t>(id.value & 0xffffffffu) - 1;
  }

  /// SDA_VALIDATE oracle: full structural self-check — heap order over
  /// the entry array, live-count bookkeeping against slot keys, and a
  /// live root after skim.  O(n); aborts with a structured dump on any
  /// violation (see core/invariants.hpp).  Mutating operations invoke it
  /// on a deterministic cadence when the oracle is enabled; tests may
  /// call it directly.
  void validate() const;

 private:
  /// Slot indices use the low kSlotBits of a heap key; the rest is the
  /// insertion sequence.  ~1M simultaneous pending events and 2^44 total
  /// pushes are both far beyond any simulated run.
  static constexpr unsigned kSlotBits = 20;
  static constexpr std::uint32_t kSlotMask = (1u << kSlotBits) - 1;

  /// All-ones sequence field tags a free slot's key; its low bits then
  /// hold the free-list link (kSlotMask = end of list).  next_seq_ never
  /// reaches this value.
  static constexpr std::uint64_t kFreeSeq =
      (std::uint64_t{1} << (64 - kSlotBits)) - 1;

  /// Slots are allocated in chunks so their addresses — and the callables
  /// stored inside — never move as the slab grows.  The first chunk is
  /// small (most simulations keep well under 64 events pending); every
  /// later chunk is a fixed 32 KiB.
  static constexpr std::uint32_t kFirstChunkSize = 64;  // 4 KiB starter slab
  static constexpr unsigned kChunkShift = 9;  // 512 slots = 32 KiB per chunk
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;

  /// 16 bytes.  key = (seq << kSlotBits) | slot; comparing keys directly
  /// yields FIFO order on time ties because seq occupies the high bits and
  /// is unique.
  struct HeapEntry {
    Time time;
    std::uint64_t key;
  };

  /// Exactly one cache line: 56 bytes of callable + the occupant's key.
  /// A heap entry is live iff its key matches its slot's — cancel and pop
  /// free the slot (new key), instantly orphaning the heap entry.
  /// Default state is free with a null free-list link (all-ones key).
  struct alignas(64) Slot {
    EventFn fn;
    std::uint64_t key = ~std::uint64_t{0};
  };

  static constexpr std::uint32_t entry_slot(std::uint64_t key) noexcept {
    return static_cast<std::uint32_t>(key) & kSlotMask;
  }
  static constexpr bool slot_is_free(std::uint64_t key) noexcept {
    return (key >> kSlotBits) == kFreeSeq;
  }

  static bool earlier(const HeapEntry& a, const HeapEntry& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.key < b.key;
  }

  Slot& slot_at(std::uint32_t i) noexcept {
    if (i < kFirstChunkSize) return chunks_[0][i];
    const std::uint32_t r = i - kFirstChunkSize;
    return chunks_[1 + (r >> kChunkShift)][r & (kChunkSize - 1)];
  }
  const Slot& slot_at(std::uint32_t i) const noexcept {
    if (i < kFirstChunkSize) return chunks_[0][i];
    const std::uint32_t r = i - kFirstChunkSize;
    return chunks_[1 + (r >> kChunkShift)][r & (kChunkSize - 1)];
  }

  /// Slots constructible before another chunk allocation is needed.
  std::uint32_t slot_capacity() const noexcept {
    if (chunks_.empty()) return 0;
    return kFirstChunkSize +
           static_cast<std::uint32_t>(chunks_.size() - 1) * kChunkSize;
  }

  /// Resolves a handle to its live slot, or nullptr when stale/unknown.
  const Slot* find_live(EventId id) const noexcept;
  Slot* find_live(EventId id) noexcept {
    return const_cast<Slot*>(std::as_const(*this).find_live(id));
  }

  void sift_up(std::size_t pos) noexcept;
  void sift_down(std::size_t pos) noexcept;
  /// Removes the root entry, refilling from the heap tail.
  void pop_root() noexcept;
  /// Discards orphaned (cancelled) entries until the root is live again —
  /// keeps peek_time()/pop() O(1) at the front.  Each cancelled entry is
  /// skimmed exactly once, so cancel() stays O(1) amortized.
  void skim() noexcept;

  std::uint32_t alloc_slot();
  /// Returns a slot to the free list; the caller has dealt with fn.
  void free_slot(std::uint32_t s) noexcept;

  /// SDA_VALIDATE hook shared by the mutating operations: cheap checks
  /// every call, the O(n) validate() on a deterministic cadence.
  void oracle_after_mutation();

  std::vector<HeapEntry> heap_;
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::size_t live_ = 0;          // live events (heap_ may hold orphans too)
  std::uint32_t slot_count_ = 0;  // slots handed out at least once
  std::uint32_t free_head_ = kSlotMask;
  std::uint64_t next_seq_ = 0;
  /// SDA_VALIDATE bookkeeping: pop watermark (each pop must be >= the
  /// previous pop or the earliest time pushed since — anything lower means
  /// broken heap order) and a mutation counter driving the validate cadence.
  Time last_pop_time_ = std::numeric_limits<Time>::lowest();
  std::uint64_t mutations_ = 0;
};

}  // namespace sda::sim
