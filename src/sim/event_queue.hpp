// The "heap" timer-queue backend: a pooled 4-ary min-heap.
//
// Storage is the shared slot slab (detail::SlotPool in timer_queue.hpp) —
// generation-tagged EventId handles over stable chunked slots — plus a
// 4-ary min-heap of (time, sequence) keys.  The layout buys three things
// over the earlier binary-heap + unordered_set design:
//
//  * pending()/cancel() resolve a handle in O(1) — decode slot index,
//    compare the slot's key — with no hashing on the hot push/pop path;
//  * cancel() destroys the callable *eagerly*, so a cancelled timer's
//    captures (tasks, shared_ptrs) are released on the spot instead of
//    lingering until the entry would have surfaced; only an inert
//    16-byte heap entry remains, skimmed away when it reaches the root;
//  * steady-state operation is allocation-free: freed slots are recycled
//    through a free list and callables with small captures live inline in
//    their slot (see inline_fn.hpp).
//
// Cache discipline: a heap entry is 16 bytes (time + packed sequence/slot
// word), a slot is exactly one 64-byte cache line, and slots live in
// fixed chunks with stable addresses — growing the slab never relocates a
// stored callable, and heap sifts touch only the contiguous entry array
// (no per-move back-pointer maintenance).
//
// Ordering is (time, insertion sequence), so simultaneous events fire in
// FIFO order — essential for reproducible runs.  Generation tags make
// stale handles (fired, cancelled, or recycled slots) harmlessly inert.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "src/sim/timer_queue.hpp"

namespace sda::sim {

/// Priority queue of timed callbacks with O(log n) push/pop, O(1) cancel
/// (amortized — each cancelled entry is skimmed from the heap exactly
/// once), and O(1) pending().  The Engine's default TimerQueue backend.
class EventQueue final : public TimerQueue, private detail::SlotPool {
 public:
  EventId push(Time t, EventFn fn) override;
  bool cancel(EventId id) override;
  bool pending(EventId id) const noexcept override {
    return find_live(id) != nullptr;
  }
  bool empty() const noexcept override { return live_ == 0; }
  std::size_t size() const noexcept override { return live_; }
  Time peek_time() const override;
  Popped pop_slot() override;
  void validate() const override;
  const char* backend_name() const noexcept override { return "heap"; }

  using TimerQueue::pop;
  using TimerQueue::slot_of;

 private:
  void sift_up(std::size_t pos) noexcept;
  void sift_down(std::size_t pos) noexcept;
  /// Removes the root entry, refilling from the heap tail.
  void pop_root() noexcept;
  /// Discards orphaned (cancelled) entries until the root is live again —
  /// keeps peek_time()/pop() O(1) at the front.  Each cancelled entry is
  /// skimmed exactly once, so cancel() stays O(1) amortized.
  void skim() noexcept;

  /// SDA_VALIDATE hook shared by the mutating operations: cheap checks
  /// every call, the O(n) validate() on a deterministic cadence.
  void oracle_after_mutation();

  std::vector<HeapEntry> heap_;
};

}  // namespace sda::sim
