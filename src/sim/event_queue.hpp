// Cancellable pending-event set for the discrete-event engine.
//
// A binary min-heap ordered by (time, sequence) gives deterministic FIFO
// tie-breaking for simultaneous events — essential for reproducible runs.
// Cancellation is lazy: a cancelled id is removed from the pending set and
// its heap entry discarded when it surfaces, which keeps both schedule and
// cancel O(log n) amortized without heap surgery.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <utility>
#include <vector>

namespace sda::sim {

/// Simulation timestamps. The paper's unit is the mean local-task execution
/// time (mu_local = 1).
using Time = double;

/// Callback executed when an event fires.
using EventFn = std::function<void()>;

/// Opaque handle identifying a scheduled event; used for cancellation.
struct EventId {
  std::uint64_t value = 0;

  friend bool operator==(EventId a, EventId b) noexcept {
    return a.value == b.value;
  }
  /// A default-constructed id never names a live event.
  explicit operator bool() const noexcept { return value != 0; }
};

/// Priority queue of timed callbacks with O(log n) push/pop and lazy cancel.
class EventQueue {
 public:
  /// Schedules @p fn at absolute time @p t; returns a handle for cancel().
  EventId push(Time t, EventFn fn);

  /// Cancels a pending event. Returns false when the handle is unknown,
  /// already fired, or already cancelled; true when the event was live.
  bool cancel(EventId id);

  /// True when a handle names a scheduled, not-yet-fired event.
  bool pending(EventId id) const noexcept {
    return id && pending_.count(id.value) != 0;
  }

  /// True when no live events remain.
  bool empty() const noexcept { return pending_.empty(); }

  /// Number of live (scheduled, not-yet-fired, not-cancelled) events.
  std::size_t size() const noexcept { return pending_.size(); }

  /// Time of the earliest live event. Requires !empty().
  Time peek_time();

  /// Removes and returns the earliest live event as (time, callback).
  /// Requires !empty().
  std::pair<Time, EventFn> pop();

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;  // insertion order; breaks time ties FIFO
    std::uint64_t id;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Drops cancelled entries from the heap top.
  void skim();

  std::vector<Entry> heap_;
  std::unordered_set<std::uint64_t> pending_;
  std::uint64_t next_id_ = 1;
};

}  // namespace sda::sim
