// Discrete-event simulation engine.
//
// This is the substrate the paper expressed in DeNet [9]: a clock plus an
// ordered set of pending events.  Model components (nodes, workload sources,
// the process manager) schedule callbacks against the engine; Engine::run
// fires them in timestamp order until a time horizon or event budget is hit.
//
// The engine is strictly single-threaded: determinism comes from the
// (time, insertion-order) event ordering, so the same seed always produces
// the same trace.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "src/sim/event_queue.hpp"

namespace sda::sim {

class Engine {
 public:
  /// Default backend: the pooled 4-ary heap ("heap").
  Engine() : queue_(std::make_unique<EventQueue>()) {}

  /// Runs on an explicit timer-queue backend (see make_timer_queue()).
  /// All backends share the slot slab and the (time, insertion-sequence)
  /// pop order, so traces and EventIds are identical across them.
  explicit Engine(std::unique_ptr<TimerQueue> queue)
      : queue_(std::move(queue)) {}

  /// Current simulation time. Starts at 0.
  Time now() const noexcept { return now_; }

  /// Schedules @p fn at absolute time @p t. Requires t >= now(); events in
  /// the past indicate a model bug and throw std::logic_error.
  EventId at(Time t, EventFn fn);

  /// Schedules @p fn @p delay time units from now. Requires delay >= 0.
  EventId in(Time delay, EventFn fn);

  /// Cancels a pending event; false when already fired/cancelled/unknown.
  bool cancel(EventId id) { return queue_->cancel(id); }

  /// True when @p id names a scheduled, not-yet-fired event.
  bool pending(EventId id) const noexcept { return queue_->pending(id); }

  /// Runs until the queue drains or @p horizon is passed.  Events scheduled
  /// exactly at the horizon still fire; the clock never exceeds the horizon.
  /// Returns the number of events fired by this call.
  std::uint64_t run_until(Time horizon);

  /// Runs until the queue drains. Returns the number of events fired.
  std::uint64_t run();

  /// Fires exactly one event if any is pending. Returns true if one fired.
  bool step();

  /// Time of the earliest pending event. Requires events_pending() > 0.
  Time next_time() const { return queue_->peek_time(); }

  /// A popped-but-not-yet-invoked event: the sharded fabric (sim::Fabric)
  /// pops events itself so it can consult a slot-keyed side table before
  /// running the callback.  `slot` matches EventQueue::slot_of on the
  /// handle at() returned while the event was pending.
  struct Fired {
    Time time;
    EventFn fn;
    std::uint32_t slot;
  };

  /// Removes the earliest event, advances the clock to it, and counts it
  /// as fired; the caller invokes `fn`.  Requires events_pending() > 0.
  Fired pop_next();

  /// Advances the clock without firing events (forward-only; earlier
  /// times are ignored).  Used by the fabric to land every shard's clock
  /// on the window horizon so time-based per-node statistics agree with
  /// the serial engine.
  void set_now(Time t) noexcept {
    if (t > now_) now_ = t;
  }

  /// Requests run()/run_until() to return after the current event.
  void stop() noexcept { stopped_ = true; }

  /// Number of events fired over the engine's lifetime.
  std::uint64_t events_fired() const noexcept { return fired_; }

  /// Number of events currently pending.
  std::size_t events_pending() const noexcept { return queue_->size(); }

 private:
  std::unique_ptr<TimerQueue> queue_;
  Time now_ = 0.0;
  std::uint64_t fired_ = 0;
  bool stopped_ = false;
};

}  // namespace sda::sim
