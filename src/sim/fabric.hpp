// Conservative time-window parallel discrete-event simulation (PDES).
//
// A Fabric runs ONE replication across several worker threads ("shards")
// while keeping the result bit-identical to the serial engine.  The model
// is partitioned into *lanes*: lane i (i < lanes) hosts node i and all of
// its node-local machinery (scheduler, local source, per-node fault
// hooks); the extra *control lane* hosts the process manager, admission
// control, the global workload source and the metric sinks.  Each lane is
// pinned to a shard by a fixed map (control lane -> shard 0, node lane
// i -> shard i mod S), and each shard owns a private sim::Engine.
//
// Cross-lane interaction never touches another lane's objects directly;
// it travels as a *message*: a callback plus a delivery time
// (post time + latency L, the modeled control-plane message latency and
// the PDES lookahead).  Messages are buffered in per-shard-pair
// single-producer/single-consumer queues and exchanged only at window
// boundaries:
//
//   loop:
//     (A) every shard publishes the time of its earliest pending event;
//         barrier; T = global minimum.  T > horizon -> done.
//     (B) every shard fires its local events with time < T + L
//         (L == 0: time == T), appending outbound messages and deferred
//         sink records; barrier.
//     (C) every shard drains its inbound message queues (sorted by the
//         deterministic key below) into its engine, while shard 0 merges
//         all shards' sink records in the same order and replays them
//         into the Collector/Tracer; barrier; repeat.
//
// Safety: a message posted at time t >= T is delivered at t + L >= T + L,
// i.e. never inside the window any shard is still executing, so no shard
// can receive an event in its past.  With L == 0 the window degenerates
// to exactly the events at time T; messages posted at T are delivered at
// T and fire in the *next* iteration (same T), so zero lookahead costs
// extra rounds per timestamp instead of deadlocking, and same-timestamp
// cascades are finite because every service time is strictly positive.
//
// Determinism: every message and sink record carries a hierarchical
// *origin path* — the path of the event that produced it extended by a
// per-event emission counter.  Lexicographic (time, path) order over
// these keys reproduces the serial engine's depth-first synchronous-call
// order exactly, independent of shard count, which is what makes the
// Tracer fingerprint bit-identical for any S.  (Root events — ones
// scheduled lane-locally rather than by a message — get a fresh
// single-element path; two *distinct* root cascades colliding on the
// exact same timestamp is a measure-zero event under the model's
// continuous arrival/service/fault distributions.  `service_dist=
// deterministic` could manufacture such ties; the determinism contract
// is stated for continuous service distributions.)
//
// Layering note: this file lives in sim/ because it is the engine's
// parallel twin, but the deferred sink-record payloads reference
// metrics:: and core:: record types.  That is an include-only dependency
// (everything links into the single `sda` library); the alternative —
// type-erasing the payloads — would cost an allocation per record on the
// hottest path.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <variant>
#include <vector>

// Engine's parallel twin: include-only payload-type dependency
// (GlobalTaskRecord), see layering note above.
// sda-analyze: allow(LAYERING) payload-type-only dependency of the engine twin
#include "src/core/process_manager.hpp"  // GlobalTaskRecord
// sda-analyze: allow(LAYERING) deferred TraceRecord payload, same note
#include "src/metrics/trace.hpp"
#include "src/sim/engine.hpp"
#include "src/task/task.hpp"
#include "src/util/mutex.hpp"
#include "src/util/thread_annotations.hpp"

namespace sda::metrics {
class Collector;
}  // namespace sda::metrics

namespace sda::sim {

/// Hierarchical origin path: the deterministic tie-break key for
/// same-timestamp messages and sink records (see file comment).  A fixed
/// inline array — no heap traffic on the per-message path; depth is
/// bounded by the longest same-timestamp synchronous cascade in the
/// model (root -> notify -> PM handler -> resubmit -> node handler ->
/// emission is depth 6; 12 leaves generous headroom).
struct PathKey {
  static constexpr int kMaxDepth = 12;

  std::array<std::uint64_t, kMaxDepth> elem{};
  std::uint8_t depth = 0;

  void push(std::uint64_t v);

  /// Derived key for the n-th emission of the event this path names.
  PathKey child(std::uint64_t n) const {
    PathKey k = *this;
    k.push(n);
    return k;
  }

  friend bool operator<(const PathKey& a, const PathKey& b) noexcept {
    const int n = a.depth < b.depth ? a.depth : b.depth;
    for (int i = 0; i < n; ++i) {
      if (a.elem[i] != b.elem[i]) return a.elem[i] < b.elem[i];
    }
    return a.depth < b.depth;
  }
};

/// One cross-lane interaction: run @p fn on @p dst_lane's shard at
/// @p deliver_at, ordered among same-time messages by @p key.
struct Message {
  Time deliver_at = 0.0;
  int dst_lane = 0;
  PathKey key;
  EventFn fn;
};

/// Bounded single-producer/single-consumer message buffer for one
/// (source shard, destination shard) pair.  Not a concurrent queue: the
/// producer pushes only during the run phase and the consumer drains
/// only after the window barrier, which provides the happens-before
/// edge — so the storage is plain (TSan-clean by phase separation), and
/// "SPSC" describes the access discipline, not an atomic protocol.
class CrossShardQueue {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;

  explicit CrossShardQueue(std::size_t capacity = kDefaultCapacity)
      : ring_(capacity) {}

  /// Producer side (run phase).  Overflow beyond the ring capacity goes
  /// to a spill vector: correctness forbids dropping or blocking, so the
  /// bound covers the common case and bursts degrade to an allocation,
  /// never a loss.  sda-lint: allow(UNBOUNDED_QUEUE) spill is
  /// correctness-required (dropping or blocking would deadlock a window)
  void push(Message m);

  /// Consumer side (post-barrier): appends every buffered message to
  /// @p out in push order and empties the queue.
  void drain(std::vector<Message>& out);

  bool empty() const noexcept { return count_ == 0 && spill_.empty(); }
  std::size_t size() const noexcept { return count_ + spill_.size(); }
  std::size_t capacity() const noexcept { return ring_.size(); }

 private:
  std::vector<Message> ring_;  // fixed-size circular buffer
  std::size_t head_ = 0;       // oldest element
  std::size_t count_ = 0;      // elements in the ring
  std::vector<Message> spill_;  // sda-lint: allow(UNBOUNDED_QUEUE) see push()
};

/// Static crash calendar consulted by the process manager instead of
/// sched::Node::is_up(), which lives on another lane.  Filled from the
/// fault plan before the run; identical information, lane-safe.
///
/// Concurrency contract: frozen before Fabric::run() starts.  reset()
/// and add_outage() are setup-phase writes from the constructing
/// thread; during the run every shard reads is_up() concurrently, which
/// is safe only because nothing mutates.  This read-mostly freeze
/// discipline has no mutex to hang a capability on; it is documented
/// here and exercised under TSan (test_pdes) instead.
class NodeStatusBoard {
 public:
  void reset(int node_count) {
    outages_.assign(static_cast<std::size_t>(node_count), {});
  }

  /// Node @p node is down during the half-open interval [down_at, up_at).
  void add_outage(int node, Time down_at, Time up_at);

  /// True when no registered outage covers @p now (always true for nodes
  /// without outages, and for out-of-range ids).
  bool is_up(int node, Time now) const noexcept;

 private:
  std::vector<std::vector<std::pair<Time, Time>>> outages_;
};

/// Deferred metric emission: sinks live on the control shard, so lanes
/// buffer their records and shard 0 replays the global (time, path)
/// order between windows.
struct SinkRecord {
  Time time = 0.0;
  PathKey key;
  std::variant<metrics::TraceRecord, task::SimpleTask, core::GlobalTaskRecord>
      payload;
};

class Fabric {
 public:
  struct Options {
    /// Node lanes (compute + link nodes).  The control lane is `lanes`.
    int lanes = 1;
    /// Worker shards.  1 is legal: messages still flow through windows
    /// (the serial message-mode reference the sharded runs must match).
    int shards = 1;
    /// Modeled cross-lane message latency = the conservative lookahead L.
    Time latency = 0.0;
    /// Timer-queue backend name for every shard engine (see
    /// make_timer_queue()).  Fingerprints are backend-independent.
    std::string timer_queue = "heap";
  };

  explicit Fabric(const Options& opt);
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;
  ~Fabric();

  int lanes() const noexcept { return opt_.lanes; }
  int shards() const noexcept { return opt_.shards; }
  Time latency() const noexcept { return opt_.latency; }
  int control_lane() const noexcept { return opt_.lanes; }

  /// Fixed lane -> shard map (control lane -> 0, node lane i -> i mod S).
  int shard_of(int lane) const noexcept {
    return lane == opt_.lanes ? 0 : lane % opt_.shards;
  }

  Engine& engine_for_lane(int lane) noexcept {
    return *shards_[static_cast<std::size_t>(shard_of(lane))]->engine;
  }
  Engine& control_engine() noexcept { return *shards_[0]->engine; }

  /// Sinks replayed by shard 0 between windows; either may be null.
  void set_sinks(metrics::Collector* collector, metrics::Tracer* tracer) {
    collector_ = collector;
    tracer_ = tracer;
  }
  bool tracing() const noexcept { return tracer_ != nullptr; }

  NodeStatusBoard& status_board() noexcept { return status_; }
  const NodeStatusBoard& status_board() const noexcept { return status_; }

  /// Posts a cross-lane message from the event currently executing on
  /// @p src_lane's shard; @p fn runs on @p dst_lane's shard at
  /// now + latency.  Must be called from inside a fabric-run event.
  ///
  /// post()/emit_*() carry SDA_NO_THREAD_SAFETY_ANALYSIS: they are
  /// entered from type-erased model callbacks (EventFn) fired inside the
  /// run phase, where the calling shard does hold window_phase_, but the
  /// capability cannot propagate through the std::move_only_function
  /// boundary.  The phase-separation argument in the file comment is the
  /// actual safety proof; TSan covers it dynamically.
  void post(int src_lane, int dst_lane, EventFn fn)
      SDA_NO_THREAD_SAFETY_ANALYSIS;

  /// Defers a sink record from the event currently executing on
  /// @p src_lane's shard (replayed in deterministic order by shard 0).
  /// Same escape hatch as post(), same reason.
  void emit_trace(int src_lane, const metrics::TraceRecord& rec)
      SDA_NO_THREAD_SAFETY_ANALYSIS;
  void emit_simple(int src_lane, const task::SimpleTask& t)
      SDA_NO_THREAD_SAFETY_ANALYSIS;
  void emit_global(int src_lane, const core::GlobalTaskRecord& rec)
      SDA_NO_THREAD_SAFETY_ANALYSIS;

  /// Runs every shard to @p horizon (inclusive, like Engine::run_until)
  /// using the window protocol in the file comment.  Spawns shards-1
  /// worker threads; the caller executes shard 0.  On return every
  /// shard's clock sits at the horizon.  A model exception from any
  /// shard aborts the run on the next window boundary and is rethrown.
  void run(Time horizon);

  // --- statistics (single-threaded use, outside run()) --------------------
  std::uint64_t events_fired() const noexcept;
  std::size_t events_pending() const noexcept;
  std::uint64_t messages_posted() const noexcept { return messages_posted_; }
  // Post-join single-threaded read of a phase-guarded counter: run() has
  // returned, so no shard thread exists to race with.
  std::uint64_t windows() const noexcept SDA_NO_THREAD_SAFETY_ANALYSIS {
    return windows_;
  }

 private:
  /// Per-shard state, padded so neighbouring shards' hot fields never
  /// share a cache line.
  struct alignas(64) Shard {
    int index = 0;
    std::unique_ptr<Engine> engine;
    /// Origin path of a pending *message* event, indexed by its
    /// EventQueue slot; depth 0 = not a message (lane-local root).
    std::vector<PathKey> slot_paths;
    /// Path of the event currently executing + its emission counter.
    PathKey cur_path;
    std::uint64_t next_child = 0;
    /// Fresh-root sequence for lane-local events.
    std::uint64_t next_root = 0;
    /// Deferred sink records produced this window.
    // sda-lint: allow(UNBOUNDED_QUEUE) bounded by one window's emissions
    std::vector<SinkRecord> records;
    /// Scratch for the drain phase (kept to reuse capacity).
    std::vector<Message> inbound;
    /// Earliest pending time published at barrier A (+inf when idle).
    Time announced = 0.0;
    std::uint64_t posted = 0;
  };

  CrossShardQueue& outbox(int src_shard, int dst_shard) noexcept
      SDA_REQUIRES(window_phase_) {
    return outboxes_[static_cast<std::size_t>(src_shard) *
                         static_cast<std::size_t>(opt_.shards) +
                     static_cast<std::size_t>(dst_shard)];
  }

  /// One worker's window loop (see file comment); `sync` is a
  /// std::barrier shared by all shards, passed type-erased to keep
  /// <barrier> out of this header.  Assumes window_phase_ for its whole
  /// duration.
  struct Barrier;
  void worker_loop(int shard, Time horizon, Barrier& sync);
  /// Fires local events inside [T, window); returns on quiesce.
  void run_phase(Shard& sh, Time window_min, Time horizon)
      SDA_REQUIRES(window_phase_);
  /// Inserts inbound messages into @p sh's engine in deterministic order.
  void drain_phase(int shard) SDA_REQUIRES(window_phase_);
  /// Shard 0: moves every shard's window records into the pending
  /// buffer.  Records are NOT replayed here — at zero lookahead one
  /// same-timestamp cascade spans several sub-rounds, so a record's
  /// final (time, path) position is only settled once the window clock
  /// has moved strictly past its timestamp.
  void collect_records() SDA_REQUIRES(window_phase_);
  /// Shard 0: sorts and replays every pending record with time < before
  /// into the collector/tracer; records at exactly `before` stay pending
  /// (their cascade may still be emitting).  Pass +inf to flush all.
  void flush_records(Time before) SDA_REQUIRES(window_phase_);

  Options opt_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Fake capability for the window protocol: every shard thread assumes
  /// it for the duration of worker_loop().  It does not provide mutual
  /// exclusion (all shards hold it at once) — the barrier protocol's
  /// phase separation does that; what the capability enforces at compile
  /// time is that *no code outside the window protocol* can reach the
  /// phase-guarded state below (outboxes, deferred records, the window
  /// counter).
  util::ThreadRole window_phase_;
  std::vector<CrossShardQueue> outboxes_
      SDA_GUARDED_BY(window_phase_);  // [src * S + dst]
  NodeStatusBoard status_;
  metrics::Collector* collector_ = nullptr;
  metrics::Tracer* tracer_ = nullptr;
  /// Records awaiting a settled order; bounded by the records emitted at
  /// the current time frontier (flushed as soon as the clock advances).
  // sda-lint: allow(UNBOUNDED_QUEUE) frontier-bounded, see comment
  std::vector<SinkRecord> pending_records_ SDA_GUARDED_BY(window_phase_);
  std::uint64_t messages_posted_ = 0;
  std::uint64_t windows_ SDA_GUARDED_BY(window_phase_) = 0;
  /// First model exception from any shard; every shard checks the flag
  /// at the next barrier and unwinds together (no thread left blocking).
  std::atomic<bool> stop_flag_{false};
  util::Mutex failure_mu_;
  std::exception_ptr failure_ SDA_GUARDED_BY(failure_mu_);
};

}  // namespace sda::sim
