#include "src/sim/event_queue.hpp"

#include <algorithm>
#include <stdexcept>

namespace sda::sim {

EventId EventQueue::push(Time t, EventFn fn) {
  const std::uint64_t id = next_id_++;
  heap_.push_back(Entry{t, id, id, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  pending_.insert(id);
  return EventId{id};
}

bool EventQueue::cancel(EventId id) {
  if (!id) return false;
  return pending_.erase(id.value) != 0;
}

void EventQueue::skim() {
  while (!heap_.empty() && pending_.count(heap_.front().id) == 0) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

Time EventQueue::peek_time() {
  skim();
  if (heap_.empty()) {
    throw std::logic_error("EventQueue::peek_time on empty queue");
  }
  return heap_.front().time;
}

std::pair<Time, EventFn> EventQueue::pop() {
  skim();
  if (heap_.empty()) throw std::logic_error("EventQueue::pop on empty queue");
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  pending_.erase(e.id);
  return {e.time, std::move(e.fn)};
}

}  // namespace sda::sim
