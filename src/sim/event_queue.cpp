#include "src/sim/event_queue.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/core/invariants.hpp"

namespace sda::sim {

namespace oracle = core::invariants;

void EventQueue::sift_up(std::size_t pos) noexcept {
  const HeapEntry e = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 4;
    if (!earlier(e, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    pos = parent;
  }
  heap_[pos] = e;
}

void EventQueue::sift_down(std::size_t pos) noexcept {
  // Bottom-up variant: walk the min-child path all the way to a leaf
  // (3 sibling compares per level, no compare against e), then bubble e up
  // from the leaf.  The displaced element is always the old heap tail, which
  // almost always belongs near the bottom, so the bubble-up is O(1) expected
  // and the per-level compare against e is saved.
  const HeapEntry e = heap_[pos];
  const std::size_t n = heap_.size();
  std::size_t hole = pos;
  for (;;) {
    const std::size_t first = 4 * hole + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = first + 4 < n ? first + 4 : n;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    heap_[hole] = heap_[best];
    hole = best;
  }
  while (hole > pos) {
    const std::size_t parent = (hole - 1) / 4;
    if (!earlier(e, heap_[parent])) break;
    heap_[hole] = heap_[parent];
    hole = parent;
  }
  heap_[hole] = e;
}

void EventQueue::pop_root() noexcept {
  const std::size_t last = heap_.size() - 1;
  if (last > 0) {
    heap_[0] = heap_[last];
    heap_.pop_back();
    sift_down(0);
  } else {
    heap_.pop_back();
  }
}

void EventQueue::skim() noexcept {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    if (slot_at(entry_slot(top.key)).key == top.key) break;  // live root
    pop_root();  // orphaned by cancel (or by slot reuse after it)
  }
}

void EventQueue::validate() const {
  std::size_t live_seen = 0;
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    if (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (earlier(heap_[i], heap_[parent])) {
        oracle::fail("event-queue-heap-order",
                     oracle::Dump()
                         .integer("index", static_cast<long long>(i))
                         .num("entry_time", heap_[i].time)
                         .num("parent_time", heap_[parent].time)
                         .integer("size", static_cast<long long>(heap_.size())));
      }
    }
    const Slot& s = slot_at(entry_slot(heap_[i].key));
    if (s.key == heap_[i].key) ++live_seen;
  }
  if (live_seen != live_) {
    oracle::fail("event-queue-live-count",
                 oracle::Dump()
                     .integer("live_counter", static_cast<long long>(live_))
                     .integer("live_entries", static_cast<long long>(live_seen))
                     .integer("heap_size", static_cast<long long>(heap_.size())));
  }
  if (live_ > 0) {
    // skim() runs after every cancel/pop, so a non-empty queue's root
    // must be live — peek_time()/pop() rely on it.
    const Slot& root = slot_at(entry_slot(heap_.front().key));
    if (root.key != heap_.front().key) {
      oracle::fail("event-queue-orphaned-root",
                   oracle::Dump().num("root_time", heap_.front().time));
    }
  }
}

void EventQueue::oracle_after_mutation() {
  // Full O(n) validation on every mutation would turn the stress tests
  // quadratic; a deterministic cadence (every 64th mutation, plus every
  // mutation while the queue is small) still corners corruption within
  // one sweep of the structure.
  ++mutations_;
  if (live_ <= 64 || (mutations_ & 63) == 0) validate();
}

EventId EventQueue::push(Time t, EventFn fn) {
  if (oracle::enabled() && std::isnan(t)) {
    // A NaN timestamp compares false against everything, silently
    // wrecking heap order; catch it at the door.
    oracle::fail("event-queue-nan-time",
                 oracle::Dump().integer(
                     "live", static_cast<long long>(live_)));
  }
  const std::uint64_t key = bind_slot(std::move(fn));
  heap_.push_back(HeapEntry{t, key});
  sift_up(heap_.size() - 1);
  // Lower the pop watermark: a push below the last popped time is legal
  // for a standalone queue (the Engine's clock is what's monotonic), and
  // the next pop may legitimately return as early as this.
  if (t < last_pop_time_) last_pop_time_ = t;
  if (oracle::enabled()) oracle_after_mutation();
  return id_for(key);
}

bool EventQueue::cancel(EventId id) {
  Slot* live = find_live(id);
  if (live == nullptr) return false;
  live->fn.reset();  // release captures now, not when the entry surfaces
  free_slot(entry_slot(live->key));  // orphans the heap entry
  --live_;
  skim();  // the orphan may be sitting at the root
  if (oracle::enabled()) oracle_after_mutation();
  return true;
}

Time EventQueue::peek_time() const {
  if (live_ == 0) {
    throw std::logic_error("EventQueue::peek_time on empty queue");
  }
  // skim() runs after every cancel/pop, so a non-empty queue's root is live.
  return heap_.front().time;
}

EventQueue::Popped EventQueue::pop_slot() {
  if (live_ == 0) throw std::logic_error("EventQueue::pop on empty queue");
  const HeapEntry top = heap_.front();
  if (oracle::enabled() && top.time < last_pop_time_) {
    // Below the watermark (last pop / earliest push since): heap order
    // is broken — no legal push sequence can produce this.
    oracle::fail("event-queue-pop-time-decreased",
                 oracle::Dump()
                     .num("pop_time", top.time)
                     .num("previous_pop_time", last_pop_time_)
                     .integer("live", static_cast<long long>(live_)));
  }
  last_pop_time_ = top.time;
  const std::uint32_t s = entry_slot(top.key);
  EventFn fn = std::move(slot_at(s).fn);
  free_slot(s);
  --live_;
  pop_root();
  skim();
  if (live_ == 0) {
    // A drained queue may be reused from an earlier timestamp (the engine's
    // clock is monotonic, a standalone queue's is not): reset the watermark.
    last_pop_time_ = std::numeric_limits<Time>::lowest();
  }
  if (oracle::enabled()) oracle_after_mutation();
  return Popped{top.time, std::move(fn), s};
}

}  // namespace sda::sim
