#include "src/sim/event_queue.hpp"

#include <stdexcept>

namespace sda::sim {

const EventQueue::Slot* EventQueue::find_live(EventId id) const noexcept {
  if (!id) return nullptr;
  const std::uint64_t slot_plus_1 = id.value & 0xffffffffu;
  if (slot_plus_1 == 0 || slot_plus_1 > slot_count_) return nullptr;
  const Slot& s = slot_at(static_cast<std::uint32_t>(slot_plus_1 - 1));
  if (slot_is_free(s.key)) return nullptr;
  if (static_cast<std::uint32_t>(s.key >> kSlotBits) !=
      static_cast<std::uint32_t>(id.value >> 32)) {
    return nullptr;
  }
  return &s;
}

std::uint32_t EventQueue::alloc_slot() {
  if (free_head_ != kSlotMask) {
    const std::uint32_t s = free_head_;
    free_head_ = entry_slot(slot_at(s).key);  // free-list link in low bits
    return s;
  }
  if (slot_count_ >= kSlotMask) {  // kSlotMask itself is the list terminator
    throw std::length_error("EventQueue: too many concurrent events");
  }
  if (slot_count_ == slot_capacity()) {
    chunks_.push_back(std::make_unique<Slot[]>(
        chunks_.empty() ? kFirstChunkSize : kChunkSize));
  }
  return slot_count_++;
}

void EventQueue::free_slot(std::uint32_t s) noexcept {
  slot_at(s).key = (kFreeSeq << kSlotBits) | free_head_;
  free_head_ = s;
}

void EventQueue::sift_up(std::size_t pos) noexcept {
  const HeapEntry e = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 4;
    if (!earlier(e, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    pos = parent;
  }
  heap_[pos] = e;
}

void EventQueue::sift_down(std::size_t pos) noexcept {
  // Bottom-up variant: walk the min-child path all the way to a leaf
  // (3 sibling compares per level, no compare against e), then bubble e up
  // from the leaf.  The displaced element is always the old heap tail, which
  // almost always belongs near the bottom, so the bubble-up is O(1) expected
  // and the per-level compare against e is saved.
  const HeapEntry e = heap_[pos];
  const std::size_t n = heap_.size();
  std::size_t hole = pos;
  for (;;) {
    const std::size_t first = 4 * hole + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = first + 4 < n ? first + 4 : n;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    heap_[hole] = heap_[best];
    hole = best;
  }
  while (hole > pos) {
    const std::size_t parent = (hole - 1) / 4;
    if (!earlier(e, heap_[parent])) break;
    heap_[hole] = heap_[parent];
    hole = parent;
  }
  heap_[hole] = e;
}

void EventQueue::pop_root() noexcept {
  const std::size_t last = heap_.size() - 1;
  if (last > 0) {
    heap_[0] = heap_[last];
    heap_.pop_back();
    sift_down(0);
  } else {
    heap_.pop_back();
  }
}

void EventQueue::skim() noexcept {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    if (slot_at(entry_slot(top.key)).key == top.key) break;  // live root
    pop_root();  // orphaned by cancel (or by slot reuse after it)
  }
}

EventId EventQueue::push(Time t, EventFn fn) {
  const std::uint32_t s = alloc_slot();
  Slot& slot = slot_at(s);
  const std::uint64_t key = (next_seq_++ << kSlotBits) | s;
  slot.key = key;
  slot.fn = std::move(fn);
  heap_.push_back(HeapEntry{t, key});
  sift_up(heap_.size() - 1);
  ++live_;
  // Handle layout: (low 32 bits of the sequence) << 32 | slot + 1.
  const auto gen = static_cast<std::uint32_t>(key >> kSlotBits);
  return EventId{(static_cast<std::uint64_t>(gen) << 32) |
                 (static_cast<std::uint64_t>(s) + 1)};
}

bool EventQueue::cancel(EventId id) {
  Slot* live = find_live(id);
  if (live == nullptr) return false;
  live->fn.reset();  // release captures now, not when the entry surfaces
  free_slot(entry_slot(live->key));  // orphans the heap entry
  --live_;
  skim();  // the orphan may be sitting at the root
  return true;
}

Time EventQueue::peek_time() const {
  if (live_ == 0) {
    throw std::logic_error("EventQueue::peek_time on empty queue");
  }
  // skim() runs after every cancel/pop, so a non-empty queue's root is live.
  return heap_.front().time;
}

std::pair<Time, EventFn> EventQueue::pop() {
  if (live_ == 0) throw std::logic_error("EventQueue::pop on empty queue");
  const HeapEntry top = heap_.front();
  const std::uint32_t s = entry_slot(top.key);
  EventFn fn = std::move(slot_at(s).fn);
  free_slot(s);
  --live_;
  pop_root();
  skim();
  return {top.time, std::move(fn)};
}

}  // namespace sda::sim
