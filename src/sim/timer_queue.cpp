#include "src/sim/timer_queue.hpp"

#include <stdexcept>

#include "src/sim/event_queue.hpp"
#include "src/sim/timer_wheel.hpp"

namespace sda::sim {

namespace detail {

std::uint32_t SlotPool::alloc_slot_grow() {
  if (slot_count_ >= kSlotMask) {  // kSlotMask itself is the list terminator
    throw std::length_error("TimerQueue: too many concurrent events");
  }
  if (slot_count_ == slot_capacity()) {
    chunks_.push_back(std::make_unique<Slot[]>(
        chunks_.empty() ? kFirstChunkSize : kChunkSize));
  }
  return slot_count_++;
}

}  // namespace detail

namespace {

using BackendRegistry = util::Registry<TimerQueue>;

/// Built-ins are seeded through the same add() path as user backends the
/// first time any registry accessor runs.
BackendRegistry& timer_queue_registry() {
  static BackendRegistry reg = [] {
    BackendRegistry r("timer-queue", "backend");
    r.add("heap",
          [](const std::string&) -> std::unique_ptr<TimerQueue> {
            return std::make_unique<EventQueue>();
          },
          util::NameMatch::kExact, "heap");
    r.add("wheel",
          [](const std::string&) -> std::unique_ptr<TimerQueue> {
            return std::make_unique<TimerWheel>();
          },
          util::NameMatch::kExact, "wheel");
    return r;
  }();
  return reg;
}

}  // namespace

void register_timer_queue(const std::string& name, TimerQueueFactory factory,
                          util::NameMatch match, const std::string& display) {
  timer_queue_registry().add(name, std::move(factory), match, display);
}

std::vector<std::string> list_timer_queue_names() {
  return timer_queue_registry().names();
}

std::unique_ptr<TimerQueue> make_timer_queue(const std::string& name) {
  return timer_queue_registry().make(name);
}

}  // namespace sda::sim
