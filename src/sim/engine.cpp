#include "src/sim/engine.hpp"

#include <stdexcept>

namespace sda::sim {

EventId Engine::at(Time t, EventFn fn) {
  if (t < now_) {
    throw std::logic_error("Engine::at: scheduling into the past");
  }
  return queue_.push(t, std::move(fn));
}

EventId Engine::in(Time delay, EventFn fn) {
  if (delay < 0.0) {
    throw std::logic_error("Engine::in: negative delay");
  }
  return queue_.push(now_ + delay, std::move(fn));
}

std::uint64_t Engine::run_until(Time horizon) {
  stopped_ = false;
  std::uint64_t fired_now = 0;
  while (!queue_.empty() && !stopped_) {
    if (queue_.peek_time() > horizon) break;
    auto [t, fn] = queue_.pop();
    now_ = t;
    fn();
    ++fired_;
    ++fired_now;
  }
  if (now_ < horizon) now_ = horizon;
  return fired_now;
}

std::uint64_t Engine::run() {
  stopped_ = false;
  std::uint64_t fired_now = 0;
  while (!queue_.empty() && !stopped_) {
    auto [t, fn] = queue_.pop();
    now_ = t;
    fn();
    ++fired_;
    ++fired_now;
  }
  return fired_now;
}

bool Engine::step() {
  if (queue_.empty()) return false;
  auto [t, fn] = queue_.pop();
  now_ = t;
  fn();
  ++fired_;
  return true;
}

}  // namespace sda::sim
