#include "src/sim/engine.hpp"

#include <cmath>
#include <stdexcept>

#include "src/core/invariants.hpp"

namespace sda::sim {

EventId Engine::at(Time t, EventFn fn) {
  // `t < now_` is false for NaN, so the logic_error below cannot catch a
  // NaN timestamp — the oracle does, before it can scramble heap order.
  if (core::invariants::enabled() && !std::isfinite(t)) {
    core::invariants::fail(
        "engine-non-finite-event-time",
        core::invariants::Dump().num("t", t).num("now", now_));
  }
  if (t < now_) {
    throw std::logic_error("Engine::at: scheduling into the past");
  }
  // Pooled event heap: one entry per pending event, recycled on fire.
  // sda-lint: allow(UNBOUNDED_QUEUE) bounded by live model objects
  return queue_->push(t, std::move(fn));
}

EventId Engine::in(Time delay, EventFn fn) {
  if (core::invariants::enabled() && !std::isfinite(delay)) {
    core::invariants::fail(
        "engine-non-finite-delay",
        core::invariants::Dump().num("delay", delay).num("now", now_));
  }
  if (delay < 0.0) {
    throw std::logic_error("Engine::in: negative delay");
  }
  // sda-lint: allow(UNBOUNDED_QUEUE) same pooled heap as at()
  return queue_->push(now_ + delay, std::move(fn));
}

std::uint64_t Engine::run_until(Time horizon) {
  stopped_ = false;
  std::uint64_t fired_now = 0;
  while (!queue_->empty() && !stopped_) {
    if (queue_->peek_time() > horizon) break;
    auto [t, fn] = queue_->pop();
    now_ = t;
    fn();
    ++fired_;
    ++fired_now;
  }
  if (now_ < horizon) now_ = horizon;
  return fired_now;
}

std::uint64_t Engine::run() {
  stopped_ = false;
  std::uint64_t fired_now = 0;
  while (!queue_->empty() && !stopped_) {
    auto [t, fn] = queue_->pop();
    now_ = t;
    fn();
    ++fired_;
    ++fired_now;
  }
  return fired_now;
}

Engine::Fired Engine::pop_next() {
  TimerQueue::Popped p = queue_->pop_slot();
  now_ = p.time;
  ++fired_;
  return Fired{p.time, std::move(p.fn), p.slot};
}

bool Engine::step() {
  if (queue_->empty()) return false;
  auto [t, fn] = queue_->pop();
  now_ = t;
  fn();
  ++fired_;
  return true;
}

}  // namespace sda::sim
