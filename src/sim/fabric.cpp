#include "src/sim/fabric.hpp"

#include <algorithm>
#include <barrier>
#include <limits>
#include <stdexcept>
#include <thread>
#include <utility>

// sda-analyze: allow(LAYERING) worker shards feed Collector sinks directly
#include "src/metrics/collector.hpp"

namespace sda::sim {

namespace {

constexpr Time kIdle = std::numeric_limits<Time>::infinity();

// Exact time comparison is deliberate in both orderings: the key contract
// is "same bit pattern -> same bucket", which feq()'s tolerance would
// destroy (two almost-equal times must order the same way on every shard
// count).  This mirrors EventQueue's HeapEntry ordering.
bool message_before(const Message& a, const Message& b) noexcept {
  if (a.deliver_at != b.deliver_at) return a.deliver_at < b.deliver_at;
  return a.key < b.key;
}

bool record_before(const SinkRecord& a, const SinkRecord& b) noexcept {
  if (a.time != b.time) return a.time < b.time;
  return a.key < b.key;
}

}  // namespace

void PathKey::push(std::uint64_t v) {
  if (depth >= kMaxDepth) {
    // A same-timestamp synchronous cascade deeper than the model allows
    // (see header): a bug, not a capacity tuning knob.
    throw std::logic_error("PathKey::push: origin path deeper than kMaxDepth");
  }
  elem[depth] = v;
  ++depth;
}

void CrossShardQueue::push(Message m) {
  if (count_ < ring_.size()) {
    ring_[(head_ + count_) % ring_.size()] = std::move(m);
    ++count_;
  } else {
    spill_.push_back(std::move(m));
  }
}

void CrossShardQueue::drain(std::vector<Message>& out) {
  for (std::size_t i = 0; i < count_; ++i) {
    out.push_back(std::move(ring_[(head_ + i) % ring_.size()]));
  }
  head_ = 0;
  count_ = 0;
  for (Message& m : spill_) out.push_back(std::move(m));
  spill_.clear();
}

void NodeStatusBoard::add_outage(int node, Time down_at, Time up_at) {
  if (node < 0 || static_cast<std::size_t>(node) >= outages_.size()) return;
  outages_[static_cast<std::size_t>(node)].emplace_back(down_at, up_at);
}

bool NodeStatusBoard::is_up(int node, Time now) const noexcept {
  if (node < 0 || static_cast<std::size_t>(node) >= outages_.size()) {
    return true;
  }
  for (const auto& [down_at, up_at] : outages_[static_cast<std::size_t>(node)]) {
    if (now >= down_at && now < up_at) return false;
  }
  return true;
}

struct Fabric::Barrier {
  std::barrier<> b;
  explicit Barrier(int parties) : b(parties) {}
  void wait() { b.arrive_and_wait(); }
};

Fabric::Fabric(const Options& opt) : opt_(opt) {
  if (opt_.lanes < 1) throw std::logic_error("Fabric: lanes must be >= 1");
  if (opt_.shards < 1) throw std::logic_error("Fabric: shards must be >= 1");
  if (!(opt_.latency >= 0.0)) {
    throw std::logic_error("Fabric: latency must be finite and >= 0");
  }
  shards_.reserve(static_cast<std::size_t>(opt_.shards));
  for (int s = 0; s < opt_.shards; ++s) {
    auto sh = std::make_unique<Shard>();
    sh->index = s;
    sh->engine = std::make_unique<Engine>(make_timer_queue(opt_.timer_queue));
    shards_.push_back(std::move(sh));
  }
  outboxes_ = std::vector<CrossShardQueue>(
      static_cast<std::size_t>(opt_.shards) *
      static_cast<std::size_t>(opt_.shards));
}

Fabric::~Fabric() = default;

void Fabric::post(int src_lane, int dst_lane, EventFn fn) {
  Shard& s = *shards_[static_cast<std::size_t>(shard_of(src_lane))];
  Message m;
  m.deliver_at = s.engine->now() + opt_.latency;
  m.dst_lane = dst_lane;
  m.key = s.cur_path.child(s.next_child++);
  m.fn = std::move(fn);
  ++s.posted;
  outbox(s.index, shard_of(dst_lane)).push(std::move(m));
}

void Fabric::emit_trace(int src_lane, const metrics::TraceRecord& rec) {
  Shard& s = *shards_[static_cast<std::size_t>(shard_of(src_lane))];
  s.records.push_back(
      SinkRecord{s.engine->now(), s.cur_path.child(s.next_child++), rec});
}

void Fabric::emit_simple(int src_lane, const task::SimpleTask& t) {
  Shard& s = *shards_[static_cast<std::size_t>(shard_of(src_lane))];
  s.records.push_back(
      SinkRecord{s.engine->now(), s.cur_path.child(s.next_child++), t});
}

void Fabric::emit_global(int src_lane, const core::GlobalTaskRecord& rec) {
  Shard& s = *shards_[static_cast<std::size_t>(shard_of(src_lane))];
  s.records.push_back(
      SinkRecord{s.engine->now(), s.cur_path.child(s.next_child++), rec});
}

void Fabric::run(Time horizon) {
  stop_flag_.store(false, std::memory_order_relaxed);
  {
    util::LockGuard lock(failure_mu_);
    failure_ = nullptr;
  }
  Barrier sync(opt_.shards);
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(opt_.shards - 1));
  for (int s = 1; s < opt_.shards; ++s) {
    workers.emplace_back([this, s, horizon, &sync] {
      worker_loop(s, horizon, sync);
    });
  }
  worker_loop(0, horizon, sync);
  for (std::thread& w : workers) w.join();

  messages_posted_ = 0;
  for (const auto& sh : shards_) messages_posted_ += sh->posted;
  std::exception_ptr e;
  {
    util::LockGuard lock(failure_mu_);
    e = failure_;
    failure_ = nullptr;
  }
  if (e) std::rethrow_exception(e);
  // Serial run_until semantics: the clock lands on the horizon even when
  // later events remain pending — per-node time-based statistics
  // (utilization, mean tasks in system) divide by this.
  for (const auto& sh : shards_) sh->engine->set_now(horizon);
}

void Fabric::worker_loop(int shard, Time horizon, Barrier& sync) {
  // Every shard thread assumes the window-phase capability for its whole
  // window loop; the barrier protocol supplies the actual exclusion.
  util::RoleGuard phase(window_phase_);
  Shard& sh = *shards_[static_cast<std::size_t>(shard)];
  const int S = opt_.shards;
  for (;;) {
    sh.announced =
        sh.engine->events_pending() > 0 ? sh.engine->next_time() : kIdle;
    sync.wait();  // (A) every shard's announced time is now visible
    Time window_min = kIdle;
    for (int s = 0; s < S; ++s) {
      window_min = std::min(window_min, shards_[static_cast<std::size_t>(s)]->announced);
    }
    // All shards compute the same minimum, so they all break together.
    // !(x <= y) instead of x > y: also terminates when everything is
    // idle (window_min == +inf).
    if (!(window_min <= horizon)) {
      // Nothing can fire again: every pending record's order is final.
      if (shard == 0) flush_records(kIdle);
      break;
    }
    if (shard == 0) {
      ++windows_;
      // Every future record has time >= window_min (events fire at
      // >= window_min, messages deliver at >= window_min + L), so
      // records strictly before it are settled and can replay now.
      // Records at exactly window_min stay pending: at L = 0 their
      // same-timestamp cascade may continue in this sub-round.
      flush_records(window_min);
    }
    try {
      run_phase(sh, window_min, horizon);
    } catch (...) {
      {
        util::LockGuard lock(failure_mu_);
        if (!failure_) failure_ = std::current_exception();
      }
      stop_flag_.store(true, std::memory_order_relaxed);
    }
    sync.wait();  // (B) run phase over everywhere; outboxes stable
    if (stop_flag_.load(std::memory_order_relaxed)) break;
    try {
      drain_phase(shard);
      if (shard == 0) collect_records();
    } catch (...) {
      {
        util::LockGuard lock(failure_mu_);
        if (!failure_) failure_ = std::current_exception();
      }
      stop_flag_.store(true, std::memory_order_relaxed);
    }
    sync.wait();  // (C) inboxes drained, sinks replayed; next window
    if (stop_flag_.load(std::memory_order_relaxed)) break;
  }
}

void Fabric::run_phase(Shard& sh, Time window_min, Time horizon) {
  Engine& e = *sh.engine;
  const Time lookahead = opt_.latency;
  while (e.events_pending() > 0) {
    const Time nt = e.next_time();
    if (nt > horizon) break;
    if (lookahead > 0.0) {
      // Safe window [window_min, window_min + L): a message posted at
      // t >= window_min is delivered at t + L, outside every window.
      if (!(nt < window_min + lookahead)) break;
    } else {
      // Zero lookahead: the window collapses to the events at exactly
      // the global minimum; same-timestamp message cascades resolve
      // over repeated rounds at the same window_min.
      if (!(nt <= window_min)) break;
    }
    Engine::Fired f = e.pop_next();
    if (f.slot < sh.slot_paths.size() && sh.slot_paths[f.slot].depth != 0) {
      // A message: inherit the origin path recorded at delivery.
      sh.cur_path = sh.slot_paths[f.slot];
      sh.slot_paths[f.slot].depth = 0;
    } else {
      // Lane-local root event: fresh path, unique across shards.
      sh.cur_path = PathKey{};
      sh.cur_path.push(
          ((static_cast<std::uint64_t>(sh.index) + 1) << 44) | sh.next_root++);
    }
    sh.next_child = 0;
    f.fn();
  }
}

void Fabric::drain_phase(int shard) {
  Shard& sh = *shards_[static_cast<std::size_t>(shard)];
  sh.inbound.clear();
  for (int src = 0; src < opt_.shards; ++src) {
    outbox(src, shard).drain(sh.inbound);
  }
  if (sh.inbound.empty()) return;
  // Deterministic delivery order: (time, origin path) is a total order
  // (paths are unique), so the engine's FIFO tie-break over same-time
  // insertions reproduces it identically at any shard count.
  std::sort(sh.inbound.begin(), sh.inbound.end(), message_before);
  for (Message& m : sh.inbound) {
    const EventId id = sh.engine->at(m.deliver_at, std::move(m.fn));
    const std::uint32_t slot = EventQueue::slot_of(id);
    if (slot >= sh.slot_paths.size()) sh.slot_paths.resize(slot + 1);
    sh.slot_paths[slot] = m.key;
  }
  sh.inbound.clear();
}

void Fabric::collect_records() {
  for (const auto& shp : shards_) {
    Shard& sh = *shp;
    for (SinkRecord& r : sh.records) pending_records_.push_back(std::move(r));
    sh.records.clear();
  }
}

void Fabric::flush_records(Time before) {
  if (pending_records_.empty()) return;
  // Unstable partition is fine: the flushed prefix is fully sorted below,
  // and the kept suffix gets its own sort at its own flush.
  const auto mid =
      std::partition(pending_records_.begin(), pending_records_.end(),
                     [before](const SinkRecord& r) { return r.time < before; });
  if (mid == pending_records_.begin()) return;
  // Keys are unique across shards and sub-rounds, so (time, path) is a
  // total order: the replay sequence is independent of both the window
  // chop and the shard count — the determinism contract.
  std::sort(pending_records_.begin(), mid, record_before);
  for (auto it = pending_records_.begin(); it != mid; ++it) {
    if (const auto* tr = std::get_if<metrics::TraceRecord>(&it->payload)) {
      if (tracer_ != nullptr) tracer_->add(*tr);
    } else if (const auto* st = std::get_if<task::SimpleTask>(&it->payload)) {
      if (collector_ != nullptr) collector_->record_simple(*st);
    } else if (const auto* gr =
                   std::get_if<core::GlobalTaskRecord>(&it->payload)) {
      if (collector_ != nullptr) collector_->record_global(*gr);
    }
  }
  pending_records_.erase(pending_records_.begin(), mid);
}

std::uint64_t Fabric::events_fired() const noexcept {
  std::uint64_t total = 0;
  for (const auto& sh : shards_) total += sh->engine->events_fired();
  return total;
}

std::size_t Fabric::events_pending() const noexcept {
  std::size_t total = 0;
  for (const auto& sh : shards_) total += sh->engine->events_pending();
  return total;
}

}  // namespace sda::sim
