// Pluggable timer-queue backends for the discrete-event engine.
//
// sim::TimerQueue is the interface the Engine schedules against: push a
// callback at an absolute time, cancel by handle, pop the earliest.  Two
// backends ship with the simulator —
//
//   "heap"  — the pooled 4-ary min-heap (sim::EventQueue), O(log n)
//             push/pop, the default;
//   "wheel" — a hierarchical timing wheel / calendar queue
//             (sim::TimerWheel), amortized O(1) push for the heavy-traffic
//             regime where queue populations explode and O(log n) pops
//             start to dominate.
//
// Backends are constructed by name through a self-registering registry
// (util::Registry — the same pattern as the strategy registries), so the
// `timer_queue=` ExperimentConfig key reaches user-registered backends
// without touching library code.
//
// Determinism contract: every backend must pop events in exactly
// (time, insertion-sequence) order and must allocate slots through the
// shared detail::SlotPool below.  Identical push/cancel/pop sequences then
// produce identical EventId values and identical slot indices — which is
// why run fingerprints are bit-identical across backends, and why the
// sharded fabric's slot-keyed side tables (sim::Fabric) work unchanged
// with either.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/inline_fn.hpp"
#include "src/util/registry.hpp"

namespace sda::sim {

/// Simulation timestamps. The paper's unit is the mean local-task execution
/// time (mu_local = 1).
using Time = double;

/// Callback executed when an event fires.
using EventFn = InlineFn;

/// Opaque handle identifying a scheduled event; used for cancellation.
/// Packs (generation << 32 | slot + 1); a handle outlives its event
/// harmlessly because the slot's generation moves on when it is freed.
struct EventId {
  std::uint64_t value = 0;

  friend bool operator==(EventId a, EventId b) noexcept {
    return a.value == b.value;
  }
  /// A default-constructed id never names a live event.
  explicit operator bool() const noexcept { return value != 0; }
};

namespace detail {

/// Slab of pooled event slots shared by every timer-queue backend: stable
/// chunked storage for the callables, generation-tagged handles, O(1)
/// alloc/free through a free list.  Keeping allocation *here* — and only
/// the ordering structure in the backends — is what makes EventIds (and
/// hence fingerprints) bit-identical across backends.
class SlotPool {
 public:
  /// Live (scheduled, not-yet-fired, not-cancelled) events.
  std::size_t live_count() const noexcept { return live_; }

 protected:
  /// Slot indices use the low kSlotBits of an ordering key; the rest is
  /// the insertion sequence.  ~1M simultaneous pending events and 2^44
  /// total pushes are both far beyond any simulated run.
  static constexpr unsigned kSlotBits = 20;
  static constexpr std::uint32_t kSlotMask = (1u << kSlotBits) - 1;

  /// All-ones sequence field tags a free slot's key; its low bits then
  /// hold the free-list link (kSlotMask = end of list).  next_seq_ never
  /// reaches this value.
  static constexpr std::uint64_t kFreeSeq =
      (std::uint64_t{1} << (64 - kSlotBits)) - 1;

  /// Slots are allocated in chunks so their addresses — and the callables
  /// stored inside — never move as the slab grows.  The first chunk is
  /// small (most simulations keep well under 64 events pending); every
  /// later chunk is a fixed 32 KiB.
  static constexpr std::uint32_t kFirstChunkSize = 64;  // 4 KiB starter slab
  static constexpr unsigned kChunkShift = 9;  // 512 slots = 32 KiB per chunk
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;

  /// 16 bytes.  key = (seq << kSlotBits) | slot; comparing keys directly
  /// yields FIFO order on time ties because seq occupies the high bits and
  /// is unique.
  struct HeapEntry {
    Time time;
    std::uint64_t key;
  };

  /// Exactly one cache line: 56 bytes of callable + the occupant's key.
  /// An ordering entry is live iff its key matches its slot's — cancel and
  /// pop free the slot (new key), instantly orphaning the entry.
  /// Default state is free with a null free-list link (all-ones key).
  struct alignas(64) Slot {
    EventFn fn;
    std::uint64_t key = ~std::uint64_t{0};
  };

  static constexpr std::uint32_t entry_slot(std::uint64_t key) noexcept {
    return static_cast<std::uint32_t>(key) & kSlotMask;
  }
  static constexpr bool slot_is_free(std::uint64_t key) noexcept {
    return (key >> kSlotBits) == kFreeSeq;
  }

  /// (time, insertion sequence) total order — the determinism contract.
  static bool earlier(const HeapEntry& a, const HeapEntry& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.key < b.key;
  }

  Slot& slot_at(std::uint32_t i) noexcept {
    if (i < kFirstChunkSize) return chunks_[0][i];
    const std::uint32_t r = i - kFirstChunkSize;
    return chunks_[1 + (r >> kChunkShift)][r & (kChunkSize - 1)];
  }
  const Slot& slot_at(std::uint32_t i) const noexcept {
    if (i < kFirstChunkSize) return chunks_[0][i];
    const std::uint32_t r = i - kFirstChunkSize;
    return chunks_[1 + (r >> kChunkShift)][r & (kChunkSize - 1)];
  }

  /// Slots constructible before another chunk allocation is needed.
  std::uint32_t slot_capacity() const noexcept {
    if (chunks_.empty()) return 0;
    return kFirstChunkSize +
           static_cast<std::uint32_t>(chunks_.size() - 1) * kChunkSize;
  }

  // The slot operations below are defined here — not in a .cpp — so they
  // inline into every backend's push/cancel/pop (they sit on the hottest
  // loop in the simulator; an out-of-line bind_slot costs a measurable
  // fraction of BM_EventQueuePushPop).

  /// Resolves a handle to its live slot, or nullptr when stale/unknown.
  const Slot* find_live(EventId id) const noexcept {
    if (!id) return nullptr;
    const std::uint64_t slot_plus_1 = id.value & 0xffffffffu;
    if (slot_plus_1 == 0 || slot_plus_1 > slot_count_) return nullptr;
    const Slot& s = slot_at(static_cast<std::uint32_t>(slot_plus_1 - 1));
    if (slot_is_free(s.key)) return nullptr;
    if (static_cast<std::uint32_t>(s.key >> kSlotBits) !=
        static_cast<std::uint32_t>(id.value >> 32)) {
      return nullptr;
    }
    return &s;
  }
  Slot* find_live(EventId id) noexcept {
    return const_cast<Slot*>(std::as_const(*this).find_live(id));
  }

  std::uint32_t alloc_slot() {
    if (free_head_ != kSlotMask) {
      const std::uint32_t s = free_head_;
      free_head_ = entry_slot(slot_at(s).key);  // free-list link in low bits
      return s;
    }
    return alloc_slot_grow();
  }
  /// Returns a slot to the free list; the caller has dealt with fn.
  void free_slot(std::uint32_t s) noexcept {
    slot_at(s).key = (kFreeSeq << kSlotBits) | free_head_;
    free_head_ = s;
  }

  /// Stores @p fn in a fresh slot, stamping the next insertion sequence.
  /// Returns the slot's ordering key; the backend indexes it by time.
  /// Takes the callable by rvalue reference so it moves exactly once —
  /// caller's frame straight into the slot.
  std::uint64_t bind_slot(EventFn&& fn) {
    const std::uint32_t s = alloc_slot();
    Slot& slot = slot_at(s);
    const std::uint64_t key = (next_seq_++ << kSlotBits) | s;
    slot.key = key;
    slot.fn = std::move(fn);
    ++live_;
    return key;
  }

  /// Public handle for the slot @p key occupies (push()'s return value).
  static EventId id_for(std::uint64_t key) noexcept {
    const auto gen = static_cast<std::uint32_t>(key >> kSlotBits);
    return EventId{(static_cast<std::uint64_t>(gen) << 32) |
                   (static_cast<std::uint64_t>(entry_slot(key)) + 1)};
  }

  /// Cold path of alloc_slot(): free list empty, may grow the slab.
  std::uint32_t alloc_slot_grow();

  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::size_t live_ = 0;          // live events (orphans may linger elsewhere)
  std::uint32_t slot_count_ = 0;  // slots handed out at least once
  std::uint32_t free_head_ = kSlotMask;
  std::uint64_t next_seq_ = 0;
  /// SDA_VALIDATE bookkeeping: pop watermark (each pop must be >= the
  /// previous pop or the earliest time pushed since — anything lower means
  /// broken order) and a mutation counter driving the validate cadence.
  Time last_pop_time_ = std::numeric_limits<Time>::lowest();
  std::uint64_t mutations_ = 0;
};

}  // namespace detail

/// Priority queue of timed callbacks — the Engine's pluggable backend.
class TimerQueue {
 public:
  virtual ~TimerQueue() = default;

  /// Schedules @p fn at absolute time @p t; returns a handle for cancel().
  virtual EventId push(Time t, EventFn fn) = 0;

  /// Cancels a pending event, destroying its callable immediately.
  /// Returns false when the handle is unknown, already fired, or already
  /// cancelled; true when the event was live.
  virtual bool cancel(EventId id) = 0;

  /// True when a handle names a scheduled, not-yet-fired event.
  virtual bool pending(EventId id) const noexcept = 0;

  /// True when no live events remain.
  virtual bool empty() const noexcept = 0;

  /// Number of live (scheduled, not-yet-fired, not-cancelled) events.
  virtual std::size_t size() const noexcept = 0;

  /// Time of the earliest live event. Requires !empty().
  virtual Time peek_time() const = 0;

  /// pop result carrying the pool slot the event occupied.  The slot is
  /// recycled by the time this returns, so it is useful only as a key into
  /// caller-side side tables populated at push time (see sim::Fabric).
  struct Popped {
    Time time;
    EventFn fn;
    std::uint32_t slot;
  };

  /// Removes and returns the earliest live event, reporting the slot index
  /// it occupied.  Requires !empty().
  virtual Popped pop_slot() = 0;

  /// SDA_VALIDATE oracle: full structural self-check; O(n); aborts with a
  /// structured dump on any violation (see core/invariants.hpp).
  virtual void validate() const = 0;

  /// Registry spelling of this backend ("heap", "wheel", ...).
  virtual const char* backend_name() const noexcept = 0;

  /// Removes and returns the earliest live event as (time, callback).
  /// Requires !empty().
  std::pair<Time, EventFn> pop() {
    Popped p = pop_slot();
    return {p.time, std::move(p.fn)};
  }

  /// Slot index a live handle from push() occupies — the side-table key
  /// matching Popped::slot.  Meaningful only while the event is pending.
  static constexpr std::uint32_t slot_of(EventId id) noexcept {
    return static_cast<std::uint32_t>(id.value & 0xffffffffu) - 1;
  }
};

// --- backend registry -----------------------------------------------------
//
// Same shape (and same generic machinery) as the strategy registries:
// built-ins self-register on first use; register_timer_queue extends the
// factory so a user backend is reachable from every config-driven surface
// — ExperimentConfig's `timer_queue=` key, sda_run, and the sharded
// fabric.  register_timer_queue is not thread-safe against concurrent
// make_timer_queue calls: register custom backends up front.

using TimerQueueFactory =
    util::UniqueFn<std::unique_ptr<TimerQueue>(const std::string&)>;

/// Registers a backend under @p name.  Throws std::invalid_argument when
/// the name (or prefix) is already registered.
void register_timer_queue(const std::string& name, TimerQueueFactory factory,
                          util::NameMatch match = util::NameMatch::kExact,
                          const std::string& display = {});

/// Display names of every registered backend, in registration order.
std::vector<std::string> list_timer_queue_names();

/// Factory: "heap", "wheel", plus anything registered (case-insensitive).
/// Throws std::invalid_argument on unknown names, listing the registered
/// backends and suggesting near-misses.
std::unique_ptr<TimerQueue> make_timer_queue(const std::string& name);

}  // namespace sda::sim
