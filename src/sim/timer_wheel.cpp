#include "src/sim/timer_wheel.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/core/invariants.hpp"

namespace sda::sim {

namespace oracle = core::invariants;

namespace {
/// Tick saturation bound: far inside int64 range, far beyond any simulated
/// horizon.  Saturated ticks classify into overflow; ordering is untouched
/// because the ready heap compares exact times.
constexpr std::int64_t kTickCap = 4'000'000'000'000'000'000;
}  // namespace

std::int64_t TimerWheel::tick_of(Time t) const noexcept {
  const double d = std::floor(t / width_);
  if (!(d > static_cast<double>(-kTickCap))) return -kTickCap;  // also NaN
  if (d > static_cast<double>(kTickCap)) return kTickCap;
  return static_cast<std::int64_t>(d);
}

std::uint32_t TimerWheel::scan(const std::uint64_t* bits,
                               std::uint32_t from) noexcept {
  if (from >= kWheelSize) return kWheelSize;
  std::uint32_t w = from >> 6;
  std::uint64_t word = bits[w] & (~std::uint64_t{0} << (from & 63));
  for (;;) {
    if (word != 0) {
      return (w << 6) + static_cast<std::uint32_t>(std::countr_zero(word));
    }
    if (++w >= kWords) return kWheelSize;
    word = bits[w];
  }
}

void TimerWheel::seed(Time t) {
  base_tick_ = tick_of(t);
  j0_ = 0;
  swept0_ = 0;
  seeded_ = true;
}

void TimerWheel::place(const HeapEntry& e) {
  const std::int64_t tk = tick_of(e.time);
  const std::int64_t w0 = win0_start();
  if (tk < w0 + static_cast<std::int64_t>(swept0_)) {
    // At or below the sweep boundary (including anything before the epoch
    // base): the bucket that would hold it has already been drained, so it
    // competes in the exactly-ordered ready heap directly.
    ready_push(e);
    return;
  }
  if (tk < w0 + static_cast<std::int64_t>(kWheelSize)) {
    const auto i = static_cast<std::uint32_t>(tk - w0);
    level0_[i].push_back(e);
    bits0_[i >> 6] |= std::uint64_t{1} << (i & 63);
    return;
  }
  const std::int64_t span =
      static_cast<std::int64_t>(kWheelSize) * kWheelSize;
  if (tk < base_tick_ + span) {
    const auto j = static_cast<std::uint32_t>((tk - base_tick_) / kWheelSize);
    level1_[j].push_back(e);
    bits1_[j >> 6] |= std::uint64_t{1} << (j & 63);
    return;
  }
  overflow_.push_back(e);
}

void TimerWheel::sweep_level0(std::uint32_t i) {
  std::vector<HeapEntry>& b = level0_[i];
  for (const HeapEntry& e : b) {
    if (entry_live(e)) ready_push(e);  // orphans (cancelled) drop here
  }
  b.clear();
  bits0_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  swept0_ = i + 1;
}

void TimerWheel::cascade_level1(std::uint32_t j) {
  j0_ = j;
  swept0_ = 0;
  std::vector<HeapEntry>& b = level1_[j];
  // Every entry of level-1 bucket j ticks inside the new level-0 window,
  // so place() routes them to level-0 buckets (never back here).
  for (const HeapEntry& e : b) {
    if (entry_live(e)) place(e);
  }
  b.clear();
  bits1_[j >> 6] &= ~(std::uint64_t{1} << (j & 63));
}

void TimerWheel::reseed_from_overflow() {
  std::vector<HeapEntry> alive;
  alive.reserve(overflow_.size());
  for (const HeapEntry& e : overflow_) {
    if (entry_live(e)) alive.push_back(e);
  }
  overflow_.clear();
  if (alive.empty()) return;

  Time tmin = alive.front().time;
  for (const HeapEntry& e : alive) tmin = std::min(tmin, e.time);
  if (alive.size() >= 2) {
    // Adapt the bucket width to the observed spacing so both clustered and
    // heavy-tailed deadline mixes keep buckets shallow: spread the
    // 90th-percentile span over the entries below it.  Deterministic — a
    // pure function of the stored times.
    const std::size_t hi = (alive.size() - 1) * 9 / 10;
    std::nth_element(alive.begin(),
                     alive.begin() + static_cast<std::ptrdiff_t>(hi),
                     alive.end(), [](const HeapEntry& a, const HeapEntry& b) {
                       return a.time < b.time;
                     });
    const Time t90 = alive[hi].time;
    const double spacing =
        (t90 - tmin) / static_cast<double>(hi == 0 ? 1 : hi);
    if (std::isfinite(spacing) && spacing > 1e-9) width_ = spacing;
  }
  seed(tmin);
  for (const HeapEntry& e : alive) place(e);
}

void TimerWheel::skim_ready() noexcept {
  while (!ready_.empty() && !entry_live(ready_.front())) ready_pop_root();
}

void TimerWheel::ensure_front() {
  for (;;) {
    skim_ready();
    // Earliest tick any still-bucketed entry could have.
    std::int64_t nb = 0;
    int kind = -1;  // -1 none, 0 level0, 1 level1, 2 overflow
    std::uint32_t i = scan(bits0_, swept0_);
    std::uint32_t j = kWheelSize;
    if (i < kWheelSize) {
      kind = 0;
      nb = win0_start() + i;
    } else {
      j = scan(bits1_, j0_ + 1);
      if (j < kWheelSize) {
        kind = 1;
        nb = base_tick_ + static_cast<std::int64_t>(j) * kWheelSize;
      } else if (!overflow_.empty()) {
        kind = 2;
        nb = base_tick_ +
             static_cast<std::int64_t>(kWheelSize) * kWheelSize;
      }
    }
    if (!ready_.empty()) {
      // Strictly below the next bucket's first tick the ready top cannot be
      // beaten; at the same tick a bucketed entry could still win on the
      // insertion sequence, so sweep on.
      if (kind < 0 || tick_of(ready_.front().time) < nb) return;
    } else if (kind < 0) {
      return;
    }
    switch (kind) {
      case 0:
        sweep_level0(i);
        break;
      case 1:
        cascade_level1(j);
        break;
      default:
        reseed_from_overflow();
        break;
    }
  }
}

void TimerWheel::clear_drained() noexcept {
  for (std::uint32_t w = 0; w < kWords; ++w) {
    std::uint64_t word = bits0_[w];
    while (word != 0) {
      const auto b = static_cast<std::uint32_t>(std::countr_zero(word));
      level0_[(w << 6) + b].clear();
      word &= word - 1;
    }
    word = bits1_[w];
    while (word != 0) {
      const auto b = static_cast<std::uint32_t>(std::countr_zero(word));
      level1_[(w << 6) + b].clear();
      word &= word - 1;
    }
    bits0_[w] = 0;
    bits1_[w] = 0;
  }
  overflow_.clear();
  ready_.clear();
  seeded_ = false;
  j0_ = 0;
  swept0_ = 0;
}

// --- ready heap (4-ary, identical ordering to the heap backend) ----------

void TimerWheel::ready_push(const HeapEntry& e) {
  ready_.push_back(e);
  ready_sift_up(ready_.size() - 1);
}

void TimerWheel::ready_sift_up(std::size_t pos) noexcept {
  const HeapEntry e = ready_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 4;
    if (!earlier(e, ready_[parent])) break;
    ready_[pos] = ready_[parent];
    pos = parent;
  }
  ready_[pos] = e;
}

void TimerWheel::ready_sift_down(std::size_t pos) noexcept {
  const HeapEntry e = ready_[pos];
  const std::size_t n = ready_.size();
  std::size_t hole = pos;
  for (;;) {
    const std::size_t first = 4 * hole + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = first + 4 < n ? first + 4 : n;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (earlier(ready_[c], ready_[best])) best = c;
    }
    ready_[hole] = ready_[best];
    hole = best;
  }
  while (hole > pos) {
    const std::size_t parent = (hole - 1) / 4;
    if (!earlier(e, ready_[parent])) break;
    ready_[hole] = ready_[parent];
    hole = parent;
  }
  ready_[hole] = e;
}

void TimerWheel::ready_pop_root() noexcept {
  const std::size_t last = ready_.size() - 1;
  if (last > 0) {
    ready_[0] = ready_[last];
    ready_.pop_back();
    ready_sift_down(0);
  } else {
    ready_.pop_back();
  }
}

// --- TimerQueue interface -------------------------------------------------

EventId TimerWheel::push(Time t, EventFn fn) {
  if (oracle::enabled() && std::isnan(t)) {
    oracle::fail("timer-wheel-nan-time",
                 oracle::Dump().integer("live",
                                        static_cast<long long>(live_)));
  }
  if (!seeded_) seed(t);
  const std::uint64_t key = bind_slot(std::move(fn));
  place(HeapEntry{t, key});
  // Lower the pop watermark: a push below the last popped time is legal
  // for a standalone queue (the Engine's clock is what's monotonic).
  if (t < last_pop_time_) last_pop_time_ = t;
  if (oracle::enabled()) oracle_after_mutation();
  return id_for(key);
}

bool TimerWheel::cancel(EventId id) {
  Slot* live = find_live(id);
  if (live == nullptr) return false;
  live->fn.reset();  // release captures now, not when the entry surfaces
  free_slot(entry_slot(live->key));  // orphans the bucketed entry
  --live_;
  if (live_ == 0) clear_drained();
  if (oracle::enabled()) oracle_after_mutation();
  return true;
}

Time TimerWheel::peek_time() const {
  if (live_ == 0) {
    throw std::logic_error("TimerWheel::peek_time on empty queue");
  }
  // Logically const: advancing the sweep boundary changes no observable
  // pop order, only which internal structure holds each pending entry.
  auto* self = const_cast<TimerWheel*>(this);
  self->ensure_front();
  return ready_.front().time;
}

TimerWheel::Popped TimerWheel::pop_slot() {
  if (live_ == 0) throw std::logic_error("TimerWheel::pop on empty queue");
  ensure_front();
  const HeapEntry top = ready_.front();
  if (oracle::enabled() && top.time < last_pop_time_) {
    oracle::fail("timer-wheel-pop-time-decreased",
                 oracle::Dump()
                     .num("pop_time", top.time)
                     .num("previous_pop_time", last_pop_time_)
                     .integer("live", static_cast<long long>(live_)));
  }
  last_pop_time_ = top.time;
  const std::uint32_t s = entry_slot(top.key);
  EventFn fn = std::move(slot_at(s).fn);
  free_slot(s);
  --live_;
  ready_pop_root();
  if (live_ == 0) {
    // A drained queue may be reused from an earlier timestamp: reset the
    // watermark and re-seed the epoch on the next push.
    last_pop_time_ = std::numeric_limits<Time>::lowest();
    clear_drained();
  }
  if (oracle::enabled()) oracle_after_mutation();
  return Popped{top.time, std::move(fn), s};
}

void TimerWheel::validate() const {
  std::size_t live_seen = 0;
  for (std::size_t i = 0; i < ready_.size(); ++i) {
    if (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (earlier(ready_[i], ready_[parent])) {
        oracle::fail(
            "timer-wheel-ready-order",
            oracle::Dump()
                .integer("index", static_cast<long long>(i))
                .num("entry_time", ready_[i].time)
                .num("parent_time", ready_[parent].time)
                .integer("size", static_cast<long long>(ready_.size())));
      }
    }
    if (entry_live(ready_[i])) ++live_seen;
  }
  for (std::uint32_t i = 0; i < kWheelSize; ++i) {
    const bool bit0 = (bits0_[i >> 6] >> (i & 63)) & 1;
    if (bit0 != !level0_[i].empty()) {
      oracle::fail("timer-wheel-bitmap-level0",
                   oracle::Dump().integer("bucket", i));
    }
    const bool bit1 = (bits1_[i >> 6] >> (i & 63)) & 1;
    if (bit1 != !level1_[i].empty()) {
      oracle::fail("timer-wheel-bitmap-level1",
                   oracle::Dump().integer("bucket", i));
    }
    for (const HeapEntry& e : level0_[i]) {
      if (entry_live(e)) ++live_seen;
    }
    for (const HeapEntry& e : level1_[i]) {
      if (entry_live(e)) ++live_seen;
    }
  }
  for (const HeapEntry& e : overflow_) {
    if (entry_live(e)) ++live_seen;
  }
  if (live_seen != live_) {
    oracle::fail("timer-wheel-live-count",
                 oracle::Dump()
                     .integer("live_counter", static_cast<long long>(live_))
                     .integer("live_entries",
                              static_cast<long long>(live_seen)));
  }
}

void TimerWheel::oracle_after_mutation() {
  // Same deterministic cadence as the heap backend: every mutation while
  // small, every 64th at scale.
  ++mutations_;
  if (live_ <= 64 || (mutations_ & 63) == 0) validate();
}

}  // namespace sda::sim
