// Small-buffer-optimized move-only callable for simulation events.
//
// Every scheduled event used to carry a std::function<void()>, whose
// captures (a this-pointer plus a TaskPtr or two) almost always fit in a
// few dozen bytes yet still cost a heap allocation on most standard
// libraries once more than one pointer is captured.  InlineFn stores any
// nothrow-movable callable of up to kBufferSize bytes directly inside the
// object; larger or potentially-throwing-move callables fall back to a
// single heap cell.  Move-only semantics are sufficient for the event
// queue (events are scheduled once and fired once) and lift the
// copyability requirement std::function imposes on captures.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace sda::sim {

class InlineFn {
 public:
  /// Inline capture budget.  48 bytes holds a this-pointer plus several
  /// shared_ptrs; together with the ops pointer an InlineFn is 56 bytes,
  /// so an event-pool slot stays within one cache line.
  static constexpr std::size_t kBufferSize = 48;

  InlineFn() noexcept = default;
  InlineFn(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineFn(F&& f) {  // NOLINT(runtime/explicit)
    construct<D>(std::forward<F>(f));
  }

  InlineFn(InlineFn&& other) noexcept { move_from(other); }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  /// Invokes the stored callable. Requires *this to be non-empty.
  void operator()() { ops_->invoke(&buf_); }

  /// True when a callable is stored.
  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// Destroys the stored callable (releasing whatever its captures own)
  /// and leaves *this empty.  No-op when already empty.
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(&buf_);
      ops_ = nullptr;
    }
  }

  /// True when a callable of type D would be stored inline (no allocation).
  template <typename D>
  static constexpr bool stores_inline() noexcept {
    return fits_inline<std::decay_t<D>>;
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-constructs the payload into dst and destroys it at src.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  /// Inline storage requires a nothrow move so that relocation (and thus
  /// InlineFn's move operations) can be noexcept.
  template <typename D>
  static constexpr bool fits_inline =
      sizeof(D) <= kBufferSize && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  struct InlineOps {
    static void invoke(void* p) { (*static_cast<D*>(p))(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) D(std::move(*static_cast<D*>(src)));
      static_cast<D*>(src)->~D();
    }
    static void destroy(void* p) noexcept { static_cast<D*>(p)->~D(); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  template <typename D>
  struct HeapOps {
    static D*& ptr(void* p) noexcept { return *static_cast<D**>(p); }
    static void invoke(void* p) { (*ptr(p))(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) D*(ptr(src));
    }
    static void destroy(void* p) noexcept { delete ptr(p); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  template <typename D, typename F>
  void construct(F&& f) {
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(&buf_)) D(std::forward<F>(f));
      ops_ = &InlineOps<D>::ops;
    } else {
      ::new (static_cast<void*>(&buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &HeapOps<D>::ops;
    }
  }

  void move_from(InlineFn& other) noexcept {
    if (other.ops_ != nullptr) {
      ops_ = other.ops_;
      ops_->relocate(&buf_, &other.buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte buf_[kBufferSize];
  const Ops* ops_ = nullptr;
};

}  // namespace sda::sim
