#include "src/workload/pex_model.hpp"

#include <cmath>

namespace sda::workload {

double PexModel::predict(double ex, util::Rng& rng) const {
  switch (kind_) {
    case PexKind::kExact:
      return ex;
    case PexKind::kLogUniformNoise: {
      const double u = rng.uniform(-1.0, 1.0);
      return ex * std::pow(param_, u);
    }
    case PexKind::kDistributionMean:
      return param_;
  }
  return ex;
}

}  // namespace sda::workload
