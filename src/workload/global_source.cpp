#include "src/workload/global_source.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace sda::workload {

double ParallelGlobalSource::expected_work(const Config& c) noexcept {
  double spread_mean = 1.0;
  if (c.exec_spread > 1.0) {
    const double s = c.exec_spread;
    spread_mean = (s - 1.0 / s) / (2.0 * std::log(s));
  }
  return 0.5 * static_cast<double>(c.n_min + c.n_max) * c.mean_subtask_exec *
         spread_mean;
}

ParallelGlobalSource::ParallelGlobalSource(sim::Engine& engine,
                                           core::ProcessManager& pm,
                                           util::Rng rng, Config config)
    : engine_(engine),
      pm_(pm),
      rng_(rng),
      config_(config),
      interarrival_(config.lambda > 0.0 ? config.lambda : 1.0,
                    config.burst_factor, config.burst_cycle) {
  if (config_.lambda < 0.0) {
    throw std::invalid_argument("ParallelGlobalSource: negative arrival rate");
  }
  if (config_.burst_factor < 1.0) {
    throw std::invalid_argument(
        "ParallelGlobalSource: burst_factor must be >= 1");
  }
  if (config_.n_min < 1 || config_.n_min > config_.n_max) {
    throw std::invalid_argument("ParallelGlobalSource: bad [n_min, n_max]");
  }
  if (config_.n_max > config_.k) {
    throw std::invalid_argument(
        "ParallelGlobalSource: n_max exceeds node count (subtasks must run "
        "at distinct nodes)");
  }
  if (config_.slack_min > config_.slack_max) {
    throw std::invalid_argument("ParallelGlobalSource: slack_min > slack_max");
  }
  if (config_.mean_subtask_exec <= 0.0) {
    throw std::invalid_argument(
        "ParallelGlobalSource: mean_subtask_exec must be positive");
  }
  if (config_.exec_spread < 1.0) {
    throw std::invalid_argument(
        "ParallelGlobalSource: exec_spread must be >= 1");
  }
  if (!config_.placement) {
    config_.placement = std::make_shared<UniformPlacement>();
  }
  if (!config_.exec) {
    config_.exec = ExecDistribution::exponential(config_.mean_subtask_exec);
  }
}

void ParallelGlobalSource::start() {
  if (config_.lambda <= 0.0) return;
  engine_.in(interarrival_.next(rng_), [this] { arrival(); });
}

void ParallelGlobalSource::arrival() {
  const sim::Time now = engine_.now();
  const int n = static_cast<int>(
      rng_.uniform_int(config_.n_min, config_.n_max));

  std::vector<int> sites(static_cast<std::size_t>(n));
  config_.placement->choose(config_.k, n, rng_, sites.data());

  std::vector<task::TreePtr> leaves;
  leaves.reserve(static_cast<std::size_t>(n));
  double max_ex = 0.0;
  for (int i = 0; i < n; ++i) {
    double scale = 1.0;
    if (config_.exec_spread > 1.0) {
      scale = std::pow(config_.exec_spread, rng_.uniform(-1.0, 1.0));
    }
    const double ex = config_.exec->sample(rng_) * scale;
    max_ex = std::max(max_ex, ex);
    const double pex = config_.pex.predict(ex, rng_);
    leaves.push_back(task::make_leaf(sites[static_cast<std::size_t>(i)], ex, pex));
  }
  task::TreePtr tree = n == 1 ? std::move(leaves.front())
                              : task::make_parallel(std::move(leaves));

  const double slack = rng_.uniform(config_.slack_min, config_.slack_max);
  const sim::Time deadline = now + max_ex + slack;  // Equation 2

  ++generated_;
  // The admission gate sits strictly after every RNG draw, so gated and
  // ungated runs consume identical random sequences.
  bool admit = true;
  sim::Time effective_deadline = deadline;
  if (config_.admission != nullptr) {
    const core::AdmissionOutcome outcome =
        config_.admission->decide(*tree, now, deadline, pm_.next_run_id());
    admit = outcome.decision == core::AdmissionDecision::kAdmit ||
            outcome.decision == core::AdmissionDecision::kAdmitDegraded;
    effective_deadline = outcome.deadline;
  }
  if (admit) {
    pm_.submit(std::move(tree), effective_deadline, metrics::global_class(n),
               config_.subtask_metrics_class);
  } else {
    ++not_admitted_;
  }
  engine_.in(interarrival_.next(rng_), [this] { arrival(); });
}

}  // namespace sda::workload
