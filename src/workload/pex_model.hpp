// Execution-time prediction models.
//
// SDA strategies never see ex(X); they see pex(X), "an approximation to
// ex(X)" (paper §3.1).  The baseline experiments use perfect predictions;
// bench/ablation_pex_noise reproduces [6]'s claim that EQF tolerates
// estimates off by a factor of ~2 using the log-uniform noise model.
#pragma once

#include "src/util/rng.hpp"

namespace sda::workload {

enum class PexKind {
  kExact,            ///< pex = ex
  kLogUniformNoise,  ///< pex = ex * f^u, u ~ U[-1, 1]: off by up to factor f
  kDistributionMean, ///< pex = the distribution mean, ignoring the draw
};

class PexModel {
 public:
  /// Perfect prediction.
  static PexModel exact() { return PexModel(PexKind::kExact, 1.0); }

  /// Multiplicative log-uniform noise; @p factor >= 1 bounds the error
  /// ("off by a factor of 2" => factor = 2).
  static PexModel log_uniform(double factor) {
    return PexModel(PexKind::kLogUniformNoise, factor);
  }

  /// Always predicts @p mean (e.g. 1/mu_subtask) — the weakest estimator a
  /// system could use without per-task knowledge.
  static PexModel distribution_mean(double mean) {
    return PexModel(PexKind::kDistributionMean, mean);
  }

  /// Predicted execution time for a task whose true demand is @p ex.
  double predict(double ex, util::Rng& rng) const;

  PexKind kind() const noexcept { return kind_; }
  double parameter() const noexcept { return param_; }

 private:
  PexModel(PexKind kind, double param) : kind_(kind), param_(param) {}

  PexKind kind_;
  double param_;  ///< noise factor or fixed mean, depending on kind
};

}  // namespace sda::workload
