#include "src/workload/scenarios.hpp"

#include <stdexcept>

namespace sda::workload {

const std::vector<Scenario>& scenarios() {
  static const std::vector<Scenario> kScenarios = {
      {"stock-trading",
       "the paper's Figure 14 pipeline: init, gather information from 4 "
       "sources, analyze, implement 4 buy/sell actions, conclude",
       {1, 4, 1, 4, 1}},
      {"web-request",
       "interactive request: parse, fan out to 5 backend services, render",
       {1, 5, 1}},
      {"sensor-fusion",
       "control loop: sample 6 sensors in parallel, fuse, actuate",
       {6, 1, 1}},
      {"etl-pipeline",
       "batch ETL: extract, 3-way transform, merge, 3-way load, verify",
       {1, 3, 1, 3, 1}},
      {"map-reduce",
       "one wave of map-reduce: split, 6 parallel mappers, reduce",
       {1, 6, 1}},
  };
  return kScenarios;
}

const Scenario& find_scenario(const std::string& name) {
  for (const Scenario& s : scenarios()) {
    if (s.name == name) return s;
  }
  std::string known;
  for (const Scenario& s : scenarios()) {
    if (!known.empty()) known += ", ";
    known += s.name;
  }
  throw std::invalid_argument("unknown scenario '" + name +
                              "' (known: " + known + ")");
}

}  // namespace sda::workload
