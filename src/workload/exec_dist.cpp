#include "src/workload/exec_dist.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace sda::workload {

ExecDistribution ExecDistribution::deterministic(double value) {
  if (value < 0.0) {
    throw std::invalid_argument("deterministic: value must be >= 0");
  }
  return ExecDistribution(Kind::kDeterministic, value, 0.0, value, 0.0);
}

ExecDistribution ExecDistribution::uniform(double lo, double hi) {
  if (lo < 0.0 || lo > hi) {
    throw std::invalid_argument("uniform: need 0 <= lo <= hi");
  }
  const double mean = 0.5 * (lo + hi);
  const double sd = (hi - lo) / (2.0 * std::sqrt(3.0));
  return ExecDistribution(Kind::kUniform, lo, hi, mean,
                          mean > 0.0 ? sd / mean : 0.0);
}

ExecDistribution ExecDistribution::exponential(double mean) {
  if (mean <= 0.0) throw std::invalid_argument("exponential: mean must be > 0");
  return ExecDistribution(Kind::kExponential, mean, 0.0, mean, 1.0);
}

ExecDistribution ExecDistribution::hyperexponential(double mean, double cv) {
  if (mean <= 0.0) throw std::invalid_argument("H2: mean must be > 0");
  if (cv <= 1.0) throw std::invalid_argument("H2: cv must be > 1");
  // Balanced-means two-phase H2: phase probability p and rates such that
  // p/mu1 = (1-p)/mu2 = mean/2.
  const double c2 = cv * cv;
  const double p = 0.5 * (1.0 + std::sqrt((c2 - 1.0) / (c2 + 1.0)));
  return ExecDistribution(Kind::kHyperExp, p, mean, mean, cv);
}

double ExecDistribution::sample(util::Rng& rng) const {
  switch (kind_) {
    case Kind::kDeterministic:
      return a_;
    case Kind::kUniform:
      return rng.uniform(a_, b_);
    case Kind::kExponential:
      return rng.exponential(a_);
    case Kind::kHyperExp: {
      const double p = a_, mean = b_;
      // Balanced means: each phase contributes mean/2 in expectation.
      const double phase_mean =
          rng.uniform01() < p ? mean / (2.0 * p) : mean / (2.0 * (1.0 - p));
      return rng.exponential(phase_mean);
    }
  }
  return 0.0;
}

ExecDistribution make_exec_distribution(const std::string& name, double mean,
                                        double cv) {
  if (name == "exponential") return ExecDistribution::exponential(mean);
  if (name == "deterministic") return ExecDistribution::deterministic(mean);
  if (name == "uniform") return ExecDistribution::uniform(0.0, 2.0 * mean);
  if (name == "hyperexp") return ExecDistribution::hyperexponential(mean, cv);
  throw std::invalid_argument(
      "unknown service distribution: " + name +
      " (expected exponential, deterministic, uniform, or hyperexp)");
}

std::string ExecDistribution::describe() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::kDeterministic: os << "deterministic(" << a_ << ")"; break;
    case Kind::kUniform: os << "uniform[" << a_ << ", " << b_ << "]"; break;
    case Kind::kExponential: os << "exponential(mean=" << a_ << ")"; break;
    case Kind::kHyperExp:
      os << "H2(mean=" << b_ << ", cv=" << cv_ << ")";
      break;
  }
  return os.str();
}

}  // namespace sda::workload
