#include "src/workload/random_graph.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace sda::workload {

RandomGraphSource::RandomGraphSource(sim::Engine& engine,
                                     core::ProcessManager& pm, util::Rng rng,
                                     Config config)
    : engine_(engine), pm_(pm), rng_(rng), config_(config) {
  if (config_.lambda < 0.0) {
    throw std::invalid_argument("RandomGraphSource: negative arrival rate");
  }
  if (config_.k < 2) {
    throw std::invalid_argument("RandomGraphSource: need k >= 2");
  }
  if (config_.max_depth < 1) {
    throw std::invalid_argument("RandomGraphSource: max_depth must be >= 1");
  }
  if (config_.min_children < 2 || config_.min_children > config_.max_children) {
    throw std::invalid_argument(
        "RandomGraphSource: need 2 <= min_children <= max_children");
  }
  if (config_.leaf_probability < 0.0 || config_.leaf_probability >= 1.0) {
    throw std::invalid_argument(
        "RandomGraphSource: leaf_probability must be in [0, 1)");
  }
  if (config_.mean_subtask_exec <= 0.0) {
    throw std::invalid_argument(
        "RandomGraphSource: mean_subtask_exec must be positive");
  }
  if (config_.slack_min > config_.slack_max) {
    throw std::invalid_argument("RandomGraphSource: slack_min > slack_max");
  }
  if (config_.calibration_samples < 1) {
    throw std::invalid_argument(
        "RandomGraphSource: calibration_samples must be >= 1");
  }

  // Calibrate the expected work per task on a dedicated stream.
  util::Rng calibration = rng_.split();
  std::swap(rng_, calibration);  // draw_tree uses rng_
  double total = 0.0;
  for (int i = 0; i < config_.calibration_samples; ++i) {
    total += task::total_ex(*draw_tree());
  }
  std::swap(rng_, calibration);  // restore the arrival stream
  mean_work_ = total / static_cast<double>(config_.calibration_samples);
}

task::TreePtr RandomGraphSource::draw_node(int depth_left) {
  if (depth_left == 0 || rng_.uniform01() < config_.leaf_probability) {
    const double ex = rng_.exponential(config_.mean_subtask_exec);
    return task::make_leaf(static_cast<int>(rng_.uniform_int(0, config_.k - 1)),
                           ex, config_.pex.predict(ex, rng_));
  }
  const bool parallel = rng_.bernoulli(config_.parallel_probability);
  int hi = config_.max_children;
  if (parallel) hi = std::min(hi, config_.k);
  const int lo = std::min(config_.min_children, hi);
  const int kids = static_cast<int>(rng_.uniform_int(lo, hi));
  std::vector<task::TreePtr> children;
  children.reserve(static_cast<std::size_t>(kids));
  for (int i = 0; i < kids; ++i) {
    children.push_back(draw_node(depth_left - 1));
  }
  if (parallel) {
    // Parallel siblings run at distinct nodes: re-place their *leaf roots*
    // distinctly; nested composites keep their own placement.
    std::vector<int> sites(static_cast<std::size_t>(kids));
    rng_.sample_distinct(config_.k, kids, sites.data());
    for (int i = 0; i < kids; ++i) {
      if (children[static_cast<std::size_t>(i)]->is_leaf()) {
        children[static_cast<std::size_t>(i)]->exec_node =
            sites[static_cast<std::size_t>(i)];
      }
    }
    return task::make_parallel(std::move(children));
  }
  return task::make_serial(std::move(children));
}

task::TreePtr RandomGraphSource::draw_tree() {
  // The root is always a composite so every "global" is genuinely global.
  task::TreePtr t;
  do {
    t = draw_node(config_.max_depth);
  } while (t->is_leaf());
  return t;
}

void RandomGraphSource::start() {
  if (config_.lambda <= 0.0) return;
  engine_.in(rng_.exponential(1.0 / config_.lambda), [this] { arrival(); });
}

void RandomGraphSource::arrival() {
  const sim::Time now = engine_.now();
  task::TreePtr tree = draw_tree();
  const double slack = rng_.uniform(config_.slack_min, config_.slack_max);
  const sim::Time deadline = now + task::critical_path_ex(*tree) + slack;
  ++generated_;
  pm_.submit(std::move(tree), deadline, config_.metrics_class,
             config_.subtask_metrics_class);
  engine_.in(rng_.exponential(1.0 / config_.lambda), [this] { arrival(); });
}

}  // namespace sda::workload
