// Service-time (execution-demand) distributions.
//
// The paper uses exponential execution times throughout.  Whether its
// conclusions depend on that choice is a fair question — exponential has a
// coefficient of variation (CV) of exactly 1, while real workloads range
// from near-deterministic (CV ~ 0) to heavy-tailed (CV >> 1).  This module
// provides the classic laboratory set:
//
//   deterministic(v)          CV = 0
//   uniform(lo, hi)           CV = (hi-lo)/(sqrt(3)(hi+lo)) <= 1/sqrt(3)
//   exponential(m)            CV = 1          (the paper)
//   hyperexponential(m, cv)   CV > 1          (balanced-means 2-phase H2)
//
// bench/ablation_service_dist sweeps CV; tests validate the sampler moments
// and the M/D/1 / M/G/1 Pollaczek-Khinchine waiting-time formulas.
#pragma once

#include <string>

#include "src/util/rng.hpp"

namespace sda::workload {

class ExecDistribution {
 public:
  /// Always exactly @p value (CV = 0). Requires value >= 0.
  static ExecDistribution deterministic(double value);

  /// Uniform on [lo, hi]. Requires 0 <= lo <= hi.
  static ExecDistribution uniform(double lo, double hi);

  /// Exponential with the given mean. Requires mean > 0.
  static ExecDistribution exponential(double mean);

  /// Two-phase hyperexponential with balanced means, given mean and
  /// coefficient of variation. Requires mean > 0 and cv > 1.
  static ExecDistribution hyperexponential(double mean, double cv);

  /// Draws one value (always >= 0).
  double sample(util::Rng& rng) const;

  /// Distribution mean.
  double mean() const noexcept { return mean_; }

  /// Coefficient of variation (stddev / mean); 0 for zero-mean edge case.
  double cv() const noexcept { return cv_; }

  /// e.g. "exponential(mean=1)", "H2(mean=1, cv=4)".
  std::string describe() const;

 private:
  friend ExecDistribution make_exec_distribution(const std::string& name,
                                                 double mean, double cv);

  enum class Kind { kDeterministic, kUniform, kExponential, kHyperExp };

  ExecDistribution(Kind kind, double a, double b, double mean, double cv)
      : kind_(kind), a_(a), b_(b), mean_(mean), cv_(cv) {}

  Kind kind_;
  double a_, b_;  ///< kind-specific parameters
  double mean_, cv_;
};

/// Factory by name with a target mean: "exponential", "deterministic",
/// "uniform" (over [0, 2*mean]), "hyperexp" (uses @p cv).  Throws
/// std::invalid_argument on unknown names or invalid parameters.
ExecDistribution make_exec_distribution(const std::string& name, double mean,
                                        double cv = 4.0);

}  // namespace sda::workload
