// Poisson generator of serial-parallel global tasks (paper Section 8).
//
// Task shapes are given as a list of stage widths: width 1 is a simple
// stage, width w > 1 is a complex stage of w parallel simple subtasks.
// The paper's Figure 14 stock-trading task is {1, 4, 1, 4, 1}:
// (1) initialization, (2) distributed information gathering, (3) analysis,
// (4) action implementation, (5) conclusion.
//
// The end-to-end deadline generalizes Equation 2 to
//
//   dl(T) = ar(T) + critical_path_ex(T) + slack
//
// (critical path = sum over stages of the stage's longest subtask), which
// degenerates to Equation 2 for a single parallel stage.  The §8 experiment
// scales the slack range by the number of stages ([6.25, 25] = 5 x the
// locals' [1.25, 5]).
//
// Placement: subtasks of one parallel stage run at distinct nodes; stages
// place independently and uniformly.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/core/process_manager.hpp"
#include "src/metrics/task_class.hpp"
#include "src/util/rng.hpp"
#include "src/workload/exec_dist.hpp"
#include "src/workload/pex_model.hpp"

namespace sda::workload {

class GraphGlobalSource {
 public:
  struct Config {
    double lambda = 0.0;  ///< system-wide arrival rate; 0 disables
    int k = 6;            ///< computation nodes [0, k)
    std::vector<int> stage_widths = {1, 4, 1, 4, 1};  ///< Figure 14 default
    double mean_subtask_exec = 1.0;
    double slack_min = 6.25;
    double slack_max = 25.0;
    PexModel pex = PexModel::exact();
    int metrics_class = metrics::global_class(0);  ///< scenario class
    int subtask_metrics_class = metrics::kSubtaskClass;

    /// Communication modeling (§3.2: "even the communication network is
    /// considered as one or more of the resources ... a direct link is one
    /// resource, a LAN is another").  When non-empty, a message-transfer
    /// subtask (exponential, mean mean_msg_time) is inserted between
    /// consecutive stages, executed at a uniformly chosen link node.  Link
    /// nodes must NOT be in [0, k); they are extra resources the placement
    /// of computation never uses.
    std::vector<int> link_nodes;
    double mean_msg_time = 0.25;

    /// Computation-stage service distribution; unset =
    /// exponential(mean_subtask_exec).  Message legs stay exponential.
    std::optional<ExecDistribution> exec;
  };

  GraphGlobalSource(sim::Engine& engine, core::ProcessManager& pm,
                    util::Rng rng, Config config);

  /// Schedules the first arrival. No tasks are generated before start().
  void start();

  std::uint64_t generated() const noexcept { return generated_; }

  /// Expected *computation* work per task: (sum of stage widths) *
  /// mean_subtask_exec.  Message work rides on the link nodes and is
  /// excluded from the compute-load equations by design.
  static double expected_work(const Config& c) noexcept;

  /// Expected communication work per task:
  /// (#stage boundaries) * mean_msg_time, 0 without link nodes.
  static double expected_message_work(const Config& c) noexcept;

  /// Draws one task tree (exposed for tests and examples).
  task::TreePtr draw_tree();

 private:
  void arrival();

  sim::Engine& engine_;
  core::ProcessManager& pm_;
  util::Rng rng_;
  Config config_;
  std::uint64_t generated_ = 0;
};

}  // namespace sda::workload
