#include "src/workload/local_source.hpp"

#include <stdexcept>

namespace sda::workload {

LocalSource::LocalSource(sim::Engine& engine, sched::Node& node,
                         metrics::Collector& collector, util::Rng rng,
                         Config config)
    : engine_(engine), node_(node), collector_(collector), rng_(rng),
      config_(config),
      arrivals_(config.lambda, config.burst_factor, config.burst_cycle) {
  if (config_.lambda < 0.0) {
    throw std::invalid_argument("LocalSource: negative arrival rate");
  }
  if (config_.slack_min > config_.slack_max) {
    throw std::invalid_argument("LocalSource: slack_min > slack_max");
  }
  if (config_.mean_exec <= 0.0) {
    throw std::invalid_argument("LocalSource: mean_exec must be positive");
  }
  if (!config_.exec) {
    config_.exec = ExecDistribution::exponential(config_.mean_exec);
  }
}

void LocalSource::start() {
  if (config_.lambda <= 0.0) return;
  engine_.in(arrivals_.next(rng_), [this] { arrival(); });
}

void LocalSource::arrival() {
  const sim::Time now = engine_.now();
  const double ex = config_.exec->sample(rng_);
  const double slack = rng_.uniform(config_.slack_min, config_.slack_max);
  auto t = task::make_local_task(config_.id_base + ++generated_,
                                 node_.index(), now, ex, now + ex + slack);
  t->metrics_class = config_.metrics_class;

  if (config_.abort_at_real_deadline) {
    std::weak_ptr<task::SimpleTask> weak = t;
    engine_.at(t->attrs.real_deadline, [this, weak] {
      task::TaskPtr victim = weak.lock();
      if (!victim) return;
      if (victim->state == task::TaskState::kQueued ||
          victim->state == task::TaskState::kRunning) {
        node_.abort(*victim);
        record_abort(*victim);
      }
    });
  }

  node_.submit(std::move(t));
  engine_.in(arrivals_.next(rng_), [this] { arrival(); });
}

void LocalSource::record_abort(const task::SimpleTask& t) {
  if (record_hook_) {
    record_hook_(t);
  } else {
    collector_.record_simple(t);
  }
}

}  // namespace sda::workload
