// Poisson generator of local tasks at one node (paper Section 5).
//
// Local tasks arrive at each node with rate lambda_local, exponential
// execution times (mean 1/mu_local = 1, the paper's time unit), and
// uniformly distributed slack; the deadline is ar + ex + slack.  Local
// tasks always carry virtual deadline == real deadline.
//
// In the process-manager abortion regime (§7.3 case 1) every generated
// task gets a timer at its real deadline; if still unfinished, it is
// aborted and recorded as missed.
#pragma once

#include <cstdint>

#include <optional>

#include "src/metrics/collector.hpp"
#include "src/sched/node.hpp"
#include "src/sim/engine.hpp"
#include "src/util/rng.hpp"
#include "src/util/unique_fn.hpp"
#include "src/workload/arrivals.hpp"
#include "src/workload/exec_dist.hpp"

namespace sda::workload {

class LocalSource {
 public:
  struct Config {
    double lambda = 0.0;     ///< arrival rate; 0 disables the source
    double mean_exec = 1.0;  ///< 1/mu_local
    double slack_min = 1.25;
    double slack_max = 5.0;
    bool abort_at_real_deadline = false;  ///< PM-abortion regime
    int metrics_class = metrics::kLocalClass;
    /// Base for task ids; must not collide with other sources feeding the
    /// same node (the runner partitions the id space).
    std::uint64_t id_base = 0;
    /// Burstiness (interrupted-Poisson): 1 = Poisson (the paper), > 1
    /// concentrates the same mean rate into ON periods.
    double burst_factor = 1.0;
    double burst_cycle = 50.0;  ///< expected ON+OFF cycle length
    /// Service-time distribution; unset = exponential(mean_exec), the
    /// paper's model.  When set, it overrides mean_exec entirely.
    std::optional<ExecDistribution> exec;
  };

  /// The source submits into @p node and records PM-timer aborts into
  /// @p collector (completions are recorded by the runner's node handler).
  LocalSource(sim::Engine& engine, sched::Node& node,
              metrics::Collector& collector, util::Rng rng, Config config);

  /// Schedules the first arrival. No tasks are generated before start().
  void start();

  /// Redirects the PM-timer abort records away from the constructor's
  /// collector (sharded mode: the collector lives on the control lane, so
  /// the hook defers the record through the fabric instead).
  void set_record_hook(util::UniqueFn<void(const task::SimpleTask&)> hook) {
    record_hook_ = std::move(hook);
  }

  std::uint64_t generated() const noexcept { return generated_; }

 private:
  void arrival();
  void record_abort(const task::SimpleTask& t);

  sim::Engine& engine_;
  sched::Node& node_;
  metrics::Collector& collector_;
  util::Rng rng_;
  Config config_;
  InterarrivalSampler arrivals_;
  util::UniqueFn<void(const task::SimpleTask&)> record_hook_;
  std::uint64_t generated_ = 0;
};

}  // namespace sda::workload
