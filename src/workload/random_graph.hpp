// Random serial-parallel task shapes.
//
// §7.4 generalizes the baseline along one axis (the subtask count); this
// source generalizes along the other: the *shape*.  Each arrival draws a
// fresh random serial-parallel tree (recursive composition with bounded
// depth and fan-out), placing parallel siblings on distinct nodes.  It
// answers "are the heuristics shape-robust, or tuned to flat tasks?"
// (bench/ablation_random_shapes).
//
// Because the expected work of a random shape has no tidy closed form, the
// source calibrates itself at construction: it draws a sample of trees,
// measures their mean total work, and exposes it via calibrated_mean_work()
// for the load equations.  Calibration uses a dedicated RNG stream so it
// does not perturb the arrival sequence.
#pragma once

#include <cstdint>

#include "src/core/process_manager.hpp"
#include "src/metrics/task_class.hpp"
#include "src/util/rng.hpp"
#include "src/workload/exec_dist.hpp"
#include "src/workload/pex_model.hpp"

namespace sda::workload {

class RandomGraphSource {
 public:
  struct Config {
    double lambda = 0.0;  ///< system-wide arrival rate; 0 disables
    int k = 6;
    int max_depth = 3;        ///< composite nesting bound (leaf = depth 0)
    int min_children = 2;     ///< composite fan-out range
    int max_children = 4;     ///< parallel fan-out additionally capped at k
    double leaf_probability = 0.45;  ///< chance a position becomes a leaf
    double parallel_probability = 0.5;  ///< composite kind choice
    double mean_subtask_exec = 1.0;
    double slack_min = 2.5;  ///< random shapes average ~2 serial levels
    double slack_max = 10.0;
    PexModel pex = PexModel::exact();
    int metrics_class = metrics::global_class(0);
    int subtask_metrics_class = metrics::kSubtaskClass;
    int calibration_samples = 2000;
  };

  RandomGraphSource(sim::Engine& engine, core::ProcessManager& pm,
                    util::Rng rng, Config config);

  /// Schedules the first arrival.
  void start();

  std::uint64_t generated() const noexcept { return generated_; }

  /// Mean total execution demand per task, estimated at construction.
  double calibrated_mean_work() const noexcept { return mean_work_; }

  /// Draws one random tree (also used by tests).
  task::TreePtr draw_tree();

 private:
  task::TreePtr draw_node(int depth_left);
  void arrival();

  sim::Engine& engine_;
  core::ProcessManager& pm_;
  util::Rng rng_;
  Config config_;
  double mean_work_ = 0.0;
  std::uint64_t generated_ = 0;
};

}  // namespace sda::workload
