#include "src/workload/taskgraph_source.hpp"

#include <numeric>
#include <stdexcept>

namespace sda::workload {

GraphGlobalSource::GraphGlobalSource(sim::Engine& engine,
                                     core::ProcessManager& pm, util::Rng rng,
                                     Config config)
    : engine_(engine), pm_(pm), rng_(rng), config_(std::move(config)) {
  if (config_.lambda < 0.0) {
    throw std::invalid_argument("GraphGlobalSource: negative arrival rate");
  }
  if (config_.stage_widths.empty()) {
    throw std::invalid_argument("GraphGlobalSource: no stages");
  }
  for (int w : config_.stage_widths) {
    if (w < 1) throw std::invalid_argument("GraphGlobalSource: stage width < 1");
    if (w > config_.k) {
      throw std::invalid_argument(
          "GraphGlobalSource: stage width exceeds node count");
    }
  }
  if (config_.slack_min > config_.slack_max) {
    throw std::invalid_argument("GraphGlobalSource: slack_min > slack_max");
  }
  if (config_.mean_subtask_exec <= 0.0) {
    throw std::invalid_argument(
        "GraphGlobalSource: mean_subtask_exec must be positive");
  }
  for (int link : config_.link_nodes) {
    if (link >= 0 && link < config_.k) {
      throw std::invalid_argument(
          "GraphGlobalSource: link nodes must be outside the computation "
          "range [0, k)");
    }
  }
  if (!config_.link_nodes.empty() && config_.mean_msg_time <= 0.0) {
    throw std::invalid_argument(
        "GraphGlobalSource: mean_msg_time must be positive");
  }
  if (!config_.exec) {
    config_.exec = ExecDistribution::exponential(config_.mean_subtask_exec);
  }
}

double GraphGlobalSource::expected_work(const Config& c) noexcept {
  const int subtasks = std::accumulate(c.stage_widths.begin(),
                                       c.stage_widths.end(), 0);
  return static_cast<double>(subtasks) * c.mean_subtask_exec;
}

double GraphGlobalSource::expected_message_work(const Config& c) noexcept {
  if (c.link_nodes.empty() || c.stage_widths.size() < 2) return 0.0;
  return static_cast<double>(c.stage_widths.size() - 1) * c.mean_msg_time;
}

task::TreePtr GraphGlobalSource::draw_tree() {
  std::vector<task::TreePtr> stages;
  stages.reserve(2 * config_.stage_widths.size());
  std::vector<int> sites(static_cast<std::size_t>(config_.k));
  bool first_stage = true;
  for (int width : config_.stage_widths) {
    // A message transfer precedes every stage after the first when links
    // are modeled: the process manager ships the previous stage's result
    // over a uniformly chosen link resource.
    if (!first_stage && !config_.link_nodes.empty()) {
      const auto pick = static_cast<std::size_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(config_.link_nodes.size()) - 1));
      const double ex = rng_.exponential(config_.mean_msg_time);
      stages.push_back(task::make_leaf(config_.link_nodes[pick], ex,
                                       config_.pex.predict(ex, rng_), "msg"));
    }
    first_stage = false;
    rng_.sample_distinct(config_.k, width, sites.data());
    if (width == 1) {
      const double ex = config_.exec->sample(rng_);
      stages.push_back(
          task::make_leaf(sites[0], ex, config_.pex.predict(ex, rng_)));
      continue;
    }
    std::vector<task::TreePtr> branch;
    branch.reserve(static_cast<std::size_t>(width));
    for (int i = 0; i < width; ++i) {
      const double ex = config_.exec->sample(rng_);
      branch.push_back(task::make_leaf(sites[static_cast<std::size_t>(i)], ex,
                                       config_.pex.predict(ex, rng_)));
    }
    stages.push_back(task::make_parallel(std::move(branch)));
  }
  if (stages.size() == 1) return std::move(stages.front());
  return task::make_serial(std::move(stages));
}

void GraphGlobalSource::start() {
  if (config_.lambda <= 0.0) return;
  engine_.in(rng_.exponential(1.0 / config_.lambda), [this] { arrival(); });
}

void GraphGlobalSource::arrival() {
  const sim::Time now = engine_.now();
  task::TreePtr tree = draw_tree();
  const double slack = rng_.uniform(config_.slack_min, config_.slack_max);
  const sim::Time deadline = now + task::critical_path_ex(*tree) + slack;
  ++generated_;
  pm_.submit(std::move(tree), deadline, config_.metrics_class,
             config_.subtask_metrics_class);
  engine_.in(rng_.exponential(1.0 / config_.lambda), [this] { arrival(); });
}

}  // namespace sda::workload
