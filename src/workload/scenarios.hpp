// Named application scenarios: serial-parallel task shapes drawn from the
// paper's motivating discussion and kin, expressed as stage-width lists for
// GraphGlobalSource.  Each scenario documents what the stages stand for, so
// examples and the CLI driver can reference realistic workloads by name.
#pragma once

#include <string>
#include <vector>

namespace sda::workload {

struct Scenario {
  std::string name;
  std::string description;
  std::vector<int> stage_widths;
};

/// All built-in scenarios:
///  * stock-trading  {1,4,1,4,1}  — the paper's Figure 14 pipeline:
///    init, gather from 4 sources, analyze, place 4 orders, conclude.
///  * web-request    {1,5,1}      — parse, fan out to 5 backends, render.
///  * sensor-fusion  {6,1,1}      — sample 6 sensors, fuse, actuate.
///  * etl-pipeline   {1,3,1,3,1}  — extract, 3-way transform, merge,
///    3-way load, verify.
///  * map-reduce     {1,6,1}      — split, 6 mappers, reduce (k >= 6).
const std::vector<Scenario>& scenarios();

/// Looks up a scenario by name; throws std::invalid_argument with the list
/// of known names when absent.
const Scenario& find_scenario(const std::string& name);

}  // namespace sda::workload
