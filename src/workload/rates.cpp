#include "src/workload/rates.hpp"

namespace sda::workload {

namespace {
void check(const RateParams& p) {
  if (p.k <= 0) throw std::invalid_argument("rates: k must be positive");
  if (p.load < 0.0) throw std::invalid_argument("rates: load must be >= 0");
  if (p.frac_local < 0.0 || p.frac_local > 1.0) {
    throw std::invalid_argument("rates: frac_local must be in [0, 1]");
  }
  if (p.mu_local <= 0.0) {
    throw std::invalid_argument("rates: mu_local must be positive");
  }
  if (p.expected_global_work <= 0.0) {
    throw std::invalid_argument("rates: expected_global_work must be positive");
  }
}
}  // namespace

Rates solve_rates(const RateParams& p) {
  check(p);
  Rates r;
  // Local work rate per node is load*frac_local, and mean local ex is
  // 1/mu_local, so lambda_local = load * frac_local * mu_local.
  r.lambda_local = p.load * p.frac_local * p.mu_local;
  // Global work rate over the whole system is load*(1-frac_local)*k time
  // units of work per unit time; each global task brings
  // expected_global_work units.
  r.lambda_global = p.load * (1.0 - p.frac_local) * static_cast<double>(p.k) /
                    p.expected_global_work;
  return r;
}

double normalized_load(const RateParams& p, const Rates& r) {
  check(p);
  const double local_work = static_cast<double>(p.k) * r.lambda_local / p.mu_local;
  const double global_work = r.lambda_global * p.expected_global_work;
  return (local_work + global_work) / static_cast<double>(p.k);
}

double fraction_local(const RateParams& p, const Rates& r) {
  check(p);
  const double local_work = static_cast<double>(p.k) * r.lambda_local / p.mu_local;
  const double global_work = r.lambda_global * p.expected_global_work;
  const double total = local_work + global_work;
  return total > 0.0 ? local_work / total : 0.0;
}

}  // namespace sda::workload
