// Arrival-rate arithmetic for the paper's load model (Section 5).
//
//   load = ( n*lambda_global/mu_subtask + k*lambda_local/mu_local ) / k
//   frac_local = (k*lambda_local/mu_local) / (numerator above)
//
// Experiments are parameterized by (load, frac_local); this module solves
// for the per-node local arrival rate lambda_local and the single-stream
// global arrival rate lambda_global.  For non-flat global tasks, `n` is
// generalized to the *expected work per global task* in time units (e.g.
// 11 subtasks x mean 1.0 for the Figure 14 graph, or E[n] = 4 for
// n ~ U[2..6]).
#pragma once

#include <stdexcept>

namespace sda::workload {

struct RateParams {
  int k = 6;                        ///< number of nodes
  double load = 0.5;                ///< normalized system load in [0, 1)
  double frac_local = 0.75;         ///< fraction of load due to local tasks
  double mu_local = 1.0;            ///< local service rate (mean ex = 1/mu)
  double expected_global_work = 4;  ///< E[total ex] of one global task
};

struct Rates {
  double lambda_local = 0.0;   ///< per-node local arrival rate
  double lambda_global = 0.0;  ///< system-wide global arrival rate
};

/// Solves the load equations. frac_local == 0 gives lambda_local == 0;
/// frac_local == 1 gives lambda_global == 0.  Throws std::invalid_argument
/// on out-of-range parameters (load < 0, frac_local outside [0,1], k <= 0,
/// non-positive service rates or work).
Rates solve_rates(const RateParams& p);

/// Inverse of solve_rates: recovers the normalized load from rates.
double normalized_load(const RateParams& p, const Rates& r);

/// Inverse of solve_rates: recovers frac_local from rates.
double fraction_local(const RateParams& p, const Rates& r);

}  // namespace sda::workload
