#include "src/workload/arrivals.hpp"

#include <stdexcept>

#include "src/util/feq.hpp"

namespace sda::workload {

InterarrivalSampler::InterarrivalSampler(double rate, double burst_factor,
                                         double mean_cycle)
    : rate_(rate), factor_(burst_factor),
      on_dwell_mean_(mean_cycle / burst_factor),
      off_dwell_mean_(mean_cycle * (1.0 - 1.0 / burst_factor)) {
  if (rate < 0.0) throw std::invalid_argument("arrivals: negative rate");
  if (burst_factor < 1.0) {
    throw std::invalid_argument("arrivals: burst_factor must be >= 1");
  }
  if (mean_cycle <= 0.0) {
    throw std::invalid_argument("arrivals: mean_cycle must be positive");
  }
}

double InterarrivalSampler::next(util::Rng& rng) {
  if (rate_ <= 0.0) {
    throw std::logic_error("arrivals: next() on a zero-rate sampler");
  }
  // Poisson fast path: identical draw sequence to the plain implementation.
  if (util::feq(factor_, 1.0)) return rng.exponential(1.0 / rate_);

  const double burst_rate = rate_ * factor_;
  double elapsed = 0.0;
  while (true) {
    if (!in_burst_) {
      // OFF period: nothing arrives; wait it out.
      elapsed += rng.exponential(off_dwell_mean_);
      in_burst_ = true;
      dwell_initialized_ = false;
    }
    if (!dwell_initialized_) {
      dwell_left_ = rng.exponential(on_dwell_mean_);
      dwell_initialized_ = true;
    }
    const double gap = rng.exponential(1.0 / burst_rate);
    if (gap <= dwell_left_) {
      dwell_left_ -= gap;
      return elapsed + gap;
    }
    // The ON period ends before the candidate arrival: discard it (the
    // exponential's memorylessness makes this exact) and go OFF.
    elapsed += dwell_left_;
    in_burst_ = false;
    dwell_initialized_ = false;
  }
}

}  // namespace sda::workload
