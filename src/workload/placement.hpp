// Subtask placement policies.
//
// The paper's premise is that placement is fixed: "each system component is
// unique; if a task must be executed at a particular component, it must run
// there" — modeled by uniform-random placement over distinct nodes.  As an
// extension ablation we also provide state-aware placement (pick the
// least-queued nodes), quantifying how much of the PSP problem a system
// could avoid if placement *were* free — the paper's "no load balancing"
// premise made measurable.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/sched/node.hpp"
#include "src/util/rng.hpp"

namespace sda::workload {

class Placement {
 public:
  virtual ~Placement() = default;

  /// Chooses @p count distinct node indices from [0, k) into @p out.
  /// Requires count <= k.
  virtual void choose(int k, int count, util::Rng& rng, int* out) = 0;

  virtual std::string name() const = 0;
};

/// The paper's model: uniform over distinct nodes, no system-state input.
class UniformPlacement final : public Placement {
 public:
  void choose(int k, int count, util::Rng& rng, int* out) override;
  std::string name() const override { return "uniform"; }
};

/// Extension: place on the nodes with the shortest ready queues (in-service
/// tasks count as queue occupancy; ties broken by a random permutation so
/// no node is systematically favored).
class LeastQueuedPlacement final : public Placement {
 public:
  explicit LeastQueuedPlacement(std::vector<const sched::Node*> nodes);

  void choose(int k, int count, util::Rng& rng, int* out) override;
  std::string name() const override { return "least-queued"; }

 private:
  std::vector<const sched::Node*> nodes_;
};

/// Factory used by the experiment runner: "uniform" needs no nodes;
/// "least-queued" captures the node list.
std::shared_ptr<Placement> make_placement(
    const std::string& policy, std::vector<const sched::Node*> nodes);

}  // namespace sda::workload
