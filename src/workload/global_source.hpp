// Poisson generator of flat parallel global tasks (paper Section 5).
//
// Global tasks arrive as a single system-wide stream.  Each task consists
// of n simple subtasks executed in parallel at n *distinct* nodes, with
// i.i.d. exponential execution times (mean 1/mu_subtask).  The deadline is
//
//   dl(T) = ar(T) + max_i ex(T_i) + slack            (paper Equation 2)
//
// so a global's slack distribution matches the locals' even though its
// subtasks end up with slightly more slack each (paper Equation 3).
//
// n is fixed (baseline, n = 4) or uniform in [n_min, n_max] (the
// non-homogeneous experiment of §7.4, n ~ U[2..6]).  Each size reports
// under its own metrics class global_class(n).
#pragma once

#include <cstdint>

#include <optional>

#include "src/core/admission.hpp"
#include "src/core/process_manager.hpp"
#include "src/metrics/task_class.hpp"
#include "src/util/rng.hpp"
#include "src/workload/arrivals.hpp"
#include "src/workload/exec_dist.hpp"
#include "src/workload/pex_model.hpp"
#include "src/workload/placement.hpp"

namespace sda::workload {

class ParallelGlobalSource {
 public:
  struct Config {
    double lambda = 0.0;  ///< system-wide arrival rate; 0 disables
    int k = 6;            ///< nodes to draw execution sites from
    int n_min = 4;        ///< subtasks per global (n_min == n_max: fixed n)
    int n_max = 4;
    double mean_subtask_exec = 1.0;  ///< 1/mu_subtask
    double slack_min = 1.25;
    double slack_max = 5.0;
    PexModel pex = PexModel::exact();
    int subtask_metrics_class = metrics::kSubtaskClass;
    /// §7.4 extension (heterogeneous execution distributions): each
    /// subtask's exponential *mean* is mean_subtask_exec * s^U[-1,1].
    /// 1.0 (the default) reproduces the paper's homogeneous subtasks.
    /// The overall mean demand is preserved only approximately for s > 1
    /// (E[s^U] > 1); expected_work() accounts for it.
    double exec_spread = 1.0;
    /// Placement policy; defaults to the paper's uniform-distinct model.
    std::shared_ptr<Placement> placement;
    /// Subtask service distribution; unset = exponential(mean_subtask_exec).
    /// exec_spread composes multiplicatively with any distribution.
    std::optional<ExecDistribution> exec;
    /// Arrival burstiness (interrupted Poisson, like LocalSource's).
    /// burst_factor 1 draws exactly the plain-Poisson random sequence, so
    /// the default changes nothing.
    double burst_factor = 1.0;
    double burst_cycle = 50.0;
    /// Optional admission gate: when set, every drawn task is offered to
    /// the controller and only admitted (possibly with a degraded
    /// deadline) tasks reach the process manager.  The gate draws no RNG,
    /// so a null gate reproduces the ungated run bit for bit.
    core::AdmissionController* admission = nullptr;
  };

  ParallelGlobalSource(sim::Engine& engine, core::ProcessManager& pm,
                       util::Rng rng, Config config);

  /// Schedules the first arrival. No tasks are generated before start().
  void start();

  std::uint64_t generated() const noexcept { return generated_; }
  /// Tasks turned away by the admission gate (0 without a gate).
  std::uint64_t not_admitted() const noexcept { return not_admitted_; }

  /// Expected work brought by one global task (for the load equations):
  /// E[n] * mean_subtask_exec * E[s^U].  For the spread model,
  /// E[s^U[-1,1]] = (s - 1/s) / (2 ln s) for s > 1, 1 for s = 1.
  static double expected_work(const Config& c) noexcept;

 private:
  void arrival();

  sim::Engine& engine_;
  core::ProcessManager& pm_;
  util::Rng rng_;
  Config config_;
  InterarrivalSampler interarrival_;
  std::uint64_t generated_ = 0;
  std::uint64_t not_admitted_ = 0;
};

}  // namespace sda::workload
