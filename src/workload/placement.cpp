#include "src/workload/placement.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace sda::workload {

void UniformPlacement::choose(int k, int count, util::Rng& rng, int* out) {
  if (count > k) throw std::invalid_argument("placement: count > k");
  rng.sample_distinct(k, count, out);
}

LeastQueuedPlacement::LeastQueuedPlacement(
    std::vector<const sched::Node*> nodes)
    : nodes_(std::move(nodes)) {
  for (const auto* n : nodes_) {
    if (n == nullptr) {
      throw std::invalid_argument("LeastQueuedPlacement: null node");
    }
  }
}

void LeastQueuedPlacement::choose(int k, int count, util::Rng& rng, int* out) {
  if (count > k || k > static_cast<int>(nodes_.size())) {
    throw std::invalid_argument("placement: bad k/count");
  }
  // Occupancy = ready queue + in-service task.  Random tie-break via a
  // random secondary key so equally idle nodes are chosen evenly.
  struct Entry {
    std::size_t occupancy;
    double tiebreak;
    int index;
  };
  std::vector<Entry> entries;
  entries.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    const sched::Node* n = nodes_[static_cast<std::size_t>(i)];
    entries.push_back(Entry{
        n->queue_length() + (n->in_service() != nullptr ? 1u : 0u),
        rng.uniform01(), i});
  }
  std::partial_sort(entries.begin(), entries.begin() + count, entries.end(),
                    [](const Entry& a, const Entry& b) {
                      if (a.occupancy != b.occupancy) {
                        return a.occupancy < b.occupancy;
                      }
                      return a.tiebreak < b.tiebreak;
                    });
  for (int i = 0; i < count; ++i) out[i] = entries[static_cast<std::size_t>(i)].index;
}

std::shared_ptr<Placement> make_placement(
    const std::string& policy, std::vector<const sched::Node*> nodes) {
  if (policy == "uniform") return std::make_shared<UniformPlacement>();
  if (policy == "least-queued") {
    return std::make_shared<LeastQueuedPlacement>(std::move(nodes));
  }
  throw std::invalid_argument("unknown placement policy: " + policy);
}

}  // namespace sda::workload
