// Arrival-process sampling: Poisson and bursty (interrupted Poisson).
//
// The paper notes that "it is the occasional experience of transient
// overload that accounts for most of the missed deadlines" (§5).  Its
// experiments induce transients only through Poisson randomness; this
// module adds an explicitly bursty arrival process so the claim can be
// probed directly (bench/ablation_burstiness).
//
// Model: a two-state interrupted Poisson process (IPP).  The source
// alternates between ON periods (arrival rate = burst_factor * rate) and
// OFF periods (no arrivals), with exponentially distributed dwell times.
// The ON fraction is 1/burst_factor, so the *long-run mean rate* equals
// `rate` for every burst_factor — burstiness changes variability, not
// offered load.  burst_factor == 1 degenerates to plain Poisson and draws
// exactly the same random sequence as the pre-burstiness implementation.
#pragma once

#include "src/util/rng.hpp"

namespace sda::workload {

class InterarrivalSampler {
 public:
  /// @param rate         long-run mean arrival rate (> 0 to ever arrive)
  /// @param burst_factor >= 1; 1 = Poisson
  /// @param mean_cycle   expected ON+OFF cycle length in time units
  ///                     (controls how long transients last)
  InterarrivalSampler(double rate, double burst_factor = 1.0,
                      double mean_cycle = 50.0);

  /// Time until the next arrival.
  double next(util::Rng& rng);

  double mean_rate() const noexcept { return rate_; }
  double burst_factor() const noexcept { return factor_; }

 private:
  double rate_;
  double factor_;
  double on_dwell_mean_;   ///< expected ON period length
  double off_dwell_mean_;  ///< expected OFF period length
  bool in_burst_ = true;
  double dwell_left_ = 0.0;
  bool dwell_initialized_ = false;
};

}  // namespace sda::workload
