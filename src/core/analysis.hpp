// Closed-form analytical companions to the simulation.
//
// The paper motivates PSP with a simple independence argument (§4): if a
// node misses fraction p of deadlines, a global task with n parallel
// subtasks misses ~ 1-(1-p)^n.  This module collects that and the other
// closed forms used to sanity-check the simulator:
//
//  * miss-rate amplification and its inverse,
//  * the expected maximum of n i.i.d. exponentials (harmonic numbers) —
//    the mean of Equation 2's max term,
//  * M/M/1 steady-state formulas for the queueing substrate.
//
// Everything here is pure math with no simulator dependencies.
#pragma once

namespace sda::core::analysis {

/// Probability that a task of @p n independent parallel subtasks misses,
/// when each subtask misses with probability @p subtask_miss (paper §4):
/// 1 - (1 - p)^n.  Requires p in [0, 1], n >= 0.
double global_miss_probability(double subtask_miss, int n);

/// Inverse of global_miss_probability in p: the per-subtask miss rate that
/// would produce @p global_miss for n parallel subtasks.
double required_subtask_miss(double global_miss, int n);

/// n-th harmonic number H_n = 1 + 1/2 + ... + 1/n (H_0 = 0).
double harmonic(int n);

/// Expected maximum of n i.i.d. exponentials with the given mean:
/// mean * H_n.  This is E[max_i ex(T_i)] in Equation 2, so the *mean*
/// deadline allowance of a global task is harmonic in n.
double expected_max_exponential(int n, double mean);

/// M/M/1 steady-state results (arrival rate lambda, service rate mu;
/// requires lambda < mu for the time/number formulas).
struct Mm1 {
  double rho = 0.0;             ///< utilization lambda/mu
  double mean_in_system = 0.0;  ///< L = rho/(1-rho)
  double mean_in_queue = 0.0;   ///< Lq = rho^2/(1-rho)
  double mean_sojourn = 0.0;    ///< W = 1/(mu-lambda)
  double mean_wait = 0.0;       ///< Wq = rho/(mu-lambda)
};

/// Computes the M/M/1 summary. Throws std::invalid_argument when
/// lambda < 0, mu <= 0, or lambda >= mu.
Mm1 mm1(double lambda, double mu);

/// P[sojourn > t] in M/M/1: exp(-(mu-lambda) t).  With deadlines at
/// ar + ex + slack, this bounds the miss rate of a *work-conserving* node
/// only loosely (EDF reorders), but gives the right order of magnitude.
double mm1_sojourn_tail(double lambda, double mu, double t);

}  // namespace sda::core::analysis
