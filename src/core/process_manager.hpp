// The process manager (paper §3.2, Figure 2).
//
// Newly created global tasks are handed to the process manager, which
//   1. assigns virtual deadlines to simple subtasks by running the SDA
//      algorithm (Figure 13) on-line — serial stages are assigned when the
//      preceding stage actually finishes;
//   2. submits simple subtasks to their execution nodes;
//   3. enforces precedence among subtasks; and
//   4. optionally aborts whole global tasks whose *real* deadline passed
//      (the §7.3 "abortion by process manager" regime, a timer per task),
//      and resubmits subtasks killed by local-scheduler aborts; and
//   5. recovers subtasks killed by injected faults (node crashes, transient
//      failures, message loss — see src/fault/) under a RecoveryPolicy:
//      bounded retries with optional backoff and failover, deadline-aware
//      SDA re-assignment on retry, and shedding of runs whose remaining
//      slack has gone negative.
//
// The process manager's own resource use is not modeled (charged to the
// tasks it manages, as in the paper).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/core/sda.hpp"
#include "src/sched/node.hpp"
#include "src/sim/engine.hpp"
#include "src/task/task.hpp"
#include "src/task/tree.hpp"
#include "src/util/arena.hpp"
#include "src/util/unique_fn.hpp"

namespace sda::core {

/// How the process manager handles tardy global tasks.
enum class PmAbortMode {
  kNone,          ///< keep going; late completions still count as misses
  kRealDeadline,  ///< abort all live subtasks when the real deadline passes
};

/// How a retried subtask's virtual deadline is chosen after a fault.
enum class RetryDeadline {
  /// Reuse the deadline assigned before the failure.  Cheap, but the
  /// deadline reflects slack that no longer exists — an expired virtual
  /// deadline jumps every queue it meets.
  kStale,
  /// Re-run the SDA strategy pair over the leaf's chain of ancestors with
  /// the slack left at *now* (serial stages contribute only their
  /// not-yet-finished remainder), so the retry competes with an honest
  /// deadline.
  kSdaRecompute,
};

/// Fault-recovery behavior of the process manager (src/fault/ injects the
/// faults; this decides what happens to the victims).
struct RecoveryPolicy {
  /// Fault retries allowed per global run; the (max+1)-th failure sheds
  /// the run.  0 = any fault kills the run.
  int max_retries_per_run = 4;
  /// Delay before the r-th retry of one leaf: backoff_base *
  /// backoff_factor^(r-1).  0 = resubmit immediately.
  double backoff_base = 0.0;
  double backoff_factor = 2.0;
  /// When the victim's node is down, resubmit to another up node of the
  /// same pool (compute or link) instead of queueing into the outage.
  bool failover = true;
  RetryDeadline deadline_mode = RetryDeadline::kSdaRecompute;
  /// Before retrying, compare the predicted remaining critical path with
  /// the slack left; shed the run when it cannot finish in time instead
  /// of burning service on doomed work.
  bool shed_negative_slack = true;
};

/// Terminal record of one global task run, delivered to the completion
/// handler (and from there to the metrics collector).
struct GlobalTaskRecord {
  std::uint64_t run_id = 0;
  int metrics_class = 0;
  sim::Time arrival = 0.0;
  sim::Time real_deadline = 0.0;
  sim::Time finished_at = 0.0;
  bool aborted = false;  ///< killed before completion (timer, cap, or shed)
  bool missed = false;   ///< aborted, or finished after the real deadline
  sim::Time total_work = 0.0;  ///< sum of ex over all simple subtasks
  int subtask_count = 0;
  int resubmissions = 0;  ///< local-abort resubmissions within this run
  int retries = 0;        ///< fault retries within this run
  bool shed = false;      ///< dropped by the recovery policy (subset of aborted)
};

/// The process manager's window onto the execution nodes.  The serial
/// runner uses DirectNodePort — synchronous calls into sched::Node,
/// exactly the original single-engine behavior.  The sharded runner
/// (exp/runner_sharded) substitutes a port that clones the task and
/// ships each call as a cross-lane fabric message, so the PM never
/// touches node-owned state from another shard.
class NodePort {
 public:
  virtual ~NodePort() = default;
  /// Number of execution nodes (compute + link).
  virtual int count() const = 0;
  /// Is @p node accepting work (i.e. not inside a crash outage)?
  virtual bool is_up(int node) const = 0;
  /// Hands a subtask to @p node's scheduler.
  virtual void submit(int node, const task::TaskPtr& t) = 0;
  /// Aborts a queued-or-running task; a no-op when the node no longer
  /// holds it (already completed, failed, or never delivered).
  virtual void abort(int node, const task::SimpleTask& t) = 0;
};

/// Synchronous port sharing task objects with the nodes (serial path).
class DirectNodePort final : public NodePort {
 public:
  explicit DirectNodePort(std::vector<sched::Node*> nodes);
  int count() const override {
    return static_cast<int>(nodes_.size());
  }
  bool is_up(int node) const override;
  void submit(int node, const task::TaskPtr& t) override;
  void abort(int node, const task::SimpleTask& t) override;

 private:
  std::vector<sched::Node*> nodes_;
};

/// Terminal node-side outcome of a subtask, reported back to the process
/// manager by the sharded runner as a value snapshot (see handle_remote).
enum class RemoteSubtaskEvent {
  kCompleted,
  kLocalAbort,
  kFailed,
};

class ProcessManager {
 public:
  struct Config {
    std::shared_ptr<const PspStrategy> psp;
    std::shared_ptr<const SspStrategy> ssp;
    PmAbortMode abort_mode = PmAbortMode::kNone;
    /// §7.3: "special directives ... specifying that subtasks are
    /// non-abortable locally".  When set, subtasks are exempt from
    /// local-scheduler abort policies.
    bool mark_subtasks_non_abortable = false;
    /// Hard cap on local-abort resubmissions per run: when a local abort
    /// arrives with the budget exhausted, the whole run is aborted instead
    /// of resubmitting (graceful degradation).  Resubmitted subtasks are
    /// also marked non-abortable, so each subtask aborts locally at most
    /// once and every surviving run terminates; see handle_local_abort.
    int max_resubmissions_per_run = 64;
    /// Fault recovery (only consulted when src/fault/ injects failures).
    RecoveryPolicy recovery;
    /// Nodes [0, compute_node_count) are compute nodes, the rest are link
    /// nodes; failover stays within the victim's pool.  -1 = all compute.
    int compute_node_count = -1;
  };

  using GlobalHandler = util::UniqueFn<void(const GlobalTaskRecord&)>;
  /// Invoked when a simple subtask reaches a terminal state: completed, or
  /// aborted with no resubmission to follow.
  using SubtaskHandler = util::UniqueFn<void(const task::SimpleTask&)>;
  /// Invoked when submit() accepts a run, before its first subtask is
  /// dispatched (tracing only — observers must not touch the simulation).
  using SubmitObserver =
      util::UniqueFn<void(std::uint64_t run_id, sim::Time deadline)>;

  /// @p nodes is indexed by TreeNode::exec_node; the runner wires each
  /// node's completion/abort handlers to handle_completion /
  /// handle_local_abort for subtask-kind tasks.  Wraps the nodes in an
  /// owned DirectNodePort (the serial path).
  ProcessManager(sim::Engine& engine, std::vector<sched::Node*> nodes,
                 Config config);

  /// Port-based constructor: all node interaction goes through @p port
  /// (which must outlive the manager).  Used by the sharded runner.
  ProcessManager(sim::Engine& engine, NodePort& port, Config config);

  ProcessManager(const ProcessManager&) = delete;
  ProcessManager& operator=(const ProcessManager&) = delete;

  void set_global_handler(GlobalHandler h) { on_global_ = std::move(h); }
  void set_subtask_handler(SubtaskHandler h) { on_subtask_ = std::move(h); }
  void set_submit_observer(SubmitObserver o) { on_submitted_ = std::move(o); }

  /// Accepts a global task whose structure (and per-leaf ex/pex) is already
  /// drawn.  @p deadline is the end-to-end real deadline dl(T); arrival is
  /// the engine's current time.  Returns the run id.
  std::uint64_t submit(task::TreePtr tree, sim::Time deadline,
                       int global_metrics_class, int subtask_metrics_class);

  /// Node completion callback for subtask-kind tasks.
  void handle_completion(const task::TaskPtr& t);

  /// Node local-abort callback for subtask-kind tasks.
  void handle_local_abort(const task::TaskPtr& t);

  /// Node fault callback for subtask-kind tasks (crash or transient
  /// failure): applies the RecoveryPolicy — retry, fail over, or shed.
  void handle_failure(const task::TaskPtr& t);

  /// Sharded-runner entry point: a node lane reported a terminal subtask
  /// outcome as a value snapshot.  Copies the snapshot over the manager's
  /// own task object (keyed by snapshot.id) and runs the matching
  /// handle_* path; silently drops snapshots for runs or subtasks the
  /// manager no longer tracks (the run ended while the message was in
  /// flight — legitimate under message latency).
  void handle_remote(const task::SimpleTask& snapshot, RemoteSubtaskEvent ev);

  const Config& config() const noexcept { return config_; }

  // --- statistics ---------------------------------------------------------
  std::size_t live_runs() const noexcept { return runs_.size(); }
  std::uint64_t submitted() const noexcept { return submitted_; }
  /// The id submit() will assign next — lets an admission gate register
  /// a run under its eventual id before handing the tree over.
  std::uint64_t next_run_id() const noexcept { return next_run_id_; }
  std::uint64_t completed_runs() const noexcept { return completed_runs_; }
  std::uint64_t aborted_runs() const noexcept { return aborted_runs_; }
  std::uint64_t resubmissions() const noexcept { return resubmissions_; }
  std::uint64_t fault_retries() const noexcept { return fault_retries_; }
  std::uint64_t failovers() const noexcept { return failovers_; }
  std::uint64_t shed_runs() const noexcept { return shed_runs_; }

 private:
  /// One global-task run's bookkeeping.  All per-node state is held in
  /// dense vectors indexed by the tree's FlatTree slot (DFS preorder), and
  /// node callbacks are correlated through SimpleTask::leaf_slot — no hash
  /// maps anywhere on the dispatch/completion path.  Run objects (and the
  /// vector capacities plus the FlatTree arena inside) are recycled
  /// through a small pool, so steady-state submit/complete allocates
  /// nothing beyond the task objects themselves.
  struct Run {
    std::uint64_t id = 0;
    task::TreePtr tree;
    task::FlatTree flat;  ///< slot-indexed view over *tree
    sim::Time arrival = 0.0;
    sim::Time real_deadline = 0.0;
    int metrics_class = 0;
    int subtask_metrics_class = 0;
    sim::Time total_work = 0.0;
    int subtask_count = 0;
    int resubmissions = 0;
    int retries = 0;
    int live_count = 0;         ///< non-null entries in `live`
    int retry_timer_count = 0;  ///< armed entries in `retry_timers`

    // Slot-indexed state, sized flat.size() by arm():
    /// Virtual deadline assigned to each dispatched node.
    std::vector<sim::Time> assigned_deadline;
    /// Serial composite: next child to dispatch.  Parallel composite:
    /// children not yet done.  (A slot is one or the other, never both.)
    std::vector<int> progress;
    /// Live (queued or running) subtask of each leaf slot; null otherwise.
    std::vector<task::TaskPtr> live;
    /// Fault retries per leaf (drives the per-leaf backoff schedule).
    std::vector<int> leaf_retries;
    /// Pending backoff-retry timers per leaf.  Every terminal path cancels
    /// them (finish_run), so a shed run can never leave a timer behind to
    /// fire against recycled state.
    std::vector<sim::EventId> retry_timers;

    sim::EventId abort_timer;

    /// Sizes and zeroes the slot-indexed vectors for a tree of @p n nodes.
    void arm(std::uint32_t n);
  };

  /// Map lookup with a one-entry cache: a run's subtasks complete (or
  /// abort) in bursts, so consecutive callbacks overwhelmingly target the
  /// run just looked up.  Invalidated when the cached run retires.
  Run* find_run(std::uint64_t run_id);
  /// Fresh-or-recycled Run; pairs with recycle_run().
  std::unique_ptr<Run> acquire_run();
  void recycle_run(std::unique_ptr<Run> run);
  void dispatch(Run& run, std::uint32_t slot, sim::Time deadline);
  void dispatch_serial_stage(Run& run, std::uint32_t serial_slot);
  void dispatch_leaf(Run& run, std::uint32_t leaf_slot, sim::Time deadline);
  void child_done(Run& run, std::uint32_t child_slot);
  void finish_run(Run& run, bool aborted, bool shed = false);
  void abort_run(std::uint64_t run_id);
  /// Aborts every live subtask and finishes the run (timer abort, local-
  /// abort cap, or recovery shed).
  void terminate_run(Run& run, bool shed);
  void resubmit_retry(Run& run, std::uint32_t leaf_slot,
                      const task::TaskPtr& t);
  /// SDA re-run for one leaf: fresh virtual deadline computed from the
  /// root's real deadline down the leaf's ancestor chain at time `now`.
  sim::Time recompute_deadline(const Run& run, std::uint32_t leaf_slot);
  /// Predicted critical-path demand still ahead of @p leaf_slot (its own
  /// pex plus every not-yet-dispatched later serial stage up the chain).
  sim::Time remaining_path_pex(const Run& run, std::uint32_t leaf_slot) const;
  /// The run's live subtask for @p leaf_slot iff it is the task @p id
  /// (stale callbacks for finished/replaced subtasks resolve to null).
  static task::TaskPtr* live_task(Run& run, std::uint32_t leaf_slot,
                                  std::uint64_t id) {
    if (leaf_slot >= run.flat.size()) return nullptr;
    task::TaskPtr& t = run.live[leaf_slot];
    return (t && t->id == id) ? &t : nullptr;
  }
  /// Up node in the same pool (compute/link) as @p origin, or origin when
  /// none is up.
  int failover_target(int origin) const;

  /// Node count via the port (nodes_.size() before the port refactor).
  int node_count() const { return port_->count(); }

  sim::Engine& engine_;
  /// Set when constructed from raw nodes (serial path); port_ points at
  /// it.  The port-based constructor leaves it empty.
  std::unique_ptr<NodePort> owned_port_;
  NodePort* port_ = nullptr;
  Config config_;

  /// Keyed by run id; the node allocations ride the thread-local size-class
  /// pool so steady-state submit/finish does not touch the global allocator.
  std::unordered_map<
      std::uint64_t, std::unique_ptr<Run>, std::hash<std::uint64_t>,
      std::equal_to<std::uint64_t>,
      util::PoolAllocator<std::pair<const std::uint64_t, std::unique_ptr<Run>>>>
      runs_;
  /// Retired Run objects kept for reuse (bounded; see kRunPoolCap).
  std::vector<std::unique_ptr<Run>> run_pool_;
  /// One-entry find_run cache; never dangles (cleared in finish_run).
  Run* cached_run_ = nullptr;
  /// Scratch stage-assignment context: remaining_pex keeps its capacity
  /// across every serial-stage dispatch this manager performs.
  SspContext ssp_scratch_;
  std::uint64_t next_run_id_ = 1;
  std::uint64_t next_task_id_ = 1;

  GlobalHandler on_global_;
  SubtaskHandler on_subtask_;
  SubmitObserver on_submitted_;

  std::uint64_t submitted_ = 0;
  std::uint64_t completed_runs_ = 0;
  std::uint64_t aborted_runs_ = 0;
  std::uint64_t resubmissions_ = 0;
  std::uint64_t fault_retries_ = 0;
  std::uint64_t failovers_ = 0;
  std::uint64_t shed_runs_ = 0;
};

}  // namespace sda::core
