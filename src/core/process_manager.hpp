// The process manager (paper §3.2, Figure 2).
//
// Newly created global tasks are handed to the process manager, which
//   1. assigns virtual deadlines to simple subtasks by running the SDA
//      algorithm (Figure 13) on-line — serial stages are assigned when the
//      preceding stage actually finishes;
//   2. submits simple subtasks to their execution nodes;
//   3. enforces precedence among subtasks; and
//   4. optionally aborts whole global tasks whose *real* deadline passed
//      (the §7.3 "abortion by process manager" regime, a timer per task),
//      and resubmits subtasks killed by local-scheduler aborts.
//
// The process manager's own resource use is not modeled (charged to the
// tasks it manages, as in the paper).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/core/sda.hpp"
#include "src/sched/node.hpp"
#include "src/sim/engine.hpp"
#include "src/task/task.hpp"
#include "src/task/tree.hpp"

namespace sda::core {

/// How the process manager handles tardy global tasks.
enum class PmAbortMode {
  kNone,          ///< keep going; late completions still count as misses
  kRealDeadline,  ///< abort all live subtasks when the real deadline passes
};

/// Terminal record of one global task run, delivered to the completion
/// handler (and from there to the metrics collector).
struct GlobalTaskRecord {
  std::uint64_t run_id = 0;
  int metrics_class = 0;
  sim::Time arrival = 0.0;
  sim::Time real_deadline = 0.0;
  sim::Time finished_at = 0.0;
  bool aborted = false;  ///< killed by the PM's real-deadline timer
  bool missed = false;   ///< aborted, or finished after the real deadline
  sim::Time total_work = 0.0;  ///< sum of ex over all simple subtasks
  int subtask_count = 0;
  int resubmissions = 0;  ///< local-abort resubmissions within this run
};

class ProcessManager {
 public:
  struct Config {
    std::shared_ptr<const PspStrategy> psp;
    std::shared_ptr<const SspStrategy> ssp;
    PmAbortMode abort_mode = PmAbortMode::kNone;
    /// §7.3: "special directives ... specifying that subtasks are
    /// non-abortable locally".  When set, subtasks are exempt from
    /// local-scheduler abort policies.
    bool mark_subtasks_non_abortable = false;
    /// Retained knob (diagnostic only): resubmitted subtasks are marked
    /// non-abortable, so each subtask aborts locally at most once and every
    /// run terminates; see ProcessManager::handle_local_abort.
    int max_resubmissions_per_run = 64;
  };

  using GlobalHandler = std::function<void(const GlobalTaskRecord&)>;
  /// Invoked when a simple subtask reaches a terminal state: completed, or
  /// aborted with no resubmission to follow.
  using SubtaskHandler = std::function<void(const task::SimpleTask&)>;

  /// @p nodes is indexed by TreeNode::exec_node; the runner wires each
  /// node's completion/abort handlers to handle_completion /
  /// handle_local_abort for subtask-kind tasks.
  ProcessManager(sim::Engine& engine, std::vector<sched::Node*> nodes,
                 Config config);

  ProcessManager(const ProcessManager&) = delete;
  ProcessManager& operator=(const ProcessManager&) = delete;

  void set_global_handler(GlobalHandler h) { on_global_ = std::move(h); }
  void set_subtask_handler(SubtaskHandler h) { on_subtask_ = std::move(h); }

  /// Accepts a global task whose structure (and per-leaf ex/pex) is already
  /// drawn.  @p deadline is the end-to-end real deadline dl(T); arrival is
  /// the engine's current time.  Returns the run id.
  std::uint64_t submit(task::TreePtr tree, sim::Time deadline,
                       int global_metrics_class, int subtask_metrics_class);

  /// Node completion callback for subtask-kind tasks.
  void handle_completion(const task::TaskPtr& t);

  /// Node local-abort callback for subtask-kind tasks.
  void handle_local_abort(const task::TaskPtr& t);

  const Config& config() const noexcept { return config_; }

  // --- statistics ---------------------------------------------------------
  std::size_t live_runs() const noexcept { return runs_.size(); }
  std::uint64_t submitted() const noexcept { return submitted_; }
  std::uint64_t completed_runs() const noexcept { return completed_runs_; }
  std::uint64_t aborted_runs() const noexcept { return aborted_runs_; }
  std::uint64_t resubmissions() const noexcept { return resubmissions_; }

 private:
  struct CompositeState {
    sim::Time assigned_deadline = 0.0;  ///< virtual deadline given to this node
    int next_stage = 0;                 ///< serial: next child to dispatch
    int pending = 0;                    ///< parallel: children not yet done
  };

  struct Run {
    std::uint64_t id = 0;
    task::TreePtr tree;
    sim::Time arrival = 0.0;
    sim::Time real_deadline = 0.0;
    int metrics_class = 0;
    int subtask_metrics_class = 0;
    sim::Time total_work = 0.0;
    int subtask_count = 0;
    int resubmissions = 0;

    std::unordered_map<const task::TreeNode*, CompositeState> state;
    std::unordered_map<const task::TreeNode*, const task::TreeNode*> parent;
    /// Live (queued or running) subtasks, keyed by their leaf.
    std::unordered_map<const task::TreeNode*, task::TaskPtr> live;
    /// Subtask id -> leaf, to correlate node callbacks.
    std::unordered_map<std::uint64_t, const task::TreeNode*> leaf_of;

    sim::EventId abort_timer;
  };

  Run* find_run(std::uint64_t run_id);
  void index_parents(Run& run, const task::TreeNode& t);
  void dispatch(Run& run, const task::TreeNode& t, sim::Time deadline);
  void dispatch_serial_stage(Run& run, const task::TreeNode& serial);
  void dispatch_leaf(Run& run, const task::TreeNode& leaf, sim::Time deadline);
  void child_done(Run& run, const task::TreeNode& child);
  void finish_run(Run& run, bool aborted);
  void abort_run(std::uint64_t run_id);

  sim::Engine& engine_;
  std::vector<sched::Node*> nodes_;
  Config config_;

  std::unordered_map<std::uint64_t, Run> runs_;
  std::uint64_t next_run_id_ = 1;
  std::uint64_t next_task_id_ = 1;

  GlobalHandler on_global_;
  SubtaskHandler on_subtask_;

  std::uint64_t submitted_ = 0;
  std::uint64_t completed_runs_ = 0;
  std::uint64_t aborted_runs_ = 0;
  std::uint64_t resubmissions_ = 0;
};

}  // namespace sda::core
