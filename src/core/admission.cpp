#include "src/core/admission.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "src/core/invariants.hpp"
#include "src/util/feq.hpp"
#include "src/util/fnv.hpp"

namespace sda::core {

namespace {

/// Windows and completion times are sums of doubles; a job finishing
/// exactly at its deadline must not fail by one ulp.
constexpr double kEps = 1e-9;

/// A dead window still carrying demand can contribute unbounded
/// density; clamp so the candidate fails the test instead of dividing
/// by zero.
constexpr double kMinWindow = 1e-12;

}  // namespace

bool utilization_test(const std::vector<LedgerJob>& jobs, double now,
                      double bound) {
  double density = 0.0;
  for (const LedgerJob& j : jobs) {
    if (j.demand <= 0.0) continue;
    const double release = std::max(j.release, now);
    const double window = j.deadline - release;
    if (window <= 0.0) return false;  // demand left, window gone
    density += j.demand / std::max(window, kMinWindow);
  }
  return density <= bound + kEps;
}

bool completion_time_test(const std::vector<LedgerJob>& jobs, double now) {
  const std::size_t n = jobs.size();
  std::vector<double> remaining(n), release(n);
  std::vector<char> finished(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    remaining[i] = jobs[i].demand;
    release[i] = std::max(jobs[i].release, now);
    if (remaining[i] <= 0.0) finished[i] = 1;
  }
  std::size_t done = static_cast<std::size_t>(
      std::count(finished.begin(), finished.end(), char{1}));

  double t = now;
  while (done < n) {
    // Earliest deadline among released unfinished jobs runs; track the
    // next release so a future arrival can preempt it.
    std::size_t best = n;
    double next_release = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      if (finished[i]) continue;
      if (release[i] <= t + kEps) {
        if (best == n || jobs[i].deadline < jobs[best].deadline) best = i;
      } else {
        next_release = std::min(next_release, release[i]);
      }
    }
    if (best == n) {  // idle until the next release
      t = next_release;
      continue;
    }
    const double completion = t + remaining[best];
    if (next_release < completion) {
      remaining[best] -= next_release - t;
      t = next_release;
      continue;
    }
    t = completion;
    if (t > jobs[best].deadline + kEps) return false;
    finished[best] = 1;
    ++done;
  }
  return true;
}

bool scheduling_point_test(const std::vector<LedgerJob>& jobs, double now) {
  const std::size_t n = jobs.size();
  std::vector<double> release(n);
  for (std::size_t i = 0; i < n; ++i) {
    release[i] = std::max(jobs[i].release, now);
  }
  // Processor demand criterion: the busy interval endpoints that matter
  // are (release, deadline) pairs.
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      const double lo = release[a];
      const double hi = jobs[b].deadline;
      if (hi <= lo) continue;
      double demand = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        if (release[i] >= lo - kEps && jobs[i].deadline <= hi + kEps) {
          demand += jobs[i].demand;
        }
      }
      if (demand > hi - lo + kEps) return false;
    }
  }
  return true;
}

const char* to_string(AdmissionDecision d) noexcept {
  switch (d) {
    case AdmissionDecision::kAdmit: return "admit";
    case AdmissionDecision::kAdmitDegraded: return "admit_degraded";
    case AdmissionDecision::kReject: return "reject";
    case AdmissionDecision::kShed: return "shed";
    case AdmissionDecision::kBackpressure: return "backpressure";
  }
  return "?";
}

const char* to_string(OverloadState s) noexcept {
  switch (s) {
    case OverloadState::kNormal: return "normal";
    case OverloadState::kDegraded: return "degraded";
    case OverloadState::kShedding: return "shedding";
  }
  return "?";
}

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(std::move(config)) {
  if (config_.node_count < 1) {
    throw std::invalid_argument("AdmissionController: node_count < 1");
  }
  if (!config_.test_utilization && !config_.test_completion_time &&
      !config_.test_scheduling_point) {
    throw std::invalid_argument(
        "AdmissionController: at least one feasibility test must be enabled");
  }
  if (config_.util_bound <= 0.0) {
    throw std::invalid_argument("AdmissionController: util_bound <= 0");
  }
  if (config_.exit_degraded > config_.enter_degraded ||
      config_.exit_shedding > config_.enter_shedding ||
      config_.enter_degraded > config_.enter_shedding) {
    throw std::invalid_argument(
        "AdmissionController: hysteresis thresholds must satisfy "
        "exit_degraded <= enter_degraded <= enter_shedding and "
        "exit_shedding <= enter_shedding");
  }
  if (config_.degrade_stretch < 1.0) {
    throw std::invalid_argument("AdmissionController: degrade_stretch < 1");
  }
  if (config_.shed_headroom < 0.0 || config_.shed_headroom >= 1.0) {
    throw std::invalid_argument(
        "AdmissionController: shed_headroom outside [0, 1)");
  }
  if (config_.pressure_alpha <= 0.0 || config_.pressure_alpha > 1.0) {
    throw std::invalid_argument(
        "AdmissionController: pressure_alpha outside (0, 1]");
  }
  psp_ = make_psp_strategy(config_.psp);
  ssp_ = make_ssp_strategy(config_.ssp);
  if (config_.plan_cache) {
    cache_ = std::make_unique<PlanCache>(config_.plan_cache_capacity);
  }
  ledgers_.resize(static_cast<std::size_t>(config_.node_count));
}

std::size_t AdmissionController::ledger_size() const noexcept {
  util::RoleGuard own(owner_);
  std::size_t total = 0;
  for (const auto& ledger : ledgers_) total += ledger.size();
  return total;
}

PlanCache::Stats AdmissionController::cache_stats() const noexcept {
  util::RoleGuard own(owner_);
  return cache_ ? cache_->stats() : PlanCache::Stats{};
}

double AdmissionController::raw_pressure() const {
  // Worst per-node ledger density over the jobs' *original* windows —
  // stable while a job lives, decays as jobs retire or expire.
  double worst = 0.0;
  for (const auto& ledger : ledgers_) {
    double density = 0.0;
    for (const LedgerJob& j : ledger) {
      if (j.demand <= 0.0) continue;
      density += j.demand / std::max(j.deadline - j.release, kMinWindow);
    }
    worst = std::max(worst, density);
  }
  return worst / config_.util_bound;
}

void AdmissionController::refresh(double now) {
  for (auto& ledger : ledgers_) {
    std::erase_if(ledger,
                  [now](const LedgerJob& j) { return j.deadline <= now; });
  }
  const double alpha = config_.pressure_alpha;
  pressure_ = alpha * raw_pressure() + (1.0 - alpha) * pressure_;

  OverloadState next = state_;
  switch (state_) {
    case OverloadState::kNormal:
      if (pressure_ >= config_.enter_shedding) {
        next = OverloadState::kShedding;
      } else if (pressure_ >= config_.enter_degraded) {
        next = OverloadState::kDegraded;
      }
      break;
    case OverloadState::kDegraded:
      if (pressure_ >= config_.enter_shedding) {
        next = OverloadState::kShedding;
      } else if (pressure_ <= config_.exit_degraded) {
        next = OverloadState::kNormal;
      }
      break;
    case OverloadState::kShedding:
      if (pressure_ <= config_.exit_shedding) {
        next = pressure_ <= config_.exit_degraded ? OverloadState::kNormal
                                                  : OverloadState::kDegraded;
      }
      break;
  }
  if (next != state_) {
    state_ = next;
    switch (next) {
      case OverloadState::kNormal: ++stats_.to_normal; break;
      case OverloadState::kDegraded: ++stats_.to_degraded; break;
      case OverloadState::kShedding: ++stats_.to_shedding; break;
    }
  }
}

void AdmissionController::plan_candidate(const task::TreeNode& tree,
                                         double now, double deadline,
                                         std::uint64_t ticket,
                                         std::vector<LedgerJob>& jobs,
                                         std::vector<int>& sites,
                                         std::vector<PlanEntry>& plan,
                                         bool* cache_hit) {
  // Both cache paths evaluate the same normalized computation, so the
  // shifted absolute times below are bit-identical either way.
  const double rel_deadline = deadline - now;
  NormalizedPlan fresh;
  const NormalizedPlan* normalized = nullptr;
  if (cache_ != nullptr) {
    normalized =
        &cache_->lookup_or_compute(tree, rel_deadline, *psp_, *ssp_, cache_hit);
  } else {
    fresh = compute_normalized_plan(tree, rel_deadline, *psp_, *ssp_);
    normalized = &fresh;
    if (cache_hit != nullptr) *cache_hit = false;
  }

  const std::vector<const task::TreeNode*> leaves = task::leaves(tree);
  jobs.clear();
  sites.clear();
  plan.clear();
  jobs.reserve(leaves.size());
  sites.reserve(leaves.size());
  plan.reserve(leaves.size());
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    const task::TreeNode* leaf = leaves[i];
    const NormalizedLeaf& a = (*normalized)[i];
    LedgerJob job;
    job.ticket = ticket;
    job.leaf = static_cast<std::uint32_t>(i);
    job.release = now + a.planned_dispatch;
    job.deadline = now + a.virtual_deadline;
    job.demand = leaf->pred_exec;
    jobs.push_back(job);
    sites.push_back(leaf->exec_node);
    plan.push_back({leaf->exec_node, job.release, job.deadline});
    if (leaf->exec_node >= static_cast<int>(ledgers_.size())) {
      ledgers_.resize(static_cast<std::size_t>(leaf->exec_node) + 1);
    }
  }
}

bool AdmissionController::feasible_with(const std::vector<LedgerJob>& candidate,
                                        const std::vector<int>& sites,
                                        double now) const {
  std::vector<int> distinct = sites;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());

  const double bound = state_ == OverloadState::kShedding
                           ? config_.util_bound * (1.0 - config_.shed_headroom)
                           : config_.util_bound;
  std::vector<LedgerJob> merged;
  for (const int site : distinct) {
    merged = ledgers_[static_cast<std::size_t>(site)];
    for (std::size_t i = 0; i < candidate.size(); ++i) {
      if (sites[i] == site) merged.push_back(candidate[i]);
    }
    if (config_.test_utilization && !utilization_test(merged, now, bound)) {
      return false;
    }
    if (state_ == OverloadState::kShedding &&
        !utilization_test(merged, now, bound)) {
      return false;  // headroom gate even when the density test is off
    }
    if (config_.test_completion_time && !completion_time_test(merged, now)) {
      return false;
    }
    if (config_.test_scheduling_point &&
        !scheduling_point_test(merged, now)) {
      return false;
    }
  }
  return true;
}

AdmissionOutcome AdmissionController::try_admit(const task::TreeNode& tree,
                                                double now, double deadline,
                                                std::uint64_t ticket) {
  AdmissionOutcome out;
  out.state = state_;
  out.pressure = pressure_;
  out.deadline = deadline;

  std::vector<LedgerJob> jobs;
  std::vector<int> sites;

  auto attempt = [&](double eff_deadline) {
    plan_candidate(tree, now, eff_deadline, ticket, jobs, sites, out.plan,
                   &out.cache_hit);
    if (!feasible_with(jobs, sites, now)) {
      out.plan.clear();
      return false;
    }
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      ledgers_[static_cast<std::size_t>(sites[i])].push_back(jobs[i]);
    }
    out.deadline = eff_deadline;
    if (invariants::enabled()) {
      invariants::check_plan(tree, now, eff_deadline, *psp_, *ssp_);
    }
    return true;
  };

  switch (state_) {
    case OverloadState::kNormal:
      if (attempt(deadline)) {
        out.decision = AdmissionDecision::kAdmit;
        out.reason = "feasible";
      } else {
        out.decision = AdmissionDecision::kReject;
        out.reason = "infeasible";
      }
      break;
    case OverloadState::kDegraded:
      if (attempt(deadline)) {
        out.decision = AdmissionDecision::kAdmit;
        out.reason = "feasible";
      } else if (attempt(now + config_.degrade_stretch * (deadline - now))) {
        out.decision = AdmissionDecision::kAdmitDegraded;
        out.reason = "stretched-deadline";
      } else {
        out.decision = AdmissionDecision::kReject;
        out.reason = "infeasible-degraded";
      }
      break;
    case OverloadState::kShedding:
      if (attempt(deadline)) {
        out.decision = AdmissionDecision::kAdmit;
        out.reason = "within-headroom";
      } else {
        out.decision = AdmissionDecision::kShed;
        out.reason = "shedding";
      }
      break;
  }
  return out;
}

namespace {

void record(AdmissionStats& stats, const AdmissionOutcome& out) {
  switch (out.decision) {
    case AdmissionDecision::kAdmit: ++stats.admitted; break;
    case AdmissionDecision::kAdmitDegraded: ++stats.admitted_degraded; break;
    case AdmissionDecision::kReject: ++stats.rejected; break;
    case AdmissionDecision::kShed: ++stats.shed; break;
    case AdmissionDecision::kBackpressure: ++stats.backpressure; break;
  }
}

bool negative_slack(const task::TreeNode& tree, double now, double deadline) {
  return now + task::critical_path_pex(tree) > deadline + kEps;
}

AdmissionOutcome shed_outcome(OverloadState state, double pressure,
                              double deadline, const char* reason) {
  AdmissionOutcome out;
  out.decision = AdmissionDecision::kShed;
  out.state = state;
  out.pressure = pressure;
  out.deadline = deadline;
  out.reason = reason;
  return out;
}

}  // namespace

AdmissionOutcome AdmissionController::decide(const task::TreeNode& tree,
                                             double now, double deadline,
                                             std::uint64_t ticket) {
  util::RoleGuard own(owner_);
  ++stats_.submitted;
  refresh(now);
  AdmissionOutcome out =
      negative_slack(tree, now, deadline)
          ? shed_outcome(state_, pressure_, deadline, "negative-slack")
          : try_admit(tree, now, deadline, ticket);
  record(stats_, out);
  return out;
}

AdmissionController::SubmitResult AdmissionController::submit(
    task::TreePtr tree, double now, double deadline, std::uint64_t ticket) {
  util::RoleGuard own(owner_);
  ++stats_.submitted;
  refresh(now);
  SubmitResult result;
  if (negative_slack(*tree, now, deadline)) {
    result.outcome =
        shed_outcome(state_, pressure_, deadline, "negative-slack");
    record(stats_, result.outcome);
    return result;
  }
  result.outcome = try_admit(*tree, now, deadline, ticket);
  if (result.outcome.decision != AdmissionDecision::kReject) {
    record(stats_, result.outcome);
    return result;
  }
  // Infeasible right now but not hopeless: park it for pump() unless
  // the bounded queue is full (backpressure).
  if (queue_.size() >= config_.queue_capacity) {
    result.outcome.decision = AdmissionDecision::kBackpressure;
    result.outcome.reason = "queue-full";
    record(stats_, result.outcome);
    return result;
  }
  queue_.push_back(Pending{ticket, std::move(tree), deadline});
  ++stats_.queued;
  stats_.queue_high_water = std::max(stats_.queue_high_water, queue_.size());
  result.queued = true;
  return result;
}

std::vector<std::pair<std::uint64_t, AdmissionOutcome>>
AdmissionController::pump(double now) {
  util::RoleGuard own(owner_);
  std::vector<std::pair<std::uint64_t, AdmissionOutcome>> resolved;
  if (queue_.empty()) return resolved;
  refresh(now);
  while (!queue_.empty()) {
    Pending& head = queue_.front();
    AdmissionOutcome out;
    if (negative_slack(*head.tree, now, head.deadline)) {
      out = shed_outcome(state_, pressure_, head.deadline,
                         "queued-slack-expired");
    } else {
      out = try_admit(*head.tree, now, head.deadline, head.ticket);
      if (out.decision == AdmissionDecision::kReject) break;  // still parked
    }
    record(stats_, out);
    resolved.emplace_back(head.ticket, std::move(out));
    queue_.pop_front();
  }
  return resolved;
}

std::vector<std::pair<std::uint64_t, AdmissionOutcome>>
AdmissionController::flush(double now) {
  util::RoleGuard own(owner_);
  std::vector<std::pair<std::uint64_t, AdmissionOutcome>> resolved;
  if (queue_.empty()) return resolved;
  refresh(now);
  while (!queue_.empty()) {
    Pending& head = queue_.front();
    AdmissionOutcome out;
    if (negative_slack(*head.tree, now, head.deadline)) {
      out = shed_outcome(state_, pressure_, head.deadline,
                         "queued-slack-expired");
    } else {
      out = try_admit(*head.tree, now, head.deadline, head.ticket);
      if (out.decision == AdmissionDecision::kReject) {
        // End of stream: there will be no later pump to admit it.
        out.decision = AdmissionDecision::kShed;
        out.reason = "flushed";
      }
    }
    record(stats_, out);
    resolved.emplace_back(head.ticket, std::move(out));
    queue_.pop_front();
  }
  return resolved;
}

void AdmissionController::on_finished(std::uint64_t ticket) {
  util::RoleGuard own(owner_);
  for (auto& ledger : ledgers_) {
    std::erase_if(ledger,
                  [ticket](const LedgerJob& j) { return j.ticket == ticket; });
  }
}

std::size_t AdmissionController::on_leaf_finished(std::uint64_t ticket,
                                                  std::uint32_t leaf) {
  util::RoleGuard own(owner_);
  std::size_t removed = 0;
  for (auto& ledger : ledgers_) {
    removed += std::erase_if(ledger, [ticket, leaf](const LedgerJob& j) {
      return j.ticket == ticket && j.leaf == leaf;
    });
  }
  return removed;
}

void AdmissionController::trip_shedding() {
  util::RoleGuard own(owner_);
  // Raise the smoothed pressure to the entry threshold: the state flips
  // now, and the ordinary EWMA decay in refresh() walks it back out
  // through the same hysteresis exits as a load-driven trip.
  pressure_ = std::max(pressure_, config_.enter_shedding);
  if (state_ != OverloadState::kShedding) {
    state_ = OverloadState::kShedding;
    ++stats_.to_shedding;
  }
}

std::uint64_t AdmissionController::fingerprint() const {
  util::RoleGuard own(owner_);
  std::uint64_t h = util::kFnvOffsetBasis;
  util::fnv1a_mix_value(h, static_cast<std::uint32_t>(state_));
  util::fnv1a_mix_value(h, pressure_);
  for (const auto& ledger : ledgers_) {
    const std::uint64_t n = ledger.size();
    util::fnv1a_mix_value(h, n);
    for (const LedgerJob& j : ledger) {
      util::fnv1a_mix_value(h, j.ticket);
      util::fnv1a_mix_value(h, j.leaf);
      util::fnv1a_mix_value(h, j.release);
      util::fnv1a_mix_value(h, j.deadline);
      util::fnv1a_mix_value(h, j.demand);
    }
  }
  const std::uint64_t depth = queue_.size();
  util::fnv1a_mix_value(h, depth);
  for (const Pending& p : queue_) {
    util::fnv1a_mix_value(h, p.ticket);
    util::fnv1a_mix_value(h, p.deadline);
    // Exact byte serialization of the parked tree — the same encoding
    // the plan cache keys on, so distinct trees never hash alike.
    const std::string key = plan_cache_key(*p.tree, p.deadline);
    util::fnv1a_mix(h, key.data(), key.size());
  }
  util::fnv1a_mix_value(h, stats_.submitted);
  util::fnv1a_mix_value(h, stats_.admitted);
  util::fnv1a_mix_value(h, stats_.admitted_degraded);
  util::fnv1a_mix_value(h, stats_.rejected);
  util::fnv1a_mix_value(h, stats_.shed);
  util::fnv1a_mix_value(h, stats_.backpressure);
  util::fnv1a_mix_value(h, stats_.queued);
  util::fnv1a_mix_value(h, stats_.to_degraded);
  util::fnv1a_mix_value(h, stats_.to_shedding);
  util::fnv1a_mix_value(h, stats_.to_normal);
  return h;
}

}  // namespace sda::core
