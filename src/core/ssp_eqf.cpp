#include "src/core/ssp_eqf.hpp"

namespace sda::core {

Time SspEqualFlexibility::assign(const SspContext& ctx) const {
  const Time own_pex = ctx.remaining_pex.empty() ? 0.0 : ctx.remaining_pex[0];
  const Time total_pex = ctx.remaining_pex_total();
  const Time slack_left = ctx.remaining_slack();
  double share;
  if (total_pex > 0.0) {
    share = own_pex / total_pex;
  } else {
    const std::size_t stages_left =
        ctx.remaining_pex.empty() ? 1 : ctx.remaining_pex.size();
    share = 1.0 / static_cast<double>(stages_left);
  }
  return ctx.now + own_pex + slack_left * share;
}

}  // namespace sda::core
