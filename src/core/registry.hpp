// core::Registry<T> — the generic named-factory registry, re-exported.
//
// The template itself lives in src/util/registry.hpp because the layering
// DAG (sda_analyze LAYERING) forbids sim -> core includes and the
// timer-queue backend registry (src/sim/timer_queue.cpp) is a sim-layer
// client of the same pattern.  Strategy-side code and user extensions
// should spell it core::Registry.
#pragma once

#include "src/util/registry.hpp"

namespace sda::core {

template <typename Product>
using Registry = util::Registry<Product>;

}  // namespace sda::core
