// Ultimate Deadline (UD) for parallel subtasks — the paper's base strategy.
//
//   UD:  dl(T_i) = dl(T)
//
// Subtasks inherit the end-to-end deadline and compete with local tasks on
// equal terms.  The paper shows this amplifies the global miss rate roughly
// as 1 - (1 - MD_subtask)^n.
#pragma once

#include "src/core/strategy.hpp"

namespace sda::core {

class PspUltimateDeadline final : public PspStrategy {
 public:
  Time assign(const PspContext& ctx, int branch, Time branch_pex) const override;
  std::string name() const override { return "UD"; }
};

}  // namespace sda::core
