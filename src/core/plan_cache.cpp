#include "src/core/plan_cache.hpp"

#include <bit>
#include <cstring>

#include "src/task/tree.hpp"

namespace sda::core {

namespace {

void append_u32(std::string& out, std::uint32_t v) {
  char bytes[sizeof v];
  std::memcpy(bytes, &v, sizeof v);
  out.append(bytes, sizeof v);
}

void append_f64(std::string& out, double v) {
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
  char bytes[sizeof bits];
  std::memcpy(bytes, &bits, sizeof bits);
  out.append(bytes, sizeof bits);
}

void serialize(const task::TreeNode& t, std::string& out) {
  switch (t.kind) {
    case task::TreeNode::Kind::Leaf:
      out.push_back('L');
      append_u32(out, static_cast<std::uint32_t>(t.exec_node));
      append_f64(out, t.pred_exec);
      return;
    case task::TreeNode::Kind::Serial:
      out.push_back('S');
      break;
    case task::TreeNode::Kind::Parallel:
      out.push_back('P');
      break;
  }
  append_u32(out, static_cast<std::uint32_t>(t.children.size()));
  for (const auto& child : t.children) serialize(*child, out);
}

}  // namespace

std::string plan_cache_key(const task::TreeNode& tree, double rel_deadline) {
  std::string key;
  // A leaf costs 13 bytes, a composite 5; leaf count bounds both.
  key.reserve(static_cast<std::size_t>(task::leaf_count(tree)) * 18 + 8);
  serialize(tree, key);
  append_f64(key, rel_deadline);
  return key;
}

NormalizedPlan compute_normalized_plan(const task::TreeNode& tree,
                                       double rel_deadline,
                                       const PspStrategy& psp,
                                       const SspStrategy& ssp) {
  const std::vector<LeafAssignment> assignments =
      plan_assignment(tree, 0.0, rel_deadline, psp, ssp);
  NormalizedPlan plan;
  plan.reserve(assignments.size());
  for (const LeafAssignment& a : assignments) {
    plan.push_back({a.planned_dispatch, a.virtual_deadline});
  }
  return plan;
}

const NormalizedPlan& PlanCache::lookup_or_compute(const task::TreeNode& tree,
                                                   double rel_deadline,
                                                   const PspStrategy& psp,
                                                   const SspStrategy& ssp,
                                                   bool* hit) {
  std::string key = plan_cache_key(tree, rel_deadline);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    ++stats_.hits;
    if (hit != nullptr) *hit = true;
    lru_.splice(lru_.begin(), lru_, it->second);
    return lru_.front().second;
  }
  ++stats_.misses;
  if (hit != nullptr) *hit = false;
  lru_.emplace_front(std::move(key),
                     compute_normalized_plan(tree, rel_deadline, psp, ssp));
  map_.emplace(lru_.front().first, lru_.begin());
  // Never evict the entry just returned (capacity 0 keeps one slot).
  if (map_.size() > capacity_ && map_.size() > 1) {
    map_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
  return lru_.front().second;
}

}  // namespace sda::core
