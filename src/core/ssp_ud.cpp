#include "src/core/ssp_ud.hpp"

namespace sda::core {

Time SspUltimateDeadline::assign(const SspContext& ctx) const {
  return ctx.deadline;
}

}  // namespace sda::core
