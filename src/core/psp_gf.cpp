#include "src/core/psp_gf.hpp"

#include <stdexcept>

namespace sda::core {

PspGlobalsFirst::PspGlobalsFirst(Time delta) : delta_(delta) {
  if (!(delta > 0.0)) throw std::invalid_argument("GF requires DELTA > 0");
}

Time PspGlobalsFirst::assign(const PspContext& ctx, int /*branch*/,
                             Time /*branch_pex*/) const {
  return ctx.deadline - delta_;
}

}  // namespace sda::core
