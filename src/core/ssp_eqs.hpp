// Equal Slack (EQS) for serial stages (from the companion paper [6]).
//
//   EQS:  dl(T_i) = ar(T_i) + pex(T_i) + slack_left / stages_left
//
// where slack_left = dl(T) - ar(T_i) - sum_{j>=i} pex(T_j).  The remaining
// slack is recomputed at every stage boundary and divided *evenly* among
// the stages still to run, regardless of their length.
#pragma once

#include "src/core/strategy.hpp"

namespace sda::core {

class SspEqualSlack final : public SspStrategy {
 public:
  Time assign(const SspContext& ctx) const override;
  std::string name() const override { return "EQS"; }
};

}  // namespace sda::core
