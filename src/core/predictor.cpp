#include "src/core/predictor.hpp"

#include <cmath>
#include <stdexcept>

namespace sda::core {

double leaf_on_time_probability(double window, const NodeModel& model) {
  if (model.rho < 0.0 || model.rho >= 1.0 || model.mu <= 0.0) {
    throw std::invalid_argument(
        "NodeModel: need 0 <= rho < 1 and mu > 0");
  }
  if (window <= 0.0) return 0.0;
  // M/M/1 sojourn time is exponential with rate mu(1 - rho).
  return 1.0 - std::exp(-model.mu * (1.0 - model.rho) * window);
}

MissPrediction predict_miss(const task::TreeNode& tree, double arrival,
                            double deadline, const PspStrategy& psp,
                            const SspStrategy& ssp, const NodeModel& model) {
  MissPrediction out;
  const auto plan = plan_assignment(tree, arrival, deadline, psp, ssp);
  double on_time = 1.0;
  out.leaves.reserve(plan.size());
  for (const LeafAssignment& a : plan) {
    LeafEstimate est;
    est.leaf = a.leaf;
    // The *real* completion requirement is the end-to-end deadline; a leaf
    // whose virtual window extends past it (UD) is still bounded by it.
    const double effective_deadline = std::min(a.virtual_deadline, deadline);
    est.window = effective_deadline - a.planned_dispatch;
    est.on_time = leaf_on_time_probability(est.window, model);
    on_time *= est.on_time;
    out.leaves.push_back(est);
  }
  out.on_time_probability = on_time;
  out.miss_probability = 1.0 - on_time;
  return out;
}

}  // namespace sda::core
