// Equal Flexibility (EQF) for serial stages — the SSP strategy the paper
// evaluates in Section 8 (from the companion paper [6]):
//
//   dl(T_i) = ar(T_i) + pex(T_i)
//           + [dl(T) - ar(T_i) - sum_{j>=i} pex(T_j)]            (slack left)
//             * [pex(T_i) / sum_{j>=i} pex(T_j)]                 (pex share)
//
// The remaining slack is split among the remaining stages *proportionally to
// their predicted execution times*, giving every stage the same
// slack-to-execution ratio ("flexibility").  [6] shows EQF tolerates pex
// estimates that are off by a factor of ~2 (reproduced by
// bench/ablation_pex_noise).
//
// When the remaining pex total is zero (degenerate zero-length stages) the
// proportional share is undefined; we fall back to an even split, which
// EQS would produce.
#pragma once

#include "src/core/strategy.hpp"

namespace sda::core {

class SspEqualFlexibility final : public SspStrategy {
 public:
  Time assign(const SspContext& ctx) const override;
  std::string name() const override { return "EQF"; }
};

}  // namespace sda::core
