#include "src/core/analysis.hpp"

#include <cmath>
#include <stdexcept>

namespace sda::core::analysis {

double global_miss_probability(double subtask_miss, int n) {
  if (subtask_miss < 0.0 || subtask_miss > 1.0) {
    throw std::invalid_argument("global_miss_probability: p outside [0, 1]");
  }
  if (n < 0) throw std::invalid_argument("global_miss_probability: n < 0");
  return 1.0 - std::pow(1.0 - subtask_miss, static_cast<double>(n));
}

double required_subtask_miss(double global_miss, int n) {
  if (global_miss < 0.0 || global_miss > 1.0) {
    throw std::invalid_argument("required_subtask_miss: p outside [0, 1]");
  }
  if (n <= 0) throw std::invalid_argument("required_subtask_miss: n <= 0");
  return 1.0 - std::pow(1.0 - global_miss, 1.0 / static_cast<double>(n));
}

double harmonic(int n) {
  if (n < 0) throw std::invalid_argument("harmonic: n < 0");
  double h = 0.0;
  for (int i = 1; i <= n; ++i) h += 1.0 / static_cast<double>(i);
  return h;
}

double expected_max_exponential(int n, double mean) {
  if (mean <= 0.0) {
    throw std::invalid_argument("expected_max_exponential: mean <= 0");
  }
  return mean * harmonic(n);
}

Mm1 mm1(double lambda, double mu) {
  if (lambda < 0.0 || mu <= 0.0 || lambda >= mu) {
    throw std::invalid_argument("mm1: need 0 <= lambda < mu, mu > 0");
  }
  Mm1 r;
  r.rho = lambda / mu;
  r.mean_in_system = r.rho / (1.0 - r.rho);
  r.mean_in_queue = r.rho * r.rho / (1.0 - r.rho);
  r.mean_sojourn = 1.0 / (mu - lambda);
  r.mean_wait = r.rho / (mu - lambda);
  return r;
}

double mm1_sojourn_tail(double lambda, double mu, double t) {
  if (lambda < 0.0 || mu <= 0.0 || lambda >= mu) {
    throw std::invalid_argument("mm1_sojourn_tail: need 0 <= lambda < mu");
  }
  if (t < 0.0) return 1.0;
  return std::exp(-(mu - lambda) * t);
}

}  // namespace sda::core::analysis
