// Globals First (GF) for parallel subtasks:
//
//   GF:  dl(T_i) = dl(T) - DELTA
//
// Subtasks are always served before local tasks on a pure EDF node, while
// the earliest-deadline order *within* the class of globals is preserved.
// DELTA only needs to exceed any deadline horizon in the system; the
// ablation bench ablation_gf_delta confirms results are insensitive to its
// exact value.  GF is inapplicable when local schedulers abort on expired
// virtual deadlines (paper §7.3): the shifted deadline is always in the
// past.
#pragma once

#include "src/core/strategy.hpp"

namespace sda::core {

class PspGlobalsFirst final : public PspStrategy {
 public:
  /// Default DELTA is far larger than any simulated horizon.
  explicit PspGlobalsFirst(Time delta = 1e9);

  Time assign(const PspContext& ctx, int branch, Time branch_pex) const override;
  std::string name() const override { return "GF"; }

  Time delta() const noexcept { return delta_; }

 private:
  Time delta_;
};

}  // namespace sda::core
