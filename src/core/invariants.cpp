#include "src/core/invariants.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "src/core/sda.hpp"
#include "src/core/strategy.hpp"
#include "src/task/tree.hpp"
#include "src/util/env.hpp"

namespace sda::core::invariants {

namespace detail {
std::atomic<bool> g_enabled{false};

namespace {
/// Dynamic initializer: pick up SDA_VALIDATE from the environment once
/// the util library is usable.  Hooks firing before this runs see the
/// zero-initialized (off) flag, which is the safe default.
const bool g_env_init = [] {
  if (util::env_flag("SDA_VALIDATE")) {
    g_enabled.store(true, std::memory_order_relaxed);
  }
  return true;
}();
}  // namespace
}  // namespace detail

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

Dump& Dump::num(const char* key, double value) {
  std::ostringstream os;
  os << "  " << key << " = " << value << '\n';
  text_ += os.str();
  return *this;
}

Dump& Dump::integer(const char* key, long long value) {
  std::ostringstream os;
  os << "  " << key << " = " << value << '\n';
  text_ += os.str();
  return *this;
}

Dump& Dump::str(const char* key, const std::string& value) {
  text_ += "  ";
  text_ += key;
  text_ += " = ";
  text_ += value;
  text_ += '\n';
  return *this;
}

void fail(const char* check, const Dump& dump) noexcept {
  std::fprintf(stderr,
               "=== SDA_VALIDATE violation ===\n"
               "check: %s\n%s"
               "=== aborting: simulator state is untrustworthy ===\n",
               check, dump.text().c_str());
  std::fflush(stderr);
  std::abort();
}

namespace {

bool finite(double v) noexcept { return std::isfinite(v); }

/// DIV-x with n*x < 1 hands each branch MORE than the remaining window —
/// the paper's formula dl = now + (D - now)/(n*x) exceeds D exactly when
/// n*x < 1.  That configuration is a documented pathology (sensible x is
/// in [1/n, 1]), not an implementation bug, so the containment check must
/// stand down for it.  The strategy's name carries x ("DIV-0.2").
bool div_overcommits(const std::string& psp_name, int branch_count) noexcept {
  if (psp_name.rfind("DIV-", 0) != 0) return false;
  const char* s = psp_name.c_str() + 4;
  char* end = nullptr;
  const double x = std::strtod(s, &end);
  if (end == s) return false;
  return x * static_cast<double>(branch_count) < 1.0;
}

}  // namespace

void check_branch_assignment(const std::string& psp_name,
                             double parent_deadline, double now, int branch,
                             int branch_count, double child_deadline) {
  if (!finite(child_deadline)) {
    fail("psp-deadline-finite", Dump()
                                    .str("psp", psp_name)
                                    .num("child_deadline", child_deadline)
                                    .num("parent_deadline", parent_deadline)
                                    .num("now", now)
                                    .integer("branch", branch)
                                    .integer("branch_count", branch_count));
  }
  // Containment only while the parent window is still open: a composite
  // whose deadline already passed has no window to contain anything in
  // (DIV-x then legitimately lands between the deadline and now).  DIV-x
  // with n*x < 1 over-commits by design; see div_overcommits.
  if (parent_deadline >= now &&
      child_deadline > parent_deadline + kDeadlineEps &&
      !div_overcommits(psp_name, branch_count)) {
    fail("psp-branch-exceeds-parent-window",
         Dump()
             .str("psp", psp_name)
             .num("child_deadline", child_deadline)
             .num("parent_deadline", parent_deadline)
             .num("now", now)
             .integer("branch", branch)
             .integer("branch_count", branch_count));
  }
}

void check_stage_assignment(const std::string& ssp_name,
                            double parent_deadline, double now, int stage,
                            int stage_count, double remaining_pex_total,
                            double child_deadline) {
  Dump dump;
  dump.str("ssp", ssp_name)
      .num("child_deadline", child_deadline)
      .num("parent_deadline", parent_deadline)
      .num("now", now)
      .integer("stage", stage)
      .integer("stage_count", stage_count)
      .num("remaining_pex_total", remaining_pex_total);
  if (!finite(child_deadline)) {
    fail("ssp-deadline-finite", dump);
  }
  if (stage == stage_count - 1) {
    // Partition property: every built-in SSP hands the last stage exactly
    // the composite's remaining window — UD and ED by definition, EQS and
    // EQF because the single remaining share is the whole slack.
    if (std::fabs(child_deadline - parent_deadline) > kDeadlineEps) {
      fail("ssp-final-stage-not-partition", dump);
    }
    return;
  }
  // Containment and no-past-deadline hold whenever the stage is assigned
  // with non-negative remaining slack; an already-infeasible window
  // (negative slack) legitimately produces deadlines outside it.
  const double slack = parent_deadline - now - remaining_pex_total;
  if (slack >= 0.0) {
    if (child_deadline > parent_deadline + kDeadlineEps) {
      fail("ssp-stage-exceeds-parent-window", dump.num("slack", slack));
    }
    if (child_deadline < now - kDeadlineEps) {
      fail("ssp-stage-deadline-in-past", dump.num("slack", slack));
    }
  }
}

namespace {

/// Offline plan walk mirroring sda.cpp's plan_assignment, with the
/// oracle's checks at every assignment.  @p bounded is true while every
/// enclosing window had non-negative slack, i.e. while the containment
/// chain child <= parent <= ... <= global deadline is actually implied.
void walk_plan(const task::TreeNode& t, double dispatch, double deadline,
               double global_deadline, bool bounded, const PspStrategy& psp,
               const SspStrategy& ssp) {
  const double local_slack =
      deadline - dispatch - task::critical_path_pex(t);
  const bool here_feasible = local_slack >= 0.0;
  if (t.is_leaf()) {
    if (bounded && here_feasible &&
        deadline > global_deadline + kDeadlineEps) {
      fail("plan-leaf-exceeds-global-deadline",
           Dump()
               .num("leaf_deadline", deadline)
               .num("global_deadline", global_deadline)
               .num("dispatch", dispatch)
               .str("leaf", t.name.empty() ? std::string("<unnamed>")
                                           : t.name));
    }
    return;
  }
  const bool child_bounded = bounded && here_feasible;
  if (t.is_serial()) {
    double now = dispatch;
    double prev_stage_deadline = dispatch;
    const int m = static_cast<int>(t.children.size());
    for (int i = 0; i < m; ++i) {
      const double stage_dl = assign_stage_deadline(ssp, t, i, now, deadline);
      double remaining = 0.0;
      for (double pex : stage_pex(t, i)) remaining += pex;
      check_stage_assignment(ssp.name(), deadline, now, i, m, remaining,
                             stage_dl);
      // Non-decreasing along the serial chain — guaranteed while the
      // remaining window still has slack at this stage's dispatch time.
      if (deadline - now - remaining >= 0.0 && i > 0 &&
          stage_dl < prev_stage_deadline - kDeadlineEps) {
        fail("plan-serial-chain-decreasing",
             Dump()
                 .str("ssp", ssp.name())
                 .integer("stage", i)
                 .num("stage_deadline", stage_dl)
                 .num("previous_stage_deadline", prev_stage_deadline)
                 .num("now", now)
                 .num("serial_deadline", deadline));
      }
      // The leaf-vs-global check downstream relies on the containment
      // chain child <= parent <= ... <= global; once a link is broken
      // (tolerated above under negative slack), stop implying it.
      walk_plan(*t.children[i], now, stage_dl, global_deadline,
                child_bounded && stage_dl <= deadline + kDeadlineEps, psp,
                ssp);
      prev_stage_deadline = stage_dl;
      // Optimistic static plan, as in sda.cpp: the next stage starts at
      // this stage's virtual deadline, but time never moves backwards.
      now = std::max(now, stage_dl);
    }
    return;
  }
  const int n = static_cast<int>(t.children.size());
  for (int i = 0; i < n; ++i) {
    const double branch_dl =
        assign_branch_deadline(psp, t, i, dispatch, deadline);
    check_branch_assignment(psp.name(), deadline, dispatch, i, n, branch_dl);
    // Same as the serial case: a branch deadline past the parent's (the
    // tolerated DIV n*x < 1 overcommit) severs the containment chain.
    walk_plan(*t.children[i], dispatch, branch_dl, global_deadline,
              child_bounded && branch_dl <= deadline + kDeadlineEps, psp,
              ssp);
  }
}

}  // namespace

void check_plan(const task::TreeNode& tree, double arrival, double deadline,
                const PspStrategy& psp, const SspStrategy& ssp) {
  walk_plan(tree, arrival, deadline, deadline, /*bounded=*/true, psp, ssp);
}

}  // namespace sda::core::invariants
