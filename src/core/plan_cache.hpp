// SDA plan cache — O(1) amortized deadline assignment for repeated
// tree shapes.
//
// A long-running admission service sees the same few task shapes over
// and over (the paper's workloads draw from a handful of structural
// templates), yet plan_assignment walks the whole tree every time.
// The cache memoizes the walk.  Two properties make it safe:
//
//   * Plans are computed in *normalized time* — arrival 0, deadline
//     equal to the task's relative slack — and shifted by the
//     submission time on use.  Cached and fresh paths both evaluate
//     plan_assignment(tree, 0, rel_deadline) and add the same offset,
//     and IEEE-754 addition is deterministic, so a cache hit is
//     bit-identical to a recomputation (proven by the fingerprint
//     tests in tests/test_admission.cpp).
//   * The key is an exact byte serialization of the tree (kinds, child
//     counts, exec nodes, pex bit patterns) plus the relative-deadline
//     bit pattern.  Exact string equality — two distinct shapes can
//     never alias through a hash collision.
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/sda.hpp"

namespace sda::core {

/// One leaf's normalized assignment: times relative to the arrival.
struct NormalizedLeaf {
  double planned_dispatch = 0.0;
  double virtual_deadline = 0.0;
};

/// Leaf assignments in DFS leaf order (the order of task::leaves()).
using NormalizedPlan = std::vector<NormalizedLeaf>;

/// Exact byte serialization of (tree shape, exec nodes, pex bits,
/// relative-deadline bits).  Structure bytes make the encoding
/// prefix-free, so distinct trees never serialize alike.
std::string plan_cache_key(const task::TreeNode& tree, double rel_deadline);

/// Computes the normalized plan directly (the cache-off path).  The
/// cache calls this on a miss, so cached and fresh plans are
/// bit-identical by construction.
NormalizedPlan compute_normalized_plan(const task::TreeNode& tree,
                                       double rel_deadline,
                                       const PspStrategy& psp,
                                       const SspStrategy& ssp);

/// LRU cache of normalized SDA plans with hit/miss/eviction counters.
class PlanCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  /// @p capacity 0 degenerates to a pass-through (every call a miss).
  explicit PlanCache(std::size_t capacity) : capacity_(capacity) {}

  /// Returns the normalized plan for (tree, rel_deadline), computing
  /// and inserting it on a miss.  The reference stays valid until the
  /// next call.  @p hit (optional) reports whether this was a hit.
  const NormalizedPlan& lookup_or_compute(const task::TreeNode& tree,
                                          double rel_deadline,
                                          const PspStrategy& psp,
                                          const SspStrategy& ssp,
                                          bool* hit = nullptr);

  const Stats& stats() const noexcept { return stats_; }
  std::size_t size() const noexcept { return map_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  using Entry = std::pair<std::string, NormalizedPlan>;

  std::size_t capacity_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> map_;
  Stats stats_;
};

}  // namespace sda::core
