#include "src/core/sda.hpp"

#include <algorithm>
#include <stdexcept>

namespace sda::core {

using task::TreeNode;

std::vector<Time> stage_pex(const TreeNode& serial, int from_stage) {
  if (!serial.is_serial()) {
    throw std::invalid_argument("stage_pex: node is not a serial composite");
  }
  const int m = static_cast<int>(serial.children.size());
  if (from_stage < 0 || from_stage >= m) {
    throw std::out_of_range("stage_pex: stage index out of range");
  }
  std::vector<Time> pex;
  pex.reserve(static_cast<std::size_t>(m - from_stage));
  for (int j = from_stage; j < m; ++j) {
    pex.push_back(task::critical_path_pex(*serial.children[j]));
  }
  return pex;
}

Time assign_stage_deadline(const SspStrategy& ssp, const TreeNode& serial,
                           int stage, Time now, Time serial_deadline) {
  SspContext ctx;
  ctx.now = now;
  ctx.deadline = serial_deadline;
  ctx.stage = stage;
  ctx.stage_count = static_cast<int>(serial.children.size());
  ctx.remaining_pex = stage_pex(serial, stage);
  return ssp.assign(ctx);
}

Time assign_branch_deadline(const PspStrategy& psp, const TreeNode& parallel,
                            int branch, Time now, Time parallel_deadline) {
  if (!parallel.is_parallel()) {
    throw std::invalid_argument(
        "assign_branch_deadline: node is not a parallel composite");
  }
  const int n = static_cast<int>(parallel.children.size());
  if (branch < 0 || branch >= n) {
    throw std::out_of_range("assign_branch_deadline: branch out of range");
  }
  PspContext ctx;
  ctx.now = now;
  ctx.deadline = parallel_deadline;
  ctx.branch_count = n;
  return psp.assign(ctx, branch,
                    task::critical_path_pex(*parallel.children[branch]));
}

Time assign_stage_deadline(const SspStrategy& ssp, const task::FlatTree& flat,
                           std::uint32_t serial_slot, int stage, Time now,
                           Time serial_deadline, SspContext& scratch) {
  const int m = static_cast<int>(flat.child_count(serial_slot));
  scratch.now = now;
  scratch.deadline = serial_deadline;
  scratch.stage = stage;
  scratch.stage_count = m;
  const Time* slice = flat.child_cp_pex(serial_slot);
  scratch.remaining_pex.assign(slice + stage, slice + m);
  return ssp.assign(scratch);
}

Time assign_branch_deadline(const PspStrategy& psp, const task::FlatTree& flat,
                            std::uint32_t parallel_slot, int branch, Time now,
                            Time parallel_deadline) {
  PspContext ctx;
  ctx.now = now;
  ctx.deadline = parallel_deadline;
  ctx.branch_count = static_cast<int>(flat.child_count(parallel_slot));
  return psp.assign(ctx, branch, flat.child_cp_pex(parallel_slot)[branch]);
}

namespace {
void walk_flat(const task::FlatTree& ft, std::uint32_t s, Time dispatch,
               Time deadline, const PspStrategy& psp, const SspStrategy& ssp,
               SspContext& scratch, std::vector<LeafAssignment>& out) {
  if (ft.is_leaf(s)) {
    out.push_back(LeafAssignment{&ft.node(s), dispatch, deadline});
    return;
  }
  const std::uint32_t cnt = ft.child_count(s);
  if (ft.is_serial(s)) {
    Time now = dispatch;
    for (std::uint32_t i = 0; i < cnt; ++i) {
      const Time stage_dl = assign_stage_deadline(
          ssp, ft, s, static_cast<int>(i), now, deadline, scratch);
      walk_flat(ft, ft.child(s, i), now, stage_dl, psp, ssp, scratch, out);
      // Optimistic static plan: the next stage is assumed to start at this
      // stage's assigned virtual deadline — but never before the current
      // dispatch time (an already-late stage, or a GF-shifted one, has a
      // virtual deadline in the past; time still only moves forward).
      now = std::max(now, stage_dl);
    }
    return;
  }
  for (std::uint32_t i = 0; i < cnt; ++i) {
    const Time branch_dl = assign_branch_deadline(
        psp, ft, s, static_cast<int>(i), dispatch, deadline);
    walk_flat(ft, ft.child(s, i), dispatch, branch_dl, psp, ssp, scratch, out);
  }
}
}  // namespace

std::vector<LeafAssignment> plan_assignment(const TreeNode& tree, Time arrival,
                                            Time deadline,
                                            const PspStrategy& psp,
                                            const SspStrategy& ssp) {
  // One flat build per walk, reused across calls on this thread: the plan
  // walk then reads precomputed critical paths off contiguous arrays
  // instead of re-walking every subtree per stage (the old quadratic-ish
  // inner loop behind BM_SdaPlanWalk).
  thread_local task::FlatTree flat;
  thread_local SspContext scratch;
  flat.build(tree);
  std::vector<LeafAssignment> out;
  out.reserve(static_cast<std::size_t>(flat.leaf_count()));
  walk_flat(flat, 0, arrival, deadline, psp, ssp, scratch, out);
  return out;
}

}  // namespace sda::core
