#include "src/core/sda.hpp"

#include <algorithm>
#include <stdexcept>

namespace sda::core {

using task::TreeNode;

std::vector<Time> stage_pex(const TreeNode& serial, int from_stage) {
  if (!serial.is_serial()) {
    throw std::invalid_argument("stage_pex: node is not a serial composite");
  }
  const int m = static_cast<int>(serial.children.size());
  if (from_stage < 0 || from_stage >= m) {
    throw std::out_of_range("stage_pex: stage index out of range");
  }
  std::vector<Time> pex;
  pex.reserve(static_cast<std::size_t>(m - from_stage));
  for (int j = from_stage; j < m; ++j) {
    pex.push_back(task::critical_path_pex(*serial.children[j]));
  }
  return pex;
}

Time assign_stage_deadline(const SspStrategy& ssp, const TreeNode& serial,
                           int stage, Time now, Time serial_deadline) {
  SspContext ctx;
  ctx.now = now;
  ctx.deadline = serial_deadline;
  ctx.stage = stage;
  ctx.stage_count = static_cast<int>(serial.children.size());
  ctx.remaining_pex = stage_pex(serial, stage);
  return ssp.assign(ctx);
}

Time assign_branch_deadline(const PspStrategy& psp, const TreeNode& parallel,
                            int branch, Time now, Time parallel_deadline) {
  if (!parallel.is_parallel()) {
    throw std::invalid_argument(
        "assign_branch_deadline: node is not a parallel composite");
  }
  const int n = static_cast<int>(parallel.children.size());
  if (branch < 0 || branch >= n) {
    throw std::out_of_range("assign_branch_deadline: branch out of range");
  }
  PspContext ctx;
  ctx.now = now;
  ctx.deadline = parallel_deadline;
  ctx.branch_count = n;
  return psp.assign(ctx, branch,
                    task::critical_path_pex(*parallel.children[branch]));
}

namespace {
void walk(const TreeNode& t, Time dispatch, Time deadline,
          const PspStrategy& psp, const SspStrategy& ssp,
          std::vector<LeafAssignment>& out) {
  if (t.is_leaf()) {
    out.push_back(LeafAssignment{&t, dispatch, deadline});
    return;
  }
  if (t.is_serial()) {
    Time now = dispatch;
    for (int i = 0; i < static_cast<int>(t.children.size()); ++i) {
      const Time stage_dl = assign_stage_deadline(ssp, t, i, now, deadline);
      walk(*t.children[i], now, stage_dl, psp, ssp, out);
      // Optimistic static plan: the next stage is assumed to start at this
      // stage's assigned virtual deadline — but never before the current
      // dispatch time (an already-late stage, or a GF-shifted one, has a
      // virtual deadline in the past; time still only moves forward).
      now = std::max(now, stage_dl);
    }
    return;
  }
  for (int i = 0; i < static_cast<int>(t.children.size()); ++i) {
    const Time branch_dl = assign_branch_deadline(psp, t, i, dispatch, deadline);
    walk(*t.children[i], dispatch, branch_dl, psp, ssp, out);
  }
}
}  // namespace

std::vector<LeafAssignment> plan_assignment(const TreeNode& tree, Time arrival,
                                            Time deadline,
                                            const PspStrategy& psp,
                                            const SspStrategy& ssp) {
  std::vector<LeafAssignment> out;
  out.reserve(static_cast<std::size_t>(task::leaf_count(tree)));
  walk(tree, arrival, deadline, psp, ssp, out);
  return out;
}

}  // namespace sda::core
