#include "src/core/process_manager.hpp"

#include <cassert>
#include <stdexcept>

namespace sda::core {

using task::TaskPtr;
using task::TaskState;
using task::TreeNode;

ProcessManager::ProcessManager(sim::Engine& engine,
                               std::vector<sched::Node*> nodes, Config config)
    : engine_(engine), nodes_(std::move(nodes)), config_(std::move(config)) {
  if (!config_.psp) throw std::invalid_argument("ProcessManager: PSP strategy required");
  if (!config_.ssp) throw std::invalid_argument("ProcessManager: SSP strategy required");
  for (const auto* n : nodes_) {
    if (n == nullptr) throw std::invalid_argument("ProcessManager: null node");
  }
}

ProcessManager::Run* ProcessManager::find_run(std::uint64_t run_id) {
  auto it = runs_.find(run_id);
  return it == runs_.end() ? nullptr : &it->second;
}

void ProcessManager::index_parents(Run& run, const TreeNode& t) {
  for (const auto& c : t.children) {
    run.parent[c.get()] = &t;
    index_parents(run, *c);
  }
}

std::uint64_t ProcessManager::submit(task::TreePtr tree, sim::Time deadline,
                                     int global_metrics_class,
                                     int subtask_metrics_class) {
  if (!tree) throw std::invalid_argument("ProcessManager::submit: null tree");
  if (auto why = task::validate(*tree); !why.empty()) {
    throw std::invalid_argument("ProcessManager::submit: " + why);
  }
  for (const TreeNode* leaf : task::leaves(*tree)) {
    if (leaf->exec_node < 0 ||
        leaf->exec_node >= static_cast<int>(nodes_.size())) {
      throw std::out_of_range("ProcessManager::submit: leaf bound to node " +
                              std::to_string(leaf->exec_node) +
                              " but the system has " +
                              std::to_string(nodes_.size()) + " nodes");
    }
  }

  const std::uint64_t id = next_run_id_++;
  Run& run = runs_[id];
  run.id = id;
  run.tree = std::move(tree);
  run.arrival = engine_.now();
  run.real_deadline = deadline;
  run.metrics_class = global_metrics_class;
  run.subtask_metrics_class = subtask_metrics_class;
  run.total_work = task::total_ex(*run.tree);
  run.subtask_count = task::leaf_count(*run.tree);
  index_parents(run, *run.tree);
  ++submitted_;

  if (config_.abort_mode == PmAbortMode::kRealDeadline) {
    // Footnote 8: when the timer at the *real* deadline expires, the whole
    // global task is aborted (all of its subtasks).
    run.abort_timer = engine_.at(deadline, [this, id] { abort_run(id); });
  }

  // SDA(root, dl(T)).
  dispatch(run, *run.tree, deadline);
  return id;
}

void ProcessManager::dispatch(Run& run, const TreeNode& t, sim::Time deadline) {
  CompositeState& st = run.state[&t];
  st.assigned_deadline = deadline;
  if (t.is_leaf()) {
    dispatch_leaf(run, t, deadline);
    return;
  }
  if (t.is_serial()) {
    st.next_stage = 0;
    dispatch_serial_stage(run, t);
    return;
  }
  // Parallel: all branches are released now, each with its PSP deadline.
  st.pending = static_cast<int>(t.children.size());
  for (int i = 0; i < static_cast<int>(t.children.size()); ++i) {
    const sim::Time branch_dl =
        assign_branch_deadline(*config_.psp, t, i, engine_.now(), deadline);
    dispatch(run, *t.children[i], branch_dl);
  }
}

void ProcessManager::dispatch_serial_stage(Run& run, const TreeNode& serial) {
  const CompositeState& st = run.state[&serial];
  const int i = st.next_stage;
  assert(i < static_cast<int>(serial.children.size()));
  const sim::Time stage_dl = assign_stage_deadline(
      *config_.ssp, serial, i, engine_.now(), st.assigned_deadline);
  dispatch(run, *serial.children[i], stage_dl);
}

void ProcessManager::dispatch_leaf(Run& run, const TreeNode& leaf,
                                   sim::Time deadline) {
  TaskPtr t = task::make_subtask(next_task_id_++, run.id, leaf.exec_node,
                                 engine_.now(), leaf.exec_time, leaf.pred_exec,
                                 run.real_deadline);
  t->attrs.virtual_deadline = deadline;
  t->metrics_class = run.subtask_metrics_class;
  t->non_abortable = config_.mark_subtasks_non_abortable;
  run.live[&leaf] = t;
  run.leaf_of[t->id] = &leaf;
  nodes_[static_cast<std::size_t>(leaf.exec_node)]->submit(std::move(t));
}

void ProcessManager::handle_completion(const TaskPtr& t) {
  if (t->kind != task::TaskKind::kSubtask) return;
  Run* run = find_run(t->owner_run);
  if (run == nullptr) return;  // run already finished/aborted
  auto leaf_it = run->leaf_of.find(t->id);
  if (leaf_it == run->leaf_of.end()) return;
  const TreeNode* leaf = leaf_it->second;
  run->leaf_of.erase(leaf_it);
  run->live.erase(leaf);
  if (on_subtask_) on_subtask_(*t);
  child_done(*run, *leaf);
}

void ProcessManager::handle_local_abort(const TaskPtr& t) {
  if (t->kind != task::TaskKind::kSubtask) return;
  Run* run = find_run(t->owner_run);
  if (run == nullptr) return;
  if (run->leaf_of.count(t->id) == 0) return;

  // §7.3: the victim's slack was mostly consumed by the failed attempt; it
  // is resubmitted with its remaining real deadline as the virtual deadline
  // (no further priority promotion) and marked non-abortable: the global
  // task cannot terminate unless this subtask eventually finishes, and a
  // second local abort at the real deadline would only waste more work.
  // The resubmitted subtask therefore completes — typically late, which is
  // exactly the paper's "little slack left ... will very likely miss its
  // deadline".
  ++run->resubmissions;
  ++resubmissions_;
  t->state = TaskState::kCreated;
  t->attrs.arrival = engine_.now();
  t->attrs.virtual_deadline = t->attrs.real_deadline;
  t->non_abortable = true;
  nodes_[static_cast<std::size_t>(t->exec_node)]->submit(t);
}

void ProcessManager::child_done(Run& run, const TreeNode& child) {
  auto parent_it = run.parent.find(&child);
  if (parent_it == run.parent.end()) {
    finish_run(run, /*aborted=*/false);
    return;
  }
  const TreeNode& p = *parent_it->second;
  CompositeState& st = run.state[&p];
  if (p.is_serial()) {
    ++st.next_stage;
    if (st.next_stage < static_cast<int>(p.children.size())) {
      dispatch_serial_stage(run, p);
    } else {
      child_done(run, p);
    }
    return;
  }
  assert(p.is_parallel());
  if (--st.pending == 0) child_done(run, p);
}

void ProcessManager::finish_run(Run& run, bool aborted) {
  GlobalTaskRecord rec;
  rec.run_id = run.id;
  rec.metrics_class = run.metrics_class;
  rec.arrival = run.arrival;
  rec.real_deadline = run.real_deadline;
  rec.finished_at = engine_.now();
  rec.aborted = aborted;
  rec.missed = aborted || rec.finished_at > run.real_deadline;
  rec.total_work = run.total_work;
  rec.subtask_count = run.subtask_count;
  rec.resubmissions = run.resubmissions;

  if (engine_.pending(run.abort_timer)) engine_.cancel(run.abort_timer);
  if (aborted) {
    ++aborted_runs_;
  } else {
    ++completed_runs_;
  }
  GlobalHandler handler = on_global_;  // copy: erase() destroys `run`
  runs_.erase(run.id);
  if (handler) handler(rec);
}

void ProcessManager::abort_run(std::uint64_t run_id) {
  Run* run = find_run(run_id);
  if (run == nullptr) return;
  // Abort every live subtask at its node; each counts as a missed subtask.
  // Stages not yet dispatched are simply never dispatched.
  for (auto& [leaf, t] : run->live) {
    nodes_[static_cast<std::size_t>(t->exec_node)]->abort(*t);
    if (on_subtask_) on_subtask_(*t);
  }
  run->live.clear();
  run->leaf_of.clear();
  finish_run(*run, /*aborted=*/true);
}

}  // namespace sda::core
