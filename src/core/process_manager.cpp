#include "src/core/process_manager.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>

#include "src/core/invariants.hpp"

namespace sda::core {

using task::FlatTree;
using task::TaskPtr;
using task::TaskState;
using task::TreeNode;

namespace {
/// Retired Run objects kept around for reuse; beyond this they are freed.
/// Sized for the live-run population of a loaded system, not its lifetime
/// throughput — the pool exists to make the steady state allocation-free.
constexpr std::size_t kRunPoolCap = 64;
}  // namespace

DirectNodePort::DirectNodePort(std::vector<sched::Node*> nodes)
    : nodes_(std::move(nodes)) {
  for (const auto* n : nodes_) {
    if (n == nullptr) throw std::invalid_argument("ProcessManager: null node");
  }
}

bool DirectNodePort::is_up(int node) const {
  return nodes_[static_cast<std::size_t>(node)]->is_up();
}

void DirectNodePort::submit(int node, const task::TaskPtr& t) {
  nodes_[static_cast<std::size_t>(node)]->submit(t);
}

void DirectNodePort::abort(int node, const task::SimpleTask& t) {
  nodes_[static_cast<std::size_t>(node)]->abort(t);
}

void ProcessManager::Run::arm(std::uint32_t n) {
  assigned_deadline.assign(n, 0.0);
  progress.assign(n, 0);
  live.assign(n, nullptr);
  leaf_retries.assign(n, 0);
  retry_timers.assign(n, sim::EventId{});
  live_count = 0;
  retry_timer_count = 0;
  resubmissions = 0;
  retries = 0;
  abort_timer = sim::EventId{};
}

ProcessManager::ProcessManager(sim::Engine& engine,
                               std::vector<sched::Node*> nodes, Config config)
    : engine_(engine),
      owned_port_(std::make_unique<DirectNodePort>(std::move(nodes))),
      port_(owned_port_.get()),
      config_(std::move(config)) {
  if (!config_.psp) throw std::invalid_argument("ProcessManager: PSP strategy required");
  if (!config_.ssp) throw std::invalid_argument("ProcessManager: SSP strategy required");
}

ProcessManager::ProcessManager(sim::Engine& engine, NodePort& port,
                               Config config)
    : engine_(engine), port_(&port), config_(std::move(config)) {
  if (!config_.psp) throw std::invalid_argument("ProcessManager: PSP strategy required");
  if (!config_.ssp) throw std::invalid_argument("ProcessManager: SSP strategy required");
}

ProcessManager::Run* ProcessManager::find_run(std::uint64_t run_id) {
  if (cached_run_ != nullptr && cached_run_->id == run_id) return cached_run_;
  auto it = runs_.find(run_id);
  if (it == runs_.end()) return nullptr;
  cached_run_ = it->second.get();
  return cached_run_;
}

std::unique_ptr<ProcessManager::Run> ProcessManager::acquire_run() {
  if (run_pool_.empty()) return std::make_unique<Run>();
  std::unique_ptr<Run> run = std::move(run_pool_.back());
  run_pool_.pop_back();
  return run;
}

void ProcessManager::recycle_run(std::unique_ptr<Run> run) {
  if (run_pool_.size() >= kRunPoolCap) return;  // let it free
  // Drop references now (tree node pool blocks, task objects); the vector
  // capacities and the FlatTree arena are what the pool preserves.
  run->tree.reset();
  run->live.clear();
  run_pool_.push_back(std::move(run));
}

std::uint64_t ProcessManager::submit(task::TreePtr tree, sim::Time deadline,
                                     int global_metrics_class,
                                     int subtask_metrics_class) {
  if (!tree) throw std::invalid_argument("ProcessManager::submit: null tree");
  if (auto why = task::validate(*tree); !why.empty()) {
    throw std::invalid_argument("ProcessManager::submit: " + why);
  }

  std::unique_ptr<Run> owned = acquire_run();
  Run& run = *owned;
  run.tree = std::move(tree);
  run.flat.build(*run.tree);
  for (std::uint32_t s = 0; s < run.flat.size(); ++s) {
    if (!run.flat.is_leaf(s)) continue;
    const int node = run.flat.node(s).exec_node;
    if (node < 0 || node >= node_count()) {
      // No state has changed yet (the id counter is untouched); the tree
      // dies with `owned` exactly as it died with the old code's throw.
      throw std::out_of_range("ProcessManager::submit: leaf bound to node " +
                              std::to_string(node) + " but the system has " +
                              std::to_string(node_count()) + " nodes");
    }
  }

  const std::uint64_t id = next_run_id_++;
  run.id = id;
  run.arrival = engine_.now();
  run.real_deadline = deadline;
  run.metrics_class = global_metrics_class;
  run.subtask_metrics_class = subtask_metrics_class;
  run.total_work = run.flat.total_ex();
  run.subtask_count = run.flat.leaf_count();
  run.arm(run.flat.size());
  runs_.emplace(id, std::move(owned));
  cached_run_ = &run;
  ++submitted_;
  if (on_submitted_) on_submitted_(id, deadline);

  if (config_.abort_mode == PmAbortMode::kRealDeadline) {
    // Footnote 8: when the timer at the *real* deadline expires, the whole
    // global task is aborted (all of its subtasks).
    run.abort_timer = engine_.at(deadline, [this, id] { abort_run(id); });
  }

  // Oracle: before committing to the on-line dispatch, verify the
  // strategies' offline plan partitions this task's window (containment,
  // serial-chain monotonicity, global-deadline bound).  Strategies are
  // pure, so the extra walk cannot perturb the simulation.
  if (invariants::enabled()) {
    invariants::check_plan(*run.tree, engine_.now(), deadline, *config_.psp,
                           *config_.ssp);
  }

  // SDA(root, dl(T)).
  dispatch(run, 0, deadline);
  return id;
}

void ProcessManager::dispatch(Run& run, std::uint32_t slot,
                              sim::Time deadline) {
  run.assigned_deadline[slot] = deadline;
  if (run.flat.is_leaf(slot)) {
    dispatch_leaf(run, slot, deadline);
    return;
  }
  if (run.flat.is_serial(slot)) {
    run.progress[slot] = 0;
    dispatch_serial_stage(run, slot);
    return;
  }
  // Parallel: all branches are released now, each with its PSP deadline.
  const int n = static_cast<int>(run.flat.child_count(slot));
  run.progress[slot] = n;
  for (int i = 0; i < n; ++i) {
    const sim::Time branch_dl = assign_branch_deadline(
        *config_.psp, run.flat, slot, i, engine_.now(), deadline);
    if (invariants::enabled()) {
      invariants::check_branch_assignment(config_.psp->name(), deadline,
                                          engine_.now(), i, n, branch_dl);
    }
    dispatch(run, run.flat.child(slot, static_cast<std::uint32_t>(i)),
             branch_dl);
  }
}

void ProcessManager::dispatch_serial_stage(Run& run,
                                           std::uint32_t serial_slot) {
  const int i = run.progress[serial_slot];
  const int m = static_cast<int>(run.flat.child_count(serial_slot));
  assert(i < m);
  const sim::Time serial_deadline = run.assigned_deadline[serial_slot];
  const sim::Time stage_dl =
      assign_stage_deadline(*config_.ssp, run.flat, serial_slot, i,
                            engine_.now(), serial_deadline, ssp_scratch_);
  if (invariants::enabled()) {
    sim::Time remaining = 0.0;
    const sim::Time* slice = run.flat.child_cp_pex(serial_slot);
    for (int j = i; j < m; ++j) remaining += slice[j];
    invariants::check_stage_assignment(config_.ssp->name(), serial_deadline,
                                       engine_.now(), i, m, remaining,
                                       stage_dl);
  }
  dispatch(run, run.flat.child(serial_slot, static_cast<std::uint32_t>(i)),
           stage_dl);
}

void ProcessManager::dispatch_leaf(Run& run, std::uint32_t leaf_slot,
                                   sim::Time deadline) {
  const TreeNode& leaf = run.flat.node(leaf_slot);
  TaskPtr t = task::make_subtask(next_task_id_++, run.id, leaf.exec_node,
                                 engine_.now(), leaf.exec_time, leaf.pred_exec,
                                 run.real_deadline);
  t->attrs.virtual_deadline = deadline;
  t->metrics_class = run.subtask_metrics_class;
  t->non_abortable = config_.mark_subtasks_non_abortable;
  t->leaf_slot = leaf_slot;
  run.live[leaf_slot] = t;
  ++run.live_count;
  port_->submit(leaf.exec_node, t);
}

void ProcessManager::handle_completion(const TaskPtr& t) {
  if (t->kind != task::TaskKind::kSubtask) return;
  Run* run = find_run(t->owner_run);
  if (run == nullptr) return;  // run already finished/aborted
  TaskPtr* live = live_task(*run, t->leaf_slot, t->id);
  if (live == nullptr) return;
  const std::uint32_t leaf_slot = t->leaf_slot;
  live->reset();
  --run->live_count;
  if (on_subtask_) on_subtask_(*t);
  child_done(*run, leaf_slot);
}

void ProcessManager::handle_local_abort(const TaskPtr& t) {
  if (t->kind != task::TaskKind::kSubtask) return;
  Run* run = find_run(t->owner_run);
  if (run == nullptr) return;
  if (live_task(*run, t->leaf_slot, t->id) == nullptr) return;

  // Resubmission budget exhausted: abort the whole run instead of feeding
  // it more service it cannot convert into a timely completion.
  if (run->resubmissions >= config_.max_resubmissions_per_run) {
    terminate_run(*run, /*shed=*/false);
    return;
  }

  // §7.3: the victim's slack was mostly consumed by the failed attempt; it
  // is resubmitted with its remaining real deadline as the virtual deadline
  // (no further priority promotion) and marked non-abortable: the global
  // task cannot terminate unless this subtask eventually finishes, and a
  // second local abort at the real deadline would only waste more work.
  // The resubmitted subtask therefore completes — typically late, which is
  // exactly the paper's "little slack left ... will very likely miss its
  // deadline".
  ++run->resubmissions;
  ++resubmissions_;
  t->state = TaskState::kCreated;
  t->attrs.arrival = engine_.now();
  t->attrs.virtual_deadline = t->attrs.real_deadline;
  t->non_abortable = true;
  port_->submit(t->exec_node, t);
}

void ProcessManager::child_done(Run& run, std::uint32_t child_slot) {
  const std::uint32_t p = run.flat.parent(child_slot);
  if (p == FlatTree::kNoParent) {
    finish_run(run, /*aborted=*/false);
    return;
  }
  if (run.flat.is_serial(p)) {
    int& next = run.progress[p];
    ++next;
    if (next < static_cast<int>(run.flat.child_count(p))) {
      dispatch_serial_stage(run, p);
    } else {
      child_done(run, p);
    }
    return;
  }
  assert(run.flat.is_parallel(p));
  if (--run.progress[p] == 0) child_done(run, p);
}

void ProcessManager::finish_run(Run& run, bool aborted, bool shed) {
  GlobalTaskRecord rec;
  rec.run_id = run.id;
  rec.metrics_class = run.metrics_class;
  rec.arrival = run.arrival;
  rec.real_deadline = run.real_deadline;
  rec.finished_at = engine_.now();
  rec.aborted = aborted;
  rec.missed = aborted || rec.finished_at > run.real_deadline;
  rec.total_work = run.total_work;
  rec.subtask_count = run.subtask_count;
  rec.resubmissions = run.resubmissions;
  rec.retries = run.retries;
  rec.shed = shed;

  // Timer hygiene: every terminal path ends here, so neither the run's
  // abort timer nor any pending backoff-retry timer can outlive the run
  // and fire against recycled state.  A run shed by negative-slack
  // shedding while a leaf waits out its backoff reaches this via
  // terminate_run, which is exactly the case the retry-timer slots exist
  // for.
  if (engine_.pending(run.abort_timer)) engine_.cancel(run.abort_timer);
  assert(!engine_.pending(run.abort_timer));
  if (run.retry_timer_count > 0) {
    for (sim::EventId& timer : run.retry_timers) {
      if (engine_.pending(timer)) engine_.cancel(timer);
      timer = sim::EventId{};
    }
    run.retry_timer_count = 0;
  }
  if (shed) {
    ++shed_runs_;
    ++aborted_runs_;
  } else if (aborted) {
    ++aborted_runs_;
  } else {
    ++completed_runs_;
  }
  // The extract destroys nothing (the Run moves into the pool); rec was
  // copied out above and on_global_ is a member of *this, so invoking it
  // after the run is retired is safe.
  if (cached_run_ == &run) cached_run_ = nullptr;
  auto it = runs_.find(run.id);
  assert(it != runs_.end());
  std::unique_ptr<Run> owned = std::move(it->second);
  runs_.erase(it);
  recycle_run(std::move(owned));
  if (on_global_) on_global_(rec);
}

void ProcessManager::abort_run(std::uint64_t run_id) {
  Run* run = find_run(run_id);
  if (run == nullptr) return;
  terminate_run(*run, /*shed=*/false);
}

void ProcessManager::terminate_run(Run& run, bool shed) {
  // Abort every live subtask at its node; each counts as a missed subtask.
  // Stages not yet dispatched are simply never dispatched.  Iterate in
  // task-id order (== dispatch order), which slot order is not: serial
  // stages dispatch as predecessors finish, interleaved across branches.
  std::vector<TaskPtr> victims;
  victims.reserve(static_cast<std::size_t>(run.live_count));
  for (TaskPtr& lt : run.live) {
    if (lt) victims.push_back(std::move(lt));
  }
  run.live_count = 0;
  std::sort(victims.begin(), victims.end(),
            [](const TaskPtr& a, const TaskPtr& b) { return a->id < b->id; });
  for (const TaskPtr& t : victims) {
    // A task waiting out a retry backoff or already killed by a fault is
    // not at any node; abort() is a no-op for it.
    port_->abort(t->exec_node, *t);
    if (!task::is_terminal(t->state)) {
      t->state = TaskState::kAborted;
      t->finished_at = engine_.now();
    }
    if (on_subtask_) on_subtask_(*t);
  }
  finish_run(run, /*aborted=*/true, shed);
}

void ProcessManager::handle_failure(const TaskPtr& t) {
  if (t->kind != task::TaskKind::kSubtask) return;
  Run* run = find_run(t->owner_run);
  if (run == nullptr) return;
  if (live_task(*run, t->leaf_slot, t->id) == nullptr) return;
  const std::uint32_t leaf_slot = t->leaf_slot;
  const RecoveryPolicy& rp = config_.recovery;

  // Bounded retries: the (max+1)-th fault within one run sheds it.
  if (run->retries >= rp.max_retries_per_run) {
    terminate_run(*run, /*shed=*/true);
    return;
  }
  // Deadline-aware shedding: if even the predicted remainder cannot fit in
  // the slack left, drop the run now instead of burning more service on it.
  if (rp.shed_negative_slack &&
      engine_.now() + remaining_path_pex(*run, leaf_slot) >
          run->real_deadline) {
    terminate_run(*run, /*shed=*/true);
    return;
  }

  ++run->retries;
  ++fault_retries_;
  const int attempt = ++run->leaf_retries[leaf_slot];
  const double delay =
      rp.backoff_base > 0.0
          ? rp.backoff_base * std::pow(rp.backoff_factor, attempt - 1)
          : 0.0;
  if (delay > 0.0) {
    const std::uint64_t run_id = run->id;
    ++run->retry_timer_count;
    run->retry_timers[leaf_slot] = engine_.in(delay, [this, run_id, t] {
      Run* r = find_run(run_id);
      if (r == nullptr) return;  // the run ended while backing off
      if (live_task(*r, t->leaf_slot, t->id) == nullptr) return;
      r->retry_timers[t->leaf_slot] = sim::EventId{};
      --r->retry_timer_count;
      resubmit_retry(*r, t->leaf_slot, t);
    });
  } else {
    resubmit_retry(*run, leaf_slot, t);
  }
}

void ProcessManager::handle_remote(const task::SimpleTask& snapshot,
                                   RemoteSubtaskEvent ev) {
  if (snapshot.kind != task::TaskKind::kSubtask) return;
  Run* run = find_run(snapshot.owner_run);
  if (run == nullptr) return;  // run ended while the message was in flight
  TaskPtr* live = live_task(*run, snapshot.leaf_slot, snapshot.id);
  if (live == nullptr) return;
  // Keep the manager's copy alive across the handler (which may erase the
  // run) and refresh it from the node's snapshot — the same field values
  // the serial path sees on its shared object.
  const TaskPtr t = *live;
  *t = snapshot;
  switch (ev) {
    case RemoteSubtaskEvent::kCompleted:
      handle_completion(t);
      break;
    case RemoteSubtaskEvent::kLocalAbort:
      handle_local_abort(t);
      break;
    case RemoteSubtaskEvent::kFailed:
      handle_failure(t);
      break;
  }
}

void ProcessManager::resubmit_retry(Run& run, std::uint32_t leaf_slot,
                                    const TaskPtr& t) {
  const RecoveryPolicy& rp = config_.recovery;
  int target = t->exec_node;
  if (rp.failover && !port_->is_up(target)) {
    target = failover_target(target);
    if (target != t->exec_node) ++failovers_;
  }
  t->state = TaskState::kCreated;
  t->attrs.arrival = engine_.now();
  if (rp.deadline_mode == RetryDeadline::kSdaRecompute) {
    t->attrs.virtual_deadline = recompute_deadline(run, leaf_slot);
  }
  t->exec_node = target;
  // Node::submit resets `remaining` to the full demand: the failed
  // attempt's work is lost.
  port_->submit(target, t);
}

sim::Time ProcessManager::recompute_deadline(const Run& run,
                                             std::uint32_t leaf_slot) {
  // Ancestor chain leaf -> root (cold path: fault retries only).
  std::vector<std::uint32_t> chain;
  for (std::uint32_t s = leaf_slot;;) {
    chain.push_back(s);
    const std::uint32_t p = run.flat.parent(s);
    if (p == FlatTree::kNoParent) break;
    s = p;
  }
  // Walk root -> leaf re-running the strategy at each composite with the
  // slack measured from now.  Serial stages use the chain child's index,
  // i.e. only the not-yet-finished remainder of the stage list contributes
  // demand.
  const sim::Time now = engine_.now();
  sim::Time deadline = run.real_deadline;
  for (std::size_t i = chain.size(); i-- > 1;) {
    const std::uint32_t composite = chain[i];
    const std::uint32_t child = chain[i - 1];
    const int index = static_cast<int>(run.flat.index_in_parent(child));
    deadline = run.flat.is_serial(composite)
                   ? assign_stage_deadline(*config_.ssp, run.flat, composite,
                                           index, now, deadline, ssp_scratch_)
                   : assign_branch_deadline(*config_.psp, run.flat, composite,
                                            index, now, deadline);
  }
  return deadline;
}

sim::Time ProcessManager::remaining_path_pex(const Run& run,
                                             std::uint32_t leaf_slot) const {
  sim::Time remaining = run.flat.node(leaf_slot).pred_exec;
  std::uint32_t child = leaf_slot;
  for (std::uint32_t p = run.flat.parent(child); p != FlatTree::kNoParent;
       p = run.flat.parent(child)) {
    if (run.flat.is_serial(p)) {
      // Later serial stages run after this subtree finishes; parallel
      // siblings proceed concurrently and do not extend this leaf's path.
      const std::uint32_t idx = run.flat.index_in_parent(child);
      const sim::Time* slice = run.flat.child_cp_pex(p);
      const std::uint32_t cnt = run.flat.child_count(p);
      for (std::uint32_t j = idx + 1; j < cnt; ++j) remaining += slice[j];
    }
    child = p;
  }
  return remaining;
}

int ProcessManager::failover_target(int origin) const {
  const int total = node_count();
  const int compute =
      config_.compute_node_count < 0 ? total : config_.compute_node_count;
  const int base = origin < compute ? 0 : compute;
  const int pool = origin < compute ? compute : total - compute;
  for (int j = 1; j < pool; ++j) {
    const int candidate = base + (origin - base + j) % pool;
    if (port_->is_up(candidate)) {
      return candidate;
    }
  }
  return origin;  // whole pool down: queue into the outage
}

}  // namespace sda::core
