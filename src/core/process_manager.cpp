#include "src/core/process_manager.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "src/core/invariants.hpp"

namespace sda::core {

using task::TaskPtr;
using task::TaskState;
using task::TreeNode;

DirectNodePort::DirectNodePort(std::vector<sched::Node*> nodes)
    : nodes_(std::move(nodes)) {
  for (const auto* n : nodes_) {
    if (n == nullptr) throw std::invalid_argument("ProcessManager: null node");
  }
}

bool DirectNodePort::is_up(int node) const {
  return nodes_[static_cast<std::size_t>(node)]->is_up();
}

void DirectNodePort::submit(int node, const task::TaskPtr& t) {
  nodes_[static_cast<std::size_t>(node)]->submit(t);
}

void DirectNodePort::abort(int node, const task::SimpleTask& t) {
  nodes_[static_cast<std::size_t>(node)]->abort(t);
}

ProcessManager::ProcessManager(sim::Engine& engine,
                               std::vector<sched::Node*> nodes, Config config)
    : engine_(engine),
      owned_port_(std::make_unique<DirectNodePort>(std::move(nodes))),
      port_(owned_port_.get()),
      config_(std::move(config)) {
  if (!config_.psp) throw std::invalid_argument("ProcessManager: PSP strategy required");
  if (!config_.ssp) throw std::invalid_argument("ProcessManager: SSP strategy required");
}

ProcessManager::ProcessManager(sim::Engine& engine, NodePort& port,
                               Config config)
    : engine_(engine), port_(&port), config_(std::move(config)) {
  if (!config_.psp) throw std::invalid_argument("ProcessManager: PSP strategy required");
  if (!config_.ssp) throw std::invalid_argument("ProcessManager: SSP strategy required");
}

ProcessManager::Run* ProcessManager::find_run(std::uint64_t run_id) {
  auto it = runs_.find(run_id);
  return it == runs_.end() ? nullptr : &it->second;
}

void ProcessManager::index_parents(Run& run, const TreeNode& t) {
  for (const auto& c : t.children) {
    run.parent[c.get()] = &t;
    index_parents(run, *c);
  }
}

std::uint64_t ProcessManager::submit(task::TreePtr tree, sim::Time deadline,
                                     int global_metrics_class,
                                     int subtask_metrics_class) {
  if (!tree) throw std::invalid_argument("ProcessManager::submit: null tree");
  if (auto why = task::validate(*tree); !why.empty()) {
    throw std::invalid_argument("ProcessManager::submit: " + why);
  }
  for (const TreeNode* leaf : task::leaves(*tree)) {
    if (leaf->exec_node < 0 || leaf->exec_node >= node_count()) {
      throw std::out_of_range("ProcessManager::submit: leaf bound to node " +
                              std::to_string(leaf->exec_node) +
                              " but the system has " +
                              std::to_string(node_count()) + " nodes");
    }
  }

  const std::uint64_t id = next_run_id_++;
  Run& run = runs_[id];
  run.id = id;
  run.tree = std::move(tree);
  run.arrival = engine_.now();
  run.real_deadline = deadline;
  run.metrics_class = global_metrics_class;
  run.subtask_metrics_class = subtask_metrics_class;
  run.total_work = task::total_ex(*run.tree);
  run.subtask_count = task::leaf_count(*run.tree);
  index_parents(run, *run.tree);
  ++submitted_;
  if (on_submitted_) on_submitted_(id, deadline);

  if (config_.abort_mode == PmAbortMode::kRealDeadline) {
    // Footnote 8: when the timer at the *real* deadline expires, the whole
    // global task is aborted (all of its subtasks).
    run.abort_timer = engine_.at(deadline, [this, id] { abort_run(id); });
  }

  // Oracle: before committing to the on-line dispatch, verify the
  // strategies' offline plan partitions this task's window (containment,
  // serial-chain monotonicity, global-deadline bound).  Strategies are
  // pure, so the extra walk cannot perturb the simulation.
  if (invariants::enabled()) {
    invariants::check_plan(*run.tree, engine_.now(), deadline, *config_.psp,
                           *config_.ssp);
  }

  // SDA(root, dl(T)).
  dispatch(run, *run.tree, deadline);
  return id;
}

void ProcessManager::dispatch(Run& run, const TreeNode& t, sim::Time deadline) {
  CompositeState& st = run.state[&t];
  st.assigned_deadline = deadline;
  if (t.is_leaf()) {
    dispatch_leaf(run, t, deadline);
    return;
  }
  if (t.is_serial()) {
    st.next_stage = 0;
    dispatch_serial_stage(run, t);
    return;
  }
  // Parallel: all branches are released now, each with its PSP deadline.
  st.pending = static_cast<int>(t.children.size());
  for (int i = 0; i < static_cast<int>(t.children.size()); ++i) {
    const sim::Time branch_dl =
        assign_branch_deadline(*config_.psp, t, i, engine_.now(), deadline);
    if (invariants::enabled()) {
      invariants::check_branch_assignment(
          config_.psp->name(), deadline, engine_.now(), i,
          static_cast<int>(t.children.size()), branch_dl);
    }
    dispatch(run, *t.children[i], branch_dl);
  }
}

void ProcessManager::dispatch_serial_stage(Run& run, const TreeNode& serial) {
  const CompositeState& st = run.state[&serial];
  const int i = st.next_stage;
  assert(i < static_cast<int>(serial.children.size()));
  const sim::Time stage_dl = assign_stage_deadline(
      *config_.ssp, serial, i, engine_.now(), st.assigned_deadline);
  if (invariants::enabled()) {
    sim::Time remaining = 0.0;
    for (const sim::Time pex : stage_pex(serial, i)) remaining += pex;
    invariants::check_stage_assignment(
        config_.ssp->name(), st.assigned_deadline, engine_.now(), i,
        static_cast<int>(serial.children.size()), remaining, stage_dl);
  }
  dispatch(run, *serial.children[i], stage_dl);
}

void ProcessManager::dispatch_leaf(Run& run, const TreeNode& leaf,
                                   sim::Time deadline) {
  TaskPtr t = task::make_subtask(next_task_id_++, run.id, leaf.exec_node,
                                 engine_.now(), leaf.exec_time, leaf.pred_exec,
                                 run.real_deadline);
  t->attrs.virtual_deadline = deadline;
  t->metrics_class = run.subtask_metrics_class;
  t->non_abortable = config_.mark_subtasks_non_abortable;
  run.live[&leaf] = t;
  run.leaf_of[t->id] = &leaf;
  port_->submit(leaf.exec_node, t);
}

void ProcessManager::handle_completion(const TaskPtr& t) {
  if (t->kind != task::TaskKind::kSubtask) return;
  Run* run = find_run(t->owner_run);
  if (run == nullptr) return;  // run already finished/aborted
  auto leaf_it = run->leaf_of.find(t->id);
  if (leaf_it == run->leaf_of.end()) return;
  const TreeNode* leaf = leaf_it->second;
  run->leaf_of.erase(leaf_it);
  run->live.erase(leaf);
  if (on_subtask_) on_subtask_(*t);
  child_done(*run, *leaf);
}

void ProcessManager::handle_local_abort(const TaskPtr& t) {
  if (t->kind != task::TaskKind::kSubtask) return;
  Run* run = find_run(t->owner_run);
  if (run == nullptr) return;
  if (run->leaf_of.count(t->id) == 0) return;

  // Resubmission budget exhausted: abort the whole run instead of feeding
  // it more service it cannot convert into a timely completion.
  if (run->resubmissions >= config_.max_resubmissions_per_run) {
    terminate_run(*run, /*shed=*/false);
    return;
  }

  // §7.3: the victim's slack was mostly consumed by the failed attempt; it
  // is resubmitted with its remaining real deadline as the virtual deadline
  // (no further priority promotion) and marked non-abortable: the global
  // task cannot terminate unless this subtask eventually finishes, and a
  // second local abort at the real deadline would only waste more work.
  // The resubmitted subtask therefore completes — typically late, which is
  // exactly the paper's "little slack left ... will very likely miss its
  // deadline".
  ++run->resubmissions;
  ++resubmissions_;
  t->state = TaskState::kCreated;
  t->attrs.arrival = engine_.now();
  t->attrs.virtual_deadline = t->attrs.real_deadline;
  t->non_abortable = true;
  port_->submit(t->exec_node, t);
}

void ProcessManager::child_done(Run& run, const TreeNode& child) {
  auto parent_it = run.parent.find(&child);
  if (parent_it == run.parent.end()) {
    finish_run(run, /*aborted=*/false);
    return;
  }
  const TreeNode& p = *parent_it->second;
  CompositeState& st = run.state[&p];
  if (p.is_serial()) {
    ++st.next_stage;
    if (st.next_stage < static_cast<int>(p.children.size())) {
      dispatch_serial_stage(run, p);
    } else {
      child_done(run, p);
    }
    return;
  }
  assert(p.is_parallel());
  if (--st.pending == 0) child_done(run, p);
}

void ProcessManager::finish_run(Run& run, bool aborted, bool shed) {
  GlobalTaskRecord rec;
  rec.run_id = run.id;
  rec.metrics_class = run.metrics_class;
  rec.arrival = run.arrival;
  rec.real_deadline = run.real_deadline;
  rec.finished_at = engine_.now();
  rec.aborted = aborted;
  rec.missed = aborted || rec.finished_at > run.real_deadline;
  rec.total_work = run.total_work;
  rec.subtask_count = run.subtask_count;
  rec.resubmissions = run.resubmissions;
  rec.retries = run.retries;
  rec.shed = shed;

  // Timer hygiene: every terminal path ends here, so neither the run's
  // abort timer nor any pending backoff-retry timer can outlive the run
  // and fire against recycled state.  A run shed by negative-slack
  // shedding while a leaf waits out its backoff reaches this via
  // terminate_run, which is exactly the case the retry-timer map exists
  // for.
  if (engine_.pending(run.abort_timer)) engine_.cancel(run.abort_timer);
  assert(!engine_.pending(run.abort_timer));
  // sda-lint: allow(UNORDERED_ITER) cancellation is order-independent
  for (const auto& [leaf, timer] : run.retry_timers) {
    if (engine_.pending(timer)) engine_.cancel(timer);
  }
  run.retry_timers.clear();
  if (shed) {
    ++shed_runs_;
    ++aborted_runs_;
  } else if (aborted) {
    ++aborted_runs_;
  } else {
    ++completed_runs_;
  }
  // erase() destroys `run`; rec was copied out above, and on_global_ is a
  // member of *this, so invoking it after the erase is safe.
  runs_.erase(run.id);
  if (on_global_) on_global_(rec);
}

void ProcessManager::abort_run(std::uint64_t run_id) {
  Run* run = find_run(run_id);
  if (run == nullptr) return;
  terminate_run(*run, /*shed=*/false);
}

void ProcessManager::terminate_run(Run& run, bool shed) {
  // Abort every live subtask at its node; each counts as a missed subtask.
  // Stages not yet dispatched are simply never dispatched.  Iterate in
  // task-id order: `live` is keyed by heap pointers, whose order is not
  // reproducible across processes.
  std::vector<TaskPtr> victims;
  victims.reserve(run.live.size());
  // sda-lint: allow(UNORDERED_ITER) collected then sorted by id below
  for (auto& [leaf, t] : run.live) victims.push_back(t);
  std::sort(victims.begin(), victims.end(),
            [](const TaskPtr& a, const TaskPtr& b) { return a->id < b->id; });
  for (const TaskPtr& t : victims) {
    // A task waiting out a retry backoff or already killed by a fault is
    // not at any node; abort() is a no-op for it.
    port_->abort(t->exec_node, *t);
    if (!task::is_terminal(t->state)) {
      t->state = TaskState::kAborted;
      t->finished_at = engine_.now();
    }
    if (on_subtask_) on_subtask_(*t);
  }
  run.live.clear();
  run.leaf_of.clear();
  finish_run(run, /*aborted=*/true, shed);
}

void ProcessManager::handle_failure(const TaskPtr& t) {
  if (t->kind != task::TaskKind::kSubtask) return;
  Run* run = find_run(t->owner_run);
  if (run == nullptr) return;
  auto leaf_it = run->leaf_of.find(t->id);
  if (leaf_it == run->leaf_of.end()) return;
  const TreeNode& leaf = *leaf_it->second;
  const RecoveryPolicy& rp = config_.recovery;

  // Bounded retries: the (max+1)-th fault within one run sheds it.
  if (run->retries >= rp.max_retries_per_run) {
    terminate_run(*run, /*shed=*/true);
    return;
  }
  // Deadline-aware shedding: if even the predicted remainder cannot fit in
  // the slack left, drop the run now instead of burning more service on it.
  if (rp.shed_negative_slack &&
      engine_.now() + remaining_path_pex(*run, leaf) > run->real_deadline) {
    terminate_run(*run, /*shed=*/true);
    return;
  }

  ++run->retries;
  ++fault_retries_;
  const int attempt = ++run->leaf_retries[&leaf];
  const double delay =
      rp.backoff_base > 0.0
          ? rp.backoff_base * std::pow(rp.backoff_factor, attempt - 1)
          : 0.0;
  if (delay > 0.0) {
    const std::uint64_t run_id = run->id;
    run->retry_timers[&leaf] = engine_.in(delay, [this, run_id, t] {
      Run* r = find_run(run_id);
      if (r == nullptr) return;  // the run ended while backing off
      auto it = r->leaf_of.find(t->id);
      if (it == r->leaf_of.end()) return;
      r->retry_timers.erase(it->second);
      resubmit_retry(*r, *it->second, t);
    });
  } else {
    resubmit_retry(*run, leaf, t);
  }
}

void ProcessManager::handle_remote(const task::SimpleTask& snapshot,
                                   RemoteSubtaskEvent ev) {
  if (snapshot.kind != task::TaskKind::kSubtask) return;
  Run* run = find_run(snapshot.owner_run);
  if (run == nullptr) return;  // run ended while the message was in flight
  auto leaf_it = run->leaf_of.find(snapshot.id);
  if (leaf_it == run->leaf_of.end()) return;
  auto live_it = run->live.find(leaf_it->second);
  if (live_it == run->live.end()) return;
  // Keep the manager's copy alive across the handler (which may erase the
  // run) and refresh it from the node's snapshot — the same field values
  // the serial path sees on its shared object.
  const TaskPtr t = live_it->second;
  *t = snapshot;
  switch (ev) {
    case RemoteSubtaskEvent::kCompleted:
      handle_completion(t);
      break;
    case RemoteSubtaskEvent::kLocalAbort:
      handle_local_abort(t);
      break;
    case RemoteSubtaskEvent::kFailed:
      handle_failure(t);
      break;
  }
}

void ProcessManager::resubmit_retry(Run& run, const TreeNode& leaf,
                                    const TaskPtr& t) {
  const RecoveryPolicy& rp = config_.recovery;
  int target = t->exec_node;
  if (rp.failover && !port_->is_up(target)) {
    target = failover_target(target);
    if (target != t->exec_node) ++failovers_;
  }
  t->state = TaskState::kCreated;
  t->attrs.arrival = engine_.now();
  if (rp.deadline_mode == RetryDeadline::kSdaRecompute) {
    t->attrs.virtual_deadline = recompute_deadline(run, leaf);
  }
  t->exec_node = target;
  // Node::submit resets `remaining` to the full demand: the failed
  // attempt's work is lost.
  port_->submit(target, t);
}

sim::Time ProcessManager::recompute_deadline(const Run& run,
                                             const TreeNode& leaf) const {
  // Ancestor chain leaf -> root.
  std::vector<const TreeNode*> chain;
  for (const TreeNode* n = &leaf;;) {
    chain.push_back(n);
    auto it = run.parent.find(n);
    if (it == run.parent.end()) break;
    n = it->second;
  }
  // Walk root -> leaf re-running the strategy at each composite with the
  // slack measured from now.  Serial stages use stage_pex from the chain
  // child's index, i.e. only the not-yet-finished remainder of the stage
  // list contributes demand.
  const sim::Time now = engine_.now();
  sim::Time deadline = run.real_deadline;
  for (std::size_t i = chain.size(); i-- > 1;) {
    const TreeNode& composite = *chain[i];
    const TreeNode* child = chain[i - 1];
    int index = 0;
    for (std::size_t c = 0; c < composite.children.size(); ++c) {
      if (composite.children[c].get() == child) {
        index = static_cast<int>(c);
        break;
      }
    }
    deadline = composite.is_serial()
                   ? assign_stage_deadline(*config_.ssp, composite, index,
                                           now, deadline)
                   : assign_branch_deadline(*config_.psp, composite, index,
                                            now, deadline);
  }
  return deadline;
}

sim::Time ProcessManager::remaining_path_pex(const Run& run,
                                             const TreeNode& leaf) const {
  sim::Time remaining = leaf.pred_exec;
  const TreeNode* child = &leaf;
  for (auto it = run.parent.find(child); it != run.parent.end();
       it = run.parent.find(child)) {
    const TreeNode& p = *it->second;
    if (p.is_serial()) {
      // Later serial stages run after this subtree finishes; parallel
      // siblings proceed concurrently and do not extend this leaf's path.
      bool after = false;
      for (const auto& c : p.children) {
        if (after) remaining += task::critical_path_pex(*c);
        if (c.get() == child) after = true;
      }
    }
    child = &p;
  }
  return remaining;
}

int ProcessManager::failover_target(int origin) const {
  const int total = node_count();
  const int compute =
      config_.compute_node_count < 0 ? total : config_.compute_node_count;
  const int base = origin < compute ? 0 : compute;
  const int pool = origin < compute ? compute : total - compute;
  for (int j = 1; j < pool; ++j) {
    const int candidate = base + (origin - base + j) % pool;
    if (port_->is_up(candidate)) {
      return candidate;
    }
  }
  return origin;  // whole pool down: queue into the outage
}

}  // namespace sda::core
