// Recursive subtask-deadline assignment over serial-parallel trees —
// the paper's Figure 13 SDA algorithm:
//
//   FUNCTION SDA(X, D):
//     if X is simple               -> dl(X) := D
//     if X = [X1 X2 ... Xm]        -> assign dl(X1) by the SSP strategy;
//                                     SDA(X1, dl(X1))      (later stages
//                                     are assigned when they become
//                                     executable)
//     if X = [X1 || ... || Xn]     -> assign each dl(Xi) by the PSP
//                                     strategy; SDA(Xi, dl(Xi)) in parallel
//
// Two forms are provided:
//   * the per-step helpers (stage_pex / assign_stage_deadline /
//     assign_branch_deadline) used by the on-line ProcessManager, which
//     re-evaluates serial stages at their *actual* dispatch times; and
//   * plan_assignment, an offline walk for inspection/tooling that assumes
//     every serial stage finishes exactly at its assigned virtual deadline.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/strategy.hpp"
#include "src/task/attributes.hpp"

namespace sda::core {

/// Predicted critical-path demand of each stage of @p serial starting at
/// @p from_stage — the `remaining_pex` vector an SspContext needs.
/// Requires serial.is_serial() and 0 <= from_stage < #children.
std::vector<Time> stage_pex(const task::TreeNode& serial, int from_stage);

/// Virtual deadline for stage @p stage of @p serial, dispatched at @p now
/// under the composite's (virtual) deadline @p serial_deadline.
Time assign_stage_deadline(const SspStrategy& ssp,
                           const task::TreeNode& serial, int stage, Time now,
                           Time serial_deadline);

/// Virtual deadline for branch @p branch of @p parallel, all branches
/// released at @p now under the composite's (virtual) deadline
/// @p parallel_deadline.
Time assign_branch_deadline(const PspStrategy& psp,
                            const task::TreeNode& parallel, int branch,
                            Time now, Time parallel_deadline);

// --- FlatTree fast paths ----------------------------------------------------
//
// Slot-indexed equivalents of the helpers above for callers that already
// hold a built task::FlatTree (the on-line process manager, plan walks).
// They read the precomputed per-child critical paths off a contiguous
// slice instead of re-walking subtrees, and reuse a caller-owned
// SspContext so the steady state allocates nothing.  Results are
// bit-identical to the TreeNode versions.

/// Stage assignment over flat storage.  @p scratch's remaining_pex is
/// overwritten (capacity reused); other fields are set per call.
Time assign_stage_deadline(const SspStrategy& ssp, const task::FlatTree& flat,
                           std::uint32_t serial_slot, int stage, Time now,
                           Time serial_deadline, SspContext& scratch);

/// Branch assignment over flat storage.
Time assign_branch_deadline(const PspStrategy& psp, const task::FlatTree& flat,
                            std::uint32_t parallel_slot, int branch, Time now,
                            Time parallel_deadline);

/// One leaf's planned dispatch time and virtual deadline.
struct LeafAssignment {
  const task::TreeNode* leaf = nullptr;
  Time planned_dispatch = 0.0;    ///< when the leaf becomes executable
  Time virtual_deadline = 0.0;    ///< deadline the leaf's node would see
};

/// Offline SDA walk: assigns a virtual deadline to every leaf, assuming
/// serial stage i+1 is dispatched exactly at stage i's assigned virtual
/// deadline (the optimistic static plan).  Leaves are returned in DFS
/// order.  Used by examples/notation_tool and the strategy tests; the
/// simulator itself uses the on-line per-step helpers.
std::vector<LeafAssignment> plan_assignment(const task::TreeNode& tree,
                                            Time arrival, Time deadline,
                                            const PspStrategy& psp,
                                            const SspStrategy& ssp);

}  // namespace sda::core
