#include "src/core/psp_ud.hpp"

namespace sda::core {

Time PspUltimateDeadline::assign(const PspContext& ctx, int /*branch*/,
                                 Time /*branch_pex*/) const {
  return ctx.deadline;
}

}  // namespace sda::core
