// SDA_VALIDATE — the runtime invariant oracle.
//
// The paper's results rest on properties the production code never
// restates: SDA (Fig. 13) hands every child a virtual deadline that
// partitions its parent's window, the per-node ready queues stay
// heap-ordered through the O(log n) remove/abort path, and the event
// queue never runs time backwards.  This header is the single switch
// point for checking all of them at run time.
//
// Activation is two-layered:
//   * compile layer — every hook body is guarded by SDA_VALIDATE_COMPILED
//     (default 1; configure with -DSDA_VALIDATE=OFF, which defines it to
//     0, to compile the oracle out entirely for maximum-speed builds);
//   * run layer — with the oracle compiled in, checks only execute when
//     the SDA_VALIDATE environment variable is truthy ("1", "true", ...)
//     or a test called set_enabled(true).  Disabled cost is one relaxed
//     atomic load and branch per hook.
//
// A violated invariant is not an error to recover from — it means the
// simulator is producing numbers that cannot be trusted — so fail()
// prints a structured key=value dump to stderr and calls std::abort().
//
// What the oracle asserts (each check self-gates on the preconditions
// under which the built-in strategy families actually guarantee it; see
// DESIGN.md "Correctness tooling"):
//   (a) SDA assignments: finite deadlines; child deadline inside the
//       parent window when the window has non-negative slack; the final
//       serial stage's deadline equal to the composite's (the partition
//       property); offline plans monotone along serial chains and
//       bounded by the global deadline while feasible.
//   (b) ready-queue heaps: heap order and queue_pos back-link identity
//       after every mutation (see IndexedTaskHeap::validate);
//   (c) event queue: heap order, live-count bookkeeping, no NaN
//       timestamps, and non-decreasing pop times (see EventQueue hooks).
#pragma once

#include <atomic>
#include <string>

#ifndef SDA_VALIDATE_COMPILED
#define SDA_VALIDATE_COMPILED 1
#endif

namespace sda::task {
struct TreeNode;
}  // namespace sda::task

namespace sda::core {
class PspStrategy;
class SspStrategy;
}  // namespace sda::core

namespace sda::core::invariants {

namespace detail {
/// Process-wide switch.  Zero-initialized (off) before invariants.cpp's
/// dynamic initializer reads SDA_VALIDATE from the environment, so hooks
/// that run during static initialization are safely skipped.
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// True when the oracle should run its checks.
inline bool enabled() noexcept {
#if SDA_VALIDATE_COMPILED
  return detail::g_enabled.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

/// Turns the oracle on or off programmatically (tests, tools).  The
/// SDA_VALIDATE environment variable sets the initial state.
void set_enabled(bool on) noexcept;

/// Incrementally builds the key=value detail block of a violation dump.
class Dump {
 public:
  Dump& num(const char* key, double value);
  Dump& integer(const char* key, long long value);
  Dump& str(const char* key, const std::string& value);
  const std::string& text() const noexcept { return text_; }

 private:
  std::string text_;
};

/// Reports a violated invariant: prints the check name and dump to
/// stderr in a structured block, then aborts the process.
[[noreturn]] void fail(const char* check, const Dump& dump) noexcept;

/// Tolerance for deadline identities: assignments are sums of doubles,
/// so exact equality is one rounding away from a false alarm.
inline constexpr double kDeadlineEps = 1e-6;

// --- (a) SDA assignment checks ------------------------------------------

/// Validates one PSP branch assignment made at time @p now under the
/// parallel composite's deadline @p parent_deadline.  Requires a finite
/// child deadline always; when the parent window is still open
/// (parent_deadline >= now) the child deadline must not exceed it.
void check_branch_assignment(const std::string& psp_name,
                             double parent_deadline, double now, int branch,
                             int branch_count, double child_deadline);

/// Validates one SSP stage assignment.  Requires a finite deadline
/// always; the final stage's deadline must equal the composite's
/// (partition property, all built-in SSPs); a non-final stage with
/// non-negative remaining slack must stay inside [now, parent_deadline].
void check_stage_assignment(const std::string& ssp_name,
                            double parent_deadline, double now, int stage,
                            int stage_count, double remaining_pex_total,
                            double child_deadline);

/// Walks the offline SDA plan of @p tree (the optimistic static
/// assignment, as in plan_assignment) and asserts, for every composite
/// whose local window has non-negative slack: containment in the parent
/// window, non-decreasing deadlines along serial chains, and leaf
/// deadlines bounded by @p deadline (the global end-to-end deadline).
/// Called by ProcessManager::submit when the oracle is enabled.
void check_plan(const task::TreeNode& tree, double arrival, double deadline,
                const PspStrategy& psp, const SspStrategy& ssp);

}  // namespace sda::core::invariants
