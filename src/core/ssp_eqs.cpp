#include "src/core/ssp_eqs.hpp"

namespace sda::core {

Time SspEqualSlack::assign(const SspContext& ctx) const {
  const std::size_t stages_left = ctx.remaining_pex.empty()
                                      ? 1
                                      : ctx.remaining_pex.size();
  const Time own_pex = ctx.remaining_pex.empty() ? 0.0 : ctx.remaining_pex[0];
  const Time share =
      ctx.remaining_slack() / static_cast<double>(stages_left);
  return ctx.now + own_pex + share;
}

}  // namespace sda::core
