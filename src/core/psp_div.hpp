// DIV-x for parallel subtasks (paper Equation 1):
//
//   DIV-x:  dl(T_i) = [dl(T) - ar(T)] / (n * x) + ar(T)
//
// The composite's time allowance is divided by x times its branch count, so
// the priority boost grows automatically with the degree of parallelism n.
// The paper finds x = 1 adequate across n (Figure 9): the MD curves flatten
// as x grows, and they flatten sooner for larger n.
#pragma once

#include "src/core/strategy.hpp"

namespace sda::core {

class PspDiv final : public PspStrategy {
 public:
  /// Requires x > 0.
  explicit PspDiv(double x);

  Time assign(const PspContext& ctx, int branch, Time branch_pex) const override;
  std::string name() const override;

  double x() const noexcept { return x_; }

 private:
  double x_;
};

}  // namespace sda::core
