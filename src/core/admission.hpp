// Per-node feasibility admission control and the overload policy layer.
//
// The paper assigns subtask deadlines for a fixed task set; a
// long-running deadline-assignment service must instead survive
// arbitrary offered load.  This module gates every submission through
// per-node feasibility tests over a ledger of already-admitted work,
// and wraps the tests in an overload state machine that degrades
// gracefully instead of collapsing:
//
//   normal    — full test battery; infeasible submissions are rejected
//               (or parked in a bounded retry queue, serve mode).
//   degraded  — a submission that fails with its own deadline is
//               retried with a stretched one (the imprecise-computation
//               playbook: deliver late-but-bounded rather than drop).
//   shedding  — only candidates that leave configurable headroom are
//               admitted; everything else is shed outright.
//
// Transitions use hysteresis on a *load-derived* pressure signal (EWMA
// of the worst per-node ledger density), never on decision outcomes —
// a shed-based signal would pin at 1 and the machine could never
// recover.  Ledger entries retire when their run finishes or their
// deadline passes, so pressure decays as load does.
//
// The controller draws no random numbers and never reads the wall
// clock: identical submission sequences produce identical decisions,
// which is what the serve-path fingerprint tests assert.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/core/plan_cache.hpp"
#include "src/core/strategy.hpp"
#include "src/task/tree.hpp"
#include "src/util/mutex.hpp"
#include "src/util/thread_annotations.hpp"

namespace sda::core {

/// One admitted (or candidate) leaf job in a node's ledger: the window
/// the admission tests reserve for it.  Times are absolute; demand is
/// the leaf's pex — the demand visible to the service at admission.
struct LedgerJob {
  std::uint64_t ticket = 0;   ///< caller-chosen id, retires the job
  std::uint32_t leaf = 0;     ///< DFS leaf index within the ticket's tree
  double release = 0.0;       ///< planned dispatch of the leaf
  double deadline = 0.0;      ///< leaf's (virtual) deadline
  double demand = 0.0;        ///< pex
};

// --- per-node feasibility tests (pure functions) ------------------------
//
// All three decide feasibility of one preemptive-EDF node running the
// given jobs, under the ledger's full-demand assumption (work already
// executed is not credited — conservative).  Releases before @p now are
// clamped to @p now: work cannot run in the past.

/// Density bound: sum C_i / (d_i - r_i) <= bound.  Each job fits inside
/// its own window's fluid share, so total share <= 1 is sufficient for
/// preemptive EDF.  Cheapest and most conservative.
bool utilization_test(const std::vector<LedgerJob>& jobs, double now,
                      double bound);

/// Preemptive-EDF completion-time walk from @p now: simulates EDF over
/// the job set (earliest deadline among released jobs runs; preempted
/// at releases) and checks every job completes by its deadline.  Exact
/// for a single node under the full-demand assumption.
bool completion_time_test(const std::vector<LedgerJob>& jobs, double now);

/// Processor-demand criterion: for every interval [r, d] spanned by a
/// release and a deadline, the demand of jobs fully contained in it
/// must fit in d - r.  Exact; O(n^3) worst case, used for small
/// ledgers and as a cross-check of the completion-time walk.
bool scheduling_point_test(const std::vector<LedgerJob>& jobs, double now);

// --- the admission controller -------------------------------------------

enum class AdmissionDecision {
  kAdmit,          ///< feasible as submitted
  kAdmitDegraded,  ///< feasible only with a stretched deadline
  kReject,         ///< infeasible under current ledger (normal-state "no")
  kShed,           ///< dropped by overload policy or negative slack
  kBackpressure,   ///< bounded retry queue full — back off and resubmit
};

enum class OverloadState { kNormal, kDegraded, kShedding };

const char* to_string(AdmissionDecision d) noexcept;
const char* to_string(OverloadState s) noexcept;

struct AdmissionConfig {
  int node_count = 1;
  std::string psp = "ud";
  std::string ssp = "ud";

  // Which feasibility tests gate admission (at least one must be on).
  bool test_utilization = true;
  bool test_completion_time = true;
  bool test_scheduling_point = false;
  double util_bound = 1.0;  ///< density budget per node

  // Overload state machine: pressure = EWMA of max per-node density
  // normalized by util_bound, updated on every decision event.
  double pressure_alpha = 0.3;    ///< EWMA weight of the newest sample
  double enter_degraded = 0.70;
  double exit_degraded = 0.55;    ///< must be <= enter_degraded
  double enter_shedding = 0.90;
  double exit_shedding = 0.70;    ///< must be <= enter_shedding
  double degrade_stretch = 1.5;   ///< deadline multiplier in degraded state
  double shed_headroom = 0.15;    ///< shedding: admit only below 1 - headroom

  // Bounded deferred-retry queue (serve mode; submit()/pump()).
  std::size_t queue_capacity = 64;

  // SDA plan cache.
  bool plan_cache = true;
  std::size_t plan_cache_capacity = 512;
};

struct AdmissionStats {
  std::uint64_t submitted = 0;  ///< decide() + submit() calls
  std::uint64_t admitted = 0;
  std::uint64_t admitted_degraded = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t backpressure = 0;
  std::uint64_t queued = 0;            ///< submissions parked at least once
  std::size_t queue_high_water = 0;
  std::uint64_t to_degraded = 0;   ///< state transitions observed
  std::uint64_t to_shedding = 0;
  std::uint64_t to_normal = 0;
};

/// Value-type copy of one leaf's assignment in an admitted plan.
/// Deliberately holds no pointer into the submitted tree: the tree can
/// die with the submit()/pump() call while the outcome outlives it (the
/// serve front door renders the reply afterwards — a LeafAssignment
/// here would be a use-after-free).
struct PlanEntry {
  int node = 0;                   ///< exec node of the leaf
  double planned_dispatch = 0.0;  ///< absolute planned dispatch
  double virtual_deadline = 0.0;  ///< absolute leaf deadline
};

/// The verdict on one submission.
struct AdmissionOutcome {
  AdmissionDecision decision = AdmissionDecision::kReject;
  OverloadState state = OverloadState::kNormal;  ///< state at decision time
  const char* reason = "";
  double pressure = 0.0;     ///< smoothed pressure at decision time
  double deadline = 0.0;     ///< effective absolute deadline (stretched
                             ///< when kAdmitDegraded; else as submitted)
  bool cache_hit = false;
  /// Absolute per-leaf assignments (DFS leaf order); empty unless
  /// admitted.  Bit-identical with the plan cache on or off.
  std::vector<PlanEntry> plan;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Immediate decision for a submission with end-to-end deadline
  /// @p deadline (absolute) arriving at @p now.  @p ticket identifies
  /// the submission for later retirement via on_finished().  Never
  /// queues; the simulator's arrival gate uses this entry point.
  AdmissionOutcome decide(const task::TreeNode& tree, double now,
                          double deadline, std::uint64_t ticket);

  /// Serve-mode entry point: like decide(), but an infeasible
  /// submission outside the shedding state is parked in the bounded
  /// retry queue (returns kQueued=true, no decision yet) and retried
  /// by pump() as ledger capacity frees.  A full queue returns an
  /// immediate kBackpressure decision.
  struct SubmitResult {
    bool queued = false;
    AdmissionOutcome outcome;  ///< meaningful only when !queued
  };
  SubmitResult submit(task::TreePtr tree, double now, double deadline,
                      std::uint64_t ticket);

  /// Retries parked submissions in FIFO order at time @p now.  Emits a
  /// final outcome for each submission that now admits or whose slack
  /// has expired (shed); stops at the first still-infeasible head.
  std::vector<std::pair<std::uint64_t, AdmissionOutcome>> pump(double now);

  /// Resolves every still-parked submission at end of stream: one last
  /// admission attempt, then shed.
  std::vector<std::pair<std::uint64_t, AdmissionOutcome>> flush(double now);

  /// Retires all ledger entries of @p ticket (the run finished or was
  /// aborted) — frees its reserved capacity early.
  void on_finished(std::uint64_t ticket);

  /// Reservation-update path: retires only leaf @p leaf of @p ticket
  /// (that subtask finished), shrinking the completion-time ledgers
  /// immediately instead of waiting for whole-run retirement.  Returns
  /// the number of ledger entries removed (0 when the reservation
  /// already expired — not an error for an admitted run).
  std::size_t on_leaf_finished(std::uint64_t ticket, std::uint32_t leaf);

  /// External overload trip: forces the state machine into shedding
  /// and raises the smoothed pressure to the shedding threshold so the
  /// normal hysteresis path governs recovery.  Used by the serve front
  /// door when decision latency blows its deadline — a wall-clock
  /// signal the load-derived pressure cannot see.
  void trip_shedding();

  /// FNV-1a fingerprint of the complete decision-relevant state:
  /// overload state, pressure bits, every ledger entry in order, the
  /// retry queue (tickets, deadlines, exact tree serializations), and
  /// the decision counters.  Two controllers fed the same accepted
  /// submissions report the same fingerprint — the equality the
  /// journal-replay crash tests assert.
  std::uint64_t fingerprint() const;

  OverloadState state() const noexcept {
    util::RoleGuard own(owner_);
    return state_;
  }
  double pressure() const noexcept {
    util::RoleGuard own(owner_);
    return pressure_;
  }
  std::size_t queue_depth() const noexcept {
    util::RoleGuard own(owner_);
    return queue_.size();
  }
  std::size_t ledger_size() const noexcept;
  const AdmissionStats& stats() const noexcept {
    util::RoleGuard own(owner_);
    return stats_;
  }
  PlanCache::Stats cache_stats() const noexcept;
  const AdmissionConfig& config() const noexcept { return config_; }

 private:
  struct Pending {
    std::uint64_t ticket = 0;
    task::TreePtr tree;
    double deadline = 0.0;
  };

  /// Expires dead ledger entries, refreshes pressure, and applies the
  /// hysteresis transitions.
  void refresh(double now) SDA_REQUIRES(owner_);
  double raw_pressure() const SDA_REQUIRES(owner_);

  /// State-dependent admission attempt (no queueing, no pressure
  /// refresh).  On success the candidate's jobs are in the ledger.
  AdmissionOutcome try_admit(const task::TreeNode& tree, double now,
                             double deadline, std::uint64_t ticket)
      SDA_REQUIRES(owner_);
  /// Runs the configured test battery with the candidate jobs merged
  /// into their nodes' ledgers.
  bool feasible_with(const std::vector<LedgerJob>& candidate,
                     const std::vector<int>& sites, double now) const
      SDA_REQUIRES(owner_);
  /// Builds the candidate's per-leaf jobs from the (cached) plan.
  void plan_candidate(const task::TreeNode& tree, double now,
                      double deadline, std::uint64_t ticket,
                      std::vector<LedgerJob>& jobs, std::vector<int>& sites,
                      std::vector<PlanEntry>& plan, bool* cache_hit)
      SDA_REQUIRES(owner_);

  /// Single-owner role: the controller is driven by exactly one thread
  /// (the simulation's control lane or the serve session).  The retry
  /// queue, ledgers, and overload state are compile-time fenced to
  /// owner-entered call paths — a second thread calling in is a
  /// -Wthread-safety error, which is what makes the planned sharded
  /// controllers (ROADMAP item 2) an explicit design change rather than
  /// an accidental race.
  util::ThreadRole owner_;
  AdmissionConfig config_;
  std::unique_ptr<PspStrategy> psp_;
  std::unique_ptr<SspStrategy> ssp_;
  /// Null when plan_cache is off; pointee mutated on every planned
  /// submission.
  std::unique_ptr<PlanCache> cache_ SDA_GUARDED_BY(owner_)
      SDA_PT_GUARDED_BY(owner_);
  std::vector<std::vector<LedgerJob>> ledgers_
      SDA_GUARDED_BY(owner_);  ///< indexed by exec node
  std::deque<Pending> queue_ SDA_GUARDED_BY(owner_);
  OverloadState state_ SDA_GUARDED_BY(owner_) = OverloadState::kNormal;
  double pressure_ SDA_GUARDED_BY(owner_) = 0.0;
  AdmissionStats stats_ SDA_GUARDED_BY(owner_);
};

}  // namespace sda::core
