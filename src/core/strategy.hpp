// Deadline-assignment strategy interfaces (the paper's contribution).
//
// A strategy maps the (virtual) deadline of a composite task to virtual
// deadlines for its children:
//
//   * PspStrategy handles parallel composites  T = [T1 || ... || Tn]
//     (paper Section 4: UD, DIV-x, GF);
//   * SspStrategy handles serial composites    T = [T1 T2 ... Tm]
//     (companion paper [6], summarized in Section 8: UD, ED, EQS, EQF).
//
// Strategies are pure policy: they see only submission times, deadlines and
// *predicted* execution times (pex), never the true ex — matching the
// paper's on-line, estimate-only premise.  The recursive composition over a
// serial-parallel tree (paper Figure 13) lives in sda.hpp.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/core/registry.hpp"
#include "src/task/tree.hpp"
#include "src/util/unique_fn.hpp"

namespace sda::core {

using task::Time;

/// Inputs for assigning a deadline to one branch of a parallel composite.
struct PspContext {
  Time now = 0.0;       ///< assignment time == ar(T) of the composite
  Time deadline = 0.0;  ///< dl(T): the composite's own (virtual) deadline
  int branch_count = 1; ///< n: number of parallel branches
};

/// Policy for the Parallel Subtask Problem.
class PspStrategy {
 public:
  virtual ~PspStrategy() = default;

  /// Virtual deadline for branch @p branch (0-based). @p branch_pex is the
  /// predicted critical-path demand of that branch; UD/DIV-x/GF ignore it,
  /// but custom strategies (see examples/custom_strategy.cpp) may not.
  virtual Time assign(const PspContext& ctx, int branch,
                      Time branch_pex) const = 0;

  /// Display name, e.g. "DIV-1".
  virtual std::string name() const = 0;
};

/// Inputs for assigning a deadline to the next stage of a serial composite.
/// Stages are dispatched on-line: stage i's context is built when stage i-1
/// finishes, so `now` reflects actual (not predicted) progress.
struct SspContext {
  Time now = 0.0;        ///< dispatch time of this stage == ar(T_i)
  Time deadline = 0.0;   ///< dl(T): the serial composite's (virtual) deadline
  int stage = 0;         ///< i: 0-based index of the stage being dispatched
  int stage_count = 1;   ///< m: total number of stages
  /// Predicted critical-path demand of each *remaining* stage, i.e.
  /// remaining_pex[0] is pex(T_i), remaining_pex[1] is pex(T_{i+1}), ...
  std::vector<Time> remaining_pex;

  /// Sum over remaining_pex.
  Time remaining_pex_total() const noexcept;
  /// Total slack left: dl(T) - now - sum of remaining pex. May be negative.
  Time remaining_slack() const noexcept;
};

/// Policy for the Serial Subtask Problem.
class SspStrategy {
 public:
  virtual ~SspStrategy() = default;

  /// Virtual deadline for the stage described by @p ctx.
  virtual Time assign(const SspContext& ctx) const = 0;

  /// Display name, e.g. "EQF".
  virtual std::string name() const = 0;
};

// --- strategy registry ----------------------------------------------------
//
// Strategies are constructed by name through a registry instead of a
// hardcoded if-chain, so user code (examples/custom_strategy.cpp) extends
// the factory itself: a strategy registered here is reachable from every
// config-driven surface — ExperimentConfig, sweeps, and the sda_run CLI —
// without touching library code.
//
// Built-ins self-register the first time any registry function runs (a
// function-local static, so there is no static-initialization-order or
// dead-object-file hazard).  register_* is not thread-safe against
// concurrent make_*_strategy calls: register custom strategies up front,
// before experiments fan out over the thread pool.

/// Factory callback: receives the full lowercased name that matched (for
/// parameterized families like "div-2.5" the suffix carries the
/// parameter).  Returns nullptr to signal "name matched my prefix but the
/// parameter does not parse" — lookup then reports an unknown name.
using PspFactory =
    util::UniqueFn<std::unique_ptr<PspStrategy>(const std::string&)>;
using SspFactory =
    util::UniqueFn<std::unique_ptr<SspStrategy>(const std::string&)>;

/// How a registered name matches lookups (shared with every other backend
/// registry — see util::Registry).
using util::NameMatch;

/// Registers a PSP strategy under @p name.  @p display is what
/// list_psp_strategies() shows (e.g. "div-<x>"; defaults to @p name).
/// Throws std::invalid_argument when the name (or prefix) is already
/// registered.
void register_psp(const std::string& name, PspFactory factory,
                  NameMatch match = NameMatch::kExact,
                  const std::string& display = {});

/// Same for SSP strategies.
void register_ssp(const std::string& name, SspFactory factory,
                  NameMatch match = NameMatch::kExact,
                  const std::string& display = {});

/// Display names of every registered strategy, in registration order
/// (built-ins first) — the CLI's --list-strategies output.
std::vector<std::string> list_psp_strategies();
std::vector<std::string> list_ssp_strategies();

/// Factory: "ud", "div-1", "div-2.5", "gf", "gf-<delta>", plus anything
/// registered (case-insensitive).  Throws std::invalid_argument on unknown
/// names, listing the registered strategies and suggesting near-misses.
std::unique_ptr<PspStrategy> make_psp_strategy(const std::string& name);

/// Factory: "ud", "ed", "eqs", "eqf", plus anything registered
/// (case-insensitive).  Throws std::invalid_argument on unknown names.
std::unique_ptr<SspStrategy> make_ssp_strategy(const std::string& name);

}  // namespace sda::core
