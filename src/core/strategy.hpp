// Deadline-assignment strategy interfaces (the paper's contribution).
//
// A strategy maps the (virtual) deadline of a composite task to virtual
// deadlines for its children:
//
//   * PspStrategy handles parallel composites  T = [T1 || ... || Tn]
//     (paper Section 4: UD, DIV-x, GF);
//   * SspStrategy handles serial composites    T = [T1 T2 ... Tm]
//     (companion paper [6], summarized in Section 8: UD, ED, EQS, EQF).
//
// Strategies are pure policy: they see only submission times, deadlines and
// *predicted* execution times (pex), never the true ex — matching the
// paper's on-line, estimate-only premise.  The recursive composition over a
// serial-parallel tree (paper Figure 13) lives in sda.hpp.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/task/tree.hpp"

namespace sda::core {

using task::Time;

/// Inputs for assigning a deadline to one branch of a parallel composite.
struct PspContext {
  Time now = 0.0;       ///< assignment time == ar(T) of the composite
  Time deadline = 0.0;  ///< dl(T): the composite's own (virtual) deadline
  int branch_count = 1; ///< n: number of parallel branches
};

/// Policy for the Parallel Subtask Problem.
class PspStrategy {
 public:
  virtual ~PspStrategy() = default;

  /// Virtual deadline for branch @p branch (0-based). @p branch_pex is the
  /// predicted critical-path demand of that branch; UD/DIV-x/GF ignore it,
  /// but custom strategies (see examples/custom_strategy.cpp) may not.
  virtual Time assign(const PspContext& ctx, int branch,
                      Time branch_pex) const = 0;

  /// Display name, e.g. "DIV-1".
  virtual std::string name() const = 0;
};

/// Inputs for assigning a deadline to the next stage of a serial composite.
/// Stages are dispatched on-line: stage i's context is built when stage i-1
/// finishes, so `now` reflects actual (not predicted) progress.
struct SspContext {
  Time now = 0.0;        ///< dispatch time of this stage == ar(T_i)
  Time deadline = 0.0;   ///< dl(T): the serial composite's (virtual) deadline
  int stage = 0;         ///< i: 0-based index of the stage being dispatched
  int stage_count = 1;   ///< m: total number of stages
  /// Predicted critical-path demand of each *remaining* stage, i.e.
  /// remaining_pex[0] is pex(T_i), remaining_pex[1] is pex(T_{i+1}), ...
  std::vector<Time> remaining_pex;

  /// Sum over remaining_pex.
  Time remaining_pex_total() const noexcept;
  /// Total slack left: dl(T) - now - sum of remaining pex. May be negative.
  Time remaining_slack() const noexcept;
};

/// Policy for the Serial Subtask Problem.
class SspStrategy {
 public:
  virtual ~SspStrategy() = default;

  /// Virtual deadline for the stage described by @p ctx.
  virtual Time assign(const SspContext& ctx) const = 0;

  /// Display name, e.g. "EQF".
  virtual std::string name() const = 0;
};

/// Factory: "ud", "div-1", "div-2.5", "gf", "gf-<delta>"
/// (case-insensitive).  Throws std::invalid_argument on unknown names.
std::unique_ptr<PspStrategy> make_psp_strategy(const std::string& name);

/// Factory: "ud", "ed", "eqs", "eqf" (case-insensitive).
/// Throws std::invalid_argument on unknown names.
std::unique_ptr<SspStrategy> make_ssp_strategy(const std::string& name);

}  // namespace sda::core
