#include "src/core/ssp_ed.hpp"

namespace sda::core {

Time SspEffectiveDeadline::assign(const SspContext& ctx) const {
  Time downstream = 0.0;
  for (std::size_t j = 1; j < ctx.remaining_pex.size(); ++j) {
    downstream += ctx.remaining_pex[j];
  }
  return ctx.deadline - downstream;
}

}  // namespace sda::core
