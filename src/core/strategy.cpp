#include "src/core/strategy.hpp"

#include <algorithm>
#include <cctype>
#include <numeric>
#include <stdexcept>

#include "src/core/psp_div.hpp"
#include "src/core/psp_gf.hpp"
#include "src/core/psp_ud.hpp"
#include "src/core/ssp_ed.hpp"
#include "src/core/ssp_eqf.hpp"
#include "src/core/ssp_eqs.hpp"
#include "src/core/ssp_ud.hpp"

namespace sda::core {

Time SspContext::remaining_pex_total() const noexcept {
  return std::accumulate(remaining_pex.begin(), remaining_pex.end(), Time{0});
}

Time SspContext::remaining_slack() const noexcept {
  return deadline - now - remaining_pex_total();
}

namespace {
std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}
}  // namespace

std::unique_ptr<PspStrategy> make_psp_strategy(const std::string& name) {
  const std::string n = lower(name);
  if (n == "ud") return std::make_unique<PspUltimateDeadline>();
  if (n == "gf") return std::make_unique<PspGlobalsFirst>();
  if (n.rfind("gf-", 0) == 0) {
    const std::string arg = n.substr(3);
    try {
      std::size_t used = 0;
      const double delta = std::stod(arg, &used);
      if (used == arg.size()) return std::make_unique<PspGlobalsFirst>(delta);
    } catch (const std::exception&) {
      // fall through to the error below
    }
  }
  if (n.rfind("div-", 0) == 0) {
    const std::string arg = n.substr(4);
    try {
      std::size_t used = 0;
      const double x = std::stod(arg, &used);
      if (used == arg.size()) return std::make_unique<PspDiv>(x);
    } catch (const std::exception&) {
      // fall through to the error below
    }
  }
  throw std::invalid_argument("unknown PSP strategy: " + name +
                              " (expected ud, div-<x>, or gf)");
}

std::unique_ptr<SspStrategy> make_ssp_strategy(const std::string& name) {
  const std::string n = lower(name);
  if (n == "ud") return std::make_unique<SspUltimateDeadline>();
  if (n == "ed") return std::make_unique<SspEffectiveDeadline>();
  if (n == "eqs") return std::make_unique<SspEqualSlack>();
  if (n == "eqf") return std::make_unique<SspEqualFlexibility>();
  throw std::invalid_argument("unknown SSP strategy: " + name +
                              " (expected ud, ed, eqs, or eqf)");
}

}  // namespace sda::core
