#include "src/core/strategy.hpp"

#include <algorithm>
#include <cctype>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "src/core/psp_div.hpp"
#include "src/core/psp_gf.hpp"
#include "src/core/psp_ud.hpp"
#include "src/core/ssp_ed.hpp"
#include "src/core/ssp_eqf.hpp"
#include "src/core/ssp_eqs.hpp"
#include "src/core/ssp_ud.hpp"
#include "src/util/env.hpp"

namespace sda::core {

Time SspContext::remaining_pex_total() const noexcept {
  return std::accumulate(remaining_pex.begin(), remaining_pex.end(), Time{0});
}

Time SspContext::remaining_slack() const noexcept {
  return deadline - now - remaining_pex_total();
}

namespace {

/// Parses the parameter suffix of "div-2.5" / "gf-0.001"; nullopt-style:
/// returns false when the text is not a clean number.
bool parse_param(const std::string& text, double* out) {
  try {
    std::size_t used = 0;
    const double parsed = std::stod(text, &used);
    if (used != text.size()) return false;
    *out = parsed;
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

// One generic registry (core::Registry, shared with the timer-queue
// backends) per strategy problem; lookup order is registration order,
// exact entries before prefix families because exact matching runs first.
using PspRegistry = Registry<PspStrategy>;
using SspRegistry = Registry<SspStrategy>;

/// Built-ins are seeded through the same add() path as user strategies the
/// first time any registry accessor runs.
PspRegistry& psp_registry() {
  static PspRegistry reg = [] {
    PspRegistry r("PSP", "strategy");
    r.add("ud",
          [](const std::string&) -> std::unique_ptr<PspStrategy> {
            return std::make_unique<PspUltimateDeadline>();
          },
          NameMatch::kExact, "ud");
    r.add("div-",
          [](const std::string& full) -> std::unique_ptr<PspStrategy> {
            double x = 0.0;
            if (!parse_param(full.substr(4), &x)) return nullptr;
            return std::make_unique<PspDiv>(x);
          },
          NameMatch::kPrefix, "div-<x>");
    r.add("gf",
          [](const std::string&) -> std::unique_ptr<PspStrategy> {
            return std::make_unique<PspGlobalsFirst>();
          },
          NameMatch::kExact, "gf");
    r.add("gf-",
          [](const std::string& full) -> std::unique_ptr<PspStrategy> {
            double delta = 0.0;
            if (!parse_param(full.substr(3), &delta)) return nullptr;
            return std::make_unique<PspGlobalsFirst>(delta);
          },
          NameMatch::kPrefix, "gf-<delta>");
    return r;
  }();
  return reg;
}

SspRegistry& ssp_registry() {
  static SspRegistry reg = [] {
    SspRegistry r("SSP", "strategy");
    auto exact = [&r](const char* name, auto make_fn) {
      r.add(name,
            [make_fn](const std::string&) -> std::unique_ptr<SspStrategy> {
              return make_fn();
            },
            NameMatch::kExact, name);
    };
    exact("ud", [] { return std::make_unique<SspUltimateDeadline>(); });
    exact("ed", [] { return std::make_unique<SspEffectiveDeadline>(); });
    exact("eqs", [] { return std::make_unique<SspEqualSlack>(); });
    exact("eqf", [] { return std::make_unique<SspEqualFlexibility>(); });
    return r;
  }();
  return reg;
}

}  // namespace

void register_psp(const std::string& name, PspFactory factory,
                  NameMatch match, const std::string& display) {
  psp_registry().add(name, std::move(factory), match, display);
}

void register_ssp(const std::string& name, SspFactory factory,
                  NameMatch match, const std::string& display) {
  ssp_registry().add(name, std::move(factory), match, display);
}

std::vector<std::string> list_psp_strategies() {
  return psp_registry().names();
}

std::vector<std::string> list_ssp_strategies() {
  return ssp_registry().names();
}

std::unique_ptr<PspStrategy> make_psp_strategy(const std::string& name) {
  return psp_registry().make(name);
}

std::unique_ptr<SspStrategy> make_ssp_strategy(const std::string& name) {
  return ssp_registry().make(name);
}

}  // namespace sda::core
